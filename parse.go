package streamad

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseModelKind converts a string name (as used by the CLI tools) into a
// ModelKind. Recognized names (case-insensitive): arima, arima-ons, pcb,
// pcb-iforest, iforest, ae, usad, nbeats, n-beats, var, knn.
func ParseModelKind(s string) (ModelKind, error) {
	switch strings.ToLower(s) {
	case "arima":
		return ModelARIMA, nil
	case "arima-ons", "arimaons", "ons":
		return ModelARIMAONS, nil
	case "pcb", "pcb-iforest", "iforest":
		return ModelPCBIForest, nil
	case "ae", "autoencoder":
		return ModelAE, nil
	case "usad":
		return ModelUSAD, nil
	case "nbeats", "n-beats":
		return ModelNBEATS, nil
	case "var":
		return ModelVAR, nil
	case "knn":
		return ModelKNN, nil
	default:
		return 0, fmt.Errorf("streamad: unknown model %q", s)
	}
}

// ParseTask1 converts a strategy name into a Task1. Recognized names:
// sw, ures, ares.
func ParseTask1(s string) (Task1, error) {
	switch strings.ToLower(s) {
	case "sw", "sliding", "sliding-window":
		return TaskSlidingWindow, nil
	case "ures", "uniform":
		return TaskUniformReservoir, nil
	case "ares", "anomaly-aware":
		return TaskAnomalyReservoir, nil
	default:
		return 0, fmt.Errorf("streamad: unknown task1 strategy %q", s)
	}
}

// ParseTask2 converts a drift-strategy name into a Task2. Recognized
// names: musigma, ms, kswin, ks, regular, adwin.
func ParseTask2(s string) (Task2, error) {
	switch strings.ToLower(s) {
	case "musigma", "mu-sigma", "ms":
		return TaskMuSigma, nil
	case "kswin", "ks":
		return TaskKSWIN, nil
	case "regular":
		return TaskRegular, nil
	case "adwin":
		return TaskADWIN, nil
	default:
		return 0, fmt.Errorf("streamad: unknown task2 strategy %q", s)
	}
}

// ParseScoreKind converts an anomaly-score name into a ScoreKind.
// Recognized names: avg, average, likelihood, al, raw.
func ParseScoreKind(s string) (ScoreKind, error) {
	switch strings.ToLower(s) {
	case "avg", "average":
		return ScoreAverage, nil
	case "likelihood", "al", "anomaly-likelihood":
		return ScoreLikelihood, nil
	case "raw":
		return ScoreRaw, nil
	default:
		return 0, fmt.Errorf("streamad: unknown score kind %q", s)
	}
}

// ParseAggKind converts an ensemble-combiner name into an AggKind.
// Recognized names: mean, avg, max, median, trimmed, trimmed-mean, perf,
// perf-weighted, weighted.
func ParseAggKind(s string) (AggKind, error) {
	switch strings.ToLower(s) {
	case "mean", "avg", "average":
		return AggMean, nil
	case "max":
		return AggMax, nil
	case "median":
		return AggMedian, nil
	case "trimmed", "trimmed-mean", "trim":
		return AggTrimmedMean, nil
	case "perf", "perf-weighted", "weighted", "performance":
		return AggPerfWeighted, nil
	default:
		return 0, fmt.Errorf("streamad: unknown combiner %q", s)
	}
}

// The canonical short names the spec grammar prints (its parsers accept
// the same aliases as the individual Parse* functions).

func specModelName(m ModelKind) string {
	switch m {
	case ModelARIMA:
		return "arima"
	case ModelARIMAONS:
		return "arima-ons"
	case ModelPCBIForest:
		return "pcb"
	case ModelAE:
		return "ae"
	case ModelUSAD:
		return "usad"
	case ModelNBEATS:
		return "nbeats"
	case ModelVAR:
		return "var"
	case ModelKNN:
		return "knn"
	default:
		return fmt.Sprintf("model-%d", int(m))
	}
}

func specTask1Name(t Task1) string {
	switch t {
	case TaskSlidingWindow:
		return "sw"
	case TaskUniformReservoir:
		return "ures"
	case TaskAnomalyReservoir:
		return "ares"
	default:
		return fmt.Sprintf("task1-%d", int(t))
	}
}

func specTask2Name(t Task2) string {
	switch t {
	case TaskMuSigma:
		return "musigma"
	case TaskKSWIN:
		return "kswin"
	case TaskRegular:
		return "regular"
	case TaskADWIN:
		return "adwin"
	default:
		return fmt.Sprintf("task2-%d", int(t))
	}
}

func specScoreName(s ScoreKind) string {
	switch s {
	case ScoreAverage:
		return "avg"
	case ScoreLikelihood:
		return "al"
	case ScoreRaw:
		return "raw"
	default:
		return fmt.Sprintf("score-%d", int(s))
	}
}

// ParseTier0Kind converts a tier-0 detector name into a Tier0Kind.
// Recognized names (case-insensitive): ewma, zscore, z-score, hampel,
// density.
func ParseTier0Kind(s string) (Tier0Kind, error) {
	switch strings.ToLower(s) {
	case "ewma":
		return Tier0EWMA, nil
	case "zscore", "z-score", "z":
		return Tier0ZScore, nil
	case "hampel":
		return Tier0Hampel, nil
	case "density":
		return Tier0Density, nil
	default:
		return 0, fmt.Errorf("streamad: unknown tier-0 detector %q", s)
	}
}

func specTier0Name(t Tier0Kind) string {
	switch t {
	case Tier0EWMA:
		return "ewma"
	case Tier0ZScore:
		return "zscore"
	case Tier0Hampel:
		return "hampel"
	case Tier0Density:
		return "density"
	default:
		return fmt.Sprintf("tier0-%d", int(t))
	}
}

// IsTier0Spec reports whether s names a tier-0 detector on its own
// ("zscore", "hampel", …) rather than a pipeline or combinator.
func IsTier0Spec(s string) bool {
	_, err := ParseTier0Kind(strings.TrimSpace(s))
	return err == nil
}

// ParsePipelineSpec parses a compact pipeline spec of the form
// "model+task1+task2[+score][+async]" — e.g. "arima+sw+kswin",
// "usad+ares+regular+avg" or "ae+sw+kswin+al+async". Each part accepts
// the same names as the corresponding Parse* function. When the score
// part is omitted it defaults to the anomaly likelihood, the paper's
// strongest scoring function; a trailing "async" token enables the
// serve/train split for this pipeline.
func ParsePipelineSpec(s string) (PipelineSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), "+")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	spec := PipelineSpec{Score: ScoreLikelihood}
	if n := len(parts); n >= 4 && n <= 5 && strings.EqualFold(parts[n-1], "async") {
		spec.Async = true
		parts = parts[:n-1]
	}
	if len(parts) < 3 || len(parts) > 4 {
		return PipelineSpec{}, fmt.Errorf("streamad: pipeline spec %q: want model+task1+task2[+score][+async]", s)
	}
	var err error
	if spec.Model, err = ParseModelKind(parts[0]); err != nil {
		return PipelineSpec{}, fmt.Errorf("streamad: pipeline spec %q: %w", s, err)
	}
	if spec.Task1, err = ParseTask1(parts[1]); err != nil {
		return PipelineSpec{}, fmt.Errorf("streamad: pipeline spec %q: %w", s, err)
	}
	if spec.Task2, err = ParseTask2(parts[2]); err != nil {
		return PipelineSpec{}, fmt.Errorf("streamad: pipeline spec %q: %w", s, err)
	}
	if len(parts) == 4 {
		if spec.Score, err = ParseScoreKind(parts[3]); err != nil {
			return PipelineSpec{}, fmt.Errorf("streamad: pipeline spec %q: %w", s, err)
		}
	}
	return spec, nil
}

// IsEnsembleSpec reports whether s uses the ensemble(...) grammar rather
// than naming a single pipeline.
func IsEnsembleSpec(s string) bool {
	return strings.HasPrefix(strings.ToLower(strings.TrimSpace(s)), "ensemble(")
}

// IsCascadeSpec reports whether s uses the cascade(...) grammar.
func IsCascadeSpec(s string) bool {
	return strings.HasPrefix(strings.ToLower(strings.TrimSpace(s)), "cascade(")
}

// splitTop splits s at sep occurrences outside any parentheses, so
// nested ensemble(...) members survive intact.
func splitTop(s string, sep byte) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// parseHeavySpec parses one cascade heavy-member spec: a full pipeline
// spec, an ensemble(...) spec, or — as a convenience — a bare model name
// ("knn"), which gets the default sliding-window/μσ/likelihood pipeline.
func parseHeavySpec(s string) (canonical string, err error) {
	s = strings.TrimSpace(s)
	switch {
	case IsCascadeSpec(s):
		return "", fmt.Errorf("streamad: cascades do not nest (heavy member %q)", s)
	case IsEnsembleSpec(s):
		es, err := ParseEnsembleSpec(s)
		if err != nil {
			return "", err
		}
		return es.String(), nil
	case !strings.Contains(s, "+"):
		m, err := ParseModelKind(s)
		if err != nil {
			return "", err
		}
		return PipelineSpec{Model: m, Task1: TaskSlidingWindow, Task2: TaskMuSigma, Score: ScoreLikelihood}.String(), nil
	default:
		ps, err := ParsePipelineSpec(s)
		if err != nil {
			return "", err
		}
		return ps.String(), nil
	}
}

// ParseCascadeSpec parses the cascade spec grammar:
//
//	cascade(gate, heavy, heavy, ...; option, option, ...)
//
// where gate is a tier-0 detector name (ewma, zscore, hampel, density),
// each heavy member is a pipeline spec, a bare model name or a nested
// ensemble(...) spec, and the optional options after the semicolon are
// key=value pairs:
//
//	admit=0.1     target false-admission rate ε of the conformal gate
//	calib=128     conformal calibration-window capacity
//	gatewin=64    tier-0 gate window length
//
// For example:
//
//	cascade(zscore, knn)
//	cascade(hampel, usad+sw+musigma+al; admit=0.05, calib=256)
//	cascade(ewma, ensemble(arima+sw+kswin, usad+ares+regular; agg=median); admit=0.02)
func ParseCascadeSpec(s string) (CascadeSpec, error) {
	trimmed := strings.TrimSpace(s)
	fail := func(format string, args ...interface{}) (CascadeSpec, error) {
		return CascadeSpec{}, fmt.Errorf("streamad: cascade spec %q: %s", s, fmt.Sprintf(format, args...))
	}
	if !IsCascadeSpec(trimmed) || !strings.HasSuffix(trimmed, ")") {
		return fail("want cascade(gate, heavy, ...; options)")
	}
	body := trimmed[len("cascade(") : len(trimmed)-1]
	topParts := splitTop(body, ';')
	if len(topParts) > 2 {
		return fail("more than one options section")
	}
	members := splitTop(topParts[0], ',')
	if len(members) < 2 {
		return fail("want a tier-0 gate and at least one heavy member")
	}
	var spec CascadeSpec
	var err error
	if spec.Gate, err = ParseTier0Kind(strings.TrimSpace(members[0])); err != nil {
		return CascadeSpec{}, fmt.Errorf("streamad: cascade spec %q: gate: %w", s, err)
	}
	for _, ms := range members[1:] {
		if strings.TrimSpace(ms) == "" {
			return fail("empty heavy member spec")
		}
		canonical, err := parseHeavySpec(ms)
		if err != nil {
			return CascadeSpec{}, err
		}
		spec.Heavy = append(spec.Heavy, canonical)
	}
	if len(topParts) == 1 {
		return spec, nil
	}
	for _, opt := range splitTop(topParts[1], ',') {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return fail("option %q is not key=value", opt)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "admit":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || v <= 0 || v >= 1 {
				return fail("bad admit rate %q (must be in (0,1))", val)
			}
			spec.Admit = v
		case "calib":
			n, err := strconv.Atoi(val)
			if err != nil || n < 8 {
				return fail("bad calibration window %q (must be an integer ≥ 8)", val)
			}
			spec.Calib = n
		case "gatewin":
			n, err := strconv.Atoi(val)
			if err != nil || n < 4 {
				return fail("bad gate window %q (must be an integer ≥ 4)", val)
			}
			spec.GateWindow = n
		default:
			return fail("unknown option %q", key)
		}
	}
	return spec, nil
}

// ParseEnsembleSpec parses the ensemble spec grammar:
//
//	ensemble(member, member, ...; option, option, ...)
//
// where each member is a pipeline spec ("model+task1+task2[+score]", see
// ParsePipelineSpec) and the optional options after the semicolon are
// key=value pairs:
//
//	agg=mean|max|median|trimmed|perf   score combiner (default mean)
//	verdict=0.5                        binary-verdict boundary for the
//	                                   agreement counters
//	cap=64                             rolling agreement-counter cap
//	prune=-16                          enable pruning: disable a member
//	                                   whose counter reaches this value
//
// For example:
//
//	ensemble(arima+sw+kswin, usad+ares+regular; agg=median)
//	ensemble(usad+sw+musigma, pcb+ares+kswin, nbeats+ures+kswin; agg=perf, prune=-16)
func ParseEnsembleSpec(s string) (EnsembleSpec, error) {
	trimmed := strings.TrimSpace(s)
	fail := func(format string, args ...interface{}) (EnsembleSpec, error) {
		return EnsembleSpec{}, fmt.Errorf("streamad: ensemble spec %q: %s", s, fmt.Sprintf(format, args...))
	}
	if !IsEnsembleSpec(trimmed) || !strings.HasSuffix(trimmed, ")") {
		return fail("want ensemble(member, ...; options)")
	}
	body := trimmed[len("ensemble(") : len(trimmed)-1]
	memberPart, optionPart, hasOptions := strings.Cut(body, ";")

	var spec EnsembleSpec
	for _, ms := range strings.Split(memberPart, ",") {
		if strings.TrimSpace(ms) == "" {
			return fail("empty member spec")
		}
		ps, err := ParsePipelineSpec(ms)
		if err != nil {
			return EnsembleSpec{}, err
		}
		spec.Members = append(spec.Members, ps)
	}
	if len(spec.Members) < 2 {
		return fail("need at least 2 members, got %d", len(spec.Members))
	}
	if !hasOptions {
		return spec, nil
	}
	for _, opt := range strings.Split(optionPart, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return fail("option %q is not key=value", opt)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "agg":
			agg, err := ParseAggKind(val)
			if err != nil {
				return EnsembleSpec{}, err
			}
			spec.Agg = agg
		case "verdict":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return fail("bad verdict %q", val)
			}
			spec.Verdict = v
		case "cap":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fail("bad counter cap %q", val)
			}
			spec.CounterCap = n
		case "prune":
			n, err := strconv.Atoi(val)
			if err != nil || n >= 0 {
				return fail("bad prune threshold %q (must be a negative integer)", val)
			}
			spec.PruneEnabled = true
			spec.PruneBelow = n
		default:
			return fail("unknown option %q", key)
		}
	}
	return spec, nil
}
