package streamad

import (
	"fmt"
	"strings"
)

// ParseModelKind converts a string name (as used by the CLI tools) into a
// ModelKind. Recognized names (case-insensitive): arima, arima-ons, pcb,
// pcb-iforest, iforest, ae, usad, nbeats, n-beats, var, knn.
func ParseModelKind(s string) (ModelKind, error) {
	switch strings.ToLower(s) {
	case "arima":
		return ModelARIMA, nil
	case "arima-ons", "arimaons", "ons":
		return ModelARIMAONS, nil
	case "pcb", "pcb-iforest", "iforest":
		return ModelPCBIForest, nil
	case "ae", "autoencoder":
		return ModelAE, nil
	case "usad":
		return ModelUSAD, nil
	case "nbeats", "n-beats":
		return ModelNBEATS, nil
	case "var":
		return ModelVAR, nil
	case "knn":
		return ModelKNN, nil
	default:
		return 0, fmt.Errorf("streamad: unknown model %q", s)
	}
}

// ParseTask1 converts a strategy name into a Task1. Recognized names:
// sw, ures, ares.
func ParseTask1(s string) (Task1, error) {
	switch strings.ToLower(s) {
	case "sw", "sliding", "sliding-window":
		return TaskSlidingWindow, nil
	case "ures", "uniform":
		return TaskUniformReservoir, nil
	case "ares", "anomaly-aware":
		return TaskAnomalyReservoir, nil
	default:
		return 0, fmt.Errorf("streamad: unknown task1 strategy %q", s)
	}
}

// ParseTask2 converts a drift-strategy name into a Task2. Recognized
// names: musigma, ms, kswin, ks, regular, adwin.
func ParseTask2(s string) (Task2, error) {
	switch strings.ToLower(s) {
	case "musigma", "mu-sigma", "ms":
		return TaskMuSigma, nil
	case "kswin", "ks":
		return TaskKSWIN, nil
	case "regular":
		return TaskRegular, nil
	case "adwin":
		return TaskADWIN, nil
	default:
		return 0, fmt.Errorf("streamad: unknown task2 strategy %q", s)
	}
}

// ParseScoreKind converts an anomaly-score name into a ScoreKind.
// Recognized names: avg, average, likelihood, al, raw.
func ParseScoreKind(s string) (ScoreKind, error) {
	switch strings.ToLower(s) {
	case "avg", "average":
		return ScoreAverage, nil
	case "likelihood", "al", "anomaly-likelihood":
		return ScoreLikelihood, nil
	case "raw":
		return ScoreRaw, nil
	default:
		return 0, fmt.Errorf("streamad: unknown score kind %q", s)
	}
}
