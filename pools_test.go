package streamad

import (
	"testing"
)

// TestTrainerPoolMatchesSyncWhenDrained: routing fine-tunes through the
// shared trainer pool, then draining before the next step, must be
// bit-identical to synchronous fine-tuning — the lazy snapshot at
// dequeue sees exactly the state the sync path trains on.
func TestTrainerPoolMatchesSyncWhenDrained(t *testing.T) {
	cfg := Config{
		Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskRegular,
		Score: ScoreLikelihood, RegularInterval: 25,
		Channels: 2, Window: 6, TrainSize: 24, WarmupVectors: 30, Seed: 5,
	}
	syncDet, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp := NewTrainerPool(2)
	defer tp.Close()
	pcfg := cfg
	pcfg.AsyncFineTune = true
	pcfg.TrainerPool = tp
	pcfg.TrainerKey = "s"
	poolDet, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer poolDet.Close()
	if !poolDet.FineTuneStats().Async {
		t.Fatal("pooled detector did not activate the serve/train split")
	}
	buf := make([]float64, 2)
	buf2 := make([]float64, 2)
	for step := 0; step < 400; step++ {
		rs, oks := syncDet.Step(syntheticVec(buf, step))
		rp, okp := poolDet.Step(syntheticVec(buf2, step))
		poolDet.WaitFineTune()
		if oks != okp {
			t.Fatalf("step %d: readiness diverged (sync %v, pool %v)", step, oks, okp)
		}
		if rs.Score != rp.Score || rs.Nonconformity != rp.Nonconformity {
			t.Fatalf("step %d: drained pool fine-tune diverged from sync: score %v vs %v",
				step, rs.Score, rp.Score)
		}
	}
	if s, p := syncDet.FineTunes(), poolDet.FineTunes(); s != p || s == 0 {
		t.Fatalf("fine-tune counts diverged: sync %d, pool %d (want equal and nonzero)", s, p)
	}
	// Draining right after each step usually wins the cancel race and runs
	// the job inline, so the work shows up as canceled rather than
	// completed — either way it flowed through the pool.
	if ts := tp.Stats(); ts.Completed+ts.Canceled == 0 {
		t.Fatalf("no fine-tune ever passed through the trainer pool: %+v", ts)
	}
}

// TestTrainerPoolConcurrentStreams: many detectors sharing one trainer
// pool under load — no drain between steps — must stay finite and
// eventually adopt trained models; Close must settle everything.
func TestTrainerPoolConcurrentStreams(t *testing.T) {
	tp := NewTrainerPool(2)
	defer tp.Close()
	const nDet = 4
	dets := make([]*Detector, nDet)
	for i := range dets {
		d, err := New(Config{
			Model: ModelUSAD, Task1: TaskSlidingWindow, Task2: TaskRegular,
			Score: ScoreLikelihood, RegularInterval: 20,
			Channels: 2, Window: 6, TrainSize: 32, WarmupVectors: 40,
			Seed: int64(7 + i), AsyncFineTune: true,
			TrainerPool: tp, TrainerKey: string(rune('a' + i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		dets[i] = d
	}
	buf := make([]float64, 2)
	launched := false
	for step := 0; step < 600; step++ {
		for _, d := range dets {
			d.Step(syntheticVec(buf, step))
		}
	}
	for _, d := range dets {
		d.Close()
		st := d.FineTuneStats()
		if st.Launched > 0 {
			launched = true
		}
		if st.InFlight {
			t.Fatal("Close left a fine-tune in flight")
		}
	}
	if !launched {
		t.Fatal("no detector ever launched a pooled fine-tune")
	}
	ts := tp.Stats()
	if ts.Completed+ts.Canceled == 0 {
		t.Fatalf("trainer pool saw no work: %+v", ts)
	}
}

// TestEnsemblePoolMatchesSerial: an ensemble stepping its members on the
// shared scoring pool must be bit-identical to the serial ensemble —
// members are independent and outputs land by index, so scheduling
// cannot change aggregation.
func TestEnsemblePoolMatchesSerial(t *testing.T) {
	spec := EnsembleSpec{
		Members: []PipelineSpec{
			{Model: ModelARIMA, Task1: TaskSlidingWindow, Task2: TaskMuSigma, Score: ScoreRaw},
			{Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskRegular, Score: ScoreLikelihood},
			{Model: ModelUSAD, Task1: TaskUniformReservoir, Task2: TaskMuSigma, Score: ScoreAverage},
		},
		Agg: AggPerfWeighted,
	}
	base := Config{Channels: 2, Window: 6, TrainSize: 24, WarmupVectors: 30, Seed: 11}
	serial, err := NewEnsemble(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewScoringPool(3)
	defer sp.Close()
	pbase := base
	pbase.ScorePool = sp
	pooled, err := NewEnsemble(pbase, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer pooled.Close()
	buf := make([]float64, 2)
	buf2 := make([]float64, 2)
	for step := 0; step < 300; step++ {
		rs, oks := serial.Step(syntheticVec(buf, step))
		rp, okp := pooled.Step(syntheticVec(buf2, step))
		if oks != okp || rs.Score != rp.Score {
			t.Fatalf("step %d: pooled ensemble diverged: (%v,%v) vs (%v,%v)",
				step, rs.Score, oks, rp.Score, okp)
		}
	}
	// Close drains the wrapper queue, so afterwards Completed counts every
	// fork-join wrapper the members fanned out — caller-claimed or not.
	sp.Close()
	if st := sp.Stats(); st.Completed == 0 {
		t.Fatalf("ensemble never fanned out to the scoring pool: %+v", st)
	}
}

// TestDetectorPageRoundTrip: PageOut/PageIn around continued stepping
// must be invisible in the scores, and Step on a paged detector must
// panic loudly rather than scoring garbage.
func TestDetectorPageRoundTrip(t *testing.T) {
	cfg := Config{
		Model: ModelARIMA, Task1: TaskSlidingWindow, Task2: TaskMuSigma,
		Score: ScoreLikelihood, Channels: 2, Window: 8, TrainSize: 16,
		WarmupVectors: 16, Seed: 3,
	}
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	buf2 := make([]float64, 2)
	for step := 0; step < 200; step++ {
		if step%50 == 25 {
			blob, err := paged.PageOut()
			if err != nil {
				t.Fatalf("step %d: PageOut: %v", step, err)
			}
			if !paged.Paged() {
				t.Fatal("Paged() false after PageOut")
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("Step on a paged detector did not panic")
					}
				}()
				paged.Step(syntheticVec(buf2, step))
			}()
			if err := paged.PageIn(blob); err != nil {
				t.Fatalf("step %d: PageIn: %v", step, err)
			}
		}
		rr, okr := ref.Step(syntheticVec(buf, step))
		rp, okp := paged.Step(syntheticVec(buf2, step))
		if okr != okp || rr.Score != rp.Score || rr.Nonconformity != rp.Nonconformity {
			t.Fatalf("step %d: paging changed the scores: (%v,%v) vs (%v,%v)",
				step, rr.Score, okr, rp.Score, okp)
		}
	}
	if _, err := paged.PageOut(); err != nil {
		t.Fatal(err)
	}
	if _, err := paged.PageOut(); err == nil {
		t.Fatal("double PageOut did not error")
	}
}

// TestEnsemblePageRoundTrip: the composed page set must restore every
// member bit-identically.
func TestEnsemblePageRoundTrip(t *testing.T) {
	spec := EnsembleSpec{
		Members: []PipelineSpec{
			{Model: ModelARIMA, Task1: TaskSlidingWindow, Task2: TaskMuSigma, Score: ScoreRaw},
			{Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskRegular, Score: ScoreLikelihood},
		},
		Agg: AggMean,
	}
	base := Config{Channels: 2, Window: 6, TrainSize: 24, WarmupVectors: 30, Seed: 13}
	ref, err := NewEnsemble(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := NewEnsemble(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	buf2 := make([]float64, 2)
	for step := 0; step < 150; step++ {
		if step == 80 {
			blob, err := paged.PageOut()
			if err != nil {
				t.Fatal(err)
			}
			if !paged.Paged() {
				t.Fatal("ensemble not paged after PageOut")
			}
			if err := paged.PageIn(blob); err != nil {
				t.Fatal(err)
			}
		}
		rr, okr := ref.Step(syntheticVec(buf, step))
		rp, okp := paged.Step(syntheticVec(buf2, step))
		if okr != okp || rr.Score != rp.Score {
			t.Fatalf("step %d: ensemble paging changed the scores", step)
		}
	}
}
