package streamad

import (
	"math"
	"testing"
)

// syntheticVec fills dst with a deterministic multi-channel waveform.
func syntheticVec(dst []float64, t int) []float64 {
	for c := range dst {
		dst[c] = math.Sin(float64(t)*0.07+float64(c)) + 0.1*math.Cos(float64(t)*0.31)
	}
	return dst
}

// buildWarmDetector assembles a detector with the Regular drift strategy
// parked far in the future, feeds it past warmup, and returns it ready to
// score — so a subsequent Step exercises exactly the serving hot path:
// representation push, predict, nonconformity, scoring, training-set
// observe.
func buildWarmDetector(t testing.TB, model ModelKind) *Detector {
	t.Helper()
	d, err := New(Config{
		Model: model, Task1: TaskSlidingWindow, Task2: TaskRegular,
		Score: ScoreLikelihood, RegularInterval: 1 << 30,
		Channels: 3, Window: 8, TrainSize: 32, WarmupVectors: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 3)
	step := 0
	for !d.WarmedUp() {
		d.Step(syntheticVec(buf, step))
		step++
		if step > 10000 {
			t.Fatal("detector never warmed up")
		}
	}
	// A few post-warmup steps let lazily grown scratch (sanitize buffers,
	// scorer windows, ARIMA series) reach steady state.
	for i := 0; i < 20; i++ {
		d.Step(syntheticVec(buf, step))
		step++
	}
	return d
}

// stepAllocs measures steady-state heap allocations per Step.
func stepAllocs(t *testing.T, model ModelKind) float64 {
	t.Helper()
	d := buildWarmDetector(t, model)
	buf := make([]float64, 3)
	step := 100000
	return testing.AllocsPerRun(200, func() {
		if _, ok := d.Step(syntheticVec(buf, step)); !ok {
			t.Fatal("warm detector returned not-ready")
		}
		step++
	})
}

// The scoring hot path must not touch the heap: the zero-allocation
// kernels are the contract the serve/train split's latency target rests
// on. Guarded for one neural pipeline (autoencoder) and one linear one
// (online ARIMA), per the spectrum's two ends.
func TestStepZeroAllocAutoencoder(t *testing.T) {
	if allocs := stepAllocs(t, ModelAE); allocs != 0 {
		t.Fatalf("autoencoder Step allocates %.1f objects per call, want 0", allocs)
	}
}

func TestStepZeroAllocARIMA(t *testing.T) {
	if allocs := stepAllocs(t, ModelARIMA); allocs != 0 {
		t.Fatalf("ARIMA Step allocates %.1f objects per call, want 0", allocs)
	}
}

// TestAsyncMatchesSyncWhenDrained is the equivalence guarantee of the
// serve/train split: draining the trainer after every step removes the
// only source of divergence (scoring on stale parameters), so async mode
// must reproduce synchronous scores bit for bit — the clone carries the
// full optimizer state and trains on an identical training-set snapshot.
func TestAsyncMatchesSyncWhenDrained(t *testing.T) {
	cfg := Config{
		Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskRegular,
		Score: ScoreLikelihood, RegularInterval: 25,
		Channels: 2, Window: 6, TrainSize: 24, WarmupVectors: 30, Seed: 5,
	}
	syncDet, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := cfg
	acfg.AsyncFineTune = true
	asyncDet, err := New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if !asyncDet.FineTuneStats().Async {
		t.Fatal("async detector did not activate the serve/train split")
	}

	buf := make([]float64, 2)
	buf2 := make([]float64, 2)
	for step := 0; step < 400; step++ {
		rs, oks := syncDet.Step(syntheticVec(buf, step))
		ra, oka := asyncDet.Step(syntheticVec(buf2, step))
		asyncDet.WaitFineTune()
		if oks != oka {
			t.Fatalf("step %d: readiness diverged (sync %v, async %v)", step, oks, oka)
		}
		if rs.Score != ra.Score || rs.Nonconformity != ra.Nonconformity {
			t.Fatalf("step %d: drained async diverged from sync: score %v vs %v, nonconformity %v vs %v",
				step, rs.Score, ra.Score, rs.Nonconformity, ra.Nonconformity)
		}
		if rs.FineTuned != ra.FineTuned {
			t.Fatalf("step %d: FineTuned diverged (sync %v, async %v)", step, rs.FineTuned, ra.FineTuned)
		}
	}
	if s, a := syncDet.FineTunes(), asyncDet.FineTunes(); s != a || s == 0 {
		t.Fatalf("fine-tune counts diverged: sync %d, async %d (want equal and nonzero)", s, a)
	}
}

// TestAsyncFineTuneConcurrent exercises the model swap under load without
// draining, so the background Fit genuinely overlaps scoring — the race
// job runs this with -race to prove the swap is clean.
func TestAsyncFineTuneConcurrent(t *testing.T) {
	d, err := New(Config{
		Model: ModelUSAD, Task1: TaskSlidingWindow, Task2: TaskRegular,
		Score: ScoreLikelihood, RegularInterval: 20,
		Channels: 2, Window: 6, TrainSize: 32, WarmupVectors: 40, Seed: 7,
		AsyncFineTune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	for step := 0; step < 600; step++ {
		res, ok := d.Step(syntheticVec(buf, step))
		if ok && (math.IsNaN(res.Score) || math.IsInf(res.Score, 0)) {
			t.Fatalf("step %d: non-finite score %v", step, res.Score)
		}
	}
	d.WaitFineTune()
	st := d.FineTuneStats()
	if !st.Async || st.Launched == 0 || st.Completed == 0 {
		t.Fatalf("expected async fine-tunes to have run, got %+v", st)
	}
	if d.FineTunes() == 0 {
		t.Fatal("no trained model was ever adopted")
	}
	var bucketTotal uint64
	for _, b := range st.Buckets {
		bucketTotal += b
	}
	if bucketTotal != uint64(st.Completed) {
		t.Fatalf("histogram counts %d do not sum to completed %d", bucketTotal, st.Completed)
	}
}

// TestAsyncSpecToken covers the grammar surface of the split.
func TestAsyncSpecToken(t *testing.T) {
	ps, err := ParsePipelineSpec("ae+sw+regular+al+async")
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Async || ps.Model != ModelAE || ps.Score != ScoreLikelihood {
		t.Fatalf("parsed %+v", ps)
	}
	if got := ps.String(); got != "ae+sw+regular+al+async" {
		t.Fatalf("round-trip = %q", got)
	}
	ps, err = ParsePipelineSpec("arima+sw+kswin+async")
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Async || ps.Score != ScoreLikelihood {
		t.Fatalf("parsed %+v", ps)
	}
	if _, err := ParsePipelineSpec("arima+sw+async"); err == nil {
		t.Fatal("3-part spec ending in async must not parse (async is not a task2)")
	}
}

// TestStepZeroAllocSanitizeAttribution covers the scoring hot path with
// both input repair and per-channel attribution switched on — the two
// features whose scratch buffers used to be allocated lazily inside the
// first Step instead of by the constructor.
func TestStepZeroAllocSanitizeAttribution(t *testing.T) {
	d, err := New(Config{
		Model: ModelARIMA, Task1: TaskSlidingWindow, Task2: TaskRegular,
		Score: ScoreLikelihood, RegularInterval: 1 << 30,
		Channels: 3, Window: 8, TrainSize: 32, WarmupVectors: 40, Seed: 3,
		Sanitize: true, Attribution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 3)
	step := 0
	for !d.WarmedUp() {
		d.Step(syntheticVec(buf, step))
		step++
		if step > 10000 {
			t.Fatal("detector never warmed up")
		}
	}
	for i := 0; i < 20; i++ {
		d.Step(syntheticVec(buf, step))
		step++
	}
	allocs := testing.AllocsPerRun(200, func() {
		vec := syntheticVec(buf, step)
		if step%7 == 0 {
			vec[step%3] = math.NaN() // exercise the repair branch too
		}
		if _, ok := d.Step(vec); !ok {
			t.Fatal("warm detector returned not-ready")
		}
		step++
	})
	if allocs != 0 {
		t.Fatalf("Step with sanitize+attribution allocates %.1f objects per call, want 0", allocs)
	}
}
