package streamad

import (
	"math"
	"testing"
)

// ensembleStream builds a deterministic 2-channel test stream.
func ensembleStream(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		t := float64(i)
		out[i] = []float64{math.Sin(t / 9), math.Cos(t/13) + 0.2*math.Sin(t/4)}
	}
	return out
}

func testEnsembleSpec(t *testing.T) EnsembleSpec {
	t.Helper()
	spec, err := ParseEnsembleSpec("ensemble(knn+sw+regular+avg, arima+sw+regular+avg, knn+ures+regular+avg; agg=perf, prune=-8)")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func testEnsembleBase() Config {
	return Config{Channels: 2, Window: 8, TrainSize: 25, WarmupVectors: 30, Seed: 5}
}

// TestNewEnsembleValidation covers member-count and member-build errors.
func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(testEnsembleBase(), EnsembleSpec{Members: []PipelineSpec{{Model: ModelKNN}}}); err == nil {
		t.Error("accepted 1-member ensemble")
	}
	// VAR demands the sliding window; the member error must surface.
	bad := EnsembleSpec{Members: []PipelineSpec{
		{Model: ModelKNN, Task1: TaskSlidingWindow},
		{Model: ModelVAR, Task1: TaskUniformReservoir},
	}}
	if _, err := NewEnsemble(testEnsembleBase(), bad); err == nil {
		t.Error("accepted invalid member pipeline")
	}
	// NewFromSpec routes both grammars.
	if _, err := NewFromSpec("knn+sw+regular+avg", testEnsembleBase()); err != nil {
		t.Errorf("single-pipeline spec: %v", err)
	}
	if _, err := NewFromSpec("ensemble(knn+sw+regular, arima+sw+regular)", testEnsembleBase()); err != nil {
		t.Errorf("ensemble spec: %v", err)
	}
	if _, err := NewFromSpec("nonsense", testEnsembleBase()); err == nil {
		t.Error("accepted a nonsense spec")
	}
}

// TestEnsembleDistinctMemberSeeds: members — even with identical specs —
// must run with distinct RNG seeds derived from the base seed.
func TestEnsembleDistinctMemberSeeds(t *testing.T) {
	spec := EnsembleSpec{Members: []PipelineSpec{
		{Model: ModelKNN, Task1: TaskUniformReservoir, Task2: TaskRegular, Score: ScoreAverage},
		{Model: ModelKNN, Task1: TaskUniformReservoir, Task2: TaskRegular, Score: ScoreAverage},
		{Model: ModelKNN, Task1: TaskUniformReservoir, Task2: TaskRegular, Score: ScoreAverage},
	}}
	e, err := NewEnsemble(testEnsembleBase(), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// The seeds are visible through the members' configurations.
	seeds := map[int64]bool{}
	for i, m := range e.inner.Members() {
		det, ok := m.(*Detector)
		if !ok {
			t.Fatalf("member %d is %T, want *Detector", i, m)
		}
		seed := det.Config().Seed
		if seeds[seed] {
			t.Fatalf("member %d reuses seed %d", i, seed)
		}
		seeds[seed] = true
	}
	if !seeds[testEnsembleBase().Seed] {
		t.Error("member 0 must run with the base seed")
	}
}

// TestEnsembleRunEndToEnd scores a series through a 3-member ensemble and
// sanity-checks the output ranges and member bookkeeping.
func TestEnsembleRunEndToEnd(t *testing.T) {
	e, err := NewEnsemble(testEnsembleBase(), testEnsembleSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	series := ensembleStream(200)
	scores, valid := e.Run(series)
	nValid := 0
	for i := range scores {
		if valid[i] {
			nValid++
			if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
				t.Fatalf("non-finite combined score at %d: %v", i, scores[i])
			}
		}
	}
	if nValid == 0 {
		t.Fatal("ensemble never became ready")
	}
	if e.Steps() != 200 {
		t.Fatalf("Steps=%d, want 200", e.Steps())
	}
	if e.FineTunes() == 0 {
		t.Fatal("expected drift-triggered fine-tunes with the regular strategy")
	}
	stats := e.MemberStats()
	if len(stats) != 3 {
		t.Fatalf("got %d member stats, want 3", len(stats))
	}
	for i, st := range stats {
		if st.Label == "" || st.Ready == 0 {
			t.Fatalf("member %d stats look dead: %+v", i, st)
		}
	}
}

// TestEnsembleSaveLoadBitIdentical checkpoints a live ensemble mid-stream
// — across drift-triggered fine-tunes — and verifies the restored
// ensemble's scores match the uninterrupted run exactly.
func TestEnsembleSaveLoadBitIdentical(t *testing.T) {
	series := ensembleStream(240)
	build := func() *Ensemble {
		e, err := NewEnsemble(testEnsembleBase(), testEnsembleSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref := build()
	defer ref.Close()
	live := build()
	defer live.Close()
	for i := 0; i < 150; i++ {
		ref.Step(series[i])
		live.Step(series[i])
	}
	blob, err := live.Save()
	if err != nil {
		t.Fatal(err)
	}
	restored := build()
	defer restored.Close()
	if err := restored.Load(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != 150 {
		t.Fatalf("restored Steps=%d, want 150", restored.Steps())
	}
	sawFineTune := false
	for i := 150; i < 240; i++ {
		want, wok := ref.Step(series[i])
		got, gok := restored.Step(series[i])
		if wok != gok || got.Score != want.Score || got.Nonconformity != want.Nonconformity || got.FineTuned != want.FineTuned {
			t.Fatalf("restored ensemble diverged at step %d: (%+v,%v) vs (%+v,%v)", i, got, gok, want, wok)
		}
		if got.FineTuned {
			sawFineTune = true
		}
	}
	if !sawFineTune {
		t.Fatal("test did not cross a fine-tune after the restore point; tighten the schedule")
	}
	// A mismatched configuration must be rejected.
	otherSpec := testEnsembleSpec(t)
	otherSpec.Agg = AggMedian
	other, err := NewEnsemble(testEnsembleBase(), otherSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Load(blob); err == nil {
		t.Error("median ensemble accepted a perf-weighted snapshot")
	}
}
