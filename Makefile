GO ?= go

.PHONY: ci build vet test race bench

# ci is the gate: everything a change must pass before merging.
ci: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
