GO ?= go

.PHONY: ci build vet test race bench bench-hotpath bench-smoke

# ci is the fast gate; the race detector runs as its own CI job (make
# race) so the concurrency suites don't slow the edit loop.
ci: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-hotpath regenerates the numbers recorded in BENCH_hotpath.json:
# per-model Step cost, Fit cost, and serving latency while a fine-tune is
# in flight (sync vs async).
bench-hotpath:
	$(GO) test -run '^$$' -bench 'BenchmarkDetectorStep|BenchmarkStepDuringFineTune|BenchmarkModelFit' -benchmem -benchtime 300x .

# bench-smoke is the CI gate: a handful of iterations of every hot-path
# benchmark, enough to catch a benchmark that no longer compiles or a
# kernel that panics, without the cost of stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDetectorStep|BenchmarkStepDuringFineTune|BenchmarkModelFit' -benchmem -benchtime 5x .
