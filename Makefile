GO ?= go

.PHONY: ci build vet test race bench bench-hotpath bench-smoke bench-soak bench-cascade bench-scale soak-smoke cascade-smoke shed-smoke drop-smoke scale-smoke cluster-smoke lint fmtcheck shellcheck staticcheck vulncheck

# ci is the fast gate; the race detector runs as its own CI job (make
# race) so the concurrency suites don't slow the edit loop. The smoke
# soaks run last: they need a building tree, and they are the only
# targets that exercise a live streamadd end to end — soak-smoke on the
# plain knn pipeline, cascade-smoke on the cascade(zscore, knn) screen,
# shed-smoke and drop-smoke on the shed / drop-oldest overload policies
# under deliberate overdrive, scale-smoke on the hot/warm/cold residency
# ladder with a 2k-stream fleet, and cluster-smoke on a 3-node cluster
# that loses a node mid-soak.
ci: fmtcheck vet lint build test soak-smoke cascade-smoke shed-smoke drop-smoke scale-smoke cluster-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzer suite (cmd/streamadlint: hotalloc,
# detrand, floatsafe, lockdiscipline, ctxgoroutine, statesync,
# metriclint, directive) over every package with cross-package facts,
# then shellcheck, staticcheck and govulncheck when they are on PATH
# (CI installs pinned versions; locally they are optional extras).
lint:
	$(GO) run ./cmd/streamadlint .
	@if command -v shellcheck >/dev/null 2>&1; then \
		shellcheck scripts/*.sh; \
	else \
		echo "shellcheck not installed; skipping (runs pinned in CI)"; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (runs pinned in CI)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (runs pinned in CI)"; \
	fi

# fmtcheck fails (listing the offenders) when any file needs gofmt.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

shellcheck:
	shellcheck scripts/*.sh

staticcheck:
	staticcheck ./...

vulncheck:
	govulncheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-hotpath regenerates the numbers recorded in BENCH_hotpath.json:
# per-model Step cost, Fit cost, and serving latency while a fine-tune is
# in flight (sync vs async).
bench-hotpath:
	$(GO) test -run '^$$' -bench 'BenchmarkDetectorStep|BenchmarkStepDuringFineTune|BenchmarkModelFit' -benchmem -benchtime 300x .

# bench-smoke is the CI gate: a handful of iterations of every hot-path
# benchmark, enough to catch a benchmark that no longer compiles or a
# kernel that panics, without the cost of stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDetectorStep|BenchmarkStepDuringFineTune|BenchmarkModelFit' -benchmem -benchtime 5x .

# bench-soak regenerates BENCH_soak.json: scripts/soak.sh boots a real
# streamadd (knn, 4 channels, block policy) on a loopback port and
# drives 64 streams of the abrupt-drift scenario at 50 vec/s for 30s
# through cmd/streamload, grading latency, shed/error rates, and online
# recall against SLOs. Exit 1 means an SLO was violated.
bench-soak:
	scripts/soak.sh full

# soak-smoke is the CI-sized version of the same harness: 64 streams,
# ~2 seconds of traffic, hard SLOs (zero 5xx, zero shed, zero errors,
# p99 < 750ms, recall >= 0.25). The report goes to a temp dir so smoke
# runs never dirty the checked-in benchmark.
soak-smoke:
	scripts/soak.sh smoke

# cascade-smoke is the same smoke soak against a streamadd running the
# cascade(zscore, knn) spec: recall must hold the plain-knn gate while
# the tier-0 screen is engaged — the script additionally scrapes
# /metrics and fails if any stream's admission rate reaches 50%.
cascade-smoke:
	scripts/soak.sh cascade

# shed-smoke overdrives a streamadd running the shed overload policy
# with a 4-deep queue: sheds must surface as inline 429-style results
# (zero 5xx, zero per-record errors, p99 held) and /metrics must show
# the shed counter actually moved.
shed-smoke:
	scripts/soak.sh shed

# drop-smoke overdrives a streamadd running the drop-oldest overload
# policy with a 4-deep queue: displaced vectors must surface as inline
# dropped results (zero 5xx, zero sheds, zero per-record errors, p99
# held) and /metrics must show the dropped counter actually moved.
drop-smoke:
	scripts/soak.sh drop

# scale-smoke registers a 2k-stream fleet against a live streamadd with
# the residency ladder enabled (-tier-warm-after, -stream-ttl), then
# drives only a 1% hot subset: /metrics must show resident (hot+warm)
# streams collapsing under a hard ceiling while the idle fleet goes
# cold, with zero non-429 5xx across both phases.
scale-smoke:
	scripts/scale_smoke.sh

# cluster-smoke boots a 3-node cluster, soaks it through every node at
# once, and SIGKILLs one node mid-run: zero non-429 5xx on survivors,
# bounded per-record errors, recall holds on scored records, and a
# survivor's /metrics must show forwarding happened, the dead peer
# marked down, and the ring shrunk to 2 nodes.
cluster-smoke:
	scripts/cluster_smoke.sh

# bench-scale regenerates BENCH_scale.json: an in-process walk of a
# 10k-stream fleet around the hot/warm/cold residency ladder with the
# shared scoring and trainer pools — register all, page all warm, drive
# the 1% hot set, cold-evict the idle rest. Self-grades: goroutines must
# stay O(workers) not O(streams), steady-state residency must collapse
# to the working set, every hot stream must take the warm→hot restore
# path, and steady heap must sit well under the all-resident heap.
bench-scale:
	$(GO) run ./cmd/benchscale -out BENCH_scale.json

# bench-cascade regenerates BENCH_cascade.json: one in-process run of
# the abrupt-drift scenario through the always-on heavy pipeline and
# through cascade(zscore, knn) on identical vectors, comparing mean
# per-vector cost, recall under the shared alert policy, and the
# conformal gate's observed false-admission rate against its target.
# Exit 1 means a quality gate (>=5x cost cut, <=2pt recall loss,
# admission within +/-50% of target) was missed.
bench-cascade:
	$(GO) run ./cmd/benchcascade -out BENCH_cascade.json
