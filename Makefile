GO ?= go

.PHONY: ci build vet test race bench

# ci is the fast gate; the race detector runs as its own CI job (make
# race) so the concurrency suites don't slow the edit loop.
ci: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
