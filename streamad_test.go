package streamad

import (
	"strings"
	"testing"

	"streamad/internal/dataset"
)

func TestCombosIsTableOne(t *testing.T) {
	combos := Combos()
	if len(combos) != 26 {
		t.Fatalf("Combos() = %d, want 26", len(combos))
	}
	// Count per model.
	perModel := map[ModelKind]int{}
	for _, c := range combos {
		perModel[c.Model]++
	}
	want := map[ModelKind]int{
		ModelARIMA: 6, ModelAE: 6, ModelUSAD: 6, ModelNBEATS: 6, ModelPCBIForest: 2,
	}
	for m, n := range want {
		if perModel[m] != n {
			t.Fatalf("%v has %d combos, want %d", m, perModel[m], n)
		}
	}
	// PCB-iForest only pairs with KSWIN and only SW/ARES.
	for _, c := range combos {
		if c.Model == ModelPCBIForest {
			if c.Task2 != TaskKSWIN {
				t.Fatalf("PCB-iForest with %v", c.Task2)
			}
			if c.Task1 == TaskUniformReservoir {
				t.Fatal("PCB-iForest with URES is not in Table I")
			}
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, c := range combos {
		k := c.String()
		if seen[k] {
			t.Fatalf("duplicate combo %s", k)
		}
		seen[k] = true
	}
}

func TestStringers(t *testing.T) {
	if ModelARIMA.String() != "Online ARIMA" || ModelPCBIForest.String() != "PCB-iForest" ||
		ModelAE.String() != "2-layer AE" || ModelUSAD.String() != "USAD" ||
		ModelNBEATS.String() != "N-BEATS" || ModelVAR.String() != "VAR" {
		t.Fatal("model names")
	}
	if TaskSlidingWindow.String() != "SW" || TaskUniformReservoir.String() != "URES" ||
		TaskAnomalyReservoir.String() != "ARES" {
		t.Fatal("task1 names")
	}
	if TaskMuSigma.String() != "μ/σ" || TaskKSWIN.String() != "KS" || TaskRegular.String() != "regular" {
		t.Fatal("task2 names")
	}
	if ScoreAverage.String() != "Avg" || ScoreLikelihood.String() != "AL" || ScoreRaw.String() != "Raw" {
		t.Fatal("score names")
	}
	c := Combo{Model: ModelUSAD, Task1: TaskSlidingWindow, Task2: TaskMuSigma}
	if c.String() != "USAD/SW/μ/σ" {
		t.Fatalf("combo string = %q", c.String())
	}
	if !strings.Contains(ModelKind(99).String(), "99") {
		t.Fatal("unknown kind stringer")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                          // no channels
		{Channels: 1, Window: 2},    // window too small
		{Channels: 1, TrainSize: 1}, // train too small
		{Channels: 1, ShortWindow: 200, ScoreWindow: 100},           // short ≥ long
		{Channels: 1, Model: ModelVAR, Task1: TaskAnomalyReservoir}, // VAR needs SW
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	det, err := New(Config{Channels: 2, Window: 8, TrainSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := det.Config()
	if cfg.WarmupVectors != 10 || cfg.ScoreWindow != 8 || cfg.ShortWindow < 2 ||
		cfg.Alpha == 0 || cfg.Seed == 0 || cfg.InitEpochs == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestNeuralDefaultsGetMoreInitEpochs(t *testing.T) {
	a, _ := New(Config{Channels: 1, Window: 8, TrainSize: 10, Model: ModelAE})
	if a.Config().InitEpochs < 2 {
		t.Fatalf("AE InitEpochs = %d, want several", a.Config().InitEpochs)
	}
	b, _ := New(Config{Channels: 1, Window: 8, TrainSize: 10, Model: ModelARIMA})
	if b.Config().InitEpochs != 1 {
		t.Fatalf("ARIMA InitEpochs = %d, want 1", b.Config().InitEpochs)
	}
}

func TestDetectorDeterministicWithSeed(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 400, SeriesCount: 1, Seed: 5})
	s := corpus.Series[0]
	run := func() []float64 {
		det, err := New(Config{
			Model: ModelAE, Task1: TaskUniformReservoir, Task2: TaskMuSigma,
			Score: ScoreAverage, Channels: s.Channels(),
			Window: 8, TrainSize: 30, WarmupVectors: 50, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		scores, _ := det.Run(s.Data)
		return scores
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scores diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAllTask2StrategiesRun(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 300, SeriesCount: 1, Seed: 6})
	s := corpus.Series[0]
	for _, t2 := range []Task2{TaskMuSigma, TaskKSWIN, TaskRegular, TaskADWIN} {
		det, err := New(Config{
			Model: ModelARIMA, Task1: TaskSlidingWindow, Task2: t2,
			Score: ScoreAverage, Channels: s.Channels(),
			Window: 8, TrainSize: 30, WarmupVectors: 40, KSCheckEvery: 5,
			RegularInterval: 50, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", t2, err)
		}
		_, valid := det.Run(s.Data)
		any := false
		for _, ok := range valid {
			any = any || ok
		}
		if !any {
			t.Fatalf("%v produced no valid scores", t2)
		}
	}
	// Regular must fine-tune on its cadence.
	det, _ := New(Config{
		Model: ModelARIMA, Task1: TaskSlidingWindow, Task2: TaskRegular,
		Score: ScoreAverage, Channels: s.Channels(),
		Window: 8, TrainSize: 30, WarmupVectors: 40, RegularInterval: 50, Seed: 2,
	})
	det.Run(s.Data)
	if det.FineTunes() == 0 {
		t.Fatal("Regular strategy never fine-tuned")
	}
}

func TestVARWithSlidingWindowWorks(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 300, SeriesCount: 1, Seed: 7})
	s := corpus.Series[0]
	det, err := New(Config{
		Model: ModelVAR, Task1: TaskSlidingWindow, Task2: TaskMuSigma,
		Score: ScoreAverage, Channels: s.Channels(),
		Window: 8, TrainSize: 40, WarmupVectors: 60, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, valid := det.Run(s.Data)
	for i, ok := range valid {
		if ok && (scores[i] < 0 || scores[i] > 1) {
			t.Fatalf("score out of range at %d: %v", i, scores[i])
		}
	}
}
