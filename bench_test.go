// Benchmark harness: one benchmark per table and figure of the paper,
// plus component-throughput and ablation benches. Quality numbers (AUC,
// gaps, op counts) are attached to the benchmark output via ReportMetric,
// so `go test -bench=. -benchmem` regenerates both the timing and the
// experiment shape. cmd/table1..3 and cmd/fig1 print the full tables.
package streamad_test

import (
	"fmt"
	"math/rand"
	"testing"

	"streamad"

	"streamad/internal/arima"
	"streamad/internal/autoenc"
	"streamad/internal/bench"
	"streamad/internal/core"
	"streamad/internal/dataset"
	"streamad/internal/drift"
	"streamad/internal/knn"
	"streamad/internal/metrics"
	"streamad/internal/nbeats"
	"streamad/internal/reservoir"
	"streamad/internal/score"
	"streamad/internal/usad"
)

// benchProfile is the scaled-down profile used by the benchmarks.
func benchProfile() bench.Profile {
	return bench.Profile{
		Data:          dataset.Config{Length: 1200, SeriesCount: 1, Seed: 11},
		Window:        12,
		TrainSize:     60,
		WarmupVectors: 150,
		ScoreWindow:   60,
		ShortWindow:   4,
		KSCheckEvery:  25,
		CalibFrac:     0.3,
		CalibQ:        0.99,
		Seed:          1,
	}
}

// BenchmarkTable1Combos regenerates the Table I combination grid.
func BenchmarkTable1Combos(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(streamad.Combos())
	}
	b.ReportMetric(float64(n), "combos")
}

// BenchmarkTable2DriftMuSigma measures the per-step cost of the μ/σ-Change
// strategy at the paper's parameters (N=9, w=100, m=500), reporting the
// measured arithmetic operations next to the timing (Table II).
func BenchmarkTable2DriftMuSigma(b *testing.B) {
	benchDrift(b, func(dim int) drift.Detector { return drift.NewMuSigmaChange(dim) }, 9, 100, 500)
}

// BenchmarkTable2DriftKSWIN measures the per-step cost of the KSWIN
// strategy at reduced parameters (per-step KS over m·w samples per channel
// is exactly the expense Table II quantifies).
func BenchmarkTable2DriftKSWIN(b *testing.B) {
	benchDrift(b, func(dim int) drift.Detector {
		return drift.NewKSWIN(9, 20, drift.DefaultAlpha)
	}, 9, 20, 100)
}

func benchDrift(b *testing.B, mk func(dim int) drift.Detector, channels, w, m int) {
	dim := channels * w
	rng := rand.New(rand.NewSource(1))
	det := mk(dim)
	sw := reservoir.NewSlidingWindow(m, dim)
	x := make([]float64, dim)
	for i := 0; i < m; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		sw.Observe(x, 0)
	}
	det.Reset(sw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		u := sw.Observe(x, 0)
		if det.Observe(u, x, sw) {
			det.Reset(sw)
		}
	}
	b.StopTimer()
	ops := det.Ops()
	b.ReportMetric(float64(ops.Adds)/float64(b.N), "adds/step")
	b.ReportMetric(float64(ops.Mults)/float64(b.N), "mults/step")
	b.ReportMetric(float64(ops.Cmps)/float64(b.N), "cmps/step")
}

// benchTable3Cell runs one Table III cell (combo × corpus) per iteration
// and reports its PR-AUC, so the benchmark regenerates both runtime and
// the headline quality number of that row.
func benchTable3Cell(b *testing.B, mk streamad.ModelKind, t1 streamad.Task1, t2 streamad.Task2, corpus func(dataset.Config) *dataset.Corpus) {
	p := benchProfile()
	c := corpus(p.Data)
	combo := streamad.Combo{Model: mk, Task1: t1, Task2: t2}
	var auc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := bench.RunSeries(combo, streamad.ScoreLikelihood, p, c.Series[0])
		if err != nil {
			b.Fatal(err)
		}
		auc = sum.AUC
	}
	b.ReportMetric(auc, "pr-auc")
}

// Table III row benches: one representative cell per model per corpus.
func BenchmarkTable3ARIMADaphnet(b *testing.B) {
	benchTable3Cell(b, streamad.ModelARIMA, streamad.TaskSlidingWindow, streamad.TaskMuSigma, dataset.Daphnet)
}

func BenchmarkTable3AEDaphnet(b *testing.B) {
	benchTable3Cell(b, streamad.ModelAE, streamad.TaskSlidingWindow, streamad.TaskMuSigma, dataset.Daphnet)
}

func BenchmarkTable3USADExathlon(b *testing.B) {
	benchTable3Cell(b, streamad.ModelUSAD, streamad.TaskUniformReservoir, streamad.TaskMuSigma, dataset.Exathlon)
}

func BenchmarkTable3NBEATSSMD(b *testing.B) {
	benchTable3Cell(b, streamad.ModelNBEATS, streamad.TaskAnomalyReservoir, streamad.TaskMuSigma, dataset.SMD)
}

func BenchmarkTable3PCBIForestSMD(b *testing.B) {
	benchTable3Cell(b, streamad.ModelPCBIForest, streamad.TaskSlidingWindow, streamad.TaskKSWIN, dataset.SMD)
}

// BenchmarkFig1Finetune runs the Figure 1 fine-tuning experiment and
// reports both gaps; the "gap-finetuned" metric exceeding "gap-stale"
// is the paper's qualitative finding.
func BenchmarkFig1Finetune(b *testing.B) {
	p := bench.Fig1Profile()
	var res *bench.Fig1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.FinetuneExperimentAnySeed(bench.Fig1Config{Profile: p}, 11, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GapFinetuned, "gap-finetuned")
	b.ReportMetric(res.GapStale, "gap-stale")
}

// BenchmarkDetectorStep measures steady-state per-step throughput of every
// model at the paper's component stack (SW + μ/σ + anomaly likelihood).
func BenchmarkDetectorStep(b *testing.B) {
	corpus := dataset.Daphnet(dataset.Config{Length: 600, SeriesCount: 1, Seed: 4})
	s := corpus.Series[0]
	for _, mk := range []streamad.ModelKind{streamad.ModelARIMA, streamad.ModelPCBIForest, streamad.ModelAE, streamad.ModelUSAD, streamad.ModelNBEATS, streamad.ModelVAR} {
		mk := mk
		b.Run(mk.String(), func(b *testing.B) {
			det, err := streamad.New(streamad.Config{
				Model: mk, Task1: streamad.TaskSlidingWindow, Task2: streamad.TaskMuSigma,
				Score: streamad.ScoreLikelihood, Channels: s.Channels(),
				Window: 12, TrainSize: 60, WarmupVectors: 100, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm up outside the timed region.
			for _, row := range s.Data {
				det.Step(row)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Step(s.Data[200+(i%300)])
			}
		})
	}
}

// BenchmarkModelFit measures one fine-tuning epoch per model over a
// TrainSize×dim training set — exactly the work the serve/train split
// moves off the scoring goroutine. Run with -benchmem: the Fit path may
// allocate (it is off the latency-critical path), but its cost here is
// what a synchronous fine-tune adds to the triggering Step.
func BenchmarkModelFit(b *testing.B) {
	const (
		channels = 3
		window   = 12
		rows     = 60
	)
	dim := channels * window
	rng := rand.New(rand.NewSource(9))
	set := make([][]float64, rows)
	for i := range set {
		set[i] = make([]float64, dim)
		for j := range set[i] {
			set[i][j] = rng.NormFloat64()
		}
	}
	models := []struct {
		name string
		mk   func() (core.Model, error)
	}{
		{"arima", func() (core.Model, error) {
			return arima.New(arima.Config{Lags: window - 2, D: 1, Channels: channels})
		}},
		{"ae", func() (core.Model, error) {
			return autoenc.New(autoenc.Config{Dim: dim, Seed: 1})
		}},
		{"usad", func() (core.Model, error) {
			return usad.New(usad.Config{Dim: dim, Seed: 1})
		}},
		{"nbeats", func() (core.Model, error) {
			return nbeats.New(nbeats.Config{Channels: channels, BackcastRows: window - 1, Seed: 1})
		}},
		{"knn", func() (core.Model, error) {
			return knn.New(knn.Config{Dim: dim})
		}},
	}
	for _, m := range models {
		m := m
		b.Run(m.name, func(b *testing.B) {
			model, err := m.mk()
			if err != nil {
				b.Fatal(err)
			}
			// First Fit grows lazily allocated scratch; time steady state.
			model.Fit(set)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.Fit(set)
			}
		})
	}
}

// BenchmarkStepDuringFineTune measures serving latency while drift keeps
// triggering fine-tunes (Regular strategy, every 40 vectors). In sync
// mode every 40th Step pays the full Fit inline; in async mode that Step
// only clones the model and launches the trainer, scoring continues on
// the published parameters, so the amortized per-step latency drops by
// roughly Fit/40. This is the headline serve/train-split number in
// BENCH_hotpath.json.
func BenchmarkStepDuringFineTune(b *testing.B) {
	corpus := dataset.Daphnet(dataset.Config{Length: 600, SeriesCount: 1, Seed: 4})
	s := corpus.Series[0]
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			det, err := streamad.New(streamad.Config{
				Model: streamad.ModelAE, Task1: streamad.TaskSlidingWindow, Task2: streamad.TaskRegular,
				Score: streamad.ScoreLikelihood, RegularInterval: 40,
				Channels: s.Channels(), Window: 12, TrainSize: 60, WarmupVectors: 100, Seed: 1,
				AsyncFineTune: mode.async,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range s.Data {
				det.Step(row)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.Step(s.Data[200+(i%300)])
			}
			b.StopTimer()
			det.WaitFineTune()
		})
	}
}

// BenchmarkAblationReservoir compares URES against ARES detection quality
// (the paper's finding: the anomaly-aware reservoir often improves the
// PR-AUC) on the same stream.
func BenchmarkAblationReservoir(b *testing.B) {
	p := benchProfile()
	corpus := dataset.SMD(p.Data)
	for _, t1 := range []streamad.Task1{streamad.TaskUniformReservoir, streamad.TaskAnomalyReservoir} {
		t1 := t1
		b.Run(t1.String(), func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				sum, err := bench.RunSeries(streamad.Combo{Model: streamad.ModelAE, Task1: t1, Task2: streamad.TaskMuSigma},
					streamad.ScoreLikelihood, p, corpus.Series[0])
				if err != nil {
					b.Fatal(err)
				}
				auc = sum.AUC
			}
			b.ReportMetric(auc, "pr-auc")
		})
	}
}

// BenchmarkAblationScoring compares the three anomaly scoring functions on
// the same nonconformity stream (the paper's Table III bottom rows: the
// NAB score improves from Raw to Average to Anomaly Likelihood).
func BenchmarkAblationScoring(b *testing.B) {
	p := benchProfile()
	corpus := dataset.Daphnet(p.Data)
	for _, sk := range []streamad.ScoreKind{streamad.ScoreRaw, streamad.ScoreAverage, streamad.ScoreLikelihood} {
		sk := sk
		b.Run(sk.String(), func(b *testing.B) {
			var nab float64
			for i := 0; i < b.N; i++ {
				sum, err := bench.RunSeries(streamad.Combo{Model: streamad.ModelARIMA, Task1: streamad.TaskSlidingWindow, Task2: streamad.TaskMuSigma},
					sk, p, corpus.Series[0])
				if err != nil {
					b.Fatal(err)
				}
				nab = sum.NAB
			}
			b.ReportMetric(nab, "nab")
		})
	}
}

// BenchmarkAblationARESPriority sweeps the ARES priority parameters
// (u-range) against the paper's defaults, reporting how often anomalous
// vectors survive in the reservoir (lower = better filtering).
func BenchmarkAblationARESPriority(b *testing.B) {
	cases := []struct {
		name       string
		uMin, uMax float64
	}{
		{"paper-0.7-0.9", 0.7, 0.9},
		{"wide-0.1-0.9", 0.1, 0.9},
		{"tight-0.85-0.9", 0.85, 0.9},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var kept float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i + 1)))
				ar := reservoir.NewAnomalyAwareReservoirParams(50, 1, rng, c.uMin, c.uMax, 3, 3)
				for j := 0; j < 50; j++ {
					ar.Observe([]float64{0}, 0.05)
				}
				for j := 0; j < 500; j++ {
					ar.Observe([]float64{1}, 0.9)
				}
				anomalous := 0
				for _, it := range ar.Items() {
					if it[0] == 1 {
						anomalous++
					}
				}
				kept = float64(anomalous)
			}
			b.ReportMetric(kept, "anomalous-kept")
		})
	}
}

// BenchmarkAblationNBEATSBasis compares the generic and interpretable
// N-BEATS configurations (DESIGN.md ablation) on forecast-driven
// detection quality.
func BenchmarkAblationNBEATSBasis(b *testing.B) {
	p := benchProfile()
	corpus := dataset.Daphnet(p.Data)
	s := corpus.Series[0]
	run := func(b *testing.B, interpretable bool) {
		var auc float64
		for i := 0; i < b.N; i++ {
			det, err := newNBEATSDetector(p, s.Channels(), interpretable)
			if err != nil {
				b.Fatal(err)
			}
			scores, valid := det.Run(s.Data)
			th := metrics.QuantileThreshold(scores, valid, p.CalibQ)
			auc = metrics.Evaluate(scores, s.Labels, valid, th).AUC
		}
		b.ReportMetric(auc, "pr-auc")
	}
	b.Run("generic", func(b *testing.B) { run(b, false) })
	b.Run("interpretable", func(b *testing.B) { run(b, true) })
}

// BenchmarkKSWINThrottle quantifies the cost of per-step KSWIN testing
// versus the throttled variant — the Table II motivation in wall-clock
// form.
func BenchmarkKSWINThrottle(b *testing.B) {
	for _, every := range []int{1, 10, 50} {
		every := every
		b.Run(fmt.Sprintf("checkevery-%d", every), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			channels, w, m := 4, 10, 50
			dim := channels * w
			k := drift.NewKSWIN(channels, w, drift.DefaultAlpha)
			k.CheckEvery = every
			sw := reservoir.NewSlidingWindow(m, dim)
			x := make([]float64, dim)
			for i := 0; i < m; i++ {
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				sw.Observe(x, 0)
			}
			k.Reset(sw)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				u := sw.Observe(x, 0)
				if k.Observe(u, x, sw) {
					k.Reset(sw)
				}
			}
		})
	}
}

// newNBEATSDetector assembles an N-BEATS detector with either the generic
// or the interpretable (trend+seasonality) basis for the basis ablation.
func newNBEATSDetector(p bench.Profile, channels int, interpretable bool) (*core.Detector, error) {
	cfg := nbeats.Config{Channels: channels, BackcastRows: p.Window - 1, Seed: p.Seed}
	var model core.Model
	var err error
	if interpretable {
		model, err = nbeats.NewInterpretable(cfg)
	} else {
		model, err = nbeats.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	return core.NewDetector(core.Config{
		Representer:   core.NewRepresenter(p.Window, channels),
		Model:         model,
		TrainingSet:   reservoir.NewSlidingWindow(p.TrainSize, p.Window*channels),
		Drift:         drift.NewMuSigmaChange(p.Window * channels),
		Measure:       score.Cosine{},
		Scorer:        score.NewAnomalyLikelihood(p.ScoreWindow, p.ShortWindow),
		WarmupVectors: p.WarmupVectors,
		InitEpochs:    10,
	})
}
