module streamad

go 1.22
