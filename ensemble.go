package streamad

import (
	"fmt"
	"strings"

	"streamad/internal/core"
	"streamad/internal/ensemble"
	"streamad/internal/ingest"
)

// AggKind selects the ensemble's score combiner.
type AggKind = ensemble.Agg

// The ensemble combiners: unweighted mean, most-alarmed member, member
// median, trimmed mean (⌈n/4⌉ dropped from each end) and the
// performance-weighted mean driven by the members' rolling agreement
// counters.
const (
	AggMean         = ensemble.AggMean
	AggMax          = ensemble.AggMax
	AggMedian       = ensemble.AggMedian
	AggTrimmedMean  = ensemble.AggTrimmedMean
	AggPerfWeighted = ensemble.AggPerfWeighted
)

// MemberStat re-exports one ensemble member's observable state.
type MemberStat = ensemble.MemberStat

// StreamDetector is the behavioral contract shared by single-pipeline
// detectors (*Detector) and ensembles (*Ensemble): streaming scoring plus
// full-state checkpointing. The serving stack — the sharded ingestion
// registry (internal/ingest) and the HTTP server on top of it — and the
// CLIs program against it, so an ensemble drops in anywhere one pipeline
// did.
type StreamDetector interface {
	// Step consumes the next stream vector; ok is false during window
	// fill and warmup.
	Step(s []float64) (Result, bool)
	// Run scores an entire series with a validity mask.
	Run(series [][]float64) (scores []float64, valid []bool)
	// Steps returns the number of stream vectors consumed.
	Steps() int
	// FineTunes returns the drift-triggered fine-tuning sessions so far.
	FineTunes() int
	// Save returns a full checkpoint; Load restores one bit-identically.
	Save() ([]byte, error)
	Load(data []byte) error
}

var (
	_ StreamDetector = (*Detector)(nil)
	_ StreamDetector = (*Ensemble)(nil)

	// Every StreamDetector is admissible to the ingestion layer: it can
	// be stepped by the batching dispatcher and checkpointed by the
	// snapshotter/evictor. Breaking either facet breaks the daemon.
	_ ingest.Stepper      = (StreamDetector)(nil)
	_ ingest.Checkpointer = (StreamDetector)(nil)

	// Detectors and ensembles support warm-tier paging (core.Pager), so
	// the registry's tiering policy can demote their window state.
	_ core.Pager = (*Detector)(nil)
	_ core.Pager = (*Ensemble)(nil)
)

// PipelineSpec names one detector pipeline: the (model × Task 1 × Task 2
// × F) combination of the paper's grid.
type PipelineSpec struct {
	Model ModelKind
	Task1 Task1
	Task2 Task2
	Score ScoreKind
	// Async requests the serve/train split for this pipeline (the spec
	// grammar's trailing "+async" token); see Config.AsyncFineTune.
	Async bool
}

// String renders the spec in the compact grammar form accepted by
// ParsePipelineSpec, e.g. "arima+sw+kswin+al" or
// "usad+sw+musigma+al+async".
func (p PipelineSpec) String() string {
	s := specModelName(p.Model) + "+" + specTask1Name(p.Task1) + "+" +
		specTask2Name(p.Task2) + "+" + specScoreName(p.Score)
	if p.Async {
		s += "+async"
	}
	return s
}

// EnsembleSpec describes an ensemble: its member pipelines and the
// aggregation/pruning policy. The zero values of the policy fields select
// the defaults (mean combiner, verdict 0.5, counter cap 64, no pruning).
type EnsembleSpec struct {
	// Members are the pipelines (at least two).
	Members []PipelineSpec
	// Agg is the score combiner.
	Agg AggKind
	// Verdict is the binary-verdict boundary for the agreement counters
	// (0 = 0.5).
	Verdict float64
	// CounterCap bounds the rolling agreement counters (0 = 64).
	CounterCap int
	// PruneEnabled activates the pruning policy: members whose counter
	// reaches PruneBelow are excluded from aggregation until it recovers
	// to zero.
	PruneEnabled bool
	// PruneBelow is the (negative) disable threshold (0 = -16 when
	// pruning is enabled).
	PruneBelow int
}

// String renders the spec in the grammar form accepted by
// ParseEnsembleSpec.
func (e EnsembleSpec) String() string {
	parts := make([]string, len(e.Members))
	for i, m := range e.Members {
		parts[i] = m.String()
	}
	s := "ensemble(" + strings.Join(parts, ", ") + "; agg=" + e.Agg.String()
	if e.Verdict != 0 && e.Verdict != 0.5 {
		s += fmt.Sprintf(", verdict=%g", e.Verdict)
	}
	if e.CounterCap != 0 && e.CounterCap != 64 {
		s += fmt.Sprintf(", cap=%d", e.CounterCap)
	}
	if e.PruneEnabled {
		below := e.PruneBelow
		if below == 0 {
			below = -16
		}
		s += fmt.Sprintf(", prune=%d", below)
	}
	return s + ")"
}

// memberSeedStride separates the member RNG seed lanes: member i runs
// with Seed + i·stride, so two members with identical pipeline specs
// still draw independent reservoir samples, forest shapes and weight
// initializations — the ensemble's bagging diversity.
const memberSeedStride int64 = 1_000_003

// Ensemble runs several complete detector pipelines concurrently over one
// stream and combines their per-step scores; see internal/ensemble for
// the aggregation and performance-weighting machinery. Build one with
// NewEnsemble or NewFromSpec. Like Detector, an Ensemble is not safe for
// concurrent use.
type Ensemble struct {
	inner *ensemble.Ensemble
	spec  EnsembleSpec //streamad:transient construction blueprint kept for Spec(); Save/Load round-trips the inner ensemble's state
}

// NewEnsemble builds an ensemble detector. base supplies the stream
// geometry and tuning shared by every member (Channels is required;
// Window, TrainSize, warmup, Sanitize and the rest apply to each member);
// base's Model/Task1/Task2/Score are ignored in favor of the member
// specs. Member i runs with base.Seed + i·1000003, so members — even two
// with the same spec — never share a random stream, while the whole
// ensemble stays reproducible from base.Seed.
func NewEnsemble(base Config, spec EnsembleSpec) (*Ensemble, error) {
	if len(spec.Members) < 2 {
		return nil, fmt.Errorf("streamad: an ensemble needs at least 2 members, got %d", len(spec.Members))
	}
	seed := base.Seed
	if seed == 0 {
		seed = 1
	}
	members := make([]ensemble.Member, len(spec.Members))
	labels := make([]string, len(spec.Members))
	for i, ms := range spec.Members {
		cfg := base
		cfg.Model, cfg.Task1, cfg.Task2, cfg.Score = ms.Model, ms.Task1, ms.Task2, ms.Score
		cfg.AsyncFineTune = base.AsyncFineTune || ms.Async
		cfg.Seed = seed + int64(i)*memberSeedStride
		det, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("streamad: ensemble member %d (%s): %w", i, ms, err)
		}
		members[i] = det
		labels[i] = ms.String()
	}
	inner, err := ensemble.New(ensemble.Config{
		Members:      members,
		Labels:       labels,
		Pool:         base.ScorePool,
		Agg:          spec.Agg,
		Verdict:      spec.Verdict,
		CounterCap:   spec.CounterCap,
		PruneEnabled: spec.PruneEnabled,
		PruneBelow:   spec.PruneBelow,
	})
	if err != nil {
		return nil, fmt.Errorf("streamad: %w", err)
	}
	return &Ensemble{inner: inner, spec: spec}, nil
}

// NewFromSpec builds a detector from a spec string: a single pipeline
// ("usad+sw+musigma+al"), an ensemble
// ("ensemble(arima+sw+kswin, usad+ares+regular; agg=median)"), a
// screening cascade ("cascade(zscore, knn; admit=0.05)") or a standalone
// tier-0 detector ("hampel"). base supplies everything the spec doesn't
// (Channels, Window, Seed, …); its Model/Task1/Task2/Score are
// overridden by the spec.
func NewFromSpec(spec string, base Config) (StreamDetector, error) {
	if IsCascadeSpec(spec) {
		cs, err := ParseCascadeSpec(spec)
		if err != nil {
			return nil, err
		}
		return NewCascade(base, cs)
	}
	if IsEnsembleSpec(spec) {
		es, err := ParseEnsembleSpec(spec)
		if err != nil {
			return nil, err
		}
		return NewEnsemble(base, es)
	}
	if IsTier0Spec(spec) {
		kind, err := ParseTier0Kind(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		return NewTier0(base, kind, 0)
	}
	ps, err := ParsePipelineSpec(spec)
	if err != nil {
		return nil, err
	}
	cfg := base
	cfg.Model, cfg.Task1, cfg.Task2, cfg.Score = ps.Model, ps.Task1, ps.Task2, ps.Score
	cfg.AsyncFineTune = base.AsyncFineTune || ps.Async
	return New(cfg)
}

// Step consumes the next stream vector, stepping every member
// concurrently; ok becomes true once at least one member scores.
func (e *Ensemble) Step(s []float64) (Result, bool) { return e.inner.Step(s) }

// Run scores an entire series, returning per-step combined scores and a
// validity mask.
func (e *Ensemble) Run(series [][]float64) (scores []float64, valid []bool) {
	scores = make([]float64, len(series))
	valid = make([]bool, len(series))
	for i, s := range series {
		if res, ok := e.Step(s); ok {
			scores[i] = res.Score
			valid[i] = true
		}
	}
	return scores, valid
}

// Steps returns the number of stream vectors consumed, including warmup.
func (e *Ensemble) Steps() int { return e.inner.Steps() }

// FineTunes returns the total drift-triggered fine-tuning sessions across
// all members.
func (e *Ensemble) FineTunes() int { return e.inner.FineTunes() }

// FineTuneStats aggregates the members' serve/train split statistics.
// Safe from any goroutine.
func (e *Ensemble) FineTuneStats() FineTuneStats { return e.inner.FineTuneStats() }

// WaitFineTune drains every member's in-flight asynchronous fine-tune.
// Serialize with Step, like the single-pipeline variant.
func (e *Ensemble) WaitFineTune() { e.inner.WaitFineTune() }

// MemberStats returns each member's counters, weight and last score.
func (e *Ensemble) MemberStats() []MemberStat { return e.inner.MemberStats() }

// Spec returns the ensemble's member and policy specification.
func (e *Ensemble) Spec() EnsembleSpec { return e.spec }

// Save returns a binary checkpoint composing every member's full
// checkpoint (model, optimizer, window, training set, RNG positions)
// with the ensemble's agreement counters and pruning state. An ensemble
// restored with Load scores bit-identically to an uninterrupted run.
func (e *Ensemble) Save() ([]byte, error) { return e.inner.Save() }

// Load restores a checkpoint produced by Save. The ensemble must have
// been built with the same specification and base configuration; member
// and policy mismatches are rejected.
func (e *Ensemble) Load(data []byte) error { return e.inner.Load(data) }

// PageOut demotes every member to the warm tier (drain fine-tunes,
// serialize window state, release backing storage) and returns the
// combined blob; models stay resident. Step panics until PageIn.
func (e *Ensemble) PageOut() ([]byte, error) { return e.inner.PageOut() }

// PageIn restores state paged out by PageOut, bit-identically.
func (e *Ensemble) PageIn(blob []byte) error { return e.inner.PageIn(blob) }

// Paged reports whether the members' window state is paged out.
func (e *Ensemble) Paged() bool { return e.inner.Paged() }

// Close drains every member's in-flight fine-tune so no trainer-pool
// task outlives the ensemble. The ensemble remains usable; optional for
// process-lifetime ensembles.
func (e *Ensemble) Close() { e.inner.Close() }
