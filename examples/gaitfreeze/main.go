// Wearable-sensor freeze-of-gait detection — a Daphnet-style scenario.
// Nine accelerometer channels stream through an online-ARIMA detector and
// a USAD detector. Freeze episodes — collapsed gait oscillation with an
// irregular tremor — are "inlier-like" anomalies: their values stay inside
// the normal range, so the forecasting model (which is surprised by the
// changed dynamics) tends to catch them at onset, while the reconstruction
// model may reconstruct the simple frozen signal all too well. The example
// prints each detector's flagged intervals next to the labelled episodes,
// the interval-style output a clinician-facing system would show.
//
// Run with:
//
//	go run ./examples/gaitfreeze
package main

import (
	"fmt"
	"log"

	"streamad"
	"streamad/internal/dataset"
	"streamad/internal/metrics"
)

func main() {
	corpus := dataset.Daphnet(dataset.Config{Length: 2400, SeriesCount: 1, Seed: 31})
	series := corpus.Series[0]
	episodes := metrics.Ranges(series.Labels)
	fmt.Printf("gait stream: %d steps × %d accelerometer channels\n", series.Len(), series.Channels())
	fmt.Printf("labelled freeze episodes: ")
	for _, e := range episodes {
		fmt.Printf("[%d,%d] ", e.Start, e.End)
	}
	fmt.Println()

	for _, mk := range []streamad.ModelKind{streamad.ModelARIMA, streamad.ModelUSAD} {
		det, err := streamad.New(streamad.Config{
			Model:         mk,
			Task1:         streamad.TaskSlidingWindow,
			Task2:         streamad.TaskMuSigma,
			Score:         streamad.ScoreAverage,
			Channels:      series.Channels(),
			Window:        24,
			TrainSize:     150,
			WarmupVectors: 400,
			ScoreWindow:   60,
			Seed:          9,
		})
		if err != nil {
			log.Fatal(err)
		}
		scores, valid := det.Run(series.Data)
		th := metrics.QuantileThreshold(scores, valid, 0.99)
		pred := metrics.Binarize(scores, valid, th)
		intervals := metrics.Ranges(pred)
		sum := metrics.Evaluate(scores, series.Labels, valid, th)

		fmt.Printf("\n%s flagged intervals: ", mk)
		for i, r := range intervals {
			if i >= 10 {
				fmt.Printf("… (%d more)", len(intervals)-10)
				break
			}
			fmt.Printf("[%d,%d] ", r.Start, r.End)
		}
		fmt.Printf("\n%s recall=%.2f precision=%.2f pr-auc=%.3f\n",
			mk, sum.Recall, sum.Precision, sum.AUC)
	}
}
