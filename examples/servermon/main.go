// Server-machine monitoring — an SMD-style scenario. The example streams
// the synthetic SMD corpus (38 correlated server metrics with spikes and
// correlated outages) through two detectors, one with the sliding-window
// strategy and one with the anomaly-aware reservoir, and compares their
// evaluation metrics — reproducing in miniature the paper's finding that
// ARES often improves on SW.
//
// Run with:
//
//	go run ./examples/servermon
package main

import (
	"fmt"
	"log"

	"streamad"
	"streamad/internal/dataset"
	"streamad/internal/metrics"
)

func main() {
	corpus := dataset.SMD(dataset.Config{Length: 2400, SeriesCount: 1, Seed: 21})
	series := corpus.Series[0]
	fmt.Printf("server stream: %d steps × %d metrics, %.1f%% anomalous\n\n",
		series.Len(), series.Channels(), 100*series.AnomalyRate())

	for _, task1 := range []streamad.Task1{streamad.TaskSlidingWindow, streamad.TaskAnomalyReservoir} {
		det, err := streamad.New(streamad.Config{
			Model:         streamad.ModelUSAD,
			Task1:         task1,
			Task2:         streamad.TaskMuSigma,
			Score:         streamad.ScoreLikelihood,
			Channels:      series.Channels(),
			Window:        24,
			TrainSize:     150,
			WarmupVectors: 400,
			ScoreWindow:   120,
			ShortWindow:   6,
			Seed:          5,
		})
		if err != nil {
			log.Fatal(err)
		}
		scores, valid := det.Run(series.Data)
		th := metrics.QuantileThreshold(scores, valid, 0.98)
		sum := metrics.Evaluate(scores, series.Labels, valid, th)
		fmt.Printf("%-5s precision=%.2f recall=%.2f pr-auc=%.3f vus=%.3f nab=%7.2f fine-tunes=%d\n",
			task1, sum.Precision, sum.Recall, sum.AUC, sum.VUS, sum.NAB, det.FineTunes())
	}
}
