// Satellite telemetry monitoring — the paper's motivating domain (the
// work was funded by an ESA programme on machine learning for telecom
// satellites). This example simulates a small telemetry bus (bus voltage,
// solar-array current, battery temperature, reaction-wheel speed, signal
// gain), injects an eclipse-style concept drift followed by a stuck-sensor
// anomaly, and shows how the detector fine-tunes through the drift but
// still flags the fault.
//
// Run with:
//
//	go run ./examples/satellite
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"streamad"
	"streamad/internal/randstate"
)

const (
	channels = 5
	steps    = 1400
	// Orbit period in steps; telemetry oscillates with the orbit.
	orbit = 120.0
)

// telemetry synthesizes one stream vector at step t.
func telemetry(t int, eclipse bool, rng *rand.Rand) []float64 {
	phase := 2 * math.Pi * float64(t) / orbit
	sun := math.Max(0, math.Sin(phase)) // solar illumination
	coldShift := 0.0
	if eclipse {
		// Deep eclipse season: the array barely charges and the whole bus
		// runs colder — a strong, persistent regime change.
		sun *= 0.05
		coldShift = 1.0
	}
	// Channels are expressed in comparable engineering units (V/10, A,
	// °C/10, kRPM, dB/10): the framework's cosine nonconformity and the
	// μ/σ drift statistics assume channels of similar magnitude, so a raw
	// 2000-RPM channel would otherwise drown the others.
	busVoltage := 2.8 - 0.2*coldShift + 0.04*sun + 0.005*rng.NormFloat64()
	arrayCurrent := 3 - 2*coldShift + 8*sun + 0.2*rng.NormFloat64()
	batteryTemp := 1.5 - coldShift + 0.6*sun + 0.03*rng.NormFloat64()
	wheelSpeed := 2.0 + 0.8*math.Sin(phase/3) + 0.02*rng.NormFloat64()
	signalGain := 3.5 + 0.5*math.Sin(phase/2) + 0.02*rng.NormFloat64()
	return []float64{busVoltage, arrayCurrent, batteryTemp, wheelSpeed, signalGain}
}

func main() {
	// Note the Task 1 choice: the anomaly-aware reservoir would refuse the
	// high-scoring post-drift windows, so the training set — which is what
	// the Task 2 detector watches — would never reflect the new regime and
	// the drift would go unnoticed. The sliding window absorbs it.
	det, err := streamad.New(streamad.Config{
		Model:     streamad.ModelNBEATS, // forecasting model for periodic telemetry
		Task1:     streamad.TaskSlidingWindow,
		Task2:     streamad.TaskMuSigma,
		Score:     streamad.ScoreLikelihood,
		Channels:  channels,
		Window:    24,
		TrainSize: 240, // two full orbits: keeps the training-set
		// distribution phase-stationary so KSWIN sees true drift, not the
		// orbital cycle itself
		WarmupVectors: 480,
		ScoreWindow:   100,
		ShortWindow:   6,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(randstate.NewCountedSource(3))
	var (
		fineTuneSteps []int
		alerts        []int
	)
	for t := 0; t < steps; t++ {
		eclipseSeason := t >= 800 // concept drift: eclipse season begins
		s := telemetry(t, eclipseSeason, rng)
		if t >= 1150 && t < 1180 {
			s[3] = 4.5 // reaction wheel telemetry stuck far outside range
		}
		res, ok := det.Step(s)
		if !ok {
			continue
		}
		if res.FineTuned {
			fineTuneSteps = append(fineTuneSteps, t)
		}
		if res.Score > 0.995 {
			alerts = append(alerts, t)
		}
	}

	fmt.Println("satellite telemetry monitoring")
	fmt.Printf("  eclipse-season drift begins at t=800\n")
	fmt.Printf("  stuck reaction-wheel sensor at t ∈ [1150, 1180)\n\n")
	fmt.Printf("fine-tuning sessions: %v\n", fineTuneSteps)
	lastFT := -1
	if len(fineTuneSteps) > 0 {
		lastFT = fineTuneSteps[len(fineTuneSteps)-1]
	}
	inFault, driftTransient, elsewhere := 0, 0, 0
	for _, t := range alerts {
		switch {
		case t >= 1150 && t < 1180+24:
			inFault++
		case t >= 800 && lastFT >= 0 && t <= lastFT:
			// The model genuinely mispredicts between the onset of the new
			// regime and the drift-triggered fine-tune — these alerts are
			// what the Task 2 strategy exists to stop.
			driftTransient++
		default:
			elsewhere++
		}
	}
	fmt.Printf("alerts in the fault window: %d\n", inFault)
	fmt.Printf("alerts during the drift transient (before the fine-tune adapts): %d\n", driftTransient)
	fmt.Printf("other alerts: %d\n", elsewhere)
}
