// Quickstart: assemble a streaming anomaly detector, feed it a generated
// multivariate stream and print the anomalies it flags.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"streamad"
	"streamad/internal/randstate"
)

func main() {
	const channels = 4

	// A USAD model with a sliding-window training set, the cheap μ/σ-Change
	// drift trigger and the Numenta anomaly likelihood as the final score.
	det, err := streamad.New(streamad.Config{
		Model:         streamad.ModelUSAD,
		Task1:         streamad.TaskSlidingWindow,
		Task2:         streamad.TaskMuSigma,
		Score:         streamad.ScoreLikelihood,
		Channels:      channels,
		Window:        16,  // data representation: last 16 stream vectors
		TrainSize:     100, // training set capacity m
		WarmupVectors: 150, // initial training horizon
		ScoreWindow:   100, // anomaly-likelihood baseline window k
		ShortWindow:   5,   // anomaly-likelihood short window k'
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic stream: correlated sinusoids with a burst anomaly at
	// t ∈ [700, 720).
	rng := rand.New(randstate.NewCountedSource(2))
	const steps = 900
	flagged := 0
	for t := 0; t < steps; t++ {
		s := make([]float64, channels)
		base := 2 + math.Sin(0.05*float64(t))
		for c := range s {
			s[c] = base + 0.3*float64(c) + 0.1*rng.NormFloat64()
		}
		if t >= 700 && t < 720 {
			for c := range s {
				s[c] += 4 // the anomaly
			}
		}
		res, ok := det.Step(s)
		if !ok {
			continue // still filling the window / warming up
		}
		if res.Score > 0.99 {
			flagged++
			if flagged <= 8 {
				fmt.Printf("t=%3d  anomaly score %.4f  nonconformity %.4f\n",
					t, res.Score, res.Nonconformity)
			}
		}
	}
	fmt.Printf("\nflagged %d steps; model fine-tuned %d time(s)\n", flagged, det.FineTunes())
}
