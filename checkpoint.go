package streamad

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// snapshotVersion identifies the Detector.Save envelope layout.
const snapshotVersion = 1

// detectorSnapshot is the serializable envelope of a full detector
// checkpoint: the configuration fingerprint used to reject mismatched
// restores, the framework-loop state, the model parameters and the Task 1
// RNG position.
type detectorSnapshot struct {
	Version   int
	Model     int
	Task1     int
	Task2     int
	Score     int
	Channels  int
	Window    int
	TrainSize int
	Warmup    int
	ScoreWin  int
	ShortWin  int
	Seed      int64
	Sanitize  bool
	RNGSeed   int64
	RNGDraws  uint64
	Core      []byte
	ModelBlob []byte
}

// Save returns a binary snapshot of the complete detector state: model
// parameters including optimizer position, the representation window, the
// Task 1 training set and its RNG position, the Task 2 drift reference,
// the scorer windows and every counter. Unlike SaveModel, a detector
// restored with Load resumes scoring immediately — no window refill, no
// re-warmup — and produces scores identical to an uninterrupted run, even
// through later drift-triggered fine-tunes.
func (d *Detector) Save() ([]byte, error) {
	// Drain any in-flight asynchronous fine-tune before snapshotting, so
	// the core counters and the model blob describe the same moment.
	d.inner.WaitFineTune()
	coreBlob, err := d.inner.MarshalBinary()
	if err != nil {
		return nil, err
	}
	modelBlob, err := d.SaveModel()
	if err != nil {
		return nil, err
	}
	snap := detectorSnapshot{
		Version:   snapshotVersion,
		Model:     int(d.cfg.Model),
		Task1:     int(d.cfg.Task1),
		Task2:     int(d.cfg.Task2),
		Score:     int(d.cfg.Score),
		Channels:  d.cfg.Channels,
		Window:    d.cfg.Window,
		TrainSize: d.cfg.TrainSize,
		Warmup:    d.cfg.WarmupVectors,
		ScoreWin:  d.cfg.ScoreWindow,
		ShortWin:  d.cfg.ShortWindow,
		Seed:      d.cfg.Seed,
		Sanitize:  d.cfg.Sanitize,
		RNGSeed:   d.src.SeedValue(),
		RNGDraws:  d.src.Draws(),
		Core:      coreBlob,
		ModelBlob: modelBlob,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("streamad: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores a snapshot produced by Save into this detector. The
// detector must have been built with the same configuration (combination,
// Channels, Window, TrainSize, warmup and score windows, Seed); a
// mismatch is rejected before any state is touched.
func (d *Detector) Load(data []byte) error {
	var snap detectorSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("streamad: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("streamad: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	if err := d.checkSnapshotConfig(snap); err != nil {
		return err
	}
	// Restore the model first: its Unmarshal validates shapes against the
	// receiver, so a corrupt or cross-model blob fails before the framework
	// loop state is touched.
	if err := d.LoadModel(snap.ModelBlob); err != nil {
		return err
	}
	if err := d.inner.UnmarshalBinary(snap.Core); err != nil {
		return err
	}
	d.src.Restore(snap.RNGSeed, snap.RNGDraws)
	return nil
}

// checkSnapshotConfig verifies the snapshot's configuration fingerprint
// against the receiver's.
func (d *Detector) checkSnapshotConfig(snap detectorSnapshot) error {
	mismatch := func(field string, got, want interface{}) error {
		return fmt.Errorf("streamad: snapshot %s %v does not match detector %s %v",
			field, got, field, want)
	}
	switch {
	case snap.Model != int(d.cfg.Model):
		return mismatch("model", ModelKind(snap.Model), d.cfg.Model)
	case snap.Task1 != int(d.cfg.Task1):
		return mismatch("task1", Task1(snap.Task1), d.cfg.Task1)
	case snap.Task2 != int(d.cfg.Task2):
		return mismatch("task2", Task2(snap.Task2), d.cfg.Task2)
	case snap.Score != int(d.cfg.Score):
		return mismatch("score", ScoreKind(snap.Score), d.cfg.Score)
	case snap.Channels != d.cfg.Channels:
		return mismatch("channels", snap.Channels, d.cfg.Channels)
	case snap.Window != d.cfg.Window:
		return mismatch("window", snap.Window, d.cfg.Window)
	case snap.TrainSize != d.cfg.TrainSize:
		return mismatch("train size", snap.TrainSize, d.cfg.TrainSize)
	case snap.Warmup != d.cfg.WarmupVectors:
		return mismatch("warmup", snap.Warmup, d.cfg.WarmupVectors)
	case snap.ScoreWin != d.cfg.ScoreWindow:
		return mismatch("score window", snap.ScoreWin, d.cfg.ScoreWindow)
	case snap.ShortWin != d.cfg.ShortWindow:
		return mismatch("short window", snap.ShortWin, d.cfg.ShortWindow)
	case snap.Seed != d.cfg.Seed:
		return mismatch("seed", snap.Seed, d.cfg.Seed)
	case snap.Sanitize != d.cfg.Sanitize:
		return mismatch("sanitize", snap.Sanitize, d.cfg.Sanitize)
	}
	return nil
}

// Steps returns the number of stream vectors consumed, including warmup.
func (d *Detector) Steps() int { return d.inner.Steps() }
