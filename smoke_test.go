package streamad

import (
	"testing"

	"streamad/internal/dataset"
	"streamad/internal/metrics"
)

// TestSmokeAllModels runs every model through a small end-to-end detection
// pass and checks that scores are produced and finite.
func TestSmokeAllModels(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 900, SeriesCount: 1, Seed: 42})
	series := corpus.Series[0]
	for _, mk := range []ModelKind{ModelARIMA, ModelPCBIForest, ModelAE, ModelUSAD, ModelNBEATS, ModelVAR, ModelARIMAONS, ModelKNN} {
		mk := mk
		t.Run(mk.String(), func(t *testing.T) {
			det, err := New(Config{
				Model:     mk,
				Task1:     TaskSlidingWindow,
				Task2:     TaskMuSigma,
				Score:     ScoreLikelihood,
				Channels:  series.Channels(),
				Window:    16,
				TrainSize: 60,
				Seed:      7,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			scores, valid := det.Run(series.Data)
			nValid := 0
			for i, ok := range valid {
				if !ok {
					continue
				}
				nValid++
				if scores[i] != scores[i] {
					t.Fatalf("NaN score at %d", i)
				}
			}
			if nValid == 0 {
				t.Fatal("no valid scores produced")
			}
			th := metrics.CalibrateThreshold(scores, valid, 0.3, 0.995)
			sum := metrics.Evaluate(scores, series.Labels, valid, th)
			t.Logf("%s: prec=%.2f rec=%.2f auc=%.3f vus=%.3f nab=%.3f finetunes=%d",
				mk, sum.Precision, sum.Recall, sum.AUC, sum.VUS, sum.NAB, det.FineTunes())
		})
	}
}
