package streamad

import (
	"math"
	"testing"
)

// TestAttributionNamesTheGuiltyChannel corrupts exactly one channel and
// checks the attribution concentrates on it.
func TestAttributionNamesTheGuiltyChannel(t *testing.T) {
	const channels = 4
	det, err := New(Config{
		Model: ModelNBEATS, Task1: TaskSlidingWindow, Task2: TaskRegular,
		RegularInterval: 1 << 30,
		Score:           ScoreAverage, Channels: channels,
		Window: 10, TrainSize: 60, WarmupVectors: 120,
		Attribution: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	guilty := 2
	var attributionAtAnomaly []float64
	for i := 0; i < 400; i++ {
		s := make([]float64, channels)
		base := 2 + math.Sin(0.2*float64(i))
		for c := range s {
			s[c] = base + 0.2*float64(c)
		}
		if i >= 350 {
			s[guilty] += 8
		}
		res, ok := det.Step(s)
		if ok && i == 352 {
			if res.Attribution == nil {
				t.Fatal("attribution missing")
			}
			attributionAtAnomaly = append([]float64(nil), res.Attribution...)
		}
	}
	if attributionAtAnomaly == nil {
		t.Fatal("never reached the anomaly step")
	}
	var sum float64
	maxIdx := 0
	for c, v := range attributionAtAnomaly {
		sum += v
		if v > attributionAtAnomaly[maxIdx] {
			maxIdx = c
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("attribution sums to %v, want 1", sum)
	}
	if maxIdx != guilty {
		t.Fatalf("attribution blames channel %d (%v), want %d", maxIdx, attributionAtAnomaly, guilty)
	}
	if attributionAtAnomaly[guilty] < 0.5 {
		t.Fatalf("guilty channel share %v, want dominant", attributionAtAnomaly[guilty])
	}
}

// TestAttributionAbsentForSelfScoringModels verifies PCB-iForest produces
// no attribution (it has no prediction pair).
func TestAttributionAbsentForSelfScoringModels(t *testing.T) {
	det, err := New(Config{
		Model: ModelPCBIForest, Task1: TaskSlidingWindow, Task2: TaskRegular,
		RegularInterval: 1 << 30,
		Score:           ScoreAverage, Channels: 2,
		Window: 6, TrainSize: 30, WarmupVectors: 40,
		Attribution: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		res, ok := det.Step([]float64{float64(i % 5), float64(i % 3)})
		if ok && res.Attribution != nil {
			t.Fatal("self-scoring model should not attribute")
		}
	}
}
