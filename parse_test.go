package streamad

import "testing"

func TestParseModelKind(t *testing.T) {
	cases := map[string]ModelKind{
		"arima":     ModelARIMA,
		"ARIMA":     ModelARIMA,
		"arima-ons": ModelARIMAONS,
		"pcb":       ModelPCBIForest,
		"iforest":   ModelPCBIForest,
		"ae":        ModelAE,
		"usad":      ModelUSAD,
		"nbeats":    ModelNBEATS,
		"n-beats":   ModelNBEATS,
		"var":       ModelVAR,
		"knn":       ModelKNN,
	}
	for in, want := range cases {
		got, err := ParseModelKind(in)
		if err != nil || got != want {
			t.Errorf("ParseModelKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseModelKind("transformer"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestParseTask1(t *testing.T) {
	cases := map[string]Task1{
		"sw": TaskSlidingWindow, "ures": TaskUniformReservoir, "ARES": TaskAnomalyReservoir,
	}
	for in, want := range cases {
		got, err := ParseTask1(in)
		if err != nil || got != want {
			t.Errorf("ParseTask1(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTask1("fifo"); err == nil {
		t.Error("unknown task1 must error")
	}
}

func TestParseTask2(t *testing.T) {
	cases := map[string]Task2{
		"musigma": TaskMuSigma, "ms": TaskMuSigma, "kswin": TaskKSWIN,
		"KS": TaskKSWIN, "regular": TaskRegular, "adwin": TaskADWIN,
	}
	for in, want := range cases {
		got, err := ParseTask2(in)
		if err != nil || got != want {
			t.Errorf("ParseTask2(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTask2("ddm"); err == nil {
		t.Error("unknown task2 must error")
	}
}

func TestParseScoreKind(t *testing.T) {
	cases := map[string]ScoreKind{
		"avg": ScoreAverage, "AL": ScoreLikelihood, "raw": ScoreRaw,
	}
	for in, want := range cases {
		got, err := ParseScoreKind(in)
		if err != nil || got != want {
			t.Errorf("ParseScoreKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScoreKind("zscore"); err == nil {
		t.Error("unknown score must error")
	}
}

func TestParseAggKind(t *testing.T) {
	cases := map[string]AggKind{
		"mean": AggMean, "avg": AggMean, "MAX": AggMax, "median": AggMedian,
		"trimmed": AggTrimmedMean, "trimmed-mean": AggTrimmedMean,
		"perf": AggPerfWeighted, "weighted": AggPerfWeighted,
	}
	for in, want := range cases {
		got, err := ParseAggKind(in)
		if err != nil || got != want {
			t.Errorf("ParseAggKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAggKind("mode"); err == nil {
		t.Error("unknown combiner must error")
	}
}

func TestParsePipelineSpec(t *testing.T) {
	got, err := ParsePipelineSpec("arima+sw+kswin")
	if err != nil {
		t.Fatal(err)
	}
	want := PipelineSpec{Model: ModelARIMA, Task1: TaskSlidingWindow, Task2: TaskKSWIN, Score: ScoreLikelihood}
	if got != want {
		t.Fatalf("ParsePipelineSpec = %+v, want %+v (omitted score must default to AL)", got, want)
	}
	got, err = ParsePipelineSpec(" USAD + ares + regular + avg ")
	if err != nil {
		t.Fatal(err)
	}
	want = PipelineSpec{Model: ModelUSAD, Task1: TaskAnomalyReservoir, Task2: TaskRegular, Score: ScoreAverage}
	if got != want {
		t.Fatalf("ParsePipelineSpec = %+v, want %+v", got, want)
	}
	// Round trip through String.
	back, err := ParsePipelineSpec(want.String())
	if err != nil || back != want {
		t.Fatalf("round trip %q → %+v, %v", want.String(), back, err)
	}
	for _, bad := range []string{"", "usad", "usad+sw", "usad+sw+musigma+al+extra", "bogus+sw+kswin", "usad+bogus+kswin", "usad+sw+bogus", "usad+sw+kswin+bogus"} {
		if _, err := ParsePipelineSpec(bad); err == nil {
			t.Errorf("ParsePipelineSpec(%q) accepted", bad)
		}
	}
}

func TestParseEnsembleSpec(t *testing.T) {
	got, err := ParseEnsembleSpec("ensemble(arima+sw+kswin, usad+ares+regular; agg=median)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Members) != 2 || got.Agg != AggMedian || got.PruneEnabled {
		t.Fatalf("unexpected spec %+v", got)
	}
	if got.Members[0].Model != ModelARIMA || got.Members[1].Model != ModelUSAD {
		t.Fatalf("member models wrong: %+v", got.Members)
	}

	got, err = ParseEnsembleSpec("ENSEMBLE( knn+sw+regular+avg , pcb+ares+kswin , nbeats+ures+kswin ; agg=perf, verdict=0.7, cap=32, prune=-8 )")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Members) != 3 || got.Agg != AggPerfWeighted || got.Verdict != 0.7 ||
		got.CounterCap != 32 || !got.PruneEnabled || got.PruneBelow != -8 {
		t.Fatalf("unexpected spec %+v", got)
	}

	// Options are optional.
	got, err = ParseEnsembleSpec("ensemble(arima+sw+kswin, usad+ares+regular)")
	if err != nil || got.Agg != AggMean {
		t.Fatalf("optionless spec: %+v, %v", got, err)
	}

	// Round trip through String.
	back, err := ParseEnsembleSpec(got.String())
	if err != nil || len(back.Members) != 2 || back.Agg != got.Agg {
		t.Fatalf("round trip %q → %+v, %v", got.String(), back, err)
	}

	for _, bad := range []string{
		"ensemble()",
		"ensemble(arima+sw+kswin)",                               // one member
		"ensemble(arima+sw+kswin, )",                             // empty member
		"ensemble(arima+sw+kswin, usad+ares+regular",             // unclosed
		"ensemble(arima+sw+kswin, usad+ares+regular; agg=mode)",  // bad combiner
		"ensemble(arima+sw+kswin, usad+ares+regular; prune=3)",   // non-negative prune
		"ensemble(arima+sw+kswin, usad+ares+regular; cap=0)",     // bad cap
		"ensemble(arima+sw+kswin, usad+ares+regular; verdict=x)", // bad verdict
		"ensemble(arima+sw+kswin, usad+ares+regular; agg)",       // not key=value
		"ensemble(arima+sw+kswin, usad+ares+regular; foo=1)",     // unknown option
	} {
		if _, err := ParseEnsembleSpec(bad); err == nil {
			t.Errorf("ParseEnsembleSpec(%q) accepted", bad)
		}
	}

	if !IsEnsembleSpec("  Ensemble(a, b)") || IsEnsembleSpec("usad+sw+musigma") {
		t.Error("IsEnsembleSpec misclassifies")
	}
}
