package streamad

import "testing"

func TestParseModelKind(t *testing.T) {
	cases := map[string]ModelKind{
		"arima":     ModelARIMA,
		"ARIMA":     ModelARIMA,
		"arima-ons": ModelARIMAONS,
		"pcb":       ModelPCBIForest,
		"iforest":   ModelPCBIForest,
		"ae":        ModelAE,
		"usad":      ModelUSAD,
		"nbeats":    ModelNBEATS,
		"n-beats":   ModelNBEATS,
		"var":       ModelVAR,
		"knn":       ModelKNN,
	}
	for in, want := range cases {
		got, err := ParseModelKind(in)
		if err != nil || got != want {
			t.Errorf("ParseModelKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseModelKind("transformer"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestParseTask1(t *testing.T) {
	cases := map[string]Task1{
		"sw": TaskSlidingWindow, "ures": TaskUniformReservoir, "ARES": TaskAnomalyReservoir,
	}
	for in, want := range cases {
		got, err := ParseTask1(in)
		if err != nil || got != want {
			t.Errorf("ParseTask1(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTask1("fifo"); err == nil {
		t.Error("unknown task1 must error")
	}
}

func TestParseTask2(t *testing.T) {
	cases := map[string]Task2{
		"musigma": TaskMuSigma, "ms": TaskMuSigma, "kswin": TaskKSWIN,
		"KS": TaskKSWIN, "regular": TaskRegular, "adwin": TaskADWIN,
	}
	for in, want := range cases {
		got, err := ParseTask2(in)
		if err != nil || got != want {
			t.Errorf("ParseTask2(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTask2("ddm"); err == nil {
		t.Error("unknown task2 must error")
	}
}

func TestParseScoreKind(t *testing.T) {
	cases := map[string]ScoreKind{
		"avg": ScoreAverage, "AL": ScoreLikelihood, "raw": ScoreRaw,
	}
	for in, want := range cases {
		got, err := ParseScoreKind(in)
		if err != nil || got != want {
			t.Errorf("ParseScoreKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScoreKind("zscore"); err == nil {
		t.Error("unknown score must error")
	}
}
