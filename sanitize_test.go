package streamad

import (
	"math"
	"testing"

	"streamad/internal/dataset"
)

// TestSanitizeSurvivesNaNInjection corrupts a stream with NaN and ±Inf
// gaps and verifies a Sanitize-enabled detector keeps producing finite
// scores, while recording how many steps were repaired.
func TestSanitizeSurvivesNaNInjection(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 900, SeriesCount: 1, Seed: 17})
	s := corpus.Series[0]
	// Corrupt 5% of steps with non-finite values on random channels.
	data := make([][]float64, len(s.Data))
	corrupted := 0
	for i, row := range s.Data {
		v := make([]float64, len(row))
		copy(v, row)
		switch i % 20 {
		case 7:
			v[i%len(v)] = math.NaN()
			corrupted++
		case 13:
			v[(i+3)%len(v)] = math.Inf(1)
			corrupted++
		}
		data[i] = v
	}

	det, err := New(Config{
		Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskMuSigma,
		Score: ScoreAverage, Channels: s.Channels(),
		Window: 12, TrainSize: 60, WarmupVectors: 100,
		Sanitize: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, valid := det.Run(data)
	nValid := 0
	for i, ok := range valid {
		if !ok {
			continue
		}
		nValid++
		if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
			t.Fatalf("non-finite score at %d despite Sanitize", i)
		}
	}
	if nValid == 0 {
		t.Fatal("no valid scores")
	}
}

// TestWithoutSanitizeNaNPropagates documents the failure mode Sanitize
// exists for: without it, injected NaNs reach the scores.
func TestWithoutSanitizeNaNPropagates(t *testing.T) {
	corpus := dataset.Daphnet(dataset.Config{Length: 500, SeriesCount: 1, Seed: 17})
	s := corpus.Series[0]
	data := make([][]float64, len(s.Data))
	for i, row := range s.Data {
		v := make([]float64, len(row))
		copy(v, row)
		if i == 300 {
			v[0] = math.NaN()
		}
		data[i] = v
	}
	det, err := New(Config{
		Model: ModelAE, Task1: TaskSlidingWindow, Task2: TaskMuSigma,
		Score: ScoreRaw, Channels: s.Channels(),
		Window: 12, TrainSize: 60, WarmupVectors: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, valid := det.Run(data)
	sawNaN := false
	for i := 300; i < 312 && i < len(scores); i++ {
		if valid[i] && math.IsNaN(scores[i]) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Skip("model absorbed the NaN; acceptable, Sanitize remains the safe default for dirty streams")
	}
}
