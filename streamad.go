// Package streamad is a streaming anomaly detection library for
// multivariate time series, reproducing the extended SAFARI framework of
// Koch, Petry and Werner (ICDE 2024): every detector is assembled from a
// data representation, a Task 1 learning strategy maintaining the training
// set, a Task 2 strategy triggering drift-driven fine-tuning, a machine
// learning model, a nonconformity measure and an anomaly scoring function.
//
// The quickest route is Config + New:
//
//	det, err := streamad.New(streamad.Config{
//		Model:    streamad.ModelUSAD,
//		Task1:    streamad.TaskSlidingWindow,
//		Task2:    streamad.TaskMuSigma,
//		Score:    streamad.ScoreLikelihood,
//		Channels: 9,
//	})
//	for _, s := range stream {
//		if res, ok := det.Step(s); ok && res.Score > 0.9 {
//			// anomaly
//		}
//	}
//
// Combos enumerates the paper's 26 evaluated algorithm combinations.
package streamad

import (
	"encoding"
	"fmt"
	"math/rand"

	"streamad/internal/arima"
	"streamad/internal/autoenc"
	"streamad/internal/core"
	"streamad/internal/drift"
	"streamad/internal/iforest"
	"streamad/internal/knn"
	"streamad/internal/nbeats"
	"streamad/internal/pool"
	"streamad/internal/randstate"
	"streamad/internal/reservoir"
	"streamad/internal/score"
	"streamad/internal/usad"
	"streamad/internal/varmodel"
)

// ModelKind selects the machine learning model.
type ModelKind int

const (
	// ModelARIMA is the online ARIMA(q+m, d, 0) forecaster of Liu et al.
	ModelARIMA ModelKind = iota
	// ModelPCBIForest is the performance-counter-based streaming isolation
	// forest of Heigl et al.
	ModelPCBIForest
	// ModelAE is the two-layer reconstruction autoencoder baseline.
	ModelAE
	// ModelUSAD is the adversarial autoencoder of Audibert et al.
	ModelUSAD
	// ModelNBEATS is the basis-expansion forecaster of Oreshkin et al.
	ModelNBEATS
	// ModelVAR is the least-squares vector autoregression; described in the
	// paper's methods section (it is not part of the 26-algorithm grid) and
	// restricted to the sliding-window Task 1 strategy.
	ModelVAR
	// ModelARIMAONS is the online ARIMA trained with the Online Newton
	// Step of Liu et al. instead of plain gradient descent — an extension
	// beyond the paper's grid.
	ModelARIMAONS
	// ModelKNN is the similarity-based k-NN nonconformity detector of the
	// original SAFARI framework, provided as the predecessor baseline.
	ModelKNN
)

// String returns the model name as used in Table III.
func (m ModelKind) String() string {
	switch m {
	case ModelARIMA:
		return "Online ARIMA"
	case ModelPCBIForest:
		return "PCB-iForest"
	case ModelAE:
		return "2-layer AE"
	case ModelUSAD:
		return "USAD"
	case ModelNBEATS:
		return "N-BEATS"
	case ModelVAR:
		return "VAR"
	case ModelARIMAONS:
		return "Online ARIMA (ONS)"
	case ModelKNN:
		return "kNN (SAFARI)"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(m))
	}
}

// Task1 selects the training-set maintenance strategy.
type Task1 int

const (
	// TaskSlidingWindow keeps the m most recent feature vectors.
	TaskSlidingWindow Task1 = iota
	// TaskUniformReservoir keeps a uniform sample of the stream.
	TaskUniformReservoir
	// TaskAnomalyReservoir keeps the most "normal" vectors by priority.
	TaskAnomalyReservoir
)

// String returns the Table I abbreviation.
func (t Task1) String() string {
	switch t {
	case TaskSlidingWindow:
		return "SW"
	case TaskUniformReservoir:
		return "URES"
	case TaskAnomalyReservoir:
		return "ARES"
	default:
		return fmt.Sprintf("Task1(%d)", int(t))
	}
}

// Task2 selects the concept-drift / fine-tuning trigger.
type Task2 int

const (
	// TaskMuSigma is the μ/σ-Change strategy.
	TaskMuSigma Task2 = iota
	// TaskKSWIN is the per-channel two-sample Kolmogorov–Smirnov strategy.
	TaskKSWIN
	// TaskRegular fine-tunes on a fixed cadence (the paper's baseline
	// "regular fine-tuning"; not part of the Table III grid).
	TaskRegular
	// TaskADWIN is the adaptive-windowing detector of Bifet & Gavaldà,
	// discussed in the paper's related work — an extension beyond the
	// evaluated grid.
	TaskADWIN
)

// String returns the Table I abbreviation.
func (t Task2) String() string {
	switch t {
	case TaskMuSigma:
		return "μ/σ"
	case TaskKSWIN:
		return "KS"
	case TaskRegular:
		return "regular"
	case TaskADWIN:
		return "ADWIN"
	default:
		return fmt.Sprintf("Task2(%d)", int(t))
	}
}

// ScoreKind selects the anomaly scoring function F.
type ScoreKind int

const (
	// ScoreAverage averages the last k nonconformity scores.
	ScoreAverage ScoreKind = iota
	// ScoreLikelihood is the Numenta anomaly likelihood.
	ScoreLikelihood
	// ScoreRaw passes nonconformity scores through unchanged.
	ScoreRaw
)

// String returns the Table III abbreviation.
func (s ScoreKind) String() string {
	switch s {
	case ScoreAverage:
		return "Avg"
	case ScoreLikelihood:
		return "AL"
	case ScoreRaw:
		return "Raw"
	default:
		return fmt.Sprintf("ScoreKind(%d)", int(s))
	}
}

// Config assembles a detector. Channels is required; everything else has
// paper-faithful defaults.
type Config struct {
	// Model, Task1, Task2 and Score pick the algorithm combination.
	Model ModelKind
	Task1 Task1
	Task2 Task2
	Score ScoreKind

	// Channels is the stream dimensionality N (required).
	Channels int
	// Window is the data representation length w in stream rows
	// (default 100, the paper's setting).
	Window int
	// TrainSize is the training-set capacity m (default 500).
	TrainSize int
	// WarmupVectors is the number of feature vectors collected before the
	// initial fit (default TrainSize; the paper uses the first 5000 steps).
	WarmupVectors int
	// ScoreWindow is the anomaly-scoring window k (default Window).
	ScoreWindow int
	// ShortWindow is the anomaly-likelihood short window k' (default
	// max(ScoreWindow/10, 2)).
	ShortWindow int
	// Alpha is the KSWIN significance level (default 0.01).
	Alpha float64
	// KSCheckEvery throttles KSWIN to every k-th training-set change
	// (default 1 = test at every step, as in the paper; larger values trade
	// fidelity for speed).
	KSCheckEvery int
	// RegularInterval is the cadence of TaskRegular (default TrainSize).
	RegularInterval int
	// ADWINDelta is the TaskADWIN confidence parameter (default 0.002).
	ADWINDelta float64
	// InitEpochs is the number of initial-fit epochs (default 1; neural
	// models benefit from a few more).
	InitEpochs int
	// PreTrained skips the initial fit at warmup end, for detectors whose
	// model is restored from a SaveModel snapshot.
	PreTrained bool
	// Sanitize repairs NaN/±Inf input values with the channel's last
	// finite value instead of letting them poison the statistics.
	Sanitize bool
	// Attribution computes each channel's share of the prediction error
	// per step (Result.Attribution), so alerts can name the channels that
	// drove them. Only available for predictor models.
	Attribution bool
	// AsyncFineTune enables the serve/train split: drift-triggered
	// fine-tunes clone the model and train on a background goroutine over
	// a snapshot of the training set while scoring continues on the old
	// parameters; the trained model is swapped in at a later step. Only
	// models supporting cloning (all but PCB-iForest and VAR) go async;
	// others silently stay synchronous. Off by default — synchronous
	// fine-tuning is bit-for-bit deterministic.
	AsyncFineTune bool
	// TrainerPool routes asynchronous fine-tunes through a shared
	// K-slot trainer pool instead of a per-detector goroutine: the
	// fine-tune queues, and its model/training-set snapshot is taken
	// lazily when a slot dequeues it. TrainerKey is the pool's fairness
	// key — detectors sharing a key (e.g. members of one stream's
	// ensemble) compete as one principal, and the least-recently-served
	// key trains first. Requires AsyncFineTune; ignored without it.
	TrainerPool *TrainerPool
	TrainerKey  string
	// ScorePool steps ensemble members as tasks on a shared bounded
	// worker pool instead of sequentially in the caller. Only ensembles
	// use it (see NewEnsemble); single-pipeline detectors ignore it.
	ScorePool *ScorePool
	// Seed drives every random component (default 1).
	Seed int64
	// LR overrides the model learning rate (0 = model default).
	LR float64
	// ARIMADiff is the online-ARIMA differencing order d (default 1).
	ARIMADiff int
}

func (c *Config) fillDefaults() error {
	if c.Channels <= 0 {
		return fmt.Errorf("streamad: Channels must be positive, got %d", c.Channels)
	}
	if c.Window == 0 {
		c.Window = 100
	}
	if c.Window < 4 {
		return fmt.Errorf("streamad: Window must be at least 4, got %d", c.Window)
	}
	if c.TrainSize == 0 {
		c.TrainSize = 500
	}
	if c.TrainSize < 2 {
		return fmt.Errorf("streamad: TrainSize must be at least 2, got %d", c.TrainSize)
	}
	if c.WarmupVectors == 0 {
		c.WarmupVectors = c.TrainSize
	}
	if c.ScoreWindow == 0 {
		c.ScoreWindow = c.Window
	}
	if c.ShortWindow == 0 {
		c.ShortWindow = c.ScoreWindow / 10
		if c.ShortWindow < 2 {
			c.ShortWindow = 2
		}
	}
	if c.ShortWindow >= c.ScoreWindow {
		return fmt.Errorf("streamad: ShortWindow (%d) must be smaller than ScoreWindow (%d)",
			c.ShortWindow, c.ScoreWindow)
	}
	if c.Alpha == 0 {
		c.Alpha = drift.DefaultAlpha
	}
	if c.KSCheckEvery == 0 {
		c.KSCheckEvery = 1
	}
	if c.RegularInterval == 0 {
		c.RegularInterval = c.TrainSize
	}
	if c.InitEpochs == 0 {
		// Gradient-trained models need several warmup epochs to reach a
		// useful operating point; fine-tunes stay at one epoch (paper).
		switch c.Model {
		case ModelAE, ModelUSAD, ModelNBEATS:
			c.InitEpochs = 10
		default:
			c.InitEpochs = 1
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ARIMADiff == 0 {
		c.ARIMADiff = 1
	}
	if c.Model == ModelVAR && c.Task1 != TaskSlidingWindow {
		return fmt.Errorf("streamad: VAR requires the sliding-window strategy (got %v)", c.Task1)
	}
	return nil
}

// ScorePool re-exports the shared bounded worker pool ensembles and the
// ingestion layer schedule scoring work on. One pool serves any number
// of detectors; goroutine count stays O(workers), not O(streams).
type ScorePool = pool.Pool

// TrainerPool re-exports the shared K-slot training pool with
// cross-stream fairness; see Config.TrainerPool.
type TrainerPool = pool.Trainer

// NewScoringPool builds a shared scoring pool; workers <= 0 selects
// GOMAXPROCS. Close it after every detector using it has stopped.
func NewScoringPool(workers int) *ScorePool { return pool.NewScoring(workers) }

// NewTrainerPool builds a shared trainer pool with the given number of
// concurrent training slots; slots <= 0 selects 2.
func NewTrainerPool(slots int) *TrainerPool { return pool.NewTrainer(slots) }

// Detector is a fully assembled streaming anomaly detector.
type Detector struct {
	inner *core.Detector
	cfg   Config
	// src drives the Task 1 strategies' random draws; counting them makes
	// the RNG position part of the Save/Load checkpoint.
	src *randstate.CountedSource
}

// Result re-exports the per-step output of the framework.
type Result = core.Result

// FineTuneStats re-exports the fine-tuning activity snapshot.
type FineTuneStats = core.FineTuneStats

// FineTuneBuckets re-exports the duration histogram bucket bounds
// (seconds) used by FineTuneStats.
var FineTuneBuckets = core.FineTuneBuckets

// New builds a detector for the given configuration.
func New(cfg Config) (*Detector, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	dim := cfg.Window * cfg.Channels

	model, err := buildModel(cfg)
	if err != nil {
		return nil, err
	}

	src := randstate.NewCountedSource(cfg.Seed + 7919)
	rng := rand.New(src)
	var set reservoir.TrainingSet
	switch cfg.Task1 {
	case TaskSlidingWindow:
		set = reservoir.NewSlidingWindow(cfg.TrainSize, dim)
	case TaskUniformReservoir:
		set = reservoir.NewUniformReservoir(cfg.TrainSize, dim, rng)
	case TaskAnomalyReservoir:
		set = reservoir.NewAnomalyAwareReservoir(cfg.TrainSize, dim, rng)
	default:
		return nil, fmt.Errorf("streamad: unknown Task1 %d", cfg.Task1)
	}

	var det drift.Detector
	switch cfg.Task2 {
	case TaskMuSigma:
		det = drift.NewMuSigmaChange(dim)
	case TaskKSWIN:
		k := drift.NewKSWIN(cfg.Channels, cfg.Window, cfg.Alpha)
		k.CheckEvery = cfg.KSCheckEvery
		det = k
	case TaskRegular:
		det = drift.NewRegular(cfg.RegularInterval)
	case TaskADWIN:
		det = drift.NewADWIN(cfg.ADWINDelta)
	default:
		return nil, fmt.Errorf("streamad: unknown Task2 %d", cfg.Task2)
	}

	var scorer score.Scorer
	switch cfg.Score {
	case ScoreAverage:
		scorer = score.NewAverage(cfg.ScoreWindow)
	case ScoreLikelihood:
		scorer = score.NewAnomalyLikelihood(cfg.ScoreWindow, cfg.ShortWindow)
	case ScoreRaw:
		scorer = score.Raw{}
	default:
		return nil, fmt.Errorf("streamad: unknown ScoreKind %d", cfg.Score)
	}

	// Self-scoring models (PCB-iForest's path-length score, kNN's distance
	// score) carry their own nonconformity; everything else uses cosine.
	var measure score.Nonconformity
	if cfg.Model != ModelPCBIForest && cfg.Model != ModelKNN {
		measure = score.Cosine{}
	}

	ccfg := core.Config{
		Representer:   core.NewRepresenter(cfg.Window, cfg.Channels),
		Model:         model,
		TrainingSet:   set,
		Drift:         det,
		Measure:       measure,
		Scorer:        scorer,
		WarmupVectors: cfg.WarmupVectors,
		InitEpochs:    cfg.InitEpochs,
		PreTrained:    cfg.PreTrained,
		Sanitize:      cfg.Sanitize,
		Attribution:   cfg.Attribution,
		AsyncFineTune: cfg.AsyncFineTune,
	}
	if cfg.TrainerPool != nil {
		// Guarded assignment: a nil *TrainerPool must stay a nil
		// interface in core, or the pool branch would dereference it.
		ccfg.TrainerPool = cfg.TrainerPool
		ccfg.TrainerKey = cfg.TrainerKey
	}
	inner, err := core.NewDetector(ccfg)
	if err != nil {
		return nil, err
	}
	return &Detector{inner: inner, cfg: cfg, src: src}, nil
}

func buildModel(cfg Config) (core.Model, error) {
	switch cfg.Model {
	case ModelARIMA:
		lags := cfg.Window - cfg.ARIMADiff - 1
		if lags < 1 {
			return nil, fmt.Errorf("streamad: Window %d too small for ARIMA with d=%d", cfg.Window, cfg.ARIMADiff)
		}
		return arima.New(arima.Config{
			Lags: lags, D: cfg.ARIMADiff, Channels: cfg.Channels, LR: cfg.LR,
		})
	case ModelPCBIForest:
		return iforest.New(iforest.Config{Channels: cfg.Channels, Seed: cfg.Seed})
	case ModelAE:
		return autoenc.New(autoenc.Config{
			Dim: cfg.Window * cfg.Channels, LR: cfg.LR, Seed: cfg.Seed,
		})
	case ModelUSAD:
		return usad.New(usad.Config{
			Dim: cfg.Window * cfg.Channels, LR: cfg.LR, Seed: cfg.Seed,
		})
	case ModelNBEATS:
		return nbeats.New(nbeats.Config{
			Channels: cfg.Channels, BackcastRows: cfg.Window - 1, LR: cfg.LR, Seed: cfg.Seed,
		})
	case ModelVAR:
		p := cfg.Window / 4
		if p < 1 {
			p = 1
		}
		return varmodel.New(varmodel.Config{P: p, Channels: cfg.Channels})
	case ModelARIMAONS:
		lags := cfg.Window - cfg.ARIMADiff - 1
		if lags < 1 {
			return nil, fmt.Errorf("streamad: Window %d too small for ARIMA with d=%d", cfg.Window, cfg.ARIMADiff)
		}
		base, err := arima.New(arima.Config{
			Lags: lags, D: cfg.ARIMADiff, Channels: cfg.Channels,
		})
		if err != nil {
			return nil, err
		}
		return arima.NewONS(base, cfg.LR, 0), nil
	case ModelKNN:
		return knn.New(knn.Config{Dim: cfg.Window * cfg.Channels})
	default:
		return nil, fmt.Errorf("streamad: unknown ModelKind %d", cfg.Model)
	}
}

// Step consumes the next stream vector; ok becomes true once the window is
// full and warmup training has completed.
func (d *Detector) Step(s []float64) (Result, bool) { return d.inner.Step(s) }

// Run scores an entire series, returning per-step anomaly scores and a
// validity mask covering the post-warmup region.
func (d *Detector) Run(series [][]float64) (scores []float64, valid []bool) {
	return d.inner.Run(series)
}

// FineTunes returns the number of drift-triggered fine-tuning sessions.
func (d *Detector) FineTunes() int { return d.inner.FineTunes() }

// FineTuneStats returns a snapshot of fine-tuning activity — mode,
// in-flight state, counters and the duration histogram. Safe to call from
// any goroutine.
func (d *Detector) FineTuneStats() core.FineTuneStats { return d.inner.FineTuneStats() }

// WaitFineTune blocks until any in-flight asynchronous fine-tune has
// finished and its model has been adopted. Call it from the stepping
// goroutine before SaveModel, or in tests that compare async to sync
// scores. A no-op in synchronous mode.
func (d *Detector) WaitFineTune() { d.inner.WaitFineTune() }

// WarmedUp reports whether the initial training completed.
func (d *Detector) WarmedUp() bool { return d.inner.WarmedUp() }

// PageOut demotes the detector to the warm tier: any in-flight
// fine-tune is drained, the window/training-set/drift/scorer state is
// serialized into the returned blob and its backing storage released.
// The model stays resident. Step panics until PageIn restores the blob.
func (d *Detector) PageOut() ([]byte, error) { return d.inner.PageOut() }

// PageIn restores state paged out by PageOut, bit-identically.
func (d *Detector) PageIn(blob []byte) error { return d.inner.PageIn(blob) }

// Paged reports whether the detector's window state is paged out.
func (d *Detector) Paged() bool { return d.inner.Paged() }

// Close drains or cancels any in-flight asynchronous fine-tune so no
// trainer-pool task outlives the detector. The detector remains usable;
// Close is optional for process-lifetime detectors.
func (d *Detector) Close() { d.inner.Close() }

// DriftOps exposes the Task 2 strategy's cumulative operation counts
// (Table II instrumentation).
func (d *Detector) DriftOps() drift.OpCounts { return d.inner.DriftOps() }

// Config returns the (default-filled) configuration the detector runs.
func (d *Detector) Config() Config { return d.cfg }

// SaveModel returns a binary snapshot of the model parameters θ_model
// (weights, coefficients, forests, normalization). Window and reservoir
// state are not included: a restored detector refills its representation
// window from the live stream, which takes w steps.
// Any in-flight asynchronous fine-tune is drained first, so the snapshot
// always holds the newest adopted parameters.
func (d *Detector) SaveModel() ([]byte, error) {
	d.inner.WaitFineTune()
	m, ok := d.inner.Model().(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("streamad: %v does not support model snapshots", d.cfg.Model)
	}
	return m.MarshalBinary()
}

// LoadModel restores a snapshot produced by SaveModel into this
// detector's model. The detector must have been built with an identical
// model configuration (kind, Window, Channels).
func (d *Detector) LoadModel(data []byte) error {
	d.inner.WaitFineTune()
	m, ok := d.inner.Model().(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("streamad: %v does not support model snapshots", d.cfg.Model)
	}
	return m.UnmarshalBinary(data)
}

// Combo is one (model, Task 1, Task 2) combination of the Table I grid.
type Combo struct {
	Model ModelKind
	Task1 Task1
	Task2 Task2
}

// String formats the combo the way Table III labels rows.
func (c Combo) String() string {
	return fmt.Sprintf("%s/%s/%s", c.Model, c.Task1, c.Task2)
}

// Combos enumerates the paper's 26 evaluated algorithm combinations
// (Table I): the full Task 1 × Task 2 grid for ARIMA, AE, USAD and
// N-BEATS, and {SW, ARES} × KSWIN for PCB-iForest.
func Combos() []Combo {
	full := []ModelKind{ModelARIMA, ModelAE, ModelUSAD, ModelNBEATS}
	var out []Combo
	for _, m := range full {
		for _, t1 := range []Task1{TaskSlidingWindow, TaskUniformReservoir, TaskAnomalyReservoir} {
			for _, t2 := range []Task2{TaskMuSigma, TaskKSWIN} {
				out = append(out, Combo{Model: m, Task1: t1, Task2: t2})
			}
		}
	}
	for _, t1 := range []Task1{TaskSlidingWindow, TaskAnomalyReservoir} {
		out = append(out, Combo{Model: ModelPCBIForest, Task1: t1, Task2: TaskKSWIN})
	}
	return out
}
