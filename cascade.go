package streamad

import (
	"fmt"
	"strings"

	"streamad/internal/cascade"
	"streamad/internal/tier0"
)

// Tier0Kind selects a tier-0 screening detector (internal/tier0): the
// nanosecond-cost family that fronts a cascade or serves on its own.
type Tier0Kind int

const (
	// Tier0EWMA is the EWMA-residual control-chart detector.
	Tier0EWMA Tier0Kind = iota
	// Tier0ZScore is the moving z-score over a per-channel ring.
	Tier0ZScore
	// Tier0Hampel is the streaming Hampel filter (median/MAD over a
	// ring).
	Tier0Hampel
	// Tier0Density is the sliding-window mean-distance density detector.
	Tier0Density
)

// String returns the spec-grammar name.
func (t Tier0Kind) String() string { return specTier0Name(t) }

// CascadeStats re-exports the cascade's per-tier counters.
type CascadeStats = cascade.Stats

var (
	_ StreamDetector = (*Cascade)(nil)

	// The tier-0 detectors are first-class StreamDetectors: usable
	// standalone via NewFromSpec("zscore", …), as cascade gates, and
	// through the whole serving stack.
	_ StreamDetector = (*tier0.EWMA)(nil)
	_ StreamDetector = (*tier0.ZScore)(nil)
	_ StreamDetector = (*tier0.Hampel)(nil)
	_ StreamDetector = (*tier0.Density)(nil)
)

// CascadeSpec describes a screening cascade: the tier-0 gate, the heavy
// member specs (pipeline or ensemble grammar, canonicalized), and the
// admission calibration. Zero values select the defaults (admit 0.1,
// calib 128, gate window 64).
type CascadeSpec struct {
	// Gate is the tier-0 screening detector.
	Gate Tier0Kind
	// Heavy are the admitted-traffic member specs (at least one), each a
	// pipeline spec ("knn+sw+musigma+al") or an ensemble(...) spec.
	Heavy []string
	// Admit is the target false-admission rate ε (0 = 0.1).
	Admit float64
	// Calib is the conformal calibration-window capacity (0 = 128).
	Calib int
	// GateWindow is the tier-0 gate's ring length (0 = 64).
	GateWindow int
}

// String renders the spec in the grammar form accepted by
// ParseCascadeSpec.
func (c CascadeSpec) String() string {
	admit := c.Admit
	if admit == 0 {
		admit = 0.1
	}
	s := "cascade(" + specTier0Name(c.Gate) + ", " + strings.Join(c.Heavy, ", ") +
		fmt.Sprintf("; admit=%g", admit)
	if c.Calib != 0 && c.Calib != 128 {
		s += fmt.Sprintf(", calib=%d", c.Calib)
	}
	if c.GateWindow != 0 && c.GateWindow != 64 {
		s += fmt.Sprintf(", gatewin=%d", c.GateWindow)
	}
	return s + ")"
}

// NewTier0 builds a standalone tier-0 detector. base supplies the stream
// geometry (Channels is required; Seed drives Density's sampling); win
// is the detector's ring length (0 = 64).
func NewTier0(base Config, kind Tier0Kind, win int) (StreamDetector, error) {
	if base.Channels <= 0 {
		return nil, fmt.Errorf("streamad: Channels must be positive, got %d", base.Channels)
	}
	seed := base.Seed
	if seed == 0 {
		seed = 1
	}
	cfg := tier0.Config{Channels: base.Channels, Window: win, Seed: seed}
	switch kind {
	case Tier0EWMA:
		return tier0.NewEWMA(cfg)
	case Tier0ZScore:
		return tier0.NewZScore(cfg)
	case Tier0Hampel:
		return tier0.NewHampel(cfg)
	case Tier0Density:
		return tier0.NewDensity(cfg)
	default:
		return nil, fmt.Errorf("streamad: unknown Tier0Kind %d", int(kind))
	}
}

// Cascade is the two-tier screening detector: the tier-0 gate scores
// every vector and the heavy members only score vectors whose gate score
// crosses the conformal admission threshold; see internal/cascade for
// the semantics. Build one with NewCascade or NewFromSpec. Like Detector
// and Ensemble, a Cascade is not safe for concurrent use.
type Cascade struct {
	inner *cascade.Cascade
	spec  CascadeSpec //streamad:transient construction blueprint kept for Spec(); Save/Load round-trips the inner cascade's state
}

// NewCascade builds a screening cascade. base supplies the stream
// geometry and tuning shared by every member, exactly as in NewEnsemble;
// heavy member i runs with base.Seed + (i+1)·1000003 so members never
// share a random stream with each other or the gate.
func NewCascade(base Config, spec CascadeSpec) (*Cascade, error) {
	if len(spec.Heavy) == 0 {
		return nil, fmt.Errorf("streamad: a cascade needs at least one heavy member")
	}
	seed := base.Seed
	if seed == 0 {
		seed = 1
	}
	gateBase := base
	gateBase.Seed = seed
	gate, err := NewTier0(gateBase, spec.Gate, spec.GateWindow)
	if err != nil {
		return nil, fmt.Errorf("streamad: cascade gate (%s): %w", spec.Gate, err)
	}
	heavy := make([]cascade.Member, len(spec.Heavy))
	labels := make([]string, len(spec.Heavy))
	for i, hs := range spec.Heavy {
		if IsCascadeSpec(hs) {
			return nil, fmt.Errorf("streamad: cascades do not nest (heavy member %q)", hs)
		}
		cfg := base
		cfg.Seed = seed + int64(i+1)*memberSeedStride
		det, err := NewFromSpec(hs, cfg)
		if err != nil {
			return nil, fmt.Errorf("streamad: cascade heavy member %d (%s): %w", i, hs, err)
		}
		heavy[i] = det
		labels[i] = hs
	}
	inner, err := cascade.New(cascade.Config{
		Gate:        gate,
		GateLabel:   specTier0Name(spec.Gate),
		Heavy:       heavy,
		HeavyLabels: labels,
		Admit:       spec.Admit,
		Calib:       spec.Calib,
	})
	if err != nil {
		return nil, fmt.Errorf("streamad: %w", err)
	}
	return &Cascade{inner: inner, spec: spec}, nil
}

// Step consumes the next stream vector; the Result's Source field names
// the tier that produced the score ("tier0:zscore" for screened-out
// vectors, "heavy:…" for admitted ones).
func (c *Cascade) Step(s []float64) (Result, bool) { return c.inner.Step(s) }

// Run scores an entire series with a validity mask.
func (c *Cascade) Run(series [][]float64) (scores []float64, valid []bool) {
	return c.inner.Run(series)
}

// Steps returns the number of stream vectors consumed.
func (c *Cascade) Steps() int { return c.inner.Steps() }

// FineTunes returns the steps on which a heavy member fine-tuned.
func (c *Cascade) FineTunes() int { return c.inner.FineTunes() }

// Stats returns the per-tier counters: screened/admitted/forwarded
// totals, the admission rate and the calibration fill.
func (c *Cascade) Stats() CascadeStats { return c.inner.Stats() }

// CascadeStats is Stats under the name the ingestion layer's
// CascadeStatser capability probes for, so cascade-backed streams get
// their per-tier counters in stream stats and /metrics.
func (c *Cascade) CascadeStats() CascadeStats { return c.inner.Stats() }

// Spec returns the cascade's specification.
func (c *Cascade) Spec() CascadeSpec { return c.spec }

// FineTuneStats aggregates the heavy members' serve/train statistics.
// Safe from any goroutine.
func (c *Cascade) FineTuneStats() FineTuneStats { return c.inner.FineTuneStats() }

// WaitFineTune drains every heavy member's in-flight asynchronous
// fine-tune. Serialize with Step.
func (c *Cascade) WaitFineTune() { c.inner.WaitFineTune() }

// Save returns a binary checkpoint composing the gate's and every heavy
// member's full checkpoint with the conformal calibration window and the
// per-tier counters; a cascade restored with Load screens and scores
// bit-identically to an uninterrupted run.
func (c *Cascade) Save() ([]byte, error) { return c.inner.Save() }

// Load restores a checkpoint produced by Save. The cascade must have
// been built with the same specification and base configuration.
func (c *Cascade) Load(data []byte) error { return c.inner.Load(data) }

// Close stops any goroutines owned by ensemble heavy members. Optional
// and idempotent.
func (c *Cascade) Close() { c.inner.Close() }
