package streamad

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// noisyVec fills dst with the synthetic waveform plus seeded Gaussian
// noise, so gate scores are tie-free and conformal ranks are meaningful.
func noisyVec(dst []float64, t int, rng *rand.Rand) []float64 {
	syntheticVec(dst, t)
	for c := range dst {
		dst[c] += 0.05 * rng.NormFloat64()
	}
	return dst
}

func TestParseCascadeSpec(t *testing.T) {
	cases := []struct {
		in   string
		want CascadeSpec
		str  string // canonical String() rendering
	}{
		{
			in:   "cascade(zscore, knn)",
			want: CascadeSpec{Gate: Tier0ZScore, Heavy: []string{"knn+sw+musigma+al"}},
			str:  "cascade(zscore, knn+sw+musigma+al; admit=0.1)",
		},
		{
			in: "cascade(hampel, usad+sw+musigma+al; admit=0.05, calib=256, gatewin=32)",
			want: CascadeSpec{
				Gate: Tier0Hampel, Heavy: []string{"usad+sw+musigma+al"},
				Admit: 0.05, Calib: 256, GateWindow: 32,
			},
			str: "cascade(hampel, usad+sw+musigma+al; admit=0.05, calib=256, gatewin=32)",
		},
		{
			in: "cascade(ewma, ensemble(arima+sw+kswin, usad+ares+regular; agg=median); admit=0.02)",
			want: CascadeSpec{
				Gate:  Tier0EWMA,
				Heavy: []string{"ensemble(arima+sw+kswin+al, usad+ares+regular+al; agg=median)"},
				Admit: 0.02,
			},
			str: "cascade(ewma, ensemble(arima+sw+kswin+al, usad+ares+regular+al; agg=median); admit=0.02)",
		},
		{
			in: "cascade(density, knn+sw+musigma+raw, arima+sw+kswin)",
			want: CascadeSpec{
				Gate:  Tier0Density,
				Heavy: []string{"knn+sw+musigma+raw", "arima+sw+kswin+al"},
			},
			str: "cascade(density, knn+sw+musigma+raw, arima+sw+kswin+al; admit=0.1)",
		},
	}
	for _, tc := range cases {
		got, err := ParseCascadeSpec(tc.in)
		if err != nil {
			t.Errorf("ParseCascadeSpec(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseCascadeSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if got.String() != tc.str {
			t.Errorf("String() = %q, want %q", got.String(), tc.str)
		}
		// The canonical form is a fixed point of parse∘String (defaults
		// become explicit on the first rendering, so compare renderings).
		again, err := ParseCascadeSpec(got.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", got.String(), err)
		} else if again.String() != got.String() {
			t.Errorf("round-trip of %q: %q != %q", tc.in, again.String(), got.String())
		}
	}
}

func TestParseCascadeSpecErrors(t *testing.T) {
	bad := []string{
		"cascade()",
		"cascade(zscore)",                      // no heavy member
		"cascade(knn, zscore)",                 // gate is not tier-0
		"cascade(zscore, )",                    // empty heavy member
		"cascade(zscore, knn; admit=1.5)",      // admit out of range
		"cascade(zscore, knn; calib=4)",        // calib too small
		"cascade(zscore, knn; gatewin=2)",      // gatewin too small
		"cascade(zscore, knn; bogus=1)",        // unknown option
		"cascade(zscore, knn; admit=0.1; x=1)", // two option sections
		"cascade(zscore, cascade(ewma, knn))",  // cascades do not nest
		"cascade(zscore, knn",                  // unterminated
	}
	for _, s := range bad {
		if _, err := ParseCascadeSpec(s); err == nil {
			t.Errorf("ParseCascadeSpec(%q) accepted an invalid spec", s)
		}
	}
}

func TestNewFromSpecTier0(t *testing.T) {
	d, err := NewFromSpec("hampel", Config{Channels: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 3)
	for i := 0; i < 100; i++ {
		d.Step(syntheticVec(buf, i))
	}
	if d.Steps() != 100 {
		t.Fatalf("Steps() = %d, want 100", d.Steps())
	}
	if _, err := NewFromSpec("zscore", Config{}); err == nil {
		t.Fatal("NewFromSpec accepted a tier-0 spec without Channels")
	}
}

// cascadeBase is the shared geometry for the cascade behavior tests: a
// small kNN heavy pipeline that warms up quickly.
func cascadeBase() Config {
	return Config{Channels: 3, Window: 8, TrainSize: 32, WarmupVectors: 40, Seed: 3}
}

const cascadeTestSpec = "cascade(zscore, knn; admit=0.1, calib=64, gatewin=32)"

func TestCascadeScreening(t *testing.T) {
	det, err := NewFromSpec(cascadeTestSpec, cascadeBase())
	if err != nil {
		t.Fatal(err)
	}
	casc, ok := det.(*Cascade)
	if !ok {
		t.Fatalf("NewFromSpec returned %T, want *Cascade", det)
	}
	defer casc.Close()

	rng := rand.New(rand.NewSource(19))
	buf := make([]float64, 3)
	sawGate, sawHeavy := false, false
	for i := 0; i < 800; i++ {
		noisyVec(buf, i, rng)
		res, ok := casc.Step(buf)
		if !ok {
			continue
		}
		switch {
		case res.Source == "tier0:zscore":
			sawGate = true
		case strings.HasPrefix(res.Source, "heavy:"):
			sawHeavy = true
		default:
			t.Fatalf("step %d: unexpected Source %q", i, res.Source)
		}
	}
	st := casc.Stats()
	if !st.Screening {
		t.Fatalf("screening never activated: %+v", st)
	}
	if !sawGate || !sawHeavy {
		t.Fatalf("missing tier attribution: gate=%v heavy=%v", sawGate, sawHeavy)
	}
	if st.Screened == 0 {
		t.Fatalf("no vectors screened: %+v", st)
	}
	if st.Steps != 800 || st.Screened+st.Admitted+st.Forwarded != st.Steps {
		t.Fatalf("counters do not partition the stream: %+v", st)
	}
	// The conformal gate keeps the admission fraction near the 0.1
	// target; the bound is loose because the calibration window is short.
	if st.AdmissionRate <= 0 || st.AdmissionRate > 0.35 {
		t.Fatalf("admission rate %v implausible for admit=0.1", st.AdmissionRate)
	}
	// The cost win: most traffic never reaches the heavy tier.
	if st.HeavyRate >= 0.6 {
		t.Fatalf("heavy tier saw %.0f%% of traffic, screening is not saving work", st.HeavyRate*100)
	}
	if casc.Spec().String() != "cascade(zscore, knn+sw+musigma+al; admit=0.1, calib=64, gatewin=32)" {
		t.Fatalf("Spec() = %q", casc.Spec().String())
	}
}

// TestCascadeSpikeAdmitted checks a gross anomaly is admitted to the
// heavy tier once screening is active.
func TestCascadeSpikeAdmitted(t *testing.T) {
	det, err := NewFromSpec(cascadeTestSpec, cascadeBase())
	if err != nil {
		t.Fatal(err)
	}
	casc := det.(*Cascade)
	defer casc.Close()

	rng := rand.New(rand.NewSource(43))
	buf := make([]float64, 3)
	for i := 0; i < 600; i++ {
		casc.Step(noisyVec(buf, i, rng))
	}
	if !casc.Stats().Screening {
		t.Fatal("screening not active after 600 steps")
	}
	noisyVec(buf, 600, rng)
	buf[0] += 10
	res, ok := casc.Step(buf)
	if !ok {
		t.Fatal("spike step returned ok=false")
	}
	if !strings.HasPrefix(res.Source, "heavy:") {
		t.Fatalf("spike was not admitted to the heavy tier (Source=%q)", res.Source)
	}
}

// TestCascadeSaveLoadBitIdentity checkpoints a cascade mid-stream and
// checks a restored twin screens and scores bit-identically.
func TestCascadeSaveLoadBitIdentity(t *testing.T) {
	const total, cut = 700, 350
	rng := rand.New(rand.NewSource(53))
	tape := make([][]float64, total)
	for i := range tape {
		tape[i] = noisyVec(make([]float64, 3), i, rng)
	}

	orig, err := NewFromSpec(cascadeTestSpec, cascadeBase())
	if err != nil {
		t.Fatal(err)
	}
	defer orig.(*Cascade).Close()
	for i := 0; i < cut; i++ {
		orig.Step(tape[i])
	}
	blob, err := orig.Save()
	if err != nil {
		t.Fatal(err)
	}

	twin, err := NewFromSpec(cascadeTestSpec, cascadeBase())
	if err != nil {
		t.Fatal(err)
	}
	defer twin.(*Cascade).Close()
	if err := twin.Load(blob); err != nil {
		t.Fatal(err)
	}
	if twin.Steps() != orig.Steps() {
		t.Fatalf("restored Steps() = %d, want %d", twin.Steps(), orig.Steps())
	}
	for i := cut; i < total; i++ {
		r1, ok1 := orig.Step(tape[i])
		r2, ok2 := twin.Step(tape[i])
		if ok1 != ok2 || r1.Score != r2.Score || r1.Nonconformity != r2.Nonconformity ||
			r1.Source != r2.Source || r1.FineTuned != r2.FineTuned {
			t.Fatalf("step %d diverged: orig (%+v,%v) twin (%+v,%v)", i, r1, ok1, r2, ok2)
		}
	}
	s1, s2 := orig.(*Cascade).Stats(), twin.(*Cascade).Stats()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged:\n orig %+v\n twin %+v", s1, s2)
	}
}

func TestCascadeLoadRejectsMismatch(t *testing.T) {
	orig, err := NewFromSpec(cascadeTestSpec, cascadeBase())
	if err != nil {
		t.Fatal(err)
	}
	defer orig.(*Cascade).Close()
	blob, err := orig.Save()
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewFromSpec("cascade(zscore, knn; admit=0.05, calib=64, gatewin=32)", cascadeBase())
	if err != nil {
		t.Fatal(err)
	}
	defer other.(*Cascade).Close()
	if err := other.Load(blob); err == nil {
		t.Fatal("Load accepted a snapshot with a different admission rate")
	}
}

// TestStepZeroAllocTier0 guards the tier-0 hot path: once warm, Step
// must not allocate for any of the four detectors.
func TestStepZeroAllocTier0(t *testing.T) {
	kinds := []Tier0Kind{Tier0EWMA, Tier0ZScore, Tier0Hampel, Tier0Density}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			d, err := NewTier0(Config{Channels: 3, Seed: 3}, kind, 16)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]float64, 3)
			for i := 0; i < 200; i++ {
				d.Step(syntheticVec(buf, i))
			}
			step := 200
			allocs := testing.AllocsPerRun(200, func() {
				d.Step(syntheticVec(buf, step))
				step++
			})
			if allocs != 0 {
				t.Errorf("%s Step allocates %.1f per op on the hot path, want 0", kind, allocs)
			}
		})
	}
}
