package cascade

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// snapshotVersion identifies the Cascade.Save envelope layout.
const snapshotVersion = 1

// snapshot is the serializable envelope of a cascade checkpoint: the
// configuration fingerprint, the gate's and every heavy member's own
// full checkpoint, the conformal calibration window and the cascade's
// counters.
type snapshot struct {
	Version    int
	Admit      float64
	Calib      int
	MinCalib   int
	GateLabel  string
	Labels     []string
	Gate       []byte
	Heavy      [][]byte
	Conformal  []byte
	HeavyReady []bool
	AllReady   bool
	Steps      int
	Screened   int
	Admitted   int
	Forwarded  int
	FineTunes  int
	LastP      float64
}

// Save returns a binary checkpoint composing the gate's and every heavy
// member's full checkpoint with the conformal calibration window and the
// cascade counters. A cascade restored with Load screens and scores
// bit-identically to an uninterrupted run.
func (c *Cascade) Save() ([]byte, error) {
	gck, ok := c.gate.(Checkpointer)
	if !ok {
		return nil, fmt.Errorf("cascade: gate (%s) does not support checkpointing", c.gateLabel)
	}
	gate, err := gck.Save()
	if err != nil {
		return nil, fmt.Errorf("cascade: gate (%s): %w", c.gateLabel, err)
	}
	conf, err := c.conf.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("cascade: %w", err)
	}
	snap := snapshot{
		Version:    snapshotVersion,
		Admit:      c.admit,
		Calib:      c.calib,
		MinCalib:   c.minCalib,
		GateLabel:  c.gateLabel,
		Labels:     append([]string(nil), c.heavyLabels...),
		Gate:       gate,
		Heavy:      make([][]byte, len(c.heavy)),
		Conformal:  conf,
		HeavyReady: append([]bool(nil), c.heavyReady...),
		AllReady:   c.allHeavyReady,
		Steps:      c.steps,
		Screened:   c.screened,
		Admitted:   c.admitted,
		Forwarded:  c.forwarded,
		FineTunes:  c.fineTunes,
		LastP:      c.lastP,
	}
	for i, m := range c.heavy {
		ck, ok := m.(Checkpointer)
		if !ok {
			return nil, fmt.Errorf("cascade: heavy member %d (%s) does not support checkpointing", i, c.heavyLabels[i])
		}
		blob, err := ck.Save()
		if err != nil {
			return nil, fmt.Errorf("cascade: heavy member %d (%s): %w", i, c.heavyLabels[i], err)
		}
		snap.Heavy[i] = blob
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("cascade: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores a checkpoint produced by Save. The cascade must have
// been built with the same configuration (admission rate, calibration
// window, member layout); each member additionally validates its own
// blob, so mismatched member configurations are rejected before any
// cascade-level state is touched.
func (c *Cascade) Load(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("cascade: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("cascade: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	switch {
	case snap.Admit != c.admit:
		return fmt.Errorf("cascade: snapshot admit=%v does not match cascade admit=%v", snap.Admit, c.admit)
	case snap.Calib != c.calib || snap.MinCalib != c.minCalib:
		return fmt.Errorf("cascade: snapshot calibration (%d/%d) does not match cascade (%d/%d)",
			snap.MinCalib, snap.Calib, c.minCalib, c.calib)
	case snap.GateLabel != c.gateLabel:
		return fmt.Errorf("cascade: snapshot gate %q does not match cascade gate %q", snap.GateLabel, c.gateLabel)
	case len(snap.Heavy) != len(c.heavy) || len(snap.HeavyReady) != len(c.heavy):
		return fmt.Errorf("cascade: snapshot has %d heavy members, cascade has %d", len(snap.Heavy), len(c.heavy))
	}
	for i, l := range snap.Labels {
		if i >= len(c.heavyLabels) || l != c.heavyLabels[i] {
			return fmt.Errorf("cascade: snapshot heavy member %d is %q, cascade has %q", i, l, c.heavyLabels[i])
		}
	}
	gck, ok := c.gate.(Checkpointer)
	if !ok {
		return fmt.Errorf("cascade: gate (%s) does not support checkpointing", c.gateLabel)
	}
	if err := gck.Load(snap.Gate); err != nil {
		return fmt.Errorf("cascade: gate (%s): %w", c.gateLabel, err)
	}
	for i, m := range c.heavy {
		ck, ok := m.(Checkpointer)
		if !ok {
			return fmt.Errorf("cascade: heavy member %d (%s) does not support checkpointing", i, c.heavyLabels[i])
		}
		if err := ck.Load(snap.Heavy[i]); err != nil {
			return fmt.Errorf("cascade: heavy member %d (%s): %w", i, c.heavyLabels[i], err)
		}
	}
	if err := c.conf.UnmarshalBinary(snap.Conformal); err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	copy(c.heavyReady, snap.HeavyReady)
	c.allHeavyReady = snap.AllReady
	c.steps = snap.Steps
	c.screened = snap.Screened
	c.admitted = snap.Admitted
	c.forwarded = snap.Forwarded
	c.fineTunes = snap.FineTunes
	c.lastP = snap.LastP
	return nil
}
