// Package cascade implements the two-tier screening detector: a tier-0
// gate (internal/tier0) scores every vector for nanoseconds, and the
// heavy members — full ML pipelines or ensembles — only see vectors
// whose gate score is anomalous under a conformal admission test
// (internal/score.Conformal). Screened-out vectors pass the gate's own
// score and verdict through, so the cascade is a complete StreamDetector
// with the cost profile of the gate on >90% of traffic.
//
// Admission is calibrated, not a raw percentile: the gate score's
// conformal p-value against a sliding calibration window of recent gate
// scores is compared to the target false-admission rate ε, so "admit"
// means "this vector is in the gate's top ε tail regardless of the
// score's scale or drift". Every gate score enters the calibration
// window — admitted ones included — so the window tracks the marginal
// score distribution and the observed false-admission rate stays ≈ ε
// under exchangeability.
//
// Until the gate is ready, the calibration window has MinCalib scores
// and every heavy member has scored at least once, vectors are forwarded
// to the heavy tier unconditionally (counted separately as Forwarded):
// heavy pipelines need the full stream to fill windows and warm up, and
// an uncalibrated gate must not screen. Heavy members never see screened
// vectors at all — their windows and training sets simply advance more
// slowly — which is the entire cost win.
package cascade

import (
	"fmt"

	"streamad/internal/core"
	"streamad/internal/score"
)

// Member is one detector of the cascade (the gate or a heavy member).
// streamad.Detector, Ensemble and the tier-0 detectors all satisfy it.
type Member interface {
	Step(s []float64) (core.Result, bool)
}

// Checkpointer is the additional contract members must satisfy for the
// cascade's Save/Load to compose them into a checkpoint.
type Checkpointer interface {
	Save() ([]byte, error)
	Load([]byte) error
}

// Config assembles a Cascade.
type Config struct {
	// Gate is the tier-0 screening detector (required).
	Gate Member
	// GateLabel names the gate for stats and Result.Source (default
	// "gate").
	GateLabel string
	// Heavy are the admitted-traffic detectors (required, at least one).
	Heavy []Member
	// HeavyLabels name the heavy members (optional; default "heavy-i").
	HeavyLabels []string
	// Admit is the target false-admission rate ε (default 0.1).
	Admit float64
	// Calib is the conformal calibration-window capacity (default 128).
	Calib int
	// MinCalib is the number of calibration scores required before
	// screening activates (default max(32, ⌈1/Admit⌉), capped at Calib —
	// below 1/ε−1 scores no vector can be admitted at all, so screening
	// earlier would blind the heavy tier).
	MinCalib int
}

// Cascade steps the gate on every vector and the heavy members on
// admitted ones. Like core.Detector it is not safe for concurrent use;
// callers serialize Step.
type Cascade struct {
	gate        Member
	gateLabel   string
	gateSource  string //streamad:transient result-source label derived from the gate spec at construction
	heavy       []Member
	heavyLabels []string
	heavySource string //streamad:transient result-source label derived from the heavy specs at construction
	admit       float64
	calib       int
	minCalib    int
	conf        *score.Conformal

	heavyReady    []bool
	allHeavyReady bool

	steps     int
	screened  int
	admitted  int
	forwarded int
	fineTunes int
	lastP     float64
}

// New validates the configuration and returns a Cascade.
func New(cfg Config) (*Cascade, error) {
	if cfg.Gate == nil {
		return nil, fmt.Errorf("cascade: gate is required")
	}
	if len(cfg.Heavy) == 0 {
		return nil, fmt.Errorf("cascade: need at least one heavy member")
	}
	if len(cfg.HeavyLabels) != 0 && len(cfg.HeavyLabels) != len(cfg.Heavy) {
		return nil, fmt.Errorf("cascade: %d labels for %d heavy members", len(cfg.HeavyLabels), len(cfg.Heavy))
	}
	if cfg.Admit == 0 {
		cfg.Admit = 0.1
	}
	if cfg.Admit <= 0 || cfg.Admit >= 1 {
		return nil, fmt.Errorf("cascade: Admit must be in (0,1), got %g", cfg.Admit)
	}
	if cfg.Calib == 0 {
		cfg.Calib = 128
	}
	if cfg.Calib < 8 {
		return nil, fmt.Errorf("cascade: Calib must be at least 8, got %d", cfg.Calib)
	}
	if cfg.MinCalib == 0 {
		cfg.MinCalib = 32
		if need := int(1/cfg.Admit) + 1; need > cfg.MinCalib {
			cfg.MinCalib = need
		}
		if cfg.MinCalib > cfg.Calib {
			cfg.MinCalib = cfg.Calib
		}
	}
	if cfg.MinCalib < 1 || cfg.MinCalib > cfg.Calib {
		return nil, fmt.Errorf("cascade: MinCalib must be in [1, Calib=%d], got %d", cfg.Calib, cfg.MinCalib)
	}
	gateLabel := cfg.GateLabel
	if gateLabel == "" {
		gateLabel = "gate"
	}
	labels := make([]string, len(cfg.Heavy))
	for i := range cfg.Heavy {
		if cfg.Heavy[i] == nil {
			return nil, fmt.Errorf("cascade: heavy member %d is nil", i)
		}
		labels[i] = fmt.Sprintf("heavy-%d", i)
		if len(cfg.HeavyLabels) > 0 && cfg.HeavyLabels[i] != "" {
			labels[i] = cfg.HeavyLabels[i]
		}
	}
	heavySource := "heavy"
	if len(cfg.Heavy) == 1 {
		heavySource = "heavy:" + labels[0]
	}
	return &Cascade{
		gate:        cfg.Gate,
		gateLabel:   gateLabel,
		gateSource:  "tier0:" + gateLabel,
		heavy:       cfg.Heavy,
		heavyLabels: labels,
		heavySource: heavySource,
		admit:       cfg.Admit,
		calib:       cfg.Calib,
		minCalib:    cfg.MinCalib,
		conf:        score.NewConformal(cfg.Calib, cfg.Admit),
		heavyReady:  make([]bool, len(cfg.Heavy)),
		lastP:       1,
	}, nil
}

// Step consumes the next stream vector: the gate scores it, its score
// joins the conformal calibration window, and the vector reaches the
// heavy members only when screening is inactive (ramp-up) or the gate
// p-value is ≤ ε. ok is false only while neither tier can score.
//
//streamad:hotpath
func (c *Cascade) Step(s []float64) (core.Result, bool) {
	c.steps++
	gRes, gOK := c.gate.Step(s)
	if gOK {
		c.lastP = c.conf.PValue(gRes.Score)
		c.conf.Observe(gRes.Score)
	}
	if gOK && c.allHeavyReady && c.conf.N() >= c.minCalib {
		// Screening is active: the conformal gate decides.
		if c.lastP > c.admit {
			c.screened++
			gRes.Source = c.gateSource
			// Screened results carry the gate's bounded score as their
			// nonconformity: the gate's raw nonconformity is on the
			// tier-0 z-scale, and letting it into the mixed stream a
			// downstream thresholder sees would drown the heavy members'
			// [0,1]-calibrated scores.
			gRes.Nonconformity = gRes.Score
			return gRes, true
		}
		c.admitted++
	} else {
		c.forwarded++
	}

	// Forward to the heavy tier and combine by unweighted mean over the
	// ready members.
	var sumF, sumA float64
	nReady := 0
	fineTuned := false
	for i, m := range c.heavy {
		res, ok := m.Step(s)
		if !ok {
			continue
		}
		c.heavyReady[i] = true
		nReady++
		sumF += res.Score
		sumA += res.Nonconformity
		if res.FineTuned {
			fineTuned = true
		}
	}
	if fineTuned {
		c.fineTunes++
	}
	if !c.allHeavyReady && nReady == len(c.heavy) {
		all := true
		for _, r := range c.heavyReady {
			all = all && r
		}
		c.allHeavyReady = all
	}
	if nReady > 0 {
		n := float64(nReady)
		return core.Result{
			Nonconformity: sumA / n,
			Score:         sumF / n,
			FineTuned:     fineTuned,
			Source:        c.heavySource,
		}, true
	}
	// Heavy tier still warming; the gate's score is better than silence.
	if gOK {
		gRes.Source = c.gateSource
		return gRes, true
	}
	return core.Result{}, false
}

// Run scores an entire series with a validity mask.
func (c *Cascade) Run(series [][]float64) (scores []float64, valid []bool) {
	scores = make([]float64, len(series))
	valid = make([]bool, len(series))
	for i, s := range series {
		if res, ok := c.Step(s); ok {
			scores[i] = res.Score
			valid[i] = true
		}
	}
	return scores, valid
}

// Steps returns the number of stream vectors consumed.
func (c *Cascade) Steps() int { return c.steps }

// FineTunes returns the steps on which at least one heavy member
// fine-tuned.
func (c *Cascade) FineTunes() int { return c.fineTunes }

// Stats is the cascade's observable state, exposed per stream by the
// HTTP server's stats endpoint and /metrics.
type Stats struct {
	// GateLabel names the tier-0 gate.
	GateLabel string
	// HeavyLabels name the heavy members.
	HeavyLabels []string
	// Steps is the total vectors consumed.
	Steps int
	// Screened counts vectors answered by the gate alone.
	Screened int
	// Admitted counts vectors the conformal gate sent to the heavy tier
	// while screening was active.
	Admitted int
	// Forwarded counts vectors sent to the heavy tier unconditionally
	// during ramp-up (gate warmup, calibration fill, heavy warmup).
	Forwarded int
	// AdmitTarget is the configured false-admission rate ε.
	AdmitTarget float64
	// CalibN and CalibCap are the calibration window's fill and capacity.
	CalibN   int
	CalibCap int
	// Screening reports whether the gate is currently deciding (as
	// opposed to ramp-up forwarding).
	Screening bool
	// AdmissionRate is Admitted/(Admitted+Screened) — the observed
	// admission fraction among gate decisions (0 before any decision).
	AdmissionRate float64
	// HeavyRate is (Admitted+Forwarded)/Steps — the fraction of all
	// traffic that reached the heavy tier.
	HeavyRate float64
	// LastPValue is the most recent gate-score p-value.
	LastPValue float64
}

// Stats returns a snapshot of the cascade's counters. Callers must
// serialize it with Step.
func (c *Cascade) Stats() Stats {
	st := Stats{
		GateLabel:   c.gateLabel,
		HeavyLabels: append([]string(nil), c.heavyLabels...),
		Steps:       c.steps,
		Screened:    c.screened,
		Admitted:    c.admitted,
		Forwarded:   c.forwarded,
		AdmitTarget: c.admit,
		CalibN:      c.conf.N(),
		CalibCap:    c.calib,
		Screening:   c.allHeavyReady && c.conf.N() >= c.minCalib,
		LastPValue:  c.lastP,
	}
	if dec := c.admitted + c.screened; dec > 0 {
		st.AdmissionRate = float64(c.admitted) / float64(dec)
	}
	if c.steps > 0 {
		st.HeavyRate = float64(c.admitted+c.forwarded) / float64(c.steps)
	}
	return st
}

// Gate returns the tier-0 gate detector.
func (c *Cascade) Gate() Member { return c.gate }

// Heavy returns the heavy members in cascade order.
func (c *Cascade) Heavy() []Member {
	out := make([]Member, len(c.heavy))
	copy(out, c.heavy)
	return out
}

// FineTuneStats aggregates the heavy members' serve/train statistics,
// mirroring Ensemble.FineTuneStats. Safe from any goroutine.
func (c *Cascade) FineTuneStats() core.FineTuneStats {
	agg := core.FineTuneStats{Buckets: make([]uint64, len(core.FineTuneBuckets)+1)}
	for _, m := range c.heavy {
		fs, ok := m.(interface{ FineTuneStats() core.FineTuneStats })
		if !ok {
			continue
		}
		st := fs.FineTuneStats()
		agg.Async = agg.Async || st.Async
		agg.InFlight = agg.InFlight || st.InFlight
		agg.Launched += st.Launched
		agg.Skipped += st.Skipped
		agg.Completed += st.Completed
		if st.LastSeconds > agg.LastSeconds {
			agg.LastSeconds = st.LastSeconds
		}
		agg.TotalSeconds += st.TotalSeconds
		for i := range st.Buckets {
			agg.Buckets[i] += st.Buckets[i]
		}
	}
	return agg
}

// WaitFineTune drains every heavy member's in-flight asynchronous
// fine-tune. Serialize with Step, like the members themselves.
func (c *Cascade) WaitFineTune() {
	for _, m := range c.heavy {
		if w, ok := m.(interface{ WaitFineTune() }); ok {
			w.WaitFineTune()
		}
	}
}

// Close stops any member-owned goroutines (ensemble heavy members).
// Optional and idempotent, like Ensemble.Close.
func (c *Cascade) Close() {
	for _, m := range c.heavy {
		if cl, ok := m.(interface{ Close() }); ok {
			cl.Close()
		}
	}
}
