// Package randstate makes math/rand streams checkpointable without
// changing their sequences. A CountedSource wraps the standard library
// source and counts how many values have been drawn; a checkpoint stores
// just (seed, draws) and a restore re-creates the source and fast-forwards
// it, so the restored stream continues exactly where the saved one
// stopped. Counting at the Source level (not the Rand level) is what makes
// this exact: rejection-sampling helpers like NormFloat64 and Intn consume
// a variable number of source values, but every one of them is counted.
package randstate

import "math/rand"

// CountedSource is a rand.Source64 that counts draws.
type CountedSource struct {
	seed  int64
	src   rand.Source64
	draws uint64
}

// NewCountedSource returns a counted source over rand.NewSource(seed).
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *CountedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountedSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (c *CountedSource) Seed(seed int64) {
	c.seed = seed
	c.draws = 0
	c.src.Seed(seed)
}

// Draws returns the number of values drawn since the last (re)seed.
func (c *CountedSource) Draws() uint64 { return c.draws }

// SeedValue returns the seed the source was created or last reseeded with.
func (c *CountedSource) SeedValue() int64 { return c.seed }

// Restore reseeds the source and fast-forwards it by draws values. The
// standard library source advances exactly one internal step per Int63 or
// Uint64 call, so replaying by count reproduces the stream position.
func (c *CountedSource) Restore(seed int64, draws uint64) {
	c.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		c.src.Uint64()
	}
	c.draws = draws
}
