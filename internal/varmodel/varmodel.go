// Package varmodel implements a vector-autoregressive VAR(p) model,
//
//	s_t = ν + Σ_{i=1..p} A_i · s_{t−i} + ε_t,
//
// with coefficient matrices A_i ∈ R^{N×N} and intercept ν ∈ R^N estimated
// by least squares (Lütkepohl 2005). Unlike the shared-coefficient online
// ARIMA, VAR captures cross-channel correlations. Estimation requires a
// contiguous excerpt of the stream, which restricts the Task 1 learning
// strategy to the sliding window, exactly as the paper notes.
package varmodel

import (
	"fmt"

	"streamad/internal/mat"
)

// Model is a VAR(p) forecaster over N-channel streams. It consumes feature
// vectors x ∈ R^{w×N} (row-major, oldest first, w ≥ p+1) and forecasts the
// final row from the preceding p rows.
type Model struct {
	p        int
	channels int
	// coef is the stacked coefficient matrix [ν | A_1 | … | A_p] with shape
	// N × (1 + p·N); prediction is coef · [1, s_{t−1}, …, s_{t−p}].
	coef   *mat.Dense
	fitted bool
}

// Config parameterizes the VAR model.
type Config struct {
	// P is the autoregressive order (number of lagged stream vectors).
	P int
	// Channels is the stream dimensionality N.
	Channels int
}

// New returns an unfitted VAR(p) model.
func New(cfg Config) (*Model, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("varmodel: P must be positive, got %d", cfg.P)
	}
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("varmodel: Channels must be positive, got %d", cfg.Channels)
	}
	return &Model{p: cfg.P, channels: cfg.Channels}, nil
}

// Order returns p.
func (m *Model) Order() int { return m.p }

// Channels returns N.
func (m *Model) Channels() int { return m.channels }

// Fitted reports whether coefficients have been estimated.
func (m *Model) Fitted() bool { return m.fitted }

// Coef returns the stacked coefficient matrix [ν | A_1 | … | A_p], or nil
// before the first fit.
func (m *Model) Coef() *mat.Dense { return m.coef }

// regressor builds [1, s_{t−1}, …, s_{t−p}] for the row at index t of the
// series (series laid out as rows × N).
func (m *Model) regressor(series []float64, t int, dst []float64) []float64 {
	dst = dst[:0]
	dst = append(dst, 1)
	for i := 1; i <= m.p; i++ {
		row := series[(t-i)*m.channels : (t-i+1)*m.channels]
		dst = append(dst, row...)
	}
	return dst
}

// Predict implements the framework model contract: given feature vector
// x ∈ R^{w×N} it returns (target, prediction) for the final stream vector.
// Before the first fit the prediction falls back to persistence (ŝ_t =
// s_{t−1}).
func (m *Model) Predict(x []float64) (target, pred []float64) {
	w := len(x) / m.channels
	if w*m.channels != len(x) || w < m.p+1 {
		panic(fmt.Sprintf("varmodel: feature vector needs ≥%d rows of %d channels", m.p+1, m.channels))
	}
	target = make([]float64, m.channels)
	copy(target, x[(w-1)*m.channels:])
	if !m.fitted {
		pred = make([]float64, m.channels)
		copy(pred, x[(w-2)*m.channels:(w-1)*m.channels])
		return target, pred
	}
	reg := m.regressor(x, w-1, make([]float64, 0, 1+m.p*m.channels))
	pred, err := m.coef.MulVec(reg)
	if err != nil {
		panic(err) // impossible: regressor length is fixed by construction
	}
	return target, pred
}

// FitSeries estimates the coefficients by least squares from a contiguous
// series of rows×N values (row-major, oldest first). It needs at least
// p + 1 + p·N rows for an overdetermined system; with fewer it still
// solves the ridge-regularized normal equations.
func (m *Model) FitSeries(series []float64) error {
	rows := len(series) / m.channels
	if rows*m.channels != len(series) {
		return fmt.Errorf("varmodel: series length %d not a multiple of %d channels", len(series), m.channels)
	}
	if rows < m.p+1 {
		return fmt.Errorf("varmodel: need at least %d rows, got %d", m.p+1, rows)
	}
	nObs := rows - m.p
	k := 1 + m.p*m.channels
	a := mat.NewDense(nObs, k)
	b := mat.NewDense(nObs, m.channels)
	scratch := make([]float64, 0, k)
	for t := m.p; t < rows; t++ {
		reg := m.regressor(series, t, scratch)
		copy(a.Row(t-m.p), reg)
		copy(b.Row(t-m.p), series[t*m.channels:(t+1)*m.channels])
	}
	x, err := mat.SolveLSMulti(a, b)
	if err != nil {
		return fmt.Errorf("varmodel: least squares failed: %w", err)
	}
	// x has shape k × N (one column per output channel); store as N × k.
	m.coef = x.T()
	m.fitted = true
	return nil
}

// Fit implements the framework fine-tune contract. The training set must
// come from a sliding window, so its feature vectors are overlapping
// contiguous excerpts; the most recent feature vector already contains the
// freshest w rows, and the estimation uses the concatenation of the oldest
// vector with the trailing rows of each successor to recover the full
// contiguous span.
func (m *Model) Fit(set [][]float64) {
	if len(set) == 0 {
		return
	}
	// Reconstruct the contiguous series: the sliding-window training set
	// holds x_i = [s_{i−w+1}, …, s_i] for consecutive i, so the span is the
	// first vector plus the last row of every following vector.
	series := make([]float64, 0, len(set[0])+len(set)*m.channels)
	series = append(series, set[0]...)
	for _, x := range set[1:] {
		series = append(series, x[len(x)-m.channels:]...)
	}
	// Estimation failure (e.g. constant series) keeps the previous fit.
	_ = m.FitSeries(series)
}
