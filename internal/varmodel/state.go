package varmodel

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"streamad/internal/mat"
)

// state is the serializable form of the VAR model.
type state struct {
	P        int
	Channels int
	Fitted   bool
	Rows     int
	Cols     int
	Coef     []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	st := state{P: m.p, Channels: m.channels, Fitted: m.fitted}
	if m.fitted {
		st.Rows = m.coef.Rows()
		st.Cols = m.coef.Cols()
		st.Coef = append([]float64(nil), m.coef.Data()...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("varmodel: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// order and channel count must match the snapshot.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("varmodel: decode: %w", err)
	}
	if st.P != m.p || st.Channels != m.channels {
		return fmt.Errorf("varmodel: snapshot (p=%d N=%d) does not match model (p=%d N=%d)",
			st.P, st.Channels, m.p, m.channels)
	}
	if !st.Fitted {
		m.fitted = false
		m.coef = nil
		return nil
	}
	if len(st.Coef) != st.Rows*st.Cols {
		return fmt.Errorf("varmodel: snapshot coefficient shape mismatch")
	}
	m.coef = mat.NewDenseData(st.Rows, st.Cols, append([]float64(nil), st.Coef...))
	m.fitted = true
	return nil
}
