package varmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{P: 0, Channels: 1}); err == nil {
		t.Fatal("expected error for P=0")
	}
	if _, err := New(Config{P: 1, Channels: 0}); err == nil {
		t.Fatal("expected error for Channels=0")
	}
	m, err := New(Config{P: 2, Channels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 2 || m.Channels() != 3 || m.Fitted() {
		t.Fatal("fresh model state wrong")
	}
}

// genVAR1 generates a VAR(1) series s_t = ν + A·s_{t−1} + ε.
func genVAR1(nu []float64, a [][]float64, steps int, noise float64, rng *rand.Rand) []float64 {
	n := len(nu)
	series := make([]float64, steps*n)
	prev := make([]float64, n)
	for t := 0; t < steps; t++ {
		row := series[t*n : (t+1)*n]
		for i := 0; i < n; i++ {
			v := nu[i]
			for j := 0; j < n; j++ {
				v += a[i][j] * prev[j]
			}
			row[i] = v + noise*rng.NormFloat64()
		}
		copy(prev, row)
	}
	return series
}

func TestRecoversVAR1Coefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nu := []float64{1, -0.5}
	a := [][]float64{{0.5, 0.2}, {-0.3, 0.4}}
	series := genVAR1(nu, a, 2000, 0.05, rng)
	m, _ := New(Config{P: 1, Channels: 2})
	if err := m.FitSeries(series); err != nil {
		t.Fatal(err)
	}
	coef := m.Coef() // 2 × (1 + 2)
	for i := 0; i < 2; i++ {
		if math.Abs(coef.At(i, 0)-nu[i]) > 0.05 {
			t.Fatalf("ν[%d] = %v, want %v", i, coef.At(i, 0), nu[i])
		}
		for j := 0; j < 2; j++ {
			if math.Abs(coef.At(i, 1+j)-a[i][j]) > 0.05 {
				t.Fatalf("A[%d][%d] = %v, want %v", i, j, coef.At(i, 1+j), a[i][j])
			}
		}
	}
}

func TestPredictBeforeFitIsPersistence(t *testing.T) {
	m, _ := New(Config{P: 1, Channels: 2})
	x := []float64{1, 2, 3, 4, 5, 6} // 3 rows × 2 channels
	target, pred := m.Predict(x)
	if target[0] != 5 || target[1] != 6 {
		t.Fatalf("target = %v", target)
	}
	if pred[0] != 3 || pred[1] != 4 {
		t.Fatalf("persistence pred = %v, want [3 4]", pred)
	}
}

func TestPredictAfterFitBeatsPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nu := []float64{0, 0}
	a := [][]float64{{0.1, 0.8}, {0.8, 0.1}} // strong cross-channel coupling
	series := genVAR1(nu, a, 1500, 0.05, rng)
	m, _ := New(Config{P: 1, Channels: 2})
	if err := m.FitSeries(series[:2000]); err != nil {
		t.Fatal(err)
	}
	n := 2
	var modelErr, persistErr float64
	rows := len(series) / n
	for tIdx := rows - 100; tIdx < rows; tIdx++ {
		x := series[(tIdx-2)*n : (tIdx+1)*n] // 3 rows
		target, pred := m.Predict(x)
		prev := x[n : 2*n]
		for c := 0; c < n; c++ {
			modelErr += (pred[c] - target[c]) * (pred[c] - target[c])
			persistErr += (prev[c] - target[c]) * (prev[c] - target[c])
		}
	}
	if modelErr >= persistErr/2 {
		t.Fatalf("VAR (%v) should clearly beat persistence (%v) on coupled channels", modelErr, persistErr)
	}
}

func TestFitFromSlidingWindowSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nu := []float64{0.5}
	a := [][]float64{{0.7}}
	series := genVAR1(nu, a, 500, 0.05, rng)
	n := 1
	w := 10
	// Build overlapping windows exactly like the sliding-window strategy.
	var set [][]float64
	rows := len(series) / n
	for tIdx := w; tIdx <= rows; tIdx++ {
		win := make([]float64, w*n)
		copy(win, series[(tIdx-w)*n:tIdx*n])
		set = append(set, win)
	}
	m, _ := New(Config{P: 2, Channels: 1})
	m.Fit(set)
	if !m.Fitted() {
		t.Fatal("Fit from sliding-window set failed")
	}
	coef := m.Coef()
	if math.Abs(coef.At(0, 1)-0.7) > 0.1 {
		t.Fatalf("A1 = %v, want ≈0.7", coef.At(0, 1))
	}
}

func TestFitSeriesErrors(t *testing.T) {
	m, _ := New(Config{P: 2, Channels: 2})
	if err := m.FitSeries([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for non-multiple length")
	}
	if err := m.FitSeries([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("expected error for too few rows")
	}
}

func TestFitEmptySetIsNoop(t *testing.T) {
	m, _ := New(Config{P: 1, Channels: 1})
	m.Fit(nil)
	if m.Fitted() {
		t.Fatal("empty Fit should not mark model fitted")
	}
}

func TestPredictPanicsOnBadShape(t *testing.T) {
	m, _ := New(Config{P: 3, Channels: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1, 2, 3, 4})
}
