package reservoir

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vec(vals ...float64) []float64 { return vals }

func TestSlidingWindowOrderAndEviction(t *testing.T) {
	sw := NewSlidingWindow(3, 1)
	for i := 1; i <= 3; i++ {
		u := sw.Observe(vec(float64(i)), 0)
		if u.Kind != Added {
			t.Fatalf("push %d kind = %v, want Added", i, u.Kind)
		}
	}
	u := sw.Observe(vec(4), 0)
	if u.Kind != Replaced || u.Evicted[0] != 1 {
		t.Fatalf("eviction = %+v, want Replaced/1", u)
	}
	items := sw.Items()
	want := []float64{2, 3, 4}
	for i := range want {
		if items[i][0] != want[i] {
			t.Fatalf("Items = %v, want %v", items, want)
		}
	}
	if sw.Len() != 3 || sw.Cap() != 3 {
		t.Fatalf("Len/Cap = %d/%d", sw.Len(), sw.Cap())
	}
}

func TestSlidingWindowCopiesInput(t *testing.T) {
	sw := NewSlidingWindow(2, 2)
	buf := vec(1, 2)
	sw.Observe(buf, 0)
	buf[0] = 99
	if sw.Items()[0][0] != 1 {
		t.Fatal("sliding window aliases input")
	}
}

// TestSlidingWindowProperty: items always equal the last min(m,n) vectors.
func TestSlidingWindowProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		n := rng.Intn(40)
		sw := NewSlidingWindow(m, 1)
		var all []float64
		for i := 0; i < n; i++ {
			v := rng.Float64()
			all = append(all, v)
			sw.Observe(vec(v), 0)
		}
		start := 0
		if len(all) > m {
			start = len(all) - m
		}
		want := all[start:]
		items := sw.Items()
		if len(items) != len(want) {
			return false
		}
		for i := range want {
			if items[i][0] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformReservoirFillsThenSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ur := NewUniformReservoir(10, 1, rng)
	for i := 0; i < 10; i++ {
		if u := ur.Observe(vec(float64(i)), 0); u.Kind != Added {
			t.Fatalf("fill kind = %v", u.Kind)
		}
	}
	replaced, skipped := 0, 0
	for i := 10; i < 1000; i++ {
		switch ur.Observe(vec(float64(i)), 0).Kind {
		case Replaced:
			replaced++
		case Skipped:
			skipped++
		default:
			t.Fatal("Added after full")
		}
	}
	if ur.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ur.Len())
	}
	// Expected replacements: Σ m/t ≈ m·ln(1000/10) ≈ 46.
	if replaced < 20 || replaced > 90 {
		t.Fatalf("replaced = %d, want ≈46", replaced)
	}
	if skipped == 0 {
		t.Fatal("expected some skips")
	}
}

// TestUniformReservoirUnbiasedProperty: over many runs, early and late
// stream elements should be retained at comparable rates.
func TestUniformReservoirUnbiased(t *testing.T) {
	const (
		streamLen = 200
		m         = 20
		runs      = 300
	)
	counts := make([]int, streamLen)
	for r := 0; r < runs; r++ {
		rng := rand.New(rand.NewSource(int64(r)))
		ur := NewUniformReservoir(m, 1, rng)
		for i := 0; i < streamLen; i++ {
			ur.Observe(vec(float64(i)), 0)
		}
		for _, it := range ur.Items() {
			counts[int(it[0])]++
		}
	}
	// Every element has expected retention m/streamLen = 0.1 → expected
	// count 30 over 300 runs. Compare first and last quartile means.
	var early, late float64
	for i := 0; i < streamLen/4; i++ {
		early += float64(counts[i])
	}
	for i := 3 * streamLen / 4; i < streamLen; i++ {
		late += float64(counts[i])
	}
	ratio := early / late
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("retention early/late ratio = %.2f, want ≈1 (unbiased)", ratio)
	}
}

func TestARESPriorityMonotonicInScore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ar := NewAnomalyAwareReservoir(5, 1, rng)
	// Average priority for low anomaly scores must exceed that for high
	// scores (the function is decreasing in f modulo the random base u).
	var lo, hi float64
	const n = 2000
	for i := 0; i < n; i++ {
		lo += ar.Priority(0.0)
		hi += ar.Priority(1.0)
	}
	lo /= n
	hi /= n
	if lo <= hi {
		t.Fatalf("priority(f=0)=%v must exceed priority(f=1)=%v", lo, hi)
	}
}

func TestARESKeepsNormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ar := NewAnomalyAwareReservoir(20, 1, rng)
	// Fill with normal vectors (f=0), then offer anomalous ones (f=1).
	for i := 0; i < 20; i++ {
		ar.Observe(vec(0), 0)
	}
	replacedByAnomalous := 0
	for i := 0; i < 200; i++ {
		if ar.Observe(vec(1), 1).Kind == Replaced {
			replacedByAnomalous++
		}
	}
	// Anomalous vectors have much lower priorities; only few should enter.
	anomalousKept := 0
	for _, it := range ar.Items() {
		if it[0] == 1 {
			anomalousKept++
		}
	}
	if anomalousKept > 10 {
		t.Fatalf("ARES kept %d/20 anomalous vectors, want few", anomalousKept)
	}
}

func TestARESReplacementNeedsLowerPriority(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ar := NewAnomalyAwareReservoir(3, 1, rng)
	for i := 0; i < 3; i++ {
		ar.Observe(vec(float64(i)), 0)
	}
	min := ar.MinPriority()
	if min <= 0 || min >= 1 {
		t.Fatalf("min priority = %v, want in (0,1)", min)
	}
	if ar.Len() != 3 || ar.Cap() != 3 {
		t.Fatalf("Len/Cap = %d/%d", ar.Len(), ar.Cap())
	}
}

func TestARESEmptyMinPriority(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ar := NewAnomalyAwareReservoir(2, 1, rng)
	if !math.IsInf(ar.MinPriority(), 1) {
		t.Fatal("empty ARES MinPriority should be +Inf")
	}
}

func TestARESNaNScoreTreatedAsAnomalous(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ar := NewAnomalyAwareReservoir(2, 1, rng)
	p := ar.Priority(math.NaN())
	if math.IsNaN(p) || p <= 0 {
		t.Fatalf("Priority(NaN) = %v, want finite positive", p)
	}
}

func TestParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, f := range []func(){
		func() { NewSlidingWindow(0, 1) },
		func() { NewUniformReservoir(1, 0, rng) },
		func() { NewAnomalyAwareReservoirParams(1, 1, rng, 0, 0.9, 3, 3) },
		func() { NewAnomalyAwareReservoirParams(1, 1, rng, 0.9, 0.7, 3, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestObserveDimensionMismatchPanics(t *testing.T) {
	sw := NewSlidingWindow(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sw.Observe(vec(1), 0)
}
