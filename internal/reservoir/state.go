package reservoir

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The strategies' random draws are not part of these snapshots: the RNG is
// owned and seeded by the caller that built the reservoir, which records
// the number of draws consumed and replays them on restore.

// slidingState is the serializable form of a SlidingWindow: the stored
// vectors, oldest first, so the head index normalizes to zero on restore.
type slidingState struct {
	M    int
	Dim  int
	Flat []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SlidingWindow) MarshalBinary() ([]byte, error) {
	flat := make([]float64, 0, s.count*s.dim)
	for i := 0; i < s.count; i++ {
		flat = append(flat, s.items[(s.head+i)%s.m]...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(slidingState{M: s.m, Dim: s.dim, Flat: flat}); err != nil {
		return nil, fmt.Errorf("reservoir: encode sliding window: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// capacity and dimension must match the snapshot.
func (s *SlidingWindow) UnmarshalBinary(data []byte) error {
	var st slidingState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("reservoir: decode sliding window: %w", err)
	}
	if st.M != s.m || st.Dim != s.dim {
		return fmt.Errorf("reservoir: sliding-window snapshot (m=%d dim=%d) != receiver (m=%d dim=%d)",
			st.M, st.Dim, s.m, s.dim)
	}
	if st.Dim <= 0 || len(st.Flat)%st.Dim != 0 || len(st.Flat) > st.M*st.Dim {
		return fmt.Errorf("reservoir: sliding-window snapshot length %d inconsistent with m=%d dim=%d",
			len(st.Flat), st.M, st.Dim)
	}
	if s.items == nil {
		s.alloc() // paged out by Release; restore reallocates
	}
	n := len(st.Flat) / st.Dim
	s.head = 0
	s.count = n
	for i := 0; i < n; i++ {
		copy(s.items[i], st.Flat[i*st.Dim:(i+1)*st.Dim])
	}
	return nil
}

// uniformState is the serializable form of a UniformReservoir. T is the
// total observation count driving the m/t keep probability.
type uniformState struct {
	M    int
	Dim  int
	T    int
	Flat []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (u *UniformReservoir) MarshalBinary() ([]byte, error) {
	flat := make([]float64, 0, u.count*u.dim)
	for i := 0; i < u.count; i++ {
		flat = append(flat, u.items[i]...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(uniformState{M: u.m, Dim: u.dim, T: u.t, Flat: flat}); err != nil {
		return nil, fmt.Errorf("reservoir: encode uniform reservoir: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// capacity and dimension must match the snapshot.
func (u *UniformReservoir) UnmarshalBinary(data []byte) error {
	var st uniformState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("reservoir: decode uniform reservoir: %w", err)
	}
	if st.M != u.m || st.Dim != u.dim {
		return fmt.Errorf("reservoir: uniform snapshot (m=%d dim=%d) != receiver (m=%d dim=%d)",
			st.M, st.Dim, u.m, u.dim)
	}
	if st.Dim <= 0 || len(st.Flat)%st.Dim != 0 || len(st.Flat) > st.M*st.Dim {
		return fmt.Errorf("reservoir: uniform snapshot length %d inconsistent with m=%d dim=%d",
			len(st.Flat), st.M, st.Dim)
	}
	if u.items == nil {
		u.alloc() // paged out by Release; restore reallocates
	}
	n := len(st.Flat) / st.Dim
	u.count = n
	u.t = st.T
	for i := 0; i < n; i++ {
		copy(u.items[i], st.Flat[i*st.Dim:(i+1)*st.Dim])
	}
	return nil
}

// aresState is the serializable form of an AnomalyAwareReservoir: the heap
// entries in their exact array order, so the restored heap evolves
// identically to the saved one.
type aresState struct {
	M          int
	Dim        int
	Priorities []float64
	Flat       []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *AnomalyAwareReservoir) MarshalBinary() ([]byte, error) {
	st := aresState{M: a.m, Dim: a.dim}
	for _, e := range a.h.entries {
		st.Priorities = append(st.Priorities, e.p)
		st.Flat = append(st.Flat, e.vec...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("reservoir: encode anomaly-aware reservoir: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// capacity and dimension must match the snapshot.
func (a *AnomalyAwareReservoir) UnmarshalBinary(data []byte) error {
	var st aresState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("reservoir: decode anomaly-aware reservoir: %w", err)
	}
	if st.M != a.m || st.Dim != a.dim {
		return fmt.Errorf("reservoir: ares snapshot (m=%d dim=%d) != receiver (m=%d dim=%d)",
			st.M, st.Dim, a.m, a.dim)
	}
	if st.Dim <= 0 || len(st.Flat) != len(st.Priorities)*st.Dim || len(st.Priorities) > st.M {
		return fmt.Errorf("reservoir: ares snapshot holds %d priorities and %d values (m=%d dim=%d)",
			len(st.Priorities), len(st.Flat), st.M, st.Dim)
	}
	entries := make([]priorityEntry, len(st.Priorities))
	for i := range entries {
		v := make([]float64, st.Dim)
		copy(v, st.Flat[i*st.Dim:(i+1)*st.Dim])
		entries[i] = priorityEntry{p: st.Priorities[i], vec: v}
	}
	a.h.entries = entries
	if a.evict == nil {
		a.evict = make([]float64, a.dim) // paged out by Release
	}
	return nil
}
