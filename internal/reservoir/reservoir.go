// Package reservoir implements the Task 1 learning strategies of the
// extended SAFARI framework: maintaining the training set R_train of
// feature vectors as the stream evolves.
//
// Three strategies are provided, following Calikus et al. and the paper:
//
//   - Sliding window (SW): keep the m most recent feature vectors.
//   - Uniform reservoir (URES): classic reservoir sampling; after the
//     reservoir fills, the newest vector replaces a uniformly random one
//     with probability m/t.
//   - Anomaly-aware reservoir (ARES): each vector gets a priority
//     p = u^(λ1/exp(−λ2·f)) with u ~ U[uMin,uMax]; vectors with lower
//     anomaly scores f get stochastically higher priorities and the
//     reservoir retains the highest-priority (most "normal") vectors.
package reservoir

import (
	"container/heap"
	"math"
	"math/rand"
)

// UpdateKind describes what a strategy did with an observed vector.
type UpdateKind int

const (
	// Skipped means the training set is unchanged.
	Skipped UpdateKind = iota
	// Added means the vector was appended (set was below capacity).
	Added
	// Replaced means the vector replaced an existing one.
	Replaced
)

// Update reports the effect of one Observe call. When Kind is Replaced,
// Evicted holds a copy of the removed feature vector.
type Update struct {
	Kind    UpdateKind
	Evicted []float64
}

// TrainingSet is a Task 1 strategy maintaining the reference training set.
type TrainingSet interface {
	// Observe offers feature vector x with anomaly score f (only ARES uses
	// f). The vector is copied; callers may reuse x.
	Observe(x []float64, f float64) Update
	// Items returns the current training set. The outer slice is freshly
	// allocated but the vectors alias internal storage; treat as read-only
	// and consume before the next Observe.
	Items() [][]float64
	// Len returns the current number of stored vectors.
	Len() int
	// Cap returns the maximum number of stored vectors (m).
	Cap() int
}

// SlidingWindow keeps the m most recent feature vectors in arrival order.
// It is the only strategy that preserves stream contiguity, which the VAR
// model requires.
type SlidingWindow struct {
	m     int
	dim   int
	items [][]float64
	head  int
	count int
	// scratch for evicted copies
	evict []float64
}

// NewSlidingWindow returns a sliding window of capacity m over vectors of
// length dim.
func NewSlidingWindow(m, dim int) *SlidingWindow {
	if m <= 0 || dim <= 0 {
		panic("reservoir: m and dim must be positive")
	}
	s := &SlidingWindow{m: m, dim: dim}
	s.alloc()
	return s
}

// alloc (re)creates the contiguous backing storage.
func (s *SlidingWindow) alloc() {
	backing := make([]float64, s.m*s.dim)
	s.items = make([][]float64, s.m)
	for i := range s.items {
		s.items[i] = backing[i*s.dim : (i+1)*s.dim]
	}
	s.evict = make([]float64, s.dim)
}

// Release empties the window and frees its backing storage for warm-tier
// paging; UnmarshalBinary reallocates on restore.
func (s *SlidingWindow) Release() {
	s.items = nil
	s.evict = nil
	s.head = 0
	s.count = 0
}

// Observe implements TrainingSet.
func (s *SlidingWindow) Observe(x []float64, _ float64) Update {
	if len(x) != s.dim {
		panic("reservoir: dimension mismatch")
	}
	if s.count < s.m {
		copy(s.items[(s.head+s.count)%s.m], x)
		s.count++
		return Update{Kind: Added}
	}
	copy(s.evict, s.items[s.head])
	copy(s.items[s.head], x)
	s.head = (s.head + 1) % s.m
	return Update{Kind: Replaced, Evicted: s.evict}
}

// Items implements TrainingSet; vectors are returned oldest first.
func (s *SlidingWindow) Items() [][]float64 {
	out := make([][]float64, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.items[(s.head+i)%s.m]
	}
	return out
}

// Len implements TrainingSet.
func (s *SlidingWindow) Len() int { return s.count }

// Cap implements TrainingSet.
func (s *SlidingWindow) Cap() int { return s.m }

// UniformReservoir implements uniform reservoir sampling over the stream.
type UniformReservoir struct {
	m     int
	dim   int
	items [][]float64
	count int
	t     int        // total observations seen
	rng   *rand.Rand //streamad:transient caller-owned seeded RNG; its position checkpoints with the detector's counted source, not here
	evict []float64
}

// NewUniformReservoir returns a uniform reservoir of capacity m over
// vectors of length dim, driven by the given seeded RNG.
func NewUniformReservoir(m, dim int, rng *rand.Rand) *UniformReservoir {
	if m <= 0 || dim <= 0 {
		panic("reservoir: m and dim must be positive")
	}
	u := &UniformReservoir{m: m, dim: dim, rng: rng}
	u.alloc()
	return u
}

// alloc (re)creates the contiguous backing storage.
func (u *UniformReservoir) alloc() {
	backing := make([]float64, u.m*u.dim)
	u.items = make([][]float64, u.m)
	for i := range u.items {
		u.items[i] = backing[i*u.dim : (i+1)*u.dim]
	}
	u.evict = make([]float64, u.dim)
}

// Release empties the reservoir contents and frees the backing storage for
// warm-tier paging; the observation clock t is untouched (it is snapshot
// state, restored by UnmarshalBinary).
func (u *UniformReservoir) Release() {
	u.items = nil
	u.evict = nil
	u.count = 0
}

// Observe implements TrainingSet.
func (u *UniformReservoir) Observe(x []float64, _ float64) Update {
	if len(x) != u.dim {
		panic("reservoir: dimension mismatch")
	}
	u.t++
	if u.count < u.m {
		copy(u.items[u.count], x)
		u.count++
		return Update{Kind: Added}
	}
	// Keep with probability m/t, replacing a uniformly random victim.
	if u.rng.Float64() < float64(u.m)/float64(u.t) {
		victim := u.rng.Intn(u.m)
		copy(u.evict, u.items[victim])
		copy(u.items[victim], x)
		return Update{Kind: Replaced, Evicted: u.evict}
	}
	return Update{Kind: Skipped}
}

// Items implements TrainingSet.
func (u *UniformReservoir) Items() [][]float64 {
	out := make([][]float64, u.count)
	copy(out, u.items[:u.count])
	return out
}

// Len implements TrainingSet.
func (u *UniformReservoir) Len() int { return u.count }

// Cap implements TrainingSet.
func (u *UniformReservoir) Cap() int { return u.m }

// AnomalyAwareReservoir retains the feature vectors with the highest
// priorities p = u^(λ1/exp(−λ2·f)). Because u < 1 and the exponent grows
// with the anomaly score f, normal vectors receive stochastically higher
// priorities and anomalous ones are evicted first.
type AnomalyAwareReservoir struct {
	m          int
	dim        int
	uMin, uMax float64    //streamad:transient priority-draw bounds fixed at construction (paper parameters)
	l1, l2     float64    //streamad:transient priority exponents fixed at construction (paper parameters)
	rng        *rand.Rand //streamad:transient caller-owned seeded RNG; its position checkpoints with the detector's counted source, not here
	h          priorityHeap
	evict      []float64
}

// DefaultARESParams are the paper's restricted parameters:
// u ∈ [0.7, 0.9], λ1 = λ2 = 3.
const (
	DefaultUMin    = 0.7
	DefaultUMax    = 0.9
	DefaultLambda1 = 3.0
	DefaultLambda2 = 3.0
)

// NewAnomalyAwareReservoir returns an ARES of capacity m over vectors of
// length dim with the paper's default parameters.
func NewAnomalyAwareReservoir(m, dim int, rng *rand.Rand) *AnomalyAwareReservoir {
	return NewAnomalyAwareReservoirParams(m, dim, rng, DefaultUMin, DefaultUMax, DefaultLambda1, DefaultLambda2)
}

// NewAnomalyAwareReservoirParams returns an ARES with explicit priority
// parameters, for ablation studies.
func NewAnomalyAwareReservoirParams(m, dim int, rng *rand.Rand, uMin, uMax, l1, l2 float64) *AnomalyAwareReservoir {
	if m <= 0 || dim <= 0 {
		panic("reservoir: m and dim must be positive")
	}
	if !(uMin > 0 && uMax < 1 && uMin <= uMax) {
		panic("reservoir: need 0 < uMin <= uMax < 1")
	}
	return &AnomalyAwareReservoir{
		m: m, dim: dim, uMin: uMin, uMax: uMax, l1: l1, l2: l2,
		rng:   rng,
		h:     priorityHeap{entries: make([]priorityEntry, 0, m)},
		evict: make([]float64, dim),
	}
}

// Priority computes p = u^(λ1/exp(−λ2·f)) for a freshly drawn u.
func (a *AnomalyAwareReservoir) Priority(f float64) float64 {
	u := a.uMin + (a.uMax-a.uMin)*a.rng.Float64()
	if math.IsNaN(f) {
		f = 1
	}
	exponent := a.l1 / math.Exp(-a.l2*f)
	return math.Pow(u, exponent)
}

// Observe implements TrainingSet.
func (a *AnomalyAwareReservoir) Observe(x []float64, f float64) Update {
	if len(x) != a.dim {
		panic("reservoir: dimension mismatch")
	}
	p := a.Priority(f)
	if a.h.Len() < a.m {
		v := make([]float64, a.dim)
		copy(v, x)
		heap.Push(&a.h, priorityEntry{p: p, vec: v})
		return Update{Kind: Added}
	}
	// Replace the global minimum-priority vector if it is strictly less
	// prioritized than the newcomer (the paper's c(ps, p_t) helper resolves
	// to the argmin of priorities below p_t).
	if a.h.entries[0].p < p {
		victim := &a.h.entries[0]
		copy(a.evict, victim.vec)
		copy(victim.vec, x)
		victim.p = p
		heap.Fix(&a.h, 0)
		return Update{Kind: Replaced, Evicted: a.evict}
	}
	return Update{Kind: Skipped}
}

// Items implements TrainingSet; order is heap order, not arrival order.
func (a *AnomalyAwareReservoir) Items() [][]float64 {
	out := make([][]float64, a.h.Len())
	for i := range a.h.entries {
		out[i] = a.h.entries[i].vec
	}
	return out
}

// Len implements TrainingSet.
func (a *AnomalyAwareReservoir) Len() int { return a.h.Len() }

// Cap implements TrainingSet.
func (a *AnomalyAwareReservoir) Cap() int { return a.m }

// Release frees the heap entries and eviction scratch for warm-tier
// paging; UnmarshalBinary rebuilds both on restore.
func (a *AnomalyAwareReservoir) Release() {
	a.h.entries = nil
	a.evict = nil
}

// MinPriority returns the lowest priority currently held, or +Inf when the
// reservoir is empty. Exposed for tests and ablations.
func (a *AnomalyAwareReservoir) MinPriority() float64 {
	if a.h.Len() == 0 {
		return math.Inf(1)
	}
	return a.h.entries[0].p
}

type priorityEntry struct {
	p   float64
	vec []float64
}

type priorityHeap struct {
	entries []priorityEntry
}

func (h *priorityHeap) Len() int           { return len(h.entries) }
func (h *priorityHeap) Less(i, j int) bool { return h.entries[i].p < h.entries[j].p }
func (h *priorityHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *priorityHeap) Push(x interface{}) { h.entries = append(h.entries, x.(priorityEntry)) }
func (h *priorityHeap) Pop() interface{} {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}
