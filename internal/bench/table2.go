package bench

import (
	"fmt"
	"io"
	"math/rand"

	"streamad/internal/drift"
	"streamad/internal/randstate"
	"streamad/internal/reservoir"
)

// OpRow is one Table II comparison: measured per-step operation counts of
// a Task 2 method next to the paper's closed-form formula.
type OpRow struct {
	Method   string
	Channels int // N
	Window   int // w
	Train    int // m
	Measured drift.OpCounts
	Formula  drift.OpCounts
	Steps    int
}

// OpCountExperiment drives both Task 2 detectors over a synthetic sliding
// window stream and reports the average per-step operation counts,
// reproducing Table II's comparison for the given (N, m, w).
func OpCountExperiment(channels, repWin, trainSize, steps int, seed int64) []OpRow {
	rng := rand.New(randstate.NewCountedSource(seed))
	dim := channels * repWin

	mkStream := func() [][]float64 {
		out := make([][]float64, steps+trainSize)
		for i := range out {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			out[i] = x
		}
		return out
	}

	run := func(det drift.Detector) drift.OpCounts {
		set := reservoir.NewSlidingWindow(trainSize, dim)
		stream := mkStream()
		// Fill and snapshot the reference.
		for i := 0; i < trainSize; i++ {
			set.Observe(stream[i], 0)
		}
		det.Reset(set)
		before := det.Ops()
		for i := trainSize; i < len(stream); i++ {
			u := set.Observe(stream[i], 0)
			if det.Observe(u, stream[i], set) {
				det.Reset(set)
			}
		}
		after := det.Ops()
		return drift.OpCounts{
			Adds:  after.Adds - before.Adds,
			Mults: after.Mults - before.Mults,
			Cmps:  after.Cmps - before.Cmps,
		}
	}

	perStep := func(total drift.OpCounts) drift.OpCounts {
		return drift.OpCounts{
			Adds:  total.Adds / int64(steps),
			Mults: total.Mults / int64(steps),
			Cmps:  total.Cmps / int64(steps),
		}
	}

	mu := drift.NewMuSigmaChange(dim)
	ks := drift.NewKSWIN(channels, repWin, drift.DefaultAlpha)
	return []OpRow{
		{
			Method: "μ/σ-Change", Channels: channels, Window: repWin, Train: trainSize,
			Measured: perStep(run(mu)),
			Formula:  drift.PaperFormulaMuSigma(channels, repWin),
			Steps:    steps,
		},
		{
			Method: "KSWIN", Channels: channels, Window: repWin, Train: trainSize,
			Measured: perStep(run(ks)),
			Formula:  drift.PaperFormulaKSWIN(channels, repWin, trainSize),
			Steps:    steps,
		},
	}
}

// WriteTable2 prints the operation-count rows.
func WriteTable2(w io.Writer, rows []OpRow) {
	fmt.Fprintf(w, "%-11s %3s %4s %4s  %12s %12s %14s   %12s %12s %14s\n",
		"Method", "N", "w", "m", "adds/step", "mults/step", "cmps/step",
		"adds(paper)", "mults(paper)", "cmps(paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %3d %4d %4d  %12d %12d %14d   %12d %12d %14d\n",
			r.Method, r.Channels, r.Window, r.Train,
			r.Measured.Adds, r.Measured.Mults, r.Measured.Cmps,
			r.Formula.Adds, r.Formula.Mults, r.Formula.Cmps)
	}
}
