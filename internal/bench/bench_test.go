package bench

import (
	"bytes"
	"strings"
	"testing"

	"streamad"
	"streamad/internal/dataset"
)

// tinyProfile keeps harness tests fast.
func tinyProfile() Profile {
	return Profile{
		Data:          dataset.Config{Length: 700, SeriesCount: 1, Seed: 3},
		Window:        8,
		TrainSize:     40,
		WarmupVectors: 80,
		ScoreWindow:   40,
		ShortWindow:   4,
		KSCheckEvery:  20,
		CalibFrac:     0.3,
		CalibQ:        0.99,
		Seed:          1,
	}
}

func TestRunSeries(t *testing.T) {
	p := tinyProfile()
	corpus := dataset.Daphnet(p.Data)
	sum, err := RunSeries(
		streamad.Combo{Model: streamad.ModelARIMA, Task1: streamad.TaskSlidingWindow, Task2: streamad.TaskMuSigma},
		streamad.ScoreAverage, p, corpus.Series[0])
	if err != nil {
		t.Fatal(err)
	}
	if sum.Precision < 0 || sum.Precision > 1 || sum.Recall < 0 || sum.Recall > 1 {
		t.Fatalf("summary out of range: %+v", sum)
	}
}

func TestRunGridSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	p := tinyProfile()
	corpora := []*dataset.Corpus{dataset.Daphnet(p.Data)}
	var progress bytes.Buffer
	res, err := RunGrid(p, corpora, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 26 {
		t.Fatalf("rows = %d, want 26 (one per Table I combo)", len(res.Rows))
	}
	if len(res.ScoreRows) != 3 {
		t.Fatalf("score rows = %d, want 3 (Raw/Avg/AL)", len(res.ScoreRows))
	}
	if !strings.Contains(progress.String(), "done") {
		t.Fatal("progress output missing")
	}
	var table bytes.Buffer
	res.WriteTable(&table)
	out := table.String()
	for _, want := range []string{"Online ARIMA", "PCB-iForest", "USAD", "N-BEATS", "daphnet", "Raw", "Avg", "AL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestOpCountExperiment(t *testing.T) {
	rows := OpCountExperiment(3, 10, 30, 20, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	mu, ks := rows[0], rows[1]
	if mu.Method != "μ/σ-Change" || ks.Method != "KSWIN" {
		t.Fatalf("methods = %q, %q", mu.Method, ks.Method)
	}
	if mu.Measured.Adds == 0 || ks.Measured.Adds == 0 {
		t.Fatal("measured ops missing")
	}
	// The Table II shape: KSWIN dominates μ/σ in every column.
	if ks.Measured.Adds <= mu.Measured.Adds || ks.Measured.Cmps <= mu.Measured.Cmps {
		t.Fatalf("KSWIN (%+v) must dominate μ/σ (%+v)", ks.Measured, mu.Measured)
	}
	if ks.Formula.Adds <= mu.Formula.Adds {
		t.Fatal("paper formulas must show the same ordering")
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	if !strings.Contains(buf.String(), "KSWIN") {
		t.Fatal("WriteTable2 output incomplete")
	}
}

func TestFinetuneExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 run in -short mode")
	}
	p := tinyProfile()
	p.Data.Length = 2000
	res, err := FinetuneExperimentAnySeed(
		Fig1Config{Profile: p, AnomalyStart: 30, AnomalyEnd: 45, Magnitude: 4}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no trace points")
	}
	// The paper's qualitative finding: both models see the anomaly, and the
	// fine-tuned one has the larger baseline-to-peak gap.
	if res.PeakFinetuned <= res.BaseFinetuned {
		t.Fatalf("fine-tuned model shows no anomaly response: %+v", res)
	}
	if res.GapFinetuned <= 0 {
		t.Fatalf("gap must be positive: %+v", res)
	}
	var buf bytes.Buffer
	WriteFig1(&buf, res)
	if !strings.Contains(buf.String(), "finetuned:") || !strings.Contains(buf.String(), "stale:") {
		t.Fatal("WriteFig1 output incomplete")
	}
}

func TestProfiles(t *testing.T) {
	f, p := Fast(), Paper()
	if f.Window >= p.Window || f.TrainSize >= p.TrainSize {
		t.Fatal("fast profile must be smaller than paper profile")
	}
	if p.KSCheckEvery != 1 {
		t.Fatal("paper profile must test KSWIN at every step")
	}
}
