// Package bench is the experiment harness of the reproduction: it runs
// the Table III algorithm × corpus grid, the Table II operation-count
// comparison and the Figure 1 fine-tuning experiment, and formats their
// outputs the way the paper reports them.
package bench

import (
	"fmt"
	"io"
	"sort"

	"streamad"
	"streamad/internal/dataset"
	"streamad/internal/metrics"
)

// Profile bundles the run-scale parameters of an experiment sweep.
type Profile struct {
	// Data is the corpus scale.
	Data dataset.Config
	// Window is the data representation length w.
	Window int
	// TrainSize is the training-set capacity m.
	TrainSize int
	// WarmupVectors is the initial-training collection length.
	WarmupVectors int
	// ScoreWindow / ShortWindow parameterize the anomaly scorers.
	ScoreWindow int
	ShortWindow int
	// KSCheckEvery throttles KSWIN testing (1 = paper-faithful).
	KSCheckEvery int
	// CalibFrac / CalibQ parameterize the evaluation threshold calibration.
	CalibFrac float64
	CalibQ    float64
	// Seed drives all detector randomness.
	Seed int64
}

// Fast is the default laptop-scale profile: small windows, short series,
// KSWIN throttled. Suitable for tests and quick benchmark runs.
func Fast() Profile {
	return Profile{
		Data:          dataset.Config{Length: 2000, SeriesCount: 1, Seed: 11},
		Window:        16,
		TrainSize:     100,
		WarmupVectors: 300,
		ScoreWindow:   100,
		ShortWindow:   6,
		KSCheckEvery:  25,
		CalibFrac:     0.3,
		CalibQ:        0.99,
		Seed:          1,
	}
}

// Paper approximates the paper's scale: w=100, warmup 5000 minus window,
// per-step KSWIN testing. Expect long runtimes.
func Paper() Profile {
	return Profile{
		Data:          dataset.PaperConfig(11),
		Window:        100,
		TrainSize:     500,
		WarmupVectors: 4900,
		ScoreWindow:   500,
		ShortWindow:   25,
		KSCheckEvery:  1,
		CalibFrac:     0.25,
		CalibQ:        0.995,
		Seed:          1,
	}
}

// Row is one line of the Table III reproduction: a combo's metrics on one
// corpus, averaged over the two anomaly scores (average / likelihood) and
// over all series of the corpus, exactly as the paper reports.
type Row struct {
	Combo  streamad.Combo
	Corpus string
	metrics.Summary
}

// ScoreRow is one of Table III's last rows: metrics averaged over all
// algorithms for one anomaly-score kind.
type ScoreRow struct {
	Score  streamad.ScoreKind
	Corpus string
	metrics.Summary
}

// RunSeries evaluates one algorithm/score configuration on one series and
// returns the metric summary.
func RunSeries(combo streamad.Combo, sk streamad.ScoreKind, p Profile, s *dataset.Series) (metrics.Summary, error) {
	det, err := streamad.New(streamad.Config{
		Model:         combo.Model,
		Task1:         combo.Task1,
		Task2:         combo.Task2,
		Score:         sk,
		Channels:      s.Channels(),
		Window:        p.Window,
		TrainSize:     p.TrainSize,
		WarmupVectors: p.WarmupVectors,
		ScoreWindow:   p.ScoreWindow,
		ShortWindow:   p.ShortWindow,
		KSCheckEvery:  p.KSCheckEvery,
		Seed:          p.Seed,
	})
	if err != nil {
		return metrics.Summary{}, err
	}
	scores, valid := det.Run(s.Data)
	th := metrics.QuantileThreshold(scores, valid, p.CalibQ)
	return metrics.Evaluate(scores, s.Labels, valid, th), nil
}

// averageSummaries returns the element-wise mean of the summaries.
func averageSummaries(sums []metrics.Summary) metrics.Summary {
	if len(sums) == 0 {
		return metrics.Summary{}
	}
	var out metrics.Summary
	for _, s := range sums {
		out.Precision += s.Precision
		out.Recall += s.Recall
		out.AUC += s.AUC
		out.VUS += s.VUS
		out.NAB += s.NAB
	}
	n := float64(len(sums))
	out.Precision /= n
	out.Recall /= n
	out.AUC /= n
	out.VUS /= n
	out.NAB /= n
	return out
}

// GridResult is the complete Table III reproduction.
type GridResult struct {
	Rows      []Row
	ScoreRows []ScoreRow
}

// RunGrid runs every Table I combination over the given corpora with both
// anomaly scores and also produces the per-score-kind aggregate rows
// (including the Raw baseline), mirroring Table III. Progress lines go to
// progress when non-nil.
func RunGrid(p Profile, corpora []*dataset.Corpus, progress io.Writer) (*GridResult, error) {
	combos := streamad.Combos()
	res := &GridResult{}
	scoreAgg := map[string][]metrics.Summary{} // "kind|corpus" → summaries
	for _, corpus := range corpora {
		for _, combo := range combos {
			var perScore []metrics.Summary
			for _, sk := range []streamad.ScoreKind{streamad.ScoreAverage, streamad.ScoreLikelihood, streamad.ScoreRaw} {
				var sums []metrics.Summary
				for _, s := range corpus.Series {
					sum, err := RunSeries(combo, sk, p, s)
					if err != nil {
						return nil, fmt.Errorf("bench: %v on %s: %w", combo, s.Name, err)
					}
					sums = append(sums, sum)
				}
				avg := averageSummaries(sums)
				key := fmt.Sprintf("%s|%s", sk, corpus.Name)
				scoreAgg[key] = append(scoreAgg[key], avg)
				// The per-combo Table III row averages the two windowed
				// scores only (the paper's "average / anomaly likelihood").
				if sk != streamad.ScoreRaw {
					perScore = append(perScore, avg)
				}
			}
			row := Row{Combo: combo, Corpus: corpus.Name, Summary: averageSummaries(perScore)}
			res.Rows = append(res.Rows, row)
			if progress != nil {
				fmt.Fprintf(progress, "done %-28s %-9s prec=%.2f rec=%.2f auc=%.2f vus=%.2f nab=%.2f\n",
					combo, corpus.Name, row.Precision, row.Recall, row.AUC, row.VUS, row.NAB)
			}
		}
	}
	var keys []string
	for k := range scoreAgg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var kind streamad.ScoreKind
		var corpusName string
		for _, sk := range []streamad.ScoreKind{streamad.ScoreAverage, streamad.ScoreLikelihood, streamad.ScoreRaw} {
			prefix := sk.String() + "|"
			if len(k) > len(prefix) && k[:len(prefix)] == prefix {
				kind = sk
				corpusName = k[len(prefix):]
			}
		}
		res.ScoreRows = append(res.ScoreRows, ScoreRow{
			Score:   kind,
			Corpus:  corpusName,
			Summary: averageSummaries(scoreAgg[k]),
		})
	}
	return res, nil
}

// WriteTable formats the grid result the way Table III lays rows out.
func (g *GridResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-5s %-5s %-9s  %6s %6s %6s %6s %9s\n",
		"Model", "T1", "T2", "Corpus", "Prec", "Rec", "AUC", "VUS", "NAB")
	for _, r := range g.Rows {
		fmt.Fprintf(w, "%-14s %-5s %-5s %-9s  %6.2f %6.2f %6.2f %6.2f %9.2f\n",
			r.Combo.Model, r.Combo.Task1, r.Combo.Task2, r.Corpus,
			r.Precision, r.Recall, r.AUC, r.VUS, r.NAB)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-26s %-9s  %6s %6s %6s %6s %9s\n", "Anomaly score (all algos)", "Corpus", "Prec", "Rec", "AUC", "VUS", "NAB")
	for _, r := range g.ScoreRows {
		fmt.Fprintf(w, "%-26s %-9s  %6.2f %6.2f %6.2f %6.2f %9.2f\n",
			r.Score, r.Corpus, r.Precision, r.Recall, r.AUC, r.VUS, r.NAB)
	}
}
