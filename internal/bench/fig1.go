package bench

import (
	"fmt"
	"io"
	"math"

	"streamad/internal/core"
	"streamad/internal/dataset"
	"streamad/internal/drift"
	"streamad/internal/reservoir"
	"streamad/internal/score"
	"streamad/internal/usad"
)

// Fig1Point is one time step of the Figure 1 fine-tuning experiment,
// indexed relative to the fine-tuning session (t = 0).
type Fig1Point struct {
	T           int
	Value       float64 // channel-0 stream value (top plot)
	Anomalous   bool    // inside the artificial anomaly
	NCFinetuned float64 // nonconformity of the fine-tuned model
	NCStale     float64 // nonconformity of the pre-drift (stale) model
}

// Fig1Result is the Figure 1 reproduction: the traces and the error-bar
// summary — for each model, the difference between its pre-anomaly mean
// nonconformity and its maximum nonconformity during the anomaly.
type Fig1Result struct {
	Points []Fig1Point
	// Baseline mean nonconformity before the anomaly.
	BaseFinetuned, BaseStale float64
	// Peak nonconformity observed for the anomaly (the anomaly stays in
	// the representation window for w steps after it ends).
	PeakFinetuned, PeakStale float64
	// Gap = Peak − Base; the paper's finding is GapFinetuned > GapStale.
	GapFinetuned, GapStale float64
	// DriftStep is the absolute stream index of the fine-tuning session.
	DriftStep int
}

// Fig1Config parameterizes the experiment; zero values take the paper's
// shape at the profile's scale.
type Fig1Config struct {
	Profile Profile
	// AnomalyStart/AnomalyEnd delimit the artificial anomaly relative to
	// the fine-tuning session (paper: 90–110).
	AnomalyStart, AnomalyEnd int
	// Magnitude scales the injected offset in multiples of the stream's
	// standard deviation (default 3).
	Magnitude float64
}

// FinetuneExperiment reproduces Figure 1: a USAD model with sliding window
// and μ/σ-Change runs on a Daphnet-like stream; at the first drift-induced
// fine-tuning session after warmup, the pre-fine-tune model is frozen; an
// artificial anomaly is injected shortly after; both models score the
// stream and the fine-tuned model should show the clearly larger gap
// between its baseline and the anomaly peak.
func FinetuneExperiment(cfg Fig1Config) (*Fig1Result, error) {
	p := cfg.Profile
	if cfg.AnomalyStart == 0 {
		cfg.AnomalyStart = 90
	}
	if cfg.AnomalyEnd == 0 {
		cfg.AnomalyEnd = 110
	}
	if cfg.Magnitude == 0 {
		cfg.Magnitude = 3
	}
	data := dataset.Daphnet(dataset.Config{
		Length:      p.Data.Length,
		SeriesCount: 1,
		Seed:        p.Data.Seed,
	})
	series := data.Series[0]
	n := series.Channels()
	dim := p.Window * n

	model, err := usad.New(usad.Config{Dim: dim, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	rep := core.NewRepresenter(p.Window, n)
	set := reservoir.NewSlidingWindow(p.TrainSize, dim)
	det := drift.NewMuSigmaChange(dim)
	measure := score.Cosine{}

	// Phase 1: warmup, then stream until concept drift. The pre-drift
	// model is frozen at the FIRST trigger (the paper's "previous model,
	// which is not finetuned"); the live model keeps fine-tuning on every
	// subsequent trigger until the detector goes quiet for quietSteps, so
	// it is fully adapted to the new regime when the anomaly arrives.
	const quietSteps = 60
	warmupLeft := p.WarmupVectors
	warmed := false
	driftAt := -1
	quiet := 0
	var stale *usad.Model
	t := 0
	for ; t < series.Len(); t++ {
		x, ok := rep.Push(series.Data[t])
		if !ok {
			continue
		}
		if !warmed {
			set.Observe(x, 0)
			if warmupLeft > 0 {
				warmupLeft--
			}
			if warmupLeft == 0 {
				items := set.Items()
				for e := 0; e < 10; e++ {
					model.Fit(items)
				}
				det.Reset(set)
				warmed = true
			}
			continue
		}
		target, pred := model.Predict(x)
		a := measure.Measure(target, pred)
		u := set.Observe(x, a)
		if det.Observe(u, x, set) {
			if stale == nil {
				stale = model.Clone()
			}
			model.Fit(set.Items())
			det.Reset(set)
			driftAt = t
			quiet = 0
			continue
		}
		if stale != nil {
			quiet++
			if quiet >= quietSteps {
				t++
				break
			}
		}
	}
	if driftAt < 0 {
		return nil, fmt.Errorf("bench: no concept drift detected in %d steps; increase drift strength or stream length", t)
	}

	// Phase 2: continue for AnomalyEnd + w steps past the fine-tune,
	// injecting the artificial anomaly into [AnomalyStart, AnomalyEnd].
	std := seriesStd(series, driftAt)
	res := &Fig1Result{DriftStep: driftAt}
	horizon := cfg.AnomalyEnd + p.Window + 10
	for rel := 0; rel <= horizon && t < series.Len(); rel, t = rel+1, t+1 {
		s := make([]float64, n)
		copy(s, series.Data[t])
		anomalous := rel >= cfg.AnomalyStart && rel <= cfg.AnomalyEnd
		if anomalous {
			for c := range s {
				s[c] += cfg.Magnitude * std
			}
		}
		x, ok := rep.Push(s)
		if !ok {
			continue
		}
		tFine, pFine := model.Predict(x)
		tStale, pStale := stale.Predict(x)
		res.Points = append(res.Points, Fig1Point{
			T:           rel,
			Value:       s[0],
			Anomalous:   anomalous,
			NCFinetuned: measure.Measure(tFine, pFine),
			NCStale:     measure.Measure(tStale, pStale),
		})
	}

	// Error-bar summary: baseline over the pre-anomaly region, peak over
	// the anomaly's presence in the representation window.
	var nBase int
	for _, pt := range res.Points {
		if pt.T < cfg.AnomalyStart {
			res.BaseFinetuned += pt.NCFinetuned
			res.BaseStale += pt.NCStale
			nBase++
		} else {
			if pt.NCFinetuned > res.PeakFinetuned {
				res.PeakFinetuned = pt.NCFinetuned
			}
			if pt.NCStale > res.PeakStale {
				res.PeakStale = pt.NCStale
			}
		}
	}
	if nBase > 0 {
		res.BaseFinetuned /= float64(nBase)
		res.BaseStale /= float64(nBase)
	}
	res.GapFinetuned = res.PeakFinetuned - res.BaseFinetuned
	res.GapStale = res.PeakStale - res.BaseStale
	return res, nil
}

// Fig1Profile is the configuration the Figure 1 experiment is known to
// reproduce the paper's finding at: a Daphnet-scale stream with enough
// training data that a one-epoch fine-tune measurably adapts the model.
func Fig1Profile() Profile {
	p := Fast()
	p.Data = dataset.Config{Length: 2400, SeriesCount: 1, Seed: 11}
	p.Window = 24
	p.TrainSize = 150
	p.WarmupVectors = 400
	return p
}

// FinetuneExperimentAnySeed runs FinetuneExperiment over corpus seeds
// seedLo..seedHi until one stream drifts hard enough to trigger the μ/σ
// strategy, returning that run. Whether a given synthetic stream crosses
// the drift threshold depends on the drawn drift magnitudes, so a scan
// makes the experiment robust to the seed choice.
func FinetuneExperimentAnySeed(cfg Fig1Config, seedLo, seedHi int64) (*Fig1Result, error) {
	var lastErr error
	for seed := seedLo; seed <= seedHi; seed++ {
		cfg.Profile.Data.Seed = seed
		res, err := FinetuneExperiment(cfg)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// seriesStd estimates the per-element standard deviation of the stream
// over the window preceding upTo.
func seriesStd(s *dataset.Series, upTo int) float64 {
	lo := upTo - 500
	if lo < 0 {
		lo = 0
	}
	var sum, sumSq float64
	var cnt int
	for t := lo; t < upTo; t++ {
		for _, v := range s.Data[t] {
			sum += v
			sumSq += v * v
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	mean := sum / float64(cnt)
	variance := sumSq/float64(cnt) - mean*mean
	if variance <= 0 {
		return 1
	}
	return math.Sqrt(variance)
}

// WriteFig1 prints the experiment's series and summary in a plottable
// tab-separated form.
func WriteFig1(w io.Writer, r *Fig1Result) {
	fmt.Fprintf(w, "# fine-tuning session at stream step %d\n", r.DriftStep)
	fmt.Fprintln(w, "t\tvalue\tanomalous\tnc_finetuned\tnc_stale")
	for _, pt := range r.Points {
		an := 0
		if pt.Anomalous {
			an = 1
		}
		fmt.Fprintf(w, "%d\t%.4f\t%d\t%.5f\t%.5f\n", pt.T, pt.Value, an, pt.NCFinetuned, pt.NCStale)
	}
	fmt.Fprintf(w, "\n# error bars (peak − pre-anomaly mean)\n")
	fmt.Fprintf(w, "finetuned: base=%.5f peak=%.5f gap=%.5f\n", r.BaseFinetuned, r.PeakFinetuned, r.GapFinetuned)
	fmt.Fprintf(w, "stale:     base=%.5f peak=%.5f gap=%.5f\n", r.BaseStale, r.PeakStale, r.GapStale)
}
