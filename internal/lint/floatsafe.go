package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSafe guards the places where streaming float math turns into
// NaN/±Inf and silently poisons downstream state (scores, thresholds,
// JSON payloads). Three rules:
//
//  1. Division by a possibly-zero length: x / float64(len(s)) — the
//     mean-of-empty-window classic — is flagged unless the function
//     also compares some len()/cap() (or the traced count variable)
//     against a bound, i.e. visibly handles the empty case.
//
//  2. math.Sqrt / Log / Log2 / Log10 of a difference: an operand that
//     is (or is solely assigned from) a subtraction can go negative
//     through floating-point cancellation (the textbook case is
//     variance = E[x²] − E[x]²). Flagged unless the operand variable is
//     visibly clamped (compared against a bound or passed through
//     math.Max/math.Abs).
//
//  3. Floats marshalled to JSON: encoding/json renders NaN/±Inf as an
//     error, aborting the whole response. Any json.Marshal /
//     Encoder.Encode of a local struct type carrying float fields is
//     flagged unless the type's declaration is marked
//     //streamad:finite-json — the author's assertion that every float
//     field is routed through a finite guard (server.finiteOrZero
//     style) when the struct is filled.
var FloatSafe = &Analyzer{
	Name: "floatsafe",
	Doc:  "flags unguarded division by length, Sqrt/Log of differences, and unguarded floats marshalled to JSON",
	Run:  runFloatSafe,
}

const finiteJSONMarker = "streamad:finite-json"

func runFloatSafe(p *Pass) error {
	markers := collectFiniteJSONMarkers(p)
	forEachFuncDecl(p.Files, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		checkFloatFunc(p, fd)
	})
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkJSONCall(p, call, markers)
			}
			return true
		})
	}
	return nil
}

// ---- rules 1 & 2: intra-function dataflow heuristics ----

type funcFacts struct {
	// assigns maps a variable to every RHS expression assigned to it.
	assigns map[*types.Var][]ast.Expr
	// compared holds variables that appear inside any comparison or
	// math.Max/math.Abs call — the "visibly guarded" evidence.
	compared map[*types.Var]bool
	// lenCompared is true when any len()/cap() call appears inside a
	// comparison in the function.
	lenCompared bool
}

func gatherFuncFacts(p *Pass, body *ast.BlockStmt) *funcFacts {
	ff := &funcFacts{assigns: make(map[*types.Var][]ast.Expr), compared: make(map[*types.Var]bool)}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		var obj types.Object
		if def := p.TypesInfo.Defs[id]; def != nil {
			obj = def
		} else {
			obj = p.TypesInfo.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			ff.assigns[v] = append(ff.assigns[v], rhs)
		}
	}
	markCompared := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := p.TypesInfo.Uses[n].(*types.Var); ok {
					ff.compared[v] = true
				}
			case *ast.CallExpr:
				if isBuiltin(p.TypesInfo, n, "len") || isBuiltin(p.TypesInfo, n, "cap") {
					ff.lenCompared = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				markCompared(n.X)
				markCompared(n.Y)
			}
		case *ast.CallExpr:
			if fn := pkgFunc(p.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
				if fn.Name() == "Max" || fn.Name() == "Abs" {
					for _, a := range n.Args {
						markCompared(a)
					}
				}
			}
		}
		return true
	})
	return ff
}

func checkFloatFunc(p *Pass, fd *ast.FuncDecl) {
	ff := gatherFuncFacts(p, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.QUO {
				checkLenDivision(p, ff, n)
			}
		case *ast.CallExpr:
			checkSqrtLog(p, ff, n)
		}
		return true
	})
}

// lenDerived reports whether e is float64(len(..))/float64(cap(..)) or
// an identifier assigned (only) from such expressions or from bare
// len()/cap().
func lenDerived(p *Pass, ff *funcFacts, e ast.Expr) (guardedVar *types.Var, derived bool) {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if _, isConv := isConversion(p.TypesInfo, call); isConv && len(call.Args) == 1 {
			inner := unparen(call.Args[0])
			if ic, ok := inner.(*ast.CallExpr); ok &&
				(isBuiltin(p.TypesInfo, ic, "len") || isBuiltin(p.TypesInfo, ic, "cap")) {
				return nil, true
			}
			return lenDerived(p, ff, call.Args[0])
		}
		if isBuiltin(p.TypesInfo, call, "len") || isBuiltin(p.TypesInfo, call, "cap") {
			return nil, true
		}
		return nil, false
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil, false
	}
	rhss := ff.assigns[v]
	if len(rhss) == 0 {
		return nil, false
	}
	for _, rhs := range rhss {
		if _, d := lenDerived(p, ff, rhs); !d {
			return nil, false
		}
	}
	return v, true
}

func checkLenDivision(p *Pass, ff *funcFacts, div *ast.BinaryExpr) {
	t := p.TypesInfo.Types[div].Type
	if t == nil || !isFloat(t) {
		return
	}
	v, derived := lenDerived(p, ff, div.Y)
	if !derived {
		return
	}
	if ff.lenCompared || (v != nil && ff.compared[v]) {
		return // the function visibly handles the empty case
	}
	p.Reportf(div.Y.Pos(), "division by a length that may be zero (empty input yields NaN/Inf); guard the empty case")
}

func checkSqrtLog(p *Pass, ff *funcFacts, call *ast.CallExpr) {
	fn := pkgFunc(p.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" || len(call.Args) != 1 {
		return
	}
	switch fn.Name() {
	case "Sqrt", "Log", "Log2", "Log10":
	default:
		return
	}
	arg := unparen(call.Args[0])
	if sub, ok := arg.(*ast.BinaryExpr); ok && sub.Op == token.SUB {
		p.Reportf(arg.Pos(), "math.%s of a difference can go negative through cancellation; clamp the operand first", fn.Name())
		return
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return
	}
	v, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	rhss := ff.assigns[v]
	if len(rhss) == 0 || ff.compared[v] {
		return
	}
	subtraction := false
	for _, rhs := range rhss {
		if b, ok := unparen(rhs).(*ast.BinaryExpr); ok && b.Op == token.SUB {
			subtraction = true
		}
	}
	if subtraction {
		p.Reportf(arg.Pos(), "math.%s of %s, which is assigned from a difference and never clamped; cancellation can make it negative", fn.Name(), id.Name)
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ---- rule 3: JSON finite-guard contract ----

// collectFiniteJSONMarkers returns the named types declared in this
// package whose declarations carry //streamad:finite-json.
func collectFiniteJSONMarkers(p *Pass) map[*types.TypeName]bool {
	marked := make(map[*types.TypeName]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(ts.Doc, finiteJSONMarker) || hasMarker(gd.Doc, finiteJSONMarker) || hasMarker(ts.Comment, finiteJSONMarker) {
					if tn, ok := p.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						marked[tn] = true
					}
				}
			}
		}
	}
	return marked
}

func checkJSONCall(p *Pass, call *ast.CallExpr, marked map[*types.TypeName]bool) {
	var arg ast.Expr
	switch {
	case isPkgCall(p.TypesInfo, call, "encoding/json", "Marshal") && len(call.Args) == 1:
		arg = call.Args[0]
	case isPkgCall(p.TypesInfo, call, "encoding/json", "MarshalIndent") && len(call.Args) == 3:
		arg = call.Args[0]
	default:
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Encode" || len(call.Args) != 1 {
			return
		}
		fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
			return
		}
		arg = call.Args[0]
	}
	t := p.TypesInfo.Types[arg].Type
	if t == nil {
		return
	}
	tn, hasFloats := floatStruct(t, p.Pkg, make(map[types.Type]bool))
	if !hasFloats {
		return
	}
	if tn == nil {
		p.Reportf(arg.Pos(), "anonymous struct with float fields marshalled to JSON; name it and mark the declaration //%s after guarding its floats", finiteJSONMarker)
		return
	}
	if !marked[tn] {
		p.Reportf(arg.Pos(), "%s carries float fields into JSON without the finite-guard contract; route them through a finiteOrZero-style helper and mark the type //%s", tn.Name(), finiteJSONMarker)
	}
}

// floatStruct reports whether t (after stripping pointers, slices,
// arrays and map values) is a struct with JSON-visible float fields,
// returning its local TypeName when it is a named type declared in pkg
// (nil for anonymous structs or foreign types — foreign types are
// skipped, their own package is responsible for them).
func floatStruct(t types.Type, pkg *types.Package, seen map[types.Type]bool) (*types.TypeName, bool) {
	if seen[t] {
		return nil, false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Pointer:
		return floatStruct(u.Elem(), pkg, seen)
	case *types.Slice:
		return floatStruct(u.Elem(), pkg, seen)
	case *types.Array:
		return floatStruct(u.Elem(), pkg, seen)
	case *types.Map:
		return floatStruct(u.Elem(), pkg, seen)
	case *types.Named:
		st, ok := u.Underlying().(*types.Struct)
		if !ok {
			return nil, false
		}
		if !structHasFloats(st, seen) {
			return nil, false
		}
		if u.Obj().Pkg() != pkg {
			return nil, false // foreign type: out of this package's contract
		}
		return u.Obj(), true
	case *types.Struct:
		return nil, structHasFloats(u, seen)
	}
	return nil, false
}

func structHasFloats(st *types.Struct, seen map[types.Type]bool) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if tagSkipsJSON(st.Tag(i)) {
			continue
		}
		if fieldTypeHasFloat(f.Type(), seen) {
			return true
		}
	}
	return false
}

func fieldTypeHasFloat(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Pointer:
		return fieldTypeHasFloat(u.Elem(), seen)
	case *types.Slice:
		return fieldTypeHasFloat(u.Elem(), seen)
	case *types.Array:
		return fieldTypeHasFloat(u.Elem(), seen)
	case *types.Map:
		return fieldTypeHasFloat(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() || tagSkipsJSON(u.Tag(i)) {
				continue
			}
			if fieldTypeHasFloat(f.Type(), seen) {
				return true
			}
		}
	}
	return false
}

// tagSkipsJSON reports whether a struct tag carries json:"-".
func tagSkipsJSON(tag string) bool {
	// Minimal struct-tag scan; reflect.StructTag.Get without reflect.
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		i = 0
		for i < len(tag) && tag[i] != ':' && tag[i] != ' ' {
			i++
		}
		if i == len(tag) || tag[i] != ':' || i+1 >= len(tag) || tag[i+1] != '"' {
			return false
		}
		name := tag[:i]
		rest := tag[i+2:]
		j := 0
		for j < len(rest) && rest[j] != '"' {
			if rest[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(rest) {
			return false
		}
		value := rest[:j]
		if name == "json" && (value == "-" || len(value) > 1 && value[:2] == "-,") {
			return true
		}
		tag = rest[j+1:]
	}
	return false
}
