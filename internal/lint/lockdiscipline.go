package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LockDiscipline machine-checks the repo's locking conventions:
//
//  1. Mixed atomic/plain access: a field passed to sync/atomic
//     Add/Load/Store/Swap/CompareAndSwap anywhere in the package must
//     be accessed that way everywhere — one plain read racing an
//     atomic writer is undefined behaviour the race detector only
//     catches when the schedule cooperates. (Typed atomic.Int64-style
//     fields are immune by construction and preferred.)
//
//  2. Membership mutexes: a sync.Mutex field marked
//     //streamad:membership guards registry membership (lookup,
//     create, evict) only. Calling into a detector pass — Step,
//     Observe, Predict, Fit, Score, NonconformityScore, Run — while
//     holding one stalls every stream hashing to the shard behind a
//     model's milliseconds-long pass.
//
//  3. Lock/Unlock pairing: a sync.Mutex/RWMutex Lock with no matching
//     Unlock (plain or deferred) in the same function escapes local
//     reasoning; helper pairs that intentionally split lock and unlock
//     must carry a suppression explaining who unlocks.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flags mixed atomic/plain field access, detector calls under membership mutexes, and unpaired Lock/Unlock",
	Run:  runLockDiscipline,
}

const membershipMarker = "streamad:membership"

// forbiddenUnderMembership are the detector/model pass entry points that
// must never run under a membership mutex.
var forbiddenUnderMembership = map[string]bool{
	"Step": true, "Observe": true, "Predict": true, "Fit": true,
	"Score": true, "NonconformityScore": true, "Run": true,
}

var atomicOps = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runLockDiscipline(p *Pass) error {
	checkMixedAtomics(p)
	members := collectMembershipMutexes(p)
	forEachFuncDecl(p.Files, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		checkMembershipRegions(p, fd, members)
		checkLockPairing(p, fd)
	})
	return nil
}

// ---- rule 1: mixed atomic/plain access ----

func checkMixedAtomics(p *Pass) {
	atomicVars := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.Ident]bool) // idents that ARE the atomic access
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(p.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicOps[fn.Name()] || len(call.Args) == 0 {
				return true
			}
			addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			var id *ast.Ident
			switch x := unparen(addr.X).(type) {
			case *ast.SelectorExpr:
				id = x.Sel
			case *ast.Ident:
				id = x
			default:
				return true
			}
			obj := p.TypesInfo.Uses[id]
			if obj == nil {
				obj = p.TypesInfo.Defs[id]
			}
			if v, ok := obj.(*types.Var); ok {
				atomicVars[v] = true
				sanctioned[id] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj := p.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if v, ok := obj.(*types.Var); ok && atomicVars[v] {
				p.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere; this plain access races with the atomic ops", id.Name)
			}
			return true
		})
	}
}

// ---- rule 2: membership mutexes ----

// collectMembershipMutexes finds sync.Mutex/RWMutex struct fields whose
// declaration carries //streamad:membership.
func collectMembershipMutexes(p *Pass) map[*types.Var]bool {
	marked := make(map[*types.Var]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasMarker(field.Doc, membershipMarker) && !hasMarker(field.Comment, membershipMarker) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok && isMutexType(v.Type()) {
						marked[v] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexCall matches expr of the form X.field.Method(...) where field is
// a mutex var; it returns the field var and method name.
func mutexCall(p *Pass, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, ""
	}
	var id *ast.Ident
	switch x := unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.Ident:
		id = x
	default:
		return nil, ""
	}
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !isMutexType(v.Type()) {
		return nil, ""
	}
	return v, sel.Sel.Name
}

func checkMembershipRegions(p *Pass, fd *ast.FuncDecl, members map[*types.Var]bool) {
	if len(members) == 0 {
		return
	}
	type event struct {
		pos  token.Pos
		v    *types.Var
		name string // Lock / Unlock
	}
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, name := mutexCall(p, call); v != nil && members[v] {
			switch name {
			case "Lock", "TryLock":
				events = append(events, event{call.Pos(), v, "Lock"})
			case "Unlock":
				events = append(events, event{call.Pos(), v, "Unlock"})
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	// Build held intervals per mutex var: Lock..next Unlock (or func end).
	// Deferred unlocks run at return, so a `defer mu.Unlock()` leaves the
	// region open to the end of the function — which is exactly the
	// conservative reading we want.
	type interval struct {
		v          *types.Var
		start, end token.Pos
	}
	var held []interval
	for i, e := range events {
		if e.name != "Lock" {
			continue
		}
		end := fd.Body.End()
		for j := i + 1; j < len(events); j++ {
			if events[j].v == e.v && events[j].name == "Unlock" {
				// A deferred unlock textually precedes later statements but
				// runs last; treat it as not closing the region.
				if !inDefer(fd.Body, events[j].pos) {
					end = events[j].pos
				}
				break
			}
		}
		held = append(held, interval{e.v, e.pos, end})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !forbiddenUnderMembership[sel.Sel.Name] {
			return true
		}
		if v, _ := mutexCall(p, call); v != nil {
			return true // the mutex ops themselves
		}
		for _, iv := range held {
			if call.Pos() > iv.start && call.Pos() < iv.end {
				p.Reportf(call.Pos(), "%s called while holding membership mutex %s; detector passes must not run under a shard lock", sel.Sel.Name, iv.v.Name())
				break
			}
		}
		return true
	})
}

// inDefer reports whether pos sits inside a defer statement of body.
func inDefer(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Pos() <= pos && pos < d.End() {
			found = true
		}
		return !found
	})
	return found
}

// ---- rule 3: Lock/Unlock pairing ----

func checkLockPairing(p *Pass, fd *ast.FuncDecl) {
	type side struct {
		lockPos   []token.Pos
		hasUnlock bool
	}
	// Key by (receiver text, R-ness) so s.mu and other.mu stay distinct.
	acquired := make(map[string]*side)
	order := []string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		v, name := mutexCall(p, call)
		if v == nil {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		key := exprText(p.Fset, sel.X)
		r := ""
		if name == "RLock" || name == "RUnlock" || name == "TryRLock" {
			r = "R"
		}
		key += "/" + r
		s := acquired[key]
		if s == nil {
			s = &side{}
			acquired[key] = s
			order = append(order, key)
		}
		switch name {
		case "Lock", "RLock":
			s.lockPos = append(s.lockPos, call.Pos())
		case "TryLock", "TryRLock":
			// Try forms are conditional; pairing is checked by rule's
			// unlock-presence only when a plain Lock also exists.
		case "Unlock", "RUnlock":
			s.hasUnlock = true
		}
		return true
	})
	for _, key := range order {
		s := acquired[key]
		if len(s.lockPos) > 0 && !s.hasUnlock {
			p.Reportf(s.lockPos[0], "mutex locked here but never unlocked in this function; unlock on every path (defer) or suppress with the owner of the unlock")
		}
	}
}

// exprText renders a (small) expression for use as a map key.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}
