package lint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a unit of per-object or per-package knowledge an analyzer
// computes in one package and consumes in another — the mechanism that
// lets hotalloc see through a cross-package call and metriclint compare
// label sets across emission sites in different packages. The design
// mirrors golang.org/x/tools/go/analysis facts: an analyzer declares
// its fact types up front (FactTypes), exports facts while analyzing a
// package, and imports facts attached to imported objects or packages.
//
// Facts must be gob-serializable pointers-to-struct with exported
// fields: in `go vet -vettool` mode each compilation unit runs in its
// own process, and facts cross the process boundary through the vetx
// files the go command threads between units.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// factStore holds every fact exported while analyzing a module (or,
// in vet mode, this unit plus everything inherited from dependency
// vetx files). Object facts are keyed by (analyzer, package path,
// object path, fact type); package facts use an empty object path.
type factStore struct {
	facts map[factKey]Fact
}

type factKey struct {
	analyzer string
	pkg      string
	obj      string // objectPath; "" for a package-level fact
	typ      reflect.Type
}

func newFactStore() *factStore {
	return &factStore{facts: make(map[factKey]Fact)}
}

// objectPath names an object within its package stably across
// processes: "F" for a package-level function or type, "T.M" for a
// method (receiver pointer-ness is erased — a method set has unique
// names either way).
func objectPath(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := namedRecvType(sig.Recv().Type()); named != nil {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

// namedRecvType strips one level of pointer and returns the named
// receiver type, or nil for anonymous receivers.
func namedRecvType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func (s *factStore) key(analyzer string, pkgPath, objPath string, f Fact) factKey {
	return factKey{analyzer: analyzer, pkg: pkgPath, obj: objPath, typ: reflect.TypeOf(f)}
}

func (s *factStore) export(analyzer, pkgPath, objPath string, f Fact) {
	s.facts[s.key(analyzer, pkgPath, objPath, f)] = f
}

// lookup copies the stored fact into dst (a pointer to the same
// concrete type) and reports whether one was found.
func (s *factStore) lookup(analyzer, pkgPath, objPath string, dst Fact) bool {
	f, ok := s.facts[s.key(analyzer, pkgPath, objPath, dst)]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// ---- Pass fact surface ----

// ExportObjectFact attaches a fact to obj, visible to later passes of
// the same analyzer over packages that import this one.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	p.facts.export(p.Analyzer.Name, obj.Pkg().Path(), objectPath(obj), f)
}

// ImportObjectFact copies the fact attached to obj into f and reports
// whether one exists. It sees facts exported by this pass and by the
// same analyzer's passes over dependency packages.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.facts.lookup(p.Analyzer.Name, obj.Pkg().Path(), objectPath(obj), f)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	p.facts.export(p.Analyzer.Name, p.Pkg.Path(), "", f)
}

// ImportPackageFact copies the fact attached to pkg (an import,
// possibly transitive, or the package under analysis) into f.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	return p.facts.lookup(p.Analyzer.Name, pkg.Path(), "", f)
}

// EachImportedPackageFact visits the fact of every package in the
// transitive import closure of the package under analysis that has one,
// in stable (path-sorted) order. proto is the fact prototype; visit
// receives each package path with the decoded fact, which is reused
// between calls — copy what must outlive the visit.
func (p *Pass) EachImportedPackageFact(proto Fact, visit func(pkgPath string, f Fact)) {
	seen := map[*types.Package]bool{p.Pkg: true}
	var paths []string
	byPath := make(map[string]*types.Package)
	var walk func(pkg *types.Package)
	walk = func(pkg *types.Package) {
		for _, imp := range pkg.Imports() {
			if seen[imp] {
				continue
			}
			seen[imp] = true
			paths = append(paths, imp.Path())
			byPath[imp.Path()] = imp
			walk(imp)
		}
	}
	walk(p.Pkg)
	sort.Strings(paths)
	for _, path := range paths {
		if p.facts.lookup(p.Analyzer.Name, path, "", proto) {
			visit(path, proto)
		}
	}
}

// ---- vetx serialization ----

// vetxRecord is one serialized fact in a vetx file. The file carries
// the full transitive fact set known after analyzing a unit (own facts
// plus everything inherited), so a dependent unit only needs the vetx
// of its direct imports.
type vetxRecord struct {
	Analyzer string
	PkgPath  string
	ObjPath  string
	FactType string
	Data     []byte
}

// factTypeRegistry maps the stable name of each declared fact type to
// its reflect.Type, built from the FactTypes of the analyzers in play.
func factTypeRegistry(analyzers []*Analyzer) map[string]reflect.Type {
	reg := make(map[string]reflect.Type)
	for _, a := range analyzers {
		for _, proto := range a.FactTypes {
			reg[factTypeName(proto)] = reflect.TypeOf(proto)
		}
	}
	return reg
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	return t.Name()
}

// EncodeFacts serializes the store for a vetx file, sorted for
// deterministic output.
func (s *factStore) encode() ([]byte, error) {
	records := make([]vetxRecord, 0, len(s.facts))
	for k, f := range s.facts {
		var val bytes.Buffer
		if err := gob.NewEncoder(&val).EncodeValue(reflect.ValueOf(f).Elem()); err != nil {
			return nil, fmt.Errorf("lint: encode fact %T for %s.%s: %w", f, k.pkg, k.obj, err)
		}
		records = append(records, vetxRecord{
			Analyzer: k.analyzer,
			PkgPath:  k.pkg,
			ObjPath:  k.obj,
			FactType: factTypeName(f),
			Data:     val.Bytes(),
		})
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.ObjPath != b.ObjPath {
			return a.ObjPath < b.ObjPath
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.FactType < b.FactType
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeFacts merges a vetx file into the store. Facts whose type is
// not in the registry (an analyzer not selected for this run) are
// skipped, matching the go command's behaviour of caching more than a
// given invocation consumes.
func (s *factStore) decode(data []byte, registry map[string]reflect.Type) error {
	if len(data) == 0 {
		return nil
	}
	var records []vetxRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return fmt.Errorf("lint: corrupt vetx facts: %w", err)
	}
	for _, r := range records {
		typ, ok := registry[r.FactType]
		if !ok {
			continue
		}
		val := reflect.New(typ.Elem()) // typ is *T; allocate a T
		if err := gob.NewDecoder(bytes.NewReader(r.Data)).DecodeValue(val.Elem()); err != nil {
			return fmt.Errorf("lint: decode fact %s for %s.%s: %w", r.FactType, r.PkgPath, r.ObjPath, err)
		}
		f, ok := val.Interface().(Fact)
		if !ok {
			return fmt.Errorf("lint: registered fact type %s does not implement Fact", r.FactType)
		}
		s.facts[factKey{analyzer: r.Analyzer, pkg: r.PkgPath, obj: r.ObjPath, typ: typ}] = f
	}
	return nil
}

// FactSet carries facts across RunPackage calls and process
// boundaries. The zero value is not usable; use NewFactSet.
type FactSet struct {
	store *factStore
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{store: newFactStore()}
}

// Encode serializes every fact in the set for a vetx file.
func (fs *FactSet) Encode() ([]byte, error) {
	return fs.store.encode()
}

// Decode merges vetx-file bytes into the set; analyzers declares the
// fact types in play.
func (fs *FactSet) Decode(data []byte, analyzers []*Analyzer) error {
	return fs.store.decode(data, factTypeRegistry(analyzers))
}

// Len reports the number of facts in the set.
func (fs *FactSet) Len() int { return len(fs.store.facts) }
