package lint_test

import (
	"testing"

	"streamad/internal/lint"
	"streamad/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.HotAlloc, "hotalloc", "tier0")
}

// TestHotAllocTransitive exercises the fact layer: the allocating
// callees live in hotalloc2/helper, analyzed first, and the kernels in
// hotalloc2 are flagged at their call sites through imported facts.
func TestHotAllocTransitive(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.HotAlloc, "hotalloc2/helper", "hotalloc2")
}

func TestStateSync(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.StateSync, "statesync")
}

// TestMetricLint lists the declaring package before its importer so the
// MetricsFact flows the same direction RunModule would order them.
func TestMetricLint(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.MetricLint, "metriclint/decl", "metriclint")
}

func TestDirective(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Directive, "directive")
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.DetRand, "detrand", "detrand/internal/randstate")
}

func TestFloatSafe(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.FloatSafe, "floatsafe")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.LockDiscipline, "lockdiscipline")
}

func TestCtxGoroutine(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.CtxGoroutine, "ctxgoroutine")
}
