package lint_test

import (
	"testing"

	"streamad/internal/lint"
	"streamad/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.HotAlloc, "hotalloc", "tier0")
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.DetRand, "detrand", "detrand/internal/randstate")
}

func TestFloatSafe(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.FloatSafe, "floatsafe")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.LockDiscipline, "lockdiscipline")
}

func TestCtxGoroutine(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.CtxGoroutine, "ctxgoroutine")
}
