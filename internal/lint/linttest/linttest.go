// Package linttest runs lint analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest (which this
// module cannot depend on): fixture sources live under
// testdata/src/<path>/, and every line expected to produce a finding
// carries a trailing comment of the form
//
//	// want "regexp"
//	// want `regexp` "second regexp"
//
// Run loads each fixture package, applies the analyzer, and reports a
// test error for every diagnostic without a matching want and every
// want without a matching diagnostic.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"streamad/internal/lint"
)

// Run applies analyzer a to the fixture packages under dir (typically
// "testdata/src") named by pkgPaths, checking diagnostics against the
// fixtures' want comments. One fact set is shared across the packages
// in listed order, so cross-package fixtures (a dependency followed by
// its importer) exercise the fact layer exactly as RunModule does —
// list dependencies before the packages that import them.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	loader := lint.NewLoader(abs, "")
	fs := lint.NewFactSet()
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("linttest: load %s: %v", path, err)
			continue
		}
		diags, err := lint.RunPackageFacts(pkg, []*lint.Analyzer{a}, fs)
		if err != nil {
			t.Errorf("linttest: run %s on %s: %v", a.Name, path, err)
			continue
		}
		surviving := diags[:0]
		for _, d := range diags {
			if !d.Suppressed {
				surviving = append(surviving, d)
			}
		}
		checkWants(t, pkg, surviving)
	}
}

type want struct {
	pos token.Position
	rx  *regexp.Regexp
	hit bool
}

func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.rx)
		}
	}
}

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//") {
					continue
				}
				body := strings.TrimSpace(text[2:])
				if !strings.HasPrefix(body, "want ") && body != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range parseWantPatterns(t, pos, strings.TrimPrefix(body, "want")) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{pos: pos, rx: rx})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns splits `"p1" "p2"` or backquoted forms.
func parseWantPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			pats = append(pats, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			t.Fatalf("%s: want patterns must be quoted, got: %s", pos, s)
		}
	}
	return pats
}
