package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// MetricLint audits the hand-rolled Prometheus text exposition the
// /metrics endpoint assembles with fmt.Fprintf. The ~30 streamad_*
// families PRs 3–9 accumulated are written as string literals, so their
// discipline is statically checkable:
//
//   - every family a package emits samples for must have # HELP and
//     # TYPE registered — in the same package or in a dependency (the
//     declarations travel as package facts);
//   - a family's label set must be identical at every emission site,
//     across packages (histogram _bucket/_sum/_count series attach to
//     their base family, with le allowed on _bucket);
//   - # TYPE must use a valid Prometheus type, and a family must not be
//     HELP/TYPE-registered twice;
//   - no unbounded-cardinality labels: a label named stream/stream_id/id
//     interpolated from a format verb means one series per stream — at
//     the million-stream target that is a cardinality bomb for any
//     scraper. Bounded exposition (capped rendering) is suppressed
//     line-by-line with //streamad:ignore metriclint <reason>.
//
// Only string literals reaching fmt.Fprint/Fprintf/Fprintln calls are
// considered, which is exactly how every exposition site in the repo is
// written; dynamically assembled family names are invisible to the
// analyzer and should not be introduced.
var MetricLint = &Analyzer{
	Name:      "metriclint",
	Doc:       "checks streamad_* metric families for HELP/TYPE registration, consistent labels and bounded cardinality",
	FactTypes: []Fact{(*MetricsFact)(nil)},
	Run:       runMetricLint,
}

// MetricsFact is the per-package summary of metric families declared
// and emitted, merged along the import graph so cross-package emission
// stays consistent.
type MetricsFact struct {
	Families map[string]MetricFamily
}

// AFact implements Fact.
func (*MetricsFact) AFact() {}

// MetricFamily records what is known about one streamad_* family.
type MetricFamily struct {
	HelpPkg string // package path that declared # HELP ("" if none yet)
	TypePkg string // package path that declared # TYPE
	Type    string // counter | gauge | histogram | summary
	// Labels is the canonical (sorted) label-name set of the first
	// sample site seen; LabelsAt records that site for diagnostics.
	Labels    []string
	LabelsAt  string
	HasSample bool
}

// promTypes are the valid # TYPE values.
var promTypes = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}

// unboundedLabels name per-stream identities; one series per stream is
// unbounded cardinality at the registry's scale.
var unboundedLabels = map[string]bool{"stream": true, "stream_id": true, "id": true}

type metricLine struct {
	pos  token.Pos
	text string // one exposition line from a literal, unescaped-ish
}

func runMetricLint(p *Pass) error {
	// Inherit the merged view of every dependency.
	families := make(map[string]MetricFamily)
	p.EachImportedPackageFact(&MetricsFact{}, func(pkgPath string, f Fact) {
		for name, fam := range f.(*MetricsFact).Families {
			if have, ok := families[name]; ok {
				families[name] = mergeFamily(have, fam)
			} else {
				families[name] = fam
			}
		}
	})

	lines := collectMetricLines(p)

	// Phase 1: register local HELP/TYPE declarations.
	for _, ml := range lines {
		if !strings.HasPrefix(ml.text, "# ") {
			continue
		}
		kind, family, rest, ok := parseMetaLine(ml.text)
		if !ok {
			continue
		}
		fam := families[family]
		switch kind {
		case "HELP":
			if rest == "" {
				p.Reportf(ml.pos, "HELP for %s has no description text", family)
			}
			if fam.HelpPkg != "" && fam.HelpPkg != p.Pkg.Path() {
				p.Reportf(ml.pos, "HELP for %s already declared in %s; a family registers once", family, fam.HelpPkg)
			} else if fam.HelpPkg == p.Pkg.Path() {
				p.Reportf(ml.pos, "duplicate HELP for %s in this package", family)
			}
			fam.HelpPkg = p.Pkg.Path()
		case "TYPE":
			if !promTypes[rest] {
				p.Reportf(ml.pos, "TYPE for %s is %q; want counter, gauge, histogram, summary or untyped", family, rest)
			}
			if fam.TypePkg != "" && fam.TypePkg != p.Pkg.Path() {
				p.Reportf(ml.pos, "TYPE for %s already declared in %s; a family registers once", family, fam.TypePkg)
			} else if fam.TypePkg == p.Pkg.Path() {
				p.Reportf(ml.pos, "duplicate TYPE for %s in this package", family)
			}
			fam.TypePkg = p.Pkg.Path()
			fam.Type = rest
		}
		families[family] = fam
	}

	// Phase 2: samples.
	type sampleSite struct {
		pos    token.Pos
		family string // base family after histogram-suffix folding
		labels []string
		// dynamicUnbounded holds denylisted label names with verb values.
		dynamicUnbounded []string
	}
	var sites []sampleSite
	for _, ml := range lines {
		if strings.HasPrefix(ml.text, "# ") {
			continue
		}
		s, ok := parseSampleLine(ml.text)
		if !ok {
			continue
		}
		site := sampleSite{pos: ml.pos, family: s.family, labels: s.labelNames}
		// Fold histogram series onto the base family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.family, suffix)
			if base == s.family {
				continue
			}
			if fam, ok := families[base]; ok && fam.Type == "histogram" {
				site.family = base
				if suffix == "_bucket" {
					site.labels = without(site.labels, "le")
				}
			}
			break
		}
		for _, lbl := range s.labels {
			if unboundedLabels[lbl.name] && lbl.dynamic {
				site.dynamicUnbounded = append(site.dynamicUnbounded, lbl.name)
			}
		}
		sites = append(sites, site)
	}

	for _, site := range sites {
		fam := families[site.family]
		here := p.Fset.Position(site.pos).String()
		if !fam.HasSample {
			fam.HasSample = true
			fam.Labels = site.labels
			fam.LabelsAt = here
		} else if !equalStrings(fam.Labels, site.labels) {
			p.Reportf(site.pos, "family %s emitted with labels {%s} here but {%s} at %s; label sets must match at every site",
				site.family, strings.Join(site.labels, ","), strings.Join(fam.Labels, ","), fam.LabelsAt)
		}
		if fam.HelpPkg == "" {
			p.Reportf(site.pos, "family %s is emitted without a # HELP registration in this package or its dependencies", site.family)
			fam.HelpPkg = p.Pkg.Path() // report once per family per package
		}
		if fam.TypePkg == "" {
			p.Reportf(site.pos, "family %s is emitted without a # TYPE registration in this package or its dependencies", site.family)
			fam.TypePkg = p.Pkg.Path()
			fam.Type = "untyped"
		}
		for _, name := range site.dynamicUnbounded {
			p.Reportf(site.pos, "label %q on %s takes a per-stream value: unbounded cardinality for any scraper; bound the exposition or aggregate", name, site.family)
		}
		families[site.family] = fam
	}

	// Export the merged view for importers.
	if len(families) > 0 {
		p.ExportPackageFact(&MetricsFact{Families: families})
	}
	return nil
}

func mergeFamily(a, b MetricFamily) MetricFamily {
	if a.HelpPkg == "" {
		a.HelpPkg = b.HelpPkg
	}
	if a.TypePkg == "" {
		a.TypePkg = b.TypePkg
		a.Type = b.Type
	}
	if !a.HasSample && b.HasSample {
		a.HasSample = true
		a.Labels = b.Labels
		a.LabelsAt = b.LabelsAt
	}
	return a
}

// collectMetricLines pulls every line mentioning streamad_ out of the
// string literals passed to fmt.Fprint/Fprintf/Fprintln in the package.
func collectMetricLines(p *Pass) []metricLine {
	var lines []metricLine
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(p.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
				return true
			}
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln":
			default:
				return true
			}
			for i, arg := range call.Args {
				if i == 0 {
					continue // the writer
				}
				lit, ok := unparen(arg).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				text, err := unquoteLit(lit.Value)
				if err != nil {
					continue
				}
				if !strings.Contains(text, "streamad_") {
					continue
				}
				for _, line := range strings.Split(text, "\n") {
					line = strings.TrimSpace(line)
					if line != "" {
						lines = append(lines, metricLine{pos: lit.Pos(), text: line})
					}
				}
				// Only the format/first literal matters for Fprintf; for
				// Fprintln every literal argument could be a line, so keep
				// scanning.
				if fn.Name() == "Fprintf" {
					break
				}
			}
			return true
		})
	}
	return lines
}

// parseMetaLine parses "# HELP family text" / "# TYPE family type".
func parseMetaLine(s string) (kind, family, rest string, ok bool) {
	fields := strings.Fields(s)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	if !strings.HasPrefix(fields[2], "streamad_") || !validFamilyName(fields[2]) {
		return "", "", "", false
	}
	return fields[1], fields[2], strings.Join(fields[3:], " "), true
}

type parsedSample struct {
	family     string
	labelNames []string
	labels     []sampleLabel
}

type sampleLabel struct {
	name    string
	dynamic bool // value contains a format verb
}

// parseSampleLine parses `family{name=value,...} value` exposition
// lines as they appear inside format strings (label values may be
// format verbs like %q or escaped literals).
func parseSampleLine(s string) (parsedSample, bool) {
	if !strings.HasPrefix(s, "streamad_") {
		return parsedSample{}, false
	}
	nameEnd := 0
	for nameEnd < len(s) && isFamilyChar(s[nameEnd]) {
		nameEnd++
	}
	family := s[:nameEnd]
	if !validFamilyName(family) || nameEnd == len(s) {
		return parsedSample{}, false
	}
	ps := parsedSample{family: family}
	rest := s[nameEnd:]
	switch rest[0] {
	case ' ', '\t':
		// No labels; must still look like a sample (something follows).
		if strings.TrimSpace(rest) == "" {
			return parsedSample{}, false
		}
	case '{':
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return parsedSample{}, false
		}
		for _, pair := range splitLabelPairs(rest[1:end]) {
			name, value, found := strings.Cut(pair, "=")
			if !found {
				continue
			}
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			ps.labels = append(ps.labels, sampleLabel{name: name, dynamic: strings.Contains(value, "%")})
			ps.labelNames = append(ps.labelNames, name)
		}
	default:
		return parsedSample{}, false
	}
	sort.Strings(ps.labelNames)
	return ps, true
}

// splitLabelPairs splits a label block body on commas outside quotes.
func splitLabelPairs(s string) []string {
	var pairs []string
	depth := false // inside a quoted value
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case '\\':
			i++
		case ',':
			if !depth {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		pairs = append(pairs, s[start:])
	}
	return pairs
}

func isFamilyChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('0' <= c && c <= '9')
}

func validFamilyName(s string) bool {
	if !strings.HasPrefix(s, "streamad_") {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isFamilyChar(s[i]) {
			return false
		}
	}
	return true
}

func without(labels []string, drop string) []string {
	out := make([]string, 0, len(labels))
	for _, l := range labels {
		if l != drop {
			out = append(out, l)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unquoteLit unescapes a Go string literal ("..." or `...`).
func unquoteLit(raw string) (string, error) {
	if len(raw) >= 2 && raw[0] == '`' {
		return raw[1 : len(raw)-1], nil
	}
	return unquoteDouble(raw)
}

// unquoteDouble handles the escape sequences that appear in exposition
// format strings (\n, \t, \", \\); anything fancier is left verbatim,
// which is fine for pattern matching.
func unquoteDouble(raw string) (string, error) {
	if len(raw) < 2 || raw[0] != '"' || raw[len(raw)-1] != '"' {
		return "", fmt.Errorf("not a string literal")
	}
	var b strings.Builder
	body := raw[1 : len(raw)-1]
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' || i+1 >= len(body) {
			b.WriteByte(c)
			continue
		}
		i++
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(body[i])
		}
	}
	return b.String(), nil
}
