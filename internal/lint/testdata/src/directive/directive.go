// Package directive is the fixture for the directive analyzer, which
// audits the suppression mechanism itself. The malformed directives use
// the /* */ spelling so the expectation can ride the same line as a
// separate comment; the analyzer accepts both framings.
package directive

import "fmt"

/*streamad:ignore hotalloc*/ // want `suppression directive missing reason: a bare ignore suppresses nothing`

/*lint:ignore*/ // want `suppression directive names no analyzers`

/*streamad:ignore hotallocs one-time lazy init*/ // want `suppression directive names unknown analyzer "hotallocs"`

/*streamad:ignore hotalloc,detrnd covers both*/ // want `suppression directive names unknown analyzer "detrnd"`

// A well-formed directive produces no finding, and "all" is a known
// name.
func ok() {
	//streamad:ignore hotalloc one-time lazy init; steady state reuses the buffer
	_ = fmt.Sprint("x")
	//lint:ignore all fixture exercising the staticcheck spelling
	_ = fmt.Sprint("y")
}

var _ = ok
