// Package tier0 is the hotalloc fixture for the tier-0 detector idiom:
// the ring-buffer and incremental-statistics kernels that
// internal/tier0's Step methods are built from must stay
// allocation-free, while the naive window-copy formulations are
// flagged.
package tier0

var sink float64

// zscore mirrors the moving z-score detector: a preallocated ring with
// rolling first and second moments.
type zscore struct {
	ring   []float64
	sum    float64
	sumsq  float64
	n, pos int
}

// step is the shape a tier-0 kernel must take: in-place ring
// replacement and O(1) moment updates, nothing allocates.
//
//streamad:hotpath
func (z *zscore) step(x float64) float64 {
	if z.n == len(z.ring) {
		old := z.ring[z.pos]
		z.sum -= old
		z.sumsq -= old * old
	} else {
		z.n++
	}
	z.ring[z.pos] = x
	z.pos++
	if z.pos == len(z.ring) {
		z.pos = 0
	}
	z.sum += x
	z.sumsq += x * x
	return z.sum / float64(len(z.ring))
}

// stepNaive recomputes the window from scratch each step: every
// construct it leans on is an allocation the analyzer must flag.
//
//streamad:hotpath
func (z *zscore) stepNaive(x float64) float64 {
	grown := append(z.ring, x)            // want `append may grow its backing array`
	window := make([]float64, len(grown)) // want `make allocates on a hot path`
	copy(window, grown)
	var s float64
	for _, v := range window {
		s += v
	}
	sink = s
	return s
}

// hampel mirrors the streaming Hampel filter: the ring's sorted view is
// maintained by an in-place shift, never rebuilt.
type hampel struct {
	sorted []float64
}

// replace drops old from the sorted view and inserts x: two copy shifts
// over the preallocated backing array, no allocation.
//
//streamad:hotpath
func (h *hampel) replace(old, x float64) {
	i := 0
	for i < len(h.sorted) && h.sorted[i] < old {
		i++
	}
	copy(h.sorted[i:], h.sorted[i+1:])
	h.sorted = h.sorted[:len(h.sorted)-1]
	j := 0
	for j < len(h.sorted) && h.sorted[j] < x {
		j++
	}
	h.sorted = h.sorted[:len(h.sorted)+1]
	copy(h.sorted[j+1:], h.sorted[j:])
	h.sorted[j] = x
}

var _ = (*zscore)(nil).stepNaive
var _ = (*hampel)(nil).replace
