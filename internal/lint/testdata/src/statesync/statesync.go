// Package statesync is the fixture for the statesync analyzer: types
// that participate in checkpointing must account for every field —
// referenced in the Save/Load path, or annotated transient with a
// reason — and gob-encoded structs must not silently drop unexported
// fields.
package statesync

import (
	"bytes"
	"encoding/gob"
	"io"
)

// tracker has full field parity: two fields round-trip, the scratch
// buffer is declared transient.
type tracker struct {
	count int
	mean  float64
	buf   []float64 //streamad:transient scoring scratch rebuilt every step
}

func (t *tracker) Save() ([]byte, error) {
	var b bytes.Buffer
	enc := gob.NewEncoder(&b)
	if err := enc.Encode(t.count); err != nil {
		return nil, err
	}
	if err := enc.Encode(t.mean); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func (t *tracker) Load(data []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&t.count); err != nil {
		return err
	}
	return dec.Decode(&t.mean)
}

// leaky forgets state across its checkpoint round-trip.
type leaky struct {
	steps int
	seed  int64 // want `field leaky.seed is neither referenced in leaky's Save/Load path nor annotated`
	//streamad:transient
	tmp []float64 // want `field leaky.tmp: //streamad:transient annotation missing reason`
	//streamad:transient cached running total, recomputed on load
	total float64 // want `field leaky.total is marked //streamad:transient but is referenced by the state methods`
}

func (l *leaky) Save() ([]byte, error) {
	var b bytes.Buffer
	if err := l.encodeBody(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// encodeBody is reached from Save, so the fields it touches count as
// covered transitively.
func (l *leaky) encodeBody(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(l.steps); err != nil {
		return err
	}
	return enc.Encode(l.total)
}

func (l *leaky) Load(data []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	return dec.Decode(&l.steps)
}

// moments checkpoints through the encoding.BinaryMarshaler pair; the
// method-name classes beyond Save/Load count too.
type moments struct {
	n    int
	m2   float64
	hits int // want `field moments.hits is neither referenced in moments's Save/Load path nor annotated`
}

func (m *moments) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	enc := gob.NewEncoder(&b)
	if err := enc.Encode(m.n); err != nil {
		return nil, err
	}
	if err := enc.Encode(m.m2); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func (m *moments) UnmarshalBinary(data []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&m.n); err != nil {
		return err
	}
	return dec.Decode(&m.m2)
}

// snapshot is gob-encoded wholesale: unexported fields vanish without
// an error unless they are declared transient.
type snapshot struct {
	Steps int
	seed  int64 // want `unexported field snapshot.seed is silently dropped by gob`
	//streamad:transient derived cache, rebuilt by the loader
	cache []float64
}

func flush(w io.Writer, s *snapshot) error {
	return gob.NewEncoder(w).Encode(s)
}

var _ = flush
