// Package detrand is the fixture for the detrand analyzer.
package detrand

import (
	"math/rand"
	"time"

	"detrand/internal/randstate"
)

func bad(seed int64) float64 {
	n := rand.Intn(10)                            // want `global math/rand state \(rand\.Intn\)`
	rand.Seed(seed)                               // want `global math/rand state \(rand\.Seed\)`
	src := rand.NewSource(seed)                   // want `raw rand\.NewSource bypasses internal/randstate`
	wall := rand.NewSource(time.Now().UnixNano()) // want `raw rand\.NewSource` `time-seeded RNG makes runs unreproducible`
	_, _, _ = n, src, wall
	return 0
}

func good(seed int64) float64 {
	rng := rand.New(randstate.NewCountedSource(seed))
	return rng.Float64() // methods on a constructed *rand.Rand are fine
}
