// Package randstate models the one package allowed to construct raw
// sources; the analyzer exempts it by import-path suffix.
package randstate

import "math/rand"

// NewCountedSource may touch rand.NewSource: this package is exempt.
func NewCountedSource(seed int64) rand.Source {
	return rand.NewSource(seed)
}
