// Package ctxgoroutine is the fixture for the ctxgoroutine analyzer.
package ctxgoroutine

type server struct {
	done chan struct{}
}

func (s *server) start() {
	go s.loop() // want `goroutine launched outside a //streamad:lifecycle helper`
}

// startManaged launches the worker loop; Close joins it through done.
//
//streamad:lifecycle — joined via the done channel in Close.
func (s *server) startManaged() {
	go s.loop()
}

func (s *server) loop() { <-s.done }
