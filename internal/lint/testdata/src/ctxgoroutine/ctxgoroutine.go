// Package ctxgoroutine is the fixture for the ctxgoroutine analyzer.
package ctxgoroutine

type server struct {
	done chan struct{}
}

func (s *server) start() {
	go s.loop() // want `goroutine launched outside a //streamad:lifecycle helper`
}

// startManaged launches the worker loop; Close joins it through done.
//
//streamad:lifecycle — joined via the done channel in Close.
func (s *server) startManaged() {
	go s.loop()
}

func (s *server) loop() { <-s.done }

// pool mimics the bounded worker-pool idiom: the constructor is the
// lifecycle owner of a fixed worker set, and task submission must queue
// onto those workers rather than spawn.
type pool struct {
	queue chan func()
}

// newPool starts the fixed worker set; Close (not shown) joins them by
// closing the queue.
//
//streamad:lifecycle — owns the worker goroutines.
func newPool(workers int) *pool {
	p := &pool{queue: make(chan func(), 64)}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	for fn := range p.queue {
		fn()
	}
}

// submit queues the task for the fixed workers — no new goroutine, so no
// lifecycle marker needed.
func (p *pool) submit(fn func()) {
	p.queue <- fn
}

// submitOwned is the per-task-goroutine anti-pattern the pools replace:
// nothing joins fn, so at fleet scale this is goroutines O(tasks).
func (p *pool) submitOwned(fn func()) {
	go fn() // want `goroutine launched outside a //streamad:lifecycle helper`
}

var (
	_ = newPool
	_ = (*pool)(nil).submit
	_ = (*pool)(nil).submitOwned
)
