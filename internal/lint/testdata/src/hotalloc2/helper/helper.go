// Package helper provides the cross-package callees of the transitive
// hotalloc fixture: the analyzer exports AllocFacts for the allocating
// ones while analyzing this package, and the hotalloc2 fixture imports
// them at its call sites.
package helper

// Grow allocates directly: append may grow the backing array.
func Grow(xs []float64, v float64) []float64 {
	return append(xs, v)
}

// Wrap allocates only through Grow, so its fact must come from the
// intra-package fixpoint, not a direct construct.
func Wrap(xs []float64) []float64 {
	return Grow(xs, 1)
}

// Sum is allocation-free and exports no fact.
func Sum(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v
	}
	return t
}

// Audited allocates lazily under a suppression, so the construct is
// excluded from its AllocFact and hotpath callers stay clean.
func Audited(buf []float64, n int) []float64 {
	if buf == nil {
		//streamad:ignore hotalloc one-time lazy init audited here; steady state reuses the buffer
		buf = make([]float64, n)
	}
	return buf
}
