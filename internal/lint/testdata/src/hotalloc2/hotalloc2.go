// Package hotalloc2 is the transitive half of the hotalloc fixture: the
// kernel itself contains no allocating construct, but some of its
// static callees — in this package and in hotalloc2/helper — do, and
// the call sites must be flagged with the chain that allocates.
package hotalloc2

import "hotalloc2/helper"

var sink []float64

// localGrow allocates; the fact stays inside this package.
func localGrow(xs []float64) []float64 {
	return append(xs, 2)
}

// indirect allocates only through localGrow (local fixpoint).
func indirect(xs []float64) []float64 {
	return localGrow(xs)
}

//streamad:hotpath
func trusted(xs []float64) float64 {
	return xs[0]
}

//streamad:hotpath
func kernel(xs []float64) float64 {
	sink = helper.Grow(xs, 1) // want `call to helper.Grow allocates on a hot path: append at `
	sink = helper.Wrap(xs)    // want `call to helper.Wrap allocates on a hot path: calls helper.Grow, which allocates`
	sink = localGrow(xs)      // want `call to hotalloc2.localGrow allocates on a hot path: append at `
	sink = indirect(xs)       // want `call to hotalloc2.indirect allocates on a hot path: calls hotalloc2.localGrow, which allocates`
	sink = helper.Audited(sink, len(xs))
	return helper.Sum(xs) + trusted(xs)
}
