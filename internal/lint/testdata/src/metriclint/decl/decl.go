// Package decl registers the shared metric family of the metriclint
// fixture: its HELP/TYPE declarations and first emission site travel to
// the importing package as a MetricsFact.
package decl

import (
	"fmt"
	"io"
)

// Register writes the shared family's declarations and one sample.
func Register(w io.Writer) {
	fmt.Fprint(w, "# HELP streamad_shared_total observations accepted\n")
	fmt.Fprint(w, "# TYPE streamad_shared_total counter\n")
	fmt.Fprintf(w, "streamad_shared_total{shard=%q} %d\n", "a", 1)
}
