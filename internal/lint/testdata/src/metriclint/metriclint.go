// Package metriclint is the fixture for the metriclint analyzer. The
// shared family is declared in metriclint/decl and its fact imported
// here, so cross-package consistency is exercised alongside the local
// checks: HELP/TYPE registration, duplicate declarations, valid types,
// label-set parity and bounded cardinality.
package metriclint

import (
	"fmt"
	"io"

	"metriclint/decl"
)

func register(w io.Writer) {
	fmt.Fprint(w, "# HELP streamad_lookups_total registry lookups\n")
	fmt.Fprint(w, "# TYPE streamad_lookups_total counter\n")
	fmt.Fprint(w, "# HELP streamad_debug_info per-stream debug state\n")
	fmt.Fprint(w, "# TYPE streamad_debug_info gauge\n")
	fmt.Fprint(w, "# HELP streamad_latency_seconds scoring latency\n")
	fmt.Fprint(w, "# TYPE streamad_latency_seconds histogram\n")
	fmt.Fprint(w, "# TYPE streamad_bad_total speedometer\n")                // want `TYPE for streamad_bad_total is "speedometer"; want counter, gauge, histogram, summary or untyped`
	fmt.Fprint(w, "# HELP streamad_dup_total first declaration\n")          // the duplicate below is the finding
	fmt.Fprint(w, "# HELP streamad_dup_total second declaration\n")         // want `duplicate HELP for streamad_dup_total in this package`
	fmt.Fprint(w, "# HELP streamad_naked_total\n")                          // want `HELP for streamad_naked_total has no description text`
	fmt.Fprint(w, "# HELP streamad_shared_total re-registered elsewhere\n") // want `HELP for streamad_shared_total already declared in metriclint/decl; a family registers once`
}

func emit(w io.Writer, id string) {
	decl.Register(w)

	// Same label set as the site in metriclint/decl: consistent.
	fmt.Fprintf(w, "streamad_shared_total{shard=%q} %d\n", "b", 2)

	fmt.Fprintf(w, "streamad_shared_total{shard=%q,extra=%q} %d\n", "c", "x", 3) // want `family streamad_shared_total emitted with labels \{extra,shard\} here but \{shard\} at `

	fmt.Fprintf(w, "streamad_orphan_total %d\n", 4) // want `family streamad_orphan_total is emitted without a # HELP registration` `family streamad_orphan_total is emitted without a # TYPE registration`

	fmt.Fprintf(w, "streamad_lookups_total{stream=%q} %d\n", id, 5) // want `label "stream" on streamad_lookups_total takes a per-stream value: unbounded cardinality`

	//streamad:ignore metriclint fixture: rendering capped upstream, overflow counted separately
	fmt.Fprintf(w, "streamad_debug_info{stream=%q} %d\n", id, 1)

	// Histogram series fold onto the base family; le is allowed on
	// _bucket and the remaining labels must still match.
	fmt.Fprintf(w, "streamad_latency_seconds_bucket{le=%q,shard=%q} %d\n", "0.1", "a", 7)
	fmt.Fprintf(w, "streamad_latency_seconds_sum{shard=%q} %g\n", "a", 0.42)
	fmt.Fprintf(w, "streamad_latency_seconds_count{shard=%q} %d\n", "a", 9)
}

var (
	_ = register
	_ = emit
)
