// Package floatsafe is the fixture for the floatsafe analyzer: each
// rule has an unguarded (flagged) and a guarded (clean) variant.
package floatsafe

import (
	"encoding/json"
	"math"
)

func meanBad(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs)) // want `division by a length that may be zero`
}

func meanGood(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func stdBad(sumsq, n, mean float64) float64 {
	return math.Sqrt(sumsq/n - mean*mean) // want `math\.Sqrt of a difference can go negative`
}

func stdGood(sumsq, n, mean float64) float64 {
	v := sumsq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

func logBad(a, b float64) float64 {
	gap := a - b
	return math.Log(gap) // want `math\.Log of gap, which is assigned from a difference`
}

// Unguarded floats go straight to the wire.
type Unguarded struct {
	Score float64 `json:"score"`
}

// Guarded floats pass through a finiteOrZero-style helper first.
//
//streamad:finite-json — all float fields are guarded before encode.
type Guarded struct {
	Score float64 `json:"score"`
}

func encode(u Unguarded, g Guarded) ([]byte, error) {
	if b, err := json.Marshal(u); err == nil { // want `Unguarded carries float fields into JSON without the finite-guard contract`
		return b, nil
	}
	return json.Marshal(g)
}

var _, _, _, _, _ = meanBad, meanGood, stdBad, stdGood, logBad
var _ = encode
