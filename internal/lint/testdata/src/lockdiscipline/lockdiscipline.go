// Package lockdiscipline is the fixture for the lockdiscipline
// analyzer: mixed atomic/plain access, detector passes under a
// membership mutex, and an unpaired Lock.
package lockdiscipline

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `n is accessed with sync/atomic elsewhere`
}

type detector struct{}

func (detector) Step(x []float64) float64 { return 0 }

type shard struct {
	//streamad:membership — guards the dets map only.
	mu   sync.Mutex
	dets map[string]detector
}

func (s *shard) observe(id string, x []float64) float64 {
	s.mu.Lock()
	d := s.dets[id]
	v := d.Step(x) // want `Step called while holding membership mutex`
	s.mu.Unlock()
	return v
}

func (s *shard) lookup(id string) detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dets[id]
}

type leaky struct {
	mu sync.Mutex
}

func (l *leaky) acquire() {
	l.mu.Lock() // want `mutex locked here but never unlocked in this function`
}

// trainJob mimics the trainer pool's claimable-job idiom: state moves
// through CAS only, so any plain read races the claimants.
type trainJob struct {
	state int32
}

func (j *trainJob) claim() bool {
	return atomic.CompareAndSwapInt32(&j.state, 0, 1)
}

func (j *trainJob) claimed() bool {
	return j.state != 0 // want `state is accessed with sync/atomic elsewhere`
}

// dispatcher mimics the pooled ingest dispatcher: a batch must be scored
// after the membership lookup releases the shard, never under it.
type dispatcher struct {
	//streamad:membership — guards the streams map only.
	mu      sync.Mutex
	streams map[string]detector
}

func (d *dispatcher) dispatchLocked(id string, batch [][]float64) {
	d.mu.Lock()
	det := d.streams[id]
	for _, v := range batch {
		det.Step(v) // want `Step called while holding membership mutex`
	}
	d.mu.Unlock()
}

func (d *dispatcher) dispatch(id string, batch [][]float64) {
	d.mu.Lock()
	det := d.streams[id]
	d.mu.Unlock()
	for _, v := range batch {
		det.Step(v)
	}
}

var (
	_ = (*counter)(nil).incr
	_ = (*trainJob)(nil).claim
	_ = (*trainJob)(nil).claimed
	_ = (*dispatcher)(nil).dispatch
	_ = (*dispatcher)(nil).dispatchLocked
)
