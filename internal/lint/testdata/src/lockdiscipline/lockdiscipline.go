// Package lockdiscipline is the fixture for the lockdiscipline
// analyzer: mixed atomic/plain access, detector passes under a
// membership mutex, and an unpaired Lock.
package lockdiscipline

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `n is accessed with sync/atomic elsewhere`
}

type detector struct{}

func (detector) Step(x []float64) float64 { return 0 }

type shard struct {
	//streamad:membership — guards the dets map only.
	mu   sync.Mutex
	dets map[string]detector
}

func (s *shard) observe(id string, x []float64) float64 {
	s.mu.Lock()
	d := s.dets[id]
	v := d.Step(x) // want `Step called while holding membership mutex`
	s.mu.Unlock()
	return v
}

func (s *shard) lookup(id string) detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dets[id]
}

type leaky struct {
	mu sync.Mutex
}

func (l *leaky) acquire() {
	l.mu.Lock() // want `mutex locked here but never unlocked in this function`
}

var _ = (*counter)(nil).incr
