// Package hotalloc is the fixture for the hotalloc analyzer: every
// allocating construct inside the marked kernel carries a want; the
// same constructs in the unmarked function do not.
package hotalloc

import "fmt"

var sink interface{}

type state struct {
	buf     []float64
	scratch []float64
}

//streamad:hotpath
func (s *state) kernel(x []float64, prefix string) float64 {
	tmp := make([]float64, len(x)) // want `make allocates on a hot path`
	s.buf = append(s.buf, x...)    // want `append may grow its backing array`
	lit := []float64{1, 2}         // want `slice literal allocates`
	m := map[string]int{"a": 1}    // want `map literal allocates`
	p := &state{}                  // want `address-taken composite literal`
	n := new(int)                  // want `new allocates on a hot path`
	f := func() {}                 // want `closure allocates`
	go f()                         // want `go statement allocates a goroutine`
	msg := prefix + "b"            // want `string concatenation allocates`
	b := []byte(msg)               // want `string/byte-slice conversion copies`
	err := fmt.Errorf("x %v", n)   // want `fmt.Errorf allocates \(interface boxing\)`
	sink, _ = tmp, lit
	sink, _ = m, p
	sink, _ = b, err
	return 0
}

// cold uses the same constructs without the marker: no findings.
func cold(x []float64) []float64 {
	y := make([]float64, 0, len(x)+1)
	y = append(y, x...)
	return append(y, 1)
}

//streamad:hotpath
func (s *state) lazy(x []float64) []float64 {
	if s.scratch == nil {
		//streamad:ignore hotalloc one-time lazy init; steady state reuses the buffer
		s.scratch = make([]float64, len(x))
	}
	copy(s.scratch, x)
	return s.scratch
}

var _ = cold
