package lint

import (
	"go/ast"
)

// CtxGoroutine confines goroutine launches to lifecycle helpers. The
// serving stack owns exactly three kinds of background goroutines —
// ensemble member loops, ingest dispatchers/snapshotter/evictor, and
// the async fine-tune trainer — and each is joined by a Close, Stop or
// WaitFineTune path. A goroutine launched anywhere else can outlive
// those joins: it keeps stepping a detector after its checkpoint was
// taken, or holds buffers after shutdown, and no test will see it
// except as flakes.
//
// A function that legitimately owns goroutine lifecycles is marked
// //streamad:lifecycle in its doc comment; the marker is a review
// contract that every goroutine it starts is joined before the owning
// subsystem reports closed. Every go statement outside a marked
// function is flagged.
var CtxGoroutine = &Analyzer{
	Name: "ctxgoroutine",
	Doc:  "flags go statements outside //streamad:lifecycle helpers (goroutines that can outlive Close/WaitFineTune)",
	Run:  runCtxGoroutine,
}

func runCtxGoroutine(p *Pass) error {
	forEachFuncDecl(p.Files, func(fd *ast.FuncDecl) {
		if fd.Body == nil || hasMarker(fd.Doc, "streamad:lifecycle") {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "goroutine launched outside a //streamad:lifecycle helper; it may outlive Close/WaitFineTune — route it through a lifecycle owner or mark this function")
			}
			return true
		})
	})
	return nil
}
