package lint_test

import (
	"path/filepath"
	"testing"

	"streamad/internal/lint"
)

// TestSuiteCleanOnRepo is the self-application gate: the full analyzer
// suite must produce zero diagnostics on the repository it ships in.
// A finding here means either new code broke an invariant (fix it) or
// a deliberate exception lacks its //streamad:ignore justification.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	module, err := lint.ModulePath(root)
	if err != nil {
		t.Fatalf("reading go.mod: %v", err)
	}
	loader := lint.NewLoader(root, module)
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("enumerating packages: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("no packages found in module")
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		diags, err := lint.RunPackage(pkg, lint.All())
		if err != nil {
			t.Errorf("run %s: %v", path, err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
