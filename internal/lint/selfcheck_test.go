package lint_test

import (
	"path/filepath"
	"testing"

	"streamad/internal/lint"
)

// TestSuiteCleanOnRepo is the self-application gate: the full analyzer
// suite — cross-package facts included — must produce zero diagnostics
// on the repository it ships in. A finding here means either new code
// broke an invariant (fix it) or a deliberate exception lacks its
// //streamad:ignore justification.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	module, err := lint.ModulePath(root)
	if err != nil {
		t.Fatalf("reading go.mod: %v", err)
	}
	loader := lint.NewLoader(root, module)
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("enumerating packages: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("no packages found in module")
	}
	res, err := lint.RunModule(loader, paths, lint.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range res.Diags {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
	// Every suppression must carry its justification; a reason-less
	// directive suppresses nothing, so any diagnostic it covered would
	// already have failed above — this guards the Diagnostic plumbing.
	for _, d := range res.Diags {
		if d.Suppressed && d.Reason == "" {
			t.Errorf("%s: suppressed without a reason", d)
		}
	}
}
