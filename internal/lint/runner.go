package lint

import (
	"fmt"
	"sort"
	"time"
)

// ModuleResult is the outcome of a whole-module run: every diagnostic
// (suppressed ones included, carrying their directive reasons) plus the
// per-analyzer wall-clock cost of the analysis itself, which
// BENCH_lint.json tracks so the fact layer's overhead stays visible.
type ModuleResult struct {
	Diags    []Diagnostic
	Packages int
	// Timing is the cumulative analysis time per analyzer across all
	// packages. Loading (parse + typecheck) is accounted separately
	// under LoadTime because it is shared by every analyzer.
	Timing   map[string]time.Duration
	LoadTime time.Duration
}

// Unsuppressed reports how many diagnostics survived their lines'
// directives — the count that should gate CI.
func (r *ModuleResult) Unsuppressed() int {
	n := 0
	for _, d := range r.Diags {
		if !d.Suppressed {
			n++
		}
	}
	return n
}

// RunModule loads the packages at paths and applies analyzers to each
// in dependency order, so facts exported while analyzing a package are
// visible to every package that imports it — the ordering that makes
// transitive hotalloc and cross-package metriclint sound. The loader's
// memoization means shared dependencies are loaded once.
func RunModule(l *Loader, paths []string, analyzers []*Analyzer) (*ModuleResult, error) {
	res := &ModuleResult{Timing: make(map[string]time.Duration)}

	loadStart := time.Now()
	pkgs := make(map[string]*Package, len(paths))
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs[path] = pkg
	}
	order, err := dependencyOrder(pkgs)
	if err != nil {
		return nil, err
	}
	res.LoadTime = time.Since(loadStart)
	res.Packages = len(order)

	fs := NewFactSet()
	for _, pkg := range order {
		for _, a := range analyzers {
			start := time.Now()
			diags, err := RunPackageFacts(pkg, []*Analyzer{a}, fs)
			if err != nil {
				return nil, err
			}
			res.Timing[a.Name] += time.Since(start)
			res.Diags = append(res.Diags, diags...)
		}
	}
	sortDiagnostics(res.Diags)
	return res, nil
}

// dependencyOrder sorts packages so every package follows all of its
// in-set dependencies (DFS postorder over the import graph restricted
// to the set). Load order already guarantees acyclicity; the cycle
// check here is defensive.
func dependencyOrder(pkgs map[string]*Package) ([]*Package, error) {
	// Deterministic roots: iterate paths sorted.
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(pkgs))
	order := make([]*Package, 0, len(pkgs))
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %q", path)
		}
		state[path] = grey
		pkg := pkgs[path]
		for _, imp := range pkg.Types.Imports() {
			if _, ok := pkgs[imp.Path()]; ok {
				if err := visit(imp.Path()); err != nil {
					return err
				}
			}
		}
		state[path] = black
		order = append(order, pkg)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}
