package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directiveIndex records, per file and line, which analyzers an ignore
// directive silences. Two spellings are accepted, staticcheck-style:
//
//	//lint:ignore name1,name2 reason
//	//streamad:ignore name1,name2 reason
//
// The special name "all" silences every analyzer. A directive covers
// the line it sits on (end-of-line comment) and the line directly below
// it (comment-above form). The reason is mandatory: a bare directive is
// itself reported so suppressions stay auditable.
type directiveIndex struct {
	// ignores maps filename -> line -> analyzer-name set.
	ignores map[string]map[int]map[string]bool
	// malformed collects directives missing a reason.
	malformed []token.Position
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{ignores: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := trimCommentSlashes(c.Text)
				if !ok {
					continue
				}
				var rest string
				switch {
				case strings.HasPrefix(text, "lint:ignore"):
					rest = text[len("lint:ignore"):]
				case strings.HasPrefix(text, "streamad:ignore"):
					rest = text[len("streamad:ignore"):]
				default:
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					// Name without reason, or nothing at all.
					idx.malformed = append(idx.malformed, pos)
					continue
				}
				byLine := idx.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx.ignores[pos.Filename] = byLine
				}
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]bool)
							byLine[line] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return idx
}

// ignored reports whether a directive silences analyzer name at pos.
func (idx *directiveIndex) ignored(name string, pos token.Position) bool {
	byLine := idx.ignores[pos.Filename]
	if byLine == nil {
		return false
	}
	set := byLine[pos.Line]
	return set != nil && (set[name] || set["all"])
}
