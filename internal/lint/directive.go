package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directiveIndex records, per file and line, which analyzers an ignore
// directive silences and with what justification. Two spellings are
// accepted, staticcheck-style:
//
//	//lint:ignore name1,name2 reason
//	//streamad:ignore name1,name2 reason
//
// The special name "all" silences every analyzer. A directive covers
// the line it sits on (end-of-line comment) and the line directly below
// it (comment-above form). The reason is mandatory; the Directive
// analyzer reports bare directives so suppressions stay auditable.
type directiveIndex struct {
	// ignores maps filename -> line -> analyzer-name -> reason.
	ignores map[string]map[int]map[string]string
}

// parseIgnoreDirective splits one comment into the directive parts:
// the comma-separated analyzer names and the justification (which may
// be empty — callers decide whether that is an error).
func parseIgnoreDirective(text string) (names []string, reason string, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(text, "lint:ignore"):
		rest = text[len("lint:ignore"):]
	case strings.HasPrefix(text, "streamad:ignore"):
		rest = text[len("streamad:ignore"):]
	default:
		return nil, "", false
	}
	rest = strings.TrimSpace(rest)
	nameField, reason, _ := strings.Cut(rest, " ")
	for _, name := range strings.Split(nameField, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names, strings.TrimSpace(reason), true
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{ignores: make(map[string]map[int]map[string]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := trimCommentSlashes(c.Text)
				if !ok {
					continue
				}
				names, reason, ok := parseIgnoreDirective(text)
				if !ok || len(names) == 0 || reason == "" {
					// Bare or empty directives do not suppress anything;
					// the Directive analyzer reports them.
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]string)
					idx.ignores[pos.Filename] = byLine
				}
				for _, name := range names {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]string)
							byLine[line] = set
						}
						set[name] = reason
					}
				}
			}
		}
	}
	return idx
}

// ignored reports whether a directive silences analyzer name at pos,
// returning the directive's reason when it does.
func (idx *directiveIndex) ignored(name string, pos token.Position) (string, bool) {
	byLine := idx.ignores[pos.Filename]
	if byLine == nil {
		return "", false
	}
	set := byLine[pos.Line]
	if set == nil {
		return "", false
	}
	if r, ok := set[name]; ok {
		return r, true
	}
	r, ok := set["all"]
	return r, ok
}
