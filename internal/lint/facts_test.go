package lint

import (
	"bytes"
	"testing"
)

// TestVetxFactRoundTrip pins the serialization leg of the vet protocol:
// facts exported in one process must survive the gob trip through a
// vetx file and resolve under the same (analyzer, package, object,
// type) key in another.
func TestVetxFactRoundTrip(t *testing.T) {
	fs := NewFactSet()
	fs.store.export("hotalloc", "example.com/dep", "Grow", &AllocFact{Why: "append at dep.go:3:9"})
	fs.store.export("hotalloc", "example.com/dep", "Ring.Push", &AllocFact{Why: "slice literal at dep.go:9:2"})
	fs.store.export("metriclint", "example.com/dep", "", &MetricsFact{Families: map[string]MetricFamily{
		"streamad_x_total": {HelpPkg: "example.com/dep", TypePkg: "example.com/dep", Type: "counter", Labels: []string{"shard"}, LabelsAt: "dep.go:12:2", HasSample: true},
	}})

	data, err := fs.Encode()
	if err != nil {
		t.Fatal(err)
	}

	out := NewFactSet()
	if err := out.Decode(data, All()); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("decoded %d facts, want 3", out.Len())
	}
	var af AllocFact
	if !out.store.lookup("hotalloc", "example.com/dep", "Grow", &af) {
		t.Fatal("function fact missing after round trip")
	}
	if af.Why != "append at dep.go:3:9" {
		t.Errorf("Why = %q", af.Why)
	}
	if !out.store.lookup("hotalloc", "example.com/dep", "Ring.Push", &af) {
		t.Fatal("method fact missing after round trip")
	}
	var mf MetricsFact
	if !out.store.lookup("metriclint", "example.com/dep", "", &mf) {
		t.Fatal("package fact missing after round trip")
	}
	fam, ok := mf.Families["streamad_x_total"]
	if !ok || fam.Type != "counter" || len(fam.Labels) != 1 || fam.Labels[0] != "shard" {
		t.Errorf("family corrupted in round trip: %+v", fam)
	}

	// A key mismatch on any component must miss: wrong analyzer, wrong
	// package, wrong object.
	if out.store.lookup("detrand", "example.com/dep", "Grow", &af) {
		t.Error("fact resolved under the wrong analyzer")
	}
	if out.store.lookup("hotalloc", "example.com/other", "Grow", &af) {
		t.Error("fact resolved under the wrong package")
	}
	if out.store.lookup("hotalloc", "example.com/dep", "Shrink", &af) {
		t.Error("fact resolved under the wrong object")
	}
}

// TestVetxEncodeDeterministic pins byte-stable output: the go command
// caches vetx files by content, so nondeterministic encoding would
// defeat the cache.
func TestVetxEncodeDeterministic(t *testing.T) {
	build := func() []byte {
		fs := NewFactSet()
		fs.store.export("hotalloc", "example.com/b", "F", &AllocFact{Why: "make"})
		fs.store.export("hotalloc", "example.com/a", "G", &AllocFact{Why: "append"})
		fs.store.export("metriclint", "example.com/a", "", &MetricsFact{Families: map[string]MetricFamily{}})
		data, err := fs.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := build()
	for i := 0; i < 5; i++ {
		if next := build(); !bytes.Equal(first, next) {
			t.Fatalf("encoding differs between runs:\n%x\n%x", first, next)
		}
	}
}

// TestVetxDecodeFiltersAndRejects pins the tolerant-reader behaviour:
// fact types outside the selected analyzers are skipped (the go command
// caches more than one invocation consumes), empty input is a no-op,
// and corrupt input is an error, not silence.
func TestVetxDecodeFiltersAndRejects(t *testing.T) {
	fs := NewFactSet()
	fs.store.export("hotalloc", "example.com/dep", "F", &AllocFact{Why: "append"})
	data, err := fs.Encode()
	if err != nil {
		t.Fatal(err)
	}

	skipped := NewFactSet()
	if err := skipped.Decode(data, []*Analyzer{DetRand}); err != nil {
		t.Fatal(err)
	}
	if skipped.Len() != 0 {
		t.Errorf("decode with a factless registry kept %d facts, want 0", skipped.Len())
	}

	if err := NewFactSet().Decode(nil, All()); err != nil {
		t.Errorf("empty vetx input: %v, want nil", err)
	}
	if err := NewFactSet().Decode([]byte("garbage"), All()); err == nil {
		t.Error("corrupt vetx input decoded without error")
	}
}
