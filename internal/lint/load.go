package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package with the syntax the analyzers
// walk. Test files (*_test.go) are excluded: the invariants guard the
// shipped serving paths, and test-only allocations are fine.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives *directiveIndex
}

// NewPackage assembles a Package from already-parsed, already-checked
// parts. The vet driver uses it: under `go vet -vettool` the toolchain
// hands us file lists and export data per compilation unit, so parsing
// and type-checking happen outside the Loader.
func NewPackage(path, dir string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *Package {
	return &Package{
		Path:       path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: buildDirectiveIndex(fset, files),
	}
}

// Loader parses and type-checks packages for analysis. It resolves
// intra-module imports itself (the module layout maps import paths to
// directories directly) and defers everything else — the standard
// library — to the compile-from-source importer, so no export data or
// network is needed.
type Loader struct {
	// Root is the directory packages are resolved under.
	Root string
	// Module is the module path; import paths Module and Module/...
	// resolve into Root. When Module is empty the loader is in fixture
	// mode: any import path whose directory exists under Root is local —
	// the layout used by the analyzer test fixtures (testdata/src).
	Module string

	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader rooted at root. module may be empty for
// fixture mode.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:   make(map[string]*Package),
		busy:   make(map[string]bool),
	}
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// localDir maps an import path to a directory under Root, or "".
func (l *Loader) localDir(path string) string {
	if l.Module != "" {
		if path == l.Module {
			return l.Root
		}
		if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
			return filepath.Join(l.Root, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if d := l.localDir(path); d != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// Load parses and type-checks the package at the given import path
// (which must resolve locally), memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	dir := l.localDir(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %q is not a local package", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, err := parseDir(l.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: buildDirectiveIndex(l.Fset, files),
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file of dir in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ModulePackages walks Root and returns the import path of every
// package directory (one containing at least one non-test .go file),
// sorted. testdata, vendor and dot-directories are skipped.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.Module == "" {
		return nil, fmt.Errorf("lint: ModulePackages requires module mode")
	}
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") &&
				!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.Module)
				} else {
					paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
