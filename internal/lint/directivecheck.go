package lint

// Directive keeps the suppression mechanism itself honest. PR 5's
// directive layer documented that a bare //streamad:ignore would be
// reported, but the malformed list was collected and never surfaced —
// so a reason-less suppression silently suppressed nothing, and a typo
// in an analyzer name turned a deliberate exception into a latent
// diagnostic. Directive closes both holes at vet time:
//
//   - an ignore directive must carry a justification after the analyzer
//     names ("//streamad:ignore hotalloc reason..."),
//   - every name it lists must be a known analyzer (or "all"),
//   - it must name at least one analyzer.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "flags suppression directives with no reason or unknown analyzer names",
}

// Run is attached in init: runDirective validates names against All(),
// which includes Directive itself — a direct reference would be an
// initialization cycle.
func init() { Directive.Run = runDirective }

func runDirective(p *Pass) error {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	known["all"] = true
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := trimCommentSlashes(c.Text)
				if !ok {
					continue
				}
				names, reason, ok := parseIgnoreDirective(text)
				if !ok {
					continue
				}
				if len(names) == 0 {
					p.Reportf(c.Pos(), "suppression directive names no analyzers")
					continue
				}
				if reason == "" {
					p.Reportf(c.Pos(), "suppression directive missing reason: a bare ignore suppresses nothing")
				}
				for _, name := range names {
					if !known[name] {
						p.Reportf(c.Pos(), "suppression directive names unknown analyzer %q", name)
					}
				}
			}
		}
	}
	return nil
}
