package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand enforces the repo's deterministic-RNG contract: every source
// of randomness flows through internal/randstate, whose CountedSource
// records (seed, draws) so a restored checkpoint fast-forwards to the
// exact stream position and replays bit-identically.
//
// Flagged anywhere outside internal/randstate:
//
//   - any use of math/rand's package-level state (rand.Intn,
//     rand.Float64, rand.Seed, ...): the global source is shared across
//     goroutines and cannot be checkpointed;
//   - rand.NewSource / rand.NewZipf and the math/rand/v2 constructors:
//     raw sources bypass the draw counter, so a checkpoint cannot
//     restore their position;
//   - a time.Now()-derived seed in any RNG constructor (including
//     randstate's): wall-clock seeds make runs unreproducible.
//
// rand.New itself is fine — wrapping a *randstate.CountedSource is
// exactly the sanctioned pattern. Methods on a *rand.Rand value are
// fine for the same reason.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbids RNG construction outside internal/randstate and any global or time-seeded math/rand use",
	Run:  runDetRand,
}

// randstateSuffix identifies the one package allowed to touch raw
// sources (matched by suffix so fixtures can model it).
const randstateSuffix = "internal/randstate"

func runDetRand(p *Pass) error {
	exempt := strings.HasSuffix(p.Pkg.Path(), randstateSuffix)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if !exempt {
					checkRandSelector(p, n)
				}
			case *ast.CallExpr:
				checkTimeSeed(p, n)
			}
			return true
		})
	}
	return nil
}

// checkRandSelector flags forbidden references into math/rand[/v2].
func checkRandSelector(p *Pass, sel *ast.SelectorExpr) {
	obj := p.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	switch obj := obj.(type) {
	case *types.TypeName:
		return // rand.Source, rand.Rand, ... in declarations are fine.
	case *types.Func:
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // method on a constructed *rand.Rand
		}
		switch obj.Name() {
		case "New":
			return // must wrap a counted source; NewSource check guards the inside
		case "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			p.Reportf(sel.Pos(), "raw %s.%s bypasses internal/randstate; use randstate.NewCountedSource so checkpoints restore bit-identically", obj.Pkg().Name(), obj.Name())
			return
		}
		p.Reportf(sel.Pos(), "global math/rand state (%s.%s) is shared and not checkpointable; draw from a *rand.Rand built over randstate.NewCountedSource", obj.Pkg().Name(), obj.Name())
	case *types.Var:
		p.Reportf(sel.Pos(), "global math/rand state (%s.%s) is shared and not checkpointable", obj.Pkg().Name(), obj.Name())
	}
}

// checkTimeSeed flags time.Now-derived seeds inside RNG constructors.
func checkTimeSeed(p *Pass, call *ast.CallExpr) {
	fn := pkgFunc(p.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	isCtor := false
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		isCtor = fn.Name() == "New" || fn.Name() == "NewSource" || strings.HasPrefix(fn.Name(), "New")
	default:
		isCtor = strings.HasSuffix(fn.Pkg().Path(), randstateSuffix) && strings.HasPrefix(fn.Name(), "New")
	}
	if !isCtor {
		return
	}
	for _, arg := range call.Args {
		if containsCallTo(p.TypesInfo, arg, "time", "Now") {
			p.Reportf(arg.Pos(), "time-seeded RNG makes runs unreproducible; derive the seed from configuration")
		}
	}
}
