package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// StateSync turns the stale-checkpoint bug class into a vet failure.
// The framework's durability story (snapshots, WAL tails, live
// migration, warm paging) rests on every detector restoring
// bit-identically, which dies silently the day someone adds a field —
// an optimizer moment, an RNG position, a model snapshot — and forgets
// to thread it through Save/Load. Before this analyzer each subsystem
// needed a hand-written runtime bit-identity test to catch that.
//
// For every named struct type that participates in checkpointing — it
// declares both a save-side method (Save, MarshalBinary, PageOut) and a
// load-side one (Load, UnmarshalBinary, PageIn) — every field must be
// either:
//
//   - referenced somewhere in those methods (or in methods of the same
//     type they call, transitively within the package), i.e. it visibly
//     participates in the state round-trip; or
//   - annotated //streamad:transient <reason> on the field, declaring
//     it derived/scratch state that Load reconstructs or ignores.
//
// A transient annotation on a field that IS referenced by the state
// methods is also flagged, so annotations cannot rot into lies.
//
// Separately, any struct type gob-encoded in this package must not
// carry unexported fields without a transient annotation: gob silently
// drops them, which is exactly how an RNG position goes missing from a
// snapshot without any error surfacing.
var StateSync = &Analyzer{
	Name: "statesync",
	Doc:  "flags checkpoint-type fields neither serialized by Save/Load nor annotated //streamad:transient",
	Run:  runStateSync,
}

// saveSideNames / loadSideNames classify the method names that make a
// type a checkpoint participant.
var saveSideNames = map[string]bool{"Save": true, "MarshalBinary": true, "PageOut": true}
var loadSideNames = map[string]bool{"Load": true, "UnmarshalBinary": true, "PageIn": true}

func runStateSync(p *Pass) error {
	for _, ct := range collectCheckpointTypes(p) {
		checkFieldParity(p, ct)
	}
	checkGobStructs(p)
	return nil
}

// checkpointType is one named struct type with state methods.
type checkpointType struct {
	name       *types.TypeName
	structType *types.Struct
	structDecl *ast.StructType // syntax, for field annotations
	// methods maps method name -> declaration for every method of the
	// type found in this package.
	methods map[string]*ast.FuncDecl
	// stateMethods are the Save/Load-side roots.
	stateMethods []*ast.FuncDecl
}

func collectCheckpointTypes(p *Pass) []*checkpointType {
	byName := make(map[*types.TypeName]*checkpointType)

	// Struct declarations.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := p.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				structType, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				byName[tn] = &checkpointType{
					name:       tn,
					structType: structType,
					structDecl: st,
					methods:    make(map[string]*ast.FuncDecl),
				}
			}
		}
	}

	// Method declarations.
	forEachFuncDecl(p.Files, func(fd *ast.FuncDecl) {
		if fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
			return
		}
		fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		sig := fn.Type().(*types.Signature)
		named := namedRecvType(sig.Recv().Type())
		if named == nil {
			return
		}
		if ct, ok := byName[named.Obj()]; ok {
			ct.methods[fd.Name.Name] = fd
		}
	})

	var out []*checkpointType
	for _, ct := range byName {
		hasSave, hasLoad := false, false
		for name, fd := range ct.methods {
			if saveSideNames[name] {
				hasSave = true
				ct.stateMethods = append(ct.stateMethods, fd)
			}
			if loadSideNames[name] {
				hasLoad = true
				ct.stateMethods = append(ct.stateMethods, fd)
			}
		}
		if hasSave && hasLoad {
			out = append(out, ct)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name.Name() < out[j].name.Name() })
	return out
}

// checkFieldParity verifies every field of ct is referenced by the
// state methods (transitively through same-type method calls) or
// annotated transient.
func checkFieldParity(p *Pass, ct *checkpointType) {
	// Grow the method set to the fixpoint of same-type calls reachable
	// from the state methods.
	reached := make(map[*ast.FuncDecl]bool)
	var frontier []*ast.FuncDecl
	for _, fd := range ct.stateMethods {
		if !reached[fd] {
			reached[fd] = true
			frontier = append(frontier, fd)
		}
	}
	for len(frontier) > 0 {
		fd := frontier[0]
		frontier = frontier[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(p.TypesInfo, call)
			if callee == nil {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			named := namedRecvType(sig.Recv().Type())
			if named == nil || named.Obj() != ct.name {
				return true
			}
			if target, ok := ct.methods[callee.Name()]; ok && !reached[target] {
				reached[target] = true
				frontier = append(frontier, target)
			}
			return true
		})
	}

	// Collect the direct fields referenced in the reached bodies.
	covered := make(map[*types.Var]bool)
	for fd := range reached {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel := p.TypesInfo.Selections[se]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			recv := namedRecvType(sel.Recv())
			if recv == nil || recv.Obj() != ct.name {
				return true
			}
			// Index()[0] is the direct field of ct reached first, even
			// when the selection drills into an embedded struct.
			covered[ct.structType.Field(sel.Index()[0])] = true
			return true
		})
	}

	// Judge each field.
	fieldIdx := 0
	for _, fieldDecl := range ct.structDecl.Fields.List {
		names := len(fieldDecl.Names)
		if names == 0 {
			names = 1 // embedded field
		}
		for i := 0; i < names; i++ {
			field := ct.structType.Field(fieldIdx)
			fieldIdx++
			transient, reasonOK := transientAnnotation(fieldDecl)
			switch {
			case transient && !reasonOK:
				p.Reportf(field.Pos(), "field %s.%s: //streamad:transient annotation missing reason", ct.name.Name(), field.Name())
			case transient && covered[field]:
				p.Reportf(field.Pos(), "field %s.%s is marked //streamad:transient but is referenced by the state methods; drop the annotation or the reference", ct.name.Name(), field.Name())
			case !transient && !covered[field]:
				p.Reportf(field.Pos(), "field %s.%s is neither referenced in %s's Save/Load path nor annotated //streamad:transient <reason>; a checkpoint restore will silently lose it", ct.name.Name(), field.Name(), ct.name.Name())
			}
		}
	}
}

// transientAnnotation reports whether the field declaration carries a
// //streamad:transient marker (doc comment or trailing comment) and
// whether it includes the mandatory reason.
func transientAnnotation(field *ast.Field) (present, reasonOK bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := trimCommentSlashes(c.Text)
			if !ok || !hasPrefixWord(text, "streamad:transient") {
				continue
			}
			present = true
			if rest := trimSpace(text[len("streamad:transient"):]); rest != "" {
				reasonOK = true
			}
		}
	}
	return present, reasonOK
}

// checkGobStructs flags unexported, unannotated fields of struct types
// that flow into gob encoders or decoders in this package.
func checkGobStructs(p *Pass) {
	// Map named types declared here to their struct syntax for
	// annotation lookup.
	declOf := make(map[*types.TypeName]*ast.StructType)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if tn, ok := p.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					declOf[tn] = st
				}
			}
		}
	}

	reported := make(map[*types.Var]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			se, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (se.Sel.Name != "Encode" && se.Sel.Name != "Decode") {
				return true
			}
			fn, ok := p.TypesInfo.Uses[se.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
				return true
			}
			argType := p.TypesInfo.Types[call.Args[0]].Type
			if argType == nil {
				return true
			}
			for {
				if ptr, ok := argType.Underlying().(*types.Pointer); ok {
					argType = ptr.Elem()
					continue
				}
				break
			}
			named, ok := argType.(*types.Named)
			if !ok {
				return true
			}
			structType, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			st, local := declOf[named.Obj()]
			if !local {
				return true // declared elsewhere; checked in its own package
			}
			fieldIdx := 0
			for _, fieldDecl := range st.Fields.List {
				names := len(fieldDecl.Names)
				if names == 0 {
					names = 1
				}
				for i := 0; i < names; i++ {
					field := structType.Field(fieldIdx)
					fieldIdx++
					if field.Exported() || reported[field] {
						continue
					}
					if present, reasonOK := transientAnnotation(fieldDecl); present && reasonOK {
						continue
					}
					reported[field] = true
					p.Reportf(field.Pos(), "unexported field %s.%s is silently dropped by gob; export it or annotate //streamad:transient <reason>", named.Obj().Name(), field.Name())
				}
			}
			return true
		})
	}
}
