// Package lint implements streamadlint, a suite of static analyzers
// that machine-check the repository's concurrency, determinism and
// hot-path invariants:
//
//   - hotalloc: no allocating constructs inside //streamad:hotpath
//     functions (the 0 allocs/op serving kernels).
//   - detrand: every RNG flows through internal/randstate so
//     checkpoints restore bit-identically; no global math/rand state,
//     no time-based seeds.
//   - floatsafe: no division by a possibly-zero length, no
//     math.Sqrt/Log of a raw difference, no floats marshalled to JSON
//     from structs that do not declare the finite-guard contract.
//   - lockdiscipline: no field accessed both atomically and plainly, no
//     detector/model calls while holding a //streamad:membership mutex,
//     no Lock without a matching Unlock in the same function.
//   - ctxgoroutine: goroutines are launched only inside
//     //streamad:lifecycle helpers whose shutdown is joined by a
//     Close/Stop/WaitFineTune path.
//
// The suite mirrors the golang.org/x/tools/go/analysis shape (Analyzer,
// Pass, Reportf) but is built entirely on the standard library's go/ast
// and go/types, because this module deliberately has no third-party
// dependencies. cmd/streamadlint drives it either standalone or as a
// `go vet -vettool` unitchecker.
//
// Findings are suppressed with a directive on the offending line or the
// line above:
//
//	//lint:ignore hotalloc reason...
//	//streamad:ignore detrand,floatsafe reason...
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer flags.
	Doc string
	// FactTypes declares the fact types the analyzer exports and
	// imports, as pointer-to-struct prototypes (required for the gob
	// round-trip through vetx files).
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	directives *directiveIndex
	facts      *factStore
	report     func(Diagnostic)
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
// A covered ignore directive does not delete the finding — it survives
// with Suppressed set and the directive's reason attached, so tooling
// (-json mode, suppression audits) can see the full picture.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
	// Reason is the justification text of the covering ignore
	// directive; empty unless Suppressed.
	Reason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding; an ignore directive covering its line
// marks it suppressed rather than reported.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	d := Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)}
	if p.directives != nil {
		if reason, ok := p.directives.ignored(p.Analyzer.Name, position); ok {
			d.Suppressed = true
			d.Reason = reason
		}
	}
	p.report(d)
}

// All returns the full analyzer catalogue in stable order.
func All() []*Analyzer {
	return []*Analyzer{HotAlloc, DetRand, FloatSafe, LockDiscipline, CtxGoroutine, StateSync, MetricLint, Directive}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies analyzers to a loaded package with a fresh fact
// set and returns the surviving (unsuppressed) diagnostics sorted by
// position. Cross-package analyzers want RunPackageFacts or RunModule,
// which thread one fact set through every package.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := RunPackageFacts(pkg, analyzers, NewFactSet())
	if err != nil {
		return nil, err
	}
	return dropSuppressed(diags), nil
}

// RunPackageFacts applies analyzers to one package, reading and
// writing cross-package facts through fs. Suppressed diagnostics are
// included (with their directive reasons); filter with dropSuppressed
// via RunPackage or keep them for audit output.
func RunPackageFacts(pkg *Package, analyzers []*Analyzer, fs *FactSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			directives: pkg.directives,
			facts:      fs.store,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

func dropSuppressed(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// ---- shared AST/type helpers ----

// hasMarker reports whether a comment group contains the given
// machine-readable marker (e.g. "streamad:hotpath") as its own comment
// line or at the start of one.
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text, ok := trimCommentSlashes(c.Text); ok && hasPrefixWord(text, marker) {
			return true
		}
	}
	return false
}

// trimCommentSlashes strips the // or /* */ framing from one comment.
func trimCommentSlashes(text string) (string, bool) {
	if len(text) >= 2 && text[:2] == "//" {
		return trimSpace(text[2:]), true
	}
	if len(text) >= 4 && text[:2] == "/*" {
		return trimSpace(text[2 : len(text)-2]), true
	}
	return "", false
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// hasPrefixWord reports whether s is word or starts with word followed
// by a space, tab or '('.
func hasPrefixWord(s, word string) bool {
	if len(s) < len(word) || s[:len(word)] != word {
		return false
	}
	if len(s) == len(word) {
		return true
	}
	switch s[len(word)] {
	case ' ', '\t', '(':
		return true
	}
	return false
}

// pkgFunc resolves a call to a package-level function (not a method) and
// returns it, or nil.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// isPkgCall reports whether call invokes the package-level function
// pkgPath.name.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := pkgFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isConversion reports whether call is a type conversion, returning the
// target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// enclosingFuncs walks every function declaration and literal in the
// file set of a pass, calling fn with the innermost enclosing FuncDecl
// for each node. FuncLits report the FuncDecl that lexically contains
// them (nil at package scope).
func forEachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fn(fd)
			}
		}
	}
}

// containsCallTo reports whether expr contains (at any depth) a call to
// pkgPath.name.
func containsCallTo(info *types.Info, expr ast.Expr, pkgPath, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPkgCall(info, call, pkgPath, name) {
			found = true
			return false
		}
		return true
	})
	return found
}
