package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocating constructs inside functions marked
// //streamad:hotpath. The marker is the machine-readable form of the
// repo's 0-allocs/op contract for the serving kernels (Detector.Step,
// the ForwardInto/BackwardInto families, scorer updates): AllocsPerRun
// tests catch a regression at test time, hotalloc catches it at vet
// time and points at the construct that allocates.
//
// Flagged inside a hotpath body: make, new, append, slice/map/array
// composite literals, address-taken struct literals, closures (func
// literals capture their environment on the heap), go statements,
// string concatenation, string<->[]byte/[]rune conversions, and calls
// into fmt or errors (variadic ...interface{} boxes every argument).
//
// Deliberate one-time lazy initialization on a hot path is suppressed
// line-by-line with //streamad:ignore hotalloc <reason>. The analyzer
// checks constructs of the marked function itself, not of its callees:
// mark the whole call chain (the kernels it guards are leaf-level), and
// keep AllocsPerRun tests as the end-to-end backstop.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs inside //streamad:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) error {
	forEachFuncDecl(p.Files, func(fd *ast.FuncDecl) {
		if fd.Body == nil || !hasMarker(fd.Doc, "streamad:hotpath") {
			return
		}
		checkHotBody(p, fd.Body)
	})
	return nil
}

func checkHotBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n)
		case *ast.CompositeLit:
			t := p.TypesInfo.Types[n].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates on a hot path")
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates on a hot path")
			case *types.Array:
				// Arrays are values; only flag when address-taken below.
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "address-taken composite literal escapes to the heap on a hot path")
				}
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure allocates (captured environment) on a hot path")
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement allocates a goroutine on a hot path")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypesInfo.Types[n].Type; t != nil && isString(t) {
					p.Reportf(n.Pos(), "string concatenation allocates on a hot path")
				}
			}
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr) {
	switch {
	case isBuiltin(p.TypesInfo, call, "append"):
		p.Reportf(call.Pos(), "append may grow its backing array on a hot path; use a preallocated buffer")
	case isBuiltin(p.TypesInfo, call, "make"):
		p.Reportf(call.Pos(), "make allocates on a hot path; hoist the buffer into reusable scratch")
	case isBuiltin(p.TypesInfo, call, "new"):
		p.Reportf(call.Pos(), "new allocates on a hot path; hoist the value into reusable scratch")
	default:
		if to, ok := isConversion(p.TypesInfo, call); ok {
			if len(call.Args) == 1 {
				from := p.TypesInfo.Types[call.Args[0]].Type
				if from != nil && stringBytesConversion(from, to) {
					p.Reportf(call.Pos(), "string/byte-slice conversion copies on a hot path")
				}
			}
			return
		}
		if fn := pkgFunc(p.TypesInfo, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt", "errors":
				p.Reportf(call.Pos(), "%s.%s allocates (interface boxing) on a hot path", fn.Pkg().Name(), fn.Name())
			}
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func stringBytesConversion(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}
