package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocating constructs inside functions marked
// //streamad:hotpath. The marker is the machine-readable form of the
// repo's 0-allocs/op contract for the serving kernels (Detector.Step,
// the ForwardInto/BackwardInto families, scorer updates): AllocsPerRun
// tests catch a regression at test time, hotalloc catches it at vet
// time and points at the construct that allocates.
//
// Flagged inside a hotpath body: make, new, append, slice/map/array
// composite literals, address-taken struct literals, closures (func
// literals capture their environment on the heap), go statements,
// string concatenation, string<->[]byte/[]rune conversions, and calls
// into fmt or errors (variadic ...interface{} boxes every argument).
//
// The check is transitive: every function in the module carries an
// AllocFact (does its body allocate, directly or through anything it
// statically calls?), propagated across package boundaries through the
// fact layer. A hotpath kernel calling an allocating helper in another
// package is flagged at the call site with the chain that allocates.
// Functions themselves marked //streamad:hotpath are trusted
// non-allocating (their own bodies are checked, and their suppressions
// audited); dynamic calls through interfaces are outside the static
// reach and stay covered by the AllocsPerRun backstop.
//
// Deliberate one-time lazy initialization on a hot path is suppressed
// line-by-line with //streamad:ignore hotalloc <reason>; a suppressed
// construct is also excluded from its function's AllocFact, so an
// audited lazy-init helper does not poison every hotpath caller.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "flags allocating constructs inside //streamad:hotpath functions, transitively through static calls",
	FactTypes: []Fact{(*AllocFact)(nil)},
	Run:       runHotAlloc,
}

// AllocFact marks a function whose body allocates, directly or through
// a static callee. Why records one representative cause for the
// diagnostic chain ("slice literal", "calls streamad/internal/x.F").
type AllocFact struct {
	Why string
}

// AFact implements Fact.
func (*AllocFact) AFact() {}

func runHotAlloc(p *Pass) error {
	// Pass 1: classify every declared function — is it hotpath-marked,
	// does its body contain an (unsuppressed) allocating construct, and
	// which functions does it statically call?
	type funcInfo struct {
		decl    *ast.FuncDecl
		hotpath bool
		why     string // non-empty once known to allocate
		callees []*types.Func
	}
	infos := make(map[*types.Func]*funcInfo)
	var order []*types.Func
	forEachFuncDecl(p.Files, func(fd *ast.FuncDecl) {
		fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok || fd.Body == nil {
			return
		}
		fi := &funcInfo{decl: fd, hotpath: hasMarker(fd.Doc, "streamad:hotpath")}
		fi.why = p.directAllocReason(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := staticCallee(p.TypesInfo, call); callee != nil {
					fi.callees = append(fi.callees, callee)
				}
			}
			return true
		})
		infos[fn] = fi
		order = append(order, fn)
	})

	// Pass 2: propagate allocation through the local call graph to a
	// fixpoint. Cross-package callees contribute through their facts
	// (their packages were analyzed first); stdlib fmt/errors calls are
	// known allocators, the rest of the stdlib is out of scope.
	calleeWhy := func(callee *types.Func) string {
		if target, ok := infos[callee]; ok { // same package
			if target.hotpath || target.why == "" {
				return ""
			}
			return fmt.Sprintf("calls %s, which allocates (%s)", qualifiedName(callee), target.why)
		}
		if callee.Pkg() == nil || callee.Pkg() == p.Pkg {
			return ""
		}
		switch callee.Pkg().Path() {
		case "fmt", "errors":
			return fmt.Sprintf("%s.%s allocates (interface boxing)", callee.Pkg().Name(), callee.Name())
		}
		var fact AllocFact
		if p.ImportObjectFact(callee, &fact) {
			return fmt.Sprintf("calls %s, which allocates (%s)", qualifiedName(callee), fact.Why)
		}
		return ""
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			fi := infos[fn]
			if fi.why != "" || fi.hotpath {
				continue
			}
			for _, callee := range fi.callees {
				if why := calleeWhy(callee); why != "" {
					fi.why = why
					changed = true
					break
				}
			}
		}
	}
	for _, fn := range order {
		if fi := infos[fn]; fi.why != "" && !fi.hotpath {
			p.ExportObjectFact(fn, &AllocFact{Why: fi.why})
		}
	}

	// Pass 3: check hotpath bodies — direct constructs as before, plus
	// static calls to anything the facts say allocates.
	for _, fn := range order {
		fi := infos[fn]
		if !fi.hotpath {
			continue
		}
		checkHotBody(p, fi.decl.Body)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(p.TypesInfo, call)
			if callee == nil {
				return true
			}
			if target, ok := infos[callee]; ok {
				if !target.hotpath && target.why != "" {
					p.Reportf(call.Pos(), "call to %s allocates on a hot path: %s", qualifiedName(callee), target.why)
				}
				return true
			}
			if callee.Pkg() == nil || callee.Pkg() == p.Pkg {
				return true
			}
			switch callee.Pkg().Path() {
			case "fmt", "errors":
				// Reported by checkHotCall with the established message.
				return true
			}
			var fact AllocFact
			if p.ImportObjectFact(callee, &fact) {
				p.Reportf(call.Pos(), "call to %s allocates on a hot path: %s", qualifiedName(callee), fact.Why)
			}
			return true
		})
	}
	return nil
}

// directAllocReason reports the first allocating construct in body that
// no hotalloc suppression covers, as a short reason string ("" when the
// body is allocation-free).
func (p *Pass) directAllocReason(body *ast.BlockStmt) string {
	reason := ""
	suppressed := func(pos token.Pos) bool {
		if p.directives == nil {
			return false
		}
		_, ok := p.directives.ignored("hotalloc", p.Fset.Position(pos))
		return ok
	}
	found := func(pos token.Pos, what string) {
		if reason == "" && !suppressed(pos) {
			reason = fmt.Sprintf("%s at %s", what, p.Fset.Position(pos))
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(p.TypesInfo, n, "append"):
				found(n.Pos(), "append")
			case isBuiltin(p.TypesInfo, n, "make"):
				found(n.Pos(), "make")
			case isBuiltin(p.TypesInfo, n, "new"):
				found(n.Pos(), "new")
			default:
				if to, ok := isConversion(p.TypesInfo, n); ok && len(n.Args) == 1 {
					from := p.TypesInfo.Types[n.Args[0]].Type
					if from != nil && stringBytesConversion(from, to) {
						found(n.Pos(), "string/byte-slice conversion")
					}
				}
			}
		case *ast.CompositeLit:
			if t := p.TypesInfo.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					found(n.Pos(), "slice literal")
				case *types.Map:
					found(n.Pos(), "map literal")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					found(n.Pos(), "address-taken composite literal")
				}
			}
		case *ast.FuncLit:
			found(n.Pos(), "closure")
			return false
		case *ast.GoStmt:
			found(n.Pos(), "go statement")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypesInfo.Types[n].Type; t != nil && isString(t) {
					found(n.Pos(), "string concatenation")
				}
			}
		}
		return true
	})
	return reason
}

// staticCallee resolves call to the concrete function or method it
// statically invokes, or nil for builtins, conversions, function-typed
// variables and interface dispatch.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil // dynamic dispatch: unknowable statically
		}
	}
	return fn
}

// qualifiedName renders pkg.F or pkg.(T).M for diagnostics.
func qualifiedName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecvType(sig.Recv().Type()); named != nil {
			name = "(" + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func checkHotBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n)
		case *ast.CompositeLit:
			t := p.TypesInfo.Types[n].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates on a hot path")
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates on a hot path")
			case *types.Array:
				// Arrays are values; only flag when address-taken below.
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "address-taken composite literal escapes to the heap on a hot path")
				}
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure allocates (captured environment) on a hot path")
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement allocates a goroutine on a hot path")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypesInfo.Types[n].Type; t != nil && isString(t) {
					p.Reportf(n.Pos(), "string concatenation allocates on a hot path")
				}
			}
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr) {
	switch {
	case isBuiltin(p.TypesInfo, call, "append"):
		p.Reportf(call.Pos(), "append may grow its backing array on a hot path; use a preallocated buffer")
	case isBuiltin(p.TypesInfo, call, "make"):
		p.Reportf(call.Pos(), "make allocates on a hot path; hoist the buffer into reusable scratch")
	case isBuiltin(p.TypesInfo, call, "new"):
		p.Reportf(call.Pos(), "new allocates on a hot path; hoist the value into reusable scratch")
	default:
		if to, ok := isConversion(p.TypesInfo, call); ok {
			if len(call.Args) == 1 {
				from := p.TypesInfo.Types[call.Args[0]].Type
				if from != nil && stringBytesConversion(from, to) {
					p.Reportf(call.Pos(), "string/byte-slice conversion copies on a hot path")
				}
			}
			return
		}
		if fn := pkgFunc(p.TypesInfo, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt", "errors":
				p.Reportf(call.Pos(), "%s.%s allocates (interface boxing) on a hot path", fn.Pkg().Name(), fn.Name())
			}
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func stringBytesConversion(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}
