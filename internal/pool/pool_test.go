package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsEverything(t *testing.T) {
	p := NewScoring(3)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Submit(func() {
			n.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestRunJoinsAllTasks(t *testing.T) {
	p := NewScoring(2)
	defer p.Close()
	for round := 0; round < 50; round++ {
		var n atomic.Int64
		fns := make([]func(), 7)
		for i := range fns {
			fns[i] = func() { n.Add(1) }
		}
		p.Run(fns...)
		if n.Load() != 7 {
			t.Fatalf("round %d: Run returned with %d of 7 tasks done", round, n.Load())
		}
	}
}

// TestRunFromInsideWorker is the deadlock regression: a Run issued from
// a pool task, with every worker busy on such tasks, must still finish
// because the caller helps itself to unclaimed work.
func TestRunFromInsideWorker(t *testing.T) {
	p := NewScoring(2)
	defer p.Close()
	var done sync.WaitGroup
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		done.Add(1)
		p.Submit(func() {
			defer done.Done()
			p.Run(
				func() { n.Add(1) },
				func() { n.Add(1) },
				func() { n.Add(1) },
			)
		})
	}
	ch := make(chan struct{})
	go func() { done.Wait(); close(ch) }() //nolint — test helper, joined below
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("nested Run deadlocked")
	}
	if n.Load() != 24 {
		t.Fatalf("ran %d of 24 nested tasks", n.Load())
	}
}

func TestPoolCloseIdempotentAndInlineAfter(t *testing.T) {
	p := NewScoring(1)
	p.Close()
	p.Close()
	ran := false
	p.Submit(func() { ran = true })
	if !ran {
		t.Fatal("Submit after Close must run inline")
	}
	n := 0
	p.Run(func() { n++ }, func() { n++ })
	if n != 2 {
		t.Fatal("Run after Close must run inline")
	}
}

func TestPoolGoroutineCountBounded(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewScoring(4)
	var wg sync.WaitGroup
	for i := 0; i < 1000; i++ {
		wg.Add(1)
		p.Submit(func() { wg.Done() })
	}
	wg.Wait()
	during := runtime.NumGoroutine()
	if during > before+4+2 {
		t.Fatalf("goroutines grew with task count: %d -> %d", before, during)
	}
	p.Close()
}

func TestTrainerRunsAndCounts(t *testing.T) {
	tr := NewTrainer(2)
	defer tr.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		tr.Submit("s", func() {
			n.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if n.Load() != 20 {
		t.Fatalf("ran %d of 20 jobs", n.Load())
	}
	st := tr.Stats()
	if st.Completed != 20 || st.Slots != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTrainerFairness floods the queue from one noisy stream and one
// quiet one with a single busy slot: the quiet stream's lone job must
// not wait behind the noisy stream's whole backlog.
func TestTrainerFairness(t *testing.T) {
	tr := NewTrainer(1)
	defer tr.Close()
	gate := make(chan struct{})
	started := make(chan string, 64)
	tr.Submit("noisy", func() { <-gate }) // occupies the slot
	for i := 0; i < 10; i++ {
		tr.Submit("noisy", func() { started <- "noisy" })
	}
	tr.Submit("quiet", func() { started <- "quiet" })
	close(gate)
	first := <-started
	if first != "quiet" {
		t.Fatalf("first dequeued stream = %q, want the least-recently-served %q", first, "quiet")
	}
}

func TestTrainerCancel(t *testing.T) {
	tr := NewTrainer(1)
	gate := make(chan struct{})
	tr.Submit("a", func() { <-gate }) // hold the slot so the next job stays queued
	ran := make(chan struct{})
	cancel := tr.Submit("b", func() { close(ran) })
	if !cancel() {
		t.Fatal("cancel of a queued job must win")
	}
	if cancel() {
		t.Fatal("second cancel must report false")
	}
	close(gate)
	tr.Close()
	select {
	case <-ran:
		t.Fatal("canceled job ran anyway")
	default:
	}
	if got := tr.Stats().Canceled; got != 1 {
		t.Fatalf("canceled count = %d, want 1", got)
	}
}
