// Package pool provides the bounded worker pools behind the serving
// stack's goroutine economy. Before it existed, concurrency scaled with
// the fleet: every ensemble member owned a persistent goroutine and
// every async fine-tune spawned a fresh trainer — at a million streams
// that is tens of millions of goroutines. The pools invert the model:
// a fixed worker count scales with the machine (GOMAXPROCS for scoring,
// K slots for training) and streams become passive tasks scheduled onto
// it.
//
// Two pools with different disciplines live here:
//
//   - Pool is the scoring pool: an unbounded FIFO of ready-to-run tasks
//     drained by N workers. Submit is fire-and-forget (the ingest
//     dispatcher's per-stream batch drains); Run is a help-first
//     fork-join for intra-task parallelism (ensemble members): the
//     caller enqueues claimable tasks and then claims unclaimed ones
//     itself, so a Run issued from inside a pool worker can never
//     deadlock — in the worst case the caller runs everything inline.
//
//   - Trainer is the fine-tune pool: K slots drained from a priority
//     queue ordered by least-recently-served stream, so one drift-storm
//     stream cannot starve the fleet's model updates. Work is submitted
//     as a closure that captures its own training snapshot at dequeue
//     time, so queued fine-tunes pin no deep copies.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of workers draining an unbounded FIFO task
// queue. The zero value is not usable; call NewScoring.
type Pool struct {
	mu      sync.Mutex
	cond    sync.Cond
	queue   []func()
	closed  bool
	workers int
	wg      sync.WaitGroup

	queued    atomic.Int64 // tasks waiting in the FIFO
	running   atomic.Int64 // tasks being executed by workers
	completed atomic.Uint64
}

// NewScoring starts a scoring pool with the given worker count
// (<= 0 selects GOMAXPROCS).
//
//streamad:lifecycle — owns the worker goroutines; Close joins them.
func NewScoring(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond.L = &p.mu
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// worker drains the FIFO until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.queued.Add(-1)
		p.running.Add(1)
		fn()
		p.running.Add(-1)
		p.completed.Add(1)
	}
}

// Submit enqueues a fire-and-forget task. Tasks run in submission order
// relative to one another (FIFO hand-off to workers), though completion
// order depends on task durations. Submitting to a closed pool runs the
// task inline so no work is silently lost during shutdown.
func (p *Pool) Submit(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fn()
		return
	}
	p.queue = append(p.queue, fn)
	p.queued.Add(1)
	p.mu.Unlock()
	p.cond.Signal()
}

// runTask is one claimable unit of a Run fork-join. state moves
// 0 (unclaimed) → 1 (claimed); exactly one claimant runs the task.
type runTask struct {
	fn    func()
	state atomic.Int32
	done  chan struct{}
}

// claim attempts to take ownership; the winner must run fn and close
// done.
func (t *runTask) claim() bool { return t.state.CompareAndSwap(0, 1) }

// Run executes every task and returns when all have finished. It is the
// help-first fork-join: tasks are published to the pool, and the caller
// then claims still-unclaimed tasks (newest first, the ones least likely
// to have been picked up) and runs them inline, waiting only for tasks a
// worker actually claimed. Because the caller always makes progress on
// unclaimed work, Run is deadlock-free even when invoked from inside a
// pool worker with every other worker busy.
func (p *Pool) Run(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 {
		fns[0]()
		return
	}
	tasks := make([]*runTask, len(fns))
	for i, fn := range fns {
		tasks[i] = &runTask{fn: fn, done: make(chan struct{})}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for _, t := range tasks {
			t.fn()
		}
		return
	}
	for _, t := range tasks {
		t := t
		p.queue = append(p.queue, func() {
			if t.claim() {
				t.fn()
			}
			close(t.done)
		})
	}
	p.queued.Add(int64(len(tasks)))
	p.mu.Unlock()
	p.cond.Broadcast()
	// Help: claim from the back (workers drain from the front). A task
	// the caller wins is run inline and needs no join; its queued wrapper
	// later loses the claim and degenerates to a no-op.
	mine := make([]bool, len(tasks))
	for i := len(tasks) - 1; i >= 0; i-- {
		if tasks[i].claim() {
			mine[i] = true
			tasks[i].fn()
		}
	}
	// Join only the tasks a worker claimed: their wrappers close done
	// right after running them.
	for i, t := range tasks {
		if !mine[i] {
			<-t.done
		}
	}
}

// Stats is a point-in-time snapshot of pool load, for the
// streamad_pool_* metric families.
type Stats struct {
	Workers   int
	Queued    int64
	Running   int64
	Completed uint64
}

// Stats snapshots the pool counters; safe from any goroutine.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:   p.workers,
		Queued:    p.queued.Load(),
		Running:   p.running.Load(),
		Completed: p.completed.Load(),
	}
}

// Close stops the workers after the queue drains and joins them. Safe to
// call twice; Submit after Close runs tasks on the caller.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
