package pool

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// Trainer is the global fine-tune pool: drift-triggered training jobs
// compete for K slots instead of each spawning a goroutine. The queue is
// a priority queue keyed by how recently each stream was served — the
// stream that trained longest ago dequeues first, FIFO among ties — so
// a single drift-storming stream cannot monopolize the slots while the
// rest of the fleet's models go stale.
//
// Jobs are closures that capture their own training snapshot when they
// start running (lazily at dequeue), so however deep the queue grows it
// pins no deep-copied training sets.
type Trainer struct {
	mu     sync.Mutex
	cond   sync.Cond
	q      trainHeap
	served map[string]uint64 // per-key tick of the most recent dequeue
	tick   uint64            // logical clock: bumps on every submit/dequeue
	closed bool
	slots  int
	wg     sync.WaitGroup

	queued    atomic.Int64
	running   atomic.Int64
	completed atomic.Uint64
	canceled  atomic.Uint64
}

// maxServedKeys bounds the fairness map; beyond it the history resets,
// which only costs momentarily coarser ordering, never correctness.
const maxServedKeys = 65536

// NewTrainer starts a trainer pool with k slots (<= 0 selects 2).
//
//streamad:lifecycle — owns the slot goroutines; Close joins them.
func NewTrainer(k int) *Trainer {
	if k <= 0 {
		k = 2
	}
	t := &Trainer{slots: k, served: make(map[string]uint64)}
	t.q.owner = t
	t.cond.L = &t.mu
	t.wg.Add(k)
	for i := 0; i < k; i++ {
		go t.slot()
	}
	return t
}

// Slots returns the fixed slot count.
func (t *Trainer) Slots() int { return t.slots }

// trainJob states: 0 queued, 1 claimed by a slot, 2 canceled.
type trainJob struct {
	key   string
	run   func()
	seq   uint64 // submission order, the tie-break
	state atomic.Int32
	index int // heap index, maintained by trainHeap
	// servedAt is the key's last-served tick at submission; refreshed
	// against the live map at comparison time via the heap's owner.
}

// trainHeap orders jobs least-recently-served first, submission order
// among ties. Less consults the owner's served map so a key trained
// moments ago sinks behind keys still waiting.
type trainHeap struct {
	jobs  []*trainJob
	owner *Trainer
}

func (h *trainHeap) Len() int { return len(h.jobs) }
func (h *trainHeap) Less(i, j int) bool {
	si := h.owner.served[h.jobs[i].key]
	sj := h.owner.served[h.jobs[j].key]
	if si != sj {
		return si < sj
	}
	return h.jobs[i].seq < h.jobs[j].seq
}
func (h *trainHeap) Swap(i, j int) {
	h.jobs[i], h.jobs[j] = h.jobs[j], h.jobs[i]
	h.jobs[i].index = i
	h.jobs[j].index = j
}
func (h *trainHeap) Push(x interface{}) {
	j := x.(*trainJob)
	j.index = len(h.jobs)
	h.jobs = append(h.jobs, j)
}
func (h *trainHeap) Pop() interface{} {
	old := h.jobs
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	h.jobs = old[:n-1]
	return j
}

// Submit queues one fine-tune for the stream key. run executes on a pool
// slot; it must capture its training snapshot itself when it runs. The
// returned cancel reports true when it won the race against dequeue —
// the job will never run and the caller owns its cleanup; false means a
// slot has already claimed (or finished) it.
func (t *Trainer) Submit(key string, run func()) (cancel func() bool) {
	j := &trainJob{key: key, run: run}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		run()
		return func() bool { return false }
	}
	t.tick++
	j.seq = t.tick
	heap.Push(&t.q, j)
	t.queued.Add(1)
	t.mu.Unlock()
	t.cond.Signal()
	return func() bool {
		if !j.state.CompareAndSwap(0, 2) {
			return false
		}
		t.canceled.Add(1)
		t.queued.Add(-1)
		// The heap entry stays until a slot pops and discards it; lazy
		// deletion keeps cancel O(1) without index juggling under races.
		return true
	}
}

// slot is one training slot: it pops the least-recently-served runnable
// job, stamps the key as served, and runs it.
func (t *Trainer) slot() {
	defer t.wg.Done()
	for {
		t.mu.Lock()
		var j *trainJob
		for j == nil {
			for t.q.Len() == 0 && !t.closed {
				t.cond.Wait()
			}
			if t.q.Len() == 0 && t.closed {
				t.mu.Unlock()
				return
			}
			cand := heap.Pop(&t.q).(*trainJob)
			if cand.state.CompareAndSwap(0, 1) {
				j = cand
			}
			// else: canceled while queued; drop it and pop again.
		}
		if len(t.served) >= maxServedKeys {
			t.served = make(map[string]uint64)
		}
		t.tick++
		t.served[j.key] = t.tick
		// Less consults served, so this stamp may invalidate the ordering
		// of queued siblings of the same key; restore the heap invariant
		// before anyone pops again.
		if t.q.Len() > 0 {
			heap.Init(&t.q)
		}
		t.mu.Unlock()
		t.queued.Add(-1)
		t.running.Add(1)
		j.run()
		t.running.Add(-1)
		t.completed.Add(1)
	}
}

// TrainerStats is a point-in-time snapshot of trainer-pool load.
type TrainerStats struct {
	Slots     int
	Queued    int64
	Running   int64
	Completed uint64
	Canceled  uint64
}

// Stats snapshots the trainer counters; safe from any goroutine.
func (t *Trainer) Stats() TrainerStats {
	return TrainerStats{
		Slots:     t.slots,
		Queued:    t.queued.Load(),
		Running:   t.running.Load(),
		Completed: t.completed.Load(),
		Canceled:  t.canceled.Load(),
	}
}

// Close drains the queue (running every remaining uncanceled job) and
// joins the slots. Safe to call twice; Submit after Close runs inline.
func (t *Trainer) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return
	}
	t.closed = true
	t.mu.Unlock()
	t.cond.Broadcast()
	t.wg.Wait()
}
