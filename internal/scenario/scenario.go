// Package scenario is the adversarial-workload harness: seeded, fully
// deterministic multivariate streams with exact contamination control,
// in the spirit of unquad's OnlineGenerator. A Generator cycles a
// pre-drawn pool of labelled instances — exactly ⌊p·P⌋ anomalies per
// pool of P, so *every* window of P consecutive instances carries
// exactly that many anomalies, and ExactAnomalyCount reports the
// ground-truth count for any prefix in O(1).
//
// On top of the base generator, composable injectors (transform.go)
// cover the drift taxonomy the related work evaluates — abrupt, gradual
// and recurring mean+covariance drift, seasonality, scale shifts,
// sensor dropout, burst contamination — plus client-side timing faults
// (timing.go). Scenarios compose like Dropout(Season(Drift(base))) and
// are describable by a compact spec string (spec.go):
//
//	dropout(season(drift(base(corpus=gauss,channels=4,p=0.02,pool=512),
//	        kind=abrupt,at=300,shift=3),period=200,amp=0.5),at=600,span=50,channels=1,mode=stuck)
//
// All randomness flows through internal/randstate.CountedSource and is
// consumed at construction time only, so two streams built from the
// same spec and seed replay bit-identically.
package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"streamad/internal/randstate"
)

// Stream is a deterministic, labelled, infinite vector stream. The
// vector returned by Next is owned by the stream and overwritten on the
// following call; copy it to retain it.
type Stream interface {
	// Next returns the next vector and its ground-truth anomaly label.
	Next() (vec []float64, anomalous bool)
	// Channels is the vector dimensionality.
	Channels() int
	// Scale is the per-channel magnitude reference (the std-dev of the
	// underlying normal pool); injectors size shifts and spikes in these
	// units so one spec works across corpora with different value ranges.
	Scale(c int) float64
	// ExactAnomalyCount returns exactly how many of the first n vectors
	// carry an anomalous label. It is exact, not an expectation: tests
	// compare it against observed labels one-for-one.
	ExactAnomalyCount(n int) int
}

// Generator is the pool-based base stream: a pre-drawn pool of P
// instances, exactly ⌊p·P⌋ of them anomalous, cycled forever. All pool
// rows and anomaly positions are drawn at construction, so Next touches
// no RNG and replays are bit-identical.
type Generator struct {
	pool     [][]float64
	labels   []bool
	prefix   []int // prefix[i] = anomalies among pool[:i]
	perCycle int   // anomalies per full pool cycle (= ⌊p·P⌋)
	scale    []float64
	out      []float64
	pos      int
}

// NewGenerator draws a pool of poolSize instances from the normal and
// anomaly source pools with exactly ⌊proportion·poolSize⌋ anomalies at
// seeded-random positions. Source rows are sampled with replacement, so
// small corpora still feed arbitrarily large pools.
func NewGenerator(normal, anomaly [][]float64, proportion float64, poolSize int, seed int64) (*Generator, error) {
	if poolSize <= 0 {
		return nil, fmt.Errorf("scenario: pool size %d must be positive", poolSize)
	}
	if proportion < 0 || proportion >= 1 || math.IsNaN(proportion) {
		return nil, fmt.Errorf("scenario: contamination proportion %v must be in [0, 1)", proportion)
	}
	if len(normal) == 0 {
		return nil, fmt.Errorf("scenario: empty normal pool")
	}
	k := int(proportion * float64(poolSize))
	if k > 0 && len(anomaly) == 0 {
		return nil, fmt.Errorf("scenario: contamination %v needs a non-empty anomaly pool", proportion)
	}
	ch := len(normal[0])
	for _, row := range normal {
		if len(row) != ch {
			return nil, fmt.Errorf("scenario: ragged normal pool (%d vs %d channels)", len(row), ch)
		}
	}
	for _, row := range anomaly {
		if len(row) != ch {
			return nil, fmt.Errorf("scenario: anomaly pool channel mismatch (%d vs %d)", len(row), ch)
		}
	}

	rng := rand.New(randstate.NewCountedSource(seed))
	g := &Generator{
		pool:     make([][]float64, poolSize),
		labels:   make([]bool, poolSize),
		prefix:   make([]int, poolSize+1),
		perCycle: k,
		out:      make([]float64, ch),
	}
	// Exactly k anomalous slots, position-shuffled: the first k entries
	// of a seeded permutation.
	for _, p := range rng.Perm(poolSize)[:k] {
		g.labels[p] = true
	}
	for i := 0; i < poolSize; i++ {
		src := normal
		if g.labels[i] {
			src = anomaly
		}
		g.pool[i] = src[rng.Intn(len(src))]
		g.prefix[i+1] = g.prefix[i] + b2i(g.labels[i])
	}
	g.scale = channelStd(normal)
	return g, nil
}

// Next returns the next pool instance (copied into the reusable output
// buffer) and its label.
func (g *Generator) Next() ([]float64, bool) {
	i := g.pos % len(g.pool)
	g.pos++
	copy(g.out, g.pool[i])
	return g.out, g.labels[i]
}

// Channels implements Stream.
func (g *Generator) Channels() int { return len(g.out) }

// Scale implements Stream.
func (g *Generator) Scale(c int) float64 { return g.scale[c] }

// ExactAnomalyCount implements Stream: full cycles contribute perCycle
// each, the remainder is a prefix lookup.
func (g *Generator) ExactAnomalyCount(n int) int {
	if n <= 0 {
		return 0
	}
	p := len(g.pool)
	return (n/p)*g.perCycle + g.prefix[n%p]
}

// PerCycleAnomalies returns ⌊p·P⌋: the exact anomaly count of every
// window of one full pool length.
func (g *Generator) PerCycleAnomalies() int { return g.perCycle }

// PoolSize returns the pool length P.
func (g *Generator) PoolSize() int { return len(g.pool) }

// channelStd returns the per-channel standard deviation of the pool
// (floored at a small epsilon so scale-relative injections stay finite
// on constant channels).
func channelStd(pool [][]float64) []float64 {
	if len(pool) == 0 {
		return nil
	}
	ch := len(pool[0])
	mean := make([]float64, ch)
	for _, row := range pool {
		for c, v := range row {
			mean[c] += v
		}
	}
	n := float64(len(pool))
	for c := range mean {
		mean[c] /= n
	}
	std := make([]float64, ch)
	for _, row := range pool {
		for c, v := range row {
			d := v - mean[c]
			std[c] += d * d
		}
	}
	for c := range std {
		std[c] = math.Sqrt(std[c] / n)
		if std[c] < 1e-9 {
			std[c] = 1e-9
		}
	}
	return std
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// DeriveSeed mixes a parent seed with a component salt (FNV-1a over the
// salt, folded into the seed), so every layer of a composed scenario —
// and every stream of a fleet — draws from its own deterministic
// sub-stream without sharing RNG positions.
func DeriveSeed(seed int64, salt string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(salt))
	return int64(h.Sum64())
}
