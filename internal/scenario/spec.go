// The scenario spec grammar: one compact string names a whole
// adversarial workload, mirroring the pipeline/ensemble grammar of the
// root package's parse.go. A spec is a nest of injector calls around a
// base generator:
//
//	base(corpus=gauss,channels=4,p=0.02,pool=512)
//	drift(base(corpus=daphnet,p=0.01,pool=1024),kind=abrupt,at=300,shift=3)
//	reorder(dropout(season(drift(base(corpus=smd,p=0.01,pool=2048),
//	        kind=recurring,at=400,span=120,period=500),period=200,amp=0.8),
//	        at=600,span=50,channels=2,mode=stuck),p=0.05)
//
// Content injectors (drift, season, scale, dropout, burst) wrap the
// Stream; timing injectors (jitter, late, reorder) are hoisted into the
// scenario's TimingConfig because they perturb the send schedule, not
// the vectors. Parse validates eagerly; NewStream(seed) builds a fresh,
// bit-identically replayable Stream — every layer draws from its own
// seed derived from (seed, layer name, depth).
package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Scenario is a parsed spec: a Stream factory plus the timing faults.
type Scenario struct {
	// Spec is the canonical input string.
	Spec string
	// Timing holds the hoisted timing-fault configuration (zero when the
	// spec names none).
	Timing TimingConfig

	root *node
}

// node is one call of the grammar: name(inner?, k=v, ...).
type node struct {
	name   string
	inner  *node
	params map[string]string
}

// Parse parses and validates a scenario spec. The returned Scenario is
// immutable and safe for concurrent NewStream calls.
func Parse(spec string) (*Scenario, error) {
	p := &parser{s: spec}
	root, err := p.parseNode()
	if err != nil {
		return nil, fmt.Errorf("scenario: spec %q: %w", spec, err)
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("scenario: spec %q: trailing input at offset %d", spec, p.pos)
	}
	sc := &Scenario{Spec: spec, root: root}
	// Validate the whole chain (and collect timing faults) by building
	// a throwaway stream now, so a bad spec fails at parse time.
	if err := sc.hoistTiming(); err != nil {
		return nil, err
	}
	if _, err := sc.NewStream(1); err != nil {
		return nil, err
	}
	return sc, nil
}

// hoistTiming walks the chain once, accumulating jitter/late/reorder
// layers into sc.Timing and rejecting duplicates.
func (sc *Scenario) hoistTiming() error {
	seen := map[string]bool{}
	for n := sc.root; n != nil; n = n.inner {
		if !isTimingName(n.name) {
			continue
		}
		if seen[n.name] {
			return fmt.Errorf("scenario: spec %q: duplicate %s(...) layer", sc.Spec, n.name)
		}
		seen[n.name] = true
		args := newArgs(n)
		switch n.name {
		case "jitter":
			sc.Timing.JitterFrac = args.float("frac", 0.2)
		case "late":
			sc.Timing.LateProb = args.float("p", 0.01)
			sc.Timing.LateDelay = args.duration("delay", 250*time.Millisecond)
		case "reorder":
			sc.Timing.ReorderProb = args.float("p", 0.05)
		}
		if err := args.finish(); err != nil {
			return fmt.Errorf("scenario: spec %q: %w", sc.Spec, err)
		}
	}
	return sc.Timing.validate()
}

func isTimingName(name string) bool {
	return name == "jitter" || name == "late" || name == "reorder"
}

// NewStream builds a fresh Stream for this scenario. Equal (spec, seed)
// pairs produce bit-identical streams; different seeds produce
// independently contaminated streams of the same shape — one per fleet
// member.
func (sc *Scenario) NewStream(seed int64) (Stream, error) {
	s, err := sc.build(sc.root, seed, 0)
	if err != nil {
		return nil, fmt.Errorf("scenario: spec %q: %w", sc.Spec, err)
	}
	return s, nil
}

// build constructs the stream for n (inner layers first). depth salts
// the derived seed so two same-named layers draw differently.
func (sc *Scenario) build(n *node, seed int64, depth int) (Stream, error) {
	if n == nil {
		return nil, fmt.Errorf("missing base(...) layer")
	}
	layerSeed := DeriveSeed(seed, fmt.Sprintf("%s/%d", n.name, depth))
	if n.name == "base" {
		return buildBase(n, layerSeed)
	}
	inner, err := sc.build(n.inner, seed, depth+1)
	if err != nil {
		return nil, err
	}
	if isTimingName(n.name) {
		return inner, nil // hoisted into TimingConfig
	}
	tr, err := buildTransform(n, layerSeed)
	if err != nil {
		return nil, err
	}
	return tr(inner)
}

// buildBase interprets base(corpus=..., ...).
func buildBase(n *node, seed int64) (Stream, error) {
	args := newArgs(n)
	corpus := args.str("corpus", "gauss")
	prop := args.float("p", 0.01)
	poolSize := args.num("pool", 1024)
	var (
		pools Pools
		err   error
	)
	switch corpus {
	case "gauss":
		ch := args.num("channels", 4)
		shift := args.float("shift", 6)
		if err2 := args.finish(); err2 != nil {
			return nil, err2
		}
		pools, err = GaussPools(ch, poolSize, shift, DeriveSeed(seed, "pool"))
	default:
		length := args.num("len", 2600)
		if err2 := args.finish(); err2 != nil {
			return nil, err2
		}
		pools, err = CorpusPools(corpus, length, DeriveSeed(seed, "pool"))
	}
	if err != nil {
		return nil, err
	}
	return NewGenerator(pools.Normal, pools.Anomaly, prop, poolSize, DeriveSeed(seed, "schedule"))
}

// buildTransform interprets one content-injector layer.
func buildTransform(n *node, seed int64) (Transform, error) {
	args := newArgs(n)
	var tr Transform
	switch n.name {
	case "drift":
		kind, err := ParseDriftKind(args.str("kind", "abrupt"))
		if err != nil {
			return nil, err
		}
		tr = Drift(DriftConfig{
			Kind:     kind,
			At:       args.num("at", 0),
			Span:     args.num("span", 1),
			Period:   args.num("period", 0),
			Shift:    args.float("shift", 3),
			ScaleMul: args.float("scale", 1),
			Mix:      args.float("mix", 0),
		})
	case "season":
		tr = Season(args.num("period", 256), args.float("amp", 1))
	case "scale":
		tr = ScaleShift(args.num("at", 0), args.float("mul", 2))
	case "dropout":
		mode, err := ParseDropoutMode(args.str("mode", "stuck"))
		if err != nil {
			return nil, err
		}
		tr = Dropout(DropoutConfig{
			At:       args.num("at", 0),
			Span:     args.num("span", 50),
			Period:   args.num("period", 0),
			Channels: args.num("channels", 1),
			Mode:     mode,
			Seed:     seed,
		})
	case "burst":
		tr = Burst(BurstConfig{
			At:     args.num("at", 0),
			Span:   args.num("span", 20),
			Period: args.num("period", 0),
			Mag:    args.float("mag", 6),
		})
	default:
		return nil, fmt.Errorf("unknown injector %q (want drift, season, scale, dropout, burst, jitter, late or reorder)", n.name)
	}
	if err := args.finish(); err != nil {
		return nil, err
	}
	return tr, nil
}

// args is the typed accessor over one node's key=value pairs; finish()
// reports the first conversion error and any unconsumed (unknown) keys.
type args struct {
	name   string
	params map[string]string
	used   map[string]bool
	err    error
}

func newArgs(n *node) *args {
	return &args{name: n.name, params: n.params, used: map[string]bool{}}
}

func (a *args) lookup(key string) (string, bool) {
	a.used[key] = true
	v, ok := a.params[key]
	return v, ok
}

func (a *args) fail(key, val, want string) {
	if a.err == nil {
		a.err = fmt.Errorf("%s: bad %s=%q (want %s)", a.name, key, val, want)
	}
}

func (a *args) str(key, def string) string {
	if v, ok := a.lookup(key); ok {
		return v
	}
	return def
}

func (a *args) num(key string, def int) int {
	v, ok := a.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		a.fail(key, v, "integer")
		return def
	}
	return n
}

func (a *args) float(key string, def float64) float64 {
	v, ok := a.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		a.fail(key, v, "number")
		return def
	}
	return f
}

func (a *args) duration(key string, def time.Duration) time.Duration {
	v, ok := a.lookup(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		a.fail(key, v, `duration like "250ms"`)
		return def
	}
	return d
}

func (a *args) finish() error {
	if a.err != nil {
		return a.err
	}
	for k := range a.params {
		if !a.used[k] {
			return fmt.Errorf("%s: unknown option %q", a.name, k)
		}
	}
	return nil
}

// parser is a recursive-descent reader over the spec string.
type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n') {
		p.pos++
	}
}

// ident reads a [a-z]+ layer or key name.
func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("expected a name at offset %d", start)
	}
	return strings.ToLower(p.s[start:p.pos]), nil
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

// parseNode parses name(inner?, k=v, ...). The nested call, if any, must
// be the first argument; base(...) takes none.
func (p *parser) parseNode() (*node, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	n := &node{name: name, params: map[string]string{}}
	first := true
	for {
		if p.peek() == ')' {
			p.pos++
			break
		}
		if !first {
			if err := p.expect(','); err != nil {
				return nil, err
			}
		}
		first = false
		// A nested node starts with a name followed by '('; a parameter
		// is a name followed by '='.
		save := p.pos
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch p.peek() {
		case '(':
			if n.inner != nil {
				return nil, fmt.Errorf("%s: more than one nested scenario at offset %d", name, save)
			}
			if len(n.params) > 0 {
				return nil, fmt.Errorf("%s: the nested scenario must be the first argument (offset %d)", name, save)
			}
			p.pos = save
			inner, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.inner = inner
		case '=':
			p.pos++
			val, err := p.value()
			if err != nil {
				return nil, err
			}
			if _, dup := n.params[key]; dup {
				return nil, fmt.Errorf("%s: duplicate option %q", name, key)
			}
			n.params[key] = val
		default:
			return nil, fmt.Errorf("%s: expected %q or %q after %q at offset %d", name, "(", "=", key, p.pos)
		}
	}
	if name == "base" && n.inner != nil {
		return nil, fmt.Errorf("base(...) cannot nest another scenario")
	}
	if name != "base" && n.inner == nil {
		return nil, fmt.Errorf("%s(...) needs a nested scenario as its first argument", name)
	}
	return n, nil
}

// value reads a parameter value: everything up to the next ',' or ')'.
func (p *parser) value() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] != ',' && p.s[p.pos] != ')' && p.s[p.pos] != '(' {
		p.pos++
	}
	v := strings.TrimSpace(p.s[start:p.pos])
	if v == "" {
		return "", fmt.Errorf("empty value at offset %d", start)
	}
	return v, nil
}
