// Injectors: composable Stream wrappers covering the drift taxonomy the
// related work evaluates. Each transform is itself a Stream, so
// scenarios nest — Dropout(Season(Drift(base))) — and every wrapper
// forwards Channels/Scale/ExactAnomalyCount downward unless it changes
// labels itself (only Burst does). Like the base Generator, transforms
// consume randomness only at construction: Next is RNG-free, so
// composed streams replay bit-identically.
package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"streamad/internal/randstate"
)

// Transform wraps a Stream in one injector.
type Transform func(Stream) (Stream, error)

// DriftKind selects the temporal shape of a drift injection.
type DriftKind int

const (
	// Abrupt switches to the drifted concept at step At and stays there.
	Abrupt DriftKind = iota
	// Gradual ramps linearly from the base concept to the drifted one
	// over [At, At+Span), then stays drifted.
	Gradual
	// Recurring applies the drifted concept during
	// [At+i·Period, At+i·Period+Span) for i = 0, 1, ... — concepts that
	// come back, the case single-reference drift detectors miss.
	Recurring
)

// ParseDriftKind parses the spec spellings of DriftKind.
func ParseDriftKind(s string) (DriftKind, error) {
	switch s {
	case "abrupt":
		return Abrupt, nil
	case "gradual":
		return Gradual, nil
	case "recurring":
		return Recurring, nil
	}
	return 0, fmt.Errorf("scenario: unknown drift kind %q (want abrupt, gradual or recurring)", s)
}

// DriftConfig parameterizes a mean+covariance drift.
type DriftConfig struct {
	Kind DriftKind
	// At is the step the drift starts.
	At int
	// Span is the transition length (Gradual) or the drifted-window
	// length (Recurring). Default 1 (Gradual degrades to Abrupt).
	Span int
	// Period is the concept recurrence period (Recurring only).
	Period int
	// Shift displaces every channel's mean by Shift·Scale(c).
	Shift float64
	// ScaleMul multiplies deviations around the running shift (variance
	// drift). Default 1 (no variance change).
	ScaleMul float64
	// Mix blends each channel with its right neighbour
	// (v'ᶜ = (1−Mix)·vᶜ + Mix·vᶜ⁺¹): covariance-structure drift that
	// leaves per-channel means almost untouched. Default 0.
	Mix float64
}

type driftStream struct {
	Stream
	cfg DriftConfig
	t   int
	mix []float64
}

// Drift returns a mean+covariance drift injector.
func Drift(cfg DriftConfig) Transform {
	return func(inner Stream) (Stream, error) {
		if cfg.Span <= 0 {
			cfg.Span = 1
		}
		if cfg.Kind == Recurring && cfg.Period <= cfg.Span {
			return nil, fmt.Errorf("scenario: recurring drift needs period > span (got period=%d span=%d)", cfg.Period, cfg.Span)
		}
		if cfg.ScaleMul == 0 {
			cfg.ScaleMul = 1
		}
		if cfg.Mix < 0 || cfg.Mix > 1 {
			return nil, fmt.Errorf("scenario: drift mix %v must be in [0, 1]", cfg.Mix)
		}
		return &driftStream{Stream: inner, cfg: cfg, mix: make([]float64, inner.Channels())}, nil
	}
}

// strength returns how much of the full drift applies at step t, in
// [0, 1].
func (d *driftStream) strength(t int) float64 {
	if t < d.cfg.At {
		return 0
	}
	switch d.cfg.Kind {
	case Gradual:
		f := float64(t-d.cfg.At+1) / float64(d.cfg.Span)
		if f > 1 {
			f = 1
		}
		return f
	case Recurring:
		if (t-d.cfg.At)%d.cfg.Period < d.cfg.Span {
			return 1
		}
		return 0
	default: // Abrupt
		return 1
	}
}

func (d *driftStream) Next() ([]float64, bool) {
	v, label := d.Stream.Next()
	f := d.strength(d.t)
	d.t++
	if f == 0 {
		return v, label
	}
	n := len(v)
	if m := f * d.cfg.Mix; m > 0 {
		copy(d.mix, v)
		for c := 0; c < n; c++ {
			v[c] = (1-m)*d.mix[c] + m*d.mix[(c+1)%n]
		}
	}
	for c := 0; c < n; c++ {
		v[c] = v[c]*(1+f*(d.cfg.ScaleMul-1)) + f*d.cfg.Shift*d.Stream.Scale(c)
	}
	return v, label
}

// Season returns a seasonality injector: a per-channel sinusoid of the
// given period, amp·Scale(c) high, phase-staggered across channels.
func Season(period int, amp float64) Transform {
	return func(inner Stream) (Stream, error) {
		if period <= 1 {
			return nil, fmt.Errorf("scenario: season period %d must be > 1", period)
		}
		return &seasonStream{Stream: inner, period: period, amp: amp}, nil
	}
}

type seasonStream struct {
	Stream
	period int
	amp    float64
	t      int
}

func (s *seasonStream) Next() ([]float64, bool) {
	v, label := s.Stream.Next()
	n := len(v)
	for c := 0; c < n; c++ {
		phase := 2 * math.Pi * float64(c) / float64(n)
		v[c] += s.amp * s.Stream.Scale(c) * math.Sin(2*math.Pi*float64(s.t)/float64(s.period)+phase)
	}
	s.t++
	return v, label
}

// ScaleShift returns a scale-shift injector: from step At, every channel
// is multiplied by Mul (sensors re-ranged, units changed, gain drift).
func ScaleShift(at int, mul float64) Transform {
	return func(inner Stream) (Stream, error) {
		if mul == 0 {
			return nil, fmt.Errorf("scenario: scale shift multiplier must be non-zero")
		}
		return &scaleStream{Stream: inner, at: at, mul: mul}, nil
	}
}

type scaleStream struct {
	Stream
	at  int
	mul float64
	t   int
}

func (s *scaleStream) Next() ([]float64, bool) {
	v, label := s.Stream.Next()
	if s.t >= s.at {
		for c := range v {
			v[c] *= s.mul
		}
	}
	s.t++
	return v, label
}

// DropoutMode selects what a dropped-out sensor reports.
type DropoutMode int

const (
	// Stuck pins the channel at its last pre-fault value — the classic
	// frozen-sensor failure. This is the wire-safe default.
	Stuck DropoutMode = iota
	// NaNs makes the channel report NaN (in-process scenarios only:
	// JSON cannot carry NaN, so cmd/streamload zeroes non-finite values
	// before encoding).
	NaNs
	// Zero makes the channel report 0 — a de-energized sensor.
	Zero
)

// ParseDropoutMode parses the spec spellings of DropoutMode.
func ParseDropoutMode(s string) (DropoutMode, error) {
	switch s {
	case "stuck":
		return Stuck, nil
	case "nan":
		return NaNs, nil
	case "zero":
		return Zero, nil
	}
	return 0, fmt.Errorf("scenario: unknown dropout mode %q (want stuck, nan or zero)", s)
}

// DropoutConfig parameterizes a sensor-dropout injector.
type DropoutConfig struct {
	// At is the first faulty step; Span is the fault length; Period, if
	// positive, repeats the fault every Period steps.
	At, Span, Period int
	// Channels is how many channels fail (seeded-random choice, at
	// least 1).
	Channels int
	Mode     DropoutMode
	// Seed drives the failing-channel choice.
	Seed int64
}

type dropoutStream struct {
	Stream
	cfg   DropoutConfig
	chans []int
	stuck []float64
	last  []float64
	t     int
	inWin bool
}

// Dropout returns a sensor-dropout injector: during fault windows, the
// chosen channels report a stuck value, NaN or zero. Labels are not
// changed — a dead sensor is a data-quality fault, not a labelled
// anomaly, which is exactly why it is adversarial.
func Dropout(cfg DropoutConfig) Transform {
	return func(inner Stream) (Stream, error) {
		if cfg.Span <= 0 {
			return nil, fmt.Errorf("scenario: dropout span %d must be positive", cfg.Span)
		}
		if cfg.Period > 0 && cfg.Period <= cfg.Span {
			return nil, fmt.Errorf("scenario: dropout period %d must exceed span %d", cfg.Period, cfg.Span)
		}
		n := inner.Channels()
		k := cfg.Channels
		if k <= 0 {
			k = 1
		}
		if k > n {
			k = n
		}
		rng := rand.New(randstate.NewCountedSource(cfg.Seed))
		return &dropoutStream{
			Stream: inner,
			cfg:    cfg,
			chans:  rng.Perm(n)[:k],
			stuck:  make([]float64, n),
			last:   make([]float64, n),
		}, nil
	}
}

func (d *dropoutStream) faulty(t int) bool {
	if t < d.cfg.At {
		return false
	}
	if d.cfg.Period <= 0 {
		return t < d.cfg.At+d.cfg.Span
	}
	return (t-d.cfg.At)%d.cfg.Period < d.cfg.Span
}

func (d *dropoutStream) Next() ([]float64, bool) {
	v, label := d.Stream.Next()
	if d.faulty(d.t) {
		if !d.inWin {
			// Window entry: freeze the last healthy reading.
			copy(d.stuck, d.last)
			d.inWin = true
		}
		for _, c := range d.chans {
			switch d.cfg.Mode {
			case NaNs:
				v[c] = math.NaN()
			case Zero:
				v[c] = 0
			default:
				v[c] = d.stuck[c]
			}
		}
	} else {
		d.inWin = false
	}
	copy(d.last, v)
	d.t++
	return v, label
}

// BurstConfig parameterizes burst contamination.
type BurstConfig struct {
	// At is the first burst step; Span is the burst length; Period, if
	// positive, repeats the burst every Period steps.
	At, Span, Period int
	// Mag is the spike height in channel-scale units (default 6).
	Mag float64
}

type burstStream struct {
	Stream
	cfg BurstConfig
	t   int
}

// Burst returns a burst-contamination injector: during burst windows,
// every vector is displaced by Mag·Scale(c) and labelled anomalous —
// dense anomaly clusters that break the base pool's exact spacing, the
// stress case for alert-rate-calibrated thresholds. This is the one
// injector that rewrites labels, so it reimplements ExactAnomalyCount
// from the inner stream's prefix counts.
func Burst(cfg BurstConfig) Transform {
	return func(inner Stream) (Stream, error) {
		if cfg.Span <= 0 {
			return nil, fmt.Errorf("scenario: burst span %d must be positive", cfg.Span)
		}
		if cfg.Period > 0 && cfg.Period <= cfg.Span {
			return nil, fmt.Errorf("scenario: burst period %d must exceed span %d", cfg.Period, cfg.Span)
		}
		if cfg.Mag == 0 {
			cfg.Mag = 6
		}
		return &burstStream{Stream: inner, cfg: cfg}, nil
	}
}

func (b *burstStream) bursting(t int) bool {
	if t < b.cfg.At {
		return false
	}
	if b.cfg.Period <= 0 {
		return t < b.cfg.At+b.cfg.Span
	}
	return (t-b.cfg.At)%b.cfg.Period < b.cfg.Span
}

func (b *burstStream) Next() ([]float64, bool) {
	v, label := b.Stream.Next()
	if b.bursting(b.t) {
		sign := 1.0
		if b.t%2 == 1 {
			sign = -1
		}
		for c := range v {
			v[c] += sign * b.cfg.Mag * b.Stream.Scale(c)
		}
		label = true
	}
	b.t++
	return v, label
}

// ExactAnomalyCount counts inner anomalies plus the burst-window steps
// that were not already anomalous: for each window w ∩ [0, n), the
// forced labels number |w| − (inner(w.end) − inner(w.start)), all
// computable from the inner stream's prefix counts.
func (b *burstStream) ExactAnomalyCount(n int) int {
	total := b.Stream.ExactAnomalyCount(n)
	for start := b.cfg.At; start < n; start += b.cfg.Period {
		end := start + b.cfg.Span
		if end > n {
			end = n
		}
		if end > start {
			forced := end - start
			already := b.Stream.ExactAnomalyCount(end) - b.Stream.ExactAnomalyCount(start)
			total += forced - already
		}
		if b.cfg.Period <= 0 {
			break
		}
	}
	return total
}

// Compose applies transforms inside-out: Compose(base, A, B) is B(A(base)).
func Compose(base Stream, transforms ...Transform) (Stream, error) {
	s := base
	for _, tr := range transforms {
		var err error
		if s, err = tr(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}
