package scenario_test

import (
	"math"
	"testing"

	"streamad/internal/scenario"
)

// compose wraps a fresh seeded gauss generator in the given transforms.
func compose(t *testing.T, seed int64, trs ...scenario.Transform) scenario.Stream {
	t.Helper()
	g := mustGauss(t, 4, 0.05, 100, seed)
	s, err := scenario.Compose(g, trs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// meanWindow averages channel c over steps [lo, hi).
func meanWindow(vecs [][]float64, c, lo, hi int) float64 {
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += vecs[i][c]
	}
	if hi == lo {
		return 0
	}
	return sum / float64(hi-lo)
}

func TestDriftAbrupt(t *testing.T) {
	s := compose(t, 11, scenario.Drift(scenario.DriftConfig{Kind: scenario.Abrupt, At: 200, Shift: 5}))
	vecs, labels := drain(t, s, 400)
	assertExactCounts(t, s, labels)
	// Mean jumps by ~5·scale at step 200; compare pre/post windows.
	for c := 0; c < s.Channels(); c++ {
		jump := meanWindow(vecs, c, 200, 400) - meanWindow(vecs, c, 0, 200)
		want := 5 * s.Scale(c)
		if jump < 0.7*want || jump > 1.3*want {
			t.Fatalf("channel %d: abrupt mean jump %v, want ≈ %v", c, jump, want)
		}
	}
}

func TestDriftGradualRampsMonotonically(t *testing.T) {
	base := mustGauss(t, 4, 0, 100, 13) // p=0 so drift is the only signal
	ref := mustGauss(t, 4, 0, 100, 13)  // identical twin, undrifted
	s, err := scenario.Compose(base, scenario.Drift(scenario.DriftConfig{Kind: scenario.Gradual, At: 100, Span: 200, Shift: 4}))
	if err != nil {
		t.Fatal(err)
	}
	vecs, _ := drain(t, s, 400)
	refVecs, _ := drain(t, ref, 400)
	// The displacement vs the undrifted twin must ramp: zero before At,
	// strictly growing across the span, full height after.
	disp := func(i int) float64 { return vecs[i][0] - refVecs[i][0] }
	if disp(50) != 0 {
		t.Fatalf("displacement before onset: %v", disp(50))
	}
	early := disp(120)
	mid := disp(200)
	late := disp(299)
	if !(early > 0 && mid > early && late > mid) {
		t.Fatalf("ramp not monotone: %v, %v, %v", early, mid, late)
	}
	full := 4 * s.Scale(0)
	if math.Abs(disp(350)-full) > 1e-9 {
		t.Fatalf("post-span displacement %v, want exactly %v", disp(350), full)
	}
}

func TestDriftRecurringTogglesConcepts(t *testing.T) {
	base := mustGauss(t, 2, 0, 100, 17)
	ref := mustGauss(t, 2, 0, 100, 17)
	s, err := scenario.Compose(base, scenario.Drift(scenario.DriftConfig{Kind: scenario.Recurring, At: 100, Span: 50, Period: 100, Shift: 3}))
	if err != nil {
		t.Fatal(err)
	}
	vecs, _ := drain(t, s, 400)
	refVecs, _ := drain(t, ref, 400)
	full := 3 * s.Scale(0)
	for i := 0; i < 400; i++ {
		d := vecs[i][0] - refVecs[i][0]
		inConcept := i >= 100 && (i-100)%100 < 50
		if inConcept && math.Abs(d-full) > 1e-9 {
			t.Fatalf("step %d: drifted concept displacement %v, want %v", i, d, full)
		}
		if !inConcept && d != 0 {
			t.Fatalf("step %d: base concept displaced by %v", i, d)
		}
	}
}

func TestDriftCovarianceMix(t *testing.T) {
	base := mustGauss(t, 2, 0, 100, 19)
	ref := mustGauss(t, 2, 0, 100, 19)
	s, err := scenario.Compose(base, scenario.Drift(scenario.DriftConfig{Kind: scenario.Abrupt, At: 0, Shift: 0, Mix: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	vecs, _ := drain(t, s, 100)
	refVecs, _ := drain(t, ref, 100)
	for i := range vecs {
		for c := 0; c < 2; c++ {
			want := 0.5*refVecs[i][c] + 0.5*refVecs[i][(c+1)%2]
			if math.Abs(vecs[i][c]-want) > 1e-12 {
				t.Fatalf("step %d ch %d: mix %v, want %v", i, c, vecs[i][c], want)
			}
		}
	}
}

func TestSeasonAddsPeriodicity(t *testing.T) {
	base := mustGauss(t, 3, 0, 100, 23)
	ref := mustGauss(t, 3, 0, 100, 23)
	s, err := scenario.Compose(base, scenario.Season(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	vecs, labels := drain(t, s, 256)
	refVecs, _ := drain(t, ref, 256)
	assertExactCounts(t, s, labels)
	for i := 0; i < 256; i++ {
		for c := 0; c < 3; c++ {
			phase := 2 * math.Pi * float64(c) / 3
			want := refVecs[i][c] + 2*s.Scale(c)*math.Sin(2*math.Pi*float64(i)/64+phase)
			if math.Abs(vecs[i][c]-want) > 1e-12 {
				t.Fatalf("step %d ch %d: %v, want %v", i, c, vecs[i][c], want)
			}
		}
	}
}

func TestScaleShift(t *testing.T) {
	base := mustGauss(t, 2, 0, 100, 29)
	ref := mustGauss(t, 2, 0, 100, 29)
	s, err := scenario.Compose(base, scenario.ScaleShift(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	vecs, _ := drain(t, s, 100)
	refVecs, _ := drain(t, ref, 100)
	for i := 0; i < 100; i++ {
		mul := 1.0
		if i >= 50 {
			mul = 3
		}
		for c := 0; c < 2; c++ {
			if vecs[i][c] != refVecs[i][c]*mul {
				t.Fatalf("step %d ch %d: %v, want %v", i, c, vecs[i][c], refVecs[i][c]*mul)
			}
		}
	}
}

func TestDropoutModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode scenario.DropoutMode
	}{
		{"stuck", scenario.Stuck},
		{"nan", scenario.NaNs},
		{"zero", scenario.Zero},
	} {
		s := compose(t, 31, scenario.Dropout(scenario.DropoutConfig{
			At: 40, Span: 20, Period: 80, Channels: 2, Mode: tc.mode, Seed: 5,
		}))
		vecs, labels := drain(t, s, 240)
		assertExactCounts(t, s, labels) // dropout must not relabel
		// Find the dropped channels from the first window's behaviour.
		dropped := map[int]bool{}
		for c := 0; c < s.Channels(); c++ {
			switch tc.mode {
			case scenario.NaNs:
				if math.IsNaN(vecs[45][c]) {
					dropped[c] = true
				}
			case scenario.Zero:
				if vecs[45][c] == 0 {
					dropped[c] = true
				}
			default:
				if vecs[45][c] == vecs[44][c] && vecs[45][c] == vecs[59][c] {
					dropped[c] = true
				}
			}
		}
		if len(dropped) != 2 {
			t.Fatalf("%s: found %d dropped channels, want 2", tc.name, len(dropped))
		}
		for i := 0; i < 240; i++ {
			faulty := i >= 40 && (i-40)%80 < 20
			for c := range dropped {
				v := vecs[i][c]
				switch {
				case !faulty:
					if math.IsNaN(v) {
						t.Fatalf("%s: step %d ch %d faulty outside window", tc.name, i, c)
					}
				case tc.mode == scenario.NaNs && !math.IsNaN(v):
					t.Fatalf("%s: step %d ch %d = %v, want NaN", tc.name, i, c, v)
				case tc.mode == scenario.Zero && v != 0:
					t.Fatalf("%s: step %d ch %d = %v, want 0", tc.name, i, c, v)
				case tc.mode == scenario.Stuck && v != vecs[i-(i-40)%80-1][c]:
					// Each window re-freezes at its own last healthy value.
					t.Fatalf("%s: step %d ch %d = %v, want stuck at %v", tc.name, i, c, v, vecs[i-(i-40)%80-1][c])
				}
			}
		}
	}
}

func TestBurstRelabelsExactly(t *testing.T) {
	s := compose(t, 37, scenario.Burst(scenario.BurstConfig{At: 30, Span: 10, Period: 50, Mag: 8}))
	vecs, labels := drain(t, s, 500)
	// Inside every burst window all labels are true, and the counts the
	// acceptance criteria pin: ExactAnomalyCount == observed at every
	// prefix even though Burst rewrites labels.
	assertExactCounts(t, s, labels)
	for i := 0; i < 500; i++ {
		if i >= 30 && (i-30)%50 < 10 && !labels[i] {
			t.Fatalf("step %d inside burst not labelled", i)
		}
	}
	// The spike must actually displace the signal.
	inBurst := meanAbs(vecs, 30, 40)
	outside := meanAbs(vecs, 0, 30)
	if inBurst < 2*outside {
		t.Fatalf("burst magnitude too small: |in|=%v vs |out|=%v", inBurst, outside)
	}
}

func TestBurstOneShot(t *testing.T) {
	s := compose(t, 41, scenario.Burst(scenario.BurstConfig{At: 20, Span: 5}))
	_, labels := drain(t, s, 100)
	assertExactCounts(t, s, labels)
	for i := 20; i < 25; i++ {
		if !labels[i] {
			t.Fatalf("step %d inside one-shot burst not labelled", i)
		}
	}
	for i := 25; i < 100; i++ {
		if labels[i] && i >= 25 {
			// Residual base-pool anomalies are fine; a second forced
			// window is not. Only check that count matches (done above).
			break
		}
	}
}

// TestComposedStack is the acceptance-criteria composition test: every
// injector stacked, ExactAnomalyCount still exact at every prefix, and
// the whole stack bit-identical on replay.
func TestComposedStack(t *testing.T) {
	build := func() scenario.Stream {
		g := mustGauss(t, 5, 0.04, 128, 43)
		s, err := scenario.Compose(g,
			scenario.Drift(scenario.DriftConfig{Kind: scenario.Recurring, At: 64, Span: 32, Period: 128, Shift: 2, ScaleMul: 1.5, Mix: 0.2}),
			scenario.Season(48, 1.5),
			scenario.ScaleShift(200, 0.5),
			scenario.Dropout(scenario.DropoutConfig{At: 96, Span: 16, Period: 160, Channels: 2, Mode: scenario.Stuck, Seed: 9}),
			scenario.Burst(scenario.BurstConfig{At: 150, Span: 12, Period: 200, Mag: 7}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := build()
	vecsA, labelsA := drain(t, a, 600)
	assertExactCounts(t, a, labelsA)

	b := build()
	vecsB, labelsB := drain(t, b, 600)
	for i := range vecsA {
		if labelsA[i] != labelsB[i] {
			t.Fatalf("step %d: labels diverge on replay", i)
		}
		for c := range vecsA[i] {
			if math.Float64bits(vecsA[i][c]) != math.Float64bits(vecsB[i][c]) {
				t.Fatalf("step %d ch %d: composed stack not bit-identical (%v vs %v)", i, c, vecsA[i][c], vecsB[i][c])
			}
		}
	}
}

func TestTransformValidation(t *testing.T) {
	g := mustGauss(t, 2, 0, 32, 1)
	for name, tr := range map[string]scenario.Transform{
		"recurring drift period<=span": scenario.Drift(scenario.DriftConfig{Kind: scenario.Recurring, Span: 10, Period: 10}),
		"drift mix out of range":       scenario.Drift(scenario.DriftConfig{Mix: 1.5}),
		"season period 1":              scenario.Season(1, 1),
		"scale mul 0":                  scenario.ScaleShift(0, 0),
		"dropout span 0":               scenario.Dropout(scenario.DropoutConfig{Span: 0}),
		"dropout period<=span":         scenario.Dropout(scenario.DropoutConfig{Span: 10, Period: 5}),
		"burst span 0":                 scenario.Burst(scenario.BurstConfig{Span: 0}),
		"burst period<=span":           scenario.Burst(scenario.BurstConfig{Span: 10, Period: 10}),
	} {
		if _, err := tr(g); err == nil {
			t.Errorf("%s: transform accepted invalid config", name)
		}
	}
}

func meanAbs(vecs [][]float64, lo, hi int) float64 {
	sum := 0.0
	n := 0
	for i := lo; i < hi; i++ {
		for _, v := range vecs[i] {
			sum += math.Abs(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
