package scenario_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"streamad/internal/scenario"
)

func TestParseBaseDefaults(t *testing.T) {
	sc, err := scenario.Parse("base(corpus=gauss,channels=3,p=0.05,pool=100)")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.NewStream(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Channels() != 3 {
		t.Fatalf("channels = %d, want 3", s.Channels())
	}
	if got := s.ExactAnomalyCount(100); got != 5 {
		t.Fatalf("ExactAnomalyCount(100) = %d, want exactly ⌊0.05·100⌋ = 5", got)
	}
	if sc.Timing != (scenario.TimingConfig{}) {
		t.Fatalf("timing faults from a content-only spec: %+v", sc.Timing)
	}
}

func TestParseComposedSpecDeterministic(t *testing.T) {
	spec := "dropout(season(drift(base(corpus=gauss,channels=4,p=0.02,pool=256),kind=gradual,at=100,span=50,shift=3),period=64,amp=0.5),at=200,span=20,channels=1,mode=stuck)"
	sc, err := scenario.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.NewStream(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.NewStream(99)
	if err != nil {
		t.Fatal(err)
	}
	vecsA, labelsA := drain(t, a, 512)
	vecsB, labelsB := drain(t, b, 512)
	assertExactCounts(t, a, labelsA)
	for i := range vecsA {
		if labelsA[i] != labelsB[i] {
			t.Fatalf("step %d: labels diverge", i)
		}
		for c := range vecsA[i] {
			if math.Float64bits(vecsA[i][c]) != math.Float64bits(vecsB[i][c]) {
				t.Fatalf("step %d ch %d: spec-built streams not bit-identical", i, c)
			}
		}
	}
}

func TestParseCorpusBase(t *testing.T) {
	sc, err := scenario.Parse("burst(base(corpus=daphnet,p=0.01,pool=512,len=2600),at=100,span=10,period=200)")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.NewStream(5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Channels() != 9 { // daphnet stand-in is 9-channel
		t.Fatalf("daphnet channels = %d, want 9", s.Channels())
	}
	_, labels := drain(t, s, 600)
	assertExactCounts(t, s, labels)
}

func TestParseHoistsTimingFaults(t *testing.T) {
	sc, err := scenario.Parse("reorder(late(jitter(base(corpus=gauss,channels=2,p=0,pool=64),frac=0.3),p=0.02,delay=100ms),p=0.05)")
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.TimingConfig{JitterFrac: 0.3, LateProb: 0.02, LateDelay: 100 * time.Millisecond, ReorderProb: 0.05}
	if sc.Timing != want {
		t.Fatalf("timing = %+v, want %+v", sc.Timing, want)
	}
	// Timing layers are transparent for the vector stream.
	s, err := sc.NewStream(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Channels() != 2 {
		t.Fatalf("channels = %d, want 2", s.Channels())
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		spec, wantSub string
	}{
		{"", "expected a name"},
		{"base", `expected "("`},
		{"base(corpus=nope)", "unknown corpus"},
		{"base(corpus=gauss,bogus=1)", "unknown option"},
		{"drift(base(corpus=gauss),kind=sideways)", "unknown drift kind"},
		{"drift(base(corpus=gauss),at=xyz)", "bad at"},
		{"drift(kind=abrupt)", "needs a nested scenario"},
		{"base(base(corpus=gauss))", "cannot nest"},
		{"warp(base(corpus=gauss))", "unknown injector"},
		{"drift(base(corpus=gauss),at=1,at=2)", "duplicate option"},
		{"jitter(jitter(base(corpus=gauss)))", "duplicate jitter"},
		{"jitter(base(corpus=gauss),frac=2)", "jitter frac"},
		{"late(base(corpus=gauss),p=0.5,delay=0s)", "delay > 0"},
		{"base(corpus=gauss) trailing", "trailing input"},
		{"drift(base(corpus=gauss),base(corpus=gauss))", "more than one nested scenario"},
		{"drift(kind=abrupt,base(corpus=gauss))", "must be the first argument"},
		{"dropout(base(corpus=gauss),mode=explode)", "unknown dropout mode"},
	} {
		_, err := scenario.Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	sc, err := scenario.Parse("drift( base( corpus=gauss, channels=2, p=0.1, pool=50 ), kind=abrupt, at=10 )")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.NewStream(2); err != nil {
		t.Fatal(err)
	}
}
