package scenario_test

import (
	"math"
	"testing"

	"streamad/internal/scenario"
)

// drain pulls n vectors off a stream, copying them, and returns vectors
// and labels.
func drain(t *testing.T, s scenario.Stream, n int) ([][]float64, []bool) {
	t.Helper()
	vecs := make([][]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		v, lab := s.Next()
		if len(v) != s.Channels() {
			t.Fatalf("step %d: %d channels, want %d", i, len(v), s.Channels())
		}
		vecs[i] = append([]float64(nil), v...)
		labels[i] = lab
	}
	return vecs, labels
}

// countTrue is the observed-label reference ExactAnomalyCount is tested
// against.
func countTrue(labels []bool, n int) int {
	c := 0
	for _, l := range labels[:n] {
		if l {
			c++
		}
	}
	return c
}

// assertExactCounts checks ExactAnomalyCount against observed labels at
// every prefix — the determinism contract of the acceptance criteria.
func assertExactCounts(t *testing.T, s scenario.Stream, labels []bool) {
	t.Helper()
	for n := 0; n <= len(labels); n++ {
		if got, want := s.ExactAnomalyCount(n), countTrue(labels, n); got != want {
			t.Fatalf("ExactAnomalyCount(%d) = %d, observed %d", n, got, want)
		}
	}
}

func mustGauss(t *testing.T, ch int, p float64, pool int, seed int64) *scenario.Generator {
	t.Helper()
	pools, err := scenario.GaussPools(ch, 256, 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := scenario.NewGenerator(pools.Normal, pools.Anomaly, p, pool, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorExactContamination(t *testing.T) {
	const pool = 200
	for _, p := range []float64{0, 0.01, 0.025, 0.1, 0.5} {
		g := mustGauss(t, 3, p, pool, 42)
		want := int(p * pool)
		if g.PerCycleAnomalies() != want {
			t.Fatalf("p=%v: per-cycle anomalies %d, want ⌊p·P⌋ = %d", p, g.PerCycleAnomalies(), want)
		}
		_, labels := drain(t, g, 3*pool+17)
		assertExactCounts(t, g, labels)
		// Every aligned AND unaligned window of one pool length holds
		// exactly ⌊p·P⌋ anomalies: the cyclic-schedule guarantee.
		for start := 0; start+pool <= len(labels); start++ {
			if got := countTrue(labels[start:], pool); got != want {
				t.Fatalf("p=%v: window [%d,%d) has %d anomalies, want exactly %d", p, start, start+pool, got, want)
			}
		}
	}
}

func TestGeneratorDeterministicReplay(t *testing.T) {
	a := mustGauss(t, 4, 0.05, 128, 7)
	b := mustGauss(t, 4, 0.05, 128, 7)
	va, la := drain(t, a, 400)
	vb, lb := drain(t, b, 400)
	for i := range va {
		if la[i] != lb[i] {
			t.Fatalf("step %d: labels diverge", i)
		}
		for c := range va[i] {
			if math.Float64bits(va[i][c]) != math.Float64bits(vb[i][c]) {
				t.Fatalf("step %d ch %d: %v vs %v (must be bit-identical)", i, c, va[i][c], vb[i][c])
			}
		}
	}
	// A different seed must actually change the stream.
	c := mustGauss(t, 4, 0.05, 128, 8)
	vc, _ := drain(t, c, 400)
	same := true
	for i := range va {
		for ch := range va[i] {
			if va[i][ch] != vc[i][ch] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical streams")
	}
}

func TestGeneratorValidation(t *testing.T) {
	pools, err := scenario.GaussPools(2, 64, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name            string
		normal, anomaly [][]float64
		p               float64
		pool            int
	}{
		{"zero pool", pools.Normal, pools.Anomaly, 0.1, 0},
		{"negative proportion", pools.Normal, pools.Anomaly, -0.1, 10},
		{"proportion one", pools.Normal, pools.Anomaly, 1.0, 10},
		{"empty normal", nil, pools.Anomaly, 0.1, 10},
		{"empty anomaly with contamination", pools.Normal, nil, 0.5, 10},
		{"ragged normal", [][]float64{{1, 2}, {1}}, pools.Anomaly, 0, 10},
		{"channel mismatch", pools.Normal, [][]float64{{1}}, 0.5, 10},
	} {
		if _, err := scenario.NewGenerator(tc.normal, tc.anomaly, tc.p, tc.pool, 1); err == nil {
			t.Errorf("%s: NewGenerator accepted invalid input", tc.name)
		}
	}
}

func TestCorpusPoolsSplitByLabel(t *testing.T) {
	for _, name := range []string{"daphnet", "exathlon", "smd"} {
		p, err := scenario.CorpusPools(name, 2600, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Normal) == 0 || len(p.Anomaly) == 0 {
			t.Fatalf("%s: pools %d/%d rows", name, len(p.Normal), len(p.Anomaly))
		}
		// Same seed, same pools — bit-identical.
		q, err := scenario.CorpusPools(name, 2600, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Normal) != len(p.Normal) || len(q.Anomaly) != len(p.Anomaly) {
			t.Fatalf("%s: replay changed pool sizes", name)
		}
		for i := range p.Normal {
			for c := range p.Normal[i] {
				if p.Normal[i][c] != q.Normal[i][c] {
					t.Fatalf("%s: normal row %d diverges on replay", name, i)
				}
			}
		}
	}
	if _, err := scenario.CorpusPools("nope", 1000, 1); err == nil {
		t.Fatal("unknown corpus accepted")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]string{}
	for _, salt := range []string{"drift/0", "drift/1", "season/0", "pool", "schedule"} {
		s := scenario.DeriveSeed(99, salt)
		if prev, dup := seen[s]; dup {
			t.Fatalf("salts %q and %q collide", prev, salt)
		}
		seen[s] = salt
		if scenario.DeriveSeed(100, salt) == s {
			t.Fatalf("salt %q ignores the parent seed", salt)
		}
	}
}

func TestPacerDeterministicPlans(t *testing.T) {
	tc := scenario.TimingConfig{JitterFrac: 0.3, LateProb: 0.2, LateDelay: 50e6, ReorderProb: 0.2}
	a := scenario.NewPacer(tc, 10e6, 5)
	b := scenario.NewPacer(tc, 10e6, 5)
	sawSwap, sawJitter := false, false
	for i := 0; i < 500; i++ {
		pa, pb := a.Plan(), b.Plan()
		if pa != pb {
			t.Fatalf("plan %d diverges: %+v vs %+v", i, pa, pb)
		}
		if pa.SwapWithNext {
			sawSwap = true
		}
		if pa.Gap != 10e6 {
			sawJitter = true
		}
		if pa.Gap <= 0 {
			t.Fatalf("plan %d: non-positive gap %v", i, pa.Gap)
		}
	}
	if !sawSwap || !sawJitter {
		t.Fatalf("faults never fired in 500 plans (swap=%v jitter=%v)", sawSwap, sawJitter)
	}
}
