// Pool construction: where the instances behind a Generator come from.
// Corpus pools split the paper's benchmark stand-ins (internal/dataset)
// into normal and anomalous rows by ground-truth label; the synthetic
// gaussian pool gives load tests a cheap, dimension-configurable base.
package scenario

import (
	"fmt"
	"math/rand"

	"streamad/internal/dataset"
	"streamad/internal/randstate"
)

// Pools is a labelled instance source for NewGenerator.
type Pools struct {
	Normal  [][]float64
	Anomaly [][]float64
}

// CorpusPools generates the named benchmark corpus (daphnet, exathlon or
// smd — see internal/dataset) at the given length and splits its rows by
// label. Equal (name, length, seed) triples produce identical pools.
func CorpusPools(name string, length int, seed int64) (Pools, error) {
	if length <= 0 {
		length = 2600 // dataset.FastConfig scale
	}
	cfg := dataset.Config{Length: length, SeriesCount: 1, Seed: seed}
	var corpus *dataset.Corpus
	switch name {
	case "daphnet":
		corpus = dataset.Daphnet(cfg)
	case "exathlon":
		corpus = dataset.Exathlon(cfg)
	case "smd":
		corpus = dataset.SMD(cfg)
	default:
		return Pools{}, fmt.Errorf("scenario: unknown corpus %q (want daphnet, exathlon, smd or gauss)", name)
	}
	var p Pools
	for _, s := range corpus.Series {
		for t, row := range s.Data {
			if s.Labels[t] {
				p.Anomaly = append(p.Anomaly, row)
			} else {
				p.Normal = append(p.Normal, row)
			}
		}
	}
	if len(p.Anomaly) == 0 {
		return Pools{}, fmt.Errorf("scenario: corpus %q yielded no anomalous rows at length %d", name, length)
	}
	return p, nil
}

// GaussPools draws a synthetic base: normal instances from N(0,1)^ch and
// anomalous ones from N(shift,1)^ch on a seeded-random subset of
// channels (at least one). The separation is crisp by construction, so
// detection-recall assertions in soak runs measure the serving path, not
// the statistical difficulty of the corpus.
func GaussPools(ch, n int, shift float64, seed int64) (Pools, error) {
	if ch <= 0 {
		return Pools{}, fmt.Errorf("scenario: gauss pool needs channels > 0, got %d", ch)
	}
	if n <= 0 {
		n = 512
	}
	if shift == 0 {
		shift = 6
	}
	rng := rand.New(randstate.NewCountedSource(seed))
	var p Pools
	p.Normal = make([][]float64, n)
	for i := range p.Normal {
		row := make([]float64, ch)
		for c := range row {
			row[c] = rng.NormFloat64()
		}
		p.Normal[i] = row
	}
	// Anomalies displace a random half (at least one) of the channels.
	na := n/4 + 1
	p.Anomaly = make([][]float64, na)
	for i := range p.Anomaly {
		row := make([]float64, ch)
		for c := range row {
			row[c] = rng.NormFloat64()
		}
		hit := ch/2 + 1
		for _, c := range rng.Perm(ch)[:hit] {
			row[c] += shift
		}
		p.Anomaly[i] = row
	}
	return p, nil
}
