// Client-side timing faults: the injectors that perturb *when* batches
// reach the server rather than what is in them. They live on the spec
// grammar next to the content injectors — reorder(jitter(drift(...))) —
// but apply to a load generator's send schedule, so the parser hoists
// them out of the Stream chain into a TimingConfig and a Pacer plans
// each batch deterministically from a seeded RNG.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"streamad/internal/randstate"
)

// TimingConfig accumulates the timing-fault injectors of a spec.
type TimingConfig struct {
	// JitterFrac perturbs every inter-batch gap uniformly by
	// ±JitterFrac·gap (jitter(frac=0.3)).
	JitterFrac float64
	// LateProb delays a batch by LateDelay with this probability
	// (late(p=0.01,delay=250ms)) — stragglers, GC pauses, retries.
	LateProb  float64
	LateDelay time.Duration
	// ReorderProb swaps a batch with its successor with this probability
	// (reorder(p=0.05)): the successor's records are admitted — and
	// sequence-numbered — first, an out-of-order producer.
	ReorderProb float64
}

// faulty reports whether any timing fault is configured.
func (tc TimingConfig) faulty() bool {
	return tc.JitterFrac != 0 || tc.LateProb != 0 || tc.ReorderProb != 0
}

// validate rejects out-of-range fault parameters at parse time.
func (tc TimingConfig) validate() error {
	if tc.JitterFrac < 0 || tc.JitterFrac >= 1 {
		return fmt.Errorf("scenario: jitter frac %v must be in [0, 1)", tc.JitterFrac)
	}
	if tc.LateProb < 0 || tc.LateProb > 1 {
		return fmt.Errorf("scenario: late probability %v must be in [0, 1]", tc.LateProb)
	}
	if tc.LateProb > 0 && tc.LateDelay <= 0 {
		return fmt.Errorf("scenario: late injector needs delay > 0")
	}
	if tc.ReorderProb < 0 || tc.ReorderProb > 1 {
		return fmt.Errorf("scenario: reorder probability %v must be in [0, 1]", tc.ReorderProb)
	}
	return nil
}

// BatchPlan is the Pacer's verdict for one batch.
type BatchPlan struct {
	// Gap is how long to wait after the previous send before this batch
	// goes out (nominal interval, jittered, plus any late fault).
	Gap time.Duration
	// SwapWithNext asks the sender to transmit the *following* batch
	// first, then this one — the reorder fault.
	SwapWithNext bool
}

// Pacer turns a nominal inter-batch interval into a deterministic
// sequence of BatchPlans under the configured timing faults. The fault
// decisions are RNG-driven and seeded, so two runs of the same spec and
// seed plan identical schedules.
type Pacer struct {
	tc       TimingConfig
	interval time.Duration
	rng      *rand.Rand
}

// NewPacer builds a Pacer for one sender.
func NewPacer(tc TimingConfig, interval time.Duration, seed int64) *Pacer {
	return &Pacer{tc: tc, interval: interval, rng: rand.New(randstate.NewCountedSource(seed))}
}

// Plan returns the next batch's schedule. It always draws the same
// number of RNG values per call, so plans stay aligned across
// configurations that share a seed.
func (p *Pacer) Plan() BatchPlan {
	jitter := p.rng.Float64() // in [0,1)
	lateDraw := p.rng.Float64()
	swapDraw := p.rng.Float64()
	plan := BatchPlan{Gap: p.interval}
	if f := p.tc.JitterFrac; f > 0 {
		plan.Gap = time.Duration(float64(p.interval) * (1 + f*(2*jitter-1)))
	}
	if p.tc.LateProb > 0 && lateDraw < p.tc.LateProb {
		plan.Gap += p.tc.LateDelay
	}
	if p.tc.ReorderProb > 0 && swapDraw < p.tc.ReorderProb {
		plan.SwapWithNext = true
	}
	return plan
}
