package tier0

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Each detector's checkpoint is a gob envelope carrying a version, the
// configuration fingerprint and the full mutable state. Load validates
// the fingerprint against the receiver before touching any state, so a
// snapshot from a differently-configured detector is rejected cleanly —
// the same contract as the heavy pipelines' Save/Load.

const snapshotVersion = 1

type ewmaState struct {
	Version  int
	Channels int
	Alpha    float64
	Warmup   int
	Mean     []float64
	Vari     []float64
	Cnt      []int
	Steps    int
}

// Save returns a full checkpoint of the detector.
func (d *EWMA) Save() ([]byte, error) {
	st := ewmaState{
		Version: snapshotVersion, Channels: len(d.mean), Alpha: d.alpha, Warmup: d.warmup,
		Mean:  append([]float64(nil), d.mean...),
		Vari:  append([]float64(nil), d.vari...),
		Cnt:   append([]int(nil), d.cnt...),
		Steps: d.steps,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("tier0: encode ewma: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores a checkpoint produced by Save; the receiver's
// configuration must match the snapshot.
func (d *EWMA) Load(data []byte) error {
	var st ewmaState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("tier0: decode ewma: %w", err)
	}
	if st.Version != snapshotVersion {
		return fmt.Errorf("tier0: ewma snapshot version %d, this build reads %d", st.Version, snapshotVersion)
	}
	if st.Channels != len(d.mean) || st.Alpha != d.alpha || st.Warmup != d.warmup {
		return fmt.Errorf("tier0: ewma snapshot (channels=%d alpha=%g warmup=%d) does not match receiver (channels=%d alpha=%g warmup=%d)",
			st.Channels, st.Alpha, st.Warmup, len(d.mean), d.alpha, d.warmup)
	}
	if len(st.Mean) != st.Channels || len(st.Vari) != st.Channels || len(st.Cnt) != st.Channels {
		return fmt.Errorf("tier0: ewma snapshot state length mismatch")
	}
	copy(d.mean, st.Mean)
	copy(d.vari, st.Vari)
	copy(d.cnt, st.Cnt)
	d.steps = st.Steps
	return nil
}

type zscoreState struct {
	Version  int
	Channels int
	Window   int
	Rings    [][]byte
	Sum      []float64
	SumSq    []float64
	Steps    int
}

// Save returns a full checkpoint of the detector.
func (d *ZScore) Save() ([]byte, error) {
	st := zscoreState{
		Version: snapshotVersion, Channels: len(d.rings), Window: d.w,
		Rings: make([][]byte, len(d.rings)),
		Sum:   append([]float64(nil), d.sum...),
		SumSq: append([]float64(nil), d.sumsq...),
		Steps: d.steps,
	}
	for i, r := range d.rings {
		blob, err := r.MarshalBinary()
		if err != nil {
			return nil, err
		}
		st.Rings[i] = blob
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("tier0: encode zscore: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores a checkpoint produced by Save; the receiver's
// configuration must match the snapshot.
func (d *ZScore) Load(data []byte) error {
	var st zscoreState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("tier0: decode zscore: %w", err)
	}
	if st.Version != snapshotVersion {
		return fmt.Errorf("tier0: zscore snapshot version %d, this build reads %d", st.Version, snapshotVersion)
	}
	if st.Channels != len(d.rings) || st.Window != d.w {
		return fmt.Errorf("tier0: zscore snapshot (channels=%d window=%d) does not match receiver (channels=%d window=%d)",
			st.Channels, st.Window, len(d.rings), d.w)
	}
	if len(st.Rings) != st.Channels || len(st.Sum) != st.Channels || len(st.SumSq) != st.Channels {
		return fmt.Errorf("tier0: zscore snapshot state length mismatch")
	}
	for i, r := range d.rings {
		if err := r.UnmarshalBinary(st.Rings[i]); err != nil {
			return err
		}
	}
	copy(d.sum, st.Sum)
	copy(d.sumsq, st.SumSq)
	d.steps = st.Steps
	return nil
}

type hampelState struct {
	Version  int
	Channels int
	Window   int
	Rings    [][]byte
	Steps    int
}

// Save returns a full checkpoint of the detector. The sorted views are
// derived state and rebuilt on Load.
func (d *Hampel) Save() ([]byte, error) {
	st := hampelState{
		Version: snapshotVersion, Channels: len(d.rings), Window: d.w,
		Rings: make([][]byte, len(d.rings)),
		Steps: d.steps,
	}
	for i, r := range d.rings {
		blob, err := r.MarshalBinary()
		if err != nil {
			return nil, err
		}
		st.Rings[i] = blob
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("tier0: encode hampel: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores a checkpoint produced by Save; the receiver's
// configuration must match the snapshot.
func (d *Hampel) Load(data []byte) error {
	var st hampelState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("tier0: decode hampel: %w", err)
	}
	if st.Version != snapshotVersion {
		return fmt.Errorf("tier0: hampel snapshot version %d, this build reads %d", st.Version, snapshotVersion)
	}
	if st.Channels != len(d.rings) || st.Window != d.w {
		return fmt.Errorf("tier0: hampel snapshot (channels=%d window=%d) does not match receiver (channels=%d window=%d)",
			st.Channels, st.Window, len(d.rings), d.w)
	}
	if len(st.Rings) != st.Channels {
		return fmt.Errorf("tier0: hampel snapshot state length mismatch")
	}
	for i, r := range d.rings {
		if err := r.UnmarshalBinary(st.Rings[i]); err != nil {
			return err
		}
		// Rebuild the sorted view from the restored ring.
		n := r.Len()
		srt := d.sorted[i]
		for j := 0; j < n; j++ {
			x := r.At(j)
			pos := searchFloat(srt, j, x)
			copy(srt[pos+1:j+1], srt[pos:j])
			srt[pos] = x
		}
		d.ns[i] = n
	}
	d.steps = st.Steps
	return nil
}

type densityState struct {
	Version int
	Window  int
	Dim     int
	Sample  int
	Alpha   float64
	Win     []byte
	Scale   float64
	Seed    int64
	Draws   uint64
	Steps   int
}

// Save returns a full checkpoint of the detector, including the RNG
// position so restored sampling continues the exact draw sequence.
func (d *Density) Save() ([]byte, error) {
	win, err := d.win.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st := densityState{
		Version: snapshotVersion, Window: d.win.Cap(), Dim: d.win.Dim(),
		Sample: d.k, Alpha: d.alpha,
		Win: win, Scale: d.scale,
		Seed: d.src.SeedValue(), Draws: d.src.Draws(),
		Steps: d.steps,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("tier0: encode density: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores a checkpoint produced by Save; the receiver's
// configuration must match the snapshot.
func (d *Density) Load(data []byte) error {
	var st densityState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("tier0: decode density: %w", err)
	}
	if st.Version != snapshotVersion {
		return fmt.Errorf("tier0: density snapshot version %d, this build reads %d", st.Version, snapshotVersion)
	}
	if st.Window != d.win.Cap() || st.Dim != d.win.Dim() || st.Sample != d.k || st.Alpha != d.alpha {
		return fmt.Errorf("tier0: density snapshot (window=%d dim=%d sample=%d alpha=%g) does not match receiver (window=%d dim=%d sample=%d alpha=%g)",
			st.Window, st.Dim, st.Sample, st.Alpha, d.win.Cap(), d.win.Dim(), d.k, d.alpha)
	}
	if err := d.win.UnmarshalBinary(st.Win); err != nil {
		return err
	}
	d.scale = st.Scale
	d.src.Restore(st.Seed, st.Draws)
	d.steps = st.Steps
	return nil
}
