// Package tier0 implements the cheap screening tier of the detector
// cascade: a family of streaming detectors whose Step costs nanoseconds,
// not the microseconds of the ML pipelines (internal/core). Calikus et
// al.'s no-free-lunch result argues for fleets of cheap specialized
// detectors over one heavy model; this package supplies the cheap end —
// EWMA residual, moving z-score, streaming Hampel (median/MAD over a
// ring) and sliding-window density — as first-class StreamDetectors with
// full Save/Load state, so a cascade(...) spec can screen every vector
// and reserve the heavy members for the few that look suspicious.
//
// All four detectors share the same output convention: Nonconformity is
// the raw deviation statistic (a robust z-score, or a raw distance for
// Density) and Score maps it into [0,1) so that a typical in-distribution
// vector sits near 0 and three-sigma-equivalent deviations near 0.5 —
// the same d/(d+scale) mapping the kNN baseline uses. Non-finite input
// values are skipped per channel rather than folded into the running
// statistics, so one NaN cannot poison a gate permanently.
package tier0

import (
	"fmt"
	"math"
	"math/rand"

	"streamad/internal/core"
	"streamad/internal/randstate"
	"streamad/internal/window"
)

// Config parameterizes the tier-0 detectors. Channels is required;
// everything else has defaults chosen for screening (short windows, fast
// adaptation).
type Config struct {
	// Channels is the stream dimensionality N (required).
	Channels int
	// Window is the per-channel ring length of ZScore/Hampel and the
	// vector ring length of Density (default 64; Hampel rounds up to odd).
	Window int
	// Alpha is the EWMA smoothing factor, also used for Density's
	// distance-scale adaptation (default 0.05).
	Alpha float64
	// Sample is the number of window rows Density measures the distance
	// to per step (default 16; ≥ Window scans the whole ring and draws
	// no random values).
	Sample int
	// Warmup is the number of finite samples a channel must contribute
	// before EWMA scores it (default 16).
	Warmup int
	// Seed drives Density's row sampling (default 1).
	Seed int64
}

const (
	// zHalf is the z-score mapped to 0.5: Score = z/(z+zHalf), so a
	// three-sigma deviation scores 0.5 and larger ones approach 1.
	zHalf = 3.0
	eps   = 1e-9
)

func (c *Config) fill() error {
	if c.Channels <= 0 {
		return fmt.Errorf("tier0: Channels must be positive, got %d", c.Channels)
	}
	if c.Window == 0 {
		c.Window = 64
	}
	if c.Window < 4 {
		return fmt.Errorf("tier0: Window must be at least 4, got %d", c.Window)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("tier0: Alpha must be in (0,1), got %g", c.Alpha)
	}
	if c.Sample == 0 {
		c.Sample = 16
	}
	if c.Sample < 1 {
		return fmt.Errorf("tier0: Sample must be positive, got %d", c.Sample)
	}
	if c.Warmup == 0 {
		c.Warmup = 16
	}
	if c.Warmup < 2 {
		return fmt.Errorf("tier0: Warmup must be at least 2, got %d", c.Warmup)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// zMap maps a nonnegative deviation statistic into [0,1).
//
//streamad:hotpath
func zMap(z float64) float64 { return z / (z + zHalf) }

// finite reports whether x is a usable sample.
//
//streamad:hotpath
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// stepper is the Step facet shared by the four detectors.
type stepper interface {
	Step(s []float64) (core.Result, bool)
}

// runSeries implements the StreamDetector Run contract on top of Step.
func runSeries(d stepper, series [][]float64) (scores []float64, valid []bool) {
	scores = make([]float64, len(series))
	valid = make([]bool, len(series))
	for i, s := range series {
		if res, ok := d.Step(s); ok {
			scores[i] = res.Score
			valid[i] = true
		}
	}
	return scores, valid
}

// EWMA scores each vector by the largest per-channel residual against an
// exponentially weighted running mean, normalized by an EWMA of the
// squared residual — the classic control-chart detector.
type EWMA struct {
	alpha  float64
	warmup int
	mean   []float64
	vari   []float64
	cnt    []int // finite samples seen per channel
	steps  int
}

// NewEWMA returns an EWMA residual detector.
func NewEWMA(cfg Config) (*EWMA, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &EWMA{
		alpha:  cfg.Alpha,
		warmup: cfg.Warmup,
		mean:   make([]float64, cfg.Channels),
		vari:   make([]float64, cfg.Channels),
		cnt:    make([]int, cfg.Channels),
	}, nil
}

// Step consumes the next stream vector. ok becomes true once at least one
// channel has observed Warmup finite samples.
//
//streamad:hotpath
func (d *EWMA) Step(s []float64) (core.Result, bool) {
	if len(s) != len(d.mean) {
		panic("tier0: vector dimension mismatch")
	}
	d.steps++
	var maxz float64
	scored := false
	for i, x := range s {
		if !finite(x) {
			continue
		}
		if d.cnt[i] == 0 {
			d.mean[i] = x
			d.cnt[i] = 1
			continue
		}
		r := x - d.mean[i]
		if d.cnt[i] >= d.warmup {
			z := math.Abs(r) / math.Sqrt(d.vari[i]+eps)
			if z > maxz {
				maxz = z
			}
			scored = true
		}
		d.mean[i] += d.alpha * r
		d.vari[i] = (1-d.alpha)*d.vari[i] + d.alpha*r*r
		d.cnt[i]++
	}
	if !scored {
		return core.Result{}, false
	}
	return core.Result{Nonconformity: maxz, Score: zMap(maxz)}, true
}

// Run scores an entire series with a validity mask.
func (d *EWMA) Run(series [][]float64) ([]float64, []bool) { return runSeries(d, series) }

// Steps returns the number of stream vectors consumed.
func (d *EWMA) Steps() int { return d.steps }

// FineTunes implements the StreamDetector contract; tier-0 detectors
// never fine-tune.
func (d *EWMA) FineTunes() int { return 0 }

// ZScore scores each vector by the largest per-channel z-score against
// the mean and variance of that channel's previous Window samples
// (maintained as rolling sums over a ring; the current sample is scored
// before it enters the window).
type ZScore struct {
	w     int
	rings []*window.Ring
	sum   []float64
	sumsq []float64
	steps int
}

// NewZScore returns a moving z-score detector.
func NewZScore(cfg Config) (*ZScore, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	d := &ZScore{
		w:     cfg.Window,
		rings: make([]*window.Ring, cfg.Channels),
		sum:   make([]float64, cfg.Channels),
		sumsq: make([]float64, cfg.Channels),
	}
	for i := range d.rings {
		d.rings[i] = window.NewRing(cfg.Window)
	}
	return d, nil
}

// Step consumes the next stream vector. ok becomes true once at least one
// channel ring is full.
//
//streamad:hotpath
func (d *ZScore) Step(s []float64) (core.Result, bool) {
	if len(s) != len(d.rings) {
		panic("tier0: vector dimension mismatch")
	}
	d.steps++
	var maxz float64
	scored := false
	for i, x := range s {
		if !finite(x) {
			continue
		}
		r := d.rings[i]
		if r.Full() {
			n := float64(d.w)
			mean := d.sum[i] / n
			v := d.sumsq[i]/n - mean*mean
			if v < 0 {
				v = 0
			}
			z := math.Abs(x-mean) / math.Sqrt(v+eps)
			if z > maxz {
				maxz = z
			}
			scored = true
		}
		ev, wasFull := r.Push(x)
		if wasFull {
			d.sum[i] -= ev
			d.sumsq[i] -= ev * ev
		}
		d.sum[i] += x
		d.sumsq[i] += x * x
	}
	if !scored {
		return core.Result{}, false
	}
	return core.Result{Nonconformity: maxz, Score: zMap(maxz)}, true
}

// Run scores an entire series with a validity mask.
func (d *ZScore) Run(series [][]float64) ([]float64, []bool) { return runSeries(d, series) }

// Steps returns the number of stream vectors consumed.
func (d *ZScore) Steps() int { return d.steps }

// FineTunes implements the StreamDetector contract.
func (d *ZScore) FineTunes() int { return 0 }

// Hampel scores each vector by the largest per-channel robust z-score
// |x−median| / (1.4826·MAD) over the channel's previous Window samples —
// the streaming Hampel filter. Median and MAD are exact: each channel
// keeps its window both as a ring (for eviction order) and as a sorted
// array maintained incrementally, and the MAD is found by a two-pointer
// walk outward from the median, so a step costs O(Window) with no
// per-step sort.
type Hampel struct {
	w      int
	rings  []*window.Ring
	sorted [][]float64 // per channel: the ring's values in ascending order
	ns     []int       // per channel: len(sorted[i])
	steps  int
}

// NewHampel returns a streaming Hampel detector; an even Window is
// rounded up to the next odd length so the median is exact.
func NewHampel(cfg Config) (*Hampel, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	w := cfg.Window | 1
	d := &Hampel{
		w:      w,
		rings:  make([]*window.Ring, cfg.Channels),
		sorted: make([][]float64, cfg.Channels),
		ns:     make([]int, cfg.Channels),
	}
	for i := range d.rings {
		d.rings[i] = window.NewRing(w)
		d.sorted[i] = make([]float64, w)
	}
	return d, nil
}

// searchFloat returns the first index in a[:n] not less than x.
//
//streamad:hotpath
func searchFloat(a []float64, n int, x float64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// madFrom returns the median absolute deviation of sorted[:w] around its
// median med, walking two pointers outward from the median position and
// taking the (w/2+1)-th smallest deviation. The array being sorted makes
// both arms monotone in |v−med|.
//
//streamad:hotpath
func madFrom(sorted []float64, w int, med float64) float64 {
	mid := w / 2
	li, ri := mid, mid+1
	var mad float64
	for k := 0; k <= mid; k++ {
		if li >= 0 && (ri >= w || med-sorted[li] <= sorted[ri]-med) {
			mad = med - sorted[li]
			li--
		} else {
			mad = sorted[ri] - med
			ri++
		}
	}
	return mad
}

// Step consumes the next stream vector. ok becomes true once at least one
// channel ring is full.
//
//streamad:hotpath
func (d *Hampel) Step(s []float64) (core.Result, bool) {
	if len(s) != len(d.rings) {
		panic("tier0: vector dimension mismatch")
	}
	d.steps++
	var maxz float64
	scored := false
	for i, x := range s {
		if !finite(x) {
			continue
		}
		r := d.rings[i]
		srt := d.sorted[i]
		if r.Full() {
			med := srt[d.w/2]
			mad := madFrom(srt, d.w, med)
			z := math.Abs(x-med) / (1.4826*mad + eps)
			if z > maxz {
				maxz = z
			}
			scored = true
		}
		ev, wasFull := r.Push(x)
		n := d.ns[i]
		if wasFull {
			// Remove the evicted value from the sorted view; the exact
			// bits were inserted, so equality search finds it.
			pos := searchFloat(srt, n, ev)
			copy(srt[pos:], srt[pos+1:n])
			n--
		}
		pos := searchFloat(srt, n, x)
		copy(srt[pos+1:n+1], srt[pos:n])
		srt[pos] = x
		d.ns[i] = n + 1
	}
	if !scored {
		return core.Result{}, false
	}
	return core.Result{Nonconformity: maxz, Score: zMap(maxz)}, true
}

// Run scores an entire series with a validity mask.
func (d *Hampel) Run(series [][]float64) ([]float64, []bool) { return runSeries(d, series) }

// Steps returns the number of stream vectors consumed.
func (d *Hampel) Steps() int { return d.steps }

// FineTunes implements the StreamDetector contract.
func (d *Hampel) FineTunes() int { return 0 }

// Density scores each vector by its mean Euclidean distance to Sample
// rows drawn from a ring of the last Window vectors, normalized by an
// EWMA of that distance — a sliding-window density estimate in the
// spirit of the kNN baseline, at a fixed per-step budget. Row sampling
// draws from a counted source, so the RNG position checkpoints with the
// detector.
type Density struct {
	win   *window.VecRing
	k     int
	alpha float64
	scale float64
	src   *randstate.CountedSource
	rng   *rand.Rand //streamad:transient stateless wrapper over src, whose position Save/Load round-trips
	steps int
}

// NewDensity returns a sliding-window density detector.
func NewDensity(cfg Config) (*Density, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	src := randstate.NewCountedSource(cfg.Seed + 5077)
	return &Density{
		win:   window.NewVecRing(cfg.Window, cfg.Channels),
		k:     cfg.Sample,
		alpha: cfg.Alpha,
		src:   src,
		rng:   rand.New(src),
	}, nil
}

// dist is the Euclidean distance.
//
//streamad:hotpath
func dist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Step consumes the next stream vector. ok becomes true once the vector
// ring is full; vectors with any non-finite component are skipped
// entirely (not scored, not stored).
//
//streamad:hotpath
func (d *Density) Step(s []float64) (core.Result, bool) {
	if len(s) != d.win.Dim() {
		panic("tier0: vector dimension mismatch")
	}
	d.steps++
	for _, x := range s {
		if !finite(x) {
			return core.Result{}, false
		}
	}
	if !d.win.Full() {
		d.win.Push(s)
		return core.Result{}, false
	}
	n := d.win.Len()
	var sum float64
	k := d.k
	if k >= n {
		k = n
		for i := 0; i < n; i++ {
			sum += dist(s, d.win.At(i))
		}
	} else {
		for j := 0; j < k; j++ {
			sum += dist(s, d.win.At(d.rng.Intn(n)))
		}
	}
	dm := sum / float64(k)
	if d.scale == 0 {
		d.scale = dm + eps
	}
	score := dm / (dm + d.scale)
	d.scale = (1-d.alpha)*d.scale + d.alpha*dm
	if d.scale < eps {
		d.scale = eps
	}
	d.win.Push(s)
	return core.Result{Nonconformity: dm, Score: score}, true
}

// Run scores an entire series with a validity mask.
func (d *Density) Run(series [][]float64) ([]float64, []bool) { return runSeries(d, series) }

// Steps returns the number of stream vectors consumed.
func (d *Density) Steps() int { return d.steps }

// FineTunes implements the StreamDetector contract.
func (d *Density) FineTunes() int { return 0 }
