package tier0

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"streamad/internal/core"
)

// detector is the full tier-0 contract under test.
type detector interface {
	Step(s []float64) (core.Result, bool)
	Run(series [][]float64) ([]float64, []bool)
	Steps() int
	FineTunes() int
	Save() ([]byte, error)
	Load([]byte) error
}

// builders constructs every tier-0 detector from one config.
var builders = []struct {
	name  string
	build func(cfg Config) (detector, error)
}{
	{"ewma", func(cfg Config) (detector, error) { return NewEWMA(cfg) }},
	{"zscore", func(cfg Config) (detector, error) { return NewZScore(cfg) }},
	{"hampel", func(cfg Config) (detector, error) { return NewHampel(cfg) }},
	{"density", func(cfg Config) (detector, error) { return NewDensity(cfg) }},
}

// calmVec fills dst with a small-amplitude deterministic waveform plus
// seeded noise — the in-distribution baseline for the tests.
func calmVec(dst []float64, t int, rng *rand.Rand) []float64 {
	for c := range dst {
		dst[c] = math.Sin(float64(t)*0.11+float64(c)) + 0.05*rng.NormFloat64()
	}
	return dst
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                        // Channels missing
		{Channels: 3, Window: 2},  // Window too short
		{Channels: 3, Alpha: 1.5}, // Alpha out of range
		{Channels: 3, Sample: -1}, // Sample negative
		{Channels: 3, Warmup: 1},  // Warmup too small
	}
	for i, cfg := range bad {
		if _, err := NewEWMA(cfg); err == nil {
			t.Errorf("config %d: NewEWMA accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := NewZScore(Config{Channels: 2}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

// TestSpikeDetection drives every detector over a calm baseline with one
// injected spike and checks the spike's score dominates the calm scores.
func TestSpikeDetection(t *testing.T) {
	const (
		channels = 3
		steps    = 400
		spikeAt  = 350
	)
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			d, err := b.build(Config{Channels: channels, Window: 32, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			buf := make([]float64, channels)
			var spikeScore, calmMax float64
			for i := 0; i < steps; i++ {
				calmVec(buf, i, rng)
				if i == spikeAt {
					buf[1] += 8 // a clear out-of-distribution excursion
				}
				res, ok := d.Step(buf)
				if !ok {
					continue
				}
				if res.Score < 0 || res.Score >= 1 {
					t.Fatalf("step %d: score %v outside [0,1)", i, res.Score)
				}
				switch {
				case i == spikeAt:
					spikeScore = res.Score
				case i > 100 && i < spikeAt:
					if res.Score > calmMax {
						calmMax = res.Score
					}
				}
			}
			if d.Steps() != steps {
				t.Fatalf("Steps() = %d, want %d", d.Steps(), steps)
			}
			if d.FineTunes() != 0 {
				t.Fatalf("FineTunes() = %d, want 0", d.FineTunes())
			}
			if spikeScore <= calmMax {
				t.Fatalf("spike score %v does not exceed calm max %v", spikeScore, calmMax)
			}
		})
	}
}

// TestNonFiniteInput checks a NaN-bearing vector neither panics nor
// permanently poisons the running statistics.
func TestNonFiniteInput(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			d, err := b.build(Config{Channels: 2, Window: 16, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			buf := make([]float64, 2)
			for i := 0; i < 200; i++ {
				calmVec(buf, i, rng)
				if i%17 == 0 {
					buf[0] = math.NaN()
				}
				if i%29 == 0 {
					buf[1] = math.Inf(1)
				}
				if res, ok := d.Step(buf); ok {
					if !finite(res.Score) || !finite(res.Nonconformity) {
						t.Fatalf("step %d: non-finite output %+v", i, res)
					}
				}
			}
		})
	}
}

// TestSaveLoadBitIdentity checkpoints every detector mid-stream and
// checks a restored twin produces bit-identical results on the remainder.
func TestSaveLoadBitIdentity(t *testing.T) {
	const (
		channels = 3
		total    = 300
		cut      = 140
	)
	cfg := Config{Channels: channels, Window: 24, Seed: 13}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			// One shared input tape, so both halves see identical data.
			rng := rand.New(rand.NewSource(23))
			tape := make([][]float64, total)
			for i := range tape {
				tape[i] = calmVec(make([]float64, channels), i, rng)
			}
			orig, err := b.build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < cut; i++ {
				orig.Step(tape[i])
			}
			blob, err := orig.Save()
			if err != nil {
				t.Fatal(err)
			}
			twin, err := b.build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := twin.Load(blob); err != nil {
				t.Fatal(err)
			}
			if twin.Steps() != orig.Steps() {
				t.Fatalf("restored Steps() = %d, want %d", twin.Steps(), orig.Steps())
			}
			for i := cut; i < total; i++ {
				r1, ok1 := orig.Step(tape[i])
				r2, ok2 := twin.Step(tape[i])
				if ok1 != ok2 || r1.Score != r2.Score || r1.Nonconformity != r2.Nonconformity {
					t.Fatalf("step %d diverged: orig (%+v,%v) twin (%+v,%v)", i, r1, ok1, r2, ok2)
				}
			}
		})
	}
}

// TestLoadRejectsMismatch checks each detector refuses a snapshot from a
// differently-configured twin.
func TestLoadRejectsMismatch(t *testing.T) {
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			src, err := b.build(Config{Channels: 2, Window: 16})
			if err != nil {
				t.Fatal(err)
			}
			blob, err := src.Save()
			if err != nil {
				t.Fatal(err)
			}
			dst, err := b.build(Config{Channels: 3, Window: 16})
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Load(blob); err == nil {
				t.Fatal("Load accepted a snapshot with mismatched channels")
			}
		})
	}
}

// TestHampelAgainstReference cross-checks the incremental sorted-view
// median/MAD against a brute-force recomputation every step.
func TestHampelAgainstReference(t *testing.T) {
	const (
		channels = 2
		w        = 11
		steps    = 500
	)
	d, err := NewHampel(Config{Channels: channels, Window: w})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	// ref holds each channel's window in arrival order.
	ref := make([][]float64, channels)
	buf := make([]float64, channels)
	for i := 0; i < steps; i++ {
		for c := range buf {
			buf[c] = rng.NormFloat64() * (1 + float64(c))
		}
		res, ok := d.Step(buf)
		if ok {
			// Brute-force expected max robust z across channels.
			var want float64
			for c := range buf {
				win := append([]float64(nil), ref[c]...)
				sort.Float64s(win)
				med := win[len(win)/2]
				devs := make([]float64, len(win))
				for j, v := range win {
					devs[j] = math.Abs(v - med)
				}
				sort.Float64s(devs)
				mad := devs[len(devs)/2]
				z := math.Abs(buf[c]-med) / (1.4826*mad + eps)
				if z > want {
					want = z
				}
			}
			if math.Abs(res.Nonconformity-want) > 1e-9 {
				t.Fatalf("step %d: hampel z = %v, reference = %v", i, res.Nonconformity, want)
			}
		}
		for c := range buf {
			ref[c] = append(ref[c], buf[c])
			if len(ref[c]) > w {
				ref[c] = ref[c][1:]
			}
		}
	}
}

// TestDensityFullScan checks Sample ≥ Window scans deterministically
// without consuming random draws.
func TestDensityFullScan(t *testing.T) {
	d, err := NewDensity(Config{Channels: 2, Window: 8, Sample: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	buf := make([]float64, 2)
	for i := 0; i < 50; i++ {
		d.Step(calmVec(buf, i, rng))
	}
	if draws := d.src.Draws(); draws != 0 {
		t.Fatalf("full-scan density consumed %d random draws, want 0", draws)
	}
}

// TestRunMatchesStep checks the Run facade agrees with stepping.
func TestRunMatchesStep(t *testing.T) {
	const channels = 2
	rng := rand.New(rand.NewSource(47))
	series := make([][]float64, 120)
	for i := range series {
		series[i] = calmVec(make([]float64, channels), i, rng)
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			d1, _ := b.build(Config{Channels: channels, Window: 16, Seed: 5})
			d2, _ := b.build(Config{Channels: channels, Window: 16, Seed: 5})
			scores, valid := d1.Run(series)
			for i, s := range series {
				res, ok := d2.Step(s)
				if ok != valid[i] {
					t.Fatalf("step %d: Run valid=%v, Step ok=%v", i, valid[i], ok)
				}
				if ok && res.Score != scores[i] {
					t.Fatalf("step %d: Run score %v, Step score %v", i, scores[i], res.Score)
				}
			}
		})
	}
}
