// Package arima implements the online ARIMA model of Liu et al. (2016) as
// used by the paper: the ARIMA(q, d, q') process is approximated by an
// ARIMA(q+m, d, 0) model without noise terms,
//
//	s̃_t(γ) = Σ_{i=1..q+m} γ_i ∇^d s_{t−i} + Σ_{i=0..d−1} ∇^i s_{t−1},
//
// whose only parameter γ ∈ R^{q+m} is learned by online gradient descent.
// Multivariate streams are handled the way the paper prescribes: all
// channels share the single coefficient vector, as if they were segments
// of one univariate stream, so no cross-channel correlations are modeled.
package arima

import (
	"fmt"
	"math"
)

// Model is an online ARIMA(q+m, d, 0) forecaster over N-channel streams.
// It consumes feature vectors x ∈ R^{w×N} (w = lags + d rows, row-major,
// oldest first) and forecasts the final row from the preceding ones.
type Model struct {
	lags     int // q+m: number of autoregressive coefficients
	d        int // differencing order
	channels int // N
	gamma    []float64
	lr       float64   //streamad:transient learning rate fixed at construction; snapshots restore onto an identically-configured model
	binom    []float64 //streamad:transient derived from the differencing order d at construction (signedBinomial)
	// scratch buffers — Predict and step run allocation-free once series
	// has grown to the window size.
	series    []float64 //streamad:transient per-call copy of the input window, overwritten by every Predict
	targetBuf []float64 //streamad:transient per-call forecasting scratch
	predBuf   []float64 //streamad:transient per-call forecasting scratch
	lagDiffs  []float64 //streamad:transient per-call forecasting scratch
	gradBuf   []float64 //streamad:transient per-call gradient scratch
}

// Config parameterizes the online ARIMA model.
type Config struct {
	// Lags is q+m, the length of the coefficient vector γ. Required > 0.
	Lags int
	// D is the differencing order (0, 1 or 2 are typical).
	D int
	// Channels is the stream dimensionality N.
	Channels int
	// LR is the online gradient-descent learning rate (default 0.01).
	LR float64
}

// New returns an online ARIMA model. The matching data-representation
// window length is w = Lags + D + 1 rows (Lags+D history rows plus the
// current row being forecast).
func New(cfg Config) (*Model, error) {
	if cfg.Lags <= 0 {
		return nil, fmt.Errorf("arima: Lags must be positive, got %d", cfg.Lags)
	}
	if cfg.D < 0 || cfg.D > 4 {
		return nil, fmt.Errorf("arima: D must be in [0,4], got %d", cfg.D)
	}
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("arima: Channels must be positive, got %d", cfg.Channels)
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	m := &Model{
		lags:      cfg.Lags,
		d:         cfg.D,
		channels:  cfg.Channels,
		gamma:     make([]float64, cfg.Lags),
		lr:        lr,
		binom:     signedBinomial(cfg.D),
		targetBuf: make([]float64, cfg.Channels),
		predBuf:   make([]float64, cfg.Channels),
		lagDiffs:  make([]float64, cfg.Lags),
		gradBuf:   make([]float64, cfg.Lags),
	}
	// Start from a short-memory prior: weight on the most recent lag. This
	// makes the untrained model a persistence forecaster, which is the
	// sensible zero-knowledge baseline for streams.
	m.gamma[0] = 1
	return m, nil
}

// CloneModel returns a full-fidelity deep copy of the model for the
// asynchronous fine-tuning path. The binomial coefficient table is
// immutable and shared; all scratch is fresh.
func (m *Model) CloneModel() any {
	return &Model{
		lags:      m.lags,
		d:         m.d,
		channels:  m.channels,
		gamma:     append([]float64(nil), m.gamma...),
		lr:        m.lr,
		binom:     m.binom,
		targetBuf: make([]float64, m.channels),
		predBuf:   make([]float64, m.channels),
		lagDiffs:  make([]float64, m.lags),
		gradBuf:   make([]float64, m.lags),
	}
}

// WindowRows returns the number of stream rows the model needs per feature
// vector: lags + d history rows + 1 target row.
func (m *Model) WindowRows() int { return m.lags + m.d + 1 }

// Channels returns N.
func (m *Model) Channels() int { return m.channels }

// Gamma returns the coefficient vector (aliased; read-only).
func (m *Model) Gamma() []float64 { return m.gamma }

// signedBinomial returns (−1)^i · C(d,i) for i = 0..d, the coefficients of
// the d-fold differencing operator ∇^d s_t = Σ (−1)^i C(d,i) s_{t−i}.
func signedBinomial(d int) []float64 {
	out := make([]float64, d+1)
	c := 1.0
	for i := 0; i <= d; i++ {
		if i > 0 {
			c = c * float64(d-i+1) / float64(i)
		}
		if i%2 == 0 {
			out[i] = c
		} else {
			out[i] = -c
		}
	}
	return out
}

// diff computes ∇^d series[t] for t ≥ d using the binomial form.
//
//streamad:hotpath
func (m *Model) diff(series []float64, t int) float64 {
	var s float64
	for i, b := range m.binom {
		s += b * series[t-i]
	}
	return s
}

// forecastChannel predicts the value at index last = len(series)−1 from
// series[0..last−1] and also returns the differenced lag values needed by
// the gradient update.
//
//streamad:hotpath
func (m *Model) forecastChannel(series []float64, lagDiffs []float64) float64 {
	last := len(series) - 1
	// Differenced lags: ∇^d s_{last−i} for i = 1..lags.
	var pred float64
	for i := 1; i <= m.lags; i++ {
		dv := m.diff(series, last-i)
		lagDiffs[i-1] = dv
		pred += m.gamma[i-1] * dv
	}
	// Integration terms: Σ_{i=0..d−1} ∇^i s_{last−1}. The lag diffs above
	// only read the original series, so differencing runs in place:
	// cur[j−1] = cur[j] − cur[j−1] ascending reads each cell before it is
	// overwritten, and the caller owns series as scratch.
	cur := series // ∇^0
	for i := 0; i < m.d; i++ {
		pred += cur[last-1]
		for j := 1; j < len(cur); j++ {
			cur[j-1] = cur[j] - cur[j-1]
		}
		cur = cur[:len(cur)-1]
	}
	return pred
}

// extract copies channel c of the feature vector x (row-major w×N) into
// dst and returns it.
//
//streamad:hotpath
func (m *Model) extract(x []float64, c int, dst []float64) []float64 {
	w := len(x) / m.channels
	dst = dst[:0]
	for r := 0; r < w; r++ {
		//streamad:ignore hotalloc appends into caller-owned scratch sized to the window; steady state never grows
		dst = append(dst, x[r*m.channels+c])
	}
	return dst
}

// Predict implements the framework model contract: given feature vector
// x ∈ R^{w×N} it returns (target, prediction) where target is the actual
// final stream vector s_t and prediction is the forecast ŝ_t. Both slices
// are reused across calls; copy to retain.
//
//streamad:hotpath
func (m *Model) Predict(x []float64) (target, pred []float64) {
	w := len(x) / m.channels
	if w*m.channels != len(x) || w < m.WindowRows() {
		//streamad:ignore hotalloc panic message on shape violation only
		panic(fmt.Sprintf("arima: feature vector needs ≥%d rows of %d channels, got %d values",
			m.WindowRows(), m.channels, len(x)))
	}
	target = m.targetBuf
	pred = m.predBuf
	lagDiffs := m.lagDiffs
	if cap(m.series) < w {
		//streamad:ignore hotalloc lazy scratch growth, amortised to zero on the steady path
		m.series = make([]float64, w)
	}
	for c := 0; c < m.channels; c++ {
		series := m.extract(x, c, m.series[:0])
		target[c] = series[len(series)-1]
		pred[c] = m.forecastChannel(series, lagDiffs)
	}
	return target, pred
}

// step performs one gradient update of γ on the squared forecast error of
// the final row of x, accumulating over channels (shared coefficients).
func (m *Model) step(x []float64) {
	w := len(x) / m.channels
	if w < m.WindowRows() {
		return
	}
	lagDiffs := m.lagDiffs
	grad := m.gradBuf
	for i := range grad {
		grad[i] = 0
	}
	if cap(m.series) < w {
		m.series = make([]float64, w)
	}
	for c := 0; c < m.channels; c++ {
		series := m.extract(x, c, m.series[:0])
		actual := series[len(series)-1]
		pred := m.forecastChannel(series, lagDiffs)
		err := pred - actual
		for i, dv := range lagDiffs {
			grad[i] += err * dv
		}
	}
	// Normalize by channel count and clip to keep OGD stable on bursty data.
	scale := m.lr / float64(m.channels)
	var norm float64
	for _, g := range grad {
		norm += g * g
	}
	norm = math.Sqrt(norm)
	const maxNorm = 10
	if norm > maxNorm {
		scale *= maxNorm / norm
	}
	for i, g := range grad {
		m.gamma[i] -= scale * g
	}
}

// Fit runs one online-gradient epoch over the training set, as the paper's
// fine-tuning step prescribes.
func (m *Model) Fit(set [][]float64) {
	for _, x := range set {
		m.step(x)
	}
}
