package arima

import "math"

// ONS upgrades the online ARIMA model's learner from online gradient
// descent to the Online Newton Step of Liu et al. (2016): the update is
// preconditioned by the inverse of the accumulated outer-product matrix
//
//	A_t = Σ g_j·g_jᵀ + ε·I,     γ ← γ − (1/η)·A_t⁻¹·g_t,
//
// which adapts the step size per direction and gives the regret bound the
// paper's source cites. The inverse is maintained incrementally with the
// Sherman–Morrison identity, so each update costs O(lags²).
type ONS struct {
	model *Model
	eta   float64
	ainv  [][]float64 // A_t⁻¹, lags × lags
	// scratch
	av []float64 //streamad:transient Sherman–Morrison update scratch, overwritten per step
	g  []float64 //streamad:transient gradient scratch, overwritten per step
}

// NewONS wraps an online ARIMA model with the Online Newton Step learner.
// eta is the ONS learning rate (default 0.1); epsilon initializes
// A_0 = ε·I (default 1).
func NewONS(model *Model, eta, epsilon float64) *ONS {
	if eta == 0 {
		eta = 0.1
	}
	if epsilon == 0 {
		epsilon = 1
	}
	n := model.lags
	ainv := make([][]float64, n)
	for i := range ainv {
		ainv[i] = make([]float64, n)
		ainv[i][i] = 1 / epsilon
	}
	return &ONS{
		model: model,
		eta:   eta,
		ainv:  ainv,
		av:    make([]float64, n),
		g:     make([]float64, n),
	}
}

// Model returns the wrapped ARIMA model.
func (o *ONS) Model() *Model { return o.model }

// CloneModel returns a full-fidelity deep copy — wrapped model, A⁻¹ and
// learning rate — for the asynchronous fine-tuning path.
func (o *ONS) CloneModel() any {
	n := o.model.lags
	ainv := make([][]float64, n)
	for i := range ainv {
		ainv[i] = append([]float64(nil), o.ainv[i]...)
	}
	return &ONS{
		model: o.model.CloneModel().(*Model),
		eta:   o.eta,
		ainv:  ainv,
		av:    make([]float64, n),
		g:     make([]float64, n),
	}
}

// Predict delegates to the wrapped model.
func (o *ONS) Predict(x []float64) (target, pred []float64) {
	return o.model.Predict(x)
}

// step performs one ONS update on the squared forecast error of the final
// row of x (channels share γ, as in the OGD variant).
func (o *ONS) step(x []float64) {
	m := o.model
	w := len(x) / m.channels
	if w < m.WindowRows() {
		return
	}
	lagDiffs := m.lagDiffs
	for i := range o.g {
		o.g[i] = 0
	}
	if cap(m.series) < w {
		m.series = make([]float64, w)
	}
	for c := 0; c < m.channels; c++ {
		series := m.extract(x, c, m.series[:0])
		actual := series[len(series)-1]
		pred := m.forecastChannel(series, lagDiffs)
		err := pred - actual
		for i, dv := range lagDiffs {
			o.g[i] += err * dv
		}
	}
	inv := 1 / float64(m.channels)
	for i := range o.g {
		o.g[i] *= inv
	}
	// Clip the gradient as in the OGD variant to bound single-step impact.
	var norm float64
	for _, gv := range o.g {
		norm += gv * gv
	}
	norm = math.Sqrt(norm)
	const maxNorm = 10
	if norm > maxNorm {
		scale := maxNorm / norm
		for i := range o.g {
			o.g[i] *= scale
		}
	}

	// Sherman–Morrison: A⁻¹ ← A⁻¹ − (A⁻¹g)(A⁻¹g)ᵀ / (1 + gᵀA⁻¹g).
	n := m.lags
	for i := 0; i < n; i++ {
		var s float64
		row := o.ainv[i]
		for j := 0; j < n; j++ {
			s += row[j] * o.g[j]
		}
		o.av[i] = s
	}
	var denom float64 = 1
	for i := 0; i < n; i++ {
		denom += o.g[i] * o.av[i]
	}
	for i := 0; i < n; i++ {
		avi := o.av[i] / denom
		row := o.ainv[i]
		for j := 0; j < n; j++ {
			row[j] -= avi * o.av[j]
		}
	}
	// γ ← γ − (1/η)·A⁻¹·g.
	for i := 0; i < n; i++ {
		var s float64
		row := o.ainv[i]
		for j := 0; j < n; j++ {
			s += row[j] * o.g[j]
		}
		m.gamma[i] -= s / o.eta
	}
}

// Fit runs one ONS epoch over the training set, satisfying the framework
// model contract.
func (o *ONS) Fit(set [][]float64) {
	for _, x := range set {
		o.step(x)
	}
}
