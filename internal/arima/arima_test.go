package arima

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Lags: 0, Channels: 1},
		{Lags: 2, D: -1, Channels: 1},
		{Lags: 2, D: 5, Channels: 1},
		{Lags: 2, Channels: 0},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
	m, err := New(Config{Lags: 3, D: 1, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.WindowRows() != 5 {
		t.Fatalf("WindowRows = %d, want 5 (3 lags + 1 diff + 1 target)", m.WindowRows())
	}
	if m.Channels() != 2 {
		t.Fatalf("Channels = %d", m.Channels())
	}
}

func TestSignedBinomial(t *testing.T) {
	cases := []struct {
		d    int
		want []float64
	}{
		{0, []float64{1}},
		{1, []float64{1, -1}},
		{2, []float64{1, -2, 1}},
		{3, []float64{1, -3, 3, -1}},
	}
	for _, c := range cases {
		got := signedBinomial(c.d)
		if len(got) != len(c.want) {
			t.Fatalf("d=%d: %v", c.d, got)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("d=%d: %v, want %v", c.d, got, c.want)
			}
		}
	}
}

// window builds a feature vector of the last rows of series (1 channel).
func window1(series []float64, rows int) []float64 {
	return series[len(series)-rows:]
}

func TestUntrainedIsPersistenceForecaster(t *testing.T) {
	// γ = [1, 0, …] with d=1: forecast = ∇s_{t−1} + s_{t−1} = 2s_{t−1}−s_{t−2};
	// for a constant series that equals the constant.
	m, _ := New(Config{Lags: 3, D: 1, Channels: 1})
	series := []float64{5, 5, 5, 5, 5, 5}
	target, pred := m.Predict(window1(series, m.WindowRows()))
	if target[0] != 5 {
		t.Fatalf("target = %v", target)
	}
	if math.Abs(pred[0]-5) > 1e-12 {
		t.Fatalf("persistence forecast on constant series = %v, want 5", pred[0])
	}
}

func TestLearnsLinearTrend(t *testing.T) {
	// s_t = 2t: with d=1 the differenced series is constant 2; any γ
	// summing to 1 forecasts exactly. Training should reduce error to ~0.
	m, _ := New(Config{Lags: 4, D: 1, Channels: 1, LR: 0.05})
	series := make([]float64, 200)
	for i := range series {
		series[i] = 2 * float64(i)
	}
	w := m.WindowRows()
	var set [][]float64
	for i := w; i < len(series); i++ {
		set = append(set, series[i-w:i])
	}
	for epoch := 0; epoch < 20; epoch++ {
		m.Fit(set)
	}
	target, pred := m.Predict(series[len(series)-w:])
	if math.Abs(pred[0]-target[0]) > 0.2 {
		t.Fatalf("trend forecast = %v, want %v", pred[0], target[0])
	}
}

func TestLearnsAR1Process(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// AR(1): s_t = 0.8·s_{t−1} + ε.
	m, _ := New(Config{Lags: 5, D: 0, Channels: 1, LR: 0.02})
	series := make([]float64, 600)
	for i := 1; i < len(series); i++ {
		series[i] = 0.8*series[i-1] + 0.1*rng.NormFloat64()
	}
	w := m.WindowRows()
	var set [][]float64
	for i := w; i < len(series); i++ {
		set = append(set, series[i-w:i])
	}
	for epoch := 0; epoch < 10; epoch++ {
		m.Fit(set)
	}
	// γ should approximate [0.8, 0, 0, 0, 0].
	g := m.Gamma()
	if math.Abs(g[0]-0.8) > 0.25 {
		t.Fatalf("γ[0] = %v, want ≈0.8 (γ=%v)", g[0], g)
	}
	// Forecast error should beat persistence on average.
	var modelErr, persistErr float64
	cnt := 0
	for i := len(series) - 100; i < len(series); i++ {
		x := series[i-w+1 : i+1]
		target, pred := m.Predict(x)
		modelErr += (pred[0] - target[0]) * (pred[0] - target[0])
		p := x[len(x)-2]
		persistErr += (p - target[0]) * (p - target[0])
		cnt++
	}
	if modelErr >= persistErr {
		t.Fatalf("trained ARIMA (%v) should beat persistence (%v)", modelErr/float64(cnt), persistErr/float64(cnt))
	}
}

func TestMultivariateSharedCoefficients(t *testing.T) {
	// Two identical channels: prediction per channel must be identical.
	m, _ := New(Config{Lags: 3, D: 1, Channels: 2})
	w := m.WindowRows()
	x := make([]float64, w*2)
	for r := 0; r < w; r++ {
		v := math.Sin(0.3 * float64(r))
		x[r*2] = v
		x[r*2+1] = v
	}
	target, pred := m.Predict(x)
	if target[0] != target[1] || math.Abs(pred[0]-pred[1]) > 1e-12 {
		t.Fatalf("identical channels must give identical forecasts: %v %v", pred[0], pred[1])
	}
}

func TestFitIsStableOnBurstyData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := New(Config{Lags: 4, D: 1, Channels: 1, LR: 0.1})
	w := m.WindowRows()
	var set [][]float64
	for i := 0; i < 100; i++ {
		x := make([]float64, w)
		for j := range x {
			x[j] = rng.NormFloat64() * 1e3 // violent data
		}
		set = append(set, x)
	}
	for epoch := 0; epoch < 5; epoch++ {
		m.Fit(set)
	}
	for _, g := range m.Gamma() {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("γ diverged: %v", m.Gamma())
		}
	}
}

func TestPredictPanicsOnShortWindow(t *testing.T) {
	m, _ := New(Config{Lags: 5, D: 1, Channels: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1, 2, 3})
}

func TestFitSkipsShortVectors(t *testing.T) {
	m, _ := New(Config{Lags: 5, D: 1, Channels: 1})
	before := append([]float64(nil), m.Gamma()...)
	m.Fit([][]float64{{1, 2}})
	for i, g := range m.Gamma() {
		if g != before[i] {
			t.Fatal("short vector should not trigger an update")
		}
	}
}
