package arima

import (
	"math"
	"math/rand"
	"testing"
)

func TestONSLearnsAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, _ := New(Config{Lags: 5, D: 0, Channels: 1})
	ons := NewONS(base, 1, 1)
	series := make([]float64, 600)
	for i := 1; i < len(series); i++ {
		series[i] = 0.8*series[i-1] + 0.1*rng.NormFloat64()
	}
	w := base.WindowRows()
	var set [][]float64
	for i := w; i < len(series); i++ {
		set = append(set, series[i-w:i])
	}
	for epoch := 0; epoch < 10; epoch++ {
		ons.Fit(set)
	}
	var modelErr, persistErr float64
	for i := len(series) - 100; i < len(series); i++ {
		x := series[i-w+1 : i+1]
		target, pred := ons.Predict(x)
		modelErr += (pred[0] - target[0]) * (pred[0] - target[0])
		p := x[len(x)-2]
		persistErr += (p - target[0]) * (p - target[0])
	}
	if modelErr >= persistErr {
		t.Fatalf("ONS ARIMA (%v) should beat persistence (%v)", modelErr, persistErr)
	}
}

func TestONSConvergesFasterThanOGDOnIllConditionedData(t *testing.T) {
	// Differenced lags with wildly different scales: the preconditioned
	// Newton step should reach a lower error in the same number of epochs.
	gen := func() ([][]float64, int) {
		rng := rand.New(rand.NewSource(2))
		m, _ := New(Config{Lags: 4, D: 0, Channels: 1})
		w := m.WindowRows()
		series := make([]float64, 500)
		for i := 4; i < len(series); i++ {
			series[i] = 0.9*series[i-1] - 0.3*series[i-2] + 0.05*rng.NormFloat64()
		}
		var set [][]float64
		for i := w; i < len(series); i++ {
			set = append(set, series[i-w:i])
		}
		return set, w
	}
	evalErr := func(p interface {
		Predict([]float64) ([]float64, []float64)
	}, set [][]float64) float64 {
		var e float64
		for _, x := range set[len(set)-80:] {
			target, pred := p.Predict(x)
			e += (pred[0] - target[0]) * (pred[0] - target[0])
		}
		return e
	}

	set, _ := gen()
	ogd, _ := New(Config{Lags: 4, D: 0, Channels: 1, LR: 0.01})
	for epoch := 0; epoch < 3; epoch++ {
		ogd.Fit(set)
	}
	base, _ := New(Config{Lags: 4, D: 0, Channels: 1})
	ons := NewONS(base, 1, 1)
	for epoch := 0; epoch < 3; epoch++ {
		ons.Fit(set)
	}
	ogdErr := evalErr(ogd, set)
	onsErr := evalErr(ons, set)
	if onsErr > ogdErr {
		t.Fatalf("ONS after 3 epochs (%v) should be at least as good as OGD (%v)", onsErr, ogdErr)
	}
}

func TestONSStaysFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, _ := New(Config{Lags: 3, D: 1, Channels: 2})
	ons := NewONS(base, 0, 0) // defaults
	w := base.WindowRows()
	set := make([][]float64, 60)
	for i := range set {
		x := make([]float64, w*2)
		for j := range x {
			x[j] = rng.NormFloat64() * 1e3
		}
		set[i] = x
	}
	for epoch := 0; epoch < 5; epoch++ {
		ons.Fit(set)
	}
	for _, g := range base.Gamma() {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("ONS diverged: %v", base.Gamma())
		}
	}
}

func TestONSDefaults(t *testing.T) {
	base, _ := New(Config{Lags: 2, D: 0, Channels: 1})
	ons := NewONS(base, 0, 0)
	if ons.Model() != base {
		t.Fatal("Model() accessor")
	}
	if ons.eta != 0.1 {
		t.Fatalf("default eta = %v", ons.eta)
	}
	// A⁻¹ starts at (1/ε)·I = I.
	if ons.ainv[0][0] != 1 || ons.ainv[0][1] != 0 {
		t.Fatalf("initial A⁻¹ = %v", ons.ainv)
	}
}
