package arima

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// state is the serializable form of the online ARIMA model.
type state struct {
	Lags     int
	D        int
	Channels int
	Gamma    []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	g := make([]float64, len(m.gamma))
	copy(g, m.gamma)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(state{
		Lags: m.lags, D: m.d, Channels: m.channels, Gamma: g,
	})
	if err != nil {
		return nil, fmt.Errorf("arima: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// MarshalBinary implements encoding.BinaryMarshaler for the ONS wrapper:
// the snapshot carries the γ coefficients; the accumulated second-order
// statistics A⁻¹ are transient optimizer state and restart at ε·I on
// restore, exactly like Adam moments in the neural models.
func (o *ONS) MarshalBinary() ([]byte, error) { return o.model.MarshalBinary() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler for ONS.
func (o *ONS) UnmarshalBinary(data []byte) error { return o.model.UnmarshalBinary(data) }

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// configuration must match the snapshot.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("arima: decode: %w", err)
	}
	if st.Lags != m.lags || st.D != m.d || st.Channels != m.channels {
		return fmt.Errorf("arima: snapshot (lags=%d d=%d N=%d) does not match model (lags=%d d=%d N=%d)",
			st.Lags, st.D, st.Channels, m.lags, m.d, m.channels)
	}
	copy(m.gamma, st.Gamma)
	return nil
}
