package arima

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// state is the serializable form of the online ARIMA model.
type state struct {
	Lags     int
	D        int
	Channels int
	Gamma    []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	g := make([]float64, len(m.gamma))
	copy(g, m.gamma)
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(state{
		Lags: m.lags, D: m.d, Channels: m.channels, Gamma: g,
	})
	if err != nil {
		return nil, fmt.Errorf("arima: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// onsState is the serializable form of the ONS wrapper: the γ snapshot of
// the wrapped model plus the accumulated inverse second-moment matrix
// A⁻¹, so resumed fine-tuning continues the exact Newton trajectory.
type onsState struct {
	Model []byte
	Eta   float64
	Lags  int
	Ainv  []float64 // row-major lags×lags
}

// MarshalBinary implements encoding.BinaryMarshaler for the ONS wrapper.
func (o *ONS) MarshalBinary() ([]byte, error) {
	inner, err := o.model.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st := onsState{Model: inner, Eta: o.eta, Lags: o.model.lags}
	for _, row := range o.ainv {
		st.Ainv = append(st.Ainv, row...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("arima: encode ons: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for ONS. For
// compatibility it also accepts a bare model snapshot (pre-ONS-state
// format), in which case A⁻¹ keeps its current value.
func (o *ONS) UnmarshalBinary(data []byte) error {
	var st onsState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil || len(st.Model) == 0 {
		return o.model.UnmarshalBinary(data)
	}
	if st.Lags != o.model.lags || len(st.Ainv) != st.Lags*st.Lags {
		return fmt.Errorf("arima: ons snapshot lags %d (A⁻¹ %d) does not match model lags %d",
			st.Lags, len(st.Ainv), o.model.lags)
	}
	if err := o.model.UnmarshalBinary(st.Model); err != nil {
		return err
	}
	o.eta = st.Eta
	for i, row := range o.ainv {
		copy(row, st.Ainv[i*st.Lags:(i+1)*st.Lags])
	}
	return nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// configuration must match the snapshot.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("arima: decode: %w", err)
	}
	if st.Lags != m.lags || st.D != m.d || st.Channels != m.channels {
		return fmt.Errorf("arima: snapshot (lags=%d d=%d N=%d) does not match model (lags=%d d=%d N=%d)",
			st.Lags, st.D, st.Channels, m.lags, m.d, m.channels)
	}
	copy(m.gamma, st.Gamma)
	return nil
}
