package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Page files hold the warm tier's paged-out window state: a detector's
// PageOut blob, written when the tiering policy demotes a stream from hot
// to warm and read back on the next observe. They are a cache, not the
// durability story — a warm demotion writes a full snapshot first, so a
// page file can always be discarded and the stream rebuilt from snapshot
// + WAL. IDs() deliberately ignores them for the same reason.
//
//	<escaped-id>.page — magic, version, size, CRC-32C, payload

const (
	pageMagic  = "SADPAGE1"
	pageSuffix = ".page"
)

func (s *Store) pagePath(id string) string { return filepath.Join(s.dir, escapeID(id)+pageSuffix) }

// WritePage atomically persists a stream's paged-out window state
// (temp file + rename; no fsync — page files are reconstructible).
func (s *Store) WritePage(id string, blob []byte) error {
	final := s.pagePath(id)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: create page temp: %w", err)
	}
	var hdr [len(pageMagic) + 16]byte
	copy(hdr[:], pageMagic)
	binary.LittleEndian.PutUint32(hdr[len(pageMagic):], Version)
	binary.LittleEndian.PutUint64(hdr[len(pageMagic)+4:], uint64(len(blob)))
	binary.LittleEndian.PutUint32(hdr[len(pageMagic)+12:], crc32.Checksum(blob, castagnoli))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(blob)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: write page: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: close page: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publish page: %w", err)
	}
	return nil
}

// ReadPage loads and verifies a stream's page file. A missing file
// returns os.ErrNotExist (callers fall back to snapshot + WAL restore).
func (s *Store) ReadPage(id string) ([]byte, error) {
	raw, err := os.ReadFile(s.pagePath(id))
	if err != nil {
		return nil, err
	}
	if len(raw) < len(pageMagic)+16 {
		return nil, fmt.Errorf("persist: page %q truncated (%d bytes)", id, len(raw))
	}
	if string(raw[:len(pageMagic)]) != pageMagic {
		return nil, fmt.Errorf("persist: page %q has wrong magic", id)
	}
	hdr := raw[len(pageMagic):]
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != Version {
		return nil, fmt.Errorf("persist: page %q version %d, this build reads %d", id, v, Version)
	}
	size := binary.LittleEndian.Uint64(hdr[4:12])
	sum := binary.LittleEndian.Uint32(hdr[12:16])
	body := hdr[16:]
	if uint64(len(body)) != size {
		return nil, fmt.Errorf("persist: page %q truncated: header says %d payload bytes, file has %d",
			id, size, len(body))
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("persist: page %q failed CRC check", id)
	}
	return body, nil
}

// RemovePage deletes a stream's page file; missing is not an error.
func (s *Store) RemovePage(id string) error {
	if err := os.Remove(s.pagePath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("persist: remove page: %w", err)
	}
	return nil
}
