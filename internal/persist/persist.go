// Package persist is the durable-state subsystem of the streaming daemon:
// it stores full-detector checkpoints and a per-stream write-ahead log of
// the vectors observed since the last checkpoint, so a crashed or
// redeployed process resumes scoring exactly where it stopped instead of
// re-warming on live traffic.
//
// Layout: one Store owns a directory with two files per stream,
//
//	<escaped-id>.snap   — versioned, CRC-checked snapshot (atomic rename)
//	<escaped-id>.wal    — append-only log of raw stream vectors
//
// Recovery contract: load the snapshot, then re-step every WAL record
// whose sequence number is at or past the snapshot's — records below it
// are already folded into the snapshot (a crash between snapshot rename
// and WAL rotation leaves such records behind; the filter makes that
// window harmless). Corrupt or truncated files are detected by magic,
// version and CRC checks and reported; a torn final WAL record — the
// normal shape of a mid-write crash — is reported as ErrTornWAL with the
// valid prefix intact.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	snapMagic = "SADSNAP1"
	walMagic  = "SADWAL01"
	// Version identifies the on-disk layout of both file kinds.
	Version uint32 = 1

	snapSuffix = ".snap"
	walSuffix  = ".wal"
)

// castagnoli is the CRC-32C table used for all integrity checks.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTornWAL reports a WAL whose final record was cut short — the expected
// shape of a crash mid-append. The records before the tear are valid.
var ErrTornWAL = errors.New("persist: torn final WAL record")

// StreamSnapshot is one stream's checkpoint: the opaque detector blob
// (streamad.Detector.Save), the thresholder state and the serving
// counters. Seq is the number of vectors the stream had consumed when the
// snapshot was taken; WAL records with Seq' >= Seq must be replayed on
// recovery.
type StreamSnapshot struct {
	ID        string
	Seq       uint64
	Detector  []byte
	Threshold []byte
	Ready     int
	Alerts    int
}

// WALRecord is one logged stream vector.
type WALRecord struct {
	Seq    uint64
	Vector []float64
}

// Store manages the snapshot and WAL files of a state directory.
type Store struct {
	dir string
	// SyncWAL fsyncs after every WAL append. Off by default: the WAL then
	// survives process crashes (the common case) but a power failure may
	// cost the OS write-back window.
	SyncWAL bool

	mu   sync.Mutex
	wals map[string]*os.File
}

// Open creates (if needed) and opens a state directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create state dir: %w", err)
	}
	return &Store{dir: dir, wals: make(map[string]*os.File)}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Close releases all open WAL handles.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, f := range s.wals {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.wals, id)
	}
	return first
}

// escapeID maps an arbitrary stream id to a safe file-name stem:
// alphanumerics, '-' and '_' pass through, everything else becomes %XX.
// The mapping is injective, so IDs() can invert it.
func escapeID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// unescapeID inverts escapeID.
func unescapeID(name string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(name) {
			return "", fmt.Errorf("persist: malformed escaped stream name %q", name)
		}
		var v int
		if _, err := fmt.Sscanf(name[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("persist: malformed escaped stream name %q", name)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

func (s *Store) snapPath(id string) string { return filepath.Join(s.dir, escapeID(id)+snapSuffix) }
func (s *Store) walPath(id string) string  { return filepath.Join(s.dir, escapeID(id)+walSuffix) }

// IDs lists every stream with persisted state (a snapshot, a WAL, or
// both), sorted.
func (s *Store) IDs() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: read state dir: %w", err)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		var stem string
		switch {
		case strings.HasSuffix(name, snapSuffix):
			stem = strings.TrimSuffix(name, snapSuffix)
		case strings.HasSuffix(name, walSuffix):
			stem = strings.TrimSuffix(name, walSuffix)
		default:
			continue
		}
		id, err := unescapeID(stem)
		if err != nil {
			continue // foreign file; not ours to interpret
		}
		seen[id] = true
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// WriteSnapshot atomically persists a stream snapshot (temp file + fsync +
// rename) and then rotates the stream's WAL. The caller must guarantee no
// concurrent appends for the same stream (the server holds the stream lock).
func (s *Store) WriteSnapshot(snap *StreamSnapshot) error {
	file, err := EncodeSnapshotFile(snap)
	if err != nil {
		return err
	}
	final := s.snapPath(snap.ID)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: create snapshot temp: %w", err)
	}
	if _, err := f.Write(file); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	// The snapshot now covers every logged vector below Seq; drop the WAL.
	// A crash before this truncate is harmless — recovery filters replay by
	// sequence number.
	return s.rotateWAL(snap.ID)
}

// ReadSnapshot loads and verifies a stream's snapshot. A missing file
// returns os.ErrNotExist.
func (s *Store) ReadSnapshot(id string) (*StreamSnapshot, error) {
	raw, err := os.ReadFile(s.snapPath(id))
	if err != nil {
		return nil, err
	}
	snap, err := DecodeSnapshotFile(raw)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot %q: %w", id, err)
	}
	return snap, nil
}

// DecodeSnapshotFile verifies and decodes a snapshot in the on-disk file
// format — the inverse of EncodeSnapshotFile. Cluster migration ships
// these bytes over the wire; the magic, version and CRC checks run on
// the receiving node exactly as they would on a restart.
func DecodeSnapshotFile(raw []byte) (*StreamSnapshot, error) {
	if len(raw) < len(snapMagic)+16 {
		return nil, fmt.Errorf("truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wrong magic")
	}
	hdr := raw[len(snapMagic):]
	version := binary.LittleEndian.Uint32(hdr[0:4])
	if version != Version {
		return nil, fmt.Errorf("version %d, this build reads %d", version, Version)
	}
	size := binary.LittleEndian.Uint64(hdr[4:12])
	sum := binary.LittleEndian.Uint32(hdr[12:16])
	body := hdr[16:]
	if uint64(len(body)) != size {
		return nil, fmt.Errorf("truncated: header says %d payload bytes, file has %d", size, len(body))
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("failed CRC check")
	}
	var snap StreamSnapshot
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	return &snap, nil
}

// walHandle returns (opening if needed) the stream's append handle.
// Callers must hold s.mu.
func (s *Store) walHandle(id string) (*os.File, error) {
	if f, ok := s.wals[id]; ok {
		return f, nil
	}
	f, err := os.OpenFile(s.walPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open WAL: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat WAL: %w", err)
	}
	if info.Size() == 0 {
		var hdr [12]byte
		copy(hdr[:8], walMagic)
		binary.LittleEndian.PutUint32(hdr[8:12], Version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: write WAL header: %w", err)
		}
	}
	s.wals[id] = f
	return f, nil
}

// Append logs one observed vector for a stream. Seq is the index of the
// vector in the stream's lifetime (0-based).
func (s *Store) Append(id string, seq uint64, vector []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.walHandle(id)
	if err != nil {
		return err
	}
	rec := encodeRecord(seq, vector)
	if _, err := f.Write(rec); err != nil {
		return fmt.Errorf("persist: append WAL: %w", err)
	}
	if s.SyncWAL {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("persist: sync WAL: %w", err)
		}
	}
	return nil
}

// encodeRecord lays out one WAL record:
//
//	crc32c  uint32   over the remaining fields
//	count   uint32   vector length
//	seq     uint64
//	vector  count × float64 bits
func encodeRecord(seq uint64, vector []float64) []byte {
	n := len(vector)
	rec := make([]byte, 16+8*n)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(n))
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	for i, v := range vector {
		binary.LittleEndian.PutUint64(rec[16+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(rec[0:4], crc32.Checksum(rec[4:], castagnoli))
	return rec
}

// rotateWAL closes and truncates a stream's WAL after a snapshot.
func (s *Store) rotateWAL(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.wals[id]; ok {
		f.Close()
		delete(s.wals, id)
	}
	if err := os.Remove(s.walPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("persist: rotate WAL: %w", err)
	}
	return nil
}

// ReadWAL returns the stream's logged vectors in append order. A missing
// WAL returns an empty slice. A torn final record returns the valid prefix
// together with ErrTornWAL; any other inconsistency (bad magic, version,
// mid-file CRC failure) returns the valid prefix and a hard error so the
// caller can report it — nothing is ever silently half-loaded.
func (s *Store) ReadWAL(id string) ([]WALRecord, error) {
	raw, err := os.ReadFile(s.walPath(id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: read WAL: %w", err)
	}
	if len(raw) == 0 {
		return nil, nil
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("%w: header cut at %d bytes", ErrTornWAL, len(raw))
	}
	if string(raw[:8]) != walMagic {
		return nil, fmt.Errorf("persist: WAL %q has wrong magic", id)
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != Version {
		return nil, fmt.Errorf("persist: WAL %q version %d, this build reads %d", id, v, Version)
	}
	var recs []WALRecord
	off := 12
	for off < len(raw) {
		if len(raw)-off < 16 {
			return recs, fmt.Errorf("%w: %d trailing bytes", ErrTornWAL, len(raw)-off)
		}
		sum := binary.LittleEndian.Uint32(raw[off : off+4])
		n := int(binary.LittleEndian.Uint32(raw[off+4 : off+8]))
		seq := binary.LittleEndian.Uint64(raw[off+8 : off+16])
		end := off + 16 + 8*n
		if n < 0 || end < off || end > len(raw) {
			return recs, fmt.Errorf("%w: record at offset %d cut short", ErrTornWAL, off)
		}
		if crc32.Checksum(raw[off+4:end], castagnoli) != sum {
			return recs, fmt.Errorf("persist: WAL %q record at offset %d failed CRC check", id, off)
		}
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off+16+8*i:]))
		}
		recs = append(recs, WALRecord{Seq: seq, Vector: vec})
		off = end
	}
	return recs, nil
}

// WALEntries counts the records currently in a stream's WAL without
// decoding vectors; used by tests and diagnostics.
func (s *Store) WALEntries(id string) (int, error) {
	recs, err := s.ReadWAL(id)
	if err != nil && !errors.Is(err, ErrTornWAL) {
		return len(recs), err
	}
	return len(recs), nil
}

// Remove deletes all persisted state of one stream.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	if f, ok := s.wals[id]; ok {
		f.Close()
		delete(s.wals, id)
	}
	s.mu.Unlock()
	var first error
	for _, p := range []string{s.snapPath(id), s.walPath(id), s.pagePath(id)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && first == nil {
			first = err
		}
	}
	return first
}

// EncodeSnapshotFile renders a snapshot in the exact on-disk file format
// (magic, version, CRC, payload) without writing it, for ops endpoints
// that stream checkpoints to backups.
func EncodeSnapshotFile(snap *StreamSnapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return nil, fmt.Errorf("persist: encode snapshot %q: %w", snap.ID, err)
	}
	body := payload.Bytes()
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Version)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(body, castagnoli))
	buf.Write(hdr[:])
	buf.Write(body)
	return buf.Bytes(), nil
}
