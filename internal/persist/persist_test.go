package persist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap := &StreamSnapshot{
		ID:        "sensor/rack-1",
		Seq:       412,
		Detector:  []byte{1, 2, 3, 4},
		Threshold: []byte{9, 8},
		Ready:     300,
		Alerts:    7,
	}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadSnapshot("sensor/rack-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, snap)
	}
}

func TestReadSnapshotMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	if _, err := s.ReadSnapshot("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	defer s.Close()
	snap := &StreamSnapshot{ID: "a", Seq: 10, Detector: []byte("payload")}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: CRC must catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0xFF
	os.WriteFile(path, bad, 0o644)
	if _, err := s.ReadSnapshot("a"); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}

	// Truncate mid-payload: length check must catch it.
	os.WriteFile(path, raw[:len(raw)-3], 0o644)
	if _, err := s.ReadSnapshot("a"); err == nil {
		t.Fatal("truncated snapshot accepted")
	}

	// Wrong magic.
	bad = append([]byte(nil), raw...)
	bad[0] = 'X'
	os.WriteFile(path, bad, 0o644)
	if _, err := s.ReadSnapshot("a"); err == nil {
		t.Fatal("wrong-magic snapshot accepted")
	}
}

func TestWALAppendReadRotate(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	vecs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	for i, v := range vecs {
		if err := s.Append("w", uint64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.ReadWAL("w")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 records, got %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) || !reflect.DeepEqual(r.Vector, vecs[i]) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Snapshot rotates the WAL.
	if err := s.WriteSnapshot(&StreamSnapshot{ID: "w", Seq: 3}); err != nil {
		t.Fatal(err)
	}
	recs, err = s.ReadWAL("w")
	if err != nil || len(recs) != 0 {
		t.Fatalf("after rotate: recs=%d err=%v", len(recs), err)
	}
	// Appends keep working after rotation.
	if err := s.Append("w", 3, []float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	recs, _ = s.ReadWAL("w")
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("post-rotate append: %+v", recs)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Append("t", 0, []float64{1})
	s.Append("t", 1, []float64{2})
	s.Close()
	path := filepath.Join(dir, "t.wal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record short, as a crash mid-write would.
	os.WriteFile(path, raw[:len(raw)-5], 0o644)
	s2, _ := Open(dir)
	defer s2.Close()
	recs, err := s2.ReadWAL("t")
	if !errors.Is(err, ErrTornWAL) {
		t.Fatalf("want ErrTornWAL, got %v", err)
	}
	if len(recs) != 1 || recs[0].Seq != 0 {
		t.Fatalf("want the intact prefix, got %+v", recs)
	}
}

func TestWALMidFileCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Append("c", 0, []float64{1})
	s.Append("c", 1, []float64{2})
	s.Close()
	path := filepath.Join(dir, "c.wal")
	raw, _ := os.ReadFile(path)
	// Flip a byte inside the first record's vector (header is 12 bytes,
	// record header 16, so offset 12+16 is the first payload byte).
	raw[12+16] ^= 0xFF
	os.WriteFile(path, raw, 0o644)
	s2, _ := Open(dir)
	defer s2.Close()
	_, err := s2.ReadWAL("c")
	if err == nil || errors.Is(err, ErrTornWAL) {
		t.Fatalf("want hard CRC error, got %v", err)
	}
}

func TestIDsAndEscaping(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	ids := []string{"plain", "with/slash", "sp ace", "uni·code", "..", "%41"}
	for _, id := range ids {
		if err := s.WriteSnapshot(&StreamSnapshot{ID: id}); err != nil {
			t.Fatalf("snapshot %q: %v", id, err)
		}
	}
	s.Append("wal-only", 0, []float64{1})
	got, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]string(nil), ids...), "wal-only")
	for _, id := range want {
		found := false
		for _, g := range got {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("IDs() missing %q: %v", id, got)
		}
	}
	// Distinct IDs must map to distinct files: each must read back its own.
	for _, id := range ids {
		snap, err := s.ReadSnapshot(id)
		if err != nil || snap.ID != id {
			t.Fatalf("ReadSnapshot(%q) = %+v, %v", id, snap, err)
		}
	}
}

func TestRemove(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	s.WriteSnapshot(&StreamSnapshot{ID: "r"})
	s.Append("r", 0, []float64{1})
	if err := s.Remove("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadSnapshot("r"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot survived Remove: %v", err)
	}
	if recs, _ := s.ReadWAL("r"); len(recs) != 0 {
		t.Fatal("WAL survived Remove")
	}
}
