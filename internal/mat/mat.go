// Package mat provides the dense linear-algebra substrate used by the
// streamad models: vectors, row-major dense matrices, basic decompositions
// and least-squares solvers.
//
// The package is deliberately small and allocation-conscious rather than
// general: it implements exactly what the VAR estimator and the neural
// substrate need, on float64, with no external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible shapes")

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (len rows*cols, row-major) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the underlying row-major storage (aliased, not copied).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul computes a*b into a new matrix.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	c := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// MulVec computes m*x for a column vector x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// AddScaled adds alpha*b to m in place.
func (m *Dense) AddScaled(alpha float64, b *Dense) error {
	if m.rows != b.rows || m.cols != b.cols {
		return ErrShape
	}
	for i, v := range b.data {
		m.data[i] += alpha * v
	}
	return nil
}

// Scale multiplies every element of m by alpha in place.
func (m *Dense) Scale(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// Cholesky computes the lower-triangular factor L with m = L*Lᵀ.
// m must be symmetric positive definite.
func Cholesky(m *Dense) (*Dense, error) {
	if m.rows != m.cols {
		return nil, ErrShape
	}
	n := m.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			lrowI, lrowJ := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= lrowI[k] * lrowJ[k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				lrowI[j] = math.Sqrt(sum)
			} else {
				lrowI[j] = sum / lrowJ[j]
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m*x = b given the Cholesky factor L of m.
func SolveCholesky(l *Dense, b []float64) ([]float64, error) {
	n := l.rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward substitution: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveLS solves the least-squares problem min ‖A*x − b‖₂ via the normal
// equations AᵀA x = Aᵀb with a small ridge term for numerical stability.
func SolveLS(a *Dense, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, ErrShape
	}
	at := a.T()
	ata, err := Mul(at, a)
	if err != nil {
		return nil, err
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	// Ridge scaled to the trace keeps conditioning sane without biasing
	// well-posed systems noticeably.
	n := ata.rows
	var trace float64
	for i := 0; i < n; i++ {
		trace += ata.At(i, i)
	}
	ridge := 1e-9 * (trace/float64(n) + 1)
	for i := 0; i < n; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	l, err := Cholesky(ata)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, atb)
}

// SolveLSMulti solves min ‖A*X − B‖ column-by-column, returning X with one
// solution column per column of B. It factorizes AᵀA once.
func SolveLSMulti(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows {
		return nil, ErrShape
	}
	at := a.T()
	ata, err := Mul(at, a)
	if err != nil {
		return nil, err
	}
	n := ata.rows
	var trace float64
	for i := 0; i < n; i++ {
		trace += ata.At(i, i)
	}
	ridge := 1e-9 * (trace/float64(n) + 1)
	for i := 0; i < n; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	l, err := Cholesky(ata)
	if err != nil {
		return nil, err
	}
	x := NewDense(a.cols, b.cols)
	col := make([]float64, a.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.At(i, j)
		}
		atb, err := at.MulVec(col)
		if err != nil {
			return nil, err
		}
		sol, err := SolveCholesky(l, atb)
		if err != nil {
			return nil, err
		}
		for i, v := range sol {
			x.Set(i, j, v)
		}
	}
	return x, nil
}
