package mat

import "math"

// Dot returns the inner product of a and b. Panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between a and b.
// If either vector has (near-)zero norm the similarity is defined as 0,
// so the cosine nonconformity 1−cos saturates at 1 for degenerate inputs.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na < 1e-300 || nb < 1e-300 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Clamp against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// AddTo computes dst[i] += alpha*src[i] in place and returns dst.
func AddTo(dst []float64, alpha float64, src []float64) []float64 {
	if len(dst) != len(src) {
		panic("mat: AddTo length mismatch")
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
	return dst
}

// Sub returns a−b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// ScaleVec multiplies x by alpha in place and returns x.
func ScaleVec(x []float64, alpha float64) []float64 {
	for i := range x {
		x[i] *= alpha
	}
	return x
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Mean returns the arithmetic mean of x, or 0 for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// MaxAbs returns the largest absolute element of x, or 0 for empty input.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
