package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", m.At(1, 2))
	}
	if got := m.Row(1)[2]; got != 5 {
		t.Fatalf("Row(1)[2] = %v, want 5", got)
	}
}

func TestNewDenseDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	y, err := m.MulVec([]float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseData(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestAddScaledAndScale(t *testing.T) {
	m := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{10, 20})
	if err := m.AddScaled(0.5, b); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 6 || m.At(0, 1) != 12 {
		t.Fatalf("AddScaled = %v", m.Data())
	}
	m.Scale(2)
	if m.At(0, 0) != 12 {
		t.Fatalf("Scale = %v", m.Data())
	}
	if err := m.AddScaled(1, NewDense(2, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix A = LLᵀ with known solution.
	a := NewDenseData(3, 3, []float64{
		4, 2, 0,
		2, 5, 1,
		0, 1, 3,
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Verify L·Lᵀ = A.
	lt := l.T()
	prod, _ := Mul(l, lt)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(prod.At(i, j), a.At(i, j), 1e-10) {
				t.Fatalf("LLᵀ[%d][%d] = %v, want %v", i, j, prod.At(i, j), a.At(i, j))
			}
		}
	}
	x, err := SolveCholesky(l, []float64{6, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Check A·x = b.
	b, _ := a.MulVec(x)
	for i, v := range []float64{6, 8, 4} {
		if !almostEq(b[i], v, 1e-10) {
			t.Fatalf("Ax[%d] = %v, want %v", i, b[i], v)
		}
	}
}

func TestCholeskySingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 1, 1, 1})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLSExact(t *testing.T) {
	// Overdetermined consistent system: y = 2x + 1.
	a := NewDenseData(4, 2, []float64{
		1, 1,
		1, 2,
		1, 3,
		1, 4,
	})
	b := []float64{3, 5, 7, 9}
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-6) || !almostEq(x[1], 2, 1e-6) {
		t.Fatalf("SolveLS = %v, want [1 2]", x)
	}
}

func TestSolveLSMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Random well-conditioned system, two right-hand sides.
	a := NewDense(20, 3)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	trueX := NewDenseData(3, 2, []float64{1, -1, 2, 0.5, -3, 4})
	b, _ := Mul(a, trueX)
	x, err := SolveLSMulti(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(x.At(i, j), trueX.At(i, j), 1e-6) {
				t.Fatalf("X[%d][%d] = %v, want %v", i, j, x.At(i, j), trueX.At(i, j))
			}
		}
	}
}

func TestSolveLSRecoversNoisyRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	a := NewDense(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 3 + 0.5*x + 0.01*rng.NormFloat64()
	}
	sol, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol[0], 3, 0.01) || !almostEq(sol[1], 0.5, 0.01) {
		t.Fatalf("regression = %v, want ≈[3 0.5]", sol)
	}
}

// TestMulAssociativityProperty checks (A·B)·x == A·(B·x) on random inputs.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewDense(3, 4)
		b := NewDense(4, 2)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		ab, _ := Mul(a, b)
		lhs, _ := ab.MulVec(x)
		bx, _ := b.MulVec(x)
		rhs, _ := a.MulVec(bx)
		for i := range lhs {
			if !almostEq(lhs[i], rhs[i], 1e-9*(1+math.Abs(lhs[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeInvolutionProperty checks (Aᵀ)ᵀ == A.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		a := NewDense(rows, cols)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		tt := a.T().T()
		for i := range a.Data() {
			if a.Data()[i] != tt.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
