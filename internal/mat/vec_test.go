package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{2, 2}, []float64{5, 5}, 1},
		{[]float64{0, 0}, []float64{1, 1}, 0}, // degenerate → 0
	}
	for _, c := range cases {
		if got := CosineSimilarity(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("cos(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCosineBoundsProperty checks cos ∈ [−1, 1] for random vectors.
func TestCosineBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
			b[i] = rng.NormFloat64() * 100
		}
		c := CosineSimilarity(a, b)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddToSubScale(t *testing.T) {
	dst := []float64{1, 2}
	AddTo(dst, 2, []float64{10, 20})
	if dst[0] != 21 || dst[1] != 42 {
		t.Fatalf("AddTo = %v", dst)
	}
	d := Sub([]float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatalf("Sub = %v", d)
	}
	ScaleVec(d, 2)
	if d[0] != 6 || d[1] != 4 {
		t.Fatalf("ScaleVec = %v", d)
	}
}

func TestCloneVecIndependent(t *testing.T) {
	a := []float64{1, 2}
	c := CloneVec(a)
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("CloneVec aliases input")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-input moments should be 0")
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-3, 2, 1}); got != 3 {
		t.Fatalf("MaxAbs = %v, want 3", got)
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) should be 0")
	}
}

// TestTriangleInequalityProperty checks ‖a+b‖ ≤ ‖a‖+‖b‖.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		sum := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			sum[i] = a[i] + b[i]
		}
		return Norm2(sum) <= Norm2(a)+Norm2(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2NoOverflowBehavior(t *testing.T) {
	// Large values should not produce Inf for moderate magnitudes.
	if v := Norm2([]float64{1e150, 1e150}); math.IsInf(v, 1) {
		t.Skip("naive norm overflows at 1e150*sqrt2; documented limitation")
	}
}
