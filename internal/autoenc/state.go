package autoenc

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// state is the serializable form of the autoencoder.
type state struct {
	Dim    int
	Net    []byte
	Scaler []byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	net, err := m.net.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sc, err := m.scaler.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state{Dim: m.dim, Net: net, Scaler: sc}); err != nil {
		return nil, fmt.Errorf("autoenc: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver must
// have been constructed with the same Config dimensions.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("autoenc: decode: %w", err)
	}
	if st.Dim != m.dim {
		return fmt.Errorf("autoenc: snapshot dim %d != model dim %d", st.Dim, m.dim)
	}
	if err := m.net.UnmarshalBinary(st.Net); err != nil {
		return err
	}
	return m.scaler.UnmarshalBinary(st.Scaler)
}
