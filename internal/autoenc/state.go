package autoenc

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"streamad/internal/nn"
)

// state is the serializable form of the autoencoder, including the Adam
// moment estimates so resumed fine-tuning continues the exact optimizer
// trajectory.
type state struct {
	Dim    int
	Net    []byte
	Scaler []byte
	Opt    []byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	net, err := m.net.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sc, err := m.scaler.MarshalBinary()
	if err != nil {
		return nil, err
	}
	opt, err := nn.SaveOptimizer(m.opt, m.net.Params())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state{Dim: m.dim, Net: net, Scaler: sc, Opt: opt}); err != nil {
		return nil, fmt.Errorf("autoenc: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver must
// have been constructed with the same Config dimensions.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("autoenc: decode: %w", err)
	}
	if st.Dim != m.dim {
		return fmt.Errorf("autoenc: snapshot dim %d != model dim %d", st.Dim, m.dim)
	}
	if err := m.net.UnmarshalBinary(st.Net); err != nil {
		return err
	}
	if err := m.scaler.UnmarshalBinary(st.Scaler); err != nil {
		return err
	}
	return nn.LoadOptimizer(m.opt, m.net.Params(), st.Opt)
}
