package autoenc

import (
	"math"
	"math/rand"
	"testing"

	"streamad/internal/mat"
)

func sineSet(rng *rand.Rand, n, dim int, level float64) [][]float64 {
	set := make([][]float64, n)
	for i := range set {
		x := make([]float64, dim)
		for j := range x {
			x[j] = level + 1.5*math.Sin(0.3*float64(i+j)) + 0.2*rng.NormFloat64()
		}
		set[i] = x
	}
	return set
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("expected error for Dim=0")
	}
	m, err := New(Config{Dim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 16 {
		t.Fatalf("Dim = %d", m.Dim())
	}
}

func TestLearnsToReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 64
	set := sineSet(rng, 200, dim, 2.5)
	m, _ := New(Config{Dim: dim, Seed: 1})
	lossBefore := m.ReconstructionLoss(set[0])
	for e := 0; e < 15; e++ {
		m.Fit(set)
	}
	lossAfter := m.ReconstructionLoss(set[0])
	if lossAfter >= lossBefore {
		t.Fatalf("training did not reduce loss: %v → %v", lossBefore, lossAfter)
	}
	_, pred := m.Predict(set[10])
	if cos := mat.CosineSimilarity(set[10], pred); cos < 0.95 {
		t.Fatalf("reconstruction cosine = %v, want > 0.95", cos)
	}
}

func TestAnomalyHasHigherError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 64
	set := sineSet(rng, 200, dim, 2.5)
	m, _ := New(Config{Dim: dim, Seed: 2})
	for e := 0; e < 15; e++ {
		m.Fit(set)
	}
	normal := m.ReconstructionLoss(set[5])
	anomalous := make([]float64, dim)
	copy(anomalous, set[5])
	for j := dim / 2; j < dim; j++ {
		anomalous[j] += 6 // large offset anomaly
	}
	if m.ReconstructionLoss(anomalous) <= normal*2 {
		t.Fatalf("anomalous loss %v should clearly exceed normal %v",
			m.ReconstructionLoss(anomalous), normal)
	}
}

func TestScalerAdaptsAtFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 32
	m, _ := New(Config{Dim: dim, Seed: 3})
	// Train on level-100 data (far from origin); without scaling a sigmoid
	// AE could not reconstruct this regime at all.
	set := sineSet(rng, 150, dim, 100)
	for e := 0; e < 15; e++ {
		m.Fit(set)
	}
	_, pred := m.Predict(set[3])
	var maxAbs float64
	for i := range pred {
		d := math.Abs(pred[i] - set[3][i])
		if d > maxAbs {
			maxAbs = d
		}
	}
	if maxAbs > 5 {
		t.Fatalf("reconstruction at level 100 off by %v", maxAbs)
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	m, _ := New(Config{Dim: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestFitSkipsWrongDim(t *testing.T) {
	m, _ := New(Config{Dim: 8, Seed: 4})
	m.Fit([][]float64{{1, 2, 3}}) // silently skipped
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dim := 16
	set := sineSet(rng, 50, dim, 1)
	run := func() float64 {
		m, _ := New(Config{Dim: dim, Seed: 77})
		m.Fit(set)
		_, pred := m.Predict(set[0])
		return pred[0]
	}
	if run() != run() {
		t.Fatal("same seed must give identical models")
	}
}
