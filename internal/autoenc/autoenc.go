// Package autoenc implements the paper's two-layer autoencoder baseline:
//
//	x̂ = r⁻¹( σ(r(x)·W₁ + b₁)·W₂ + b₂ ),
//
// a single sigmoid hidden layer and a linear reconstruction layer over the
// flattened feature vector r(x) ∈ R^{N·w}. It is the simplest
// reconstruction-based model in the evaluation.
package autoenc

import (
	"fmt"
	"math/rand"

	"streamad/internal/nn"
	"streamad/internal/randstate"
)

// Model is the 2-layer reconstruction autoencoder. Inputs are
// standardized with per-dimension moments refreshed at every Fit, so the
// sigmoid hidden layer operates in its responsive range regardless of the
// stream's scale; predictions are mapped back to the original space.
type Model struct {
	net    *nn.MLP
	opt    nn.Optimizer
	scaler *nn.Scaler
	dim    int
	lr     float64        //streamad:transient learning rate fixed at construction; snapshots restore onto an identically-configured model
	grad   []float64      //streamad:transient per-call gradient scratch
	zbuf   []float64      //streamad:transient per-call scaling scratch
	ctx    *nn.MLPContext //streamad:transient training pass scratch, allocated at construction
}

// Config parameterizes the autoencoder.
type Config struct {
	// Dim is the flattened feature-vector length N·w.
	Dim int
	// Hidden is the bottleneck width (default Dim/4, at least 2).
	Hidden int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives weight initialization.
	Seed int64
}

// New returns an initialized 2-layer autoencoder.
func New(cfg Config) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("autoenc: Dim must be positive, got %d", cfg.Dim)
	}
	hidden := cfg.Hidden
	if hidden == 0 {
		hidden = cfg.Dim / 4
	}
	if hidden < 2 {
		hidden = 2
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 1e-3
	}
	rng := rand.New(randstate.NewCountedSource(cfg.Seed))
	net := nn.NewMLP([]int{cfg.Dim, hidden, cfg.Dim}, nn.Sigmoid{}, nn.Identity{}, rng)
	return &Model{
		net:    net,
		opt:    nn.NewAdam(lr),
		scaler: nn.NewScaler(cfg.Dim),
		dim:    cfg.Dim,
		lr:     lr,
		grad:   make([]float64, cfg.Dim),
		zbuf:   make([]float64, cfg.Dim),
		ctx:    net.NewContext(),
	}, nil
}

// CloneModel returns a full-fidelity deep copy — weights, optimizer
// moments and scaler — for the asynchronous fine-tuning path: the clone
// trains on a background goroutine while the original keeps scoring.
func (m *Model) CloneModel() any {
	net := m.net.Clone()
	opt := nn.CloneOptimizer(m.opt, m.net.Params(), net.Params())
	if opt == nil {
		opt = nn.NewAdam(m.lr)
	}
	return &Model{
		net:    net,
		opt:    opt,
		scaler: m.scaler.Clone(),
		dim:    m.dim,
		lr:     m.lr,
		grad:   make([]float64, m.dim),
		zbuf:   make([]float64, m.dim),
		ctx:    net.NewContext(),
	}
}

// Dim returns the feature-vector length.
func (m *Model) Dim() int { return m.dim }

// Predict implements the framework model contract: target is the feature
// vector itself, prediction is its reconstruction in the original space.
//
//streamad:hotpath
func (m *Model) Predict(x []float64) (target, pred []float64) {
	if len(x) != m.dim {
		//streamad:ignore hotalloc panic message on shape violation only
		panic(fmt.Sprintf("autoenc: expected %d values, got %d", m.dim, len(x)))
	}
	z := m.scaler.Transform(x, m.zbuf)
	out := m.net.Predict(z)
	return x, m.scaler.Inverse(out, out)
}

// Fit refreshes the input scaler and runs one reconstruction epoch
// (per-sample Adam steps) over the training set. The whole epoch runs in
// preallocated scratch — zero heap allocations per sample.
func (m *Model) Fit(set [][]float64) {
	m.scaler.Fit(set)
	params := m.net.Params()
	for _, x := range set {
		if len(x) != m.dim {
			continue
		}
		z := m.scaler.Transform(x, m.zbuf)
		out := m.net.ForwardCtx(m.ctx, z)
		_, grad := nn.MSELoss(out, z, m.grad)
		m.net.BackwardCtx(m.ctx, grad)
		nn.ClipGrads(params, 5)
		m.opt.Step(params)
	}
}

// ReconstructionLoss returns the standardized-space MSE between x and its
// reconstruction, exposed for the Figure 1 fine-tuning experiment.
func (m *Model) ReconstructionLoss(x []float64) float64 {
	z := m.scaler.Transform(x, nil)
	out := m.net.Predict(z)
	loss, _ := nn.MSELoss(out, z, nil)
	return loss
}
