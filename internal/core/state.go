package core

import (
	"bytes"
	"encoding"
	"encoding/gob"
	"fmt"
)

// MarshalBinary implements encoding.BinaryMarshaler for the representer:
// the snapshot is the underlying vector ring (the last w stream vectors).
func (r *Representer) MarshalBinary() ([]byte, error) { return r.win.MarshalBinary() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler for the
// representer; the receiver's geometry must match the snapshot. The flat
// mirror is invalidated so the next Push rebuilds it from the ring.
func (r *Representer) UnmarshalBinary(data []byte) error {
	r.primed = false
	if r.flat == nil {
		r.flat = make([]float64, r.rows*r.channels) // paged out by Release
	}
	return r.win.UnmarshalBinary(data)
}

// detectorState is the serializable form of the framework loop: the
// warmup/step counters plus a nested snapshot of every stateful component
// except the model, which the caller snapshots separately (it already has
// its own public SaveModel/LoadModel surface).
type detectorState struct {
	WarmupLeft int
	WarmedUp   bool
	Steps      int
	FineTunes  int
	Sanitized  int
	LastGood   []float64
	Window     []byte
	Train      []byte
	Drift      []byte
	Scorer     []byte
}

// marshalComponent snapshots one framework component, requiring it to
// support binary checkpointing.
func marshalComponent(name string, v interface{}) ([]byte, error) {
	m, ok := v.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: %s component %T does not support checkpointing", name, v)
	}
	b, err := m.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot %s: %w", name, err)
	}
	return b, nil
}

// unmarshalComponent restores one framework component snapshot.
func unmarshalComponent(name string, v interface{}, data []byte) error {
	u, ok := v.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("core: %s component %T does not support checkpointing", name, v)
	}
	if err := u.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("core: restore %s: %w", name, err)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: a full snapshot of
// the detector's streaming state (window, training set, drift reference,
// scorer windows, counters). The model is intentionally not included.
func (d *Detector) MarshalBinary() ([]byte, error) {
	st := detectorState{
		WarmupLeft: d.warmupLeft,
		WarmedUp:   d.warmedUp,
		Steps:      d.steps,
		FineTunes:  d.fineTunes,
		Sanitized:  d.sanitized,
		LastGood:   append([]float64(nil), d.lastGood...),
	}
	var err error
	if st.Window, err = marshalComponent("representation", d.cfg.Representer); err != nil {
		return nil, err
	}
	if st.Train, err = marshalComponent("training-set", d.cfg.TrainingSet); err != nil {
		return nil, err
	}
	if st.Drift, err = marshalComponent("drift", d.cfg.Drift); err != nil {
		return nil, err
	}
	if st.Scorer, err = marshalComponent("scorer", d.cfg.Scorer); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("core: encode detector: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler: it restores a
// snapshot into a detector assembled with an identically configured set of
// components. Component-level geometry checks reject mismatched shapes.
func (d *Detector) UnmarshalBinary(data []byte) error {
	var st detectorState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("core: decode detector: %w", err)
	}
	if err := unmarshalComponent("representation", d.cfg.Representer, st.Window); err != nil {
		return err
	}
	if err := unmarshalComponent("training-set", d.cfg.TrainingSet, st.Train); err != nil {
		return err
	}
	if err := unmarshalComponent("drift", d.cfg.Drift, st.Drift); err != nil {
		return err
	}
	if err := unmarshalComponent("scorer", d.cfg.Scorer, st.Scorer); err != nil {
		return err
	}
	d.warmupLeft = st.WarmupLeft
	d.warmedUp = st.WarmedUp
	d.steps = st.Steps
	d.fineTunes = st.FineTunes
	d.sanitized = st.Sanitized
	switch {
	case len(st.LastGood) > 0:
		d.lastGood = append([]float64(nil), st.LastGood...)
		d.sanBuf = make([]float64, len(st.LastGood))
	case d.cfg.Sanitize:
		// Older snapshot with no repair history: keep the buffers the
		// constructor allocated (zeroed), so sanitize stays alloc-free.
		for i := range d.lastGood {
			d.lastGood[i] = 0
		}
	default:
		d.lastGood = nil
		d.sanBuf = nil
	}
	// A full restore reallocates every component's backing storage, so a
	// paged-out detector loaded from snapshot is resident again.
	d.paged = false
	return nil
}
