package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"streamad/internal/drift"
	"streamad/internal/reservoir"
	"streamad/internal/score"
)

// echoModel predicts the feature vector shifted by a constant bias; its
// Fit learns the bias from the training set, so fine-tuning measurably
// changes predictions.
type echoModel struct {
	bias float64
	fits int
}

func (m *echoModel) Predict(x []float64) (target, pred []float64) {
	pred = make([]float64, len(x))
	for i, v := range x {
		pred[i] = v + m.bias
	}
	return x, pred
}

func (m *echoModel) Fit(set [][]float64) {
	m.fits++
	m.bias /= 2 // fine-tuning improves the model
}

// constScorer lets tests observe the raw nonconformity flow.
type constScorer struct{ last float64 }

func (c *constScorer) Score(a float64) float64 { c.last = a; return a }
func (c *constScorer) Reset()                  {}
func (c *constScorer) Name() string            { return "test" }

func testConfig(model Model, w, n, m, warm int) Config {
	return Config{
		Representer:   NewRepresenter(w, n),
		Model:         model,
		TrainingSet:   reservoir.NewSlidingWindow(m, w*n),
		Drift:         drift.NewMuSigmaChange(w * n),
		Measure:       score.Cosine{},
		Scorer:        &constScorer{},
		WarmupVectors: warm,
	}
}

func TestRepresenter(t *testing.T) {
	r := NewRepresenter(3, 2)
	if r.Dim() != 6 || r.Rows() != 3 || r.Channels() != 2 {
		t.Fatal("representer dims")
	}
	if _, ok := r.Push([]float64{1, 2}); ok {
		t.Fatal("not full yet")
	}
	r.Push([]float64{3, 4})
	x, ok := r.Push([]float64{5, 6})
	if !ok {
		t.Fatal("should be full")
	}
	want := []float64{1, 2, 3, 4, 5, 6}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Next push slides the window.
	x, _ = r.Push([]float64{7, 8})
	if x[0] != 3 || x[5] != 8 {
		t.Fatalf("slid window = %v", x)
	}
}

func TestNewDetectorValidation(t *testing.T) {
	cfg := testConfig(&echoModel{}, 2, 1, 3, 3)
	cfg.Model = nil
	if _, err := NewDetector(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("missing model: %v", err)
	}
	cfg = testConfig(&echoModel{}, 2, 1, 3, 3)
	cfg.Measure = nil
	if _, err := NewDetector(cfg); !errors.Is(err, ErrConfig) {
		t.Fatal("predictor without measure must fail")
	}
	cfg = testConfig(&echoModel{}, 2, 1, 3, 3)
	cfg.WarmupVectors = -1
	if _, err := NewDetector(cfg); !errors.Is(err, ErrConfig) {
		t.Fatal("negative warmup must fail")
	}
}

type fitOnlyModel struct{}

func (fitOnlyModel) Fit([][]float64) {}

func TestNewDetectorRejectsScorelessModel(t *testing.T) {
	cfg := testConfig(fitOnlyModel{}, 2, 1, 3, 3)
	if _, err := NewDetector(cfg); !errors.Is(err, ErrConfig) {
		t.Fatal("model without Predict/NonconformityScore must fail")
	}
}

func TestNewDetectorRejectsMeasureWithoutPredictor(t *testing.T) {
	// A self-scoring-only model combined with a nonconformity measure has
	// no prediction pair to measure — the config must be rejected rather
	// than crash at the first Step.
	cfg := testConfig(&selfScoringModel{}, 2, 1, 3, 3)
	if _, err := NewDetector(cfg); !errors.Is(err, ErrConfig) {
		t.Fatal("measure with self-scoring-only model must fail")
	}
}

type selfScoringModel struct{ score float64 }

func (s *selfScoringModel) Fit([][]float64) {}
func (s *selfScoringModel) NonconformityScore(x []float64) float64 {
	return s.score
}

func TestSelfScoringPath(t *testing.T) {
	cfg := testConfig(&selfScoringModel{score: 0.42}, 2, 1, 3, 2)
	cfg.Measure = nil
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	var ok bool
	for i := 0; i < 10; i++ {
		res, ok = det.Step([]float64{float64(i)})
	}
	if !ok || res.Nonconformity != 0.42 {
		t.Fatalf("self-scoring result = %+v ok=%v", res, ok)
	}
}

func TestWarmupLifecycle(t *testing.T) {
	model := &echoModel{bias: 1}
	det, err := NewDetector(testConfig(model, 2, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// w−1 = 1 step to fill the window, then 4 warmup vectors.
	steps := 0
	for ; steps < 5; steps++ {
		if _, ok := det.Step([]float64{float64(steps)}); ok {
			t.Fatalf("step %d should still be warming up", steps)
		}
	}
	if !det.WarmedUp() {
		t.Fatal("warmup should have completed")
	}
	if model.fits != 1 {
		t.Fatalf("initial fit count = %d, want 1", model.fits)
	}
	if _, ok := det.Step([]float64{99}); !ok {
		t.Fatal("post-warmup step must produce a result")
	}
	if det.Steps() != 6 {
		t.Fatalf("Steps = %d", det.Steps())
	}
}

func TestInitEpochs(t *testing.T) {
	model := &echoModel{}
	cfg := testConfig(model, 2, 1, 3, 3)
	cfg.InitEpochs = 5
	det, _ := NewDetector(cfg)
	// A constant stream never triggers drift, so only the initial fit runs.
	for i := 0; i < 10; i++ {
		det.Step([]float64{1})
	}
	if model.fits != 5 {
		t.Fatalf("init fits = %d, want 5", model.fits)
	}
}

func TestFineTuneOnDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := &echoModel{bias: 0.5}
	det, err := NewDetector(testConfig(model, 2, 1, 20, 20))
	if err != nil {
		t.Fatal(err)
	}
	// Stationary warmup around 0.
	i := 0
	for ; i < 40; i++ {
		det.Step([]float64{rng.NormFloat64() * 0.1})
	}
	if !det.WarmedUp() {
		t.Fatal("not warmed up")
	}
	initFits := model.fits
	// Strong level shift → μ/σ drift → fine-tune (possibly more than once
	// while the shift is transiting the training set).
	fineTuned := false
	for ; i < 120; i++ {
		res, ok := det.Step([]float64{10 + rng.NormFloat64()*0.1})
		if ok && res.FineTuned {
			fineTuned = true
		}
	}
	if !fineTuned {
		t.Fatal("drift-driven fine-tune never happened")
	}
	if model.fits <= initFits {
		t.Fatalf("fits = %d, want > %d", model.fits, initFits)
	}
	if det.FineTunes() < 1 {
		t.Fatalf("FineTunes = %d", det.FineTunes())
	}
	if det.DriftOps().Adds == 0 {
		t.Fatal("drift ops should be counted")
	}
}

func TestRunProducesAlignedOutputs(t *testing.T) {
	model := &echoModel{bias: 0.1}
	det, _ := NewDetector(testConfig(model, 3, 2, 5, 5))
	series := make([][]float64, 30)
	for i := range series {
		series[i] = []float64{float64(i), float64(-i)}
	}
	scores, valid := det.Run(series)
	if len(scores) != 30 || len(valid) != 30 {
		t.Fatal("output lengths")
	}
	// First w−1+warmup = 2+5 = 7 steps invalid.
	for i := 0; i < 7; i++ {
		if valid[i] {
			t.Fatalf("step %d should be invalid", i)
		}
	}
	for i := 7; i < 30; i++ {
		if !valid[i] {
			t.Fatalf("step %d should be valid", i)
		}
		if math.IsNaN(scores[i]) {
			t.Fatalf("NaN at %d", i)
		}
	}
}

func TestZeroWarmupStillFitsOnce(t *testing.T) {
	model := &echoModel{}
	cfg := testConfig(model, 2, 1, 3, 0)
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det.Step([]float64{1})
	det.Step([]float64{2}) // window full; warmup of 0 → immediate fit
	if model.fits != 1 {
		t.Fatalf("fits = %d, want 1 immediate initial fit", model.fits)
	}
}

// TestScratchPreallocated pins the constructor-time allocation of the
// scoring-path scratch: sanitize and attribute used to allocate their
// buffers lazily on first use, which put a make on the hot path (the
// transitive hotalloc audit flags it). The buffers must exist before the
// first Step, and survive a Load of a snapshot with no repair history.
func TestScratchPreallocated(t *testing.T) {
	cfg := testConfig(&echoModel{bias: 1}, 2, 3, 8, 4)
	cfg.Sanitize = true
	cfg.Attribution = true
	cfg.Scorer = score.Raw{} // checkpointable, so the snapshot below works
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.lastGood) != 3 || len(d.sanBuf) != 3 {
		t.Fatalf("sanitize buffers not preallocated: lastGood=%d sanBuf=%d", len(d.lastGood), len(d.sanBuf))
	}
	if len(d.attrBuf) != 3 {
		t.Fatalf("attribution buffer not preallocated: %d", len(d.attrBuf))
	}

	// First sanitize call must repair against the zeroed history without
	// allocating; first attribute call must have its buffer ready.
	out := d.sanitize([]float64{1, math.NaN(), 3})
	if out[1] != 0 {
		t.Fatalf("first-step repair = %v, want last-good default 0", out[1])
	}

	// A snapshot taken before any repair has no LastGood history; loading
	// it must keep the constructor's buffers rather than nil them.
	clean, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := clean.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if len(d.lastGood) != 3 || len(d.sanBuf) != 3 {
		t.Fatalf("sanitize buffers lost across Load: lastGood=%d sanBuf=%d", len(d.lastGood), len(d.sanBuf))
	}
}
