package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cloner is the optional model capability behind asynchronous
// fine-tuning: CloneModel returns a full-fidelity deep copy — weights,
// optimizer state, scalers — that can train on a background goroutine
// while the original keeps scoring. The returned value must implement
// Model (and whichever of Predictor/SelfScoring the original does).
type Cloner interface {
	CloneModel() any
}

// FineTuneBuckets are the upper bounds (seconds) of the fine-tune
// duration histogram in FineTuneStats; an implicit +Inf bucket follows.
var FineTuneBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// FineTuneStats is a point-in-time snapshot of the detector's
// fine-tuning activity, safe to call from any goroutine.
type FineTuneStats struct {
	// Async reports whether the serve/train split is active (the config
	// asked for it and the model supports cloning).
	Async bool
	// InFlight reports whether a background fine-tune is running now.
	InFlight bool
	// Launched counts asynchronous fine-tunes started.
	Launched int64
	// Skipped counts drift triggers dropped because a fine-tune was
	// already in flight.
	Skipped int64
	// Completed counts finished fine-tuning epochs, sync and async.
	Completed int64
	// LastSeconds and TotalSeconds are the duration of the most recent
	// fine-tune and the sum over all of them.
	LastSeconds  float64
	TotalSeconds float64
	// Buckets is the duration histogram: Buckets[i] counts fine-tunes
	// that took ≤ FineTuneBuckets[i] seconds (non-cumulative), with the
	// final element counting everything slower than the last bound.
	Buckets []uint64
}

// trainedModel wraps a freshly fine-tuned model for atomic hand-off from
// the trainer goroutine to the scoring loop.
type trainedModel struct {
	model Model
}

// trainer holds the serve/train split state: the in-flight flag, the
// pending trained model awaiting adoption, and the duration metrics.
// All fields are atomics (or only touched by the Step goroutine) so the
// background fine-tune never contends with scoring.
type trainer struct {
	inFlight   atomic.Int32
	pending    atomic.Pointer[trainedModel]
	wg         sync.WaitGroup
	launched   atomic.Int64
	skipped    atomic.Int64
	completed  atomic.Int64
	lastNanos  atomic.Int64
	totalNanos atomic.Int64
	bucketHits []atomic.Uint64 // len(FineTuneBuckets)+1
}

func newTrainer() *trainer {
	return &trainer{bucketHits: make([]atomic.Uint64, len(FineTuneBuckets)+1)}
}

// record accumulates one fine-tune duration into the metrics.
func (t *trainer) record(d time.Duration) {
	t.completed.Add(1)
	t.lastNanos.Store(int64(d))
	t.totalNanos.Add(int64(d))
	secs := d.Seconds()
	i := 0
	for ; i < len(FineTuneBuckets); i++ {
		if secs <= FineTuneBuckets[i] {
			break
		}
	}
	t.bucketHits[i].Add(1)
}

// fineTune handles a drift trigger. In synchronous mode (the default) it
// runs the fine-tuning epoch inline, exactly as before. In asynchronous
// mode it clones the model, snapshots R_train and trains on a background
// goroutine, publishing the result for adoption at a later Step; scoring
// continues on the old parameters meanwhile. A trigger that lands while a
// fine-tune is already in flight is counted and dropped. Returns whether
// a fine-tune was started (sync: also finished).
//
//streamad:lifecycle — the async trainer goroutine is joined by WaitFineTune/adoption.
func (d *Detector) fineTune() bool {
	if !d.asyncFT {
		start := time.Now()
		d.cfg.Model.Fit(d.cfg.TrainingSet.Items())
		d.train.record(time.Since(start))
		d.cfg.Drift.Reset(d.cfg.TrainingSet)
		d.fineTunes++
		return true
	}
	if !d.train.inFlight.CompareAndSwap(0, 1) {
		d.train.skipped.Add(1)
		d.cfg.Drift.Reset(d.cfg.TrainingSet)
		return false
	}
	clone := d.cfg.Model.(Cloner).CloneModel().(Model)
	set := snapshotSet(d.cfg.TrainingSet.Items())
	d.cfg.Drift.Reset(d.cfg.TrainingSet)
	d.train.launched.Add(1)
	d.train.wg.Add(1)
	go func() {
		defer d.train.wg.Done()
		start := time.Now()
		clone.Fit(set)
		d.train.record(time.Since(start))
		// Publish before clearing inFlight so a new launch can only start
		// once its predecessor's result is visible for adoption.
		d.train.pending.Store(&trainedModel{model: clone})
		d.train.inFlight.Store(0)
	}()
	return true
}

// adoptTrained swaps in a background-trained model if one is pending.
// Called at Step entry on the scoring goroutine, so model installation
// never races with Predict.
func (d *Detector) adoptTrained() {
	p := d.train.pending.Swap(nil)
	if p == nil {
		return
	}
	d.installModel(p.model)
	d.fineTunes++
}

// installModel rewires the detector's cached model interfaces.
func (d *Detector) installModel(m Model) {
	d.cfg.Model = m
	if d.selfScore != nil {
		d.selfScore = m.(SelfScoring)
	} else {
		d.predictor = m.(Predictor)
	}
}

// WaitFineTune blocks until any in-flight asynchronous fine-tune has
// finished, then adopts its model immediately. It must be called from the
// same goroutine that calls Step (the detector's single-writer
// discipline); after it returns, the detector scores with the newest
// parameters — checkpointing and the async-vs-sync equivalence tests use
// it to drain the trainer. A no-op in synchronous mode.
func (d *Detector) WaitFineTune() {
	if !d.asyncFT {
		return
	}
	d.train.wg.Wait()
	d.adoptTrained()
}

// FineTuneStats returns a snapshot of fine-tuning activity. Unlike most
// Detector methods it is safe to call from any goroutine.
func (d *Detector) FineTuneStats() FineTuneStats {
	st := FineTuneStats{
		Async:        d.asyncFT,
		InFlight:     d.train.inFlight.Load() != 0,
		Launched:     d.train.launched.Load(),
		Skipped:      d.train.skipped.Load(),
		Completed:    d.train.completed.Load(),
		LastSeconds:  float64(d.train.lastNanos.Load()) / 1e9,
		TotalSeconds: float64(d.train.totalNanos.Load()) / 1e9,
		Buckets:      make([]uint64, len(d.train.bucketHits)),
	}
	for i := range d.train.bucketHits {
		st.Buckets[i] = d.train.bucketHits[i].Load()
	}
	return st
}

// snapshotSet deep-copies the training set for the background trainer:
// reservoir implementations reuse row storage in place, so the trainer
// cannot read the live rows while the stream keeps observing.
func snapshotSet(items [][]float64) [][]float64 {
	total := 0
	for _, it := range items {
		total += len(it)
	}
	backing := make([]float64, 0, total)
	out := make([][]float64, len(items))
	for i, it := range items {
		backing = append(backing, it...)
		out[i] = backing[len(backing)-len(it):]
	}
	return out
}
