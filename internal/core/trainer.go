package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cloner is the optional model capability behind asynchronous
// fine-tuning: CloneModel returns a full-fidelity deep copy — weights,
// optimizer state, scalers — that can train on a background goroutine
// while the original keeps scoring. The returned value must implement
// Model (and whichever of Predictor/SelfScoring the original does).
type Cloner interface {
	CloneModel() any
}

// TrainerPool is the shared bounded fine-tune pool the detector can route
// asynchronous training through instead of spawning per-fine-tune
// goroutines (implemented by internal/pool.Trainer). Submit queues one
// job for the stream key; the returned cancel reports true when it won
// the race against dequeue, in which case the job will never run and the
// caller owns its cleanup.
type TrainerPool interface {
	Submit(key string, run func()) (cancel func() bool)
}

// FineTuneBuckets are the upper bounds (seconds) of the fine-tune
// duration histogram in FineTuneStats; an implicit +Inf bucket follows.
var FineTuneBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// FineTuneStats is a point-in-time snapshot of the detector's
// fine-tuning activity, safe to call from any goroutine.
type FineTuneStats struct {
	// Async reports whether the serve/train split is active (the config
	// asked for it and the model supports cloning).
	Async bool
	// InFlight reports whether a background fine-tune is running now.
	InFlight bool
	// Launched counts asynchronous fine-tunes started.
	Launched int64
	// Skipped counts drift triggers dropped because a fine-tune was
	// already in flight.
	Skipped int64
	// Completed counts finished fine-tuning epochs, sync and async.
	Completed int64
	// LastSeconds and TotalSeconds are the duration of the most recent
	// fine-tune and the sum over all of them.
	LastSeconds  float64
	TotalSeconds float64
	// Buckets is the duration histogram: Buckets[i] counts fine-tunes
	// that took ≤ FineTuneBuckets[i] seconds (non-cumulative), with the
	// final element counting everything slower than the last bound.
	Buckets []uint64
}

// trainedModel wraps a freshly fine-tuned model for atomic hand-off from
// the trainer goroutine to the scoring loop.
type trainedModel struct {
	model Model
}

// trainer holds the serve/train split state: the in-flight flag, the
// pending trained model awaiting adoption, and the duration metrics.
// All fields are atomics (or only touched by the Step goroutine) so the
// background fine-tune never contends with scoring.
type trainer struct {
	inFlight   atomic.Int32
	pending    atomic.Pointer[trainedModel]
	wg         sync.WaitGroup
	cancel     func() bool // pending pool job's cancel; scoring-goroutine only
	launched   atomic.Int64
	skipped    atomic.Int64
	completed  atomic.Int64
	lastNanos  atomic.Int64
	totalNanos atomic.Int64
	bucketHits []atomic.Uint64 // len(FineTuneBuckets)+1
}

func newTrainer() *trainer {
	return &trainer{bucketHits: make([]atomic.Uint64, len(FineTuneBuckets)+1)}
}

// record accumulates one fine-tune duration into the metrics.
func (t *trainer) record(d time.Duration) {
	t.completed.Add(1)
	t.lastNanos.Store(int64(d))
	t.totalNanos.Add(int64(d))
	secs := d.Seconds()
	i := 0
	for ; i < len(FineTuneBuckets); i++ {
		if secs <= FineTuneBuckets[i] {
			break
		}
	}
	t.bucketHits[i].Add(1)
}

// fineTune handles a drift trigger. In synchronous mode (the default) it
// runs the fine-tuning epoch inline, exactly as before. In asynchronous
// mode it clones the model, snapshots R_train and trains on a background
// goroutine, publishing the result for adoption at a later Step; scoring
// continues on the old parameters meanwhile. A trigger that lands while a
// fine-tune is already in flight is counted and dropped. Returns whether
// a fine-tune was started (sync: also finished).
//
//streamad:lifecycle — the async trainer goroutine is joined by WaitFineTune/adoption.
func (d *Detector) fineTune() bool {
	if !d.asyncFT {
		start := time.Now()
		d.cfg.Model.Fit(d.cfg.TrainingSet.Items())
		d.train.record(time.Since(start))
		d.cfg.Drift.Reset(d.cfg.TrainingSet)
		d.fineTunes++
		return true
	}
	if !d.train.inFlight.CompareAndSwap(0, 1) {
		d.train.skipped.Add(1)
		d.cfg.Drift.Reset(d.cfg.TrainingSet)
		return false
	}
	if d.poolFT {
		// Pool mode: enqueue a job that clones the model and snapshots the
		// training set lazily when a slot dequeues it, so however long the
		// job queues it pins no deep copies. Step excludes that snapshot
		// phase via trainMu (already held here — Step calls fineTune).
		d.cfg.Drift.Reset(d.cfg.TrainingSet)
		d.train.launched.Add(1)
		d.train.wg.Add(1)
		d.train.cancel = d.cfg.TrainerPool.Submit(d.cfg.TrainerKey, d.poolFineTune)
		return true
	}
	clone := d.cfg.Model.(Cloner).CloneModel().(Model)
	set := snapshotSet(d.cfg.TrainingSet.Items())
	d.cfg.Drift.Reset(d.cfg.TrainingSet)
	d.train.launched.Add(1)
	d.train.wg.Add(1)
	go func() {
		defer d.train.wg.Done()
		start := time.Now()
		clone.Fit(set)
		d.train.record(time.Since(start))
		// Publish before clearing inFlight so a new launch can only start
		// once its predecessor's result is visible for adoption.
		d.train.pending.Store(&trainedModel{model: clone})
		d.train.inFlight.Store(0)
	}()
	return true
}

// poolFineTune is the body of a trainer-pool job: clone and snapshot
// under trainMu (excluding Step for just that phase), then train outside
// the lock and publish for adoption, exactly like the goroutine path.
// Runs on a pool slot, or inline on the scoring goroutine when a drain
// wins the cancel race.
func (d *Detector) poolFineTune() {
	defer d.train.wg.Done()
	d.trainMu.Lock()
	clone := d.cfg.Model.(Cloner).CloneModel().(Model)
	set := snapshotSet(d.cfg.TrainingSet.Items())
	d.trainMu.Unlock()
	start := time.Now()
	clone.Fit(set)
	d.train.record(time.Since(start))
	// Publish before clearing inFlight so a new launch can only start
	// once its predecessor's result is visible for adoption.
	d.train.pending.Store(&trainedModel{model: clone})
	d.train.inFlight.Store(0)
}

// drainPool settles the detector's pending trainer-pool job: if it is
// still queued the cancel wins and the job either runs inline (train) or
// is discarded (a dropped fine-tune, e.g. at eviction); if a slot already
// claimed it, the wait joins it. Must run on the scoring goroutine with
// trainMu NOT held.
func (d *Detector) drainPool(train bool) {
	c := d.train.cancel
	d.train.cancel = nil
	if c != nil && c() {
		if train {
			d.poolFineTune()
		} else {
			d.train.wg.Done()
			d.train.inFlight.Store(0)
		}
	}
	d.train.wg.Wait()
}

// adoptTrained swaps in a background-trained model if one is pending.
// Called at Step entry on the scoring goroutine, so model installation
// never races with Predict.
func (d *Detector) adoptTrained() {
	p := d.train.pending.Swap(nil)
	if p == nil {
		return
	}
	d.installModel(p.model)
	d.fineTunes++
}

// installModel rewires the detector's cached model interfaces.
func (d *Detector) installModel(m Model) {
	d.cfg.Model = m
	if d.selfScore != nil {
		d.selfScore = m.(SelfScoring)
	} else {
		d.predictor = m.(Predictor)
	}
}

// WaitFineTune blocks until any in-flight asynchronous fine-tune has
// finished, then adopts its model immediately. It must be called from the
// same goroutine that calls Step (the detector's single-writer
// discipline); after it returns, the detector scores with the newest
// parameters — checkpointing and the async-vs-sync equivalence tests use
// it to drain the trainer. A no-op in synchronous mode.
func (d *Detector) WaitFineTune() {
	if !d.asyncFT {
		return
	}
	if d.poolFT {
		d.drainPool(true)
	} else {
		d.train.wg.Wait()
	}
	d.adoptTrained()
}

// Close settles any outstanding asynchronous training without adopting
// its result: a queued pool fine-tune is canceled (its model would be
// discarded anyway), an in-flight one is joined. After Close the detector
// holds no pool or goroutine references; eviction paths must call it so a
// TTL-evicted stream cannot leak an in-flight trainer. Safe to call more
// than once; the detector remains usable (a later Step may trigger new
// fine-tunes).
func (d *Detector) Close() {
	if !d.asyncFT {
		return
	}
	if d.poolFT {
		d.drainPool(false)
	} else {
		d.train.wg.Wait()
	}
}

// FineTuneStats returns a snapshot of fine-tuning activity. Unlike most
// Detector methods it is safe to call from any goroutine.
func (d *Detector) FineTuneStats() FineTuneStats {
	st := FineTuneStats{
		Async:        d.asyncFT,
		InFlight:     d.train.inFlight.Load() != 0,
		Launched:     d.train.launched.Load(),
		Skipped:      d.train.skipped.Load(),
		Completed:    d.train.completed.Load(),
		LastSeconds:  float64(d.train.lastNanos.Load()) / 1e9,
		TotalSeconds: float64(d.train.totalNanos.Load()) / 1e9,
		Buckets:      make([]uint64, len(d.train.bucketHits)),
	}
	for i := range d.train.bucketHits {
		st.Buckets[i] = d.train.bucketHits[i].Load()
	}
	return st
}

// snapshotSet deep-copies the training set for the background trainer:
// reservoir implementations reuse row storage in place, so the trainer
// cannot read the live rows while the stream keeps observing.
func snapshotSet(items [][]float64) [][]float64 {
	total := 0
	for _, it := range items {
		total += len(it)
	}
	backing := make([]float64, 0, total)
	out := make([][]float64, len(items))
	for i, it := range items {
		backing = append(backing, it...)
		out[i] = backing[len(backing)-len(it):]
	}
	return out
}
