// Package core implements the extended SAFARI framework of the paper: the
// four fundamental components of a streaming anomaly detection algorithm —
// data representation (Definition III.1), learning strategy (III.2, split
// into Task 1 training-set maintenance and Task 2 drift-triggered
// fine-tuning), nonconformity measure (III.3) and anomaly scoring (III.4) —
// wired into a single streaming Detector.
//
// The reference parameters θ_t = {θ_model, R_train,t} generalize SAFARI's
// reference group: the Task 1 strategy maintains R_train, the Task 2
// detector watches it for concept drift, and a drift triggers one
// fine-tuning epoch of the model on the current training set.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"streamad/internal/drift"
	"streamad/internal/reservoir"
	"streamad/internal/score"
	"streamad/internal/window"
)

// Model is a machine-learning model pluggable into the framework. Every
// model must also implement either Predictor or SelfScoring so the
// framework can derive nonconformity scores from it.
type Model interface {
	// Fit runs one fine-tuning epoch over the training set, the update
	// θ_model,t = θ_model,t−1 − grads of the paper.
	Fit(set [][]float64)
}

// Predictor models return the (target, prediction) pair that the
// nonconformity measure compares: reconstruction models return (x, x̂);
// forecasting models return (s_t, ŝ_t).
type Predictor interface {
	Predict(x []float64) (target, pred []float64)
}

// SelfScoring models produce their nonconformity score directly instead of
// a prediction pair; PCB-iForest is the paper's instance.
type SelfScoring interface {
	NonconformityScore(x []float64) float64
}

// Representer is the data representation D: it turns the last w stream
// vectors into the feature vector x_t ∈ R^{w×N} (Definition III.1).
type Representer struct {
	win      *window.VecRing
	channels int
	rows     int
	flat     []float64
	// primed marks flat as an up-to-date mirror of the ring, enabling the
	// incremental shift-one-row update instead of a full w-row rebuild.
	primed bool
}

// NewRepresenter returns a representation of rows stream vectors of N
// channels each.
func NewRepresenter(rows, channels int) *Representer {
	return &Representer{
		win:      window.NewVecRing(rows, channels),
		channels: channels,
		rows:     rows,
		flat:     make([]float64, rows*channels),
	}
}

// Push adds stream vector s and returns the current feature vector
// (row-major, oldest row first) once w vectors have accumulated. The
// returned slice is reused across calls; copy it to retain.
//
//streamad:hotpath
func (r *Representer) Push(s []float64) (x []float64, ok bool) {
	r.win.Push(s)
	if !r.win.Full() {
		return nil, false
	}
	if r.primed {
		// flat already mirrored the previous window: one memmove drops the
		// oldest row, then only the new row is copied in.
		n := r.channels
		copy(r.flat, r.flat[n:])
		copy(r.flat[(r.rows-1)*n:], s)
		return r.flat, true
	}
	for i := 0; i < r.rows; i++ {
		copy(r.flat[i*r.channels:(i+1)*r.channels], r.win.At(i))
	}
	r.primed = true
	return r.flat, true
}

// Dim returns the flattened feature-vector length w·N.
func (r *Representer) Dim() int { return r.rows * r.channels }

// Rows returns w.
func (r *Representer) Rows() int { return r.rows }

// Channels returns N.
func (r *Representer) Channels() int { return r.channels }

// Config assembles a Detector from the four framework components.
type Config struct {
	// Representer is the data representation D (required).
	Representer *Representer
	// Model is the ML model (required).
	Model Model
	// TrainingSet is the Task 1 strategy maintaining R_train (required).
	TrainingSet reservoir.TrainingSet
	// Drift is the Task 2 strategy deciding when to fine-tune (required).
	Drift drift.Detector
	// Measure is the nonconformity measure A. It may be nil only when the
	// model is SelfScoring.
	Measure score.Nonconformity
	// Scorer is the anomaly scoring function F (required).
	Scorer score.Scorer
	// WarmupVectors is the number of feature vectors collected before the
	// initial training; the paper uses the first 5000 time steps.
	WarmupVectors int
	// InitEpochs is the number of epochs of the initial fit (default 1).
	InitEpochs int
	// PreTrained skips the initial fit at the end of warmup: the warmup
	// still fills the training set and initializes the drift reference,
	// but the model parameters — e.g. restored from a snapshot — are left
	// untouched until the first drift-triggered fine-tune.
	PreTrained bool
	// Sanitize replaces NaN/±Inf stream values with the channel's last
	// finite value (or 0 before one exists) instead of letting them poison
	// every running statistic. Real telemetry has gaps; with Sanitize off,
	// a single NaN propagates into the training set, the drift statistics
	// and the model weights.
	Sanitize bool
	// Attribution computes, for predictor models, the per-channel share
	// of the prediction error at every step (Result.Attribution), so an
	// alert can name the channels that drove it. Self-scoring models
	// (PCB-iForest, kNN) have no prediction pair to decompose.
	Attribution bool
	// AsyncFineTune enables the serve/train split: a drift-triggered
	// fine-tune clones the model and trains the clone on a background
	// goroutine over a snapshot of R_train, while scoring continues on
	// the old parameters; the trained model is adopted at a later Step.
	// Requires a model implementing Cloner — otherwise fine-tuning
	// silently stays synchronous. Off by default: synchronous mode is
	// bit-identical and fully deterministic.
	AsyncFineTune bool
	// TrainerPool, when set together with AsyncFineTune, routes
	// drift-triggered fine-tunes through a shared bounded pool instead of
	// spawning one goroutine per fine-tune. The clone and training-set
	// snapshot are taken lazily when a pool slot dequeues the job, so a
	// queued fine-tune pins no deep copies; Step briefly synchronizes with
	// that snapshot phase via a mutex. Ignored in synchronous mode.
	TrainerPool TrainerPool
	// TrainerKey identifies this detector's stream in the trainer pool's
	// cross-stream fairness ordering. Only meaningful with TrainerPool.
	TrainerKey string
}

// Result is the per-time-step output of the Detector.
type Result struct {
	// Nonconformity is the raw a_t.
	Nonconformity float64
	// Score is the final anomaly score f_t.
	Score float64
	// FineTuned reports whether this step triggered a fine-tune.
	FineTuned bool
	// Attribution, when Config.Attribution is on and the model is a
	// Predictor, holds each channel's share of the squared prediction
	// error (length N, sums to 1). The slice is reused across steps; copy
	// it to retain.
	Attribution []float64
	// Source names the member or tier that produced this result, for
	// detectors composed of several ("tier0:zscore", "heavy:knn+sw+…").
	// Empty for single-pipeline detectors and ensembles, whose score has
	// exactly one provenance.
	Source string
}

// Detector runs the streaming anomaly detection loop. Step, Run,
// WaitFineTune and the state snapshot methods must all be called from a
// single goroutine; FineTuneStats is safe from any goroutine.
type Detector struct {
	cfg        Config
	predictor  Predictor
	selfScore  SelfScoring
	warmupLeft int
	warmedUp   bool
	steps      int
	fineTunes  int
	lastGood   []float64 // per-channel last finite value (Sanitize)
	sanBuf     []float64
	sanitized  int
	attrBuf    []float64 //streamad:transient per-step attribution scratch, preallocated by NewDetector and derived each Step
	asyncFT    bool      // serve/train split active
	poolFT     bool      // fine-tunes routed through the shared trainer pool
	paged      bool      // window state released to the snapshot store (warm tier)
	trainMu    sync.Mutex
	train      *trainer
}

// ErrConfig reports an invalid Detector configuration.
var ErrConfig = errors.New("core: invalid configuration")

// NewDetector validates the configuration and returns a Detector.
func NewDetector(cfg Config) (*Detector, error) {
	if cfg.Representer == nil || cfg.Model == nil || cfg.TrainingSet == nil ||
		cfg.Drift == nil || cfg.Scorer == nil {
		return nil, fmt.Errorf("%w: missing component", ErrConfig)
	}
	pred, isPred := cfg.Model.(Predictor)
	ss, isSelf := cfg.Model.(SelfScoring)
	if !isPred && !isSelf {
		return nil, fmt.Errorf("%w: model implements neither Predictor nor SelfScoring", ErrConfig)
	}
	if cfg.Measure == nil && !isSelf {
		return nil, fmt.Errorf("%w: nonconformity measure required for non-self-scoring model", ErrConfig)
	}
	if cfg.Measure != nil && !isPred {
		return nil, fmt.Errorf("%w: nonconformity measure set but model does not implement Predictor", ErrConfig)
	}
	if cfg.WarmupVectors < 0 {
		return nil, fmt.Errorf("%w: negative warmup", ErrConfig)
	}
	if cfg.InitEpochs == 0 {
		cfg.InitEpochs = 1
	}
	d := &Detector{cfg: cfg, warmupLeft: cfg.WarmupVectors, train: newTrainer()}
	if isSelf && cfg.Measure == nil {
		d.selfScore = ss
	} else {
		d.predictor = pred
	}
	if _, ok := cfg.Model.(Cloner); ok && cfg.AsyncFineTune {
		d.asyncFT = true
		d.poolFT = cfg.TrainerPool != nil
	}
	// Scoring-path scratch is allocated here, never lazily: the very
	// first post-warmup Step must already run allocation-free.
	if cfg.Sanitize {
		n := cfg.Representer.Channels()
		d.lastGood = make([]float64, n)
		d.sanBuf = make([]float64, n)
	}
	if cfg.Attribution {
		d.attrBuf = make([]float64, cfg.Representer.Channels())
	}
	return d, nil
}

// sanitize replaces non-finite values with the channel's last finite
// value, returning a buffer owned by the detector. Its buffers are
// allocated by NewDetector (and restored by Load), so the scoring path
// never touches the heap here.
func (d *Detector) sanitize(s []float64) []float64 {
	// One fused scan repairs into sanBuf while refreshing lastGood; the
	// clean (overwhelmingly common) case still returns s untouched.
	dirty := false
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			dirty = true
			d.sanBuf[i] = d.lastGood[i]
		} else {
			d.sanBuf[i] = v
			d.lastGood[i] = v
		}
	}
	if !dirty {
		return s
	}
	d.sanitized++
	return d.sanBuf
}

// Sanitized returns the number of steps on which at least one non-finite
// input value was repaired (always 0 unless Config.Sanitize is set).
func (d *Detector) Sanitized() int { return d.sanitized }

// Step consumes the next stream vector s_t. ok is false while the detector
// is still filling its representation window or warming up; once true, the
// Result carries the nonconformity and anomaly scores for this step.
//
//streamad:hotpath
func (d *Detector) Step(s []float64) (Result, bool) {
	if d.paged {
		panic("core: Step on paged-out detector; PageIn first")
	}
	if d.poolFT {
		// Exclude the trainer pool's lazy clone+snapshot phase; the lock is
		// uncontended except in the instant a queued fine-tune dequeues.
		d.trainMu.Lock()
		defer d.trainMu.Unlock()
	}
	d.steps++
	if d.asyncFT {
		d.adoptTrained()
	}
	if d.cfg.Sanitize {
		s = d.sanitize(s)
	}
	x, ready := d.cfg.Representer.Push(s)
	if !ready {
		return Result{}, false
	}
	if !d.warmedUp {
		d.cfg.TrainingSet.Observe(x, 0)
		if d.warmupLeft > 0 {
			d.warmupLeft--
		}
		if d.warmupLeft == 0 {
			if !d.cfg.PreTrained {
				items := d.cfg.TrainingSet.Items()
				for e := 0; e < d.cfg.InitEpochs; e++ {
					d.cfg.Model.Fit(items)
				}
			}
			d.cfg.Drift.Reset(d.cfg.TrainingSet)
			d.warmedUp = true
		}
		return Result{}, false
	}

	var a float64
	var attribution []float64
	if d.selfScore != nil {
		a = d.selfScore.NonconformityScore(x)
	} else {
		target, pred := d.predictor.Predict(x)
		a = d.cfg.Measure.Measure(target, pred)
		if d.cfg.Attribution {
			attribution = d.attribute(target, pred)
		}
	}
	f := d.cfg.Scorer.Score(a)

	update := d.cfg.TrainingSet.Observe(x, f)
	fineTuned := false
	if d.cfg.Drift.Observe(update, x, d.cfg.TrainingSet) {
		//streamad:ignore hotalloc fine-tune launch (model clone, goroutine or pool submit) runs only on a drift trigger, amortized over thousands of steps
		fineTuned = d.fineTune()
	}
	return Result{Nonconformity: a, Score: f, FineTuned: fineTuned, Attribution: attribution}, true
}

// attribute computes each channel's share of the squared prediction
// error. Targets may be one stream row (forecasters: length N) or a whole
// feature vector (reconstruction models: length w·N, row-major); both lay
// channels out as index mod N.
func (d *Detector) attribute(target, pred []float64) []float64 {
	n := d.cfg.Representer.Channels()
	for i := range d.attrBuf {
		d.attrBuf[i] = 0
	}
	var total float64
	for i := range target {
		diff := target[i] - pred[i]
		e := diff * diff
		d.attrBuf[i%n] += e
		total += e
	}
	if total > 0 {
		for i := range d.attrBuf {
			d.attrBuf[i] /= total
		}
	} else {
		// Perfect prediction: attribute uniformly.
		for i := range d.attrBuf {
			d.attrBuf[i] = 1 / float64(n)
		}
	}
	return d.attrBuf
}

// Steps returns the number of stream vectors consumed.
func (d *Detector) Steps() int { return d.steps }

// Model returns the model currently serving scores. With asynchronous
// fine-tuning the model identity changes at adoption steps, so callers
// snapshotting parameters must use this accessor (after WaitFineTune)
// rather than a reference captured at build time.
func (d *Detector) Model() Model { return d.cfg.Model }

// FineTunes returns the number of fine-tuning sessions performed after
// warmup. In asynchronous mode it counts adopted models, so a fine-tune
// still in flight (or finished but not yet adopted) is not included;
// see FineTuneStats for launch/completion counts.
func (d *Detector) FineTunes() int { return d.fineTunes }

// WarmedUp reports whether the initial training has completed.
func (d *Detector) WarmedUp() bool { return d.warmedUp }

// DriftOps exposes the Task 2 detector's cumulative operation counts.
func (d *Detector) DriftOps() drift.OpCounts { return d.cfg.Drift.Ops() }

// Run feeds an entire series (rows × N, row-major) through the detector
// and returns one anomaly score per time step; steps before readiness get
// score NaN-free 0 and a parallel validity mask.
func (d *Detector) Run(series [][]float64) (scores []float64, valid []bool) {
	scores = make([]float64, len(series))
	valid = make([]bool, len(series))
	for i, s := range series {
		res, ok := d.Step(s)
		if ok {
			scores[i] = res.Score
			valid[i] = true
		}
	}
	return scores, valid
}
