package core

import "fmt"

// Pager is the warm-tier capability: a detector whose sliding-window
// state (representation ring, training set, drift reference, scorer
// windows) can be serialized out and its backing storage freed while the
// model stays resident, then restored bit-identically before the next
// Step. Implemented by *Detector and composed member-wise by ensembles.
type Pager interface {
	// PageOut drains any in-flight fine-tune, snapshots the window state
	// and releases its backing storage. The returned blob restores the
	// exact state via PageIn. After PageOut, Step panics until PageIn.
	PageOut() ([]byte, error)
	// PageIn restores window state paged out by PageOut and reallocates
	// the backing storage.
	PageIn(data []byte) error
	// Paged reports whether the detector is currently paged out.
	Paged() bool
}

// Releaser is the optional capability of a TrainingSet (and other window
// components) to free its backing storage after being snapshotted; all
// three reservoir strategies implement it.
type Releaser interface {
	Release()
}

// Release frees the representation window's backing storage and the flat
// feature-vector mirror; UnmarshalBinary restores both.
func (r *Representer) Release() {
	r.win.Release()
	r.flat = nil
	r.primed = false
}

// PageOut implements Pager: it waits for (and adopts) any in-flight
// fine-tune so no trainer holds references to the released storage, then
// snapshots the window state and frees the representation window and
// training set. The model, drift and scorer stay resident — warm-tier
// residency is the model plus O(score-window) scalars.
func (d *Detector) PageOut() ([]byte, error) {
	if d.paged {
		return nil, fmt.Errorf("core: detector already paged out")
	}
	d.WaitFineTune()
	blob, err := d.MarshalBinary()
	if err != nil {
		return nil, err
	}
	d.cfg.Representer.Release()
	if rel, ok := d.cfg.TrainingSet.(Releaser); ok {
		rel.Release()
	}
	d.paged = true
	return blob, nil
}

// PageIn implements Pager: it restores a PageOut blob, reallocating the
// released storage, and re-enables Step.
func (d *Detector) PageIn(data []byte) error {
	if err := d.UnmarshalBinary(data); err != nil {
		return err
	}
	d.paged = false
	return nil
}

// Paged implements Pager.
func (d *Detector) Paged() bool { return d.paged }
