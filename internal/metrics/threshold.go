package metrics

import (
	"math"
	"sort"
)

// CalibrateThreshold picks a decision threshold from the score
// distribution of the leading calibration fraction of valid steps: the
// q-quantile of those scores. This is the standard streaming practice of
// calibrating on an initial anomaly-free slice — the synthetic corpora
// place all anomalies after the calibration region — and it adapts the
// threshold to each scorer's output scale (raw cosine scores live near 0,
// anomaly likelihoods near 1).
func CalibrateThreshold(scores []float64, valid []bool, calibFrac, q float64) float64 {
	if calibFrac <= 0 || calibFrac > 1 {
		calibFrac = 0.2
	}
	if q <= 0 || q >= 1 {
		q = 0.995
	}
	var vals []float64
	limit := int(float64(len(scores)) * calibFrac)
	seen := 0
	for i, s := range scores {
		if !valid[i] {
			continue
		}
		seen++
		if i >= limit && seen > 20 {
			break
		}
		vals = append(vals, s)
	}
	if len(vals) == 0 {
		return math.Inf(1)
	}
	sort.Float64s(vals)
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vals[lo]
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// QuantileThreshold returns the q-quantile of all valid scores. Unlike
// CalibrateThreshold it uses the entire run, which keeps the decision
// threshold meaningful when fine-tuning shifts the nonconformity scale
// mid-stream — the convention most time-series anomaly benchmarks use for
// their fixed-threshold metrics.
func QuantileThreshold(scores []float64, valid []bool, q float64) float64 {
	if q <= 0 || q >= 1 {
		q = 0.99
	}
	var vals []float64
	for i, s := range scores {
		if valid[i] {
			vals = append(vals, s)
		}
	}
	if len(vals) == 0 {
		return math.Inf(1)
	}
	sort.Float64s(vals)
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vals[lo]
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}
