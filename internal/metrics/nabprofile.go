package metrics

// NABProfile weights the three NAB outcome classes. The Numenta benchmark
// defines three application profiles; the paper reports the standard one,
// and the others are provided for completeness.
type NABProfile struct {
	Name string
	// ATP scales the sigmoid reward of a detected window.
	ATP float64
	// AFP scales the cost of each false-positive time step.
	AFP float64
	// AFN scales the cost of each missed window.
	AFN float64
}

// Standard is the NAB standard profile: balanced weights.
func StandardProfile() NABProfile { return NABProfile{Name: "standard", ATP: 1, AFP: 1, AFN: 1} }

// RewardLowFP penalizes false positives more heavily — the profile for
// settings where alerts are expensive (e.g. paging an operator).
func RewardLowFPProfile() NABProfile {
	return NABProfile{Name: "reward_low_FP", ATP: 1, AFP: 2, AFN: 1}
}

// RewardLowFN penalizes misses more heavily — the profile for settings
// where an undetected anomaly is the expensive outcome.
func RewardLowFNProfile() NABProfile {
	return NABProfile{Name: "reward_low_FN", ATP: 1, AFP: 0.5, AFN: 2}
}

// NABScoreProfile is NABScore with explicit profile weights; NABScore is
// equivalent to NABScoreProfile with the standard profile.
func NABScoreProfile(scores []float64, labels []bool, valid []bool, threshold float64, p NABProfile) float64 {
	windows := Ranges(labels)
	if len(windows) == 0 {
		return 0
	}
	w := float64(len(windows))
	pred := Binarize(scores, valid, threshold)
	var total float64
	for _, win := range windows {
		first := -1
		for t := win.Start; t <= win.End; t++ {
			if t >= 0 && t < len(pred) && pred[t] {
				first = t
				break
			}
		}
		if first < 0 {
			total -= p.AFN / w
			continue
		}
		var y float64
		if win.Len() > 1 {
			y = float64(first-win.End) / float64(win.Len()-1)
		}
		total += p.ATP * nabSigmoid(y) / w
	}
	for t, isPos := range pred {
		if !isPos {
			continue
		}
		inside := false
		for _, win := range windows {
			if win.Contains(t) {
				inside = true
				break
			}
		}
		if !inside {
			total -= p.AFP / w
		}
	}
	return total
}
