package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func allValid(n int) []bool {
	v := make([]bool, n)
	for i := range v {
		v[i] = true
	}
	return v
}

func TestRanges(t *testing.T) {
	labels := []bool{false, true, true, false, true, false, false, true}
	got := Ranges(labels)
	want := []Range{{1, 2}, {4, 4}, {7, 7}}
	if len(got) != len(want) {
		t.Fatalf("Ranges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranges = %v, want %v", got, want)
		}
	}
	if len(Ranges(nil)) != 0 {
		t.Fatal("empty labels should have no ranges")
	}
	if r := Ranges([]bool{true, true}); len(r) != 1 || r[0] != (Range{0, 1}) {
		t.Fatalf("all-true = %v", r)
	}
}

// TestRangesRoundTripProperty: ranges must exactly cover the true labels.
func TestRangesRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80)
		labels := make([]bool, n)
		for i := range labels {
			labels[i] = rng.Intn(3) == 0
		}
		rebuilt := make([]bool, n)
		for _, r := range Ranges(labels) {
			if r.Start > r.End || r.Start < 0 || r.End >= n {
				return false
			}
			for i := r.Start; i <= r.End; i++ {
				if rebuilt[i] {
					return false // overlapping ranges
				}
				rebuilt[i] = true
			}
		}
		for i := range labels {
			if labels[i] != rebuilt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{2, 5}
	if r.Len() != 4 || !r.Contains(2) || !r.Contains(5) || r.Contains(6) {
		t.Fatal("Range helpers wrong")
	}
	if !r.Overlaps(Range{5, 9}) || !r.Overlaps(Range{0, 2}) || r.Overlaps(Range{6, 7}) {
		t.Fatal("Overlaps wrong")
	}
}

func TestRangePRPerfect(t *testing.T) {
	labels := []bool{false, true, true, false, false, true, false}
	pred := []bool{false, false, true, false, false, true, false}
	res := RangePR(pred, labels)
	if res.TP != 2 || res.FP != 0 || res.FN != 0 {
		t.Fatalf("confusion = %+v", res)
	}
	if res.Precision != 1 || res.Recall != 1 || res.F1 != 1 {
		t.Fatalf("scores = %+v", res)
	}
}

func TestRangePRPartial(t *testing.T) {
	labels := []bool{false, true, true, false, false, true, false, false}
	// One hit inside the first range, one spurious range, second missed.
	pred := []bool{false, true, false, false, false, false, false, true}
	res := RangePR(pred, labels)
	if res.TP != 1 || res.FP != 1 || res.FN != 1 {
		t.Fatalf("confusion = %+v", res)
	}
	if !almostEq(res.Precision, 0.5, 1e-12) || !almostEq(res.Recall, 0.5, 1e-12) {
		t.Fatalf("P/R = %v/%v", res.Precision, res.Recall)
	}
}

func TestRangePRLongFalseIntervalIsOneFP(t *testing.T) {
	// The paper's observation: a long consecutive false prediction counts
	// once for range-based precision but very negatively for NAB.
	labels := make([]bool, 100)
	labels[10] = true
	pred := make([]bool, 100)
	for i := 40; i < 90; i++ {
		pred[i] = true
	}
	res := RangePR(pred, labels)
	if res.FP != 1 {
		t.Fatalf("FP = %d, want 1 (one merged range)", res.FP)
	}
	scores := make([]float64, 100)
	for i := range pred {
		if pred[i] {
			scores[i] = 1
		}
	}
	nab := NABScore(scores, labels, allValid(100), 0.5)
	if nab > -49 {
		t.Fatalf("NAB = %v, want ≤ −49 (50 FP points / 1 window)", nab)
	}
}

func TestBinarizeRespectsValidity(t *testing.T) {
	scores := []float64{1, 1}
	valid := []bool{false, true}
	pred := Binarize(scores, valid, 0.5)
	if pred[0] || !pred[1] {
		t.Fatalf("Binarize = %v", pred)
	}
}

func TestPRAUCPerfectRanking(t *testing.T) {
	n := 60
	labels := make([]bool, n)
	scores := make([]float64, n)
	for i := 40; i < 50; i++ {
		labels[i] = true
		scores[i] = 1
	}
	for i := 0; i < n; i++ {
		if !labels[i] {
			scores[i] = float64(i) / 1000 // all below 0.5
		}
	}
	auc := PRAUC(scores, labels, allValid(n), 50)
	if auc < 0.95 {
		t.Fatalf("perfect ranking PR-AUC = %v, want ≈1", auc)
	}
}

func TestPRAUCRandomScoresMiddling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	labels := make([]bool, n)
	for i := 100; i < 120; i++ {
		labels[i] = true
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	auc := PRAUC(scores, labels, allValid(n), 50)
	if auc <= 0 || auc >= 1 {
		t.Fatalf("random PR-AUC = %v, want in (0,1)", auc)
	}
}

func TestNABScoreRewardsEarlyDetection(t *testing.T) {
	n := 100
	labels := make([]bool, n)
	for i := 50; i < 70; i++ {
		labels[i] = true
	}
	early := make([]float64, n)
	early[50] = 1
	late := make([]float64, n)
	late[69] = 1
	v := allValid(n)
	e := NABScore(early, labels, v, 0.5)
	l := NABScore(late, labels, v, 0.5)
	if e <= l {
		t.Fatalf("early detection (%v) must beat late (%v)", e, l)
	}
	if e < 0.9 {
		t.Fatalf("early detection score = %v, want ≈1", e)
	}
	if l < -0.01 || l > 0.1 {
		t.Fatalf("window-end detection score = %v, want ≈0", l)
	}
}

func TestNABScoreMissedWindow(t *testing.T) {
	n := 50
	labels := make([]bool, n)
	for i := 10; i < 20; i++ {
		labels[i] = true
	}
	scores := make([]float64, n)
	got := NABScore(scores, labels, allValid(n), 0.5)
	if !almostEq(got, -1, 1e-12) {
		t.Fatalf("all-missed NAB = %v, want −1", got)
	}
}

func TestNABScoreNoWindows(t *testing.T) {
	if got := NABScore([]float64{1}, []bool{false}, []bool{true}, 0.5); got != 0 {
		t.Fatalf("no-anomaly NAB = %v, want 0", got)
	}
}

func TestSoftLabelsBuffer(t *testing.T) {
	labels := []bool{false, false, false, true, true, false, false, false}
	soft := softLabels(labels, 2)
	if soft[3] != 1 || soft[4] != 1 {
		t.Fatal("core labels must stay 1")
	}
	if !(soft[2] > soft[1] && soft[1] > soft[0]) {
		t.Fatalf("left buffer must decay: %v", soft[:3])
	}
	if !(soft[5] > soft[6]) {
		t.Fatalf("right buffer must decay: %v", soft[5:])
	}
	if soft[0] != 0 {
		t.Fatalf("outside buffer must be 0: %v", soft[0])
	}
	// Zero buffer = hard labels.
	hard := softLabels(labels, 0)
	for i, l := range labels {
		want := 0.0
		if l {
			want = 1
		}
		if hard[i] != want {
			t.Fatal("zero-buffer soft labels must equal hard labels")
		}
	}
}

func TestVUSBufferToleratesNearMisses(t *testing.T) {
	n := 100
	labels := make([]bool, n)
	for i := 50; i < 60; i++ {
		labels[i] = true
	}
	// Detector fires slightly before the window.
	scores := make([]float64, n)
	for i := 46; i < 50; i++ {
		scores[i] = 1
	}
	v := allValid(n)
	noBuffer := VUS(scores, labels, v, 0, 1, 30)
	withBuffer := VUS(scores, labels, v, 10, 5, 30)
	if withBuffer <= noBuffer {
		t.Fatalf("buffered VUS (%v) must exceed unbuffered (%v) for near misses", withBuffer, noBuffer)
	}
}

func TestEvaluateBundle(t *testing.T) {
	n := 80
	labels := make([]bool, n)
	scores := make([]float64, n)
	for i := 30; i < 40; i++ {
		labels[i] = true
		scores[i] = 0.9
	}
	sum := Evaluate(scores, labels, allValid(n), 0.5)
	if sum.Precision != 1 || sum.Recall != 1 {
		t.Fatalf("Evaluate P/R = %v/%v", sum.Precision, sum.Recall)
	}
	if sum.AUC <= 0 || sum.VUS <= 0 {
		t.Fatalf("Evaluate AUC/VUS = %v/%v", sum.AUC, sum.VUS)
	}
	if sum.NAB < 0.9 {
		t.Fatalf("Evaluate NAB = %v", sum.NAB)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	n := 100
	scores := make([]float64, n)
	valid := allValid(n)
	for i := range scores {
		scores[i] = float64(i%10) / 10 // 0..0.9 repeating
	}
	th := CalibrateThreshold(scores, valid, 0.5, 0.9)
	if th < 0.7 || th > 0.9 {
		t.Fatalf("threshold = %v, want ≈0.81", th)
	}
	// Empty valid region → +Inf (nothing flagged).
	if !math.IsInf(CalibrateThreshold(scores, make([]bool, n), 0.5, 0.9), 1) {
		t.Fatal("no valid scores should give +Inf threshold")
	}
}

func TestQuantileThreshold(t *testing.T) {
	scores := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	th := QuantileThreshold(scores, allValid(10), 0.5)
	if !almostEq(th, 4.5, 1e-12) {
		t.Fatalf("median threshold = %v, want 4.5", th)
	}
	if !math.IsInf(QuantileThreshold(scores, make([]bool, 10), 0.5), 1) {
		t.Fatal("no valid scores should give +Inf")
	}
	// Defaulted q.
	if QuantileThreshold(scores, allValid(10), 0) < 8 {
		t.Fatal("default q should be 0.99")
	}
}

func TestThresholdGridDescending(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.3}
	grid := thresholdGrid(scores, allValid(5), 100)
	for i := 1; i < len(grid); i++ {
		if grid[i] >= grid[i-1] {
			t.Fatalf("grid not strictly descending: %v", grid)
		}
	}
	if len(thresholdGrid(nil, nil, 10)) != 0 {
		t.Fatal("empty scores → empty grid")
	}
}
