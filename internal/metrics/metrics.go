// Package metrics implements the paper's three families of evaluation
// measures for time-series anomaly detection:
//
//   - Range-based precision / recall and their PR-AUC, following Hundman
//     et al.: any positive prediction inside a true anomaly sequence makes
//     it a TP, an undetected sequence is a FN, and every predicted
//     sequence with no overlap is one FP.
//   - The Numenta Anomaly Benchmark (NAB) score, point-wise: detections
//     inside a true window earn a sigmoid-weighted reward favouring early
//     detection, every false-positive time step costs 1/|anomalies|, and
//     every missed window costs 1/|anomalies|.
//   - The volume under the surface (VUS), a parameter-free measure that
//     sweeps both the score threshold and a buffer around true anomaly
//     sequences and integrates the resulting precision-recall surface.
//
// All functions accept a validity mask so the detector's warmup region can
// be excluded from scoring.
package metrics

import (
	"math"
	"sort"
)

// Range is an inclusive [Start, End] index interval.
type Range struct {
	Start, End int
}

// Len returns the number of time steps covered.
func (r Range) Len() int { return r.End - r.Start + 1 }

// Contains reports whether t lies inside the range.
func (r Range) Contains(t int) bool { return t >= r.Start && t <= r.End }

// Overlaps reports whether two ranges share at least one index.
func (r Range) Overlaps(o Range) bool { return r.Start <= o.End && o.Start <= r.End }

// Ranges extracts the maximal runs of true values as ranges.
func Ranges(labels []bool) []Range {
	var out []Range
	start := -1
	for i, v := range labels {
		switch {
		case v && start < 0:
			start = i
		case !v && start >= 0:
			out = append(out, Range{Start: start, End: i - 1})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Range{Start: start, End: len(labels) - 1})
	}
	return out
}

// Binarize thresholds the scores; invalid steps are always negative.
func Binarize(scores []float64, valid []bool, threshold float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = valid[i] && s >= threshold
	}
	return out
}

// PRResult is a range-based confusion summary.
type PRResult struct {
	TP, FP, FN            int
	Precision, Recall, F1 float64
}

// RangePR computes range-based precision and recall of binary predictions
// against binary labels, following Hundman et al.
func RangePR(pred, labels []bool) PRResult {
	trueRanges := Ranges(labels)
	predRanges := Ranges(pred)
	var res PRResult
	for _, tr := range trueRanges {
		hit := false
		for _, pr := range predRanges {
			if tr.Overlaps(pr) {
				hit = true
				break
			}
		}
		if hit {
			res.TP++
		} else {
			res.FN++
		}
	}
	for _, pr := range predRanges {
		hit := false
		for _, tr := range trueRanges {
			if pr.Overlaps(tr) {
				hit = true
				break
			}
		}
		if !hit {
			res.FP++
		}
	}
	if res.TP+res.FP > 0 {
		res.Precision = float64(res.TP) / float64(res.TP+res.FP)
	}
	if res.TP+res.FN > 0 {
		res.Recall = float64(res.TP) / float64(res.TP+res.FN)
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}

// thresholdGrid returns up to n candidate thresholds spanning the valid
// score distribution, descending.
func thresholdGrid(scores []float64, valid []bool, n int) []float64 {
	var vals []float64
	for i, s := range scores {
		if valid[i] {
			vals = append(vals, s)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	if len(vals) <= n {
		uniq := vals[:0]
		prev := math.Inf(-1)
		for _, v := range vals {
			if v != prev {
				uniq = append(uniq, v)
				prev = v
			}
		}
		out := make([]float64, len(uniq))
		for i, v := range uniq {
			out[len(uniq)-1-i] = v
		}
		return out
	}
	out := make([]float64, 0, n)
	prev := math.Inf(1)
	for i := 0; i < n; i++ {
		q := float64(n-1-i) / float64(n-1)
		idx := int(q * float64(len(vals)-1))
		v := vals[idx]
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// PRAUC computes the area under the range-based precision-recall curve by
// sweeping up to gridSize thresholds over the score distribution and
// integrating precision over recall with the trapezoid rule.
func PRAUC(scores []float64, labels []bool, valid []bool, gridSize int) float64 {
	if gridSize <= 1 {
		gridSize = 100
	}
	grid := thresholdGrid(scores, valid, gridSize)
	if len(grid) == 0 {
		return 0
	}
	type pt struct{ r, p float64 }
	pts := make([]pt, 0, len(grid)+2)
	for _, th := range grid {
		res := RangePR(Binarize(scores, valid, th), labels)
		pts = append(pts, pt{r: res.Recall, p: res.Precision})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].r < pts[j].r })
	// Anchor the curve at recall 0 (carry the first precision) and close at
	// the maximal achieved recall.
	var auc float64
	prevR, prevP := 0.0, pts[0].p
	for _, q := range pts {
		auc += (q.r - prevR) * (q.p + prevP) / 2
		prevR, prevP = q.r, q.p
	}
	return auc
}

// nabSigmoid is the NAB scaled sigmoid σ(y) = 2/(1+e^{5y}) − 1, mapping
// positions y relative to the window end: y = −1 (window start) → ≈ 0.98,
// y = 0 (window end) → 0, y > 0 (after the window) → negative.
func nabSigmoid(y float64) float64 {
	return 2/(1+math.Exp(5*y)) - 1
}

// NABScore computes the paper's NAB variant at a fixed threshold: each
// true anomaly window contributes a sigmoid early-detection reward in
// (0, 1]/W when detected and −1/W when missed, and every false-positive
// time step outside all windows contributes −1/W, with W the number of
// true anomaly windows. A detector that flags one long spurious interval
// therefore scores very negatively, matching Table III.
func NABScore(scores []float64, labels []bool, valid []bool, threshold float64) float64 {
	windows := Ranges(labels)
	if len(windows) == 0 {
		return 0
	}
	w := float64(len(windows))
	pred := Binarize(scores, valid, threshold)
	var total float64
	for _, win := range windows {
		first := -1
		for t := win.Start; t <= win.End; t++ {
			if t >= 0 && t < len(pred) && pred[t] {
				first = t
				break
			}
		}
		if first < 0 {
			total -= 1 / w
			continue
		}
		// Relative position: −1 at window start, 0 at window end.
		var y float64
		if win.Len() > 1 {
			y = float64(first-win.End) / float64(win.Len()-1)
		}
		total += nabSigmoid(y) / w
	}
	// False-positive points.
	for t, p := range pred {
		if !p {
			continue
		}
		inside := false
		for _, win := range windows {
			if win.Contains(t) {
				inside = true
				break
			}
		}
		if !inside {
			total -= 1 / w
		}
	}
	return total
}

// softLabels spreads each true anomaly window by buffer steps on both
// sides with linearly decaying weights, producing the continuous labels of
// the VUS construction.
func softLabels(labels []bool, buffer int) []float64 {
	soft := make([]float64, len(labels))
	for i, v := range labels {
		if v {
			soft[i] = 1
		}
	}
	if buffer <= 0 {
		return soft
	}
	for _, win := range Ranges(labels) {
		for d := 1; d <= buffer; d++ {
			wgt := 1 - float64(d)/float64(buffer+1)
			if i := win.Start - d; i >= 0 && wgt > soft[i] {
				soft[i] = wgt
			}
			if i := win.End + d; i < len(soft) && wgt > soft[i] {
				soft[i] = wgt
			}
		}
	}
	return soft
}

// softPRAUC computes point-wise precision-recall AUC against soft labels.
func softPRAUC(scores []float64, soft []float64, valid []bool, gridSize int) float64 {
	grid := thresholdGrid(scores, valid, gridSize)
	if len(grid) == 0 {
		return 0
	}
	var totalPos float64
	for i, s := range soft {
		if valid[i] {
			totalPos += s
		}
	}
	if totalPos == 0 {
		return 0
	}
	type pt struct{ r, p float64 }
	pts := make([]pt, 0, len(grid))
	for _, th := range grid {
		var tp, fp float64
		for i, s := range scores {
			if !valid[i] || s < th {
				continue
			}
			tp += soft[i]
			fp += 1 - soft[i]
		}
		var prec float64
		if tp+fp > 0 {
			prec = tp / (tp + fp)
		}
		pts = append(pts, pt{r: tp / totalPos, p: prec})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].r < pts[j].r })
	var auc float64
	prevR, prevP := 0.0, pts[0].p
	for _, q := range pts {
		auc += (q.r - prevR) * (q.p + prevP) / 2
		prevR, prevP = q.r, q.p
	}
	return auc
}

// VUS computes the volume under the precision-recall surface over both
// the score threshold and a label buffer swept from 0 to maxBuffer in
// nBuffers steps (Paparrizos et al.'s VUS construction with point-wise
// soft-label PR as the base measure).
func VUS(scores []float64, labels []bool, valid []bool, maxBuffer, nBuffers, gridSize int) float64 {
	if nBuffers < 1 {
		nBuffers = 1
	}
	var sum float64
	for i := 0; i < nBuffers; i++ {
		buffer := 0
		if nBuffers > 1 {
			buffer = maxBuffer * i / (nBuffers - 1)
		}
		soft := softLabels(labels, buffer)
		sum += softPRAUC(scores, soft, valid, gridSize)
	}
	return sum / float64(nBuffers)
}

// softROCAUC computes the point-wise ROC AUC against soft labels:
// TPR and FPR are weighted by the soft label mass.
func softROCAUC(scores []float64, soft []float64, valid []bool, gridSize int) float64 {
	grid := thresholdGrid(scores, valid, gridSize)
	if len(grid) == 0 {
		return 0
	}
	var totalPos, totalNeg float64
	for i, s := range soft {
		if valid[i] {
			totalPos += s
			totalNeg += 1 - s
		}
	}
	if totalPos == 0 || totalNeg == 0 {
		return 0
	}
	type pt struct{ fpr, tpr float64 }
	pts := make([]pt, 0, len(grid)+2)
	for _, th := range grid {
		var tp, fp float64
		for i, s := range scores {
			if !valid[i] || s < th {
				continue
			}
			tp += soft[i]
			fp += 1 - soft[i]
		}
		pts = append(pts, pt{fpr: fp / totalNeg, tpr: tp / totalPos})
	}
	pts = append(pts, pt{0, 0}, pt{1, 1})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].fpr != pts[j].fpr {
			return pts[i].fpr < pts[j].fpr
		}
		return pts[i].tpr < pts[j].tpr
	})
	var auc float64
	for i := 1; i < len(pts); i++ {
		auc += (pts[i].fpr - pts[i-1].fpr) * (pts[i].tpr + pts[i-1].tpr) / 2
	}
	return auc
}

// VUSROC is the ROC-based volume under the surface — the measure the VUS
// paper (Paparrizos et al.) presents as R-AUC-ROC integrated over the
// buffer dimension. Our Table III reproduction reports the PR variant
// (VUS), which is better suited to rare anomalies; both are provided.
func VUSROC(scores []float64, labels []bool, valid []bool, maxBuffer, nBuffers, gridSize int) float64 {
	if nBuffers < 1 {
		nBuffers = 1
	}
	var sum float64
	for i := 0; i < nBuffers; i++ {
		buffer := 0
		if nBuffers > 1 {
			buffer = maxBuffer * i / (nBuffers - 1)
		}
		soft := softLabels(labels, buffer)
		sum += softROCAUC(scores, soft, valid, gridSize)
	}
	return sum / float64(nBuffers)
}

// Summary bundles the Table III metrics for one detector run.
type Summary struct {
	Precision float64
	Recall    float64
	AUC       float64
	VUS       float64
	NAB       float64
}

// Evaluate computes all Table III metrics: range-based precision/recall
// at the fixed threshold, range-based PR-AUC, VUS and the NAB score.
func Evaluate(scores []float64, labels []bool, valid []bool, threshold float64) Summary {
	pr := RangePR(Binarize(scores, valid, threshold), labels)
	return Summary{
		Precision: pr.Precision,
		Recall:    pr.Recall,
		AUC:       PRAUC(scores, labels, valid, 50),
		VUS:       VUS(scores, labels, valid, 20, 5, 30),
		NAB:       NABScore(scores, labels, valid, threshold),
	}
}
