package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNABProfilesOrdering(t *testing.T) {
	n := 200
	labels := make([]bool, n)
	for i := 50; i < 70; i++ {
		labels[i] = true
	}
	// One detection plus a handful of false positives.
	scores := make([]float64, n)
	scores[55] = 1
	for _, fp := range []int{100, 120, 140} {
		scores[fp] = 1
	}
	v := allValid(n)
	std := NABScoreProfile(scores, labels, v, 0.5, StandardProfile())
	lowFP := NABScoreProfile(scores, labels, v, 0.5, RewardLowFPProfile())
	lowFN := NABScoreProfile(scores, labels, v, 0.5, RewardLowFNProfile())
	// With FPs present, the low-FP profile must score the worst and the
	// low-FN profile (which halves FP cost) the best.
	if !(lowFP < std && std < lowFN) {
		t.Fatalf("profile ordering wrong: lowFP=%v std=%v lowFN=%v", lowFP, std, lowFN)
	}
}

func TestNABProfileMissPenalty(t *testing.T) {
	n := 100
	labels := make([]bool, n)
	for i := 10; i < 20; i++ {
		labels[i] = true
	}
	scores := make([]float64, n) // everything missed
	v := allValid(n)
	std := NABScoreProfile(scores, labels, v, 0.5, StandardProfile())
	lowFN := NABScoreProfile(scores, labels, v, 0.5, RewardLowFNProfile())
	if std != -1 {
		t.Fatalf("standard miss = %v, want −1", std)
	}
	if lowFN != -2 {
		t.Fatalf("low-FN miss = %v, want −2 (doubled AFN)", lowFN)
	}
}

func TestNABProfileMatchesNABScore(t *testing.T) {
	n := 150
	labels := make([]bool, n)
	for i := 90; i < 110; i++ {
		labels[i] = true
	}
	scores := make([]float64, n)
	scores[92] = 1
	scores[30] = 1
	v := allValid(n)
	a := NABScore(scores, labels, v, 0.5)
	b := NABScoreProfile(scores, labels, v, 0.5, StandardProfile())
	if a != b {
		t.Fatalf("NABScore (%v) must equal standard-profile score (%v)", a, b)
	}
}

// TestNABUpperBoundProperty: the NAB score never exceeds 1 (perfect early
// detection of every window with zero false positives) for any inputs.
func TestNABUpperBoundProperty(t *testing.T) {
	quickCheckNAB(t)
}

func quickCheckNAB(t *testing.T) {
	t.Helper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		labels := make([]bool, n)
		scores := make([]float64, n)
		for i := range labels {
			labels[i] = rng.Intn(8) == 0
			scores[i] = rng.Float64()
		}
		v := allValid(n)
		for _, p := range []NABProfile{StandardProfile(), RewardLowFPProfile(), RewardLowFNProfile()} {
			if NABScoreProfile(scores, labels, v, 0.5, p) > 1.0000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
