package metrics

import (
	"math/rand"
	"testing"
)

func TestVUSROCPerfectDetector(t *testing.T) {
	n := 200
	labels := make([]bool, n)
	scores := make([]float64, n)
	for i := 80; i < 100; i++ {
		labels[i] = true
		scores[i] = 1
	}
	v := allValid(n)
	roc := VUSROC(scores, labels, v, 10, 4, 40)
	if roc < 0.9 {
		t.Fatalf("perfect detector VUS-ROC = %v, want ≈1", roc)
	}
}

func TestVUSROCRandomNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	labels := make([]bool, n)
	for i := 500; i < 560; i++ {
		labels[i] = true
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	v := allValid(n)
	roc := VUSROC(scores, labels, v, 10, 4, 40)
	if roc < 0.35 || roc > 0.65 {
		t.Fatalf("random detector VUS-ROC = %v, want ≈0.5", roc)
	}
}

func TestVUSROCInvertedDetectorBelowHalf(t *testing.T) {
	n := 300
	labels := make([]bool, n)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = 1
	}
	for i := 100; i < 140; i++ {
		labels[i] = true
		scores[i] = 0 // anti-correlated
	}
	v := allValid(n)
	roc := VUSROC(scores, labels, v, 10, 4, 40)
	if roc > 0.3 {
		t.Fatalf("inverted detector VUS-ROC = %v, want near 0", roc)
	}
}

func TestVUSROCDegenerate(t *testing.T) {
	// No positives at all → 0.
	n := 50
	if got := VUSROC(make([]float64, n), make([]bool, n), allValid(n), 5, 2, 10); got != 0 {
		t.Fatalf("no-positive VUS-ROC = %v", got)
	}
}
