package ensemble

import (
	"fmt"
	"sort"
)

// Agg selects how member scores are combined into the ensemble score.
// The same combiner is applied to the members' nonconformity values.
type Agg int

const (
	// AggMean is the unweighted average (the default).
	AggMean Agg = iota
	// AggMax is the most alarmed member's score — sensitive, and as noisy
	// as the noisiest member.
	AggMax
	// AggMedian is the member median, robust to a minority of outlier
	// members.
	AggMedian
	// AggTrimmedMean drops the ⌈n/4⌉ lowest and highest scores (at least
	// one of each once n ≥ 3) and averages the rest.
	AggTrimmedMean
	// AggPerfWeighted weights each member by 1 + max(pc_i, 0), where pc_i
	// is its rolling agreement-with-consensus counter — the PCB-iForest
	// performance-counter scheme applied to whole pipelines.
	AggPerfWeighted
)

// String returns the combiner name as accepted by the spec grammar.
func (a Agg) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggMax:
		return "max"
	case AggMedian:
		return "median"
	case AggTrimmedMean:
		return "trimmed"
	case AggPerfWeighted:
		return "perf"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// combine aggregates values (non-empty) under agg. weights runs parallel
// to values and is consulted only by AggPerfWeighted. scratch is a reused
// sort buffer owned by the caller.
func combine(agg Agg, values, weights []float64, scratch *[]float64) float64 {
	switch agg {
	case AggMax:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case AggMedian:
		s := sortedInto(scratch, values)
		n := len(s)
		if n%2 == 1 {
			return s[n/2]
		}
		return (s[n/2-1] + s[n/2]) / 2
	case AggTrimmedMean:
		s := sortedInto(scratch, values)
		k := trimCount(len(s))
		s = s[k : len(s)-k]
		return mean(s)
	case AggPerfWeighted:
		var num, den float64
		for i, v := range values {
			num += weights[i] * v
			den += weights[i]
		}
		if den == 0 {
			return mean(values)
		}
		return num / den
	default: // AggMean
		return mean(values)
	}
}

// trimCount is how many values AggTrimmedMean drops from each end:
// ⌈n/4⌉, but never so many that nothing remains, and zero while there
// are fewer than three members to trim between.
func trimCount(n int) int {
	if n < 3 {
		return 0
	}
	k := (n + 3) / 4
	if 2*k >= n {
		k = (n - 1) / 2
	}
	return k
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// sortedInto copies values into the scratch buffer and sorts it.
func sortedInto(scratch *[]float64, values []float64) []float64 {
	s := append((*scratch)[:0], values...)
	*scratch = s
	sort.Float64s(s)
	return s
}
