// Package ensemble runs several complete detector pipelines ("members")
// over the same stream and aggregates their per-step anomaly scores into
// one. The paper's Table III shows that no single (model × Task 1 ×
// Task 2 × F) combination wins across Daphnet, Exathlon and SMD — the
// best detector is dataset-dependent. An ensemble hedges that no-free-
// lunch result online: instead of betting a stream on one combination, a
// handful of diverse pipelines score every vector and a combiner merges
// their verdicts.
//
// Members are passive tasks, not goroutine owners: with a shared scoring
// pool configured, Step fans the vector out as claimable pool tasks (the
// caller helps run unclaimed ones, so latency is the slowest member's,
// not the sum, and a Step issued from inside a pool worker cannot
// deadlock); without a pool, members step serially inline. Either way
// per-stream ordering is fully preserved — Step(t) returns only after
// every member has consumed vector t, and no member sees vector t+1
// before that — and the combined scores are bit-identical across modes,
// because members are independent and float aggregation happens in fixed
// member order after the join.
//
// Performance weighting generalizes PCB-iForest's per-tree performance
// counters (Heigl et al.) from trees to whole pipelines: each member
// keeps a rolling counter that increments when its binary verdict (score
// ≥ Verdict) agrees with the ensemble's aggregated verdict and decrements
// otherwise. The AggPerfWeighted combiner turns the counters into
// weights, and an optional pruning policy disables members whose counter
// falls to PruneBelow — they keep stepping (and keep being judged) and
// are re-admitted once their counter recovers to zero.
package ensemble

import (
	"fmt"
	"sync"

	"streamad/internal/core"
	"streamad/internal/pool"
)

// Member is one pipeline of the ensemble. streamad.Detector satisfies it;
// so does anything else that speaks the framework's step contract.
type Member interface {
	Step(s []float64) (core.Result, bool)
}

// Checkpointer is the additional contract a member must satisfy for the
// ensemble's Save/Load to compose it into a checkpoint.
type Checkpointer interface {
	Save() ([]byte, error)
	Load([]byte) error
}

// Config assembles an Ensemble.
type Config struct {
	// Members are the pipelines (required, at least two).
	Members []Member
	// Labels name the members for stats and metrics (optional; default
	// "member-i"). When set, one label per member.
	Labels []string
	// Agg selects the score combiner (default AggMean).
	Agg Agg
	// Verdict is the decision boundary used for the agreement counters:
	// a member "votes anomaly" when its score ≥ Verdict, and the ensemble
	// consensus is the aggregated score ≥ Verdict (default 0.5, which
	// suits the [0,1]-ranged Avg and AL scoring functions; raw
	// nonconformity scores need a calibrated value).
	Verdict float64
	// CounterCap clamps every agreement counter to [-CounterCap,
	// CounterCap], making it a rolling rather than lifetime tally
	// (default 64).
	CounterCap int
	// PruneEnabled turns on the pruning policy: a member whose counter
	// falls to PruneBelow or less is excluded from aggregation until the
	// counter recovers to ≥ 0.
	PruneEnabled bool
	// PruneBelow is the disable threshold; must be negative so a fresh
	// member (counter 0) is never born disabled (default -16).
	PruneBelow int
	// Pool, when set, is the shared scoring pool member steps are
	// scheduled onto; nil steps members serially on the caller. Scores
	// are bit-identical either way.
	Pool *pool.Pool
}

// member is the runtime state of one pipeline.
type member struct {
	det   Member
	label string

	// The fields below are owned by the Step caller (written only after
	// the join barrier) and by the stats accessors, which the caller must
	// serialize with Step — the same contract as core.Detector.
	pc        int // rolling agreement counter
	disabled  bool
	ready     int
	fineTunes int
	lastScore float64
}

// stepOut is one member's answer for one vector.
type stepOut struct {
	res      core.Result
	ok       bool
	panicked interface{}
}

// step applies one vector, converting panics into values so a bad vector
// surfaces in the calling goroutine instead of crashing a pool worker.
func (m *member) step(v []float64) (out stepOut) {
	defer func() {
		if p := recover(); p != nil {
			out = stepOut{panicked: p}
		}
	}()
	r, ok := m.det.Step(v)
	return stepOut{res: r, ok: ok}
}

// Ensemble steps N member pipelines concurrently and combines their
// scores. Like core.Detector, an Ensemble is not safe for concurrent use;
// callers serialize Step (the HTTP server holds one lock per stream).
type Ensemble struct {
	members    []*member
	pool       *pool.Pool //streamad:transient shared scoring pool, an external resource wired at construction
	agg        Agg
	verdict    float64
	counterCap int
	pruneOn    bool
	pruneBelow int

	steps      int
	readySteps int

	stepVec []float64 //streamad:transient the vector tasks read, set before each fan-out
	tasks   []func()  //streamad:transient preallocated per-member pool tasks, rebuilt at construction
	outs    []stepOut //streamad:transient per-step fan-out scratch
	scores  []float64 //streamad:transient per-step aggregation scratch, refilled by collect
	nonconf []float64 //streamad:transient per-step aggregation scratch, refilled by collect
	weights []float64 //streamad:transient per-step performance weights, recomputed by collect from member counters
	scratch []float64 //streamad:transient combine() working buffer

	closeOnce sync.Once //streamad:transient process-local close latch, not stream state
}

// New validates the configuration and returns the Ensemble. Members own
// no goroutines: they run on the shared scoring pool (or inline).
func New(cfg Config) (*Ensemble, error) {
	if len(cfg.Members) < 2 {
		return nil, fmt.Errorf("ensemble: need at least 2 members, got %d", len(cfg.Members))
	}
	if len(cfg.Labels) != 0 && len(cfg.Labels) != len(cfg.Members) {
		return nil, fmt.Errorf("ensemble: %d labels for %d members", len(cfg.Labels), len(cfg.Members))
	}
	if cfg.Agg < AggMean || cfg.Agg > AggPerfWeighted {
		return nil, fmt.Errorf("ensemble: unknown combiner %d", int(cfg.Agg))
	}
	if cfg.Verdict == 0 {
		cfg.Verdict = 0.5
	}
	if cfg.CounterCap == 0 {
		cfg.CounterCap = 64
	}
	if cfg.CounterCap < 1 {
		return nil, fmt.Errorf("ensemble: CounterCap must be positive, got %d", cfg.CounterCap)
	}
	if cfg.PruneEnabled {
		if cfg.PruneBelow == 0 {
			cfg.PruneBelow = -16
		}
		if cfg.PruneBelow >= 0 {
			return nil, fmt.Errorf("ensemble: PruneBelow must be negative, got %d", cfg.PruneBelow)
		}
		if cfg.PruneBelow < -cfg.CounterCap {
			return nil, fmt.Errorf("ensemble: PruneBelow %d is beyond the counter cap %d, members could never be pruned",
				cfg.PruneBelow, cfg.CounterCap)
		}
	}
	n := len(cfg.Members)
	e := &Ensemble{
		members:    make([]*member, n),
		pool:       cfg.Pool,
		agg:        cfg.Agg,
		verdict:    cfg.Verdict,
		counterCap: cfg.CounterCap,
		pruneOn:    cfg.PruneEnabled,
		pruneBelow: cfg.PruneBelow,
		tasks:      make([]func(), n),
		outs:       make([]stepOut, n),
		scores:     make([]float64, 0, n),
		nonconf:    make([]float64, 0, n),
		weights:    make([]float64, 0, n),
		scratch:    make([]float64, 0, n),
	}
	for i, det := range cfg.Members {
		if det == nil {
			return nil, fmt.Errorf("ensemble: member %d is nil", i)
		}
		label := fmt.Sprintf("member-%d", i)
		if len(cfg.Labels) > 0 && cfg.Labels[i] != "" {
			label = cfg.Labels[i]
		}
		m := &member{det: det, label: label}
		e.members[i] = m
		i := i
		e.tasks[i] = func() { e.outs[i] = m.step(e.stepVec) }
	}
	return e, nil
}

// Step fans the vector out to every member, joins on all of them, and
// returns the combined result. ok is false until at least one member has
// finished its window fill and warmup; members that are still warming are
// simply absent from the aggregate. If any member rejects the vector with
// a panic (the detectors' contract for dimension mismatch), Step re-panics
// in the caller after the join, preserving the single-detector contract.
func (e *Ensemble) Step(s []float64) (core.Result, bool) {
	e.steps++
	if e.pool != nil {
		e.stepVec = s
		e.pool.Run(e.tasks...)
		e.stepVec = nil
	} else {
		for i, m := range e.members {
			e.outs[i] = m.step(s)
		}
	}
	var panicked interface{}
	for i := range e.outs {
		if e.outs[i].panicked != nil {
			panicked = e.outs[i].panicked
			break
		}
	}
	if panicked != nil {
		panic(panicked)
	}

	nReady := 0
	fineTuned := false
	for i, m := range e.members {
		o := &e.outs[i]
		if !o.ok {
			continue
		}
		nReady++
		m.ready++
		m.lastScore = o.res.Score
		if o.res.FineTuned {
			m.fineTunes++
			fineTuned = true
		}
	}
	if nReady == 0 {
		return core.Result{}, false
	}
	e.readySteps++

	// Aggregate over the ready, enabled members; if the pruning policy
	// has disabled every ready member, fall back to all ready members —
	// an ensemble never goes silent.
	e.collect(false)
	if len(e.scores) == 0 {
		e.collect(true)
	}
	f := combine(e.agg, e.scores, e.weights, &e.scratch)
	a := combine(e.agg, e.nonconf, e.weights, &e.scratch)

	// Judge every ready member against the consensus — disabled members
	// included, so they can earn their way back in.
	consensus := f >= e.verdict
	for i, m := range e.members {
		if !e.outs[i].ok {
			continue
		}
		if (e.outs[i].res.Score >= e.verdict) == consensus {
			if m.pc < e.counterCap {
				m.pc++
			}
		} else {
			if m.pc > -e.counterCap {
				m.pc--
			}
		}
		if e.pruneOn {
			if m.pc <= e.pruneBelow {
				m.disabled = true
			} else if m.disabled && m.pc >= 0 {
				m.disabled = false
			}
		}
	}
	return core.Result{Nonconformity: a, Score: f, FineTuned: fineTuned}, true
}

// collect gathers the scores, nonconformities and performance weights of
// the ready members into the ensemble's scratch slices.
func (e *Ensemble) collect(includeDisabled bool) {
	e.scores = e.scores[:0]
	e.nonconf = e.nonconf[:0]
	e.weights = e.weights[:0]
	for i, m := range e.members {
		if !e.outs[i].ok || (m.disabled && !includeDisabled) {
			continue
		}
		e.scores = append(e.scores, e.outs[i].res.Score)
		e.nonconf = append(e.nonconf, e.outs[i].res.Nonconformity)
		e.weights = append(e.weights, m.perfWeight())
	}
}

// perfWeight is the member's unnormalized aggregation weight: one plus
// the positive part of its agreement counter, PCB-iForest's counter
// scheme lifted to whole pipelines. A fresh member weighs 1; persistent
// agreement raises it; disagreement can only take it back down to 1 —
// exclusion is the pruning policy's job, not the weight's.
func (m *member) perfWeight() float64 {
	if m.pc > 0 {
		return 1 + float64(m.pc)
	}
	return 1
}

// MemberStat is one member's observable state, exposed per stream by the
// HTTP server's stats endpoint and /metrics.
type MemberStat struct {
	// Index is the member's position in the ensemble (stable, 0-based).
	Index int
	// Label names the member, typically its pipeline spec string.
	Label string
	// Ready counts the steps this member has scored.
	Ready int
	// FineTunes counts the member's drift-triggered fine-tuning sessions.
	FineTunes int
	// Agreement is the rolling consensus-agreement counter pc_i.
	Agreement int
	// Weight is the member's current normalized aggregation weight
	// (0 when disabled; the weights of enabled members sum to 1).
	Weight float64
	// Disabled reports whether the pruning policy currently excludes the
	// member from aggregation.
	Disabled bool
	// LastScore is the member's most recent anomaly score.
	LastScore float64
}

// MemberStats returns a snapshot of every member's counters and weights,
// in member order. Callers must serialize it with Step.
func (e *Ensemble) MemberStats() []MemberStat {
	var sum float64
	for _, m := range e.members {
		if !m.disabled {
			sum += m.perfWeight()
		}
	}
	out := make([]MemberStat, len(e.members))
	for i, m := range e.members {
		var w float64
		if !m.disabled && sum > 0 {
			w = m.perfWeight() / sum
		}
		out[i] = MemberStat{
			Index:     i,
			Label:     m.label,
			Ready:     m.ready,
			FineTunes: m.fineTunes,
			Agreement: m.pc,
			Weight:    w,
			Disabled:  m.disabled,
			LastScore: m.lastScore,
		}
	}
	return out
}

// Size returns the number of members.
func (e *Ensemble) Size() int { return len(e.members) }

// Members returns the member pipelines in ensemble order.
func (e *Ensemble) Members() []Member {
	out := make([]Member, len(e.members))
	for i, m := range e.members {
		out[i] = m.det
	}
	return out
}

// Agg returns the configured combiner.
func (e *Ensemble) Agg() Agg { return e.agg }

// Steps returns the number of stream vectors consumed, including warmup.
func (e *Ensemble) Steps() int { return e.steps }

// ReadySteps returns the number of steps on which the ensemble produced a
// combined score.
func (e *Ensemble) ReadySteps() int { return e.readySteps }

// FineTunes returns the total fine-tuning sessions across all members.
func (e *Ensemble) FineTunes() int {
	total := 0
	for _, m := range e.members {
		total += m.fineTunes
	}
	return total
}

// FineTuneStats aggregates the members' serve/train split statistics:
// counters, durations and histogram buckets sum across members, the
// Async/InFlight flags OR together, and LastSeconds is the maximum over
// members (cross-member recency is unknowable from atomics alone).
// Members not exposing stats are skipped. Safe from any goroutine.
func (e *Ensemble) FineTuneStats() core.FineTuneStats {
	agg := core.FineTuneStats{Buckets: make([]uint64, len(core.FineTuneBuckets)+1)}
	for _, m := range e.members {
		fs, ok := m.det.(interface{ FineTuneStats() core.FineTuneStats })
		if !ok {
			continue
		}
		st := fs.FineTuneStats()
		agg.Async = agg.Async || st.Async
		agg.InFlight = agg.InFlight || st.InFlight
		agg.Launched += st.Launched
		agg.Skipped += st.Skipped
		agg.Completed += st.Completed
		if st.LastSeconds > agg.LastSeconds {
			agg.LastSeconds = st.LastSeconds
		}
		agg.TotalSeconds += st.TotalSeconds
		for i := range st.Buckets {
			agg.Buckets[i] += st.Buckets[i]
		}
	}
	return agg
}

// WaitFineTune drains every member's in-flight asynchronous fine-tune.
// Like Step it must be serialized with other Step/Wait calls by the
// caller; the member workers are idle between Steps, so adopting models
// here cannot race with scoring.
func (e *Ensemble) WaitFineTune() {
	for _, m := range e.members {
		if w, ok := m.det.(interface{ WaitFineTune() }); ok {
			w.WaitFineTune()
		}
	}
}

// Close settles every member's outstanding asynchronous training (the
// ensemble itself owns no goroutines). Eviction paths must call it so a
// TTL-evicted stream cannot leak in-flight trainers; safe to call twice,
// and the ensemble remains steppable after.
func (e *Ensemble) Close() {
	e.closeOnce.Do(func() {
		for _, m := range e.members {
			if c, ok := m.det.(interface{ Close() }); ok {
				c.Close()
			}
		}
	})
}

// PageOut implements core.Pager member-wise: it requires every member to
// be a Pager (all-or-nothing — no member is paged if any cannot be) and
// concatenates their blobs. Aggregation counters stay resident; they are
// snapshot state handled by Save/Load, not window state.
func (e *Ensemble) PageOut() ([]byte, error) {
	pagers := make([]core.Pager, len(e.members))
	for i, m := range e.members {
		p, ok := m.det.(core.Pager)
		if !ok {
			return nil, fmt.Errorf("ensemble: member %d (%T) is not pageable", i, m.det)
		}
		pagers[i] = p
	}
	blobs := make([][]byte, len(pagers))
	for i, p := range pagers {
		b, err := p.PageOut()
		if err != nil {
			// Roll the already-paged members back in so the ensemble stays
			// consistent (either fully resident or fully paged).
			for j := 0; j < i; j++ {
				_ = pagers[j].PageIn(blobs[j])
			}
			return nil, fmt.Errorf("ensemble: page out member %d: %w", i, err)
		}
		blobs[i] = b
	}
	return encodePageSet(blobs)
}

// PageIn implements core.Pager, restoring a PageOut blob member-wise.
func (e *Ensemble) PageIn(data []byte) error {
	blobs, err := decodePageSet(data)
	if err != nil {
		return err
	}
	if len(blobs) != len(e.members) {
		return fmt.Errorf("ensemble: page set holds %d members, ensemble has %d", len(blobs), len(e.members))
	}
	for i, m := range e.members {
		p, ok := m.det.(core.Pager)
		if !ok {
			return fmt.Errorf("ensemble: member %d (%T) is not pageable", i, m.det)
		}
		if err := p.PageIn(blobs[i]); err != nil {
			return fmt.Errorf("ensemble: page in member %d: %w", i, err)
		}
	}
	return nil
}

// Paged implements core.Pager: true when the members are paged out.
func (e *Ensemble) Paged() bool {
	for _, m := range e.members {
		if p, ok := m.det.(core.Pager); ok {
			return p.Paged()
		}
	}
	return false
}
