package ensemble

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"streamad/internal/core"
)

// scriptMember is a deterministic stub pipeline: not ready for warm steps,
// then it emits base + gain·s[0] as both score and nonconformity. It
// checkpoints its step counter so Save/Load round trips are testable.
type scriptMember struct {
	warm  int
	base  float64
	gain  float64
	steps int
}

func (m *scriptMember) Step(s []float64) (core.Result, bool) {
	if len(s) != 1 {
		panic("scriptMember: dim mismatch")
	}
	m.steps++
	if m.steps <= m.warm {
		return core.Result{}, false
	}
	v := m.base + m.gain*s[0]
	return core.Result{Score: v, Nonconformity: v}, true
}

func (m *scriptMember) Save() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(m.steps)
	return buf.Bytes(), err
}

func (m *scriptMember) Load(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(&m.steps)
}

func members(ms ...*scriptMember) []Member {
	out := make([]Member, len(ms))
	for i, m := range ms {
		out[i] = m
	}
	return out
}

func TestCombiners(t *testing.T) {
	var scratch []float64
	cases := []struct {
		agg     Agg
		values  []float64
		weights []float64
		want    float64
	}{
		{AggMean, []float64{0.1, 0.2, 0.6}, nil, 0.3},
		{AggMax, []float64{0.1, 0.9, 0.6}, nil, 0.9},
		{AggMedian, []float64{0.9, 0.1, 0.6}, nil, 0.6},
		{AggMedian, []float64{0.9, 0.1, 0.6, 0.2}, nil, 0.4},
		{AggTrimmedMean, []float64{0, 0.4, 0.6, 10}, nil, 0.5},
		{AggTrimmedMean, []float64{0.2, 0.4}, nil, 0.3}, // n<3: plain mean
		{AggPerfWeighted, []float64{0, 1}, []float64{1, 3}, 0.75},
		{AggPerfWeighted, []float64{0.2, 0.4}, []float64{0, 0}, 0.3}, // degenerate weights
	}
	for _, c := range cases {
		got := combine(c.agg, c.values, c.weights, &scratch)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("combine(%v, %v, %v) = %v, want %v", c.agg, c.values, c.weights, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	one := members(&scriptMember{gain: 1})
	if _, err := New(Config{Members: one}); err == nil {
		t.Error("accepted a 1-member ensemble")
	}
	two := members(&scriptMember{gain: 1}, &scriptMember{gain: 2})
	if _, err := New(Config{Members: two, Labels: []string{"only-one"}}); err == nil {
		t.Error("accepted mismatched label count")
	}
	if _, err := New(Config{Members: two, PruneEnabled: true, PruneBelow: 3}); err == nil {
		t.Error("accepted a positive PruneBelow")
	}
	if _, err := New(Config{Members: two, CounterCap: 8, PruneEnabled: true, PruneBelow: -20}); err == nil {
		t.Error("accepted PruneBelow beyond the counter cap")
	}
	if _, err := New(Config{Members: two, Agg: Agg(99)}); err == nil {
		t.Error("accepted an unknown combiner")
	}
}

// TestStepAggregatesAndWarmup drives three members with different warmups
// through the mean combiner; the ensemble must go ready as soon as one
// member is, and average exactly the ready members.
func TestStepAggregatesAndWarmup(t *testing.T) {
	e, err := New(Config{Members: members(
		&scriptMember{warm: 0, gain: 1},
		&scriptMember{warm: 2, gain: 2},
		&scriptMember{warm: 4, gain: 3},
	)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Step 1: only member 0 ready → score 0.1.
	// Step 3: members 0,1 ready → (0.1+0.2)/2.
	// Step 5: all ready → (0.1+0.2+0.3)/3.
	wants := map[int]float64{1: 0.1, 3: 0.15, 5: 0.2}
	for i := 1; i <= 5; i++ {
		res, ok := e.Step([]float64{0.1})
		if !ok {
			t.Fatalf("step %d: not ready", i)
		}
		if want, present := wants[i]; present && math.Abs(res.Score-want) > 1e-12 {
			t.Fatalf("step %d: score %v, want %v", i, res.Score, want)
		}
	}
	if e.Steps() != 5 || e.ReadySteps() != 5 {
		t.Fatalf("Steps=%d ReadySteps=%d, want 5/5", e.Steps(), e.ReadySteps())
	}
	stats := e.MemberStats()
	if stats[0].Ready != 5 || stats[1].Ready != 3 || stats[2].Ready != 1 {
		t.Fatalf("member ready counts %d/%d/%d, want 5/3/1", stats[0].Ready, stats[1].Ready, stats[2].Ready)
	}
}

// TestPerformanceCountersAndPruning stars a member that always disagrees
// with the consensus: its counter must sink to the prune threshold, the
// policy must disable it (excluding it from the aggregate), and the
// weights of the survivors must carry the score.
func TestPerformanceCountersAndPruning(t *testing.T) {
	// Two members say "anomaly" (0.9), one says "normal" (0.1): the mean
	// consensus is ≥ 0.5, so the dissenter loses a point per step.
	e, err := New(Config{
		Members:      members(&scriptMember{base: 0.9}, &scriptMember{base: 0.9}, &scriptMember{base: 0.1}),
		Agg:          AggPerfWeighted,
		PruneEnabled: true,
		PruneBelow:   -4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var last core.Result
	for i := 0; i < 6; i++ {
		last, _ = e.Step([]float64{0})
	}
	stats := e.MemberStats()
	if !stats[2].Disabled {
		t.Fatalf("dissenting member not disabled after 6 steps: %+v", stats[2])
	}
	if stats[2].Weight != 0 {
		t.Fatalf("disabled member weight %v, want 0", stats[2].Weight)
	}
	if stats[2].Agreement > -4 {
		t.Fatalf("dissenter agreement %d, want ≤ -4", stats[2].Agreement)
	}
	// With the dissenter pruned, only the 0.9 members aggregate.
	if math.Abs(last.Score-0.9) > 1e-12 {
		t.Fatalf("post-prune score %v, want 0.9", last.Score)
	}
	if w := stats[0].Weight + stats[1].Weight; math.Abs(w-1) > 1e-12 {
		t.Fatalf("enabled weights sum to %v, want 1", w)
	}
}

// TestAllPrunedFallsBack: when every ready member is disabled the
// ensemble must still score — over all ready members — rather than go
// silent, and members whose counter recovers must be re-admitted.
func TestAllPrunedFallsBack(t *testing.T) {
	e, err := New(Config{
		Members:      members(&scriptMember{base: 0.4}, &scriptMember{base: 0.6}),
		PruneEnabled: true,
		PruneBelow:   -2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, m := range e.members {
		m.disabled = true
	}
	res, ok := e.Step([]float64{0})
	if !ok {
		t.Fatal("fully-pruned ensemble went silent")
	}
	if math.Abs(res.Score-0.5) > 1e-12 {
		t.Fatalf("fallback score %v, want 0.5 (mean over all ready members)", res.Score)
	}
	// Consensus was "anomaly" (0.5 ≥ 0.5): the 0.6 member agreed, its
	// counter rose to ≥ 0, and the policy re-admitted it; the 0.4 member
	// dissented and stays out.
	stats := e.MemberStats()
	if stats[1].Disabled {
		t.Fatalf("agreeing member not re-admitted: %+v", stats[1])
	}
	if !stats[0].Disabled {
		t.Fatalf("dissenting member re-admitted too early: %+v", stats[0])
	}
}

// TestPanicPropagation: a member panicking on a bad vector must surface
// as a panic of Step in the caller's goroutine (the server's safeStep
// contract), not crash the worker.
func TestPanicPropagation(t *testing.T) {
	e, err := New(Config{Members: members(&scriptMember{}, &scriptMember{})})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Step did not re-panic on member panic")
			}
		}()
		e.Step([]float64{1, 2}) // scriptMember wants dim 1
	}()
	// The workers must have survived the panic: a good vector still works.
	if _, ok := e.Step([]float64{0.3}); !ok {
		t.Fatal("ensemble dead after a rejected vector")
	}
}

// TestSaveLoadRoundTrip checkpoints mid-stream and verifies a fresh
// ensemble restored from the blob continues with identical scores and
// counters.
func TestSaveLoadRoundTrip(t *testing.T) {
	build := func() *Ensemble {
		e, err := New(Config{
			Members:      members(&scriptMember{base: 0.8}, &scriptMember{base: 0.2, gain: 1}, &scriptMember{base: 0.5}),
			Agg:          AggPerfWeighted,
			PruneEnabled: true,
			PruneBelow:   -4,
			Labels:       []string{"a", "b", "c"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	vec := func(i int) []float64 { return []float64{0.1 * float64(i%7)} }

	ref := build()
	defer ref.Close()
	live := build()
	defer live.Close()
	for i := 0; i < 40; i++ {
		ref.Step(vec(i))
		live.Step(vec(i))
	}
	blob, err := live.Save()
	if err != nil {
		t.Fatal(err)
	}
	restored := build()
	defer restored.Close()
	if err := restored.Load(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != 40 {
		t.Fatalf("restored Steps=%d, want 40", restored.Steps())
	}
	for i := 40; i < 80; i++ {
		want, _ := ref.Step(vec(i))
		got, _ := restored.Step(vec(i))
		if got.Score != want.Score || got.Nonconformity != want.Nonconformity || got.FineTuned != want.FineTuned {
			t.Fatalf("restored ensemble diverged at step %d: %+v vs %+v", i, got, want)
		}
	}
	rs, ws := restored.MemberStats(), ref.MemberStats()
	for i := range rs {
		if rs[i] != ws[i] {
			t.Fatalf("member %d stats diverged: %+v vs %+v", i, rs[i], ws[i])
		}
	}
}

// TestLoadRejectsMismatch: a snapshot from a differently-configured
// ensemble must be refused.
func TestLoadRejectsMismatch(t *testing.T) {
	e, _ := New(Config{Members: members(&scriptMember{}, &scriptMember{})})
	defer e.Close()
	blob, err := e.Save()
	if err != nil {
		t.Fatal(err)
	}
	other, _ := New(Config{Members: members(&scriptMember{}, &scriptMember{}), Agg: AggMedian})
	defer other.Close()
	if err := other.Load(blob); err == nil {
		t.Error("median ensemble accepted a mean ensemble's snapshot")
	}
	three, _ := New(Config{Members: members(&scriptMember{}, &scriptMember{}, &scriptMember{})})
	defer three.Close()
	if err := three.Load(blob); err == nil {
		t.Error("3-member ensemble accepted a 2-member snapshot")
	}
}

// TestConcurrentStepping hammers the fan-out/join path long enough for
// the race detector to see every channel interaction, and checks the
// aggregate stays deterministic against a serial recomputation.
func TestConcurrentStepping(t *testing.T) {
	e, err := New(Config{Members: members(
		&scriptMember{gain: 1}, &scriptMember{gain: 2}, &scriptMember{gain: 3},
		&scriptMember{gain: 4}, &scriptMember{gain: 5},
	)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 2000; i++ {
		x := 0.001 * float64(i%97)
		res, ok := e.Step([]float64{x})
		if !ok {
			t.Fatalf("step %d not ready", i)
		}
		want := (1 + 2 + 3 + 4 + 5) * x / 5
		if math.Abs(res.Score-want) > 1e-12 {
			t.Fatalf("step %d: score %v, want %v", i, res.Score, want)
		}
	}
}
