package ensemble

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// snapshotVersion identifies the Ensemble.Save envelope layout.
const snapshotVersion = 1

// snapshot is the serializable envelope of an ensemble checkpoint: the
// configuration fingerprint, each member's own full checkpoint, and the
// ensemble-level counters (agreement, pruning, step totals) that the
// member blobs don't know about.
type snapshot struct {
	Version    int
	Agg        int
	Verdict    float64
	CounterCap int
	PruneOn    bool
	PruneBelow int
	Steps      int
	ReadySteps int
	Members    [][]byte
	PC         []int
	Disabled   []bool
	Ready      []int
	FineTunes  []int
	LastScore  []float64
}

// encodePageSet serializes the per-member PageOut blobs of an ensemble.
func encodePageSet(blobs [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blobs); err != nil {
		return nil, fmt.Errorf("ensemble: encode page set: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePageSet reverses encodePageSet.
func decodePageSet(data []byte) ([][]byte, error) {
	var blobs [][]byte
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blobs); err != nil {
		return nil, fmt.Errorf("ensemble: decode page set: %w", err)
	}
	return blobs, nil
}

// Save returns a binary checkpoint composing every member's full
// checkpoint (each member must implement Checkpointer) with the
// ensemble's own counters. An ensemble restored with Load scores
// bit-identically to an uninterrupted run from the next vector on.
func (e *Ensemble) Save() ([]byte, error) {
	snap := snapshot{
		Version:    snapshotVersion,
		Agg:        int(e.agg),
		Verdict:    e.verdict,
		CounterCap: e.counterCap,
		PruneOn:    e.pruneOn,
		PruneBelow: e.pruneBelow,
		Steps:      e.steps,
		ReadySteps: e.readySteps,
		Members:    make([][]byte, len(e.members)),
		PC:         make([]int, len(e.members)),
		Disabled:   make([]bool, len(e.members)),
		Ready:      make([]int, len(e.members)),
		FineTunes:  make([]int, len(e.members)),
		LastScore:  make([]float64, len(e.members)),
	}
	for i, m := range e.members {
		ck, ok := m.det.(Checkpointer)
		if !ok {
			return nil, fmt.Errorf("ensemble: member %d (%s) does not support checkpointing", i, m.label)
		}
		blob, err := ck.Save()
		if err != nil {
			return nil, fmt.Errorf("ensemble: member %d (%s): %w", i, m.label, err)
		}
		snap.Members[i] = blob
		snap.PC[i] = m.pc
		snap.Disabled[i] = m.disabled
		snap.Ready[i] = m.ready
		snap.FineTunes[i] = m.fineTunes
		snap.LastScore[i] = m.lastScore
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("ensemble: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores a checkpoint produced by Save into this ensemble. The
// ensemble must have been built with the same configuration (member
// count, combiner, verdict boundary, counter cap, pruning policy), and
// every member must accept its own blob — a member's Load checks its
// pipeline fingerprint, so member order and configuration mismatches are
// rejected too.
func (e *Ensemble) Load(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("ensemble: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("ensemble: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	switch {
	case len(snap.Members) != len(e.members):
		return fmt.Errorf("ensemble: snapshot has %d members, ensemble has %d", len(snap.Members), len(e.members))
	case snap.Agg != int(e.agg):
		return fmt.Errorf("ensemble: snapshot combiner %v does not match ensemble %v", Agg(snap.Agg), e.agg)
	case snap.Verdict != e.verdict:
		return fmt.Errorf("ensemble: snapshot verdict %v does not match ensemble %v", snap.Verdict, e.verdict)
	case snap.CounterCap != e.counterCap:
		return fmt.Errorf("ensemble: snapshot counter cap %d does not match ensemble %d", snap.CounterCap, e.counterCap)
	case snap.PruneOn != e.pruneOn || (e.pruneOn && snap.PruneBelow != e.pruneBelow):
		return fmt.Errorf("ensemble: snapshot pruning policy (%v, %d) does not match ensemble (%v, %d)",
			snap.PruneOn, snap.PruneBelow, e.pruneOn, e.pruneBelow)
	}
	// Restore members first: each member validates its blob against its
	// own configuration, so a mismatched snapshot fails before any
	// ensemble-level counter is touched.
	for i, m := range e.members {
		ck, ok := m.det.(Checkpointer)
		if !ok {
			return fmt.Errorf("ensemble: member %d (%s) does not support checkpointing", i, m.label)
		}
		if err := ck.Load(snap.Members[i]); err != nil {
			return fmt.Errorf("ensemble: member %d (%s): %w", i, m.label, err)
		}
	}
	e.steps = snap.Steps
	e.readySteps = snap.ReadySteps
	for i, m := range e.members {
		m.pc = snap.PC[i]
		m.disabled = snap.Disabled[i]
		m.ready = snap.Ready[i]
		m.fineTunes = snap.FineTunes[i]
		m.lastScore = snap.LastScore[i]
	}
	return nil
}
