// Wire types for the cluster protocol. The server handlers decode these
// and the node loops encode them, so both ends share one declaration.
package cluster

// ForwardedHeader marks a request that already crossed the proxy layer.
// A node receiving it scores every record locally — even ones the ring
// says belong elsewhere — so a membership disagreement between two nodes
// degrades to misplaced ownership, never a forwarding loop.
const ForwardedHeader = "X-Streamad-Forwarded"

// MigrateRequest is the body of POST /v1/streams/{id}/migrate: the
// stream's versioned CRC snapshot file, the WAL records past its
// boundary, and the CRC-32C fingerprint of the source's live state that
// the target must reproduce after replay before acknowledging.
//
//streamad:finite-json — the only floats are WALEntry vectors, finite by construction at ingest.
type MigrateRequest struct {
	// Node is the sending node's advertised URL (diagnostics only).
	Node string `json:"node"`
	// Snapshot is a persist snapshot file (magic, version, CRC, gob) —
	// base64 in JSON, verified by persist.DecodeSnapshotFile on receipt.
	Snapshot []byte `json:"snapshot"`
	// WAL is the record tail with seq >= the snapshot's boundary.
	WAL []WALEntry `json:"wal,omitempty"`
	// Fingerprint is the source's live-state CRC-32C (see ingest.Handoff).
	Fingerprint uint32 `json:"fingerprint"`
}

// WALEntry is one logged observation, as shipped in migrations and
// streamed (NDJSON) by GET /v1/streams/{id}/wal. Vectors entered the
// system through observe handlers that reject non-finite values and
// are replayed verbatim.
//
//streamad:finite-json — vectors are finite by construction at ingest.
type WALEntry struct {
	Seq    uint64    `json:"seq"`
	Vector []float64 `json:"vector"`
}

// MigrateResponse acknowledges an adopted stream; Fingerprint echoes the
// CRC the target recomputed from its own post-replay state.
type MigrateResponse struct {
	Node        string `json:"node"`
	Fingerprint uint32 `json:"fingerprint"`
}

// WALGone is the 410 body of a WAL tail request from below the owner's
// last snapshot rotation: the records are folded into the snapshot, and
// the follower must refetch it and resume from SnapshotSeq.
type WALGone struct {
	Error       string `json:"error"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
}
