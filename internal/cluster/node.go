package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamad/internal/ingest"
	"streamad/internal/score"
)

// Config wires a Node to its peers and to the local registry's detector
// factories (needed to materialise standby replicas).
type Config struct {
	// Self is this node's advertised base URL; it must appear in Peers.
	Self string
	// Peers is the full static membership, self included, as base URLs
	// ("http://host:port"). Liveness within the set is probed; the set
	// itself never changes at runtime.
	Peers []string
	// VirtualNodes per member on the ring (default 64).
	VirtualNodes int
	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe failures mark a peer
	// down (default 2). One success marks it back up.
	ProbeFailures int
	// RebalanceInterval is how often misplaced local streams are checked
	// and migrated to their ring owners (default 2s; <0 disables).
	RebalanceInterval time.Duration
	// StandbyInterval is how often standby replicas sync against their
	// owners' WALs (default 1s; <0 disables replication).
	StandbyInterval time.Duration
	// Client is the HTTP client for forwarding, migration and standby
	// traffic (default: 30s timeout). Probes use their own short-timeout
	// client derived from ProbeInterval.
	Client *http.Client
	// NewDetector and NewThresholder build the local halves of standby
	// replicas; they should match the registry's own factories. Standby
	// replication is disabled when NewDetector is nil.
	NewDetector    func(id string) (ingest.Stepper, error)
	NewThresholder func(id string) score.Thresholder
	// Logf receives cluster lifecycle events (peer transitions,
	// migrations, promotions). Defaults to a no-op.
	Logf func(format string, args ...any)
}

// peerState is one member's health and traffic counters. Membership is
// static, so the map holding these is never written after NewNode and
// needs no lock; the fields that change are atomics (fails is owned by
// the prober goroutine alone).
type peerState struct {
	alive       atomic.Bool
	fails       int
	forwarded   atomic.Uint64
	forwardErrs atomic.Uint64
}

// Node is one member of the cluster: it owns the ring view, probes the
// other members, forwards records to their owners, migrates misplaced
// streams away and keeps warm standbys for streams it backs up.
type Node struct {
	cfg    Config
	self   string
	order  []string // sorted peer URLs, self included
	peers  map[string]*peerState
	ring   atomic.Pointer[Ring]
	client *http.Client
	probec *http.Client
	reg    *ingest.Registry

	forwardedIn     atomic.Uint64
	migInOK         atomic.Uint64
	migInErr        atomic.Uint64
	migOutOK        atomic.Uint64
	migOutErr       atomic.Uint64
	standbyReplayed atomic.Uint64
	promotions      atomic.Uint64

	repMu    sync.Mutex
	replicas map[string]*replica

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewNode validates the membership and builds the node with an
// optimistic all-alive ring; the prober refines it.
func New(cfg Config) (*Node, error) {
	cfg.Self = strings.TrimRight(cfg.Self, "/")
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: self URL required")
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 2
	}
	if cfg.RebalanceInterval == 0 {
		cfg.RebalanceInterval = 2 * time.Second
	}
	if cfg.StandbyInterval == 0 {
		cfg.StandbyInterval = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:      cfg,
		self:     cfg.Self,
		peers:    make(map[string]*peerState),
		client:   cfg.Client,
		replicas: make(map[string]*replica),
		stop:     make(chan struct{}),
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: 30 * time.Second}
	}
	n.probec = &http.Client{Timeout: cfg.ProbeInterval}
	for _, p := range cfg.Peers {
		p = strings.TrimRight(p, "/")
		if p == "" {
			continue
		}
		if _, dup := n.peers[p]; dup {
			continue
		}
		ps := &peerState{}
		ps.alive.Store(true)
		n.peers[p] = ps
		n.order = append(n.order, p)
	}
	if _, ok := n.peers[n.self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", n.self, cfg.Peers)
	}
	sort.Strings(n.order)
	n.rebuildRing()
	return n, nil
}

// Start attaches the node to its registry and launches the background
// loops (prober, rebalancer, standby sync); they exit on n.stop and are
// joined by Close via n.wg. Single-node "clusters" stay inert: every
// lookup answers self.
//
//streamad:lifecycle — declared owner of the prober, rebalancer and standby goroutines.
func (n *Node) Start(reg *ingest.Registry) {
	n.reg = reg
	if len(n.order) < 2 {
		return
	}
	n.wg.Add(1)
	go n.probeLoop()
	if n.cfg.RebalanceInterval > 0 {
		n.wg.Add(1)
		go n.rebalanceLoop()
	}
	if n.cfg.StandbyInterval > 0 && n.cfg.NewDetector != nil && n.cfg.NewThresholder != nil {
		n.wg.Add(1)
		go n.standbyLoop()
	}
}

// Close stops and joins the background loops.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Self returns this node's advertised URL.
func (n *Node) Self() string { return n.self }

// Owner maps a stream id to the node currently responsible for it.
func (n *Node) Owner(id string) string { return n.ring.Load().Owner(id) }

// Backup returns the stream's first ring successor — the node that keeps
// its warm standby — or "" when the live member set has no second node.
func (n *Node) Backup(id string) string {
	owners := n.ring.Load().Owners(id, 2)
	if len(owners) < 2 {
		return ""
	}
	return owners[1]
}

// IsLocal reports whether this node owns the stream.
func (n *Node) IsLocal(id string) bool { return n.Owner(id) == n.self }

// PeerAlive reports the probed liveness of a member URL (self is always
// alive; unknown URLs never are).
func (n *Node) PeerAlive(url string) bool {
	if url == n.self {
		return true
	}
	ps, ok := n.peers[url]
	return ok && ps.alive.Load()
}

// Client returns the node's data-path HTTP client, shared with server
// handlers that proxy individual requests (single observes, stats).
func (n *Node) Client() *http.Client { return n.client }

// probeLoop drives the health probes.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.probeOnce()
		}
	}
}

// probeOnce probes every remote member and rebuilds the ring when any
// transitions. Down needs ProbeFailures consecutive misses; up needs one
// hit, so a flapping peer rejoins quickly but leaves deliberately.
func (n *Node) probeOnce() {
	changed := false
	for _, url := range n.order {
		if url == n.self {
			continue
		}
		ps := n.peers[url]
		if n.probe(url) {
			ps.fails = 0
			if !ps.alive.Load() {
				ps.alive.Store(true)
				changed = true
				n.cfg.Logf("streamad: cluster peer %s up", url)
			}
			continue
		}
		ps.fails++
		if ps.fails >= n.cfg.ProbeFailures && ps.alive.Load() {
			ps.alive.Store(false)
			changed = true
			n.cfg.Logf("streamad: cluster peer %s down after %d failed probes", url, ps.fails)
		}
	}
	if changed {
		n.rebuildRing()
	}
}

func (n *Node) probe(url string) bool {
	resp, err := n.probec.Get(url + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// rebuildRing recomputes placement from the live member view. Self is
// always a member of its own ring, so lookups never come back empty.
func (n *Node) rebuildRing() {
	alive := make([]string, 0, len(n.order))
	for _, url := range n.order {
		if url == n.self || n.peers[url].alive.Load() {
			alive = append(alive, url)
		}
	}
	n.ring.Store(NewRing(alive, n.cfg.VirtualNodes))
}

// ForwardBatch ships an NDJSON batch slice to a peer's observe endpoint
// with the loop-guard header set and returns the peer's response body
// (its BatchResult lines, in order). records sizes the per-peer counter.
func (n *Node) ForwardBatch(peer string, records int, body []byte) ([]byte, error) {
	out, err := n.forward(peer, "/v1/observe", body)
	ps := n.peers[peer]
	if err != nil {
		if ps != nil {
			ps.forwardErrs.Add(1)
		}
		return nil, err
	}
	if ps != nil {
		ps.forwarded.Add(uint64(records))
	}
	return out, nil
}

// ForwardRecord proxies a single-record body to a peer endpoint with the
// loop-guard header set and returns the peer's status code and response
// body. err reports transport failures only, so callers can relay
// non-200 statuses (sheds, bad shapes) to the producer verbatim.
func (n *Node) ForwardRecord(peer, path string, body []byte, contentType string) (int, []byte, error) {
	ps := n.peers[peer]
	req, err := http.NewRequest(http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(ForwardedHeader, n.self)
	resp, err := n.client.Do(req)
	if err != nil {
		if ps != nil {
			ps.forwardErrs.Add(1)
		}
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		if ps != nil {
			ps.forwardErrs.Add(1)
		}
		return 0, nil, err
	}
	if ps != nil {
		ps.forwarded.Add(1)
	}
	return resp.StatusCode, out, nil
}

func (n *Node) forward(peer, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequest(http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(ForwardedHeader, n.self)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: peer %s returned %s", peer, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// NoteForwardedIn counts records received with the loop-guard header —
// work this node scored on another node's behalf.
func (n *Node) NoteForwardedIn(records int) {
	if records > 0 {
		n.forwardedIn.Add(uint64(records))
	}
}

// NoteMigrationIn counts an inbound migration attempt's outcome (the
// server's /migrate handler reports here).
func (n *Node) NoteMigrationIn(ok bool) {
	if ok {
		n.migInOK.Add(1)
	} else {
		n.migInErr.Add(1)
	}
}

// PeerStat is one member's view for the metrics endpoint.
type PeerStat struct {
	URL           string
	Alive         bool
	Forwarded     uint64
	ForwardErrors uint64
}

// Stats is an instantaneous snapshot of the node's cluster counters.
type Stats struct {
	Self             string
	Peers            []PeerStat
	RingNodes        int
	ForwardedIn      uint64
	MigrationsInOK   uint64
	MigrationsInErr  uint64
	MigrationsOutOK  uint64
	MigrationsOutErr uint64
	StandbyStreams   int
	StandbyReplayed  uint64
	Promotions       uint64
}

// Stats snapshots the node's counters for /metrics rendering. Peers come
// back sorted by URL, self included.
func (n *Node) Stats() Stats {
	s := Stats{
		Self:             n.self,
		RingNodes:        len(n.ring.Load().Nodes()),
		ForwardedIn:      n.forwardedIn.Load(),
		MigrationsInOK:   n.migInOK.Load(),
		MigrationsInErr:  n.migInErr.Load(),
		MigrationsOutOK:  n.migOutOK.Load(),
		MigrationsOutErr: n.migOutErr.Load(),
		StandbyReplayed:  n.standbyReplayed.Load(),
		Promotions:       n.promotions.Load(),
	}
	n.repMu.Lock()
	s.StandbyStreams = len(n.replicas)
	n.repMu.Unlock()
	for _, url := range n.order {
		ps := n.peers[url]
		s.Peers = append(s.Peers, PeerStat{
			URL:           url,
			Alive:         url == n.self || ps.alive.Load(),
			Forwarded:     ps.forwarded.Load(),
			ForwardErrors: ps.forwardErrs.Load(),
		})
	}
	return s
}
