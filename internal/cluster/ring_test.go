package cluster

import (
	"fmt"
	"testing"
)

var testNodes = []string{
	"http://127.0.0.1:8431",
	"http://127.0.0.1:8432",
	"http://127.0.0.1:8433",
}

// TestRingDeterministic: the ring is a pure function of the member set —
// node order must not matter, and two independently built rings must
// agree on every placement (the property cluster routing rests on: every
// node that agrees on liveness agrees on ownership).
func TestRingDeterministic(t *testing.T) {
	a := NewRing(testNodes, 64)
	b := NewRing([]string{testNodes[2], testNodes[0], testNodes[1]}, 64)
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("soak-%d", i)
		if ao, bo := a.Owner(id), b.Owner(id); ao != bo {
			t.Fatalf("owner(%q): %q vs %q for permuted member list", id, ao, bo)
		}
	}
}

// TestRingBalanceShortSequentialIDs is the regression test for the raw
// FNV-1a ring: ids like soak-0..soak-47 differ only by a few multiples
// of the FNV prime, which placed the whole fleet in one inter-point gap
// and gave a single node every stream. With the avalanche finalizer a
// fleet-sized family must spread across every member.
func TestRingBalanceShortSequentialIDs(t *testing.T) {
	r := NewRing(testNodes, 64)
	counts := map[string]int{}
	for i := 0; i < 48; i++ {
		counts[r.Owner(fmt.Sprintf("soak-%d", i))]++
	}
	for _, n := range testNodes {
		if counts[n] == 0 {
			t.Fatalf("node %q owns no streams: %v", n, counts)
		}
	}
	for n, c := range counts {
		if c > 40 {
			t.Fatalf("node %q owns %d of 48 streams — degenerate placement: %v", n, c, counts)
		}
	}
}

// TestRingBalanceLarge: over a large id population no member's share
// should stray wildly from 1/3 (loose bounds — consistent hashing with
// 64 vnodes is balanced to roughly ±20%, not perfectly).
func TestRingBalanceLarge(t *testing.T) {
	r := NewRing(testNodes, 64)
	const n = 30000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("device-%d/sensor-%d", i%977, i))]++
	}
	for node, c := range counts {
		share := float64(c) / n
		if share < 0.15 || share > 0.55 {
			t.Fatalf("node %q owns %.3f of %d ids, want a sane third: %v", node, share, n, counts)
		}
	}
}

// TestRingMinimalDisruption: removing one member must not move any
// stream between the surviving members — only the dead node's streams
// re-home. This is what makes failover cheap: the survivors' streams
// stay put.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing(testNodes, 64)
	reduced := NewRing(testNodes[:2], 64)
	moved, rehomed := 0, 0
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("soak-%d", i)
		before, after := full.Owner(id), reduced.Owner(id)
		if before == testNodes[2] {
			rehomed++
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d streams moved between surviving nodes on member removal", moved)
	}
	if rehomed == 0 {
		t.Fatal("the removed node owned no streams — balance is broken")
	}
}

// TestRingOwners: Owners returns distinct nodes in failover order, the
// first being the owner; n is capped at the member count.
func TestRingOwners(t *testing.T) {
	r := NewRing(testNodes, 64)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("soak-%d", i)
		owners := r.Owners(id, 5)
		if len(owners) != len(testNodes) {
			t.Fatalf("Owners(%q, 5) = %v, want all %d members", id, owners, len(testNodes))
		}
		if owners[0] != r.Owner(id) {
			t.Fatalf("Owners(%q)[0] = %q, Owner = %q", id, owners[0], r.Owner(id))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %v", id, o, owners)
			}
			seen[o] = true
		}
	}
	if got := r.Owners("x", 0); got != nil {
		t.Fatalf("Owners(x, 0) = %v, want nil", got)
	}
}

// TestRingEmpty: a ring with no members owns nothing and must not panic.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 64)
	if got := r.Owner("soak-1"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := r.Owners("soak-1", 2); got != nil {
		t.Fatalf("empty ring owners = %v", got)
	}
}
