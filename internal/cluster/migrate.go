// Outbound stream migration. When the ring says a locally-live stream
// belongs to another node (a peer came back, or this node just booted
// with restored state it no longer owns), the rebalancer quiesces it,
// ships snapshot + WAL tail to the owner, and releases local state only
// after the owner acknowledges with a matching state fingerprint. Any
// failure reinstates the stream locally — the state is never in zero
// places.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"streamad/internal/ingest"
	"streamad/internal/persist"
)

// rebalanceLoop periodically migrates misplaced local streams out.
func (n *Node) rebalanceLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.RebalanceInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.rebalanceOnce()
		}
	}
}

// rebalanceOnce migrates every local stream whose ring owner is another
// live node. Streams owned by a down node stay put: this node is serving
// them on the ring's authority and will hand them over when the owner
// returns.
func (n *Node) rebalanceOnce() {
	for _, info := range n.reg.Streams() {
		owner := n.Owner(info.ID)
		if owner == n.self || !n.PeerAlive(owner) {
			continue
		}
		select {
		case <-n.stop:
			return
		default:
		}
		n.migrateOut(info.ID, owner)
	}
}

// migrateOut hands one stream to its owner. Handoff detaches the quiesced
// state from the registry; from then until the owner's fingerprint-checked
// ack (followed by dropping local disk state) or reinstatement via Adopt,
// this node holds the only copy in hs.
func (n *Node) migrateOut(id, owner string) {
	hs, err := n.reg.Handoff(id)
	if err != nil {
		return // raced an eviction or a concurrent handoff; nothing detached
	}
	if err := n.sendMigration(id, owner, hs); err != nil {
		n.migOutErr.Add(1)
		n.cfg.Logf("streamad: cluster migrate %q to %s failed (reinstating): %v", id, owner, err)
		if _, aerr := n.reg.Adopt(id, hs.Snapshot, hs.Tail); aerr != nil {
			n.cfg.Logf("streamad: cluster reinstate %q: %v", id, aerr)
		}
		return
	}
	n.migOutOK.Add(1)
	n.cfg.Logf("streamad: cluster migrated %q to %s (seq %d, %d tail records)",
		id, owner, hs.Snapshot.Seq, len(hs.Tail))
	if err := n.reg.DropPersisted(id); err != nil {
		n.cfg.Logf("streamad: cluster drop persisted state of migrated %q: %v", id, err)
	}
}

// sendMigration posts the handoff state to the owner's migrate endpoint
// and verifies the echoed fingerprint. The target already refused (409)
// any state it could not reproduce bit-identically, so a mismatched echo
// here means a protocol bug, not data loss — but it still fails the
// migration so the source reinstates.
func (n *Node) sendMigration(id, owner string, hs *ingest.HandoffState) error {
	file, err := persist.EncodeSnapshotFile(hs.Snapshot)
	if err != nil {
		return err
	}
	mreq := MigrateRequest{Node: n.self, Snapshot: file, Fingerprint: hs.Fingerprint}
	for _, rec := range hs.Tail {
		mreq.WAL = append(mreq.WAL, WALEntry{Seq: rec.Seq, Vector: rec.Vector})
	}
	body, err := json.Marshal(&mreq)
	if err != nil {
		return err
	}
	target := owner + "/v1/streams/" + url.PathEscape(id) + "/migrate"
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s rejected migration: %s: %s", owner, resp.Status, bytes.TrimSpace(msg))
	}
	var ack MigrateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return fmt.Errorf("cluster: decode migrate ack from %s: %w", owner, err)
	}
	if ack.Fingerprint != hs.Fingerprint {
		return fmt.Errorf("cluster: %s acknowledged fingerprint %08x, want %08x", owner, ack.Fingerprint, hs.Fingerprint)
	}
	return nil
}
