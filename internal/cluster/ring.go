// Package cluster turns N streamadd processes into one logical scoring
// service. Placement is a consistent-hash ring over stream ids (virtual
// nodes, FNV-1a); membership is a static peer list refined by health
// probing. Any node accepts any batch and forwards records to their ring
// owners; when the ring changes, streams migrate live by shipping the
// versioned CRC snapshot plus WAL tail, verified by a state fingerprint
// on the target; and each stream's ring successor keeps a warm standby
// replica by tailing the owner's WAL, promoting it when the owner fails
// its health probes.
package cluster

import (
	"sort"
	"strconv"
)

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring. Owner lookups are a binary
// search over the sorted virtual-node points; rebuilding on a membership
// change costs O(nodes · vnodes · log) and replaces the ring wholesale,
// so readers never lock.
type Ring struct {
	points []point
	nodes  []string
}

// ringHash positions a key on the ring: 64-bit FNV-1a (stdlib
// constants, inlined to avoid the hasher allocation on per-record owner
// lookups) pushed through a full-avalanche finalizer. The finalizer is
// load-bearing: raw FNV-1a of short sequential keys ("soak-0",
// "soak-1", ...) differs only by a few multiples of the FNV prime, so
// the whole fleet lands in one inter-point gap and a single node owns
// every stream. Mixing the high bits back down spreads such families
// uniformly.
func ringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// fmix64 finalizer (MurmurHash3): full avalanche, every input bit
	// flips ~half the output bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring with vnodes virtual points per node (default 64
// when non-positive). Node order does not matter; the ring is a pure
// function of the member set, so every node that agrees on liveness
// agrees on placement.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	r := &Ring{nodes: sorted, points: make([]point, 0, len(sorted)*vnodes)}
	for _, n := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: ringHash(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the member set, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner maps a stream id to its owning node ("" on an empty ring).
func (r *Ring) Owner(id string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(id)].node
}

// Owners returns up to n distinct nodes for a stream in ring order: the
// owner first, then the successors that take over, in order, as nodes
// ahead of them fail.
func (r *Ring) Owners(id string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	start := r.search(id)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		cand := r.points[(start+i)%len(r.points)].node
		dup := false
		for _, have := range out {
			if have == cand {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cand)
		}
	}
	return out
}

// search finds the first ring point at or clockwise past the id's hash.
func (r *Ring) search(id string) int {
	h := ringHash(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
