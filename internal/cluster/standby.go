// Warm-standby replication. For every stream whose ring successor is
// this node, the standby loop keeps a live detector/thresholder replica:
// it bootstraps from the owner's snapshot endpoint, then tails the
// owner's WAL by sequence number, replaying each vector with the
// registry's exact restore semantics. When the owner fails its health
// probes the ring makes this node the owner, and the replica is promoted
// into the registry — warm, at the last replicated sequence — instead of
// the stream restarting cold.
package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"streamad/internal/ingest"
	"streamad/internal/persist"
	"streamad/internal/score"
)

// replica is one warm standby. Its fields are owned by the standby loop
// goroutine; the map holding replicas is guarded by n.repMu only so
// Stats can count them.
type replica struct {
	id      string
	det     ingest.Stepper
	th      score.Thresholder
	nextSeq uint64 // first WAL sequence not yet replayed
	ready   int64
	alerts  int64
}

// standbyLoop drives replica sync, promotion and garbage collection.
func (n *Node) standbyLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.StandbyInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.standbySync()
		}
	}
}

// standbySync runs one pass: settle existing replicas (promote, drop, or
// tail), then discover streams this node should start backing up.
func (n *Node) standbySync() {
	n.repMu.Lock()
	reps := make([]*replica, 0, len(n.replicas))
	for _, rep := range n.replicas {
		reps = append(reps, rep)
	}
	n.repMu.Unlock()

	for _, rep := range reps {
		owner := n.Owner(rep.id)
		switch {
		case owner == n.self:
			n.promote(rep)
		case n.Backup(rep.id) != n.self:
			// The ring moved the backup role elsewhere.
			n.dropReplica(rep.id)
		default:
			// Tail whoever currently owns the stream — after a failover
			// or migration that may be a different node than the replica
			// started against; a 410 resync realigns the state.
			if err := n.tailReplica(rep, owner); err != nil {
				n.cfg.Logf("streamad: cluster standby %q: %v", rep.id, err)
			}
		}
	}
	n.discoverStandbys()
}

// promote installs a replica into the local registry. The install's
// seq-ordered conflict rule arbitrates against a racing fresh stream
// (created by an observe that arrived before the replica landed): the
// replica wins only if it is further along.
func (n *Node) promote(rep *replica) {
	err := n.reg.Install(rep.id, rep.det, rep.th, rep.nextSeq, rep.ready, rep.alerts)
	if err != nil {
		n.cfg.Logf("streamad: cluster standby %q not promoted: %v", rep.id, err)
	} else {
		n.promotions.Add(1)
		n.cfg.Logf("streamad: cluster promoted standby %q at seq %d", rep.id, rep.nextSeq)
	}
	n.dropReplica(rep.id)
}

func (n *Node) dropReplica(id string) {
	n.repMu.Lock()
	delete(n.replicas, id)
	n.repMu.Unlock()
}

// tailReplica pulls and replays the owner's WAL records from the
// replica's boundary. A 410 means the owner rotated its WAL past us —
// resync from its current snapshot; a 404 means the owner no longer
// serves the stream (evicted or migrating) — drop and rediscover later.
func (n *Node) tailReplica(rep *replica, owner string) error {
	target := owner + "/v1/streams/" + url.PathEscape(rep.id) + "/wal?from=" + strconv.FormatUint(rep.nextSeq, 10)
	resp, err := n.client.Get(target)
	if err != nil {
		return nil // owner unreachable; the prober and ring decide what happens next
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		var gone WALGone
		if err := json.NewDecoder(resp.Body).Decode(&gone); err != nil {
			return fmt.Errorf("decode WAL-rotated response: %w", err)
		}
		return n.resyncReplica(rep, owner)
	case http.StatusNotFound:
		n.dropReplica(rep.id)
		return nil
	case http.StatusNotImplemented:
		n.dropReplica(rep.id)
		return fmt.Errorf("owner %s has no WAL (no state dir); standby disabled for %q", owner, rep.id)
	default:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("owner %s WAL tail returned %s", owner, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec WALEntry
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("decode WAL line: %w", err)
		}
		if rec.Seq < rep.nextSeq {
			continue
		}
		ready, alert, _ := ingest.ReplayVector(rep.det, rep.th, rec.Vector)
		if ready {
			rep.ready++
			if alert {
				rep.alerts++
			}
		}
		rep.nextSeq = rec.Seq + 1
		n.standbyReplayed.Add(1)
	}
	return sc.Err()
}

// resyncReplica rebuilds a replica from the owner's current snapshot
// after falling behind a WAL rotation.
func (n *Node) resyncReplica(rep *replica, owner string) error {
	fresh, err := n.buildReplica(rep.id, owner)
	if err != nil {
		return fmt.Errorf("resync: %w", err)
	}
	*rep = *fresh
	return nil
}

// discoverStandbys asks each live peer for its stream list and starts a
// replica for every stream this node is the ring backup of.
func (n *Node) discoverStandbys() {
	ring := n.ring.Load()
	for _, peer := range n.order {
		if peer == n.self || !n.peers[peer].alive.Load() {
			continue
		}
		ids, err := n.peerStreams(peer)
		if err != nil {
			continue // unreachable peers are the prober's problem
		}
		for _, id := range ids {
			if ring.Owner(id) != peer || n.Backup(id) != n.self {
				continue
			}
			if _, live := n.reg.StreamStats(id); live {
				continue // locally live (probably migrating out); not standby material
			}
			n.repMu.Lock()
			_, have := n.replicas[id]
			n.repMu.Unlock()
			if have {
				continue
			}
			rep, err := n.buildReplica(id, peer)
			if err != nil {
				n.cfg.Logf("streamad: cluster standby bootstrap %q from %s: %v", id, peer, err)
				continue
			}
			n.repMu.Lock()
			n.replicas[id] = rep
			n.repMu.Unlock()
		}
	}
}

// peerStreams fetches a peer's stream ids.
func (n *Node) peerStreams(peer string) ([]string, error) {
	resp, err := n.client.Get(peer + "/v1/streams")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s stream list returned %s", peer, resp.Status)
	}
	var rows []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(rows))
	for _, row := range rows {
		ids = append(ids, row.ID)
	}
	return ids, nil
}

// buildReplica bootstraps a replica from the owner's snapshot endpoint
// (the same versioned CRC file format the store persists).
func (n *Node) buildReplica(id, owner string) (*replica, error) {
	resp, err := n.client.Get(owner + "/v1/streams/" + url.PathEscape(id) + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s snapshot returned %s", owner, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	snap, err := persist.DecodeSnapshotFile(raw)
	if err != nil {
		return nil, err
	}
	det, err := n.cfg.NewDetector(id)
	if err != nil {
		return nil, err
	}
	th := n.cfg.NewThresholder(id)
	if err := ingest.LoadSnapshotState(det, th, snap); err != nil {
		return nil, err
	}
	return &replica{
		id:      id,
		det:     det,
		th:      th,
		nextSeq: snap.Seq,
		ready:   int64(snap.Ready),
		alerts:  int64(snap.Alerts),
	}, nil
}
