package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCorpusShapes(t *testing.T) {
	cfg := Config{Length: 600, SeriesCount: 2, Seed: 1}
	cases := []struct {
		name     string
		gen      func(Config) *Corpus
		channels int
	}{
		{"daphnet", Daphnet, 9},
		{"exathlon", Exathlon, 19},
		{"smd", SMD, 38},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			corpus := c.gen(cfg)
			if corpus.Name != c.name {
				t.Fatalf("Name = %q", corpus.Name)
			}
			if len(corpus.Series) != 2 {
				t.Fatalf("series count = %d", len(corpus.Series))
			}
			for _, s := range corpus.Series {
				if s.Len() != 600 {
					t.Fatalf("series length = %d", s.Len())
				}
				if s.Channels() != c.channels {
					t.Fatalf("channels = %d, want %d", s.Channels(), c.channels)
				}
				if len(s.Labels) != s.Len() {
					t.Fatal("labels length mismatch")
				}
				for _, row := range s.Data {
					for _, v := range row {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatal("non-finite value in generated series")
						}
					}
				}
			}
		})
	}
}

func TestAnomaliesPresentAndInEvalRegion(t *testing.T) {
	cfg := Config{Length: 1000, SeriesCount: 1, Seed: 2}
	for _, corpus := range All(cfg) {
		s := corpus.Series[0]
		rate := s.AnomalyRate()
		if rate <= 0 {
			t.Fatalf("%s has no anomalies", corpus.Name)
		}
		if rate > 0.4 {
			t.Fatalf("%s anomaly rate %v too high", corpus.Name, rate)
		}
		// All anomalies are after the 45% evaluation boundary.
		boundary := int(0.45 * float64(s.Len()))
		for i := 0; i < boundary; i++ {
			if s.Labels[i] {
				t.Fatalf("%s has an anomaly at %d, before eval region %d", corpus.Name, i, boundary)
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := Daphnet(Config{Length: 300, SeriesCount: 1, Seed: 7})
	b := Daphnet(Config{Length: 300, SeriesCount: 1, Seed: 7})
	for i := range a.Series[0].Data {
		for j := range a.Series[0].Data[i] {
			if a.Series[0].Data[i][j] != b.Series[0].Data[i][j] {
				t.Fatal("same seed must generate identical corpora")
			}
		}
	}
	c := Daphnet(Config{Length: 300, SeriesCount: 1, Seed: 8})
	same := true
	for i := range a.Series[0].Data {
		for j := range a.Series[0].Data[i] {
			if a.Series[0].Data[i][j] != c.Series[0].Data[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestFreezeAnomalyCollapsesVariance(t *testing.T) {
	// Find a freeze interval in Daphnet and verify the signal variance
	// inside is far below the variance just before it.
	corpus := Daphnet(Config{Length: 2000, SeriesCount: 1, Seed: 3})
	s := corpus.Series[0]
	start, end := -1, -1
	for i := 1; i < s.Len(); i++ {
		if s.Labels[i] && !s.Labels[i-1] {
			start = i
		}
		if start >= 0 && !s.Labels[i] && s.Labels[i-1] {
			end = i
			break
		}
	}
	if start < 0 || end < 0 || end-start < 10 {
		t.Skip("no usable freeze interval in this seed")
	}
	variance := func(lo, hi, ch int) float64 {
		var sum, sumSq float64
		n := float64(hi - lo)
		for i := lo; i < hi; i++ {
			v := s.Data[i][ch]
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	// Average over channels (a subset of channels is affected).
	var inside, before float64
	for ch := 0; ch < s.Channels(); ch++ {
		inside += variance(start, end, ch)
		before += variance(start-(end-start), start, ch)
	}
	if inside >= before {
		t.Fatalf("freeze variance %v should be below pre-freeze %v", inside, before)
	}
}

func TestSpikeAnomalyRaisesLevel(t *testing.T) {
	corpus := SMD(Config{Length: 2000, SeriesCount: 1, Seed: 4})
	s := corpus.Series[0]
	var normalMax, anomMax float64
	for i, row := range s.Data {
		m := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		if s.Labels[i] {
			if m > anomMax {
				anomMax = m
			}
		} else if m > normalMax {
			normalMax = m
		}
	}
	if anomMax <= normalMax {
		t.Fatalf("anomalous peaks (%v) should exceed normal peaks (%v)", anomMax, normalMax)
	}
}

func TestScaleCount(t *testing.T) {
	if scaleCount(10000, 5) != 5 {
		t.Fatal("full-length scale")
	}
	if scaleCount(100, 5) != 2 {
		t.Fatal("floor of 2")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	corpus := Daphnet(Config{Length: 50, SeriesCount: 1, Seed: 5})
	s := corpus.Series[0]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Channels() != s.Channels() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Len(), got.Channels(), s.Len(), s.Channels())
	}
	for i := range s.Data {
		if got.Labels[i] != s.Labels[i] {
			t.Fatalf("label mismatch at %d", i)
		}
		for j := range s.Data[i] {
			if got.Data[i][j] != s.Data[i][j] {
				t.Fatalf("value mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestReadCSVWithoutLabels(t *testing.T) {
	in := "c0,c1\n1,2\n3,4\n"
	s, err := ReadCSV(strings.NewReader(in), "nolabels")
	if err != nil {
		t.Fatal(err)
	}
	if s.Channels() != 2 || s.Len() != 2 {
		t.Fatalf("shape %dx%d", s.Len(), s.Channels())
	}
	if s.AnomalyRate() != 0 {
		t.Fatal("labels should default to false")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty csv must error")
	}
	if _, err := ReadCSV(strings.NewReader("c0,label\nnotanumber,0\n"), "x"); err == nil {
		t.Fatal("bad float must error")
	}
	if _, err := ReadCSV(strings.NewReader("label\n1\n"), "x"); err == nil {
		t.Fatal("label-only csv must error")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Daphnet(Config{Length: 0, SeriesCount: 1})
}

func TestSeriesHelpers(t *testing.T) {
	s := &Series{}
	if s.Channels() != 0 || s.AnomalyRate() != 0 {
		t.Fatal("empty series helpers")
	}
}
