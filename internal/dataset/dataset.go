// Package dataset provides the benchmark corpora of the reproduction. The
// paper evaluates on Daphnet (wearable gait sensors), Exathlon (Spark
// cluster traces) and SMD (server machine metrics); those datasets are
// external, so this package generates seeded synthetic corpora that match
// their structural characteristics — channel counts, anomaly styles and
// concept-drift behaviour — and exercise exactly the same detector code
// paths. See DESIGN.md for the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"streamad/internal/randstate"
)

// Series is one labelled multivariate time series.
type Series struct {
	// Name identifies the series within its corpus (e.g. "S03R01E0").
	Name string
	// Data holds one stream vector per time step.
	Data [][]float64
	// Labels marks anomalous time steps.
	Labels []bool
}

// Channels returns the stream dimensionality.
func (s *Series) Channels() int {
	if len(s.Data) == 0 {
		return 0
	}
	return len(s.Data[0])
}

// Len returns the number of time steps.
func (s *Series) Len() int { return len(s.Data) }

// AnomalyRate returns the fraction of labelled-anomalous steps.
func (s *Series) AnomalyRate() float64 {
	if len(s.Labels) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.Labels {
		if v {
			n++
		}
	}
	return float64(n) / float64(len(s.Labels))
}

// Corpus is a named collection of series.
type Corpus struct {
	Name   string
	Series []*Series
}

// Config controls the scale of generated corpora.
type Config struct {
	// Length is the number of time steps per series.
	Length int
	// SeriesCount is the number of series per corpus.
	SeriesCount int
	// Seed drives all randomness; equal seeds give identical corpora.
	Seed int64
}

// FastConfig is a laptop-scale profile used by tests and default benches.
func FastConfig(seed int64) Config {
	return Config{Length: 2600, SeriesCount: 2, Seed: seed}
}

// PaperConfig approximates the paper's scale (5000-step warmup plus a
// substantial evaluation region).
func PaperConfig(seed int64) Config {
	return Config{Length: 12000, SeriesCount: 3, Seed: seed}
}

// channelGen holds the per-channel parameters of the base signal: a
// quasi-periodic oscillation plus AR(1) noise around a level that concept
// drift moves.
type channelGen struct {
	level     float64
	minLevel  float64 // drift floor so cosine measures stay well-behaved
	amplitude float64
	freq      float64
	phase     float64
	arCoef    float64
	noiseStd  float64
	arState   float64
}

func newChannelGen(rng *rand.Rand, level, amp, freqLo, freqHi, noise float64) *channelGen {
	l := level + rng.NormFloat64()*0.1*math.Abs(level+1)
	return &channelGen{
		level:     l,
		minLevel:  0.4 * l,
		amplitude: amp * (0.7 + 0.6*rng.Float64()),
		freq:      freqLo + (freqHi-freqLo)*rng.Float64(),
		phase:     2 * math.Pi * rng.Float64(),
		arCoef:    0.6 + 0.3*rng.Float64(),
		noiseStd:  noise,
	}
}

func (c *channelGen) sample(t int, rng *rand.Rand) float64 {
	c.arState = c.arCoef*c.arState + rng.NormFloat64()*c.noiseStd
	return c.level + c.amplitude*math.Sin(2*math.Pi*c.freq*float64(t)+c.phase) + c.arState
}

// driftEvent shifts levels and amplitudes from step At over Span steps.
type driftEvent struct {
	at        int
	span      int
	levelMul  float64
	ampMul    float64
	levelAdd  float64
	completed bool
}

// applyDrift nudges the generators towards the drift target while inside
// the transition span.
func applyDrift(gens []*channelGen, ev *driftEvent, t int) {
	if ev.completed || t < ev.at {
		return
	}
	if t >= ev.at+ev.span {
		ev.completed = true
		return
	}
	frac := 1.0 / float64(ev.span)
	for _, g := range gens {
		g.level += (g.level*(ev.levelMul-1) + ev.levelAdd) * frac
		if g.minLevel > 0 && g.level < g.minLevel {
			g.level = g.minLevel
		}
		g.amplitude *= 1 + (ev.ampMul-1)*frac
	}
}

// anomalyKind selects the injected anomaly style.
type anomalyKind int

const (
	freezeAnomaly     anomalyKind = iota // amplitude collapse (Daphnet-like)
	saturationAnomaly                    // channels pinned high (Exathlon-like)
	spikeAnomaly                         // short large deviations (SMD-like)
	outageAnomaly                        // correlated drop across channels
)

// anomalyEvent is one injected anomaly interval on a subset of channels.
type anomalyEvent struct {
	kind     anomalyKind
	start    int
	length   int
	channels []int
	scale    float64
}

// inject applies the anomaly to the raw value of channel c at step t,
// given the channel's nominal level and amplitude.
func (a *anomalyEvent) inject(v float64, g *channelGen, t, c int) float64 {
	hit := false
	for _, ch := range a.channels {
		if ch == c {
			hit = true
			break
		}
	}
	if !hit || t < a.start || t >= a.start+a.length {
		return v
	}
	switch a.kind {
	case freezeAnomaly:
		// The walking oscillation collapses, the signal energy drops (the
		// subject stalls, so the dynamic acceleration disappears) and an
		// irregular high-frequency tremor appears — the classic
		// freeze-of-gait signature in accelerometry. The tremor is
		// deterministic in (t, channel) for reproducibility but spectrally
		// noise-like, so forecasters cannot learn it.
		tremor := 0.5 * g.amplitude * pseudoNoise(t, c)
		return 0.55*g.level + tremor + (v-g.level)*0.05
	case saturationAnomaly:
		return g.level + a.scale*math.Abs(g.amplitude)*3
	case spikeAnomaly:
		return v + a.scale*math.Abs(g.amplitude)*4
	case outageAnomaly:
		return g.level - a.scale*math.Abs(g.amplitude)*3
	default:
		return v
	}
}

// corpusSpec is the structural recipe of one corpus.
type corpusSpec struct {
	name       string
	channels   int
	anomKinds  []anomalyKind
	anomChFrac float64 // fraction of channels touched per anomaly
	anomLenLo  int
	anomLenHi  int
	anomCount  int // anomalies per series (scaled by length)
	driftCount int
	freqLo     float64
	freqHi     float64
	noise      float64
	level      float64
	amp        float64
}

// generate builds a corpus from its spec and the scale config.
func generate(spec corpusSpec, cfg Config) *Corpus {
	if cfg.Length <= 0 || cfg.SeriesCount <= 0 {
		panic("dataset: Length and SeriesCount must be positive")
	}
	rng := rand.New(randstate.NewCountedSource(cfg.Seed))
	corpus := &Corpus{Name: spec.name}
	for si := 0; si < cfg.SeriesCount; si++ {
		series := generateSeries(spec, cfg, si, rng)
		corpus.Series = append(corpus.Series, series)
	}
	return corpus
}

func generateSeries(spec corpusSpec, cfg Config, idx int, rng *rand.Rand) *Series {
	gens := make([]*channelGen, spec.channels)
	for c := range gens {
		gens[c] = newChannelGen(rng, spec.level, spec.amp, spec.freqLo, spec.freqHi, spec.noise)
	}
	// Drift events spread over the second half of the warmup and the
	// evaluation region so Task 2 detectors have something to find.
	var drifts []*driftEvent
	for d := 0; d < spec.driftCount; d++ {
		at := cfg.Length/4 + rng.Intn(cfg.Length/2)
		drifts = append(drifts, &driftEvent{
			at:       at,
			span:     50 + rng.Intn(150),
			levelMul: 1 + 0.5*(rng.Float64()-0.3),
			ampMul:   1 + 0.8*(rng.Float64()-0.3),
			levelAdd: (0.6 + 0.8*rng.Float64()) * spec.amp * sign(rng),
		})
	}
	// Anomalies only in the evaluation region (after the first 40%).
	var anomalies []*anomalyEvent
	evalStart := int(float64(cfg.Length) * 0.45)
	nCh := int(float64(spec.channels)*spec.anomChFrac + 0.5)
	if nCh < 1 {
		nCh = 1
	}
	for a := 0; a < spec.anomCount; a++ {
		length := spec.anomLenLo + rng.Intn(spec.anomLenHi-spec.anomLenLo+1)
		span := cfg.Length - evalStart - length - 1
		if span <= 0 {
			// Series too short for this anomaly length: shrink it to fit,
			// keeping at least a 3-step event.
			length = (cfg.Length - evalStart) / 2
			if length < 3 {
				continue
			}
			span = cfg.Length - evalStart - length - 1
			if span <= 0 {
				continue
			}
		}
		start := evalStart + rng.Intn(span)
		kind := spec.anomKinds[rng.Intn(len(spec.anomKinds))]
		chans := rng.Perm(spec.channels)[:nCh]
		anomalies = append(anomalies, &anomalyEvent{
			kind: kind, start: start, length: length,
			channels: chans, scale: 0.8 + 0.7*rng.Float64(),
		})
	}
	data := make([][]float64, cfg.Length)
	labels := make([]bool, cfg.Length)
	backing := make([]float64, cfg.Length*spec.channels)
	for t := 0; t < cfg.Length; t++ {
		row := backing[t*spec.channels : (t+1)*spec.channels]
		for _, ev := range drifts {
			applyDrift(gens, ev, t)
		}
		for c, g := range gens {
			v := g.sample(t, rng)
			for _, an := range anomalies {
				v = an.inject(v, g, t, c)
			}
			row[c] = v
		}
		for _, an := range anomalies {
			if t >= an.start && t < an.start+an.length {
				labels[t] = true
			}
		}
		data[t] = row
	}
	return &Series{
		Name:   fmt.Sprintf("%s-%02d", spec.name, idx),
		Data:   data,
		Labels: labels,
	}
}

// Daphnet generates the Daphnet-FoG stand-in: 9 accelerometer channels of
// quasi-periodic gait with freeze-of-gait amplitude collapses.
func Daphnet(cfg Config) *Corpus {
	return generate(corpusSpec{
		name:       "daphnet",
		channels:   9,
		anomKinds:  []anomalyKind{freezeAnomaly},
		anomChFrac: 0.7,
		anomLenLo:  30,
		anomLenHi:  90,
		anomCount:  scaleCount(cfg.Length, 5),
		driftCount: 2,
		freqLo:     0.02,
		freqHi:     0.08,
		noise:      0.1,
		level:      1.2, // gravity offset of body-worn accelerometers
		amp:        1.5,
	}, cfg)
}

// Exathlon generates the Exathlon stand-in: 19 correlated cluster metrics
// with long saturation/stall anomalies and strong level drift between
// "runs".
func Exathlon(cfg Config) *Corpus {
	return generate(corpusSpec{
		name:       "exathlon",
		channels:   19,
		anomKinds:  []anomalyKind{saturationAnomaly, outageAnomaly},
		anomChFrac: 0.5,
		anomLenLo:  80,
		anomLenHi:  200,
		anomCount:  scaleCount(cfg.Length, 3),
		driftCount: 4,
		freqLo:     0.003,
		freqHi:     0.02,
		noise:      0.4,
		level:      5,
		amp:        1.0,
	}, cfg)
}

// SMD generates the server-machine-dataset stand-in: 38 mixed periodic and
// bursty metrics with short spikes and correlated outages.
func SMD(cfg Config) *Corpus {
	return generate(corpusSpec{
		name:       "smd",
		channels:   38,
		anomKinds:  []anomalyKind{spikeAnomaly, outageAnomaly},
		anomChFrac: 0.25,
		anomLenLo:  10,
		anomLenHi:  50,
		anomCount:  scaleCount(cfg.Length, 8),
		driftCount: 2,
		freqLo:     0.005,
		freqHi:     0.05,
		noise:      0.3,
		level:      2,
		amp:        1.2,
	}, cfg)
}

// pseudoNoise is a deterministic hash-style noise in [−1, 1]: reproducible
// across runs, but with no structure a window-based model could forecast.
func pseudoNoise(t, salt int) float64 {
	x := math.Sin(float64(t)*12.9898+float64(salt)*78.233) * 43758.5453
	return 2*(x-math.Floor(x)) - 1
}

// sign returns ±1 with equal probability.
func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// scaleCount scales a per-10k-steps anomaly budget to the series length,
// with a floor of 2 so every series has something to detect.
func scaleCount(length, per10k int) int {
	n := per10k * length / 10000
	if n < 2 {
		n = 2
	}
	return n
}

// All returns the three benchmark corpora at the given scale.
func All(cfg Config) []*Corpus {
	return []*Corpus{Daphnet(cfg), Exathlon(cfg), SMD(cfg)}
}
