package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes a series as CSV with a header row: channel columns named
// c0..cN-1 plus a trailing "label" column (0/1).
func WriteCSV(w io.Writer, s *Series) error {
	cw := csv.NewWriter(w)
	n := s.Channels()
	header := make([]string, n+1)
	for i := 0; i < n; i++ {
		header[i] = fmt.Sprintf("c%d", i)
	}
	header[n] = "label"
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, n+1)
	for t, vec := range s.Data {
		for i, v := range vec {
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if t < len(s.Labels) && s.Labels[t] {
			row[n] = "1"
		} else {
			row[n] = "0"
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", t, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a series written by WriteCSV. A final "label" column is
// optional; without it all labels are false.
func ReadCSV(r io.Reader, name string) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	header := records[0]
	hasLabel := len(header) > 0 && header[len(header)-1] == "label"
	nCols := len(header)
	nCh := nCols
	if hasLabel {
		nCh--
	}
	if nCh == 0 {
		return nil, fmt.Errorf("dataset: csv has no data columns")
	}
	s := &Series{Name: name}
	for li, rec := range records[1:] {
		if len(rec) != nCols {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", li+2, len(rec), nCols)
		}
		vec := make([]float64, nCh)
		for i := 0; i < nCh; i++ {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", li+2, i, err)
			}
			vec[i] = v
		}
		label := false
		if hasLabel {
			label = rec[nCh] == "1" || rec[nCh] == "true"
		}
		s.Data = append(s.Data, vec)
		s.Labels = append(s.Labels, label)
	}
	return s, nil
}
