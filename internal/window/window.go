// Package window provides fixed-capacity ring buffers over scalars and over
// multivariate stream vectors. These back the data representation (the last
// w stream vectors), the sliding-window training set and the anomaly-score
// windows of the framework.
package window

// Ring is a fixed-capacity FIFO ring buffer of float64 scalars.
type Ring struct {
	buf   []float64
	head  int // index of the oldest element
	count int
}

// NewRing returns a ring with the given capacity (must be > 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("window: capacity must be positive")
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Cap returns the fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of stored elements.
func (r *Ring) Len() int { return r.count }

// Full reports whether the ring is at capacity.
func (r *Ring) Full() bool { return r.count == len(r.buf) }

// Push appends x, evicting the oldest element when full. It returns the
// evicted value and whether an eviction happened.
//
//streamad:hotpath
func (r *Ring) Push(x float64) (evicted float64, wasFull bool) {
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = x
		r.count++
		return 0, false
	}
	evicted = r.buf[r.head]
	r.buf[r.head] = x
	r.head = (r.head + 1) % len(r.buf)
	return evicted, true
}

// At returns the i-th element counted from the oldest (0 = oldest).
//
//streamad:hotpath
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.count {
		panic("window: index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Last returns the most recent element; it panics on an empty ring.
func (r *Ring) Last() float64 {
	if r.count == 0 {
		panic("window: empty ring")
	}
	return r.At(r.count - 1)
}

// Slice copies the contents, oldest first, into a new slice.
func (r *Ring) Slice() []float64 {
	out := make([]float64, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.At(i)
	}
	return out
}

// CopyInto copies the contents, oldest first, into dst (which must have
// length ≥ Len) and returns the number of elements copied.
//
//streamad:hotpath
func (r *Ring) CopyInto(dst []float64) int {
	for i := 0; i < r.count; i++ {
		dst[i] = r.At(i)
	}
	return r.count
}

// Reset empties the ring without reallocating.
func (r *Ring) Reset() {
	r.head = 0
	r.count = 0
}

// VecRing is a fixed-capacity FIFO ring buffer of equal-length vectors.
// Pushed vectors are copied into internal storage, so callers may reuse
// their input slices.
type VecRing struct {
	dim      int
	capacity int // fixed logical capacity; survives Release
	buf      [][]float64
	head     int
	count    int
	evict    []float64 // reusable eviction-copy scratch
}

// NewVecRing returns a ring holding up to capacity vectors of length dim.
func NewVecRing(capacity, dim int) *VecRing {
	if capacity <= 0 || dim <= 0 {
		panic("window: capacity and dim must be positive")
	}
	r := &VecRing{dim: dim, capacity: capacity}
	r.alloc()
	return r
}

// alloc (re)creates the backing storage at the fixed capacity.
func (r *VecRing) alloc() {
	buf := make([][]float64, r.capacity)
	backing := make([]float64, r.capacity*r.dim)
	for i := range buf {
		buf[i] = backing[i*r.dim : (i+1)*r.dim]
	}
	r.buf = buf
}

// Release empties the ring and frees its backing storage (the dominant
// per-stream memory for warm-tier paging). The capacity is remembered:
// UnmarshalBinary reallocates on restore. Push/At on a released ring
// panic — callers must page back in first.
func (r *VecRing) Release() {
	r.buf = nil
	r.evict = nil
	r.head = 0
	r.count = 0
}

// Released reports whether the backing storage has been freed.
func (r *VecRing) Released() bool { return r.buf == nil }

// Dim returns the vector length.
func (r *VecRing) Dim() int { return r.dim }

// Cap returns the fixed capacity.
func (r *VecRing) Cap() int { return r.capacity }

// Len returns the number of stored vectors.
func (r *VecRing) Len() int { return r.count }

// Full reports whether the ring is at capacity.
func (r *VecRing) Full() bool { return r.count == r.capacity }

// Push appends a copy of x, evicting the oldest vector when full. The
// returned evicted slice aliases internal storage and is only valid until
// the next Push; copy it if it must be retained.
//
//streamad:hotpath
func (r *VecRing) Push(x []float64) (evicted []float64, wasFull bool) {
	if len(x) != r.dim {
		panic("window: vector dimension mismatch")
	}
	if r.buf == nil {
		panic("window: push on released ring")
	}
	if r.count < len(r.buf) {
		copy(r.buf[(r.head+r.count)%len(r.buf)], x)
		r.count++
		return nil, false
	}
	slot := r.buf[r.head]
	// The caller sees the pre-overwrite contents; a single reusable
	// scratch keeps the steady-state push allocation-free.
	if r.evict == nil {
		//streamad:ignore hotalloc eviction scratch allocated once, reused every push
		r.evict = make([]float64, r.dim)
	}
	copy(r.evict, slot)
	copy(slot, x)
	r.head = (r.head + 1) % len(r.buf)
	return r.evict, true
}

// At returns the i-th vector counted from the oldest (0 = oldest). The
// returned slice aliases internal storage; do not modify it.
//
//streamad:hotpath
func (r *VecRing) At(i int) []float64 {
	if i < 0 || i >= r.count {
		panic("window: index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Last returns the most recent vector; it panics on an empty ring.
func (r *VecRing) Last() []float64 {
	if r.count == 0 {
		panic("window: empty ring")
	}
	return r.At(r.count - 1)
}

// Snapshot copies all stored vectors, oldest first, into a new [][]float64.
func (r *VecRing) Snapshot() [][]float64 {
	out := make([][]float64, r.count)
	backing := make([]float64, r.count*r.dim)
	for i := 0; i < r.count; i++ {
		out[i] = backing[i*r.dim : (i+1)*r.dim]
		copy(out[i], r.At(i))
	}
	return out
}

// Flatten copies all stored vectors, oldest first, into one contiguous
// slice of length Len()*Dim().
func (r *VecRing) Flatten() []float64 {
	out := make([]float64, r.count*r.dim)
	for i := 0; i < r.count; i++ {
		copy(out[i*r.dim:(i+1)*r.dim], r.At(i))
	}
	return out
}

// Reset empties the ring without reallocating.
func (r *VecRing) Reset() {
	r.head = 0
	r.count = 0
}
