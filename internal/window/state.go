package window

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// ringState is the serializable form of a Ring: contents oldest-first, so
// the head index normalizes to zero on restore.
type ringState struct {
	Cap  int
	Vals []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *Ring) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ringState{Cap: r.Cap(), Vals: r.Slice()}); err != nil {
		return nil, fmt.Errorf("window: encode ring: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// capacity must match the snapshot.
func (r *Ring) UnmarshalBinary(data []byte) error {
	var st ringState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("window: decode ring: %w", err)
	}
	if st.Cap != r.Cap() {
		return fmt.Errorf("window: ring snapshot capacity %d != %d", st.Cap, r.Cap())
	}
	if len(st.Vals) > st.Cap {
		return fmt.Errorf("window: ring snapshot holds %d values, capacity %d", len(st.Vals), st.Cap)
	}
	r.Reset()
	for _, v := range st.Vals {
		r.Push(v)
	}
	return nil
}

// vecRingState is the serializable form of a VecRing: the stored vectors,
// oldest first, flattened row-major.
type vecRingState struct {
	Cap  int
	Dim  int
	Flat []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *VecRing) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(vecRingState{Cap: r.Cap(), Dim: r.dim, Flat: r.Flatten()})
	if err != nil {
		return nil, fmt.Errorf("window: encode vec ring: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// capacity and vector dimension must match the snapshot.
func (r *VecRing) UnmarshalBinary(data []byte) error {
	var st vecRingState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("window: decode vec ring: %w", err)
	}
	if st.Cap != r.Cap() || st.Dim != r.dim {
		return fmt.Errorf("window: vec ring snapshot (cap=%d dim=%d) != receiver (cap=%d dim=%d)",
			st.Cap, st.Dim, r.Cap(), r.dim)
	}
	if st.Dim <= 0 || len(st.Flat)%st.Dim != 0 || len(st.Flat) > st.Cap*st.Dim {
		return fmt.Errorf("window: vec ring snapshot length %d inconsistent with cap=%d dim=%d",
			len(st.Flat), st.Cap, st.Dim)
	}
	if r.buf == nil {
		r.alloc() // paged out by Release; restore reallocates
	}
	r.Reset()
	for i := 0; i < len(st.Flat)/st.Dim; i++ {
		r.Push(st.Flat[i*st.Dim : (i+1)*st.Dim])
	}
	return nil
}
