package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingFillAndEvict(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 || r.Full() {
		t.Fatal("fresh ring state wrong")
	}
	for i, x := range []float64{1, 2, 3} {
		if _, evicted := r.Push(x); evicted {
			t.Fatalf("push %d evicted prematurely", i)
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	old, evicted := r.Push(4)
	if !evicted || old != 1 {
		t.Fatalf("evicted = %v %v, want 1 true", old, evicted)
	}
	want := []float64{2, 3, 4}
	got := r.Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
		if r.At(i) != want[i] {
			t.Fatalf("At(%d) = %v, want %v", i, r.At(i), want[i])
		}
	}
	if r.Last() != 4 {
		t.Fatalf("Last = %v", r.Last())
	}
}

func TestRingCopyInto(t *testing.T) {
	r := NewRing(4)
	r.Push(1)
	r.Push(2)
	dst := make([]float64, 4)
	n := r.CopyInto(dst)
	if n != 2 || dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("CopyInto = %v (n=%d)", dst, n)
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRingPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRing(0) },
		func() { NewRing(2).At(0) },
		func() { NewRing(2).Last() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestRingKeepsLastKProperty: after any push sequence, Slice equals the
// last min(k, n) pushed values in order.
func TestRingKeepsLastKProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		n := rng.Intn(50)
		r := NewRing(k)
		var all []float64
		for i := 0; i < n; i++ {
			v := rng.Float64()
			all = append(all, v)
			r.Push(v)
		}
		start := 0
		if len(all) > k {
			start = len(all) - k
		}
		want := all[start:]
		got := r.Slice()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVecRingBasics(t *testing.T) {
	r := NewVecRing(2, 3)
	if r.Dim() != 3 || r.Cap() != 2 {
		t.Fatal("dims wrong")
	}
	r.Push([]float64{1, 2, 3})
	r.Push([]float64{4, 5, 6})
	ev, wasFull := r.Push([]float64{7, 8, 9})
	if !wasFull || ev[0] != 1 || ev[2] != 3 {
		t.Fatalf("evicted = %v, want [1 2 3]", ev)
	}
	if got := r.At(0); got[0] != 4 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := r.Last(); got[0] != 7 {
		t.Fatalf("Last = %v", got)
	}
}

func TestVecRingCopiesInput(t *testing.T) {
	r := NewVecRing(2, 2)
	buf := []float64{1, 2}
	r.Push(buf)
	buf[0] = 99
	if r.At(0)[0] != 1 {
		t.Fatal("VecRing aliases pushed slice")
	}
}

func TestVecRingSnapshotFlatten(t *testing.T) {
	r := NewVecRing(3, 2)
	r.Push([]float64{1, 2})
	r.Push([]float64{3, 4})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[1][1] != 4 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// Snapshot must be independent storage.
	snap[0][0] = 99
	if r.At(0)[0] != 1 {
		t.Fatal("Snapshot aliases ring storage")
	}
	flat := r.Flatten()
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("Flatten = %v", flat)
		}
	}
}

func TestVecRingDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVecRing(2, 2).Push([]float64{1})
}

func TestVecRingReset(t *testing.T) {
	r := NewVecRing(2, 1)
	r.Push([]float64{1})
	r.Reset()
	if r.Len() != 0 || r.Full() {
		t.Fatal("Reset failed")
	}
}

// TestVecRingOrderProperty mirrors the scalar ring property for vectors.
func TestVecRingOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		dim := 1 + rng.Intn(4)
		n := rng.Intn(30)
		r := NewVecRing(k, dim)
		var all [][]float64
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			all = append(all, v)
			r.Push(v)
		}
		start := 0
		if len(all) > k {
			start = len(all) - k
		}
		want := all[start:]
		if r.Len() != len(want) {
			return false
		}
		for i := range want {
			got := r.At(i)
			for j := range want[i] {
				if got[j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
