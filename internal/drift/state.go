package drift

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// regularState is the serializable form of the Regular detector.
type regularState struct {
	Interval int
	Steps    int
	Ops      OpCounts
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *Regular) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(regularState{Interval: r.Interval, Steps: r.steps, Ops: r.ops})
	if err != nil {
		return nil, fmt.Errorf("drift: encode regular: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// interval must match the snapshot.
func (r *Regular) UnmarshalBinary(data []byte) error {
	var st regularState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("drift: decode regular: %w", err)
	}
	if st.Interval != r.Interval {
		return fmt.Errorf("drift: regular snapshot interval %d != %d", st.Interval, r.Interval)
	}
	r.steps = st.Steps
	r.ops = st.Ops
	return nil
}

// muSigmaState is the serializable form of the μ/σ-Change detector,
// including the Welford accumulator over all training-set elements.
type muSigmaState struct {
	Dim      int
	Mean     []float64
	RefMean  []float64
	RefStd   float64
	HasRef   bool
	ElemN    int
	ElemMean float64
	ElemM2   float64
	Ops      OpCounts
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (d *MuSigmaChange) MarshalBinary() ([]byte, error) {
	n, mean, m2 := d.elems.State()
	st := muSigmaState{
		Dim:      d.dim,
		Mean:     append([]float64(nil), d.mean...),
		RefMean:  append([]float64(nil), d.refMean...),
		RefStd:   d.refStd,
		HasRef:   d.hasRef,
		ElemN:    n,
		ElemMean: mean,
		ElemM2:   m2,
		Ops:      d.ops,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("drift: encode musigma: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// dimension must match the snapshot.
func (d *MuSigmaChange) UnmarshalBinary(data []byte) error {
	var st muSigmaState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("drift: decode musigma: %w", err)
	}
	if st.Dim != d.dim || len(st.Mean) != d.dim || len(st.RefMean) != d.dim {
		return fmt.Errorf("drift: musigma snapshot dim %d != %d", st.Dim, d.dim)
	}
	copy(d.mean, st.Mean)
	copy(d.refMean, st.RefMean)
	d.refStd = st.RefStd
	d.hasRef = st.HasRef
	d.elems.SetState(st.ElemN, st.ElemMean, st.ElemM2)
	d.ops = st.Ops
	return nil
}

// kswinState is the serializable form of the KSWIN detector: the sorted
// per-channel reference samples plus the test throttle position.
type kswinState struct {
	Channels   int
	RepWin     int
	Alpha      float64
	CheckEvery int
	Steps      int
	Correct    bool
	HasRef     bool
	PerChannel int
	RefFlat    []float64
	Ops        OpCounts
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (k *KSWIN) MarshalBinary() ([]byte, error) {
	st := kswinState{
		Channels: k.channels, RepWin: k.repWin, Alpha: k.alpha,
		CheckEvery: k.CheckEvery, Steps: k.steps, Correct: k.correct,
		HasRef: k.hasRef, Ops: k.ops,
	}
	if k.hasRef && len(k.ref) > 0 {
		st.PerChannel = len(k.ref[0])
		for _, ch := range k.ref {
			st.RefFlat = append(st.RefFlat, ch...)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("drift: encode kswin: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// geometry (channels, window) must match the snapshot.
func (k *KSWIN) UnmarshalBinary(data []byte) error {
	var st kswinState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("drift: decode kswin: %w", err)
	}
	if st.Channels != k.channels || st.RepWin != k.repWin {
		return fmt.Errorf("drift: kswin snapshot (N=%d w=%d) != receiver (N=%d w=%d)",
			st.Channels, st.RepWin, k.channels, k.repWin)
	}
	if st.HasRef {
		if st.PerChannel <= 0 || len(st.RefFlat) != st.Channels*st.PerChannel {
			return fmt.Errorf("drift: kswin snapshot reference length %d != %d×%d",
				len(st.RefFlat), st.Channels, st.PerChannel)
		}
		ref := make([][]float64, st.Channels)
		for c := range ref {
			ref[c] = append([]float64(nil), st.RefFlat[c*st.PerChannel:(c+1)*st.PerChannel]...)
		}
		k.ref = ref
	} else {
		k.ref = nil
	}
	k.alpha = st.Alpha
	k.CheckEvery = st.CheckEvery
	k.steps = st.Steps
	k.correct = st.Correct
	k.hasRef = st.HasRef
	k.ops = st.Ops
	return nil
}

// adwinState is the serializable form of the ADWIN detector.
type adwinState struct {
	Delta     float64
	MaxWindow int
	MinSplit  int
	Window    []float64
	Ops       OpCounts
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a *ADWIN) MarshalBinary() ([]byte, error) {
	st := adwinState{
		Delta: a.Delta, MaxWindow: a.MaxWindow, MinSplit: a.MinSplit,
		Window: append([]float64(nil), a.window...), Ops: a.ops,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("drift: encode adwin: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// confidence parameter must match the snapshot.
func (a *ADWIN) UnmarshalBinary(data []byte) error {
	var st adwinState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("drift: decode adwin: %w", err)
	}
	if st.Delta != a.Delta {
		return fmt.Errorf("drift: adwin snapshot delta %v != %v", st.Delta, a.Delta)
	}
	if len(st.Window) > st.MaxWindow {
		return fmt.Errorf("drift: adwin snapshot window %d exceeds max %d", len(st.Window), st.MaxWindow)
	}
	a.MaxWindow = st.MaxWindow
	a.MinSplit = st.MinSplit
	a.window = append([]float64(nil), st.Window...)
	a.ops = st.Ops
	return nil
}
