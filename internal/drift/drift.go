// Package drift implements the Task 2 learning strategies of the extended
// SAFARI framework: deciding when to fine-tune the ML model by detecting
// concept drift in the training set.
//
// Three detectors are provided:
//
//   - Regular: fine-tune after every fixed number of time steps.
//   - MuSigmaChange: track the running mean vector and standard deviation
//     of the training set; trigger when the mean moves by more than the
//     reference σ or the σ changes by a factor of two.
//   - KSWIN: per-channel two-sample Kolmogorov–Smirnov test between the
//     training set at the last fine-tune and the current one, with the
//     α* = α/r repeated-testing correction of Raab et al.
//
// Every detector counts the arithmetic operations it performs, which the
// Table II reproduction reports next to the paper's closed-form formulas.
package drift

import (
	"math"
	"sort"

	"streamad/internal/reservoir"
	"streamad/internal/stats"
)

// OpCounts tallies arithmetic work done by a detector.
type OpCounts struct {
	Adds  int64 // additions and subtractions
	Mults int64 // multiplications and divisions
	Cmps  int64 // comparisons
}

// Plus returns the element-wise sum of two counts.
func (o OpCounts) Plus(p OpCounts) OpCounts {
	return OpCounts{Adds: o.Adds + p.Adds, Mults: o.Mults + p.Mults, Cmps: o.Cmps + p.Cmps}
}

// Detector decides, per time step, whether the model should be fine-tuned.
type Detector interface {
	// Observe consumes the training-set update for this time step and the
	// current training set, returning true when drift is detected and the
	// model should be fine-tuned on the current training set.
	Observe(u reservoir.Update, x []float64, set reservoir.TrainingSet) bool
	// Reset snapshots the current training set as the new reference. The
	// framework calls it right after every fine-tune.
	Reset(set reservoir.TrainingSet)
	// Ops returns cumulative operation counts.
	Ops() OpCounts
	// Name returns a short identifier ("regular", "musigma", "kswin").
	Name() string
}

// Regular triggers a fine-tune every Interval time steps, the paper's
// "regular fine-tuning" baseline for Task 2.
type Regular struct {
	Interval int
	steps    int
	ops      OpCounts
}

// NewRegular returns a Regular detector firing every interval steps.
func NewRegular(interval int) *Regular {
	if interval <= 0 {
		panic("drift: interval must be positive")
	}
	return &Regular{Interval: interval}
}

// Observe implements Detector.
func (r *Regular) Observe(_ reservoir.Update, _ []float64, _ reservoir.TrainingSet) bool {
	r.steps++
	r.ops.Adds++
	r.ops.Cmps++
	if r.steps%r.Interval == 0 {
		return true
	}
	return false
}

// Reset implements Detector. Regular keeps its own cadence; nothing to do.
func (r *Regular) Reset(reservoir.TrainingSet) {}

// Ops implements Detector.
func (r *Regular) Ops() OpCounts { return r.ops }

// Name implements Detector.
func (r *Regular) Name() string { return "regular" }

// MuSigmaChange is the paper's "μ/σ-Change" strategy: it maintains the
// running mean vector μ_t and standard deviation σ_t of the training set
// (σ over all scalar elements) and triggers a fine-tune when
//
//	‖μ_i − μ_t‖₂ > σ_i   or   σ_t < σ_i/2   or   σ_t > 2σ_i,
//
// where (μ_i, σ_i) are the values at the last fine-tune. All updates are
// O(d) per step using running-moment swaps — this is the computationally
// cheap alternative to KSWIN.
type MuSigmaChange struct {
	dim     int
	mean    []float64     // running mean vector over the training set
	elems   stats.Running // running scalar moments over all elements
	refMean []float64     // μ_i snapshot
	refStd  float64       // σ_i snapshot
	hasRef  bool
	ops     OpCounts
}

// NewMuSigmaChange returns a μ/σ-Change detector for feature vectors of
// length dim.
func NewMuSigmaChange(dim int) *MuSigmaChange {
	if dim <= 0 {
		panic("drift: dim must be positive")
	}
	return &MuSigmaChange{
		dim:     dim,
		mean:    make([]float64, dim),
		refMean: make([]float64, dim),
	}
}

// Observe implements Detector.
func (d *MuSigmaChange) Observe(u reservoir.Update, x []float64, set reservoir.TrainingSet) bool {
	n := float64(set.Len())
	switch u.Kind {
	case reservoir.Added:
		// μ_t = ((N−1)/N)·μ_{t−1} + x_t/N
		for i, v := range x {
			d.mean[i] = d.mean[i]*(n-1)/n + v/n
			d.elems.Push(v)
		}
		d.ops.Adds += int64(2 * d.dim)
		d.ops.Mults += int64(3 * d.dim)
	case reservoir.Replaced:
		// μ_t = μ_{t−1} + (x_t − x*)/N
		for i, v := range x {
			d.mean[i] += (v - u.Evicted[i]) / n
			d.elems.Replace(u.Evicted[i], v)
		}
		d.ops.Adds += int64(4 * d.dim)
		d.ops.Mults += int64(2 * d.dim)
	case reservoir.Skipped:
		// Training set unchanged; μ and σ carry over.
	}
	if !d.hasRef {
		return false
	}
	// Distance between reference and current mean. The paper leaves the
	// metric d(μ_i, μ_t) and the exact role of σ_i unspecified; we use the
	// per-element RMS distance ‖μ_i − μ_t‖₂/√dim compared against the
	// uncertainty of a mean over m samples, 3·σ_i/√m — the z-test a mean
	// shift calls for. Comparing the RMS against σ_i itself almost never
	// fires (a mean over m samples moves on the σ/√m scale), while a raw
	// L2 over thousands of dimensions fires on every step's noise.
	var dist2 float64
	for i, v := range d.mean {
		diff := v - d.refMean[i]
		dist2 += diff * diff
	}
	dist2 /= float64(d.dim)
	d.ops.Adds += int64(2 * d.dim)
	d.ops.Mults += int64(d.dim)
	sigma := d.elems.StdDev()
	d.ops.Cmps += 3
	thr := 3 * d.refStd / math.Sqrt(n)
	if dist2 > thr*thr {
		return true
	}
	if d.refStd > 0 && (sigma < d.refStd/2 || sigma > 2*d.refStd) {
		return true
	}
	return false
}

// Reset implements Detector: it recomputes exact moments from the current
// training set and snapshots them as the new reference.
func (d *MuSigmaChange) Reset(set reservoir.TrainingSet) {
	items := set.Items()
	for i := range d.mean {
		d.mean[i] = 0
	}
	d.elems.Reset()
	if len(items) == 0 {
		d.hasRef = false
		return
	}
	for _, it := range items {
		for i, v := range it {
			d.mean[i] += v
			d.elems.Push(v)
		}
	}
	inv := 1 / float64(len(items))
	for i := range d.mean {
		d.mean[i] *= inv
	}
	copy(d.refMean, d.mean)
	d.refStd = d.elems.StdDev()
	d.hasRef = true
}

// Ops implements Detector.
func (d *MuSigmaChange) Ops() OpCounts { return d.ops }

// Name implements Detector.
func (d *MuSigmaChange) Name() string { return "musigma" }

// Mean returns the current running mean vector (aliased; read-only).
func (d *MuSigmaChange) Mean() []float64 { return d.mean }

// StdDev returns the current running standard deviation over all elements.
func (d *MuSigmaChange) StdDev() float64 { return d.elems.StdDev() }

// KSWIN applies the two-sample Kolmogorov–Smirnov test per channel between
// the reference training set (snapshotted at the last fine-tune) and the
// current training set. Drift is declared as soon as any channel rejects
// the null hypothesis at the corrected significance α* = α/r.
type KSWIN struct {
	channels int // N
	repWin   int // w: rows per feature vector
	alpha    float64
	// CheckEvery throttles the (expensive) test to every k-th changed step;
	// 1 reproduces the paper's per-step testing.
	CheckEvery int
	steps      int
	ref        [][]float64 // per-channel sorted reference samples
	hasRef     bool
	correct    bool // apply the α/r correction (on by default)
	ops        OpCounts
}

// DefaultAlpha is the customary KSWIN significance level.
const DefaultAlpha = 0.01

// NewKSWIN returns a KSWIN detector for feature vectors laid out as w rows
// of N channels (x[row*N+ch]), testing at significance alpha with the α/r
// correction enabled.
func NewKSWIN(channels, repWin int, alpha float64) *KSWIN {
	if channels <= 0 || repWin <= 0 {
		panic("drift: channels and repWin must be positive")
	}
	if alpha <= 0 || alpha >= 1 {
		panic("drift: alpha must be in (0,1)")
	}
	return &KSWIN{channels: channels, repWin: repWin, alpha: alpha, CheckEvery: 1, correct: true}
}

// SetCorrection toggles the α* = α/r repeated-testing correction; used by
// the ablation that measures false-positive drift rates.
func (k *KSWIN) SetCorrection(on bool) { k.correct = on }

// channelSamples gathers every value of each channel across the training
// set into per-channel slices of length len(items)·w.
func (k *KSWIN) channelSamples(items [][]float64) [][]float64 {
	out := make([][]float64, k.channels)
	per := len(items) * k.repWin
	backing := make([]float64, k.channels*per)
	for c := range out {
		out[c] = backing[c*per : c*per : (c+1)*per]
	}
	for _, it := range items {
		for idx, v := range it {
			c := idx % k.channels
			out[c] = append(out[c], v)
		}
	}
	k.ops.Adds += int64(len(items) * k.repWin * k.channels) // indexing walk
	return out
}

// Observe implements Detector.
func (k *KSWIN) Observe(u reservoir.Update, _ []float64, set reservoir.TrainingSet) bool {
	if !k.hasRef {
		return false
	}
	if u.Kind == reservoir.Skipped {
		return false
	}
	k.steps++
	if k.CheckEvery > 1 && k.steps%k.CheckEvery != 0 {
		return false
	}
	cur := k.channelSamples(set.Items())
	alpha := k.alpha
	if k.correct {
		// α* = α/r with r the (equal) per-channel sample size.
		r := float64(len(k.ref[0]))
		if r > 0 {
			alpha = k.alpha / r
		}
	}
	drift := false
	for c := 0; c < k.channels; c++ {
		sort.Float64s(cur[c])
		// Sorting n elements costs ~n·log2(n) comparisons.
		n := float64(len(cur[c]))
		if n > 1 {
			k.ops.Cmps += int64(n * math.Log2(n))
		}
		res := stats.KSTestSorted(k.ref[c], cur[c], alpha)
		k.ops.Cmps += int64(res.Comparisons)
		k.ops.Adds += int64(len(k.ref[c]) + len(cur[c])) // CDF differencing
		k.ops.Mults += int64(len(k.ref[c]) + len(cur[c]))
		if res.Reject {
			drift = true
			break
		}
	}
	return drift
}

// Reset implements Detector: snapshot the current training set, per
// channel, sorted, as the reference sample.
func (k *KSWIN) Reset(set reservoir.TrainingSet) {
	items := set.Items()
	if len(items) == 0 {
		k.hasRef = false
		return
	}
	k.ref = k.channelSamples(items)
	for c := range k.ref {
		sort.Float64s(k.ref[c])
	}
	k.hasRef = true
}

// Ops implements Detector.
func (k *KSWIN) Ops() OpCounts { return k.ops }

// Name implements Detector.
func (k *KSWIN) Name() string { return "kswin" }

// PaperFormulaMuSigma returns the paper's Table II closed-form operation
// counts for the μ/σ-Change method at one time step.
func PaperFormulaMuSigma(channels, repWin int) OpCounts {
	nw := int64(channels * repWin)
	return OpCounts{Adds: 6 * nw, Mults: 2 * nw, Cmps: 3 * nw}
}

// PaperFormulaKSWIN returns the paper's Table II closed-form operation
// counts for the KSWIN method at one time step, for training-set length m.
func PaperFormulaKSWIN(channels, repWin, m int) OpCounts {
	n, w, mm := float64(channels), float64(repWin), float64(m)
	log := math.Log2(mm * w)
	return OpCounts{
		Adds:  int64(2 * n * mm * w),
		Mults: int64(2 * n * mm * w),
		Cmps:  int64((1+4*mm)*n*w*log + n),
	}
}
