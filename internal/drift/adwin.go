package drift

import (
	"math"

	"streamad/internal/reservoir"
)

// ADWIN is the adaptive-windowing drift detector of Bifet & Gavaldà,
// which the paper's related work discusses (Belacel et al. reconstruct an
// ADWIN with an LSTM and fine-tune on the shrunk window). It watches a
// scalar summary of each observed feature vector — the mean of its
// elements — keeps an adaptive window of recent values, and signals drift
// when some split of the window into old|new halves shows a mean
// difference exceeding the Hoeffding-style bound
//
//	ε_cut = √( (1/2m) · ln(4/δ') ),   1/m = 1/|W₀| + 1/|W₁|,
//
// at which point the old half is dropped. It is an extension beyond the
// paper's Task 2 grid, provided for comparison with μ/σ-Change and KSWIN.
type ADWIN struct {
	// Delta is the confidence parameter δ (default 0.002).
	Delta float64
	// MaxWindow bounds memory (default 2048 values).
	MaxWindow int
	// MinSplit is the minimum subwindow size considered (default 8).
	MinSplit int

	window []float64
	ops    OpCounts
}

// NewADWIN returns an ADWIN detector with the given confidence δ
// (0 = default 0.002).
func NewADWIN(delta float64) *ADWIN {
	if delta == 0 {
		delta = 0.002
	}
	if delta <= 0 || delta >= 1 {
		panic("drift: ADWIN delta must be in (0,1)")
	}
	return &ADWIN{Delta: delta, MaxWindow: 2048, MinSplit: 8}
}

// summarize reduces a feature vector to the scalar ADWIN tracks.
func summarize(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Observe implements Detector.
func (a *ADWIN) Observe(u reservoir.Update, x []float64, _ reservoir.TrainingSet) bool {
	if u.Kind == reservoir.Skipped {
		return false
	}
	a.window = append(a.window, summarize(x))
	a.ops.Adds += int64(len(x))
	a.ops.Mults++
	if len(a.window) > a.MaxWindow {
		a.window = a.window[len(a.window)-a.MaxWindow:]
	}
	n := len(a.window)
	if n < 2*a.MinSplit {
		return false
	}
	// Prefix sums for O(n) split evaluation.
	total := 0.0
	for _, v := range a.window {
		total += v
	}
	a.ops.Adds += int64(n)
	deltaPrime := a.Delta / float64(n)
	lnTerm := math.Log(4 / deltaPrime)
	var prefix float64
	drift := false
	cut := -1
	for i := a.MinSplit; i <= n-a.MinSplit; i++ {
		prefix += a.window[i-1]
		n0 := float64(i)
		n1 := float64(n - i)
		mean0 := prefix / n0
		mean1 := (total - prefix) / n1
		invM := 1/n0 + 1/n1
		eps := math.Sqrt(0.5 * invM * lnTerm)
		a.ops.Adds += 4
		a.ops.Mults += 4
		a.ops.Cmps++
		if math.Abs(mean0-mean1) > eps {
			drift = true
			cut = i
			// Keep scanning: the LAST admissible cut keeps the most data.
		}
	}
	if drift {
		a.window = append([]float64(nil), a.window[cut:]...)
	}
	return drift
}

// Reset implements Detector. ADWIN manages its own window; the drift cut
// already removed the stale half, so nothing else to do.
func (a *ADWIN) Reset(reservoir.TrainingSet) {}

// Ops implements Detector.
func (a *ADWIN) Ops() OpCounts { return a.ops }

// Name implements Detector.
func (a *ADWIN) Name() string { return "adwin" }

// WindowLen returns the current adaptive-window length (for tests).
func (a *ADWIN) WindowLen() int { return len(a.window) }
