package drift

import (
	"math/rand"
	"testing"

	"streamad/internal/reservoir"
)

// fillSW fills a sliding window with draws from gen and returns it.
func fillSW(m, dim int, gen func(i int) []float64) *reservoir.SlidingWindow {
	sw := reservoir.NewSlidingWindow(m, dim)
	for i := 0; i < m; i++ {
		sw.Observe(gen(i), 0)
	}
	return sw
}

func gaussGen(rng *rand.Rand, dim int, mean, std float64) func(int) []float64 {
	return func(int) []float64 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = mean + std*rng.NormFloat64()
		}
		return x
	}
}

func TestRegularCadence(t *testing.T) {
	r := NewRegular(5)
	sw := fillSW(3, 1, func(i int) []float64 { return []float64{float64(i)} })
	fires := 0
	for i := 0; i < 20; i++ {
		if r.Observe(reservoir.Update{Kind: reservoir.Replaced}, []float64{0}, sw) {
			fires++
		}
	}
	if fires != 4 {
		t.Fatalf("Regular fired %d times in 20 steps with interval 5, want 4", fires)
	}
	if r.Name() != "regular" {
		t.Fatalf("Name = %q", r.Name())
	}
	if r.Ops().Cmps == 0 {
		t.Fatal("Regular should count comparisons")
	}
}

func TestRegularPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegular(0)
}

func TestMuSigmaStationaryNoDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 8
	m := 50
	gen := gaussGen(rng, dim, 5, 1)
	sw := fillSW(m, dim, gen)
	d := NewMuSigmaChange(dim)
	d.Reset(sw)
	fires := 0
	for i := 0; i < 300; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		if d.Observe(u, x, sw) {
			fires++
			d.Reset(sw)
		}
	}
	if fires > 2 {
		t.Fatalf("μ/σ fired %d times on a stationary stream, want ≈0", fires)
	}
}

func TestMuSigmaDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 8
	m := 50
	gen := gaussGen(rng, dim, 0, 1)
	sw := fillSW(m, dim, gen)
	d := NewMuSigmaChange(dim)
	d.Reset(sw)
	// Shift the mean by 3σ; within m steps the running mean crosses σ_i.
	shifted := gaussGen(rng, dim, 3, 1)
	detected := false
	for i := 0; i < 2*m; i++ {
		x := shifted(i)
		u := sw.Observe(x, 0)
		if d.Observe(u, x, sw) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("μ/σ missed a 3σ mean shift")
	}
}

func TestMuSigmaDetectsVarianceExplosion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 4
	m := 60
	gen := gaussGen(rng, dim, 0, 1)
	sw := fillSW(m, dim, gen)
	d := NewMuSigmaChange(dim)
	d.Reset(sw)
	// Variance ×9 ⇒ σ ×3 > factor-2 threshold.
	loud := gaussGen(rng, dim, 0, 3)
	detected := false
	for i := 0; i < 2*m; i++ {
		x := loud(i)
		u := sw.Observe(x, 0)
		if d.Observe(u, x, sw) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("μ/σ missed a variance explosion")
	}
}

func TestMuSigmaRunningMatchesBatchAfterSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 3
	m := 10
	gen := gaussGen(rng, dim, 2, 1)
	sw := fillSW(m, dim, gen)
	d := NewMuSigmaChange(dim)
	d.Reset(sw)
	for i := 0; i < 100; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		d.Observe(u, x, sw)
	}
	// Compare running mean against a batch recomputation.
	items := sw.Items()
	batch := make([]float64, dim)
	for _, it := range items {
		for j, v := range it {
			batch[j] += v
		}
	}
	for j := range batch {
		batch[j] /= float64(len(items))
		diff := batch[j] - d.Mean()[j]
		if diff < -1e-8 || diff > 1e-8 {
			t.Fatalf("running mean[%d] = %v, batch %v", j, d.Mean()[j], batch[j])
		}
	}
	if d.StdDev() <= 0 {
		t.Fatal("running σ should be positive")
	}
}

func TestMuSigmaOpsGrow(t *testing.T) {
	d := NewMuSigmaChange(4)
	sw := fillSW(5, 4, func(int) []float64 { return []float64{1, 2, 3, 4} })
	d.Reset(sw)
	x := []float64{1, 2, 3, 4}
	u := sw.Observe(x, 0)
	d.Observe(u, x, sw)
	ops := d.Ops()
	if ops.Adds == 0 || ops.Mults == 0 || ops.Cmps == 0 {
		t.Fatalf("ops not counted: %+v", ops)
	}
}

func TestKSWINStationaryNoDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	channels, w := 3, 5
	dim := channels * w
	m := 40
	gen := gaussGen(rng, dim, 0, 1)
	sw := fillSW(m, dim, gen)
	k := NewKSWIN(channels, w, DefaultAlpha)
	k.Reset(sw)
	fires := 0
	for i := 0; i < 150; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		if k.Observe(u, x, sw) {
			fires++
			k.Reset(sw)
		}
	}
	if fires > 2 {
		t.Fatalf("KSWIN fired %d times on a stationary stream", fires)
	}
}

func TestKSWINDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	channels, w := 3, 5
	dim := channels * w
	m := 40
	gen := gaussGen(rng, dim, 0, 1)
	sw := fillSW(m, dim, gen)
	k := NewKSWIN(channels, w, DefaultAlpha)
	k.Reset(sw)
	shifted := gaussGen(rng, dim, 2.5, 1)
	detected := false
	for i := 0; i < 2*m; i++ {
		x := shifted(i)
		u := sw.Observe(x, 0)
		if k.Observe(u, x, sw) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("KSWIN missed a 2.5σ shift")
	}
}

func TestKSWINCorrectionReducesFalsePositives(t *testing.T) {
	count := func(correct bool, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		channels, w := 2, 4
		dim := channels * w
		m := 30
		gen := gaussGen(rng, dim, 0, 1)
		sw := fillSW(m, dim, gen)
		k := NewKSWIN(channels, w, 0.2) // lax α to surface FPs
		k.SetCorrection(correct)
		k.Reset(sw)
		fires := 0
		for i := 0; i < 400; i++ {
			x := gen(i)
			u := sw.Observe(x, 0)
			if k.Observe(u, x, sw) {
				fires++
				k.Reset(sw)
			}
		}
		return fires
	}
	withCorrection := count(true, 7)
	without := count(false, 7)
	if withCorrection > without {
		t.Fatalf("α/r correction increased false positives: %d > %d", withCorrection, without)
	}
}

func TestKSWINCheckEveryThrottles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	channels, w := 2, 3
	dim := channels * w
	m := 20
	gen := gaussGen(rng, dim, 0, 1)
	sw := fillSW(m, dim, gen)
	k := NewKSWIN(channels, w, DefaultAlpha)
	k.CheckEvery = 10
	k.Reset(sw)
	opsBefore := k.Ops()
	for i := 0; i < 100; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		k.Observe(u, x, sw)
	}
	throttled := k.Ops().Adds - opsBefore.Adds

	k2 := NewKSWIN(channels, w, DefaultAlpha)
	k2.Reset(sw)
	for i := 0; i < 100; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		k2.Observe(u, x, sw)
	}
	full := k2.Ops().Adds
	if throttled*5 > full {
		t.Fatalf("CheckEvery=10 did not reduce work: throttled=%d full=%d", throttled, full)
	}
}

func TestKSWINSkippedUpdateIsFree(t *testing.T) {
	channels, w := 2, 3
	dim := channels * w
	sw := fillSW(5, dim, func(int) []float64 { return make([]float64, dim) })
	k := NewKSWIN(channels, w, DefaultAlpha)
	k.Reset(sw)
	before := k.Ops()
	if k.Observe(reservoir.Update{Kind: reservoir.Skipped}, make([]float64, dim), sw) {
		t.Fatal("skipped update should never signal drift")
	}
	if k.Ops() != before {
		t.Fatal("skipped update should cost nothing")
	}
}

func TestKSWINOpsDominateMuSigma(t *testing.T) {
	rows := []OpCounts{
		PaperFormulaMuSigma(9, 100),
		PaperFormulaKSWIN(9, 100, 500),
	}
	if rows[1].Adds <= rows[0].Adds || rows[1].Cmps <= rows[0].Cmps {
		t.Fatalf("paper formulas must show KSWIN ≫ μ/σ: %+v vs %+v", rows[1], rows[0])
	}
}

func TestDetectorNames(t *testing.T) {
	if NewMuSigmaChange(2).Name() != "musigma" {
		t.Fatal("musigma name")
	}
	if NewKSWIN(1, 2, 0.01).Name() != "kswin" {
		t.Fatal("kswin name")
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewMuSigmaChange(0) },
		func() { NewKSWIN(0, 1, 0.01) },
		func() { NewKSWIN(1, 1, 0) },
		func() { NewKSWIN(1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestOpCountsPlus(t *testing.T) {
	a := OpCounts{Adds: 1, Mults: 2, Cmps: 3}
	b := OpCounts{Adds: 10, Mults: 20, Cmps: 30}
	c := a.Plus(b)
	if c.Adds != 11 || c.Mults != 22 || c.Cmps != 33 {
		t.Fatalf("Plus = %+v", c)
	}
}
