package drift

import (
	"math/rand"
	"testing"

	"streamad/internal/reservoir"
)

func TestADWINStationaryNoDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewADWIN(0.002)
	dim := 6
	sw := fillSW(10, dim, gaussGen(rng, dim, 0, 1))
	gen := gaussGen(rng, dim, 0, 1)
	fires := 0
	for i := 0; i < 1000; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		if a.Observe(u, x, sw) {
			fires++
		}
	}
	if fires > 3 {
		t.Fatalf("ADWIN fired %d times on a stationary stream", fires)
	}
}

func TestADWINDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewADWIN(0.002)
	dim := 6
	sw := fillSW(10, dim, gaussGen(rng, dim, 0, 1))
	gen := gaussGen(rng, dim, 0, 1)
	for i := 0; i < 200; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		a.Observe(u, x, sw)
	}
	before := a.WindowLen()
	shifted := gaussGen(rng, dim, 2, 1)
	detected := false
	for i := 0; i < 200; i++ {
		x := shifted(i)
		u := sw.Observe(x, 0)
		if a.Observe(u, x, sw) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("ADWIN missed a 2σ mean shift")
	}
	// The cut must have shrunk the window below its pre-drift length plus
	// the post-drift additions.
	if a.WindowLen() >= before+200 {
		t.Fatalf("ADWIN did not shrink its window: %d", a.WindowLen())
	}
}

func TestADWINSkippedIsFree(t *testing.T) {
	a := NewADWIN(0)
	sw := fillSW(3, 2, func(int) []float64 { return []float64{0, 0} })
	before := a.Ops()
	if a.Observe(reservoir.Update{Kind: reservoir.Skipped}, []float64{0, 0}, sw) {
		t.Fatal("skipped update must not drift")
	}
	if a.Ops() != before {
		t.Fatal("skipped update must be free")
	}
}

func TestADWINWindowBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewADWIN(0.002)
	a.MaxWindow = 100
	dim := 2
	sw := fillSW(5, dim, gaussGen(rng, dim, 0, 1))
	gen := gaussGen(rng, dim, 0, 1)
	for i := 0; i < 500; i++ {
		x := gen(i)
		u := sw.Observe(x, 0)
		a.Observe(u, x, sw)
	}
	if a.WindowLen() > 100 {
		t.Fatalf("window grew to %d > MaxWindow", a.WindowLen())
	}
}

func TestADWINValidation(t *testing.T) {
	if NewADWIN(0).Delta != 0.002 {
		t.Fatal("default delta")
	}
	if NewADWIN(0.002).Name() != "adwin" {
		t.Fatal("name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for delta ≥ 1")
		}
	}()
	NewADWIN(2)
}
