package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningPush(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Push(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEq(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	if !almostEq(r.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", r.StdDev())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.StdDev() != 0 {
		t.Fatal("empty Running should report zeros")
	}
}

func TestRunningReplaceOnEmptyPushes(t *testing.T) {
	var r Running
	r.Replace(0, 5)
	if r.N() != 1 || r.Mean() != 5 {
		t.Fatalf("Replace on empty: N=%d mean=%v", r.N(), r.Mean())
	}
}

// TestRunningReplaceProperty: a sequence of swaps must match a batch
// recomputation of the same multiset.
func TestRunningReplaceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		vals := make([]float64, n)
		var r Running
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
			r.Push(vals[i])
		}
		// Perform random swaps.
		for k := 0; k < 50; k++ {
			i := rng.Intn(n)
			nv := rng.NormFloat64() * 10
			r.Replace(vals[i], nv)
			vals[i] = nv
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(n)
		var variance float64
		for _, v := range vals {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(n)
		return almostEq(r.Mean(), mean, 1e-8) && almostEq(r.Var(), variance, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Push(3)
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestQFunc(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.05},
		{-1.6448536269514722, 0.95},
	}
	for _, c := range cases {
		if got := QFunc(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	if (&ECDF{}).At(1) != 0 {
		t.Fatal("empty ECDF should be 0")
	}
}

func TestKSSameDistributionNoReject(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res := KSTest(a, b, 0.001)
	if res.Reject {
		t.Fatalf("same-distribution KS rejected: stat=%v thr=%v", res.Statistic, res.Threshold)
	}
}

func TestKSShiftedDistributionRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 2
	}
	res := KSTest(a, b, 0.01)
	if !res.Reject {
		t.Fatalf("shifted KS did not reject: stat=%v thr=%v", res.Statistic, res.Threshold)
	}
	if res.Statistic < 0.5 {
		t.Fatalf("2σ shift should give large statistic, got %v", res.Statistic)
	}
}

func TestKSEmptyInputs(t *testing.T) {
	res := KSTest(nil, []float64{1}, 0.05)
	if res.Reject {
		t.Fatal("empty sample must not reject")
	}
}

func TestKSStatisticExact(t *testing.T) {
	// Disjoint supports: statistic must be 1 and (with enough samples for
	// the threshold to drop below 1) the test must reject.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	res := KSTest(a, b, 0.05)
	if !almostEq(res.Statistic, 1, 1e-12) {
		t.Fatalf("disjoint KS statistic = %v, want 1", res.Statistic)
	}
	if !res.Reject {
		t.Fatal("disjoint supports must reject")
	}
}

func TestKSCritical(t *testing.T) {
	// c(α) = sqrt(ln(2/α)/2); at α=0.05: sqrt(ln40/2) ≈ 1.3581.
	if got := KSCritical(0.05); !almostEq(got, 1.3581, 1e-4) {
		t.Fatalf("KSCritical(0.05) = %v, want ≈1.3581", got)
	}
}

// TestKSStatisticSymmetryProperty: KS(a,b) == KS(b,a).
func TestKSStatisticSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		m := 5 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + rng.Float64()
		}
		r1 := KSTest(a, b, 0.05)
		r2 := KSTest(b, a, 0.05)
		return almostEq(r1.Statistic, r2.Statistic, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1. / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile modified its input")
	}
}
