// Package stats implements the statistical substrate of streamad: running
// moments, the Gaussian tail function used by the anomaly likelihood, the
// empirical CDF and the two-sample Kolmogorov–Smirnov test that backs the
// KSWIN concept-drift detector.
package stats

import (
	"math"
	"sort"
)

// Running tracks mean and variance of a scalar sequence with Welford's
// algorithm, supporting both append-only growth and sliding replacement
// (the μ/σ-Change strategy updates a training set by swapping one element).
type Running struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the mean
}

// N returns the number of accumulated observations.
func (r *Running) N() int { return r.n }

// Mean returns the current mean (0 for empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 for fewer than 1 observation).
func (r *Running) Var() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// Push adds x.
func (r *Running) Push(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Replace removes old and adds x in O(1), keeping n constant. Following the
// paper's running-mean update μ_t = μ_{t-1} + (x_t − x*)/N. The second
// moment uses the exact pairwise update so StdDev stays consistent.
func (r *Running) Replace(old, x float64) {
	if r.n == 0 {
		r.Push(x)
		return
	}
	n := float64(r.n)
	oldMean := r.mean
	r.mean += (x - old) / n
	// Exact update of the sum of squared deviations for a swap:
	// m2' = m2 + (x−old)·(x − mean' + old − mean).
	r.m2 += (x - old) * (x - r.mean + old - oldMean)
	if r.m2 < 0 {
		r.m2 = 0 // guard against floating-point cancellation
	}
}

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// State exposes the accumulator's raw moments (count, mean, sum of squared
// deviations) for checkpointing.
func (r *Running) State() (n int, mean, m2 float64) { return r.n, r.mean, r.m2 }

// SetState restores an accumulator captured with State.
func (r *Running) SetState(n int, mean, m2 float64) {
	r.n, r.mean, r.m2 = n, mean, m2
}

// QFunc is the Gaussian tail distribution function
// Q(x) = P(Z > x) = 0.5·erfc(x/√2) for a standard normal Z.
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from sample (copied and sorted).
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = P(X ≤ x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of elements ≤ x.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// Statistic is sup_x |F1(x) − F2(x)|.
	Statistic float64
	// Threshold is c(α)·√((r1+r2)/(r1·r2)); the null hypothesis of equal
	// distributions is rejected when Statistic > Threshold.
	Threshold float64
	// Reject reports Statistic > Threshold.
	Reject bool
	// Comparisons counts the binary-search comparisons spent evaluating the
	// statistic, used by the Table II operation accounting.
	Comparisons int
}

// KSCritical returns c(α) = sqrt(ln(2/α)/2), the critical value of the
// two-sample KS test at significance α.
//
// Note: the paper prints c(α)=sqrt(ln(2/α)); the standard Smirnov critical
// value includes the 1/2 factor and is what KSWIN (Raab et al.) uses, so we
// use sqrt(ln(2/α)/2).
func KSCritical(alpha float64) float64 {
	return math.Sqrt(math.Log(2/alpha) / 2)
}

// KSTest runs the two-sample KS test on a and b at significance alpha.
// Neither input is modified.
func KSTest(a, b []float64, alpha float64) KSResult {
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)
	return KSTestSorted(sa, sb, alpha)
}

// KSTestSorted is KSTest for pre-sorted samples.
func KSTestSorted(sa, sb []float64, alpha float64) KSResult {
	ra, rb := len(sa), len(sb)
	if ra == 0 || rb == 0 {
		return KSResult{}
	}
	// Merge-walk both sorted samples computing the sup of CDF differences.
	var (
		i, j int
		d    float64
		cmps int
	)
	for i < ra && j < rb {
		cmps++
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < ra && sa[i] <= x {
			i++
			cmps++
		}
		for j < rb && sb[j] <= x {
			j++
			cmps++
		}
		diff := math.Abs(float64(i)/float64(ra) - float64(j)/float64(rb))
		if diff > d {
			d = diff
		}
	}
	thr := KSCritical(alpha) * math.Sqrt(float64(ra+rb)/float64(ra*rb))
	return KSResult{Statistic: d, Threshold: thr, Reject: d > thr, Comparisons: cmps}
}

// Quantile returns the q-quantile (0≤q≤1) of the sample using linear
// interpolation between order statistics. The input is not modified.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
