package knn

import (
	"math"
	"math/rand"
	"testing"
)

func gauss(rng *rand.Rand, n, dim int, mean float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, dim)
		for j := range x {
			x[j] = mean + rng.NormFloat64()
		}
		out[i] = x
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("expected error for Dim=0")
	}
	if _, err := New(Config{Dim: 2, K: -1}); err == nil {
		t.Fatal("expected error for negative K")
	}
	m, err := New(Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 5 || m.Fitted() {
		t.Fatalf("defaults wrong: K=%d fitted=%v", m.K(), m.Fitted())
	}
}

func TestUnfittedIsNeutral(t *testing.T) {
	m, _ := New(Config{Dim: 2})
	if s := m.NonconformityScore([]float64{1, 2}); s != 0.5 {
		t.Fatalf("unfitted = %v, want 0.5", s)
	}
}

func TestOutlierScoresHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, _ := New(Config{Dim: 4, K: 3})
	m.Fit(gauss(rng, 200, 4, 0))
	inlier := m.NonconformityScore([]float64{0.1, -0.2, 0.3, 0})
	outlier := m.NonconformityScore([]float64{8, 8, 8, 8})
	if outlier <= inlier {
		t.Fatalf("outlier %v should exceed inlier %v", outlier, inlier)
	}
	if outlier < 0.9 {
		t.Fatalf("far outlier = %v, want ≈1", outlier)
	}
	if inlier > 0.7 {
		t.Fatalf("inlier = %v, want near the 0.5 self-scale", inlier)
	}
}

func TestScoreRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := New(Config{Dim: 3})
	m.Fit(gauss(rng, 100, 3, 5))
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64() * 20, rng.NormFloat64() * 20, rng.NormFloat64() * 20}
		s := m.NonconformityScore(x)
		if s < 0 || s >= 1 {
			t.Fatalf("score out of [0,1): %v", s)
		}
	}
}

func TestFitRefreshesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := New(Config{Dim: 2, K: 2})
	m.Fit(gauss(rng, 100, 2, 0))
	before := m.NonconformityScore([]float64{10, 10})
	// Retrain around the former outlier's location.
	m.Fit(gauss(rng, 100, 2, 10))
	after := m.NonconformityScore([]float64{10, 10})
	if after >= before {
		t.Fatalf("refit should normalize the new regime: %v → %v", before, after)
	}
}

func TestFitCopiesVectors(t *testing.T) {
	m, _ := New(Config{Dim: 2, K: 1})
	x := []float64{1, 1}
	m.Fit([][]float64{x, {2, 2}, {3, 3}})
	x[0] = 99
	// The reference must still contain the original (1,1).
	if s := m.NonconformityScore([]float64{1, 1}); s > 0.4 {
		t.Fatalf("reference was aliased to caller storage (score %v)", s)
	}
}

func TestFitSkipsWrongDims(t *testing.T) {
	m, _ := New(Config{Dim: 3})
	m.Fit([][]float64{{1, 2}})
	if m.Fitted() {
		t.Fatal("wrong-dim vectors must be ignored")
	}
}

func TestDegenerateIdenticalSet(t *testing.T) {
	m, _ := New(Config{Dim: 2, K: 3})
	set := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	m.Fit(set)
	s := m.NonconformityScore([]float64{1, 1})
	if s != s || s < 0 || s >= 1 {
		t.Fatalf("degenerate set score = %v", s)
	}
	if far := m.NonconformityScore([]float64{100, 100}); far < 0.99 {
		t.Fatalf("far point on degenerate set = %v, want ≈1", far)
	}
}

func TestKLargerThanSet(t *testing.T) {
	m, _ := New(Config{Dim: 1, K: 10})
	m.Fit([][]float64{{0}, {1}, {2}})
	s := m.NonconformityScore([]float64{1})
	if s < 0 || s >= 1 {
		t.Fatalf("k>set score = %v", s)
	}
}

// TestFillPhaseOrdering guards the binary-insert fill path: with k larger
// than the scanned prefix, the fill-phase insertions alone must produce
// the same neighbor set the steady-state path would.
func TestFillPhaseOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := gauss(rng, 40, 4, 0)
	m, _ := New(Config{Dim: 4, K: 8})
	m.Fit(set)
	q := []float64{0.1, -0.2, 0.3, 0}
	got := m.knnDistance(q, -1)
	// Brute-force reference: mean of the 8 smallest distances.
	var ds []float64
	for _, r := range m.ref {
		ds = append(ds, dist2(q, r))
	}
	for i := range ds {
		for j := i + 1; j < len(ds); j++ {
			if ds[j] < ds[i] {
				ds[i], ds[j] = ds[j], ds[i]
			}
		}
	}
	var want float64
	for i := 0; i < 8; i++ {
		want += math.Sqrt(ds[i])
	}
	want /= 8
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("knnDistance = %v, brute force = %v", got, want)
	}
}

// BenchmarkFit is the regression benchmark for the fill-phase re-sort fix:
// Fit's leave-one-out scale pass dominates and exercises knnDistance on
// every sampled member.
func BenchmarkFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	set := gauss(rng, 256, 24, 0)
	m, _ := New(Config{Dim: 24, K: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fit(set)
	}
}

// BenchmarkScore measures the steady-state scoring path.
func BenchmarkScore(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	set := gauss(rng, 256, 24, 0)
	m, _ := New(Config{Dim: 24, K: 16})
	m.Fit(set)
	q := gauss(rng, 1, 24, 0.5)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NonconformityScore(q)
	}
}
