// Package knn implements the similarity-based nonconformity detector of
// the original SAFARI framework (Calikus et al.), which the paper extends:
// the "model" is the reference group itself, and the strangeness of a
// feature vector is its average distance to the k nearest members of the
// training set, normalized by the training set's own k-NN distance scale.
//
// It is not part of the paper's 26-algorithm grid but serves as the
// predecessor baseline the extended framework is measured against, and it
// demonstrates that purely instance-based methods plug into the same four
// components (its θ contains no trainable parameters beyond R_train).
package knn

import (
	"fmt"
	"math"
	"sort"
)

// Model is a k-nearest-neighbor nonconformity scorer.
type Model struct {
	k     int
	dim   int
	ref   [][]float64
	scale float64   // median in-set k-NN distance at the last Fit
	best  []float64 //streamad:transient reusable top-k scratch for knnDistance, overwritten per call
}

// Config parameterizes the kNN detector.
type Config struct {
	// K is the neighbor count (default 5).
	K int
	// Dim is the feature-vector length w·N.
	Dim int
}

// New returns an unfitted kNN model.
func New(cfg Config) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("knn: Dim must be positive, got %d", cfg.Dim)
	}
	k := cfg.K
	if k == 0 {
		k = 5
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: K must be positive, got %d", cfg.K)
	}
	return &Model{k: k, dim: cfg.Dim}, nil
}

// K returns the neighbor count.
func (m *Model) K() int { return m.k }

// CloneModel returns a copy for the asynchronous fine-tuning path. The
// reference rows are immutable between Fits (Fit replaces the whole
// backing array), so clone and original share them until the next Fit.
func (m *Model) CloneModel() any {
	return &Model{k: m.k, dim: m.dim, ref: m.ref, scale: m.scale}
}

// Fitted reports whether a reference set is loaded.
func (m *Model) Fitted() bool { return len(m.ref) > 0 }

// dist2 is the squared Euclidean distance.
//
//streamad:hotpath
func dist2(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// knnDistance returns the mean distance from x to its k nearest members
// of ref, skipping the member at index skip (−1 to keep all).
//
//streamad:hotpath
func (m *Model) knnDistance(x []float64, skip int) float64 {
	k := m.k
	if k > len(m.ref) {
		k = len(m.ref)
	}
	if skip >= 0 && k >= len(m.ref) {
		k = len(m.ref) - 1
	}
	if k < 1 {
		return 0
	}
	// Keep the k smallest squared distances sorted in a reusable scratch
	// slice; binary insertion in both the fill and steady phases replaces
	// the old fill-phase full re-sort (O(k log k) per element).
	if cap(m.best) < k {
		//streamad:ignore hotalloc lazy scratch growth guarded by the cap check above
		m.best = make([]float64, 0, k)
	}
	best := m.best[:0]
	for i, r := range m.ref {
		if i == skip {
			continue
		}
		d := dist2(x, r)
		if len(best) < k {
			pos := sort.SearchFloat64s(best, d)
			//streamad:ignore hotalloc binary insertion into the cap-k scratch; never grows
			best = append(best, 0)
			copy(best[pos+1:], best[pos:len(best)-1])
			best[pos] = d
			continue
		}
		if d < best[k-1] {
			pos := sort.SearchFloat64s(best, d)
			copy(best[pos+1:], best[pos:k-1])
			best[pos] = d
		}
	}
	m.best = best[:0]
	var sum float64
	for _, d := range best {
		sum += math.Sqrt(d)
	}
	return sum / float64(len(best))
}

// Fit implements the framework fine-tune contract: it snapshots the
// training set as the reference group and recomputes the normalization
// scale (the median leave-one-out k-NN distance within the set).
func (m *Model) Fit(set [][]float64) {
	if len(set) == 0 {
		return
	}
	ref := make([][]float64, 0, len(set))
	backing := make([]float64, 0, len(set)*m.dim)
	for _, x := range set {
		if len(x) != m.dim {
			continue
		}
		backing = append(backing, x...)
		ref = append(ref, backing[len(backing)-m.dim:])
	}
	if len(ref) == 0 {
		return
	}
	m.ref = ref
	// Median leave-one-out k-NN distance; subsample large sets to keep the
	// fit at O(min(m,64)·m).
	sample := len(ref)
	if sample > 64 {
		sample = 64
	}
	dists := make([]float64, 0, sample)
	stride := len(ref) / sample
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(ref) && len(dists) < sample; i += stride {
		dists = append(dists, m.knnDistance(ref[i], i))
	}
	sort.Float64s(dists)
	m.scale = dists[len(dists)/2]
	if m.scale <= 0 {
		m.scale = 1e-9
	}
}

// NonconformityScore implements the framework's SelfScoring contract: the
// k-NN distance is mapped into [0,1) by d/(d+scale), so a vector at the
// training set's own typical distance scores 0.5 and far-away vectors
// approach 1.
//
//streamad:hotpath
func (m *Model) NonconformityScore(x []float64) float64 {
	if !m.Fitted() {
		return 0.5
	}
	d := m.knnDistance(x, -1)
	return d / (d + m.scale)
}
