package knn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// state is the serializable form of the kNN model: the flattened
// reference group and its normalization scale.
type state struct {
	K     int
	Dim   int
	Scale float64
	Flat  []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	flat := make([]float64, 0, len(m.ref)*m.dim)
	for _, r := range m.ref {
		flat = append(flat, r...)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(state{K: m.k, Dim: m.dim, Scale: m.scale, Flat: flat})
	if err != nil {
		return nil, fmt.Errorf("knn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's K
// and Dim must match the snapshot.
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("knn: decode: %w", err)
	}
	if st.K != m.k || st.Dim != m.dim {
		return fmt.Errorf("knn: snapshot (k=%d dim=%d) does not match model (k=%d dim=%d)",
			st.K, st.Dim, m.k, m.dim)
	}
	if len(st.Flat)%st.Dim != 0 {
		return fmt.Errorf("knn: snapshot reference length %d not a multiple of dim %d", len(st.Flat), st.Dim)
	}
	n := len(st.Flat) / st.Dim
	ref := make([][]float64, n)
	for i := 0; i < n; i++ {
		ref[i] = st.Flat[i*st.Dim : (i+1)*st.Dim]
	}
	m.ref = ref
	m.scale = st.Scale
	return nil
}
