package iforest

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// nodeState is one tree node in the flattened pre-order encoding; Left
// and Right index into the node list (−1 for leaves).
type nodeState struct {
	Left, Right int
	Normal      []float64
	Intercept   []float64
	Size        int
}

// treeState is one flattened tree.
type treeState struct {
	Nodes    []nodeState
	MaxDepth int
	Sample   int
}

// state is the serializable form of a PCB-iForest. Seed and Draws capture
// the tree-growing RNG position, so replacement trees grown after a
// restore are identical to the ones the saved forest would have grown.
type state struct {
	NumTrees  int
	Subsample int
	Threshold float64
	Channels  int
	Fitted    bool
	Counters  []int
	Trees     []treeState
	Pruned    int
	Grown     int
	Seed      int64
	Draws     uint64
}

// flatten appends n (and recursively its children) to nodes, returning
// its index.
func flatten(n *node, nodes *[]nodeState) int {
	idx := len(*nodes)
	*nodes = append(*nodes, nodeState{Left: -1, Right: -1, Size: n.size})
	if !n.isLeaf() {
		ns := nodeState{
			Size:      n.size,
			Normal:    append([]float64(nil), n.normal...),
			Intercept: append([]float64(nil), n.intercept...),
		}
		ns.Left = flatten(n.left, nodes)
		ns.Right = flatten(n.right, nodes)
		(*nodes)[idx] = ns
	}
	return idx
}

// rebuild reconstructs the node at index idx from the flat list.
func rebuild(nodes []nodeState, idx int) (*node, error) {
	if idx < 0 || idx >= len(nodes) {
		return nil, fmt.Errorf("iforest: node index %d out of range", idx)
	}
	ns := nodes[idx]
	n := &node{size: ns.Size}
	if ns.Left < 0 {
		return n, nil
	}
	n.normal = append([]float64(nil), ns.Normal...)
	n.intercept = append([]float64(nil), ns.Intercept...)
	var err error
	if n.left, err = rebuild(nodes, ns.Left); err != nil {
		return nil, err
	}
	if n.right, err = rebuild(nodes, ns.Right); err != nil {
		return nil, err
	}
	return n, nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the full forest —
// every tree's geometry plus the performance counters — so a restored
// detector continues exactly where the saved one stopped.
func (f *PCBForest) MarshalBinary() ([]byte, error) {
	st := state{
		NumTrees:  f.numTrees,
		Subsample: f.subsample,
		Threshold: f.threshold,
		Channels:  f.channels,
		Fitted:    f.fitted,
		Counters:  append([]int(nil), f.counters...),
		Pruned:    f.Pruned,
		Grown:     f.Grown,
		Seed:      f.src.SeedValue(),
		Draws:     f.src.Draws(),
	}
	for _, t := range f.trees {
		ts := treeState{MaxDepth: t.maxDepth, Sample: t.sample}
		flatten(t.root, &ts.Nodes)
		st.Trees = append(st.Trees, ts)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("iforest: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// channel count must match the snapshot (other knobs are restored).
func (f *PCBForest) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("iforest: decode: %w", err)
	}
	if st.Channels != f.channels {
		return fmt.Errorf("iforest: snapshot channels %d != model channels %d", st.Channels, f.channels)
	}
	trees := make([]*Tree, 0, len(st.Trees))
	for _, ts := range st.Trees {
		root, err := rebuild(ts.Nodes, 0)
		if err != nil {
			return err
		}
		trees = append(trees, &Tree{root: root, maxDepth: ts.MaxDepth, sample: ts.Sample})
	}
	f.numTrees = st.NumTrees
	f.subsample = st.Subsample
	f.threshold = st.Threshold
	f.fitted = st.Fitted
	f.counters = append([]int(nil), st.Counters...)
	f.trees = trees
	f.Pruned = st.Pruned
	f.Grown = st.Grown
	f.src.Restore(st.Seed, st.Draws)
	return nil
}
