package iforest

import (
	"fmt"
	"math/rand"

	"streamad/internal/randstate"
)

// PCBForest is the performance-counter-based streaming isolation forest of
// Heigl et al. Every tree carries a counter pc_i that increases when the
// tree's individual verdict agrees with the forest's verdict and decreases
// otherwise. When the framework's drift detector fires, Fit discards all
// trees with pc_i ≤ 0, resets the counters of the survivors, and grows
// replacements from the current training set.
type PCBForest struct {
	trees     []*Tree
	counters  []int
	numTrees  int
	subsample int
	threshold float64
	channels  int
	src       *randstate.CountedSource
	rng       *rand.Rand //streamad:transient stateless wrapper over src, whose position Save/Load round-trips
	fitted    bool
	// Pruned/Grown track cumulative maintenance activity for diagnostics.
	Pruned int
	Grown  int
}

// Config parameterizes a PCB-iForest.
type Config struct {
	// Trees is the forest size (default 25, PCB-iForest's default).
	Trees int
	// Subsample is the per-tree build sample size (default 256, capped at
	// the training-set size).
	Subsample int
	// Threshold is the anomaly-score decision boundary used for the
	// performance counters (default 0.5).
	Threshold float64
	// Channels is the stream dimensionality N.
	Channels int
	// Seed drives tree construction.
	Seed int64
}

// New returns an unfitted PCB-iForest.
func New(cfg Config) (*PCBForest, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("iforest: Channels must be positive, got %d", cfg.Channels)
	}
	trees := cfg.Trees
	if trees == 0 {
		trees = 25
	}
	if trees < 1 {
		return nil, fmt.Errorf("iforest: Trees must be positive, got %d", cfg.Trees)
	}
	sub := cfg.Subsample
	if sub == 0 {
		sub = 256
	}
	thr := cfg.Threshold
	if thr == 0 {
		thr = 0.5
	}
	src := randstate.NewCountedSource(cfg.Seed)
	return &PCBForest{
		numTrees:  trees,
		subsample: sub,
		threshold: thr,
		channels:  cfg.Channels,
		src:       src,
		rng:       rand.New(src),
	}, nil
}

// Channels returns N.
func (f *PCBForest) Channels() int { return f.channels }

// NumTrees returns the configured forest size.
func (f *PCBForest) NumTrees() int { return f.numTrees }

// Fitted reports whether the forest has been built.
func (f *PCBForest) Fitted() bool { return f.fitted }

// Counters returns a copy of the per-tree performance counters.
func (f *PCBForest) Counters() []int {
	out := make([]int, len(f.counters))
	copy(out, f.counters)
	return out
}

// lastRows extracts the final stream vector s_t of every feature vector in
// the training set: PCB-iForest isolates stream vectors, not windows.
func (f *PCBForest) lastRows(set [][]float64) [][]float64 {
	out := make([][]float64, 0, len(set))
	for _, x := range set {
		if len(x) < f.channels {
			continue
		}
		out = append(out, x[len(x)-f.channels:])
	}
	return out
}

// buildOne grows a single tree from a random subsample of points.
func (f *PCBForest) buildOne(points [][]float64) *Tree {
	n := len(points)
	k := f.subsample
	if k > n {
		k = n
	}
	sample := make([][]float64, k)
	perm := f.rng.Perm(n)
	for i := 0; i < k; i++ {
		sample[i] = points[perm[i]]
	}
	return NewTree(sample, f.rng)
}

// Fit implements the framework fine-tune contract. The first call builds
// the full forest; later calls (triggered by drift) apply the PCB policy:
// retain trees with positive counters, reset counters, grow replacements.
func (f *PCBForest) Fit(set [][]float64) {
	points := f.lastRows(set)
	if len(points) == 0 {
		return
	}
	if !f.fitted {
		f.trees = make([]*Tree, f.numTrees)
		f.counters = make([]int, f.numTrees)
		for i := range f.trees {
			f.trees[i] = f.buildOne(points)
		}
		f.fitted = true
		return
	}
	kept := f.trees[:0]
	for i, t := range f.trees {
		if f.counters[i] > 0 {
			kept = append(kept, t)
		} else {
			f.Pruned++
		}
	}
	f.trees = kept
	for len(f.trees) < f.numTrees {
		f.trees = append(f.trees, f.buildOne(points))
		f.Grown++
	}
	f.counters = make([]int, f.numTrees)
}

// NonconformityScore returns the isolation-forest anomaly score of the
// final stream vector of feature vector x and updates the per-tree
// performance counters: trees whose individual verdict matches the
// forest's verdict gain a point, the others lose one.
func (f *PCBForest) NonconformityScore(x []float64) float64 {
	if len(x) < f.channels {
		panic("iforest: feature vector shorter than one stream vector")
	}
	s := x[len(x)-f.channels:]
	if !f.fitted || len(f.trees) == 0 {
		return 0.5
	}
	depths := make([]float64, len(f.trees))
	var sum float64
	for i, t := range f.trees {
		depths[i] = t.PathLength(s)
		sum += depths[i]
	}
	avg := sum / float64(len(f.trees))
	n := f.trees[0].sample
	overall := Score(avg, n)
	anomalous := overall > f.threshold
	for i, t := range f.trees {
		single := Score(depths[i], t.sample)
		if (single > f.threshold) == anomalous {
			f.counters[i]++
		} else {
			f.counters[i]--
		}
	}
	return overall
}
