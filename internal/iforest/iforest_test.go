package iforest

import (
	"math"
	"math/rand"
	"testing"
)

func cluster(rng *rand.Rand, n, dim int, center, spread float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, dim)
		for d := range p {
			p[d] = center + spread*rng.NormFloat64()
		}
		out[i] = p
	}
	return out
}

func TestAvgPathLength(t *testing.T) {
	if AvgPathLength(0) != 0 || AvgPathLength(1) != 0 {
		t.Fatal("c(n≤1) should be 0")
	}
	if AvgPathLength(2) != 1 {
		t.Fatal("c(2) should be 1")
	}
	// c(256) ≈ 10.24 (standard iforest constant).
	if c := AvgPathLength(256); math.Abs(c-10.24) > 0.1 {
		t.Fatalf("c(256) = %v, want ≈10.24", c)
	}
	// Monotone increasing.
	if AvgPathLength(100) >= AvgPathLength(1000) {
		t.Fatal("c must grow with n")
	}
}

func TestScoreMapping(t *testing.T) {
	// Depth == c(n) → score 0.5; shallower → higher.
	n := 256
	c := AvgPathLength(n)
	if s := Score(c, n); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Score(c,%d) = %v, want 0.5", n, s)
	}
	if Score(1, n) <= Score(c, n) {
		t.Fatal("shallow isolation must score higher")
	}
	if Score(3*c, n) >= 0.5 {
		t.Fatal("deep paths must score below 0.5")
	}
	if s := Score(5, 1); s != 0.5 {
		t.Fatalf("degenerate sample size should yield 0.5, got %v", s)
	}
}

func TestTreeIsolatesOutlierFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points := cluster(rng, 256, 2, 0, 1)
	var inlierDepth, outlierDepth float64
	const trees = 40
	for i := 0; i < trees; i++ {
		tr := NewTree(points, rng)
		inlierDepth += tr.PathLength([]float64{0.1, -0.2})
		outlierDepth += tr.PathLength([]float64{12, -11})
	}
	if outlierDepth >= inlierDepth {
		t.Fatalf("outlier depth %v should be below inlier depth %v", outlierDepth/trees, inlierDepth/trees)
	}
}

func TestTreeDegenerateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// All-identical points can never split.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	tr := NewTree(pts, rng)
	if d := tr.PathLength([]float64{1, 1}); d <= 0 {
		t.Fatalf("degenerate tree PathLength = %v", d)
	}
	// Single point.
	tr1 := NewTree(pts[:1], rng)
	if d := tr1.PathLength([]float64{5, 5}); d != 0 {
		t.Fatalf("single-point tree depth = %v, want 0", d)
	}
}

func featureVec(s []float64, w int) []float64 {
	x := make([]float64, 0, len(s)*w)
	for i := 0; i < w; i++ {
		x = append(x, s...)
	}
	return x
}

func TestPCBForestConfigValidation(t *testing.T) {
	if _, err := New(Config{Channels: 0}); err == nil {
		t.Fatal("expected error for Channels=0")
	}
	if _, err := New(Config{Channels: 1, Trees: -1}); err == nil {
		t.Fatal("expected error for negative Trees")
	}
	f, err := New(Config{Channels: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 25 || f.Fitted() {
		t.Fatalf("defaults wrong: trees=%d fitted=%v", f.NumTrees(), f.Fitted())
	}
}

func TestPCBForestScoresOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f, _ := New(Config{Channels: 2, Trees: 50, Seed: 3})
	set := make([][]float64, 300)
	for i := range set {
		s := []float64{rng.NormFloat64(), rng.NormFloat64()}
		set[i] = featureVec(s, 4)
	}
	f.Fit(set)
	if !f.Fitted() {
		t.Fatal("Fit did not build the forest")
	}
	inlier := f.NonconformityScore(featureVec([]float64{0.2, -0.1}, 4))
	outlier := f.NonconformityScore(featureVec([]float64{9, -8}, 4))
	if outlier <= inlier {
		t.Fatalf("outlier score %v should exceed inlier score %v", outlier, inlier)
	}
	if inlier < 0 || inlier > 1 || outlier < 0 || outlier > 1 {
		t.Fatalf("scores out of [0,1]: %v %v", inlier, outlier)
	}
}

func TestPCBForestUnfittedReturnsNeutral(t *testing.T) {
	f, _ := New(Config{Channels: 2, Seed: 4})
	if s := f.NonconformityScore([]float64{1, 2}); s != 0.5 {
		t.Fatalf("unfitted score = %v, want 0.5", s)
	}
}

func TestPCBForestCountersUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f, _ := New(Config{Channels: 1, Trees: 10, Seed: 5})
	set := make([][]float64, 100)
	for i := range set {
		set[i] = []float64{rng.NormFloat64()}
	}
	f.Fit(set)
	for i := 0; i < 20; i++ {
		f.NonconformityScore([]float64{rng.NormFloat64()})
	}
	counters := f.Counters()
	nonZero := 0
	for _, c := range counters {
		if c != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("performance counters never moved")
	}
}

func TestPCBForestPruneAndRegrow(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f, _ := New(Config{Channels: 1, Trees: 12, Seed: 6})
	set := make([][]float64, 150)
	for i := range set {
		set[i] = []float64{rng.NormFloat64()}
	}
	f.Fit(set)
	// Score some points so counters diverge, then trigger the PCB policy.
	for i := 0; i < 50; i++ {
		f.NonconformityScore([]float64{rng.NormFloat64() * 3})
	}
	f.Fit(set) // drift-style refit
	if got := len(f.Counters()); got != 12 {
		t.Fatalf("forest size after refit = %d, want 12", got)
	}
	for _, c := range f.Counters() {
		if c != 0 {
			t.Fatal("counters must reset after the PCB refit")
		}
	}
	if f.Pruned+f.Grown == 0 {
		t.Log("no trees pruned this run (all counters positive) — acceptable")
	}
	// Forest must still score sanely.
	s := f.NonconformityScore([]float64{0})
	if s < 0 || s > 1 {
		t.Fatalf("post-refit score = %v", s)
	}
}

func TestPCBForestEmptyFitIsNoop(t *testing.T) {
	f, _ := New(Config{Channels: 2, Seed: 7})
	f.Fit(nil)
	if f.Fitted() {
		t.Fatal("empty Fit must not mark fitted")
	}
	f.Fit([][]float64{{1}}) // shorter than one stream vector
	if f.Fitted() {
		t.Fatal("too-short vectors must be ignored")
	}
}

func TestPCBForestDeterministicWithSeed(t *testing.T) {
	build := func() float64 {
		rng := rand.New(rand.NewSource(42))
		f, _ := New(Config{Channels: 1, Trees: 15, Seed: 9})
		set := make([][]float64, 120)
		for i := range set {
			set[i] = []float64{rng.NormFloat64()}
		}
		f.Fit(set)
		return f.NonconformityScore([]float64{2.5})
	}
	if build() != build() {
		t.Fatal("same seed must give identical forests")
	}
}

func TestPCBForestScorePanicsOnShortVector(t *testing.T) {
	f, _ := New(Config{Channels: 3, Seed: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.NonconformityScore([]float64{1})
}
