// Package iforest implements the extended isolation forest (Hariri et al.)
// and its streaming variant PCB-iForest (Heigl et al.), which rates each
// tree by a performance counter and, when concept drift is detected,
// discards the negatively contributing trees and grows replacements from
// the current training set.
package iforest

import (
	"math"
	"math/rand"
)

// node is one node of an extended isolation tree. Branching sends a point
// s left when (s − intercept)·normal ≤ 0.
type node struct {
	left, right *node
	normal      []float64
	intercept   []float64
	size        int // number of training points at this node (leaves)
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a single extended isolation tree.
type Tree struct {
	root     *node
	maxDepth int
	sample   int // points used to build the tree
}

const eulerGamma = 0.5772156649015329

// harmonic approximates the i-th harmonic number.
func harmonic(i float64) float64 {
	if i <= 0 {
		return 0
	}
	return math.Log(i) + eulerGamma
}

// AvgPathLength is c(n), the expected path length of an unsuccessful BST
// search among n points; it normalizes isolation depths.
func AvgPathLength(n int) float64 {
	f := float64(n)
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	default:
		return 2*harmonic(f-1) - 2*(f-1)/f
	}
}

// buildTree recursively grows an extended isolation tree over points.
func buildTree(points [][]float64, depth, maxDepth int, rng *rand.Rand) *node {
	n := len(points)
	if n <= 1 || depth >= maxDepth {
		return &node{size: n}
	}
	dim := len(points[0])
	// Per-dimension bounds of the current subset.
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points[1:] {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	degenerate := true
	for d := range lo {
		if hi[d] > lo[d] {
			degenerate = false
			break
		}
	}
	if degenerate {
		// All points identical: cannot split.
		return &node{size: n}
	}
	// Random hyperplane: slope from a standard normal, intercept uniform in
	// the bounding box (the extended isolation forest's diagonal branches).
	normal := make([]float64, dim)
	for d := range normal {
		normal[d] = rng.NormFloat64()
	}
	intercept := make([]float64, dim)
	for d := range intercept {
		intercept[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
	}
	var left, right [][]float64
	for _, p := range points {
		var s float64
		for d, v := range p {
			s += (v - intercept[d]) * normal[d]
		}
		if s <= 0 {
			left = append(left, p)
		} else {
			right = append(right, p)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Unlucky hyperplane missed the set; treat as leaf rather than
		// recursing forever.
		return &node{size: n}
	}
	return &node{
		normal:    normal,
		intercept: intercept,
		left:      buildTree(left, depth+1, maxDepth, rng),
		right:     buildTree(right, depth+1, maxDepth, rng),
		size:      n,
	}
}

// NewTree builds an extended isolation tree from the sample. The depth
// limit is ⌈log2(len(sample))⌉ as in the original algorithm.
func NewTree(sample [][]float64, rng *rand.Rand) *Tree {
	maxDepth := int(math.Ceil(math.Log2(float64(len(sample)) + 1)))
	if maxDepth < 1 {
		maxDepth = 1
	}
	return &Tree{
		root:     buildTree(sample, 0, maxDepth, rng),
		maxDepth: maxDepth,
		sample:   len(sample),
	}
}

// PathLength returns the isolation depth of point s, with the standard
// c(size) adjustment at non-singleton leaves.
func (t *Tree) PathLength(s []float64) float64 {
	n := t.root
	depth := 0.0
	for !n.isLeaf() {
		var v float64
		for d, x := range s {
			v += (x - n.intercept[d]) * n.normal[d]
		}
		if v <= 0 {
			n = n.left
		} else {
			n = n.right
		}
		depth++
	}
	return depth + AvgPathLength(n.size)
}

// Score converts an average path length over a forest built from n-point
// samples into the isolation-forest anomaly score 2^(−E(h)/c(n)) ∈ (0,1].
func Score(avgPath float64, n int) float64 {
	c := AvgPathLength(n)
	if c <= 0 {
		return 0.5
	}
	return math.Pow(2, -avgPath/c)
}
