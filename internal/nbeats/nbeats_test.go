package nbeats

import (
	"math"
	"math/rand"
	"testing"
)

// makeSet builds feature vectors of w rows × channels from a sine series.
func makeSet(rng *rand.Rand, n, rows, channels int) [][]float64 {
	set := make([][]float64, n)
	for i := range set {
		x := make([]float64, rows*channels)
		for r := 0; r < rows; r++ {
			base := 2 + 1.2*math.Sin(0.25*float64(i+r))
			for c := 0; c < channels; c++ {
				x[r*channels+c] = base + 0.1*float64(c) + 0.05*rng.NormFloat64()
			}
		}
		set[i] = x
	}
	return set
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Channels: 0, BackcastRows: 4}); err == nil {
		t.Fatal("expected error for Channels=0")
	}
	if _, err := New(Config{Channels: 1, BackcastRows: 0}); err == nil {
		t.Fatal("expected error for BackcastRows=0")
	}
	m, err := New(Config{Channels: 2, BackcastRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Channels() != 2 || m.BackcastRows() != 8 || m.Blocks() != 3 {
		t.Fatalf("model shape: ch=%d rows=%d blocks=%d", m.Channels(), m.BackcastRows(), m.Blocks())
	}
}

func TestBasisKindString(t *testing.T) {
	if GenericBasis.String() != "generic" || TrendBasis.String() != "trend" ||
		SeasonalityBasis.String() != "seasonality" {
		t.Fatal("basis names wrong")
	}
}

func TestGradientCheckTinyModel(t *testing.T) {
	// Finite-difference check through the full residual stack.
	rng := rand.New(rand.NewSource(1))
	m, err := New(Config{Channels: 1, BackcastRows: 4, Blocks: 2, Hidden: 5, ThetaDim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 5) // 4 history rows + 1 target
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Fix the scaler from a small sample so z is a non-trivial vector.
	sample := [][]float64{x}
	for k := 0; k < 5; k++ {
		y := make([]float64, len(x))
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		sample = append(sample, y)
	}
	m.scaler.Fit(sample)
	z := m.scaler.Transform(x, nil)
	input, target := z[:4], z[4:]

	loss := func() float64 {
		forecast := m.forward(input)
		var l float64
		for i := range forecast {
			d := forecast[i] - target[i]
			l += d * d
		}
		return l / (2 * float64(len(forecast)))
	}
	// Analytic gradients via step's internals: replicate by calling step on
	// a copy of parameters is complex; instead check by comparing numeric
	// gradient direction with an actual training step's loss reduction.
	before := loss()
	for i := 0; i < 20; i++ {
		m.step(z)
	}
	after := loss()
	if after >= before {
		t.Fatalf("residual-stack training failed to reduce loss: %v → %v", before, after)
	}
}

func TestLearnsToForecast(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, channels := 9, 2 // 8 backcast + 1 target
	set := makeSet(rng, 200, rows, channels)
	m, _ := New(Config{Channels: channels, BackcastRows: rows - 1, Seed: 2})
	for e := 0; e < 20; e++ {
		m.Fit(set)
	}
	var modelErr, persistErr float64
	for _, x := range set[150:] {
		target, pred := m.Predict(x)
		prev := x[(rows-2)*channels : (rows-1)*channels]
		for c := range target {
			modelErr += (pred[c] - target[c]) * (pred[c] - target[c])
			persistErr += (prev[c] - target[c]) * (prev[c] - target[c])
		}
	}
	if modelErr >= persistErr {
		t.Fatalf("N-BEATS (%v) should beat persistence (%v)", modelErr, persistErr)
	}
}

func TestInterpretableConfiguration(t *testing.T) {
	m, err := NewInterpretable(Config{Channels: 1, BackcastRows: 8, Blocks: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Blocks() != 4 {
		t.Fatalf("Blocks = %d", m.Blocks())
	}
	kinds := map[BasisKind]int{}
	for _, b := range m.blocks {
		kinds[b.kind]++
	}
	if kinds[TrendBasis] != 2 || kinds[SeasonalityBasis] != 2 {
		t.Fatalf("basis mix = %v", kinds)
	}
	// It must train without NaNs.
	rng := rand.New(rand.NewSource(3))
	set := makeSet(rng, 60, 9, 1)
	for e := 0; e < 5; e++ {
		m.Fit(set)
	}
	_, pred := m.Predict(set[0])
	if math.IsNaN(pred[0]) {
		t.Fatal("interpretable N-BEATS produced NaN")
	}
}

func TestTrendBasisModel(t *testing.T) {
	m, err := New(Config{Channels: 1, BackcastRows: 6, Basis: TrendBasis, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	set := makeSet(rng, 50, 7, 1)
	before := forecastMSE(m, set)
	for e := 0; e < 15; e++ {
		m.Fit(set)
	}
	after := forecastMSE(m, set)
	if after >= before {
		t.Fatalf("trend-basis training did not improve: %v → %v", before, after)
	}
}

func forecastMSE(m *Model, set [][]float64) float64 {
	var s float64
	for _, x := range set {
		target, pred := m.Predict(x)
		for c := range target {
			s += (pred[c] - target[c]) * (pred[c] - target[c])
		}
	}
	return s
}

func TestPredictPanicsOnWrongShape(t *testing.T) {
	m, _ := New(Config{Channels: 2, BackcastRows: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict(make([]float64, 6))
}

func TestFitSkipsWrongShape(t *testing.T) {
	m, _ := New(Config{Channels: 1, BackcastRows: 4, Seed: 5})
	m.Fit([][]float64{make([]float64, 3)}) // ignored, no panic
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	set := makeSet(rng, 40, 7, 1)
	run := func() float64 {
		m, _ := New(Config{Channels: 1, BackcastRows: 6, Seed: 11})
		m.Fit(set)
		_, pred := m.Predict(set[0])
		return pred[0]
	}
	if run() != run() {
		t.Fatal("same seed must give identical models")
	}
}
