package nbeats

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"streamad/internal/nn"
)

// linearState snapshots one standalone Linear layer.
type linearState struct {
	W []float64
	B []float64
}

func saveLinear(l *nn.Linear) linearState {
	return linearState{
		W: append([]float64(nil), l.Weight.W...),
		B: append([]float64(nil), l.Bias.W...),
	}
}

func restoreLinear(l *nn.Linear, st linearState) error {
	if len(st.W) != len(l.Weight.W) || len(st.B) != len(l.Bias.W) {
		return fmt.Errorf("nbeats: linear shape mismatch")
	}
	copy(l.Weight.W, st.W)
	copy(l.Bias.W, st.B)
	return nil
}

// blockState snapshots one block's learned parameters; fixed bases are
// regenerated from the configuration.
type blockState struct {
	Kind   int
	Stack  []byte
	ThetaB linearState
	ThetaF linearState
	BasisB linearState // generic basis only
	BasisF linearState
}

// state is the serializable form of the N-BEATS model, including the Adam
// moment estimates so resumed fine-tuning continues the exact optimizer
// trajectory.
type state struct {
	Channels int
	BackLen  int
	Blocks   []blockState
	Scaler   []byte
	Opt      []byte
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Model) MarshalBinary() ([]byte, error) {
	st := state{Channels: m.channels, BackLen: m.backLen}
	sc, err := m.scaler.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st.Scaler = sc
	opt, err := nn.SaveOptimizer(m.opt, m.params())
	if err != nil {
		return nil, err
	}
	st.Opt = opt
	for _, b := range m.blocks {
		stack, err := b.stack.MarshalBinary()
		if err != nil {
			return nil, err
		}
		bs := blockState{
			Kind:   int(b.kind),
			Stack:  stack,
			ThetaB: saveLinear(b.thetaB),
			ThetaF: saveLinear(b.thetaF),
		}
		if b.kind == GenericBasis {
			bs.BasisB = saveLinear(b.basisB)
			bs.BasisF = saveLinear(b.basisF)
		}
		st.Blocks = append(st.Blocks, bs)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nbeats: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver must
// have been constructed with the same configuration (blocks, sizes,
// bases).
func (m *Model) UnmarshalBinary(data []byte) error {
	var st state
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("nbeats: decode: %w", err)
	}
	if st.Channels != m.channels || st.BackLen != m.backLen || len(st.Blocks) != len(m.blocks) {
		return fmt.Errorf("nbeats: snapshot shape (N=%d rows=%d blocks=%d) does not match model (N=%d rows=%d blocks=%d)",
			st.Channels, st.BackLen, len(st.Blocks), m.channels, m.backLen, len(m.blocks))
	}
	for i, bs := range st.Blocks {
		if BasisKind(bs.Kind) != m.blocks[i].kind {
			return fmt.Errorf("nbeats: block %d basis %v != %v", i, BasisKind(bs.Kind), m.blocks[i].kind)
		}
	}
	if err := m.scaler.UnmarshalBinary(st.Scaler); err != nil {
		return err
	}
	for i, bs := range st.Blocks {
		b := m.blocks[i]
		if err := b.stack.UnmarshalBinary(bs.Stack); err != nil {
			return err
		}
		if err := restoreLinear(b.thetaB, bs.ThetaB); err != nil {
			return err
		}
		if err := restoreLinear(b.thetaF, bs.ThetaF); err != nil {
			return err
		}
		if b.kind == GenericBasis {
			if err := restoreLinear(b.basisB, bs.BasisB); err != nil {
				return err
			}
			if err := restoreLinear(b.basisF, bs.BasisF); err != nil {
				return err
			}
		}
	}
	return nn.LoadOptimizer(m.opt, m.params(), st.Opt)
}
