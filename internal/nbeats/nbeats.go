// Package nbeats implements the N-BEATS forecaster (Oreshkin et al.) in
// the streaming configuration the paper uses: the model forecasts the
// stream vector s_t from the previous w−1 stream vectors contained in the
// data representation. Each block maps its input through a fully connected
// stack to expansion coefficients θᵇ, θᶠ that are projected onto backcast
// and forecast basis vectors; blocks are chained with the double residual
// topology x_{l+1} = x_l − x̂_l, ŷ = Σ_l ŷ_l.
//
// Two basis families are provided: the learned "generic" basis (default)
// and fixed interpretable bases (polynomial trend, Fourier seasonality)
// for the ablation study.
package nbeats

import (
	"fmt"
	"math"
	"math/rand"

	"streamad/internal/nn"
	"streamad/internal/randstate"
)

// BasisKind selects the expansion basis of a block.
type BasisKind int

const (
	// GenericBasis learns the basis vectors (a plain linear projection).
	GenericBasis BasisKind = iota
	// TrendBasis uses fixed low-order polynomials of time.
	TrendBasis
	// SeasonalityBasis uses fixed Fourier harmonics of time.
	SeasonalityBasis
)

// String returns the basis name.
func (b BasisKind) String() string {
	switch b {
	case GenericBasis:
		return "generic"
	case TrendBasis:
		return "trend"
	case SeasonalityBasis:
		return "seasonality"
	default:
		return fmt.Sprintf("BasisKind(%d)", int(b))
	}
}

// block is one N-BEATS block.
type block struct {
	stack  *nn.MLP     // input → hidden h_l
	thetaB *nn.Linear  // h_l → θᵇ
	thetaF *nn.Linear  // h_l → θᶠ
	basisB *nn.Linear  // θᵇ → backcast (generic) …
	basisF *nn.Linear  // θᶠ → forecast
	fixedB [][]float64 // … or fixed basis matrices (rows = outputs)
	fixedF [][]float64
	kind   BasisKind
}

// blockScratch holds one block's preallocated forward/backward state:
// the FC-stack context, the expansion coefficients (which double as the
// basis layers' backward inputs) and their gradient buffers. h aliases
// the stack context's output.
type blockScratch struct {
	stackCtx         *nn.MLPContext
	h                []float64
	thetaB, thetaF   []float64
	gThetaB, gThetaF []float64
}

// Model is an N-BEATS forecaster over N-channel streams. Inputs are
// standardized with per-dimension moments refreshed at every Fit, and
// forecasts are mapped back to the original space.
type Model struct {
	blocks   []*block
	opt      nn.Optimizer
	scaler   *nn.Scaler
	channels int
	backLen  int     // w−1 rows of history
	inDim    int     // backLen·channels
	lr       float64 //streamad:transient learning rate fixed at construction; snapshots restore onto an identically-configured model

	// Preallocated hot-path scratch (see initScratch): the whole
	// forward/backward pass runs without heap allocations.
	scratch     []*blockScratch
	zbuf        []float64
	xbuf        []float64 // in-place residual x_l
	backBuf     []float64 // current block's backcast
	foreBuf     []float64 // accumulated forecast
	targetBuf   []float64
	gForecast   []float64
	gx, negGx   []float64
	gh, ghB     []float64
	paramsCache []*nn.Param
}

// initScratch builds the reusable buffers; it must run after blocks are
// assembled.
func (m *Model) initScratch() {
	outDim := m.channels
	m.zbuf = make([]float64, m.inDim+outDim)
	m.xbuf = make([]float64, m.inDim)
	m.backBuf = make([]float64, m.inDim)
	m.foreBuf = make([]float64, outDim)
	m.targetBuf = make([]float64, outDim)
	m.gForecast = make([]float64, outDim)
	m.gx = make([]float64, m.inDim)
	m.negGx = make([]float64, m.inDim)
	m.scratch = make([]*blockScratch, len(m.blocks))
	hidden := 0
	for i, b := range m.blocks {
		theta := b.thetaB.Out
		m.scratch[i] = &blockScratch{
			stackCtx: b.stack.NewContext(),
			thetaB:   make([]float64, theta),
			thetaF:   make([]float64, theta),
			gThetaB:  make([]float64, theta),
			gThetaF:  make([]float64, theta),
		}
		if h := b.stack.OutDim(); h > hidden {
			hidden = h
		}
	}
	m.gh = make([]float64, hidden)
	m.ghB = make([]float64, hidden)
	var ps []*nn.Param
	for _, b := range m.blocks {
		ps = append(ps, b.stack.Params()...)
		ps = append(ps, b.thetaB.Params()...)
		ps = append(ps, b.thetaF.Params()...)
		if b.kind == GenericBasis {
			ps = append(ps, b.basisB.Params()...)
			ps = append(ps, b.basisF.Params()...)
		}
	}
	m.paramsCache = ps
}

// Config parameterizes N-BEATS.
type Config struct {
	// Channels is the stream dimensionality N.
	Channels int
	// BackcastRows is the history length in stream rows (w−1 when the data
	// representation holds w rows including the forecast target).
	BackcastRows int
	// Blocks is the number of stacked blocks (default 3).
	Blocks int
	// Hidden is the FC-stack width (default 64).
	Hidden int
	// ThetaDim is the expansion-coefficient length per head (default 16).
	ThetaDim int
	// Basis selects the expansion basis for every block (default generic).
	// For the interpretable configuration pass TrendBasis or
	// SeasonalityBasis; mixed stacks can be built with NewInterpretable.
	Basis BasisKind
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives weight initialization.
	Seed int64
}

// New returns an initialized N-BEATS model with homogeneous blocks.
func New(cfg Config) (*Model, error) {
	bases := make([]BasisKind, defaultInt(cfg.Blocks, 3))
	for i := range bases {
		bases[i] = cfg.Basis
	}
	return newWithBases(cfg, bases)
}

// NewInterpretable returns the interpretable two-stack configuration of
// the original paper: trend blocks followed by seasonality blocks.
func NewInterpretable(cfg Config) (*Model, error) {
	n := defaultInt(cfg.Blocks, 4)
	if n < 2 {
		n = 2
	}
	bases := make([]BasisKind, n)
	for i := range bases {
		if i < n/2 {
			bases[i] = TrendBasis
		} else {
			bases[i] = SeasonalityBasis
		}
	}
	return newWithBases(cfg, bases)
}

func defaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func newWithBases(cfg Config, bases []BasisKind) (*Model, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("nbeats: Channels must be positive, got %d", cfg.Channels)
	}
	if cfg.BackcastRows <= 0 {
		return nil, fmt.Errorf("nbeats: BackcastRows must be positive, got %d", cfg.BackcastRows)
	}
	hidden := defaultInt(cfg.Hidden, 64)
	theta := defaultInt(cfg.ThetaDim, 16)
	lr := cfg.LR
	if lr == 0 {
		lr = 1e-3
	}
	rng := rand.New(randstate.NewCountedSource(cfg.Seed))
	inDim := cfg.BackcastRows * cfg.Channels
	outDim := cfg.Channels
	m := &Model{
		opt:      nn.NewAdam(lr),
		scaler:   nn.NewScaler(inDim + outDim),
		channels: cfg.Channels,
		backLen:  cfg.BackcastRows,
		inDim:    inDim,
		lr:       lr,
	}
	for _, kind := range bases {
		b := &block{
			stack:  nn.NewMLP([]int{inDim, hidden, hidden}, nn.ReLU{}, nn.ReLU{}, rng),
			thetaB: nn.NewLinear(hidden, theta, rng),
			thetaF: nn.NewLinear(hidden, theta, rng),
			kind:   kind,
		}
		switch kind {
		case GenericBasis:
			b.basisB = nn.NewLinear(theta, inDim, rng)
			b.basisF = nn.NewLinear(theta, outDim, rng)
		case TrendBasis:
			b.fixedB = polyBasis(cfg.BackcastRows, cfg.Channels, theta, inDim)
			b.fixedF = polyForecastBasis(cfg.Channels, theta, outDim)
		case SeasonalityBasis:
			b.fixedB = fourierBasis(cfg.BackcastRows, cfg.Channels, theta, inDim)
			b.fixedF = polyForecastBasis(cfg.Channels, theta, outDim)
		}
		m.blocks = append(m.blocks, b)
	}
	m.initScratch()
	return m, nil
}

// CloneModel returns a full-fidelity deep copy — weights, Adam moments
// and scaler — for the asynchronous fine-tuning path. Fixed basis
// matrices are immutable and shared.
func (m *Model) CloneModel() any {
	c := &Model{
		scaler:   m.scaler.Clone(),
		channels: m.channels,
		backLen:  m.backLen,
		inDim:    m.inDim,
		lr:       m.lr,
	}
	for _, b := range m.blocks {
		nb := &block{
			stack:  b.stack.Clone(),
			thetaB: b.thetaB.Clone(),
			thetaF: b.thetaF.Clone(),
			fixedB: b.fixedB,
			fixedF: b.fixedF,
			kind:   b.kind,
		}
		if b.kind == GenericBasis {
			nb.basisB = b.basisB.Clone()
			nb.basisF = b.basisF.Clone()
		}
		c.blocks = append(c.blocks, nb)
	}
	c.initScratch()
	if opt := nn.CloneOptimizer(m.opt, m.params(), c.params()); opt != nil {
		c.opt = opt
	} else {
		c.opt = nn.NewAdam(m.lr)
	}
	return c
}

// polyBasis builds fixed polynomial backcast basis rows: output element
// (row r, channel c) gets value t_r^k for coefficient k (channels share
// coefficients, matching the shared-θ design for multivariate streams).
func polyBasis(rows, channels, theta, outDim int) [][]float64 {
	basis := make([][]float64, outDim)
	for r := 0; r < rows; r++ {
		t := float64(r) / float64(rows)
		for c := 0; c < channels; c++ {
			row := make([]float64, theta)
			for k := 0; k < theta; k++ {
				row[k] = math.Pow(t, float64(k%4)) // cap degree at 3
			}
			basis[r*channels+c] = row
		}
	}
	return basis
}

// polyForecastBasis builds the forecast basis at horizon t=1.
func polyForecastBasis(channels, theta, outDim int) [][]float64 {
	basis := make([][]float64, outDim)
	for c := 0; c < channels; c++ {
		row := make([]float64, theta)
		for k := 0; k < theta; k++ {
			row[k] = 1 // t=1 ⇒ t^k = 1
		}
		basis[c] = row
	}
	return basis
}

// fourierBasis builds fixed Fourier backcast basis rows: harmonics of the
// normalized time index, alternating cos/sin.
func fourierBasis(rows, channels, theta, outDim int) [][]float64 {
	basis := make([][]float64, outDim)
	for r := 0; r < rows; r++ {
		t := float64(r) / float64(rows)
		for c := 0; c < channels; c++ {
			row := make([]float64, theta)
			for k := 0; k < theta; k++ {
				h := float64(k/2 + 1)
				if k%2 == 0 {
					row[k] = math.Cos(2 * math.Pi * h * t)
				} else {
					row[k] = math.Sin(2 * math.Pi * h * t)
				}
			}
			basis[r*channels+c] = row
		}
	}
	return basis
}

// Channels returns N.
func (m *Model) Channels() int { return m.channels }

// BackcastRows returns the history length in rows.
func (m *Model) BackcastRows() int { return m.backLen }

// Blocks returns the number of blocks.
func (m *Model) Blocks() int { return len(m.blocks) }

// forward runs the residual stack through the preallocated scratch,
// returning the total forecast (aliasing foreBuf, valid until the next
// forward). Residual inputs live in the stack contexts; the in-place
// x_{l+1} = x_l − x̂_l update runs in xbuf.
//
//streamad:hotpath
func (m *Model) forward(input []float64) []float64 {
	forecast := m.foreBuf
	for i := range forecast {
		forecast[i] = 0
	}
	x := m.xbuf
	copy(x, input)
	// gForecast is free during forward passes, so it doubles as the
	// per-block forecast buffer before accumulation.
	fore := m.gForecast
	for l, b := range m.blocks {
		sc := m.scratch[l]
		sc.h = b.stack.ForwardCtx(sc.stackCtx, x)
		b.thetaB.ForwardInto(sc.h, sc.thetaB)
		b.thetaF.ForwardInto(sc.h, sc.thetaF)
		back := m.backBuf
		switch b.kind {
		case GenericBasis:
			b.basisB.ForwardInto(sc.thetaB, back)
			b.basisF.ForwardInto(sc.thetaF, fore)
		default:
			applyFixedInto(b.fixedB, sc.thetaB, back)
			applyFixedInto(b.fixedF, sc.thetaF, fore)
		}
		for i := range x {
			x[i] -= back[i]
		}
		for i := range forecast {
			forecast[i] += fore[i]
		}
	}
	return forecast
}

// applyFixedInto computes basis·θ for a fixed basis matrix stored
// row-wise, writing into out.
//
//streamad:hotpath
func applyFixedInto(basis [][]float64, theta, out []float64) {
	for i, row := range basis {
		var s float64
		for k, v := range row {
			s += v * theta[k]
		}
		out[i] = s
	}
}

// fixedGradInto backpropagates gradOut through a fixed basis into g:
// ∂L/∂θ = Bᵀ·gradOut.
//
//streamad:hotpath
func fixedGradInto(basis [][]float64, gradOut, g []float64) {
	for i := range g {
		g[i] = 0
	}
	for i, row := range basis {
		go_ := gradOut[i]
		if go_ == 0 {
			continue
		}
		for k, v := range row {
			g[k] += v * go_
		}
	}
}

// Predict implements the framework model contract: given the feature
// vector x ∈ R^{w×N} it forecasts the final row from the preceding w−1
// rows, returning (target = s_t, prediction = ŝ_t).
//
//streamad:hotpath
func (m *Model) Predict(x []float64) (target, pred []float64) {
	rows := len(x) / m.channels
	if rows*m.channels != len(x) || rows != m.backLen+1 {
		//streamad:ignore hotalloc panic message on shape violation only
		panic(fmt.Sprintf("nbeats: expected %d rows of %d channels, got %d values",
			m.backLen+1, m.channels, len(x)))
	}
	z := m.scaler.Transform(x, m.zbuf)
	target = m.targetBuf
	copy(target, x[m.backLen*m.channels:])
	pred = m.forward(z[:m.inDim])
	return target, m.scaler.InverseSub(pred, pred, m.inDim)
}

// Fit refreshes the input scaler and runs one forecasting epoch
// (per-sample Adam steps) over the training set.
func (m *Model) Fit(set [][]float64) {
	m.scaler.Fit(set)
	for _, x := range set {
		if len(x) != m.inDim+m.channels {
			continue
		}
		m.step(m.scaler.Transform(x, m.zbuf))
	}
}

// step trains on one standardized feature vector, allocation-free: the
// block inputs live in the stack contexts, all gradients run through the
// model's preallocated buffers.
func (m *Model) step(x []float64) {
	input := x[:m.inDim]
	target := x[m.inDim:]
	forecast := m.forward(input)
	_, gForecast := nn.MSELoss(forecast, target, m.gForecast)

	// Backward through the residual topology: every block's forecast head
	// receives gForecast; the residual gradient g_x flows backwards through
	// x_{l+1} = x_l − x̂_l, so the block's backcast head receives −g_x and
	// the block's FC stack accumulates both head gradients; g_x for block
	// l−1 is g_x plus the stack's input gradient.
	gx := m.gx // gradient wrt x after the last block: 0
	for i := range gx {
		gx[i] = 0
	}
	for l := len(m.blocks) - 1; l >= 0; l-- {
		b := m.blocks[l]
		sc := m.scratch[l]
		// Forecast head.
		if b.kind == GenericBasis {
			b.basisF.BackwardInto(sc.thetaF, gForecast, sc.gThetaF)
		} else {
			fixedGradInto(b.fixedF, gForecast, sc.gThetaF)
		}
		// Backcast head: x̂_l enters as −g_x.
		negGx := m.negGx
		for i, v := range gx {
			negGx[i] = -v
		}
		if b.kind == GenericBasis {
			b.basisB.BackwardInto(sc.thetaB, negGx, sc.gThetaB)
		} else {
			fixedGradInto(b.fixedB, negGx, sc.gThetaB)
		}
		hidden := b.stack.OutDim()
		gh, ghB := m.gh[:hidden], m.ghB[:hidden]
		b.thetaF.BackwardInto(sc.h, sc.gThetaF, gh)
		b.thetaB.BackwardInto(sc.h, sc.gThetaB, ghB)
		for i := range gh {
			gh[i] += ghB[i]
		}
		gIn := b.stack.BackwardCtx(sc.stackCtx, gh)
		// Residual pass-through: x_{l+1} = x_l − x̂_l contributes g_x to the
		// previous block's input gradient as well.
		for i := range gx {
			gx[i] += gIn[i]
		}
	}
	params := m.params()
	nn.ClipGrads(params, 5)
	m.opt.Step(params)
}

func (m *Model) params() []*nn.Param {
	if m.paramsCache == nil {
		m.initScratch()
	}
	return m.paramsCache
}
