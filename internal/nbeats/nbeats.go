// Package nbeats implements the N-BEATS forecaster (Oreshkin et al.) in
// the streaming configuration the paper uses: the model forecasts the
// stream vector s_t from the previous w−1 stream vectors contained in the
// data representation. Each block maps its input through a fully connected
// stack to expansion coefficients θᵇ, θᶠ that are projected onto backcast
// and forecast basis vectors; blocks are chained with the double residual
// topology x_{l+1} = x_l − x̂_l, ŷ = Σ_l ŷ_l.
//
// Two basis families are provided: the learned "generic" basis (default)
// and fixed interpretable bases (polynomial trend, Fourier seasonality)
// for the ablation study.
package nbeats

import (
	"fmt"
	"math"
	"math/rand"

	"streamad/internal/nn"
)

// BasisKind selects the expansion basis of a block.
type BasisKind int

const (
	// GenericBasis learns the basis vectors (a plain linear projection).
	GenericBasis BasisKind = iota
	// TrendBasis uses fixed low-order polynomials of time.
	TrendBasis
	// SeasonalityBasis uses fixed Fourier harmonics of time.
	SeasonalityBasis
)

// String returns the basis name.
func (b BasisKind) String() string {
	switch b {
	case GenericBasis:
		return "generic"
	case TrendBasis:
		return "trend"
	case SeasonalityBasis:
		return "seasonality"
	default:
		return fmt.Sprintf("BasisKind(%d)", int(b))
	}
}

// block is one N-BEATS block.
type block struct {
	stack  *nn.MLP     // input → hidden h_l
	thetaB *nn.Linear  // h_l → θᵇ
	thetaF *nn.Linear  // h_l → θᶠ
	basisB *nn.Linear  // θᵇ → backcast (generic) …
	basisF *nn.Linear  // θᶠ → forecast
	fixedB [][]float64 // … or fixed basis matrices (rows = outputs)
	fixedF [][]float64
	kind   BasisKind
}

type blockCtx struct {
	stackCtx  *nn.MLPContext
	thetaBCtx []float64
	thetaFCtx []float64
	basisBCtx []float64
	basisFCtx []float64
	thetaB    []float64
	thetaF    []float64
}

// Model is an N-BEATS forecaster over N-channel streams. Inputs are
// standardized with per-dimension moments refreshed at every Fit, and
// forecasts are mapped back to the original space.
type Model struct {
	blocks   []*block
	opt      nn.Optimizer
	scaler   *nn.Scaler
	channels int
	backLen  int // w−1 rows of history
	inDim    int // backLen·channels
	zbuf     []float64
}

// Config parameterizes N-BEATS.
type Config struct {
	// Channels is the stream dimensionality N.
	Channels int
	// BackcastRows is the history length in stream rows (w−1 when the data
	// representation holds w rows including the forecast target).
	BackcastRows int
	// Blocks is the number of stacked blocks (default 3).
	Blocks int
	// Hidden is the FC-stack width (default 64).
	Hidden int
	// ThetaDim is the expansion-coefficient length per head (default 16).
	ThetaDim int
	// Basis selects the expansion basis for every block (default generic).
	// For the interpretable configuration pass TrendBasis or
	// SeasonalityBasis; mixed stacks can be built with NewInterpretable.
	Basis BasisKind
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives weight initialization.
	Seed int64
}

// New returns an initialized N-BEATS model with homogeneous blocks.
func New(cfg Config) (*Model, error) {
	bases := make([]BasisKind, defaultInt(cfg.Blocks, 3))
	for i := range bases {
		bases[i] = cfg.Basis
	}
	return newWithBases(cfg, bases)
}

// NewInterpretable returns the interpretable two-stack configuration of
// the original paper: trend blocks followed by seasonality blocks.
func NewInterpretable(cfg Config) (*Model, error) {
	n := defaultInt(cfg.Blocks, 4)
	if n < 2 {
		n = 2
	}
	bases := make([]BasisKind, n)
	for i := range bases {
		if i < n/2 {
			bases[i] = TrendBasis
		} else {
			bases[i] = SeasonalityBasis
		}
	}
	return newWithBases(cfg, bases)
}

func defaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func newWithBases(cfg Config, bases []BasisKind) (*Model, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("nbeats: Channels must be positive, got %d", cfg.Channels)
	}
	if cfg.BackcastRows <= 0 {
		return nil, fmt.Errorf("nbeats: BackcastRows must be positive, got %d", cfg.BackcastRows)
	}
	hidden := defaultInt(cfg.Hidden, 64)
	theta := defaultInt(cfg.ThetaDim, 16)
	lr := cfg.LR
	if lr == 0 {
		lr = 1e-3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inDim := cfg.BackcastRows * cfg.Channels
	outDim := cfg.Channels
	m := &Model{
		opt:      nn.NewAdam(lr),
		scaler:   nn.NewScaler(inDim + outDim),
		channels: cfg.Channels,
		backLen:  cfg.BackcastRows,
		inDim:    inDim,
		zbuf:     make([]float64, inDim+outDim),
	}
	for _, kind := range bases {
		b := &block{
			stack:  nn.NewMLP([]int{inDim, hidden, hidden}, nn.ReLU{}, nn.ReLU{}, rng),
			thetaB: nn.NewLinear(hidden, theta, rng),
			thetaF: nn.NewLinear(hidden, theta, rng),
			kind:   kind,
		}
		switch kind {
		case GenericBasis:
			b.basisB = nn.NewLinear(theta, inDim, rng)
			b.basisF = nn.NewLinear(theta, outDim, rng)
		case TrendBasis:
			b.fixedB = polyBasis(cfg.BackcastRows, cfg.Channels, theta, inDim)
			b.fixedF = polyForecastBasis(cfg.Channels, theta, outDim)
		case SeasonalityBasis:
			b.fixedB = fourierBasis(cfg.BackcastRows, cfg.Channels, theta, inDim)
			b.fixedF = polyForecastBasis(cfg.Channels, theta, outDim)
		}
		m.blocks = append(m.blocks, b)
	}
	return m, nil
}

// polyBasis builds fixed polynomial backcast basis rows: output element
// (row r, channel c) gets value t_r^k for coefficient k (channels share
// coefficients, matching the shared-θ design for multivariate streams).
func polyBasis(rows, channels, theta, outDim int) [][]float64 {
	basis := make([][]float64, outDim)
	for r := 0; r < rows; r++ {
		t := float64(r) / float64(rows)
		for c := 0; c < channels; c++ {
			row := make([]float64, theta)
			for k := 0; k < theta; k++ {
				row[k] = math.Pow(t, float64(k%4)) // cap degree at 3
			}
			basis[r*channels+c] = row
		}
	}
	return basis
}

// polyForecastBasis builds the forecast basis at horizon t=1.
func polyForecastBasis(channels, theta, outDim int) [][]float64 {
	basis := make([][]float64, outDim)
	for c := 0; c < channels; c++ {
		row := make([]float64, theta)
		for k := 0; k < theta; k++ {
			row[k] = 1 // t=1 ⇒ t^k = 1
		}
		basis[c] = row
	}
	return basis
}

// fourierBasis builds fixed Fourier backcast basis rows: harmonics of the
// normalized time index, alternating cos/sin.
func fourierBasis(rows, channels, theta, outDim int) [][]float64 {
	basis := make([][]float64, outDim)
	for r := 0; r < rows; r++ {
		t := float64(r) / float64(rows)
		for c := 0; c < channels; c++ {
			row := make([]float64, theta)
			for k := 0; k < theta; k++ {
				h := float64(k/2 + 1)
				if k%2 == 0 {
					row[k] = math.Cos(2 * math.Pi * h * t)
				} else {
					row[k] = math.Sin(2 * math.Pi * h * t)
				}
			}
			basis[r*channels+c] = row
		}
	}
	return basis
}

// Channels returns N.
func (m *Model) Channels() int { return m.channels }

// BackcastRows returns the history length in rows.
func (m *Model) BackcastRows() int { return m.backLen }

// Blocks returns the number of blocks.
func (m *Model) Blocks() int { return len(m.blocks) }

// forward runs the residual stack, returning the total forecast and the
// per-block contexts plus residual inputs needed for backprop.
func (m *Model) forward(input []float64) (forecast []float64, ctxs []*blockCtx, residuals [][]float64) {
	forecast = make([]float64, m.channels)
	x := make([]float64, len(input))
	copy(x, input)
	for _, b := range m.blocks {
		ctx := &blockCtx{}
		h, sc := b.stack.Forward(x)
		ctx.stackCtx = sc
		var back, fore []float64
		ctx.thetaB, ctx.thetaBCtx = b.thetaB.Forward(h)
		ctx.thetaF, ctx.thetaFCtx = b.thetaF.Forward(h)
		switch b.kind {
		case GenericBasis:
			back, ctx.basisBCtx = b.basisB.Forward(ctx.thetaB)
			fore, ctx.basisFCtx = b.basisF.Forward(ctx.thetaF)
		default:
			back = applyFixed(b.fixedB, ctx.thetaB)
			fore = applyFixed(b.fixedF, ctx.thetaF)
		}
		residuals = append(residuals, x)
		nx := make([]float64, len(x))
		for i := range x {
			nx[i] = x[i] - back[i]
		}
		for i := range forecast {
			forecast[i] += fore[i]
		}
		ctxs = append(ctxs, ctx)
		x = nx
	}
	return forecast, ctxs, residuals
}

// applyFixed computes basis·θ for a fixed basis matrix stored row-wise.
func applyFixed(basis [][]float64, theta []float64) []float64 {
	out := make([]float64, len(basis))
	for i, row := range basis {
		var s float64
		for k, v := range row {
			s += v * theta[k]
		}
		out[i] = s
	}
	return out
}

// fixedGrad backpropagates gradOut through a fixed basis: ∂L/∂θ = Bᵀ·g.
func fixedGrad(basis [][]float64, gradOut []float64) []float64 {
	if len(basis) == 0 {
		return nil
	}
	g := make([]float64, len(basis[0]))
	for i, row := range basis {
		go_ := gradOut[i]
		if go_ == 0 {
			continue
		}
		for k, v := range row {
			g[k] += v * go_
		}
	}
	return g
}

// Predict implements the framework model contract: given the feature
// vector x ∈ R^{w×N} it forecasts the final row from the preceding w−1
// rows, returning (target = s_t, prediction = ŝ_t).
func (m *Model) Predict(x []float64) (target, pred []float64) {
	rows := len(x) / m.channels
	if rows*m.channels != len(x) || rows != m.backLen+1 {
		panic(fmt.Sprintf("nbeats: expected %d rows of %d channels, got %d values",
			m.backLen+1, m.channels, len(x)))
	}
	z := m.scaler.Transform(x, m.zbuf)
	target = make([]float64, m.channels)
	copy(target, x[m.backLen*m.channels:])
	pred, _, _ = m.forward(z[:m.inDim])
	return target, m.scaler.InverseSub(pred, pred, m.inDim)
}

// Fit refreshes the input scaler and runs one forecasting epoch
// (per-sample Adam steps) over the training set.
func (m *Model) Fit(set [][]float64) {
	m.scaler.Fit(set)
	for _, x := range set {
		if len(x) != m.inDim+m.channels {
			continue
		}
		m.step(m.scaler.Transform(x, m.zbuf))
	}
}

// step trains on one standardized feature vector.
func (m *Model) step(x []float64) {
	input := x[:m.inDim]
	target := x[m.inDim:]
	forecast, ctxs, _ := m.forward(input)
	_, gForecast := nn.MSELoss(forecast, target, nil)

	// Backward through the residual topology: every block's forecast head
	// receives gForecast; the residual gradient g_x flows backwards through
	// x_{l+1} = x_l − x̂_l, so the block's backcast head receives −g_x and
	// the block's FC stack accumulates both head gradients; g_x for block
	// l−1 is g_x plus the stack's input gradient.
	gx := make([]float64, m.inDim) // gradient wrt x after the last block: 0
	for l := len(m.blocks) - 1; l >= 0; l-- {
		b := m.blocks[l]
		ctx := ctxs[l]
		// Forecast head.
		var gThetaF []float64
		if b.kind == GenericBasis {
			gThetaF = b.basisF.Backward(ctx.basisFCtx, gForecast)
		} else {
			gThetaF = fixedGrad(b.fixedF, gForecast)
		}
		// Backcast head: x̂_l enters as −g_x.
		negGx := make([]float64, len(gx))
		for i, v := range gx {
			negGx[i] = -v
		}
		var gThetaB []float64
		if b.kind == GenericBasis {
			gThetaB = b.basisB.Backward(ctx.basisBCtx, negGx)
		} else {
			gThetaB = fixedGrad(b.fixedB, negGx)
		}
		gh := b.thetaF.Backward(ctx.thetaFCtx, gThetaF)
		ghB := b.thetaB.Backward(ctx.thetaBCtx, gThetaB)
		for i := range gh {
			gh[i] += ghB[i]
		}
		gIn := b.stack.Backward(ctx.stackCtx, gh)
		// Residual pass-through: x_{l+1} = x_l − x̂_l contributes g_x to the
		// previous block's input gradient as well.
		for i := range gx {
			gx[i] += gIn[i]
		}
	}
	params := m.params()
	nn.ClipGrads(params, 5)
	m.opt.Step(params)
}

func (m *Model) params() []*nn.Param {
	var ps []*nn.Param
	for _, b := range m.blocks {
		ps = append(ps, b.stack.Params()...)
		ps = append(ps, b.thetaB.Params()...)
		ps = append(ps, b.thetaF.Params()...)
		if b.kind == GenericBasis {
			ps = append(ps, b.basisB.Params()...)
			ps = append(ps, b.basisF.Params()...)
		}
	}
	return ps
}
