package score

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// MarshalBinary implements encoding.BinaryMarshaler; Raw has no state.
func (Raw) MarshalBinary() ([]byte, error) { return []byte{}, nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler for Raw.
func (Raw) UnmarshalBinary([]byte) error { return nil }

// averageState is the serializable form of the Average scorer.
type averageState struct {
	Ring []byte
	Sum  float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Average) MarshalBinary() ([]byte, error) {
	ring, err := s.ring.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(averageState{Ring: ring, Sum: s.sum}); err != nil {
		return nil, fmt.Errorf("score: encode average: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// window size must match the snapshot.
func (s *Average) UnmarshalBinary(data []byte) error {
	var st averageState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("score: decode average: %w", err)
	}
	if err := s.ring.UnmarshalBinary(st.Ring); err != nil {
		return err
	}
	s.sum = st.Sum
	return nil
}

// likelihoodState is the serializable form of the AnomalyLikelihood scorer.
type likelihoodState struct {
	Long   []byte
	Short  []byte
	SumL   float64
	SumSqL float64
	SumS   float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *AnomalyLikelihood) MarshalBinary() ([]byte, error) {
	long, err := s.long.MarshalBinary()
	if err != nil {
		return nil, err
	}
	short, err := s.short.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(likelihoodState{
		Long: long, Short: short, SumL: s.sumL, SumSqL: s.sumSqL, SumS: s.sumS,
	})
	if err != nil {
		return nil, fmt.Errorf("score: encode likelihood: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// window sizes must match the snapshot.
func (s *AnomalyLikelihood) UnmarshalBinary(data []byte) error {
	var st likelihoodState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("score: decode likelihood: %w", err)
	}
	if err := s.long.UnmarshalBinary(st.Long); err != nil {
		return err
	}
	if err := s.short.UnmarshalBinary(st.Short); err != nil {
		return err
	}
	s.sumL, s.sumSqL, s.sumS = st.SumL, st.SumSqL, st.SumS
	return nil
}

// staticState is the serializable form of a StaticThresholder.
type staticState struct {
	T float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *StaticThresholder) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(staticState{T: s.T}); err != nil {
		return nil, fmt.Errorf("score: encode static threshold: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *StaticThresholder) UnmarshalBinary(data []byte) error {
	var st staticState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("score: decode static threshold: %w", err)
	}
	s.T = st.T
	return nil
}

// quantileState is the serializable form of a P² quantile thresholder:
// the five marker positions, desired positions and heights.
type quantileState struct {
	Q       float64
	N       [5]float64
	NP      [5]float64
	DN      [5]float64
	Heights [5]float64
	Count   int
	Dropped int
	Init    []float64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *QuantileThresholder) MarshalBinary() ([]byte, error) {
	st := quantileState{
		Q: p.q, N: p.n, NP: p.np, DN: p.dn, Heights: p.heights,
		Count: p.count, Dropped: p.dropped, Init: append([]float64(nil), p.init...),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("score: encode quantile threshold: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// quantile must match the snapshot.
func (p *QuantileThresholder) UnmarshalBinary(data []byte) error {
	var st quantileState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("score: decode quantile threshold: %w", err)
	}
	if st.Q != p.q {
		return fmt.Errorf("score: quantile snapshot q=%v != receiver q=%v", st.Q, p.q)
	}
	if len(st.Init) > 5 {
		return fmt.Errorf("score: quantile snapshot has %d init values", len(st.Init))
	}
	p.n, p.np, p.dn, p.heights = st.N, st.NP, st.DN, st.Heights
	p.count = st.Count
	p.dropped = st.Dropped
	p.init = append(p.init[:0], st.Init...)
	return nil
}
