// Package score implements the last two components of the extended SAFARI
// framework: nonconformity measures (Definition III.3) that map a model's
// prediction error into a strangeness value in [0,1], and anomaly scoring
// functions (Definition III.4) that map a window of nonconformity scores
// into the final anomaly score f_t.
package score

import (
	"math"

	"streamad/internal/mat"
	"streamad/internal/stats"
	"streamad/internal/window"
)

// Nonconformity maps a (target, prediction) pair to a strangeness value.
type Nonconformity interface {
	// Measure returns a_t ∈ [0,1]; 0 = perfectly normal, 1 = maximally
	// strange.
	Measure(target, pred []float64) float64
	// Name identifies the measure.
	Name() string
}

// Cosine is the paper's cosine-similarity nonconformity a_t = 1 − cos.
// Since 1 − cos ranges over [0,2], the value is halved to satisfy the
// framework's [0,1] requirement without clamping — a hard clamp at 1
// would collapse every anti-correlated prediction onto a single value and
// destroy the ranking information downstream scorers depend on.
type Cosine struct{}

// Measure implements Nonconformity.
//
//streamad:hotpath
func (Cosine) Measure(target, pred []float64) float64 {
	a := (1 - mat.CosineSimilarity(target, pred)) / 2
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// Name implements Nonconformity.
func (Cosine) Name() string { return "cosine" }

// Scorer converts the stream of nonconformity scores a_t into the final
// anomaly scores f_t.
type Scorer interface {
	// Score consumes the next nonconformity value and returns f_t.
	Score(a float64) float64
	// Reset clears accumulated state.
	Reset()
	// Name identifies the scorer.
	Name() string
}

// Raw passes nonconformity scores through unchanged (f_t = a_t); it is the
// baseline the paper compares the window-based scorers against.
type Raw struct{}

// Score implements Scorer.
//
//streamad:hotpath
func (Raw) Score(a float64) float64 { return a }

// Reset implements Scorer.
func (Raw) Reset() {}

// Name implements Scorer.
func (Raw) Name() string { return "raw" }

// Average is the sliding mean of the last k nonconformity scores.
type Average struct {
	ring *window.Ring
	sum  float64
}

// NewAverage returns an averaging scorer over windows of k scores.
func NewAverage(k int) *Average {
	return &Average{ring: window.NewRing(k)}
}

// Score implements Scorer.
//
//streamad:hotpath
func (s *Average) Score(a float64) float64 {
	if old, evicted := s.ring.Push(a); evicted {
		s.sum -= old
	}
	s.sum += a
	return s.sum / float64(s.ring.Len())
}

// Reset implements Scorer.
func (s *Average) Reset() {
	s.ring.Reset()
	s.sum = 0
}

// Name implements Scorer.
func (s *Average) Name() string { return "average" }

// AnomalyLikelihood is the Numenta anomaly likelihood (Lavin & Ahmad):
// it compares a short-term mean μ̃ (window k') against the long-term mean
// μ and deviation σ (window k) of the nonconformity scores,
//
//	f_t = 1 − Q((μ̃_t − μ_t)/σ_t),
//
// where Q is the Gaussian tail function. Scores near 1 indicate that the
// recent strangeness is abnormally high relative to its own history.
//
// Two implementation details follow the reference Numenta code rather
// than the formula sheet: (1) the long window lags the short window, so a
// fresh anomaly does not instantly inflate its own baseline σ, and (2)
// the z-score is soft-capped before the Gaussian map, keeping the output
// strictly monotonic in z instead of collapsing every large deviation to
// exactly 1.0 (which would destroy threshold sweeps on clean streams).
type AnomalyLikelihood struct {
	long   *window.Ring // lagged baseline window (k values)
	short  *window.Ring // most recent k' values
	sumL   float64
	sumSqL float64
	sumS   float64
}

// zCap bounds the z-score softly: zEff = z/√(1+(z/zCap)²).
const zCap = 4.0

// NewAnomalyLikelihood returns an anomaly-likelihood scorer with long
// window k and short window kShort (kShort ≪ k).
func NewAnomalyLikelihood(k, kShort int) *AnomalyLikelihood {
	if kShort >= k {
		panic("score: anomaly likelihood needs kShort < k")
	}
	return &AnomalyLikelihood{
		long:  window.NewRing(k),
		short: window.NewRing(kShort),
	}
}

// Score implements Scorer.
//
//streamad:hotpath
func (s *AnomalyLikelihood) Score(a float64) float64 {
	// The short ring sees the newest value; values it evicts graduate into
	// the lagged long window.
	if graduated, evicted := s.short.Push(a); evicted {
		s.sumS -= graduated
		if old, lEvicted := s.long.Push(graduated); lEvicted {
			s.sumL -= old
			s.sumSqL -= old * old
		}
		s.sumL += graduated
		s.sumSqL += graduated * graduated
	}
	s.sumS += a

	// Until the lagged baseline window is complete the estimate of (μ, σ)
	// is unreliable — report the neutral likelihood instead of spiking on
	// the first few post-warmup scores.
	if !s.long.Full() {
		return 0.5
	}
	nL := float64(s.long.Len())
	mean := s.sumL / nL
	variance := s.sumSqL/nL - mean*mean
	if variance < 1e-12 {
		variance = 1e-12
	}
	sigma := math.Sqrt(variance)
	shortMean := s.sumS / float64(s.short.Len())
	z := (shortMean - mean) / sigma
	z = z / math.Sqrt(1+(z/zCap)*(z/zCap))
	return 1 - stats.QFunc(z)
}

// Reset implements Scorer.
func (s *AnomalyLikelihood) Reset() {
	s.long.Reset()
	s.short.Reset()
	s.sumL, s.sumSqL, s.sumS = 0, 0, 0
}

// Name implements Scorer.
func (s *AnomalyLikelihood) Name() string { return "likelihood" }
