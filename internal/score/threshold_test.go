package score

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestStaticThresholder(t *testing.T) {
	s := &StaticThresholder{T: 0.5}
	if !s.Alert(0.5) || s.Alert(0.49) {
		t.Fatal("static threshold boundary wrong")
	}
	if s.Threshold() != 0.5 || s.Name() != "static" {
		t.Fatal("accessors wrong")
	}
}

func TestQuantileThresholderTracksQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewQuantileThresholder(0.95)
	vals := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := rng.NormFloat64()
		vals = append(vals, v)
		q.Alert(v)
	}
	sort.Float64s(vals)
	exact := vals[int(0.95*float64(len(vals)))]
	got := q.Threshold()
	if math.Abs(got-exact) > 0.15 {
		t.Fatalf("P² estimate %v vs exact 95th percentile %v", got, exact)
	}
	if q.Count() != 5000 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestQuantileThresholderAlertRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NewQuantileThresholder(0.99)
	alerts := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if q.Alert(rng.Float64()) {
			alerts++
		}
	}
	rate := float64(alerts) / n
	// On i.i.d. data the alert rate should approximate 1−q.
	if rate < 0.002 || rate > 0.05 {
		t.Fatalf("alert rate = %v, want ≈0.01", rate)
	}
}

func TestQuantileThresholderDetectsOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := NewQuantileThresholder(0.99)
	for i := 0; i < 1000; i++ {
		q.Alert(0.1 + 0.01*rng.NormFloat64())
	}
	if !q.Alert(0.9) {
		t.Fatal("large outlier must alert")
	}
	if q.Alert(0.1) {
		t.Fatal("baseline value must not alert")
	}
}

func TestQuantileThresholderColdStart(t *testing.T) {
	q := NewQuantileThresholder(0.9)
	for i := 0; i < 4; i++ {
		if q.Alert(float64(i)) {
			t.Fatal("must not alert before five observations")
		}
	}
	if !math.IsInf(q.Threshold(), 1) {
		t.Fatal("threshold should be +Inf during cold start")
	}
}

func TestQuantileThresholderAdaptsToShift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := NewQuantileThresholder(0.95)
	for i := 0; i < 2000; i++ {
		q.Alert(rng.NormFloat64())
	}
	before := q.Threshold()
	for i := 0; i < 8000; i++ {
		q.Alert(10 + rng.NormFloat64())
	}
	after := q.Threshold()
	if after <= before+5 {
		t.Fatalf("threshold did not adapt to a level shift: %v → %v", before, after)
	}
}

func TestQuantileThresholderPanicsOnBadQ(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("q=%v should panic", q)
				}
			}()
			NewQuantileThresholder(q)
		}()
	}
}

// TestQuantileThresholderSurvivesNonFinite is the regression test for a
// latent bug surfaced by the floatsafe analyzer review: a NaN (or ±Inf)
// score fed to Alert used to flow straight into the P² marker heights.
// Every later comparison against the poisoned markers is false, so the
// estimator froze and the thresholder never alerted again. Non-finite
// observations must be dropped, leaving the estimate finite and live.
func TestQuantileThresholderSurvivesNonFinite(t *testing.T) {
	p := NewQuantileThresholder(0.9)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		p.Alert(rng.Float64())
	}
	before := p.Threshold()
	if math.IsNaN(before) || math.IsInf(before, 0) {
		t.Fatalf("threshold not finite before injection: %v", before)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.NaN()} {
		p.Alert(bad)
	}
	if got := p.Dropped(); got != 4 {
		t.Fatalf("Dropped() = %d, want 4", got)
	}
	if th := p.Threshold(); math.IsNaN(th) || math.IsInf(th, 0) {
		t.Fatalf("threshold poisoned by non-finite scores: %v", th)
	}
	for i := 0; i < 200; i++ {
		p.Alert(rng.Float64())
	}
	if th := p.Threshold(); math.IsNaN(th) || math.IsInf(th, 0) || th <= 0 || th >= 1 {
		t.Fatalf("threshold did not keep tracking after injection: %v", th)
	}
	if !p.Alert(10) {
		t.Fatal("outlier after non-finite injection must still alert")
	}
}

// TestQuantileThresholderNonFiniteDuringColdStart covers the init phase:
// a NaN among the first five observations used to be sorted into the
// marker seed, corrupting every marker height from the start.
func TestQuantileThresholderNonFiniteDuringColdStart(t *testing.T) {
	p := NewQuantileThresholder(0.9)
	vals := []float64{0.1, math.NaN(), 0.2, math.Inf(1), 0.3, 0.4, 0.5}
	for _, v := range vals {
		p.Alert(v)
	}
	if th := p.Threshold(); math.IsNaN(th) || math.IsInf(th, 0) {
		t.Fatalf("cold-start markers poisoned: %v", th)
	}
	if !p.Alert(10) {
		t.Fatal("outlier must alert once five finite scores have seeded the markers")
	}
}

// TestQuantileThresholderDroppedSurvivesRestore pins the diagnostic
// counter into the snapshot: a restored thresholder must report the same
// Dropped() count, not silently reset to zero.
func TestQuantileThresholderDroppedSurvivesRestore(t *testing.T) {
	p := NewQuantileThresholder(0.9)
	for _, v := range []float64{0.1, math.NaN(), 0.2, math.Inf(-1), 0.3, 0.4, 0.5, 0.6} {
		p.Alert(v)
	}
	if p.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", p.Dropped())
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	twin := NewQuantileThresholder(0.9)
	if err := twin.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if twin.Dropped() != p.Dropped() {
		t.Fatalf("restored Dropped() = %d, want %d", twin.Dropped(), p.Dropped())
	}
}
