package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCosineMeasure(t *testing.T) {
	c := Cosine{}
	if got := c.Measure([]float64{1, 2}, []float64{1, 2}); !almostEq(got, 0, 1e-12) {
		t.Fatalf("identical vectors → %v, want 0", got)
	}
	if got := c.Measure([]float64{1, 0}, []float64{-1, 0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("opposite vectors → %v, want 1", got)
	}
	if got := c.Measure([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("orthogonal vectors → %v, want 0.5", got)
	}
	if c.Name() != "cosine" {
		t.Fatal("name")
	}
}

// TestCosineRangeProperty: measure must stay in [0,1] for any input.
func TestCosineRangeProperty(t *testing.T) {
	c := Cosine{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 50
			b[i] = rng.NormFloat64() * 50
		}
		v := c.Measure(a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRawScorer(t *testing.T) {
	var r Raw
	if r.Score(0.7) != 0.7 {
		t.Fatal("Raw must pass through")
	}
	r.Reset()
	if r.Name() != "raw" {
		t.Fatal("name")
	}
}

func TestAverageScorer(t *testing.T) {
	s := NewAverage(3)
	if got := s.Score(3); got != 3 {
		t.Fatalf("first = %v", got)
	}
	if got := s.Score(6); got != 4.5 {
		t.Fatalf("second = %v", got)
	}
	if got := s.Score(9); got != 6 {
		t.Fatalf("third = %v", got)
	}
	if got := s.Score(12); got != 9 { // window slides: (6+9+12)/3
		t.Fatalf("fourth = %v, want 9", got)
	}
	s.Reset()
	if got := s.Score(1); got != 1 {
		t.Fatalf("after reset = %v", got)
	}
	if s.Name() != "average" {
		t.Fatal("name")
	}
}

// TestAverageMatchesBatchProperty: sliding average equals the mean of the
// last k values for any sequence.
func TestAverageMatchesBatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(60)
		s := NewAverage(k)
		var all []float64
		var last float64
		for i := 0; i < n; i++ {
			v := rng.Float64()
			all = append(all, v)
			last = s.Score(v)
		}
		start := 0
		if len(all) > k {
			start = len(all) - k
		}
		var want float64
		for _, v := range all[start:] {
			want += v
		}
		want /= float64(len(all) - start)
		return almostEq(last, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAnomalyLikelihoodNeutralAtStart(t *testing.T) {
	s := NewAnomalyLikelihood(20, 3)
	// Until the lagged long window has data, the score is neutral.
	if got := s.Score(0.5); got != 0.5 {
		t.Fatalf("initial = %v, want 0.5", got)
	}
}

func TestAnomalyLikelihoodSpikesOnShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewAnomalyLikelihood(50, 5)
	var calm float64
	for i := 0; i < 200; i++ {
		calm = s.Score(0.1 + 0.02*rng.NormFloat64())
	}
	// Sudden elevated nonconformity: likelihood should approach 1.
	var spiked float64
	for i := 0; i < 6; i++ {
		spiked = s.Score(0.5 + 0.02*rng.NormFloat64())
	}
	if spiked < 0.95 {
		t.Fatalf("likelihood after spike = %v, want > 0.95", spiked)
	}
	if spiked <= calm {
		t.Fatalf("spiked (%v) must exceed calm (%v)", spiked, calm)
	}
}

func TestAnomalyLikelihoodDropsBelowHalfOnImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewAnomalyLikelihood(50, 5)
	for i := 0; i < 200; i++ {
		s.Score(0.5 + 0.02*rng.NormFloat64())
	}
	var low float64
	for i := 0; i < 6; i++ {
		low = s.Score(0.1)
	}
	if low >= 0.5 {
		t.Fatalf("likelihood after improvement = %v, want < 0.5", low)
	}
}

func TestAnomalyLikelihoodRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewAnomalyLikelihood(10, 2)
		for i := 0; i < 100; i++ {
			v := s.Score(rng.Float64())
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAnomalyLikelihoodReset(t *testing.T) {
	s := NewAnomalyLikelihood(10, 2)
	for i := 0; i < 50; i++ {
		s.Score(0.9)
	}
	s.Reset()
	if got := s.Score(0.1); got != 0.5 {
		t.Fatalf("after reset = %v, want neutral 0.5", got)
	}
	if s.Name() != "likelihood" {
		t.Fatal("name")
	}
}

func TestAnomalyLikelihoodPanicsOnBadWindows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAnomalyLikelihood(5, 5)
}

func TestAnomalyLikelihoodConstantStreamStable(t *testing.T) {
	s := NewAnomalyLikelihood(30, 3)
	var last float64
	for i := 0; i < 200; i++ {
		last = s.Score(0.3)
	}
	// Constant stream: short mean equals long mean → z = 0 → 0.5.
	if !almostEq(last, 0.5, 1e-9) {
		t.Fatalf("constant stream likelihood = %v, want 0.5", last)
	}
}
