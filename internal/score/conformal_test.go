package score

import (
	"math"
	"math/rand"
	"testing"
)

// TestConformalPValueExact checks the p-value formula on a hand-built
// calibration window.
func TestConformalPValueExact(t *testing.T) {
	c := NewConformal(8, 0.2)
	for _, v := range []float64{1, 2, 3, 4} {
		c.Observe(v)
	}
	cases := []struct {
		f    float64
		want float64 // (#{y ≥ f}+1)/(n+1), n = 4
	}{
		{5, 1.0 / 5},
		{4, 2.0 / 5},
		{2.5, 3.0 / 5},
		{0, 5.0 / 5},
		{math.NaN(), 1},
		{math.Inf(1), 1},
	}
	for _, tc := range cases {
		if got := c.PValue(tc.f); got != tc.want {
			t.Errorf("PValue(%v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

// TestConformalEmptyWindow checks the young-window behavior: min p-value
// is 1, nothing can alert, threshold is +Inf.
func TestConformalEmptyWindow(t *testing.T) {
	c := NewConformal(16, 0.1)
	if p := c.PValue(100); p != 1 {
		t.Fatalf("empty-window PValue = %v, want 1", p)
	}
	if !math.IsInf(c.Threshold(), 1) {
		t.Fatalf("empty-window Threshold = %v, want +Inf", c.Threshold())
	}
	if c.Alert(100) {
		t.Fatal("empty-window Alert fired")
	}
}

// TestConformalFalsePositiveRate feeds exchangeable scores and checks the
// alert rate lands near ε.
func TestConformalFalsePositiveRate(t *testing.T) {
	const (
		eps   = 0.05
		total = 20000
	)
	c := NewConformal(200, eps)
	rng := rand.New(rand.NewSource(17))
	alerts, decisions := 0, 0
	for i := 0; i < total; i++ {
		f := rng.NormFloat64()
		if c.N() >= 100 { // count only once the window is meaningful
			decisions++
			if c.PValue(f) <= eps {
				alerts++
			}
		}
		c.Observe(f)
	}
	rate := float64(alerts) / float64(decisions)
	if rate < eps/2 || rate > eps*2 {
		t.Fatalf("false-positive rate %v not within [%v, %v]", rate, eps/2, eps*2)
	}
}

// TestConformalThresholdConsistency checks Alert(f) ⇔ f > Threshold() on
// a filled window (modulo the boundary tie, which Threshold includes).
func TestConformalThresholdConsistency(t *testing.T) {
	c := NewConformal(99, 0.1)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 99; i++ {
		c.Observe(rng.Float64())
	}
	thr := c.Threshold()
	if math.IsInf(thr, 0) {
		t.Fatalf("filled-window Threshold = %v", thr)
	}
	for i := 0; i < 500; i++ {
		f := rng.Float64() * 1.2
		alert := c.PValue(f) <= c.Epsilon()
		if f > thr && !alert {
			t.Fatalf("f=%v above threshold %v but p=%v > eps", f, thr, c.PValue(f))
		}
		if f < thr && alert {
			t.Fatalf("f=%v below threshold %v but p=%v ≤ eps", f, thr, c.PValue(f))
		}
	}
}

// TestConformalNonFiniteDropped checks non-finite observations never
// enter the window.
func TestConformalNonFiniteDropped(t *testing.T) {
	c := NewConformal(8, 0.25)
	c.Observe(math.NaN())
	c.Observe(math.Inf(1))
	c.Observe(math.Inf(-1))
	if c.N() != 0 {
		t.Fatalf("N() = %d after non-finite observes, want 0", c.N())
	}
	if c.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", c.Dropped())
	}
	c.Observe(1)
	if c.N() != 1 {
		t.Fatalf("N() = %d, want 1", c.N())
	}
}

// TestConformalThresholderContract checks Conformal satisfies the
// Thresholder interface used by the alerting layer.
func TestConformalThresholderContract(t *testing.T) {
	var thr Thresholder = NewConformal(64, 0.1)
	if thr.Name() != "conformal" {
		t.Fatalf("Name() = %q", thr.Name())
	}
}

// TestConformalMarshalRoundTrip checks a restored rule behaves
// identically to the original.
func TestConformalMarshalRoundTrip(t *testing.T) {
	c := NewConformal(32, 0.1)
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 50; i++ {
		c.Observe(rng.NormFloat64())
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	twin := NewConformal(32, 0.1)
	if err := twin.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if twin.N() != c.N() {
		t.Fatalf("restored N() = %d, want %d", twin.N(), c.N())
	}
	if twin.Threshold() != c.Threshold() {
		t.Fatalf("restored Threshold() = %v, want %v", twin.Threshold(), c.Threshold())
	}
	for i := 0; i < 100; i++ {
		f := rng.NormFloat64()
		if twin.PValue(f) != c.PValue(f) {
			t.Fatalf("restored PValue(%v) = %v, want %v", f, twin.PValue(f), c.PValue(f))
		}
	}
	// Mismatched epsilon is rejected.
	other := NewConformal(32, 0.2)
	if err := other.UnmarshalBinary(blob); err == nil {
		t.Fatal("UnmarshalBinary accepted a snapshot with different eps")
	}
}

// TestConformalDroppedSurvivesRestore pins the diagnostic counter into
// the snapshot: a restored rule must report the same Dropped() count,
// not silently reset to zero.
func TestConformalDroppedSurvivesRestore(t *testing.T) {
	c := NewConformal(16, 0.1)
	c.Observe(1.5)
	c.Observe(math.NaN())
	c.Observe(math.Inf(1))
	c.Observe(2.5)
	if c.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", c.Dropped())
	}
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	twin := NewConformal(16, 0.1)
	if err := twin.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if twin.Dropped() != c.Dropped() {
		t.Fatalf("restored Dropped() = %d, want %d", twin.Dropped(), c.Dropped())
	}
}
