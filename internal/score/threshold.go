package score

import (
	"math"
	"sort"
)

// Thresholder turns the stream of anomaly scores f_t into binary alerts
// without offline calibration. It is not part of the paper's framework —
// the paper evaluates score series offline — but a deployed detector
// needs an online decision rule, so the library provides one.
type Thresholder interface {
	// Alert consumes the next anomaly score and reports whether it crosses
	// the current threshold. The threshold adapts as scores stream in.
	Alert(f float64) bool
	// Threshold returns the current decision boundary.
	Threshold() float64
	// Name identifies the policy.
	Name() string
}

// StaticThresholder alerts above a fixed boundary.
type StaticThresholder struct {
	T float64
}

// Alert implements Thresholder.
func (s *StaticThresholder) Alert(f float64) bool { return f >= s.T }

// Threshold implements Thresholder.
func (s *StaticThresholder) Threshold() float64 { return s.T }

// Name implements Thresholder.
func (s *StaticThresholder) Name() string { return "static" }

// QuantileThresholder maintains a streaming estimate of the q-quantile of
// the score distribution using the P² algorithm (Jain & Chlamtac 1985) —
// constant memory, no sample buffer — and alerts when a score exceeds it.
// During the first few observations (before the five P² markers exist) it
// never alerts.
type QuantileThresholder struct {
	q       float64
	n       [5]float64 // marker positions
	np      [5]float64 // desired positions
	dn      [5]float64 // position increments
	heights [5]float64
	count   int
	dropped int
	init    []float64
}

// NewQuantileThresholder returns a streaming q-quantile thresholder
// (0 < q < 1), e.g. 0.99 to alert on the top percent of scores.
func NewQuantileThresholder(q float64) *QuantileThresholder {
	if q <= 0 || q >= 1 {
		panic("score: quantile must be in (0,1)")
	}
	return &QuantileThresholder{q: q, init: make([]float64, 0, 5)}
}

// observe feeds one value into the P² estimator. Non-finite values are
// discarded: a single NaN folded into the marker heights would poison
// the quantile estimate permanently (every comparison against NaN is
// false, so the markers never move again and alerts never fire).
func (p *QuantileThresholder) observe(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		p.dropped++
		return
	}
	p.count++
	if len(p.init) < 5 {
		p.init = append(p.init, x)
		if len(p.init) == 5 {
			sort.Float64s(p.init)
			for i := 0; i < 5; i++ {
				p.heights[i] = p.init[i]
				p.n[i] = float64(i + 1)
			}
			p.np = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
			p.dn = [5]float64{0, p.q / 2, p.q, (1 + p.q) / 2, 1}
		}
		return
	}
	// Locate cell k containing x and update extreme heights.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.n[i]++
	}
	for i := 0; i < 5; i++ {
		p.np[i] += p.dn[i]
	}
	// Adjust interior markers with the parabolic formula.
	for i := 1; i <= 3; i++ {
		d := p.np[i] - p.n[i]
		if (d >= 1 && p.n[i+1]-p.n[i] > 1) || (d <= -1 && p.n[i-1]-p.n[i] < -1) {
			s := sign(d)
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.n[i] += s
		}
	}
}

func sign(x float64) float64 {
	if x >= 0 {
		return 1
	}
	return -1
}

func (p *QuantileThresholder) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.n[i+1]-p.n[i-1])*
		((p.n[i]-p.n[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.n[i+1]-p.n[i])+
			(p.n[i+1]-p.n[i]-s)*(p.heights[i]-p.heights[i-1])/(p.n[i]-p.n[i-1]))
}

func (p *QuantileThresholder) linear(i int, s float64) float64 {
	si := int(s)
	return p.heights[i] + s*(p.heights[i+si]-p.heights[i])/(p.n[i+si]-p.n[i])
}

// Alert implements Thresholder: the score is compared against the current
// quantile estimate, then folded into it.
func (p *QuantileThresholder) Alert(f float64) bool {
	th := p.Threshold()
	p.observe(f)
	if math.IsInf(th, 1) {
		return false
	}
	return f > th
}

// Dropped returns how many non-finite scores the estimator discarded
// since construction (or restore — the counter is diagnostic and not
// part of the checkpoint).
func (p *QuantileThresholder) Dropped() int { return p.dropped }

// Threshold implements Thresholder; +Inf until five scores have arrived.
func (p *QuantileThresholder) Threshold() float64 {
	if len(p.init) < 5 {
		return math.Inf(1)
	}
	return p.heights[2] // the middle marker tracks the q-quantile
}

// Count returns the number of observed scores.
func (p *QuantileThresholder) Count() int { return p.count }

// Name implements Thresholder.
func (p *QuantileThresholder) Name() string { return "p2-quantile" }
