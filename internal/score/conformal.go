package score

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"streamad/internal/window"
)

// Conformal turns anomaly scores into conformal p-values against a
// sliding calibration window, in the style of inductive conformal
// anomaly detection: with n calibration scores y_1..y_n, the p-value of
// a new score f is
//
//	p(f) = (#{i : y_i ≥ f} + 1) / (n + 1)
//
// Under exchangeability, p is super-uniform, so the rule "alert when
// p ≤ ε" has false-positive rate ≤ ε regardless of the score's scale or
// distribution — which is what makes it usable both as an alternative
// decision rule to the P² quantile thresholder and as the cascade's
// admission gate (ε is then the target false-admission rate). The
// guarantee holds at any n (p-values are just coarse when the window is
// young: min p = 1/(n+1), so alerts cannot fire at all until
// n ≥ 1/ε − 1); the sliding window trades a little exactness for drift
// adaptation, the standard streaming compromise.
//
// Non-finite scores are dropped from calibration (the P² lesson: one NaN
// must not poison the decision rule) and receive p-value 1.
type Conformal struct {
	ring    *window.Ring
	eps     float64
	dropped int
	top     []float64 //streamad:transient reusable top-(k+1) scratch for Threshold, overwritten per call
}

// NewConformal returns a conformal decision rule with a calibration
// window of the given capacity and target false-positive rate eps.
func NewConformal(capacity int, eps float64) *Conformal {
	if capacity < 1 {
		panic("score: conformal calibration capacity must be positive")
	}
	if eps <= 0 || eps >= 1 {
		panic("score: conformal epsilon must be in (0,1)")
	}
	return &Conformal{ring: window.NewRing(capacity), eps: eps}
}

// PValue returns the conformal p-value of f against the current
// calibration window, without observing f. Non-finite scores get 1.
//
//streamad:hotpath
func (c *Conformal) PValue(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 1
	}
	n := c.ring.Len()
	ge := 0
	for i := 0; i < n; i++ {
		if c.ring.At(i) >= f {
			ge++
		}
	}
	return float64(ge+1) / float64(n+1)
}

// Observe folds f into the sliding calibration window; non-finite
// scores are dropped.
//
//streamad:hotpath
func (c *Conformal) Observe(f float64) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		c.dropped++
		return
	}
	c.ring.Push(f)
}

// N returns the number of calibration scores currently held.
func (c *Conformal) N() int { return c.ring.Len() }

// Epsilon returns the configured target false-positive rate.
func (c *Conformal) Epsilon() float64 { return c.eps }

// Dropped returns how many non-finite scores were discarded since
// construction (diagnostic; not part of the checkpoint).
func (c *Conformal) Dropped() int { return c.dropped }

// Alert implements Thresholder: the score's p-value is compared against
// ε, then the score joins the calibration window.
func (c *Conformal) Alert(f float64) bool {
	alert := c.PValue(f) <= c.eps
	c.Observe(f)
	return alert
}

// Threshold implements Thresholder: the current score boundary above
// which p ≤ ε, i.e. the (⌊ε(n+1)⌋)-th largest calibration score; +Inf
// while the window is too young for any score to alert.
func (c *Conformal) Threshold() float64 {
	n := c.ring.Len()
	k := int(c.eps*float64(n+1)) - 1
	if k < 0 {
		return math.Inf(1)
	}
	if k >= n {
		return math.Inf(-1)
	}
	// Keep the k+1 largest calibration scores in an ascending scratch;
	// the smallest of them is the boundary.
	if cap(c.top) < k+1 {
		c.top = make([]float64, 0, k+1)
	}
	top := c.top[:0]
	for i := 0; i < n; i++ {
		v := c.ring.At(i)
		if len(top) < k+1 {
			pos := searchAscending(top, v)
			top = append(top, 0)
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = v
			continue
		}
		if v > top[0] {
			pos := searchAscending(top[1:], v)
			copy(top[:pos], top[1:pos+1])
			top[pos] = v
		}
	}
	c.top = top[:0]
	return top[0]
}

// searchAscending returns the first index in a not less than x.
func searchAscending(a []float64, x float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Name implements Thresholder.
func (c *Conformal) Name() string { return "conformal" }

// conformalState is the serializable form of a Conformal rule. Dropped
// rides along so the diagnostic counter survives a restore; snapshots
// written before it existed decode with Dropped zero.
type conformalState struct {
	Eps     float64
	Ring    []byte
	Dropped int
}

// MarshalBinary implements encoding.BinaryMarshaler, so the ingest
// layer persists the calibration window with the stream snapshot.
func (c *Conformal) MarshalBinary() ([]byte, error) {
	ring, err := c.ring.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(conformalState{Eps: c.eps, Ring: ring, Dropped: c.dropped}); err != nil {
		return nil, fmt.Errorf("score: encode conformal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the receiver's
// epsilon and window capacity must match the snapshot.
func (c *Conformal) UnmarshalBinary(data []byte) error {
	var st conformalState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("score: decode conformal: %w", err)
	}
	if st.Eps != c.eps {
		return fmt.Errorf("score: conformal snapshot eps=%v != receiver eps=%v", st.Eps, c.eps)
	}
	c.dropped = st.Dropped
	return c.ring.UnmarshalBinary(st.Ring)
}
