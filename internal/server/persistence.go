// Durability for the serving layer: WAL-backed observes, background
// snapshots and crash recovery. Everything here is inert unless
// Config.Store is set.
//
// The recovery invariant: a stream's on-disk state is a snapshot taken at
// sequence number S plus a WAL holding every vector from some point ≤ S
// onward (appends precede scoring; rotation follows the snapshot rename).
// RestoreStreams loads the snapshot and re-steps exactly the records with
// seq ≥ S, so a process killed at any instant resumes with the same
// detector state — and therefore the same future scores — as a process
// that never died.
package server

import (
	"encoding"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"streamad/internal/persist"
	"streamad/internal/score"
)

// Checkpointer is the contract a detector must add to Stepper for the
// server to persist it (streamad.Detector satisfies it).
type Checkpointer interface {
	Save() ([]byte, error)
	Load([]byte) error
}

// RestoreStreams rebuilds every stream persisted in the configured store.
// It must be called before the server starts handling traffic. The
// returned warnings describe tolerated damage (a torn WAL tail from a
// mid-write crash); hard corruption — bad magic, version or CRC — aborts
// with an error so damaged state is never half-loaded silently.
func (s *Server) RestoreStreams() (restored int, warnings []string, err error) {
	if s.cfg.Store == nil {
		return 0, nil, nil
	}
	ids, err := s.cfg.Store.IDs()
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if len(s.streams) >= s.cfg.MaxStreams {
			return restored, warnings, fmt.Errorf("server: stream limit %d reached while restoring %q", s.cfg.MaxStreams, id)
		}
		st, warn, err := s.restoreStream(id)
		if err != nil {
			return restored, warnings, fmt.Errorf("server: restore stream %q: %w", id, err)
		}
		warnings = append(warnings, warn...)
		s.streams[id] = st
		restored++
	}
	return restored, warnings, nil
}

// restoreStream rebuilds one stream from its snapshot and WAL.
func (s *Server) restoreStream(id string) (*stream, []string, error) {
	var warnings []string
	snap, err := s.cfg.Store.ReadSnapshot(id)
	if errors.Is(err, os.ErrNotExist) {
		// Crashed before the first snapshot: replay the WAL from scratch.
		snap = &persist.StreamSnapshot{ID: id}
	} else if err != nil {
		return nil, nil, err
	}
	det, err := s.cfg.NewDetector(id)
	if err != nil {
		return nil, nil, err
	}
	th := s.cfg.NewThresholder(id)
	if len(snap.Detector) > 0 {
		ck, ok := det.(Checkpointer)
		if !ok {
			return nil, nil, fmt.Errorf("detector %T does not support checkpointing", det)
		}
		if err := ck.Load(snap.Detector); err != nil {
			return nil, nil, err
		}
	}
	if len(snap.Threshold) > 0 {
		u, ok := th.(encoding.BinaryUnmarshaler)
		if !ok {
			return nil, nil, fmt.Errorf("thresholder %T does not support checkpointing", th)
		}
		if err := u.UnmarshalBinary(snap.Threshold); err != nil {
			return nil, nil, err
		}
	}
	st := &stream{det: det, th: th, steps: int(snap.Seq), ready: snap.Ready, alerts: snap.Alerts}

	recs, walErr := s.cfg.Store.ReadWAL(id)
	if walErr != nil {
		if !errors.Is(walErr, persist.ErrTornWAL) {
			return nil, nil, walErr
		}
		warnings = append(warnings, fmt.Sprintf("stream %q: %v (replaying the intact prefix)", id, walErr))
	}
	rejected := 0
	for _, rec := range recs {
		if rec.Seq < snap.Seq {
			continue // already folded into the snapshot
		}
		st.steps = int(rec.Seq) + 1
		st.walSince++
		res, out := safeStep(st.det, rec.Vector)
		if out.panicked {
			// The live server logged this vector, then rejected it with a
			// 400 when the detector panicked; replay must land in the same
			// state, so skip it the same way instead of failing recovery.
			rejected++
			continue
		}
		if out.ok {
			st.ready++
			if st.th.Alert(res.Score) {
				st.alerts++
			}
		}
	}
	if rejected > 0 {
		warnings = append(warnings, fmt.Sprintf(
			"stream %q: skipped %d WAL record(s) the detector rejected when first observed", id, rejected))
	}
	return st, warnings, nil
}

// snapshotter is the background checkpoint loop: a timer pass over all
// dirty streams plus per-stream kicks when a WAL crosses SnapshotEvery.
func (s *Server) snapshotter() {
	defer close(s.snapDone)
	var tick <-chan time.Time
	if s.cfg.SnapshotInterval > 0 {
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.snapStop:
			return
		case <-tick:
			s.SnapshotAll()
		case id := <-s.snapKick:
			s.mu.Lock()
			st := s.streams[id]
			s.mu.Unlock()
			if st != nil {
				if err := s.snapshotStream(id, st); err != nil {
					s.cfg.Logf("streamad: snapshot %q: %v", id, err)
				}
			}
		}
	}
}

// SnapshotAll checkpoints every stream with WAL entries outstanding and
// returns the first error encountered (all streams are still attempted).
func (s *Server) SnapshotAll() error {
	if s.cfg.Store == nil {
		return nil
	}
	type entry struct {
		id string
		st *stream
	}
	s.mu.Lock()
	all := make([]entry, 0, len(s.streams))
	for id, st := range s.streams {
		all = append(all, entry{id, st})
	}
	s.mu.Unlock()
	var first error
	for _, e := range all {
		e.st.mu.Lock()
		dirty := e.st.walSince > 0
		e.st.mu.Unlock()
		if !dirty {
			continue
		}
		if err := s.snapshotStream(e.id, e.st); err != nil {
			s.cfg.Logf("streamad: snapshot %q: %v", e.id, err)
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// snapshotStream checkpoints one stream: it captures the detector and
// thresholder under the stream lock, writes the snapshot atomically and
// rotates the WAL. Holding the lock across the disk write is what makes
// "snapshot then rotate" atomic with respect to concurrent appends.
func (s *Server) snapshotStream(id string, st *stream) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap, err := buildSnapshot(id, st)
	if err != nil {
		return err
	}
	if err := s.cfg.Store.WriteSnapshot(snap); err != nil {
		return err
	}
	st.walSince = 0
	return nil
}

// buildSnapshot captures a stream's current state; the caller holds st.mu.
func buildSnapshot(id string, st *stream) (*persist.StreamSnapshot, error) {
	ck, ok := st.det.(Checkpointer)
	if !ok {
		return nil, fmt.Errorf("server: detector %T does not support checkpointing", st.det)
	}
	detBlob, err := ck.Save()
	if err != nil {
		return nil, err
	}
	thBlob, err := marshalThresholder(st.th)
	if err != nil {
		return nil, err
	}
	return &persist.StreamSnapshot{
		ID:        id,
		Seq:       uint64(st.steps),
		Detector:  detBlob,
		Threshold: thBlob,
		Ready:     st.ready,
		Alerts:    st.alerts,
	}, nil
}

// marshalThresholder snapshots the alert policy. A thresholder without
// binary support is stored empty and comes back fresh on restore — alert
// counters still persist, only the policy's warm state is lost.
func marshalThresholder(th score.Thresholder) ([]byte, error) {
	m, ok := th.(encoding.BinaryMarshaler)
	if !ok {
		return nil, nil
	}
	return m.MarshalBinary()
}

// handleSnapshot serves GET /v1/streams/{id}/snapshot: a fresh checkpoint
// of the stream in the persist file format (magic, version, CRC), suitable
// for off-box backup. When a store is configured the checkpoint is also
// persisted, so the endpoint doubles as "force a snapshot now".
func (s *Server) handleSnapshot(w http.ResponseWriter, id string) {
	s.mu.Lock()
	st, ok := s.streams[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown stream", http.StatusNotFound)
		return
	}
	st.mu.Lock()
	snap, err := buildSnapshot(id, st)
	if err == nil && s.cfg.Store != nil {
		if err = s.cfg.Store.WriteSnapshot(snap); err == nil {
			st.walSince = 0
		}
	}
	st.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	file, err := persist.EncodeSnapshotFile(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".snap"))
	w.Write(file)
}

// Close stops the background snapshotter and takes a final checkpoint of
// every dirty stream. It does not close the store — the caller that opened
// it owns that. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
		s.closeErr = s.SnapshotAll()
	})
	return s.closeErr
}
