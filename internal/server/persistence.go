// Durability for the serving layer. The mechanics — WAL-backed
// observes, background snapshots, crash recovery, TTL eviction — live in
// the sharded ingestion registry (internal/ingest); this file keeps the
// server's stable surface (RestoreStreams, SnapshotAll, Close and the
// snapshot-download endpoint) as thin delegations. Everything here is
// inert unless Config.Store is set.
package server

import (
	"errors"
	"fmt"
	"net/http"

	"streamad/internal/ingest"
	"streamad/internal/persist"
)

// Checkpointer is the contract a detector must add to Stepper for the
// server to persist it (streamad.Detector satisfies it).
type Checkpointer = ingest.Checkpointer

// RestoreStreams rebuilds every stream persisted in the configured store.
// It must be called before the server starts handling traffic. The
// returned warnings describe tolerated damage (a torn WAL tail from a
// mid-write crash); hard corruption — bad magic, version or CRC — aborts
// with an error so damaged state is never half-loaded silently.
func (s *Server) RestoreStreams() (restored int, warnings []string, err error) {
	return s.reg.RestoreStreams()
}

// SnapshotAll checkpoints every stream with WAL entries outstanding and
// returns the first error encountered (all streams are still attempted).
func (s *Server) SnapshotAll() error { return s.reg.SnapshotAll() }

// handleSnapshot serves GET /v1/streams/{id}/snapshot: a fresh checkpoint
// of the stream in the persist file format (magic, version, CRC), suitable
// for off-box backup. When a store is configured the checkpoint is also
// persisted, so the endpoint doubles as "force a snapshot now".
func (s *Server) handleSnapshot(w http.ResponseWriter, id string) {
	snap, err := s.reg.Snapshot(id)
	if errors.Is(err, ingest.ErrUnknownStream) {
		http.Error(w, "unknown stream", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	file, err := persist.EncodeSnapshotFile(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".snap"))
	w.Write(file)
}

// Close stops the cluster node's loops (prober, rebalancer, standby
// sync) and then the registry's (snapshotter, evictor), taking a final
// checkpoint of every dirty stream. It does not close the store — the
// caller that opened it owns that. Safe to call more than once.
func (s *Server) Close() error {
	if s.node != nil {
		s.node.Close()
	}
	return s.reg.Close()
}
