package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"streamad"
	"streamad/internal/score"
)

// TestCascadeAPIExposition drives a cascade-backed stream end to end and
// checks the three exposure surfaces: per-result source attribution,
// the stats endpoint's cascade section, and the streamad_cascade_*
// metric families.
func TestCascadeAPIExposition(t *testing.T) {
	base := streamad.Config{Channels: 3, Window: 8, TrainSize: 32, WarmupVectors: 40, Seed: 3}
	const spec = "cascade(zscore, knn; admit=0.1, calib=64, gatewin=32)"
	ts := newIngestServer(t, Config{
		NewDetector: func(string) (Stepper, error) {
			return streamad.NewFromSpec(spec, base)
		},
	})

	rng := rand.New(rand.NewSource(61))
	sawGate, sawHeavy := false, false
	const batch = 100
	for off := 0; off < 800; off += batch {
		var b strings.Builder
		for i := off; i < off+batch; i++ {
			v := make([]float64, 3)
			for c := range v {
				v[c] = math.Sin(float64(i)*0.07+float64(c)) + 0.05*rng.NormFloat64()
			}
			vec, _ := json.Marshal(v)
			fmt.Fprintf(&b, "{\"stream\": \"dev-1\", \"vector\": %s}\n", vec)
		}
		results, resp := postBatch(t, ts, b.String())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
		for _, r := range results {
			switch {
			case !r.Ready:
			case r.Source == "tier0:zscore":
				sawGate = true
			case strings.HasPrefix(r.Source, "heavy:"):
				sawHeavy = true
			default:
				t.Fatalf("unexpected source %q on seq %d", r.Source, r.Seq)
			}
		}
	}
	if !sawGate || !sawHeavy {
		t.Fatalf("missing source attribution: gate=%v heavy=%v", sawGate, sawHeavy)
	}

	// Stats endpoint: the cascade section partitions the stream.
	resp, err := http.Get(ts.URL + "/v1/streams/dev-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	cs := st.Cascade
	if cs == nil {
		t.Fatal("stats response has no cascade section")
	}
	if cs.Gate != "zscore" || len(cs.Heavy) != 1 || cs.Heavy[0] != "knn+sw+musigma+al" {
		t.Fatalf("cascade labels wrong: %+v", cs)
	}
	if !cs.Screening || cs.Screened == 0 {
		t.Fatalf("screening not active in stats: %+v", cs)
	}
	if cs.Screened+cs.Admitted+cs.Forwarded != st.Steps {
		t.Fatalf("cascade counters do not partition steps: %+v vs steps=%d", cs, st.Steps)
	}
	if cs.AdmitTarget != 0.1 {
		t.Fatalf("admit target %v, want 0.1", cs.AdmitTarget)
	}
	if cs.HeavyRate <= 0 || cs.HeavyRate >= 1 {
		t.Fatalf("heavy rate %v out of (0,1)", cs.HeavyRate)
	}

	// Metrics endpoint: every streamad_cascade_* family is present.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`streamad_cascade_screened_total{stream="dev-1",gate="zscore"} `,
		`streamad_cascade_admitted_total{stream="dev-1",gate="zscore"} `,
		`streamad_cascade_forwarded_total{stream="dev-1",gate="zscore"} `,
		`streamad_cascade_admit_target{stream="dev-1"} 0.1`,
		`streamad_cascade_admission_rate{stream="dev-1"} `,
		`streamad_cascade_heavy_rate{stream="dev-1"} `,
		`streamad_cascade_screening{stream="dev-1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestConformalAlertPolicyAPI checks the conformal thresholder works as
// the per-stream alert policy end to end: alerts stay rare on
// exchangeable scores.
func TestConformalAlertPolicyAPI(t *testing.T) {
	ts := newIngestServer(t, Config{
		NewThresholder: func(string) score.Thresholder {
			return score.NewConformal(128, 0.05)
		},
	})
	rng := rand.New(rand.NewSource(71))
	alerts, ready := 0, 0
	for i := 0; i < 600; i++ {
		body := fmt.Sprintf(`{"vector": [%g, 0, 0]}`, rng.NormFloat64())
		resp, err := http.Post(ts.URL+"/v1/streams/c-1/observe", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out ObserveResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Ready {
			ready++
			if out.Alert {
				alerts++
			}
		}
	}
	if ready == 0 {
		t.Fatal("no scored steps")
	}
	if rate := float64(alerts) / float64(ready); rate > 0.15 {
		t.Fatalf("conformal alert rate %v far above eps=0.05", rate)
	}
}
