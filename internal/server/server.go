// Package server exposes the streaming anomaly detectors over HTTP with a
// minimal JSON API, so non-Go producers can push telemetry and consume
// anomaly scores. It builds on the concurrent monitor: each stream id gets
// its own detector and thresholder.
//
//	POST /v1/streams/{id}/observe   {"vector": [..]}        → score + alert
//	GET  /v1/streams                                         → stream list
//	GET  /v1/streams/{id}                                    → stream stats (incl. ensemble members)
//	GET  /v1/streams/{id}/snapshot                           → checkpoint file
//	GET  /metrics                                            → Prometheus text exposition
//	GET  /healthz                                            → 200 ok
//
// Observe is synchronous (the detector runs in the request handler, with
// one lock per stream), which gives producers backpressure for free and
// returns the score in the response.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"streamad/internal/core"
	"streamad/internal/ensemble"
	"streamad/internal/persist"
	"streamad/internal/score"
)

// Stepper is the per-stream detector contract.
type Stepper interface {
	Step(s []float64) (core.Result, bool)
}

// MemberStatser is the optional Stepper extension implemented by
// ensemble-backed detectors (streamad.Ensemble): per-member counters,
// agreement and weights, surfaced in stream stats and /metrics.
type MemberStatser interface {
	MemberStats() []ensemble.MemberStat
}

// Config assembles a Server.
type Config struct {
	// NewDetector builds a detector for a new stream id (required).
	NewDetector func(stream string) (Stepper, error)
	// NewThresholder builds the per-stream alert policy (default: a
	// streaming 0.99-quantile).
	NewThresholder func(stream string) score.Thresholder
	// MaxStreams bounds the number of live streams (default 1024).
	MaxStreams int
	// Store, when set, makes the server durable: every observed vector is
	// appended to the stream's WAL before it is scored, snapshots are taken
	// in the background, and RestoreStreams rebuilds state on startup.
	Store *persist.Store
	// SnapshotInterval is how often the background snapshotter checkpoints
	// streams with WAL entries outstanding (0 disables timed snapshots).
	SnapshotInterval time.Duration
	// SnapshotEvery checkpoints a stream once this many vectors accumulate
	// in its WAL, independent of the timer (0 disables the entry trigger).
	SnapshotEvery int
	// Logf receives persistence diagnostics (default: discard).
	Logf func(format string, args ...interface{})
}

// Server is an http.Handler serving the scoring API.
type Server struct {
	cfg     Config
	mu      sync.Mutex
	streams map[string]*stream
	mux     *http.ServeMux

	snapStop  chan struct{}
	snapDone  chan struct{}
	snapKick  chan string
	closeOnce sync.Once
	closeErr  error
}

type stream struct {
	mu     sync.Mutex
	det    Stepper
	th     score.Thresholder
	steps  int
	ready  int
	alerts int
	// walSince counts vectors appended to the WAL since the last
	// snapshot; it is what the snapshot triggers look at.
	walSince int
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.NewDetector == nil {
		return nil, fmt.Errorf("server: NewDetector is required")
	}
	if cfg.NewThresholder == nil {
		cfg.NewThresholder = func(string) score.Thresholder {
			return score.NewQuantileThresholder(0.99)
		}
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	s := &Server{cfg: cfg, streams: make(map[string]*stream), mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/streams", s.handleList)
	s.mux.HandleFunc("/v1/streams/", s.handleStream)
	if cfg.Store != nil {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		s.snapKick = make(chan string, 64)
		go s.snapshotter()
	}
	return s, nil
}

// handleMetrics exposes per-stream counters in the Prometheus text
// exposition format, so the daemon plugs into standard scraping setups
// without any dependency. Ensemble-backed streams additionally get one
// row per member in the streamad_ensemble_member_* families.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	type row struct {
		id                   string
		steps, ready, alerts int
		members              []ensemble.MemberStat
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.streams))
	for id, st := range s.streams {
		st.mu.Lock()
		rw := row{id: id, steps: st.steps, ready: st.ready, alerts: st.alerts}
		if ms, ok := st.det.(MemberStatser); ok {
			rw.members = ms.MemberStats()
		}
		st.mu.Unlock()
		rows = append(rows, rw)
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintln(w, "# HELP streamad_steps_total Stream vectors observed per stream.")
	fmt.Fprintln(w, "# TYPE streamad_steps_total counter")
	for _, r := range rows {
		fmt.Fprintf(w, "streamad_steps_total{stream=%q} %d\n", r.id, r.steps)
	}
	fmt.Fprintln(w, "# HELP streamad_ready_steps_total Scored (post-warmup) steps per stream.")
	fmt.Fprintln(w, "# TYPE streamad_ready_steps_total counter")
	for _, r := range rows {
		fmt.Fprintf(w, "streamad_ready_steps_total{stream=%q} %d\n", r.id, r.ready)
	}
	fmt.Fprintln(w, "# HELP streamad_alerts_total Threshold crossings per stream.")
	fmt.Fprintln(w, "# TYPE streamad_alerts_total counter")
	for _, r := range rows {
		fmt.Fprintf(w, "streamad_alerts_total{stream=%q} %d\n", r.id, r.alerts)
	}
	hasMembers := false
	for _, r := range rows {
		if len(r.members) > 0 {
			hasMembers = true
			break
		}
	}
	if !hasMembers {
		return
	}
	memberRows := func(emit func(r row, m ensemble.MemberStat)) {
		for _, r := range rows {
			for _, m := range r.members {
				emit(r, m)
			}
		}
	}
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_ready_total Scored steps per ensemble member.")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_ready_total counter")
	memberRows(func(r row, m ensemble.MemberStat) {
		fmt.Fprintf(w, "streamad_ensemble_member_ready_total{stream=%q,member=\"%d\",spec=%q} %d\n", r.id, m.Index, m.Label, m.Ready)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_fine_tunes_total Drift-triggered fine-tunes per ensemble member.")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_fine_tunes_total counter")
	memberRows(func(r row, m ensemble.MemberStat) {
		fmt.Fprintf(w, "streamad_ensemble_member_fine_tunes_total{stream=%q,member=\"%d\",spec=%q} %d\n", r.id, m.Index, m.Label, m.FineTunes)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_agreement Rolling consensus-agreement counter per ensemble member.")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_agreement gauge")
	memberRows(func(r row, m ensemble.MemberStat) {
		fmt.Fprintf(w, "streamad_ensemble_member_agreement{stream=%q,member=\"%d\",spec=%q} %d\n", r.id, m.Index, m.Label, m.Agreement)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_weight Normalized aggregation weight per ensemble member (0 when pruned).")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_weight gauge")
	memberRows(func(r row, m ensemble.MemberStat) {
		fmt.Fprintf(w, "streamad_ensemble_member_weight{stream=%q,member=\"%d\",spec=%q} %g\n", r.id, m.Index, m.Label, m.Weight)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_disabled Whether the pruning policy currently excludes the member (0/1).")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_disabled gauge")
	memberRows(func(r row, m ensemble.MemberStat) {
		v := 0
		if m.Disabled {
			v = 1
		}
		fmt.Fprintf(w, "streamad_ensemble_member_disabled{stream=%q,member=\"%d\",spec=%q} %d\n", r.id, m.Index, m.Label, v)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// streamListEntry is one row of GET /v1/streams.
type streamListEntry struct {
	ID     string `json:"id"`
	Steps  int    `json:"steps"`
	Alerts int    `json:"alerts"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	out := make([]streamListEntry, 0, len(s.streams))
	for id, st := range s.streams {
		st.mu.Lock()
		out = append(out, streamListEntry{ID: id, Steps: st.steps, Alerts: st.alerts})
		st.mu.Unlock()
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// observeRequest is the POST body of /v1/streams/{id}/observe.
type observeRequest struct {
	Vector []float64 `json:"vector"`
}

// ObserveResponse is the scoring result returned to the producer.
type ObserveResponse struct {
	Ready         bool    `json:"ready"`
	Score         float64 `json:"score"`
	Nonconformity float64 `json:"nonconformity"`
	Alert         bool    `json:"alert"`
	Threshold     float64 `json:"threshold,omitempty"`
	FineTuned     bool    `json:"fine_tuned,omitempty"`
	Step          int     `json:"step"`
}

// MemberStatus is one ensemble member's row in StatsResponse.
type MemberStatus struct {
	Index     int     `json:"index"`
	Spec      string  `json:"spec"`
	Ready     int     `json:"ready_steps"`
	FineTunes int     `json:"fine_tunes"`
	Agreement int     `json:"agreement"`
	Weight    float64 `json:"weight"`
	Disabled  bool    `json:"disabled,omitempty"`
	LastScore float64 `json:"last_score"`
}

// StatsResponse is GET /v1/streams/{id}. Members is present only for
// ensemble-backed streams; Threshold is omitted while the alert policy
// still reports a non-finite boundary (see finiteOrZero).
type StatsResponse struct {
	ID        string         `json:"id"`
	Steps     int            `json:"steps"`
	Ready     int            `json:"ready_steps"`
	Alerts    int            `json:"alerts"`
	Threshold float64        `json:"threshold,omitempty"`
	Members   []MemberStatus `json:"members,omitempty"`
}

// finiteOrZero zeroes non-finite values before JSON encoding:
// encoding/json cannot represent NaN/±Inf and would otherwise abort the
// whole response (the +Inf-threshold bug PR 1 fixed for observe
// responses). Paired with omitempty, a non-finite value simply drops the
// field.
func finiteOrZero(f float64) float64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return f
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/streams/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	if id == "" {
		http.Error(w, "missing stream id", http.StatusBadRequest)
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		s.handleStats(w, id)
	case len(parts) == 2 && parts[1] == "observe" && r.Method == http.MethodPost:
		s.handleObserve(w, r, id)
	case len(parts) == 2 && parts[1] == "snapshot" && r.Method == http.MethodGet:
		s.handleSnapshot(w, id)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) getOrCreate(id string) (*stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[id]
	if ok {
		return st, nil
	}
	if len(s.streams) >= s.cfg.MaxStreams {
		return nil, fmt.Errorf("stream limit %d reached", s.cfg.MaxStreams)
	}
	det, err := s.cfg.NewDetector(id)
	if err != nil {
		return nil, err
	}
	st = &stream{det: det, th: s.cfg.NewThresholder(id)}
	s.streams[id] = st
	return st, nil
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request, id string) {
	var req observeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Vector) == 0 {
		http.Error(w, "empty vector", http.StatusBadRequest)
		return
	}
	st, err := s.getOrCreate(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	step := st.steps
	if s.cfg.Store != nil {
		// Log before scoring: a vector the WAL cannot hold is not consumed,
		// so the on-disk state never lags what the detector has seen.
		if err := s.cfg.Store.Append(id, uint64(step), req.Vector); err != nil {
			http.Error(w, "persist: "+err.Error(), http.StatusInternalServerError)
			return
		}
		st.walSince++
		if s.cfg.SnapshotEvery > 0 && st.walSince >= s.cfg.SnapshotEvery {
			select {
			case s.snapKick <- id:
			default: // snapshotter busy; the next trigger catches it
			}
		}
	}
	st.steps++
	res, ok := safeStep(st.det, req.Vector)
	if !ok.ok {
		if ok.panicked {
			http.Error(w, "vector shape does not match this stream's detector", http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, ObserveResponse{Ready: false, Step: step})
		return
	}
	st.ready++
	resp := ObserveResponse{
		Ready:         true,
		Score:         res.Score,
		Nonconformity: res.Nonconformity,
		FineTuned:     res.FineTuned,
		Step:          step,
	}
	// The quantile policy reports +Inf until it has enough scores —
	// leave the field empty until the threshold is real.
	resp.Threshold = finiteOrZero(st.th.Threshold())
	if st.th.Alert(res.Score) {
		resp.Alert = true
		st.alerts++
	}
	writeJSON(w, http.StatusOK, resp)
}

// stepOutcome distinguishes "warming up" from "panicked on bad input".
type stepOutcome struct {
	ok       bool
	panicked bool
}

// safeStep runs the detector step, converting dimension-mismatch panics
// (the detectors' contract for programmer error) into client errors.
func safeStep(det Stepper, v []float64) (res core.Result, out stepOutcome) {
	defer func() {
		if recover() != nil {
			out = stepOutcome{ok: false, panicked: true}
		}
	}()
	r, ready := det.Step(v)
	if !ready {
		return core.Result{}, stepOutcome{}
	}
	return r, stepOutcome{ok: true}
}

func (s *Server) handleStats(w http.ResponseWriter, id string) {
	s.mu.Lock()
	st, ok := s.streams[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown stream", http.StatusNotFound)
		return
	}
	st.mu.Lock()
	resp := StatsResponse{
		ID: id, Steps: st.steps, Ready: st.ready, Alerts: st.alerts,
		Threshold: finiteOrZero(st.th.Threshold()),
	}
	if ms, ok := st.det.(MemberStatser); ok {
		stats := ms.MemberStats()
		resp.Members = make([]MemberStatus, len(stats))
		for i, m := range stats {
			resp.Members[i] = MemberStatus{
				Index:     m.Index,
				Spec:      m.Label,
				Ready:     m.Ready,
				FineTunes: m.FineTunes,
				Agreement: m.Agreement,
				Weight:    finiteOrZero(m.Weight),
				Disabled:  m.Disabled,
				LastScore: finiteOrZero(m.LastScore),
			}
		}
	}
	st.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing sensible left to do.
		_ = err
	}
}
