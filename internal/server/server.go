// Package server exposes the streaming anomaly detectors over HTTP with a
// minimal JSON API, so non-Go producers can push telemetry and consume
// anomaly scores. The HTTP layer is deliberately thin: all stream state
// lives in the sharded ingestion registry (internal/ingest), which gives
// every stream id its own detector, thresholder, bounded queue and
// sequence numbering.
//
//	POST /v1/observe                 NDJSON {"stream": .., "vector": ..}  → per-record results
//	POST /v1/streams/{id}/observe    {"vector": [..]}                    → score + alert
//	GET  /v1/streams                                                     → stream list
//	GET  /v1/streams/{id}                                                → stream stats (incl. ensemble members)
//	GET  /v1/streams/{id}/snapshot                                       → checkpoint file
//	GET  /metrics                                                        → Prometheus text exposition
//	GET  /healthz                                                        → 200 ok
//
// Observe is synchronous (the producer waits for its vector's score) but
// scoring runs behind bounded per-stream queues with a micro-batching
// dispatcher, so many streams score concurrently and a burst on one
// stream coalesces into single locked detector passes. When a queue
// fills, the configured overload policy decides between backpressure
// (block), load-shedding (429 + Retry-After) and drop-oldest.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"streamad/internal/cascade"
	"streamad/internal/cluster"
	"streamad/internal/core"
	"streamad/internal/ensemble"
	"streamad/internal/ingest"
	"streamad/internal/persist"
	"streamad/internal/pool"
	"streamad/internal/score"
)

// Stepper is the per-stream detector contract (re-exported from the
// ingestion layer, where it now lives).
type Stepper = ingest.Stepper

// MemberStatser is the optional Stepper extension implemented by
// ensemble-backed detectors (streamad.Ensemble): per-member counters,
// agreement and weights, surfaced in stream stats and /metrics.
type MemberStatser = ingest.MemberStatser

// defaultMetricsStreamCap is how many streams get per-stream series on
// /metrics when Config.MetricsStreamCap is zero. 500 streams × ~30
// series is well inside what scrapers ingest comfortably; beyond that
// the omitted gauge reports the cut.
const defaultMetricsStreamCap = 500

// Config assembles a Server.
type Config struct {
	// NewDetector builds a detector for a new stream id (required).
	NewDetector func(stream string) (Stepper, error)
	// NewThresholder builds the per-stream alert policy (default: a
	// streaming 0.99-quantile).
	NewThresholder func(stream string) score.Thresholder
	// MaxStreams bounds the number of live streams (default 1024).
	MaxStreams int
	// Shards is the number of registry shards (default 8).
	Shards int
	// QueueDepth bounds each stream's pending-vector queue (default 64).
	QueueDepth int
	// Overload picks the full-queue policy: ingest.Block (backpressure,
	// default), ingest.Shed (429 + Retry-After) or ingest.DropOldest.
	Overload ingest.Policy
	// RetryAfter is the back-off hint attached to 429 responses
	// (default 1s).
	RetryAfter time.Duration
	// StreamTTL, when positive, checkpoints and unloads streams with no
	// observes for the TTL (see ingest.Config.StreamTTL).
	StreamTTL time.Duration
	// WarmAfter, when positive with a Store, demotes streams idle past
	// this duration to the warm tier: the model stays resident while
	// window state is paged to the snapshot store until the next observe
	// (see ingest.Config.WarmAfter). Must be below StreamTTL when both
	// are set.
	WarmAfter time.Duration
	// ScorePool, when set, is the shared bounded worker pool dispatcher
	// hops run on; the registry otherwise creates its own (GOMAXPROCS
	// workers). Share one pool between the registry and ensemble
	// detectors to keep goroutine count O(workers) for the whole process.
	// The caller keeps ownership: close it after the server.
	ScorePool *pool.Pool
	// TrainerPool, when set, is surfaced in /metrics as the
	// streamad_pool_train_* families. The pool itself is wired into
	// detectors by the NewDetector factory (see streamad.Config); the
	// server only reports it. The caller keeps ownership.
	TrainerPool *pool.Trainer
	// Store, when set, makes the server durable: every observed vector is
	// appended to the stream's WAL before it is scored, snapshots are taken
	// in the background, and RestoreStreams rebuilds state on startup.
	Store *persist.Store
	// SnapshotInterval is how often the background snapshotter checkpoints
	// streams with WAL entries outstanding (0 disables timed snapshots).
	SnapshotInterval time.Duration
	// SnapshotEvery checkpoints a stream once this many vectors accumulate
	// in its WAL, independent of the timer (0 disables the entry trigger).
	SnapshotEvery int
	// MetricsStreamCap bounds how many streams get per-stream series on
	// /metrics (default 500, negative = unlimited). Streams are ranked by
	// id, so the rendered subset is stable across scrapes; the
	// streamad_metrics_streams_omitted gauge counts the remainder. At the
	// fleet sizes the registry targets, unbounded per-stream series are a
	// cardinality bomb for any scraper.
	MetricsStreamCap int
	// Logf receives persistence diagnostics (default: discard).
	Logf func(format string, args ...interface{})
	// Cluster, when set with at least two peers, makes this server one
	// node of a logical cluster: observes are forwarded to their ring
	// owners, streams migrate on membership changes, and ring successors
	// keep warm standbys (see internal/cluster). The detector and
	// thresholder factories and Logf default to the server's own.
	Cluster *cluster.Config
}

// Server is an http.Handler serving the scoring API.
type Server struct {
	reg        *ingest.Registry
	mux        *http.ServeMux
	obsLat     latencyHist // streamad_ingest_observe_seconds
	node       *cluster.Node
	trainer    *pool.Trainer // reported in /metrics; owned by the caller
	metricsCap int           // streams with per-stream series (0 = unlimited)
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.NewDetector == nil {
		return nil, fmt.Errorf("server: NewDetector is required")
	}
	reg, err := ingest.New(ingest.Config{
		NewDetector:      cfg.NewDetector,
		NewThresholder:   cfg.NewThresholder,
		Shards:           cfg.Shards,
		QueueDepth:       cfg.QueueDepth,
		Overload:         cfg.Overload,
		RetryAfter:       cfg.RetryAfter,
		MaxStreams:       cfg.MaxStreams,
		StreamTTL:        cfg.StreamTTL,
		WarmAfter:        cfg.WarmAfter,
		ScorePool:        cfg.ScorePool,
		Store:            cfg.Store,
		SnapshotInterval: cfg.SnapshotInterval,
		SnapshotEvery:    cfg.SnapshotEvery,
		Logf:             cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, mux: http.NewServeMux(), trainer: cfg.TrainerPool}
	switch {
	case cfg.MetricsStreamCap > 0:
		s.metricsCap = cfg.MetricsStreamCap
	case cfg.MetricsStreamCap == 0:
		s.metricsCap = defaultMetricsStreamCap
	}
	if cfg.Cluster != nil && len(cfg.Cluster.Peers) > 0 {
		ccfg := *cfg.Cluster
		if ccfg.NewDetector == nil {
			ccfg.NewDetector = cfg.NewDetector
		}
		if ccfg.NewThresholder == nil {
			if cfg.NewThresholder != nil {
				ccfg.NewThresholder = cfg.NewThresholder
			} else {
				// Mirror the registry's own default so a promoted standby
				// replica carries the same alert policy a fresh stream gets.
				ccfg.NewThresholder = func(string) score.Thresholder {
					return score.NewQuantileThresholder(0.99)
				}
			}
		}
		if ccfg.Logf == nil {
			ccfg.Logf = cfg.Logf
		}
		s.node, err = cluster.New(ccfg)
		if err != nil {
			reg.Close()
			return nil, err
		}
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/observe", s.handleBatchObserve)
	s.mux.HandleFunc("/v1/streams", s.handleList)
	s.mux.HandleFunc("/v1/streams/", s.handleStream)
	return s, nil
}

// Registry exposes the ingestion layer (stats, eviction, snapshots) to
// embedders such as cmd/streamadd.
func (s *Server) Registry() *ingest.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// streamListEntry is one row of GET /v1/streams.
type streamListEntry struct {
	ID     string `json:"id"`
	Steps  int    `json:"steps"`
	Alerts int    `json:"alerts"`
}

// handleList snapshots the stream list under the registry's per-stream
// locks and encodes entirely outside any lock.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	infos := s.reg.Streams()
	out := make([]streamListEntry, 0, len(infos))
	for _, in := range infos {
		out = append(out, streamListEntry{ID: in.ID, Steps: in.Steps, Alerts: in.Alerts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// observeRequest is the POST body of /v1/streams/{id}/observe. It is
// re-marshalled verbatim when an observe is proxied to its ring owner.
//
//streamad:finite-json — the vector was decoded from JSON, which cannot carry NaN/Inf.
type observeRequest struct {
	Vector []float64 `json:"vector"`
}

// ObserveResponse is the scoring result returned to the producer. Step
// is the vector's per-stream sequence number (monotonic per stream).
type ObserveResponse struct {
	Ready         bool    `json:"ready"`
	Score         float64 `json:"score"`
	Nonconformity float64 `json:"nonconformity"`
	Alert         bool    `json:"alert"`
	Threshold     float64 `json:"threshold,omitempty"`
	FineTuned     bool    `json:"fine_tuned,omitempty"`
	// Source attributes the score to the tier or member that produced it
	// for composite detectors ("tier0:zscore" for cascade-screened
	// vectors, "heavy:…" for admitted ones); empty otherwise.
	Source string `json:"source,omitempty"`
	Step   int    `json:"step"`
	// Dropped marks a vector the drop-oldest overload policy discarded
	// before scoring; its sequence number was consumed but no score exists.
	Dropped bool `json:"dropped,omitempty"`
	// Node is the cluster node that scored the vector (empty outside
	// cluster mode); a proxied observe carries the owner's URL here.
	Node string `json:"node,omitempty"`
}

// MemberStatus is one ensemble member's row in StatsResponse.
type MemberStatus struct {
	Index     int     `json:"index"`
	Spec      string  `json:"spec"`
	Ready     int     `json:"ready_steps"`
	FineTunes int     `json:"fine_tunes"`
	Agreement int     `json:"agreement"`
	Weight    float64 `json:"weight"`
	Disabled  bool    `json:"disabled,omitempty"`
	LastScore float64 `json:"last_score"`
}

// StatsResponse is GET /v1/streams/{id}. Members is present only for
// ensemble-backed streams; Threshold is omitted while the alert policy
// still reports a non-finite boundary (see finiteOrZero).
type StatsResponse struct {
	ID string `json:"id"`
	// Node is the cluster node that answered and Owner the ring owner of
	// the stream; both are empty outside cluster mode. They differ
	// briefly while a stream is migrating toward its owner.
	Node      string          `json:"node,omitempty"`
	Owner     string          `json:"owner,omitempty"`
	Steps     int             `json:"steps"`
	Ready     int             `json:"ready_steps"`
	Alerts    int             `json:"alerts"`
	Tier      string          `json:"tier,omitempty"`
	Queued    int             `json:"queued,omitempty"`
	Threshold float64         `json:"threshold,omitempty"`
	Members   []MemberStatus  `json:"members,omitempty"`
	Cascade   *CascadeStatus  `json:"cascade,omitempty"`
	FineTune  *FineTuneStatus `json:"fine_tune,omitempty"`
}

// CascadeStatus is the screening-cascade section of StatsResponse,
// present only for cascade-backed streams: the per-tier traffic split
// and the conformal admission gate's state.
type CascadeStatus struct {
	Gate  string   `json:"gate"`
	Heavy []string `json:"heavy"`
	// Screened/Admitted/Forwarded partition the consumed vectors (see
	// the cascade package for the ramp-up semantics of Forwarded).
	Screened  int `json:"screened"`
	Admitted  int `json:"admitted"`
	Forwarded int `json:"forwarded"`
	// AdmitTarget is the configured false-admission rate ε;
	// AdmissionRate is the observed fraction among gate decisions.
	AdmitTarget   float64 `json:"admit_target"`
	AdmissionRate float64 `json:"admission_rate"`
	// HeavyRate is the fraction of all traffic that reached the heavy
	// tier — the cascade's cost profile.
	HeavyRate float64 `json:"heavy_rate"`
	CalibN    int     `json:"calibration_n"`
	CalibCap  int     `json:"calibration_cap"`
	Screening bool    `json:"screening"`
}

// FineTuneStatus is the serve/train split section of StatsResponse:
// fine-tuning mode, in-flight state and duration accounting.
type FineTuneStatus struct {
	Mode         string  `json:"mode"` // "sync" or "async"
	InFlight     bool    `json:"in_flight,omitempty"`
	Launched     int64   `json:"launched,omitempty"`
	Skipped      int64   `json:"skipped,omitempty"`
	Completed    int64   `json:"completed"`
	LastSeconds  float64 `json:"last_seconds"`
	TotalSeconds float64 `json:"total_seconds"`
}

// finiteOrZero zeroes non-finite values before JSON encoding:
// encoding/json cannot represent NaN/±Inf and would otherwise abort the
// whole response (the +Inf-threshold bug PR 1 fixed for observe
// responses). Paired with omitempty, a non-finite value simply drops the
// field.
func finiteOrZero(f float64) float64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return f
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/streams/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	if id == "" {
		http.Error(w, "missing stream id", http.StatusBadRequest)
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		s.handleStats(w, r, id)
	case len(parts) == 2 && parts[1] == "observe" && r.Method == http.MethodPost:
		s.handleObserve(w, r, id)
	case len(parts) == 2 && parts[1] == "snapshot" && r.Method == http.MethodGet:
		s.handleSnapshot(w, id)
	case len(parts) == 2 && parts[1] == "migrate" && r.Method == http.MethodPost:
		s.handleMigrate(w, r, id)
	case len(parts) == 2 && parts[1] == "wal" && r.Method == http.MethodGet:
		s.handleWALTail(w, r, id)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// retryAfterSeconds renders the Retry-After header value (whole seconds,
// rounded up, at least 1).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request, id string) {
	start := time.Now()
	defer func() { s.obsLat.observe(time.Since(start)) }()
	var req observeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Vector) == 0 {
		http.Error(w, "empty vector", http.StatusBadRequest)
		return
	}
	if s.node != nil {
		if r.Header.Get(cluster.ForwardedHeader) == "" {
			if owner := s.node.Owner(id); owner != s.node.Self() {
				s.proxyObserve(w, id, owner, req.Vector)
				return
			}
		} else {
			s.node.NoteForwardedIn(1)
		}
	}
	res, err := s.reg.Observe(id, req.Vector)
	if errors.Is(err, ingest.ErrOverload) {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds(s.reg.RetryAfter())))
		http.Error(w, "stream queue full; retry later", http.StatusTooManyRequests)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if res.Err != nil {
		http.Error(w, res.Err.Error(), http.StatusInternalServerError)
		return
	}
	if res.BadShape {
		http.Error(w, "vector shape does not match this stream's detector", http.StatusBadRequest)
		return
	}
	out := toObserveResponse(res)
	if s.node != nil {
		out.Node = s.node.Self()
	}
	writeJSON(w, http.StatusOK, out)
}

// toObserveResponse maps an ingest result onto the wire format.
func toObserveResponse(res ingest.Result) ObserveResponse {
	out := ObserveResponse{Step: int(res.Seq), Dropped: res.Dropped}
	if !res.Ready {
		return out
	}
	out.Ready = true
	out.Score = finiteOrZero(res.Score)
	out.Nonconformity = finiteOrZero(res.Nonconformity)
	out.FineTuned = res.FineTuned
	out.Alert = res.Alert
	out.Source = res.Source
	// The quantile policy reports +Inf until it has enough scores —
	// leave the field empty until the threshold is real.
	out.Threshold = finiteOrZero(res.Threshold)
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, id string) {
	info, ok := s.reg.StreamStats(id)
	if !ok {
		// In cluster mode the stream may live on its ring owner; answer
		// from there so any node can serve any stream's stats. The
		// forwarded guard keeps two disagreeing nodes from ping-ponging.
		if s.node != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
			if owner := s.node.Owner(id); owner != s.node.Self() {
				s.proxyStats(w, id, owner)
				return
			}
		}
		http.Error(w, "unknown stream", http.StatusNotFound)
		return
	}
	resp := StatsResponse{
		ID: id, Steps: info.Steps, Ready: info.Ready, Alerts: info.Alerts,
		Tier:      info.Tier,
		Queued:    info.QueueLen,
		Threshold: finiteOrZero(info.Threshold),
	}
	if s.node != nil {
		resp.Node = s.node.Self()
		resp.Owner = s.node.Owner(id)
	}
	if len(info.Members) > 0 {
		resp.Members = make([]MemberStatus, len(info.Members))
		for i, m := range info.Members {
			resp.Members[i] = MemberStatus{
				Index:     m.Index,
				Spec:      m.Label,
				Ready:     m.Ready,
				FineTunes: m.FineTunes,
				Agreement: m.Agreement,
				Weight:    finiteOrZero(m.Weight),
				Disabled:  m.Disabled,
				LastScore: finiteOrZero(m.LastScore),
			}
		}
	}
	if cs := info.Cascade; cs != nil {
		resp.Cascade = &CascadeStatus{
			Gate:          cs.GateLabel,
			Heavy:         cs.HeavyLabels,
			Screened:      cs.Screened,
			Admitted:      cs.Admitted,
			Forwarded:     cs.Forwarded,
			AdmitTarget:   cs.AdmitTarget,
			AdmissionRate: finiteOrZero(cs.AdmissionRate),
			HeavyRate:     finiteOrZero(cs.HeavyRate),
			CalibN:        cs.CalibN,
			CalibCap:      cs.CalibCap,
			Screening:     cs.Screening,
		}
	}
	if ft := info.FineTune; ft != nil {
		mode := "sync"
		if ft.Async {
			mode = "async"
		}
		resp.FineTune = &FineTuneStatus{
			Mode:         mode,
			InFlight:     ft.InFlight,
			Launched:     ft.Launched,
			Skipped:      ft.Skipped,
			Completed:    ft.Completed,
			LastSeconds:  ft.LastSeconds,
			TotalSeconds: ft.TotalSeconds,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRecord is one NDJSON line of POST /v1/observe.
type batchRecord struct {
	Stream string    `json:"stream"`
	Vector []float64 `json:"vector"`
}

// BatchResult is one NDJSON line of the batch response, emitted in
// request order. Seq is the vector's per-stream sequence number;
// exactly one of the score fields, Shed, Dropped or Error describes the
// outcome.
//
//streamad:finite-json — toBatchResult passes every float through finiteOrZero.
type BatchResult struct {
	Stream        string  `json:"stream"`
	Seq           uint64  `json:"seq"`
	Ready         bool    `json:"ready"`
	Score         float64 `json:"score"`
	Nonconformity float64 `json:"nonconformity"`
	Alert         bool    `json:"alert,omitempty"`
	Threshold     float64 `json:"threshold,omitempty"`
	FineTuned     bool    `json:"fine_tuned,omitempty"`
	// Source attributes the score to the producing tier or member for
	// composite detectors (see ObserveResponse.Source).
	Source string `json:"source,omitempty"`
	// Shed marks a vector rejected by the shed overload policy; retry
	// after RetryAfterMs.
	Shed         bool  `json:"shed,omitempty"`
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Dropped marks a vector the drop-oldest policy discarded unscored.
	Dropped bool   `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
	// Node is the cluster node that scored the record (empty outside
	// cluster mode); forwarded records carry the owner's URL here.
	Node string `json:"node,omitempty"`
}

const (
	// MaxBatchRecords bounds one POST /v1/observe body; larger batches
	// are rejected whole with 413 and a BatchCapError naming the cap.
	MaxBatchRecords = 16384
	// maxRecordBytes bounds one NDJSON line.
	maxRecordBytes = 1 << 20
)

// BatchCapError is the structured JSON body of a 413 response to a
// POST /v1/observe batch exceeding MaxBatchRecords. Nothing from the
// rejected batch is enqueued: clients can split and resend the whole
// batch without double-scoring any record.
type BatchCapError struct {
	Error           string `json:"error"`
	MaxBatchRecords int    `json:"max_batch_records"`
}

// handleBatchObserve is POST /v1/observe: an NDJSON batch of
// {"stream","vector"} records spanning any number of streams. The body
// is parsed and counted before anything touches a queue, so a batch
// over MaxBatchRecords is rejected whole (413 + BatchCapError) with no
// partial side effects. Admitted batches enqueue every record before
// awaiting any result, so consecutive records for one stream coalesce
// into single dispatcher passes; the response is NDJSON, one result per
// record, in request order. Records shed by the overload policy are
// reported inline (the whole batch is never failed for one hot stream).
func (s *Server) handleBatchObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	defer func() { s.obsLat.observe(time.Since(start)) }()
	// clusterActive: this node routes records to their ring owners. A
	// batch that already crossed the proxy layer (forwarded header) is
	// scored entirely locally instead — the loop guard.
	clusterActive := s.node != nil && r.Header.Get(cluster.ForwardedHeader) == ""
	type pending struct {
		rec    batchRecord
		raw    []byte      // original NDJSON line, kept only for forwarding
		ok     bool        // rec parsed and validated; enqueue it below
		out    BatchResult // pre-filled for records that never reach a queue
		done   <-chan ingest.Result
		fwd    *forwardGroup // non-nil when another node scores this record
		fwdIdx int           // this record's line index in fwd's response
	}
	var pendings []pending
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxRecordBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if len(pendings) >= MaxBatchRecords {
			writeJSON(w, http.StatusRequestEntityTooLarge, BatchCapError{
				Error:           fmt.Sprintf("batch exceeds the %d-record cap; split it into smaller batches", MaxBatchRecords),
				MaxBatchRecords: MaxBatchRecords,
			})
			return
		}
		var rec batchRecord
		p := pending{}
		switch err := json.Unmarshal(line, &rec); {
		case err != nil:
			p.out = BatchResult{Error: "bad json: " + err.Error()}
		case rec.Stream == "":
			p.out = BatchResult{Error: "missing stream id"}
		case len(rec.Vector) == 0:
			p.out = BatchResult{Stream: rec.Stream, Error: "empty vector"}
		default:
			p.rec, p.ok = rec, true
			if clusterActive {
				p.raw = append([]byte(nil), line...) // scanner reuses its buffer
			}
		}
		pendings = append(pendings, p)
	}
	if err := sc.Err(); err != nil && len(pendings) == 0 {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(pendings) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	// Group remote-owned records into one sub-batch per peer and ship
	// them concurrently with local scoring; the groups are joined before
	// the response is written. Records for self (or with no cluster) fall
	// through to the local enqueue loop below.
	var groups map[string]*forwardGroup
	if clusterActive {
		self := s.node.Self()
		for i := range pendings {
			p := &pendings[i]
			if !p.ok {
				continue
			}
			owner := s.node.Owner(p.rec.Stream)
			if owner == self {
				continue
			}
			if groups == nil {
				groups = make(map[string]*forwardGroup)
			}
			g := groups[owner]
			if g == nil {
				g = &forwardGroup{peer: owner}
				groups[owner] = g
			}
			g.body.Write(p.raw)
			g.body.WriteByte('\n')
			p.fwd, p.fwdIdx = g, g.count
			g.count++
		}
	} else if s.node != nil {
		nOK := 0
		for i := range pendings {
			if pendings[i].ok {
				nOK++
			}
		}
		s.node.NoteForwardedIn(nOK)
	}
	fwdWG := forwardAll(s.node, groups)
	for i := range pendings {
		p := &pendings[i]
		if !p.ok || p.fwd != nil {
			continue
		}
		ack, err := s.reg.Enqueue(p.rec.Stream, p.rec.Vector)
		switch {
		case errors.Is(err, ingest.ErrOverload):
			p.out = BatchResult{
				Stream: p.rec.Stream, Shed: true,
				RetryAfterMs: s.reg.RetryAfter().Milliseconds(),
			}
		case err != nil:
			p.out = BatchResult{Stream: p.rec.Stream, Error: err.Error()}
		default:
			p.out = BatchResult{Stream: p.rec.Stream, Seq: ack.Seq}
			p.done = ack.Done
		}
	}
	fwdWG.Wait()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, p := range pendings {
		out := p.out
		switch {
		case p.fwd != nil:
			out = p.fwd.result(p.fwdIdx, p.rec.Stream)
		case p.done != nil:
			out = toBatchResult(out.Stream, <-p.done)
			if s.node != nil {
				out.Node = s.node.Self()
			}
		}
		enc.Encode(out)
	}
}

// toBatchResult maps an ingest result onto one batch response line.
func toBatchResult(stream string, res ingest.Result) BatchResult {
	out := BatchResult{Stream: stream, Seq: res.Seq}
	switch {
	case res.Err != nil:
		out.Error = res.Err.Error()
	case res.BadShape:
		out.Error = "vector shape does not match this stream's detector"
	case res.Dropped:
		out.Dropped = true
	case res.Ready:
		out.Ready = true
		out.Score = finiteOrZero(res.Score)
		out.Nonconformity = finiteOrZero(res.Nonconformity)
		out.Alert = res.Alert
		out.FineTuned = res.FineTuned
		out.Source = res.Source
		out.Threshold = finiteOrZero(res.Threshold)
	}
	return out
}

// handleMetrics exposes per-stream counters plus the ingestion-layer
// families in the Prometheus text exposition format, so the daemon plugs
// into standard scraping setups without any dependency. The stream list
// is snapshotted first (per-stream locks only); all encoding happens
// outside any lock. Ensemble-backed streams additionally get one row per
// member in the streamad_ensemble_member_* families.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rows := s.reg.Streams()
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	// Per-stream families are rendered for the first MetricsStreamCap
	// streams by id; the rest only appear in the omitted gauge. The
	// line-level metriclint suppressions below all rest on this bound.
	omitted := 0
	if s.metricsCap > 0 && len(rows) > s.metricsCap {
		omitted = len(rows) - s.metricsCap
		rows = rows[:s.metricsCap]
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintln(w, "# HELP streamad_metrics_streams_omitted Streams beyond the per-stream series cap (-metrics-stream-cap); their series are not rendered.")
	fmt.Fprintln(w, "# TYPE streamad_metrics_streams_omitted gauge")
	fmt.Fprintf(w, "streamad_metrics_streams_omitted %d\n", omitted)
	fmt.Fprintln(w, "# HELP streamad_steps_total Stream vectors observed per stream.")
	fmt.Fprintln(w, "# TYPE streamad_steps_total counter")
	for _, r := range rows {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_steps_total{stream=%q} %d\n", r.ID, r.Steps)
	}
	fmt.Fprintln(w, "# HELP streamad_ready_steps_total Scored (post-warmup) steps per stream.")
	fmt.Fprintln(w, "# TYPE streamad_ready_steps_total counter")
	for _, r := range rows {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_ready_steps_total{stream=%q} %d\n", r.ID, r.Ready)
	}
	fmt.Fprintln(w, "# HELP streamad_alerts_total Threshold crossings per stream.")
	fmt.Fprintln(w, "# TYPE streamad_alerts_total counter")
	for _, r := range rows {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_alerts_total{stream=%q} %d\n", r.ID, r.Alerts)
	}
	writeFineTuneMetrics(w, rows)
	writeCascadeMetrics(w, rows)
	s.writeIngestMetrics(w)
	s.writeClusterMetrics(w)
	hasMembers := false
	for _, r := range rows {
		if len(r.Members) > 0 {
			hasMembers = true
			break
		}
	}
	if !hasMembers {
		return
	}
	memberRows := func(emit func(r ingest.StreamInfo, m ensemble.MemberStat)) {
		for _, r := range rows {
			for _, m := range r.Members {
				emit(r, m)
			}
		}
	}
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_ready_total Scored steps per ensemble member.")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_ready_total counter")
	memberRows(func(r ingest.StreamInfo, m ensemble.MemberStat) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_ensemble_member_ready_total{stream=%q,member=\"%d\",spec=%q} %d\n", r.ID, m.Index, m.Label, m.Ready)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_fine_tunes_total Drift-triggered fine-tunes per ensemble member.")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_fine_tunes_total counter")
	memberRows(func(r ingest.StreamInfo, m ensemble.MemberStat) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_ensemble_member_fine_tunes_total{stream=%q,member=\"%d\",spec=%q} %d\n", r.ID, m.Index, m.Label, m.FineTunes)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_agreement Rolling consensus-agreement counter per ensemble member.")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_agreement gauge")
	memberRows(func(r ingest.StreamInfo, m ensemble.MemberStat) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_ensemble_member_agreement{stream=%q,member=\"%d\",spec=%q} %d\n", r.ID, m.Index, m.Label, m.Agreement)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_weight Normalized aggregation weight per ensemble member (0 when pruned).")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_weight gauge")
	memberRows(func(r ingest.StreamInfo, m ensemble.MemberStat) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_ensemble_member_weight{stream=%q,member=\"%d\",spec=%q} %g\n", r.ID, m.Index, m.Label, m.Weight)
	})
	fmt.Fprintln(w, "# HELP streamad_ensemble_member_disabled Whether the pruning policy currently excludes the member (0/1).")
	fmt.Fprintln(w, "# TYPE streamad_ensemble_member_disabled gauge")
	memberRows(func(r ingest.StreamInfo, m ensemble.MemberStat) {
		v := 0
		if m.Disabled {
			v = 1
		}
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_ensemble_member_disabled{stream=%q,member=\"%d\",spec=%q} %d\n", r.ID, m.Index, m.Label, v)
	})
}

// writeFineTuneMetrics renders the serve/train split families for every
// stream whose detector exposes fine-tune statistics: an in-flight gauge
// and the fine-tune duration histogram (cumulative buckets, Prometheus
// convention).
func writeFineTuneMetrics(w http.ResponseWriter, rows []ingest.StreamInfo) {
	any := false
	for _, r := range rows {
		if r.FineTune != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintln(w, "# HELP streamad_finetune_inflight Whether a background fine-tune is running (0/1; always 0 in sync mode).")
	fmt.Fprintln(w, "# TYPE streamad_finetune_inflight gauge")
	for _, r := range rows {
		if r.FineTune == nil {
			continue
		}
		v := 0
		if r.FineTune.InFlight {
			v = 1
		}
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_finetune_inflight{stream=%q} %d\n", r.ID, v)
	}
	fmt.Fprintln(w, "# HELP streamad_finetune_skipped_total Drift triggers dropped because a fine-tune was already in flight.")
	fmt.Fprintln(w, "# TYPE streamad_finetune_skipped_total counter")
	for _, r := range rows {
		if r.FineTune == nil {
			continue
		}
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_finetune_skipped_total{stream=%q} %d\n", r.ID, r.FineTune.Skipped)
	}
	fmt.Fprintln(w, "# HELP streamad_finetune_seconds Fine-tuning epoch duration.")
	fmt.Fprintln(w, "# TYPE streamad_finetune_seconds histogram")
	for _, r := range rows {
		ft := r.FineTune
		if ft == nil {
			continue
		}
		var cum uint64
		for i, bound := range core.FineTuneBuckets {
			cum += ft.Buckets[i]
			//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
			fmt.Fprintf(w, "streamad_finetune_seconds_bucket{stream=%q,le=\"%g\"} %d\n", r.ID, bound, cum)
		}
		cum += ft.Buckets[len(core.FineTuneBuckets)]
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_finetune_seconds_bucket{stream=%q,le=\"+Inf\"} %d\n", r.ID, cum)
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_finetune_seconds_sum{stream=%q} %g\n", r.ID, ft.TotalSeconds)
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_finetune_seconds_count{stream=%q} %d\n", r.ID, ft.Completed)
	}
}

// writeCascadeMetrics renders the streamad_cascade_* families for every
// cascade-backed stream: the per-tier traffic counters and the conformal
// admission gate's target and observed rates.
func writeCascadeMetrics(w http.ResponseWriter, rows []ingest.StreamInfo) {
	any := false
	for _, r := range rows {
		if r.Cascade != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	cascadeRows := func(emit func(r ingest.StreamInfo, cs *cascade.Stats)) {
		for _, r := range rows {
			if r.Cascade != nil {
				emit(r, r.Cascade)
			}
		}
	}
	fmt.Fprintln(w, "# HELP streamad_cascade_screened_total Vectors answered by the tier-0 gate alone.")
	fmt.Fprintln(w, "# TYPE streamad_cascade_screened_total counter")
	cascadeRows(func(r ingest.StreamInfo, cs *cascade.Stats) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_cascade_screened_total{stream=%q,gate=%q} %d\n", r.ID, cs.GateLabel, cs.Screened)
	})
	fmt.Fprintln(w, "# HELP streamad_cascade_admitted_total Vectors the conformal gate admitted to the heavy tier.")
	fmt.Fprintln(w, "# TYPE streamad_cascade_admitted_total counter")
	cascadeRows(func(r ingest.StreamInfo, cs *cascade.Stats) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_cascade_admitted_total{stream=%q,gate=%q} %d\n", r.ID, cs.GateLabel, cs.Admitted)
	})
	fmt.Fprintln(w, "# HELP streamad_cascade_forwarded_total Vectors forwarded to the heavy tier unconditionally during ramp-up.")
	fmt.Fprintln(w, "# TYPE streamad_cascade_forwarded_total counter")
	cascadeRows(func(r ingest.StreamInfo, cs *cascade.Stats) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_cascade_forwarded_total{stream=%q,gate=%q} %d\n", r.ID, cs.GateLabel, cs.Forwarded)
	})
	fmt.Fprintln(w, "# HELP streamad_cascade_admit_target Configured false-admission rate epsilon of the conformal gate.")
	fmt.Fprintln(w, "# TYPE streamad_cascade_admit_target gauge")
	cascadeRows(func(r ingest.StreamInfo, cs *cascade.Stats) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_cascade_admit_target{stream=%q} %g\n", r.ID, cs.AdmitTarget)
	})
	fmt.Fprintln(w, "# HELP streamad_cascade_admission_rate Observed admission fraction among gate decisions.")
	fmt.Fprintln(w, "# TYPE streamad_cascade_admission_rate gauge")
	cascadeRows(func(r ingest.StreamInfo, cs *cascade.Stats) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_cascade_admission_rate{stream=%q} %g\n", r.ID, cs.AdmissionRate)
	})
	fmt.Fprintln(w, "# HELP streamad_cascade_heavy_rate Fraction of all traffic that reached the heavy tier.")
	fmt.Fprintln(w, "# TYPE streamad_cascade_heavy_rate gauge")
	cascadeRows(func(r ingest.StreamInfo, cs *cascade.Stats) {
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_cascade_heavy_rate{stream=%q} %g\n", r.ID, cs.HeavyRate)
	})
	fmt.Fprintln(w, "# HELP streamad_cascade_screening Whether the conformal gate is currently screening (0 = ramp-up forwarding).")
	fmt.Fprintln(w, "# TYPE streamad_cascade_screening gauge")
	cascadeRows(func(r ingest.StreamInfo, cs *cascade.Stats) {
		v := 0
		if cs.Screening {
			v = 1
		}
		//streamad:ignore metriclint per-stream series bounded by -metrics-stream-cap; overflow counted in streamad_metrics_streams_omitted
		fmt.Fprintf(w, "streamad_cascade_screening{stream=%q} %d\n", r.ID, v)
	})
}

// writeIngestMetrics renders the streamad_ingest_* families from one
// registry stats snapshot.
func (s *Server) writeIngestMetrics(w http.ResponseWriter) {
	st := s.reg.Stats()
	fmt.Fprintln(w, "# HELP streamad_ingest_shed_total Vectors rejected by the shed overload policy.")
	fmt.Fprintln(w, "# TYPE streamad_ingest_shed_total counter")
	fmt.Fprintf(w, "streamad_ingest_shed_total{policy=%q} %d\n", st.Overload.String(), st.ShedTotal)
	fmt.Fprintln(w, "# HELP streamad_ingest_dropped_total Vectors discarded by the drop-oldest overload policy.")
	fmt.Fprintln(w, "# TYPE streamad_ingest_dropped_total counter")
	fmt.Fprintf(w, "streamad_ingest_dropped_total{policy=%q} %d\n", st.Overload.String(), st.DroppedTotal)
	fmt.Fprintln(w, "# HELP streamad_ingest_evicted_streams_total Idle streams checkpointed and unloaded by the TTL evictor.")
	fmt.Fprintln(w, "# TYPE streamad_ingest_evicted_streams_total counter")
	fmt.Fprintf(w, "streamad_ingest_evicted_streams_total %d\n", st.EvictedTotal)
	fmt.Fprintln(w, "# HELP streamad_ingest_shard_streams Live streams resident per registry shard.")
	fmt.Fprintln(w, "# TYPE streamad_ingest_shard_streams gauge")
	for i, sh := range st.PerShard {
		fmt.Fprintf(w, "streamad_ingest_shard_streams{shard=\"%d\"} %d\n", i, sh.Streams)
	}
	fmt.Fprintln(w, "# HELP streamad_ingest_queue_depth Vectors queued per registry shard.")
	fmt.Fprintln(w, "# TYPE streamad_ingest_queue_depth gauge")
	for i, sh := range st.PerShard {
		fmt.Fprintf(w, "streamad_ingest_queue_depth{shard=\"%d\"} %d\n", i, sh.QueueDepth)
	}
	fmt.Fprintln(w, "# HELP streamad_ingest_batch_size Vectors coalesced per dispatcher pass.")
	fmt.Fprintln(w, "# TYPE streamad_ingest_batch_size histogram")
	for i, bound := range ingest.BatchSizeBounds {
		fmt.Fprintf(w, "streamad_ingest_batch_size_bucket{le=\"%d\"} %d\n", bound, st.BatchSizeBuckets[i])
	}
	fmt.Fprintf(w, "streamad_ingest_batch_size_bucket{le=\"+Inf\"} %d\n", st.Batches)
	fmt.Fprintf(w, "streamad_ingest_batch_size_sum %d\n", st.BatchSizeSum)
	fmt.Fprintf(w, "streamad_ingest_batch_size_count %d\n", st.Batches)
	writeTierMetrics(w, st)
	writePoolMetrics(w, st.ScorePool, s.trainer)
	s.obsLat.write(w)
}

// writeTierMetrics renders the streamad_tier_* families: the residency
// ladder's instantaneous occupancy and its transition counters.
func writeTierMetrics(w http.ResponseWriter, st ingest.Stats) {
	fmt.Fprintln(w, "# HELP streamad_tier_streams Streams per residency tier (hot+warm resident, cold checkpointed on disk).")
	fmt.Fprintln(w, "# TYPE streamad_tier_streams gauge")
	fmt.Fprintf(w, "streamad_tier_streams{tier=\"hot\"} %d\n", st.HotStreams)
	fmt.Fprintf(w, "streamad_tier_streams{tier=\"warm\"} %d\n", st.WarmStreams)
	fmt.Fprintf(w, "streamad_tier_streams{tier=\"cold\"} %d\n", st.ColdStreams)
	fmt.Fprintln(w, "# HELP streamad_tier_transitions_total Stream moves along the residency ladder.")
	fmt.Fprintln(w, "# TYPE streamad_tier_transitions_total counter")
	fmt.Fprintf(w, "streamad_tier_transitions_total{from=\"hot\",to=\"warm\"} %d\n", st.HotToWarm)
	fmt.Fprintf(w, "streamad_tier_transitions_total{from=\"warm\",to=\"hot\"} %d\n", st.WarmToHot)
	fmt.Fprintf(w, "streamad_tier_transitions_total{from=\"warm\",to=\"cold\"} %d\n", st.WarmToCold)
	fmt.Fprintf(w, "streamad_tier_transitions_total{from=\"hot\",to=\"cold\"} %d\n", st.HotToCold)
	fmt.Fprintf(w, "streamad_tier_transitions_total{from=\"cold\",to=\"hot\"} %d\n", st.ColdToHot)
}

// writePoolMetrics renders the streamad_pool_* families for the shared
// scoring pool and (when the server was handed one) the trainer pool.
func writePoolMetrics(w http.ResponseWriter, sp pool.Stats, tr *pool.Trainer) {
	fmt.Fprintln(w, "# HELP streamad_pool_score_workers Scoring pool worker goroutines.")
	fmt.Fprintln(w, "# TYPE streamad_pool_score_workers gauge")
	fmt.Fprintf(w, "streamad_pool_score_workers %d\n", sp.Workers)
	fmt.Fprintln(w, "# HELP streamad_pool_score_queue_depth Tasks waiting for a scoring worker.")
	fmt.Fprintln(w, "# TYPE streamad_pool_score_queue_depth gauge")
	fmt.Fprintf(w, "streamad_pool_score_queue_depth %d\n", sp.Queued)
	fmt.Fprintln(w, "# HELP streamad_pool_score_running Scoring tasks currently executing.")
	fmt.Fprintln(w, "# TYPE streamad_pool_score_running gauge")
	fmt.Fprintf(w, "streamad_pool_score_running %d\n", sp.Running)
	fmt.Fprintln(w, "# HELP streamad_pool_score_tasks_total Scoring tasks completed.")
	fmt.Fprintln(w, "# TYPE streamad_pool_score_tasks_total counter")
	fmt.Fprintf(w, "streamad_pool_score_tasks_total %d\n", sp.Completed)
	if tr == nil {
		return
	}
	ts := tr.Stats()
	fmt.Fprintln(w, "# HELP streamad_pool_train_slots Concurrent training slots.")
	fmt.Fprintln(w, "# TYPE streamad_pool_train_slots gauge")
	fmt.Fprintf(w, "streamad_pool_train_slots %d\n", ts.Slots)
	fmt.Fprintln(w, "# HELP streamad_pool_train_queue_depth Fine-tunes waiting for a training slot.")
	fmt.Fprintln(w, "# TYPE streamad_pool_train_queue_depth gauge")
	fmt.Fprintf(w, "streamad_pool_train_queue_depth %d\n", ts.Queued)
	fmt.Fprintln(w, "# HELP streamad_pool_train_running Fine-tunes currently training.")
	fmt.Fprintln(w, "# TYPE streamad_pool_train_running gauge")
	fmt.Fprintf(w, "streamad_pool_train_running %d\n", ts.Running)
	fmt.Fprintln(w, "# HELP streamad_pool_train_total Fine-tunes completed through the trainer pool.")
	fmt.Fprintln(w, "# TYPE streamad_pool_train_total counter")
	fmt.Fprintf(w, "streamad_pool_train_total %d\n", ts.Completed)
	fmt.Fprintln(w, "# HELP streamad_pool_train_canceled_total Queued fine-tunes canceled before a slot ran them.")
	fmt.Fprintln(w, "# TYPE streamad_pool_train_canceled_total counter")
	fmt.Fprintf(w, "streamad_pool_train_canceled_total %d\n", ts.Canceled)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing sensible left to do.
		_ = err
	}
}
