package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamad/internal/cluster"
	"streamad/internal/ingest"
	"streamad/internal/persist"
)

// newClusterServer builds a Server wired into a cluster membership
// without starting the background loops (no StartCluster): the ring,
// the forwarding/loop-guard logic and the migrate/wal endpoints are all
// live, but nothing probes or migrates on its own — each test drives
// exactly the path it checks.
func newClusterServer(t *testing.T, self string, peers []string, store *persist.Store) *Server {
	t.Helper()
	cfg := persistentConfig(store)
	cfg.Cluster = &cluster.Config{
		Self: self, Peers: peers,
		ProbeInterval: time.Hour, RebalanceInterval: -1, StandbyInterval: -1,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// observeLocal scores one vector on this node regardless of ring
// ownership, by presenting the request as already-forwarded.
func observeLocal(t *testing.T, s *Server, id string, vec []float64) ObserveResponse {
	t.Helper()
	body, _ := json.Marshal(map[string][]float64{"vector": vec})
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/"+id+"/observe", bytes.NewReader(body))
	req.Header.Set(cluster.ForwardedHeader, "test")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("observe %s: status %d: %s", id, rec.Code, rec.Body.String())
	}
	var resp ObserveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// statsLocal fetches a stream's stats from this node without letting it
// proxy to the ring owner; the bool reports whether the stream is live
// here.
func statsLocal(t *testing.T, s *Server, id string) (StatsResponse, bool) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/streams/"+id, nil)
	req.Header.Set(cluster.ForwardedHeader, "test")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code == http.StatusNotFound {
		return StatsResponse{}, false
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("stats %s: status %d: %s", id, rec.Code, rec.Body.String())
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp, true
}

// migrateRequestFor packages a Handoff the way the rebalancer wires it
// onto POST /migrate.
func migrateRequestFor(t *testing.T, from string, hs *ingest.HandoffState) []byte {
	t.Helper()
	blob, err := persist.EncodeSnapshotFile(hs.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	req := cluster.MigrateRequest{Node: from, Snapshot: blob, Fingerprint: hs.Fingerprint}
	for _, rec := range hs.Tail {
		req.WAL = append(req.WAL, cluster.WALEntry{Seq: rec.Seq, Vector: rec.Vector})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postMigrate(s *Server, id string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/"+id+"/migrate", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestMigrateEndpoint: the full wire protocol — a stream handed off from
// node A lands on node B via POST /migrate with a matching fingerprint
// acknowledgment, and keeps scoring from the next sequence number.
func TestMigrateEndpoint(t *testing.T) {
	const selfA, selfB = "http://a.test", "http://b.test"
	peers := []string{selfA, selfB}
	storeA, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer storeA.Close()
	storeB, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer storeB.Close()
	srvA := newClusterServer(t, selfA, peers, storeA)
	srvB := newClusterServer(t, selfB, peers, storeB)

	vecs := testVectors(20)
	for _, v := range vecs {
		observeLocal(t, srvA, "mig-1", v)
	}
	hs, err := srvA.reg.Handoff("mig-1")
	if err != nil {
		t.Fatal(err)
	}
	body := migrateRequestFor(t, selfA, hs)
	rec := postMigrate(srvB, "mig-1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("migrate = %d: %s", rec.Code, rec.Body.String())
	}
	var ack cluster.MigrateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Node != selfB || ack.Fingerprint != hs.Fingerprint {
		t.Fatalf("ack = %+v, want node %s fp %08x", ack, selfB, hs.Fingerprint)
	}
	resp := observeLocal(t, srvB, "mig-1", testVectors(21)[20])
	if resp.Step != 20 {
		t.Fatalf("post-migration step = %d, want 20 (sequence continued, not a fresh stream)", resp.Step)
	}

	// Replaying the same migration now loses the seq-ordered conflict:
	// the live stream has assigned more sequence numbers.
	if rec := postMigrate(srvB, "mig-1", body); rec.Code != http.StatusConflict {
		t.Fatalf("replayed migrate = %d, want 409", rec.Code)
	}
	// Mismatched stream id in the path vs the snapshot.
	if rec := postMigrate(srvB, "mig-other", body); rec.Code != http.StatusBadRequest {
		t.Fatalf("mismatched-id migrate = %d, want 400", rec.Code)
	}
	// Garbage snapshot bytes.
	bad, _ := json.Marshal(cluster.MigrateRequest{Node: selfA, Snapshot: []byte("not a snapshot")})
	if rec := postMigrate(srvB, "mig-1", bad); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage-snapshot migrate = %d, want 400", rec.Code)
	}
	// A node outside any cluster refuses the endpoint outright.
	solo, err := New(persistentConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { solo.Close() })
	if rec := postMigrate(solo, "mig-1", body); rec.Code != http.StatusNotImplemented {
		t.Fatalf("migrate on non-cluster node = %d, want 501", rec.Code)
	}
}

// TestMigrateFingerprintMismatch: a tampered fingerprint must be
// refused, and the half-adopted stream torn down — the source keeps
// ownership, so the target holding a divergent copy would split brain.
func TestMigrateFingerprintMismatch(t *testing.T) {
	const selfA, selfB = "http://a.test", "http://b.test"
	peers := []string{selfA, selfB}
	storeA, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer storeA.Close()
	storeB, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer storeB.Close()
	srvA := newClusterServer(t, selfA, peers, storeA)
	srvB := newClusterServer(t, selfB, peers, storeB)

	for _, v := range testVectors(10) {
		observeLocal(t, srvA, "mig-2", v)
	}
	hs, err := srvA.reg.Handoff("mig-2")
	if err != nil {
		t.Fatal(err)
	}
	hs.Fingerprint ^= 1
	rec := postMigrate(srvB, "mig-2", migrateRequestFor(t, selfA, hs))
	if rec.Code != http.StatusConflict {
		t.Fatalf("tampered migrate = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "fingerprint") {
		t.Fatalf("tampered migrate body = %q, want a fingerprint complaint", rec.Body.String())
	}
	if _, live := statsLocal(t, srvB, "mig-2"); live {
		t.Fatal("target kept the stream after refusing its fingerprint")
	}
}

// TestWALTailEndpoint: GET /wal serves the tail as NDJSON from the
// requested sequence, reports the consumed boundary in a header, and
// maps the registry's error taxonomy onto 4xx/5xx statuses (404 unknown,
// 410 rotated with a resync boundary, 501 without a store).
func TestWALTailEndpoint(t *testing.T) {
	const selfA, selfB = "http://a.test", "http://b.test"
	peers := []string{selfA, selfB}
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := newClusterServer(t, selfA, peers, store)
	for _, v := range testVectors(8) {
		observeLocal(t, srv, "w-1", v)
	}

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	rec := get("/v1/streams/w-1/wal?from=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("wal = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Streamad-Seq-Done"); got != "8" {
		t.Fatalf("seq-done header = %q, want 8", got)
	}
	var seqs []uint64
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var e cluster.WALEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad wal line %q: %v", sc.Text(), err)
		}
		if len(e.Vector) != 3 {
			t.Fatalf("wal entry %d has %d channels", e.Seq, len(e.Vector))
		}
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 5 || seqs[0] != 3 || seqs[4] != 7 {
		t.Fatalf("wal seqs = %v, want 3..7", seqs)
	}
	if rec := get("/v1/streams/w-1/wal?from=xyz"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad from = %d, want 400", rec.Code)
	}
	if rec := get("/v1/streams/ghost/wal?from=0"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown stream = %d, want 404", rec.Code)
	}
	noStore := newClusterServer(t, selfA, peers, nil)
	observeLocal(t, noStore, "w-1", testVectors(1)[0])
	recNS := httptest.NewRecorder()
	noStore.ServeHTTP(recNS, httptest.NewRequest(http.MethodGet, "/v1/streams/w-1/wal?from=0", nil))
	if recNS.Code != http.StatusNotImplemented {
		t.Fatalf("wal without store = %d, want 501", recNS.Code)
	}
}

// TestWALTailRotated: once the snapshotter folds the tail into a
// checkpoint, a follower asking for pre-boundary records gets 410 plus
// the boundary to resync from.
func TestWALTailRotated(t *testing.T) {
	const selfA, selfB = "http://a.test", "http://b.test"
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg := persistentConfig(store)
	cfg.SnapshotEvery = 4
	cfg.Cluster = &cluster.Config{
		Self: selfA, Peers: []string{selfA, selfB},
		ProbeInterval: time.Hour, RebalanceInterval: -1, StandbyInterval: -1,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	for _, v := range testVectors(9) {
		observeLocal(t, srv, "w-2", v)
	}
	// The 4-entry trigger kicked the background snapshotter; poll until
	// the rotation is visible through the endpoint.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/w-2/wal?from=0", nil))
		if rec.Code == http.StatusGone {
			var gone cluster.WALGone
			if err := json.Unmarshal(rec.Body.Bytes(), &gone); err != nil {
				t.Fatalf("bad 410 body %q: %v", rec.Body.String(), err)
			}
			if gone.SnapshotSeq == 0 {
				t.Fatalf("410 body carries no resync boundary: %+v", gone)
			}
			return
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("wal = %d: %s", rec.Code, rec.Body.String())
		}
		if time.Now().After(deadline) {
			t.Fatal("WAL never rotated despite the 4-entry snapshot trigger")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchLoopGuardAndDeadPeerErrors: a forwarded batch is always
// scored locally even when the ring disagrees (no second hop, no
// ping-pong), while an unforwarded batch aimed at a dead owner degrades
// to inline per-record errors at HTTP 200 — never a 5xx.
func TestBatchLoopGuardAndDeadPeerErrors(t *testing.T) {
	const selfA = "http://a.test"
	deadPeer := "http://127.0.0.1:1" // nothing listens on port 1
	srv := newClusterServer(t, selfA, []string{selfA, deadPeer}, nil)

	// Find a stream the ring assigns to the dead peer.
	var remote string
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("lg-%d", i)
		if srv.ClusterNode().Owner(id) == deadPeer {
			remote = id
			break
		}
	}
	if remote == "" {
		t.Fatal("ring assigned 1000 ids to one of two nodes — balance is broken")
	}

	line, _ := json.Marshal(map[string]any{"stream": remote, "vector": []float64{0, 0, 0}})
	// Loop guard: the forwarded header pins scoring here.
	req := httptest.NewRequest(http.MethodPost, "/v1/observe", bytes.NewReader(append(line, '\n')))
	req.Header.Set(cluster.ForwardedHeader, "test")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded batch = %d: %s", rec.Code, rec.Body.String())
	}
	var res BatchResult
	if err := json.Unmarshal(bytes.TrimSpace(rec.Body.Bytes()), &res); err != nil {
		t.Fatal(err)
	}
	if res.Error != "" || res.Node != selfA {
		t.Fatalf("forwarded record = %+v, want scored locally on %s", res, selfA)
	}

	// Without the header the batch routes to the owner — which is dead.
	// The failure must come back inline per record, not as a 5xx.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/observe", bytes.NewReader(append(line, '\n'))))
	if rec.Code != http.StatusOK {
		t.Fatalf("dead-owner batch = %d, want 200 with inline errors: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(bytes.TrimSpace(rec.Body.Bytes()), &res); err != nil {
		t.Fatal(err)
	}
	if res.Error == "" || !strings.Contains(res.Error, "forward") {
		t.Fatalf("dead-owner record = %+v, want an inline forward error", res)
	}
}

// TestClusterMetricsExposition: every streamad_cluster_* family renders
// valid Prometheus text — HELP and TYPE precede the samples, labels are
// quoted, one node_up sample per member.
func TestClusterMetricsExposition(t *testing.T) {
	const selfA, selfB = "http://a.test", "http://b.test"
	srv := newClusterServer(t, selfA, []string{selfA, selfB}, nil)
	observeLocal(t, srv, "m-1", testVectors(1)[0])

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	families := []string{
		"streamad_cluster_node_up",
		"streamad_cluster_ring_nodes",
		"streamad_cluster_forwarded_records_total",
		"streamad_cluster_forward_errors_total",
		"streamad_cluster_proxied_records_total",
		"streamad_cluster_migrations_total",
		"streamad_cluster_standby_streams",
		"streamad_cluster_standby_replayed_total",
		"streamad_cluster_promotions_total",
	}
	for _, fam := range families {
		if !strings.Contains(body, "# HELP "+fam+" ") {
			t.Errorf("missing HELP for %s", fam)
		}
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("missing TYPE for %s", fam)
		}
	}
	nodeUp := map[string]string{}
	var migrations int
	for _, lineText := range strings.Split(body, "\n") {
		if strings.HasPrefix(lineText, "#") || strings.TrimSpace(lineText) == "" {
			continue
		}
		name, labels, err := parseSample(lineText)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", lineText, err)
		}
		switch name {
		case "streamad_cluster_node_up":
			nodeUp[labels["peer"]] = lineText
		case "streamad_cluster_migrations_total":
			if labels["direction"] == "" || labels["result"] == "" {
				t.Fatalf("migrations sample %q lacks direction/result labels", lineText)
			}
			migrations++
		}
	}
	if len(nodeUp) != 2 {
		t.Fatalf("node_up peers = %v, want both members", nodeUp)
	}
	if migrations != 4 {
		t.Fatalf("migrations_total samples = %d, want the 4 direction×result cells", migrations)
	}
}

// TestClusterE2E boots two real nodes on loopback listeners with the
// background loops running, and exercises the subsystem end to end:
// batch records route to their ring owners, a misplaced stream migrates
// live to its owner, and killing the owner promotes the survivor's warm
// standby so the stream keeps its history.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two HTTP servers with live probe/rebalance/standby loops")
	}
	var (
		lns   [2]net.Listener
		urls  [2]string
		srvs  [2]*Server
		https [2]*http.Server
	)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peers := []string{urls[0], urls[1]}
	for i := range srvs {
		store, err := persist.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg := persistentConfig(store)
		cfg.Logf = t.Logf
		cfg.Cluster = &cluster.Config{
			Self: urls[i], Peers: peers,
			ProbeInterval: 50 * time.Millisecond, ProbeFailures: 2,
			RebalanceInterval: 100 * time.Millisecond,
			StandbyInterval:   50 * time.Millisecond,
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		https[i] = &http.Server{Handler: srv}
		go https[i].Serve(lns[i])
		srv.StartCluster()
		i := i
		t.Cleanup(func() {
			https[i].Close()
			srvs[i].Close()
			store.Close()
		})
	}

	// Forwarding: a batch posted to node 0 spanning many streams comes
	// back with each record stamped by its ring owner.
	var batch bytes.Buffer
	for i := 0; i < 12; i++ {
		line, _ := json.Marshal(map[string]any{"stream": fmt.Sprintf("e2e-%d", i), "vector": []float64{0, 0, 0}})
		batch.Write(line)
		batch.WriteByte('\n')
	}
	resp, err := http.Post(urls[0]+"/v1/observe", "application/x-ndjson", &batch)
	if err != nil {
		t.Fatal(err)
	}
	forwarded := 0
	sc := bufio.NewScanner(resp.Body)
	for i := 0; sc.Scan(); i++ {
		var res BatchResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("e2e-%d", i)
		owner := srvs[0].ClusterNode().Owner(id)
		if res.Error != "" || res.Node != owner {
			t.Fatalf("record %s = %+v, want scored on owner %s", id, res, owner)
		}
		if owner != urls[0] {
			forwarded++
		}
	}
	resp.Body.Close()
	if forwarded == 0 {
		t.Fatal("no record was forwarded — 12 streams all hashed to the entry node")
	}

	// Live migration: plant a stream on the wrong node; the rebalancer
	// must ship it to its owner with its history intact.
	var misplaced string
	for i := 0; ; i++ {
		if id := fmt.Sprintf("mis-%d", i); srvs[0].ClusterNode().Owner(id) == urls[1] {
			misplaced = id
			break
		}
	}
	for _, v := range testVectors(5) {
		observeLocal(t, srvs[0], misplaced, v)
	}
	waitFor(t, 10*time.Second, "misplaced stream to migrate to its owner", func() bool {
		st, live := statsLocal(t, srvs[1], misplaced)
		if !live || st.Steps != 5 {
			return false
		}
		_, still := statsLocal(t, srvs[0], misplaced)
		return !still
	})

	// Failover: feed a stream owned by node 0, let node 1's standby warm
	// up, then kill node 0 without ceremony. Node 1 must promote the
	// replica — history preserved — and keep scoring.
	var owned string
	for i := 0; ; i++ {
		if id := fmt.Sprintf("own-%d", i); srvs[0].ClusterNode().Owner(id) == urls[0] {
			owned = id
			break
		}
	}
	vecs := testVectors(1000)
	for _, v := range vecs[:30] {
		observeLocal(t, srvs[0], owned, v)
	}
	waitFor(t, 10*time.Second, "successor to hold a standby replica", func() bool {
		return srvs[1].ClusterNode().Stats().StandbyStreams > 0
	})
	// Keep the WAL moving while waiting: the replica bootstraps from a
	// point-in-time snapshot, so only records that land after its
	// bootstrap are visible to the tail — trickling one per poll
	// guarantees it has something to replay regardless of who won the
	// bootstrap/feed race.
	fed := 30
	waitFor(t, 10*time.Second, "standby to replay the owner's WAL tail", func() bool {
		observeLocal(t, srvs[0], owned, vecs[fed%len(vecs)])
		fed++
		return srvs[1].ClusterNode().Stats().StandbyReplayed > 0
	})
	https[0].Close()
	srvs[0].Close()
	waitFor(t, 10*time.Second, "survivor to promote the standby", func() bool {
		st, live := statsLocal(t, srvs[1], owned)
		return live && st.Steps > 0
	})
	if got := srvs[1].ClusterNode().Stats().Promotions; got == 0 {
		t.Fatal("survivor serves the stream but reports no promotion")
	}
	// The promoted stream keeps scoring in place.
	out := observeLocal(t, srvs[1], owned, vecs[fed%len(vecs)])
	if out.Step <= 1 {
		t.Fatalf("post-failover step = %d, want continuation of the stream's history", out.Step)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
