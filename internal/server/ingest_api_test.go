package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streamad/internal/core"
	"streamad/internal/ingest"
	"streamad/internal/score"
)

// seqDetector is deterministic and history-dependent: the score folds in
// every past vector, so any reordering within a stream is visible.
type seqDetector struct {
	n   int
	acc float64
}

func (d *seqDetector) Step(v []float64) (core.Result, bool) {
	d.n++
	d.acc = 0.9*d.acc + v[0] + 0.01*float64(d.n)
	if d.n <= 2 {
		return core.Result{}, false
	}
	s := 0.5 + 0.5*math.Tanh(d.acc)
	return core.Result{Score: s, Nonconformity: s}, true
}

// gateDet blocks inside Step until released, reporting entry — used to
// hold a queue full while overload behavior is probed.
type gateDet struct {
	entered chan struct{}
	release chan struct{}
}

func (d *gateDet) Step(v []float64) (core.Result, bool) {
	select {
	case d.entered <- struct{}{}:
	default:
	}
	<-d.release
	return core.Result{Score: 0.1, Nonconformity: 0.1}, true
}

func newIngestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.NewDetector == nil {
		cfg.NewDetector = func(string) (Stepper, error) { return &seqDetector{}, nil }
	}
	if cfg.NewThresholder == nil {
		cfg.NewThresholder = func(string) score.Thresholder {
			return &score.StaticThresholder{T: 0.9}
		}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// postBatch sends NDJSON lines to /v1/observe and decodes the NDJSON
// response.
func postBatch(t *testing.T, ts *httptest.Server, body string) ([]BatchResult, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/observe", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []BatchResult
	if resp.StatusCode == http.StatusOK {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var br BatchResult
			if err := json.Unmarshal(line, &br); err != nil {
				t.Fatalf("bad response line %q: %v", line, err)
			}
			out = append(out, br)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp
}

func batchLine(stream string, vec []float64) string {
	b, _ := json.Marshal(batchRecord{Stream: stream, Vector: vec})
	return string(b) + "\n"
}

// TestBatchObserve drives interleaved vectors for several streams through
// one NDJSON batch and checks per-record results come back in request
// order, with monotonic per-stream sequence numbers and scores identical
// to the single-vector endpoint's.
func TestBatchObserve(t *testing.T) {
	ts := newIngestServer(t, Config{})
	ref := newIngestServer(t, Config{})

	const streams, n = 3, 8
	var body strings.Builder
	type key struct{ stream, step int }
	for i := 0; i < n; i++ {
		for s := 0; s < streams; s++ {
			body.WriteString(batchLine(fmt.Sprintf("s-%d", s), []float64{float64(s) + float64(i)/7, 0.5}))
		}
	}
	results, resp := postBatch(t, ts, body.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", got)
	}
	if len(results) != streams*n {
		t.Fatalf("%d results for %d records", len(results), streams*n)
	}
	// Request order and per-stream monotonic sequence.
	idx := 0
	for i := 0; i < n; i++ {
		for s := 0; s < streams; s++ {
			r := results[idx]
			idx++
			if want := fmt.Sprintf("s-%d", s); r.Stream != want {
				t.Fatalf("record %d: stream %q, want %q (request order)", idx-1, r.Stream, want)
			}
			if r.Seq != uint64(i) {
				t.Fatalf("stream %s: seq %d at step %d", r.Stream, r.Seq, i)
			}
			if r.Error != "" || r.Shed || r.Dropped {
				t.Fatalf("record %d unexpectedly degraded: %+v", idx-1, r)
			}
			// Bit-identical to the single-vector path on a fresh server.
			single, code := observe(t, ref, r.Stream, []float64{float64(s) + float64(i)/7, 0.5})
			if code != http.StatusOK {
				t.Fatalf("reference observe: %d", code)
			}
			if single.Ready != r.Ready || single.Score != r.Score {
				t.Fatalf("stream %s step %d: batch %v/%v vs single %v/%v",
					r.Stream, i, r.Ready, r.Score, single.Ready, single.Score)
			}
		}
	}
	_ = key{}
}

// TestBatchObserveBadRecords: malformed lines degrade to inline error
// records — the batch itself still succeeds for the valid lines.
func TestBatchObserveBadRecords(t *testing.T) {
	ts := newIngestServer(t, Config{})
	body := batchLine("ok", []float64{1, 2}) +
		"{not json}\n" +
		`{"vector": [1, 2]}` + "\n" + // missing stream
		`{"stream": "ok"}` + "\n" + // empty vector
		batchLine("ok", []float64{2, 1})
	results, resp := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(results) != 5 {
		t.Fatalf("%d results, want 5", len(results))
	}
	if results[0].Error != "" || results[4].Error != "" {
		t.Fatalf("valid records errored: %+v / %+v", results[0], results[4])
	}
	if results[0].Seq != 0 || results[4].Seq != 1 {
		t.Fatalf("valid records out of sequence: %d, %d", results[0].Seq, results[4].Seq)
	}
	for i := 1; i <= 3; i++ {
		if results[i].Error == "" {
			t.Fatalf("bad record %d produced no error: %+v", i, results[i])
		}
	}

	// Method and empty-body contract.
	resp2, err := http.Get(ts.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/observe = %d", resp2.StatusCode)
	}
	if _, resp3 := postBatch(t, ts, "\n\n"); resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d", resp3.StatusCode)
	}
}

// TestShedReturns429: with the shed policy and a saturated queue, the
// single-vector endpoint answers 429 with a Retry-After hint.
func TestShedReturns429(t *testing.T) {
	gate := &gateDet{entered: make(chan struct{}, 1), release: make(chan struct{})}
	ts := newIngestServer(t, Config{
		NewDetector: func(string) (Stepper, error) { return gate, nil },
		QueueDepth:  1,
		Overload:    ingest.Shed,
	})
	var wg sync.WaitGroup
	codes := make(chan int, 2)
	post := func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/streams/hot/observe", "application/json",
			strings.NewReader(`{"vector": [1, 2]}`))
		if err != nil {
			t.Error(err)
			codes <- 0
			return
		}
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	wg.Add(1)
	go post()
	<-gate.entered // first vector is mid-Step; queue empty again
	wg.Add(1)
	go post() // fills the queue
	// Wait until the second observe is actually queued before probing.
	waitForQueued(t, ts, "hot")

	resp, err := http.Post(ts.URL+"/v1/streams/hot/observe", "application/json",
		strings.NewReader(`{"vector": [1, 2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated observe = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(gate.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted observe finished %d", code)
		}
	}
}

// waitForQueued polls the stream's stats endpoint until one vector is
// queued (the in-flight one doesn't count). The endpoint answering at
// all while a detector pass is blocked is itself part of the contract
// under test: stats reads must not wait on the processing lock.
func waitForQueued(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/streams/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.Queued >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("second vector never reached the queue")
}

// TestBatchShedMarkers: under the shed policy, records a batch cannot
// admit come back as inline shed markers with a retry hint — the batch
// itself still succeeds, and records for other streams score normally.
func TestBatchShedMarkers(t *testing.T) {
	gate := &gateDet{entered: make(chan struct{}, 1), release: make(chan struct{})}
	ts := newIngestServer(t, Config{
		NewDetector: func(string) (Stepper, error) { return gate, nil },
		QueueDepth:  1,
		Overload:    ingest.Shed,
	})
	// Saturate "hot" deterministically: one vector mid-Step, one queued.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/streams/hot/observe", "application/json",
				strings.NewReader(`{"vector": [1, 0]}`))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}()
		if i == 0 {
			<-gate.entered
		}
	}
	waitForQueued(t, ts, "hot")

	// Every record targets the saturated stream, so the whole batch
	// sheds — and therefore completes without waiting on the gate.
	body := batchLine("hot", []float64{2, 0}) + batchLine("hot", []float64{3, 0})
	results, resp := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if !r.Shed || r.RetryAfterMs <= 0 {
			t.Fatalf("saturated record %d = %+v, want shed with retry_after_ms", i, r)
		}
		if r.Error != "" || r.Ready {
			t.Fatalf("shed record %d carries score state: %+v", i, r)
		}
	}
	close(gate.release)
	wg.Wait()
}

// TestConcurrentIngestStress is the acceptance test: 16 streams fed
// concurrently through NDJSON batches must preserve per-stream order
// (monotonic seq) and produce scores bit-identical to a serial reference
// run. Run with -race.
func TestConcurrentIngestStress(t *testing.T) {
	const (
		producers      = 4
		streamsPerProd = 4 // 16 streams total
		vectorsPerStr  = 120
		batchSize      = 10
	)
	ts := newIngestServer(t, Config{Shards: 4, QueueDepth: 8})

	vecFor := func(s, i int) []float64 {
		return []float64{math.Sin(float64(s) + float64(i)/9), math.Cos(float64(i) / 7)}
	}

	type rec struct {
		seq   uint64
		ready bool
		score float64
	}
	got := make(map[string][]rec, producers*streamsPerProd)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Each producer owns its streams and interleaves them within
			// every batch.
			for base := 0; base < vectorsPerStr; base += batchSize {
				var body strings.Builder
				for i := base; i < base+batchSize; i++ {
					for s := 0; s < streamsPerProd; s++ {
						sid := p*streamsPerProd + s
						body.WriteString(batchLine(fmt.Sprintf("str-%d", sid), vecFor(sid, i)))
					}
				}
				results, resp := postBatch(t, ts, body.String())
				if resp.StatusCode != http.StatusOK {
					t.Errorf("producer %d: status %d", p, resp.StatusCode)
					return
				}
				mu.Lock()
				for _, r := range results {
					if r.Error != "" || r.Shed || r.Dropped {
						t.Errorf("degraded record: %+v", r)
					}
					got[r.Stream] = append(got[r.Stream], rec{r.Seq, r.Ready, r.Score})
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if len(got) != producers*streamsPerProd {
		t.Fatalf("%d streams responded, want %d", len(got), producers*streamsPerProd)
	}
	for sid := 0; sid < producers*streamsPerProd; sid++ {
		id := fmt.Sprintf("str-%d", sid)
		recs := got[id]
		if len(recs) != vectorsPerStr {
			t.Fatalf("stream %s: %d results, want %d", id, len(recs), vectorsPerStr)
		}
		ref := &seqDetector{}
		for i, r := range recs {
			if r.seq != uint64(i) {
				t.Fatalf("stream %s: seq %d at position %d (order broken)", id, r.seq, i)
			}
			res, ok := ref.Step(vecFor(sid, i))
			if r.ready != ok || (ok && r.score != res.Score) {
				t.Fatalf("stream %s step %d: %v/%v, want %v/%v (must be bit-identical to serial)",
					id, i, r.ready, r.score, ok, res.Score)
			}
		}
	}
}

// TestIngestMetricsFamilies: the scrape must carry the ingestion families
// with believable values after real traffic.
func TestIngestMetricsFamilies(t *testing.T) {
	ts := newIngestServer(t, Config{Shards: 2})
	var body strings.Builder
	for i := 0; i < 10; i++ {
		body.WriteString(batchLine("m-0", []float64{1, 2}))
		body.WriteString(batchLine("m-1", []float64{2, 1}))
	}
	if _, resp := postBatch(t, ts, body.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := readAll(resp)
	for _, want := range []string{
		"streamad_ingest_shed_total",
		"streamad_ingest_dropped_total",
		"streamad_ingest_evicted_streams_total",
		`streamad_ingest_shard_streams{shard="0"}`,
		`streamad_ingest_shard_streams{shard="1"}`,
		`streamad_ingest_queue_depth{shard="0"}`,
		`streamad_ingest_batch_size_bucket{le="+Inf"}`,
		"streamad_ingest_batch_size_sum",
		"streamad_ingest_batch_size_count",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	// Two streams across two shards, and every vector accounted for in
	// the histogram sum.
	if !strings.Contains(raw, "streamad_ingest_batch_size_sum 20") {
		t.Errorf("batch_size_sum should count all 20 vectors:\n%s", grepLines(raw, "batch_size"))
	}
}

func readAll(resp *http.Response) (string, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String(), sc.Err()
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
