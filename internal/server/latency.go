package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// ObserveLatencyBounds are the upper bucket bounds, in seconds, of the
// streamad_ingest_observe_seconds request-latency histogram: sub-ms
// resolution at the bottom (scored-in-memory requests), stretching to
// 2.5s so queue-backed tail latency under overload is still resolved.
var ObserveLatencyBounds = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// latencyHist is a fixed-bucket latency histogram updated with atomics
// only — observe runs on every request, concurrently with scrapes, and
// must not contend on a lock.
type latencyHist struct {
	buckets [len(ObserveLatencyBounds) + 1]atomic.Uint64 // +1: overflow (> last bound)
	sumNs   atomic.Int64
}

// observe records one request duration.
func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(ObserveLatencyBounds) && s > ObserveLatencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(int64(d))
}

// write renders the histogram in Prometheus text exposition format.
// Cumulative counts are accumulated from one pass over the buckets, so
// le="+Inf" and _count always agree within a scrape even while requests
// are landing concurrently.
func (h *latencyHist) write(w io.Writer) {
	fmt.Fprintln(w, "# HELP streamad_ingest_observe_seconds Observe request latency over both observe endpoints, from body receipt to the last result written.")
	fmt.Fprintln(w, "# TYPE streamad_ingest_observe_seconds histogram")
	var cum uint64
	for i, bound := range ObserveLatencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "streamad_ingest_observe_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	cum += h.buckets[len(ObserveLatencyBounds)].Load()
	fmt.Fprintf(w, "streamad_ingest_observe_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "streamad_ingest_observe_seconds_sum %g\n", float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "streamad_ingest_observe_seconds_count %d\n", cum)
}
