// The server side of cluster mode: the forwarding machinery behind
// POST /v1/observe, transparent proxies for single observes and stats,
// the migration and WAL-tail endpoints the cluster loops call, and the
// streamad_cluster_* metric families. Everything here is inert when the
// server was built without Config.Cluster.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"streamad/internal/cluster"
	"streamad/internal/ingest"
	"streamad/internal/persist"
)

// StartCluster launches the cluster node's background loops (health
// prober, rebalancer, standby sync). Call it after RestoreStreams so the
// rebalancer sees the restored streams, and once the listener is up so
// peers' probes of this node succeed. No-op outside cluster mode.
func (s *Server) StartCluster() {
	if s.node != nil {
		s.node.Start(s.reg)
	}
}

// ClusterNode exposes the node (nil outside cluster mode) to embedders
// and tests.
func (s *Server) ClusterNode() *cluster.Node { return s.node }

// forwardGroup accumulates one peer's share of a batch: the NDJSON
// sub-batch to ship and, after run, the peer's response lines in
// sub-batch order. Fields are written by the spawning handler before
// launch and by the group's own goroutine until the WaitGroup joins;
// never concurrently.
type forwardGroup struct {
	peer    string
	body    bytes.Buffer
	count   int
	results []BatchResult
	err     error
}

// forwardAll ships every group to its peer concurrently and returns the
// WaitGroup that joins them. A nil node or empty group map returns a
// zero WaitGroup whose Wait is immediate.
//
//streamad:lifecycle — one goroutine per peer group, joined by the returned WaitGroup in handleBatchObserve.
func forwardAll(node *cluster.Node, groups map[string]*forwardGroup) *sync.WaitGroup {
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *forwardGroup) {
			defer wg.Done()
			g.run(node)
		}(g)
	}
	return &wg
}

// run forwards the sub-batch and decodes the peer's response lines.
func (g *forwardGroup) run(node *cluster.Node) {
	body, err := node.ForwardBatch(g.peer, g.count, g.body.Bytes())
	if err != nil {
		g.err = err
		return
	}
	for _, line := range bytes.Split(body, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var res BatchResult
		if jerr := json.Unmarshal(line, &res); jerr != nil {
			g.err = fmt.Errorf("bad response line from %s: %w", g.peer, jerr)
			return
		}
		g.results = append(g.results, res)
	}
}

// result maps one record's outcome out of the group. A failed forward
// becomes a per-record inline error — the batch as a whole still
// succeeds (HTTP 200), mirroring how per-stream sheds are reported, so
// one dead peer never turns a mixed batch into a 5xx.
func (g *forwardGroup) result(i int, stream string) BatchResult {
	if g.err != nil {
		return BatchResult{Stream: stream, Error: "forward to " + g.peer + " failed: " + g.err.Error()}
	}
	if i >= len(g.results) {
		return BatchResult{Stream: stream, Error: "forward to " + g.peer + ": short response (" +
			strconv.Itoa(len(g.results)) + " lines for " + strconv.Itoa(g.count) + " records)"}
	}
	return g.results[i]
}

// proxyObserve relays a single-record observe to the stream's owner and
// streams the owner's status and body back verbatim, so producers can
// post to any node. Only a transport failure becomes a local error.
func (s *Server) proxyObserve(w http.ResponseWriter, id, owner string, vector []float64) {
	body, err := json.Marshal(observeRequest{Vector: vector})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	path := "/v1/streams/" + url.PathEscape(id) + "/observe"
	status, out, err := s.node.ForwardRecord(owner, path, body, "application/json")
	if err != nil {
		http.Error(w, "owner "+owner+" unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	if status == http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(status)
	w.Write(out)
}

// proxyStats relays GET /v1/streams/{id} to the owner.
func (s *Server) proxyStats(w http.ResponseWriter, id, owner string) {
	req, err := http.NewRequest(http.MethodGet, owner+"/v1/streams/"+url.PathEscape(id), nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header.Set(cluster.ForwardedHeader, s.node.Self())
	resp, err := s.node.Client().Do(req)
	if err != nil {
		http.Error(w, "owner "+owner+" unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleMigrate is POST /v1/streams/{id}/migrate: adopt a stream shipped
// by a peer. The snapshot file is integrity-checked (magic, version,
// CRC), the WAL tail is replayed with restore semantics, and the adopted
// state's fingerprint must equal the source's — otherwise the adopted
// stream is torn back down and the request 409s, leaving the source to
// reinstate. Protocol failures are 4xx: a migration must never be able
// to fail a node's 5xx SLO.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request, id string) {
	if s.node == nil {
		http.Error(w, "not a cluster node", http.StatusNotImplemented)
		return
	}
	var req cluster.MigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad migrate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := persist.DecodeSnapshotFile(req.Snapshot)
	if err != nil {
		s.node.NoteMigrationIn(false)
		http.Error(w, "bad snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	if snap.ID != id {
		s.node.NoteMigrationIn(false)
		http.Error(w, fmt.Sprintf("snapshot is for stream %q, not %q", snap.ID, id), http.StatusBadRequest)
		return
	}
	tail := make([]persist.WALRecord, 0, len(req.WAL))
	for _, rec := range req.WAL {
		for _, v := range rec.Vector {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				s.node.NoteMigrationIn(false)
				http.Error(w, "non-finite value in WAL tail", http.StatusBadRequest)
				return
			}
		}
		tail = append(tail, persist.WALRecord{Seq: rec.Seq, Vector: rec.Vector})
	}
	fp, err := s.reg.Adopt(id, snap, tail)
	if errors.Is(err, ingest.ErrSeqConflict) {
		s.node.NoteMigrationIn(false)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if err != nil {
		s.node.NoteMigrationIn(false)
		http.Error(w, "adopt failed: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if fp != req.Fingerprint {
		// The replayed state does not reproduce the source's live state;
		// refuse the stream so the source (which still holds it) reinstates.
		if _, herr := s.reg.Handoff(id); herr == nil {
			if derr := s.reg.DropPersisted(id); derr != nil {
				s.reg.Logf("streamad: drop refused migration %q: %v", id, derr)
			}
		}
		s.node.NoteMigrationIn(false)
		http.Error(w, fmt.Sprintf("fingerprint mismatch: replayed %08x, source %08x", fp, req.Fingerprint),
			http.StatusConflict)
		return
	}
	s.node.NoteMigrationIn(true)
	writeJSON(w, http.StatusOK, cluster.MigrateResponse{Node: s.node.Self(), Fingerprint: fp})
}

// handleWALTail is GET /v1/streams/{id}/wal?from=N: the stream's WAL
// records with seq >= N as NDJSON, for standby followers. 410 with the
// snapshot boundary means the tail was rotated away and the follower
// must resync from the snapshot endpoint.
func (s *Server) handleWALTail(w http.ResponseWriter, r *http.Request, id string) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "bad from parameter: "+err.Error(), http.StatusBadRequest)
		return
	}
	recs, seqDone, err := s.reg.WALTail(id, from)
	switch {
	case errors.Is(err, ingest.ErrNoStore):
		http.Error(w, "this node has no state dir; WAL tailing unavailable", http.StatusNotImplemented)
		return
	case errors.Is(err, ingest.ErrUnknownStream):
		http.Error(w, "unknown stream", http.StatusNotFound)
		return
	case errors.Is(err, ingest.ErrWALRotated):
		writeJSON(w, http.StatusGone, cluster.WALGone{Error: err.Error(), SnapshotSeq: seqDone})
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Streamad-Seq-Done", strconv.FormatUint(seqDone, 10))
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		enc.Encode(cluster.WALEntry{Seq: rec.Seq, Vector: rec.Vector})
	}
}

// writeClusterMetrics renders the streamad_cluster_* families from one
// node stats snapshot. No-op outside cluster mode. Peer rows come out
// sorted by URL (self included: its up gauge is pinned to 1 and its
// forward counters stay 0).
func (s *Server) writeClusterMetrics(w http.ResponseWriter) {
	if s.node == nil {
		return
	}
	st := s.node.Stats()
	fmt.Fprintln(w, "# HELP streamad_cluster_node_up Health-probe view of each cluster member (1 = alive).")
	fmt.Fprintln(w, "# TYPE streamad_cluster_node_up gauge")
	for _, p := range st.Peers {
		v := 0
		if p.Alive {
			v = 1
		}
		fmt.Fprintf(w, "streamad_cluster_node_up{peer=%q} %d\n", p.URL, v)
	}
	fmt.Fprintln(w, "# HELP streamad_cluster_ring_nodes Members currently on the consistent-hash ring.")
	fmt.Fprintln(w, "# TYPE streamad_cluster_ring_nodes gauge")
	fmt.Fprintf(w, "streamad_cluster_ring_nodes %d\n", st.RingNodes)
	fmt.Fprintln(w, "# HELP streamad_cluster_forwarded_records_total Records forwarded to each peer for scoring.")
	fmt.Fprintln(w, "# TYPE streamad_cluster_forwarded_records_total counter")
	for _, p := range st.Peers {
		fmt.Fprintf(w, "streamad_cluster_forwarded_records_total{peer=%q} %d\n", p.URL, p.Forwarded)
	}
	fmt.Fprintln(w, "# HELP streamad_cluster_forward_errors_total Failed forward attempts per peer.")
	fmt.Fprintln(w, "# TYPE streamad_cluster_forward_errors_total counter")
	for _, p := range st.Peers {
		fmt.Fprintf(w, "streamad_cluster_forward_errors_total{peer=%q} %d\n", p.URL, p.ForwardErrors)
	}
	fmt.Fprintln(w, "# HELP streamad_cluster_proxied_records_total Records this node scored on behalf of peers (received forwarded).")
	fmt.Fprintln(w, "# TYPE streamad_cluster_proxied_records_total counter")
	fmt.Fprintf(w, "streamad_cluster_proxied_records_total %d\n", st.ForwardedIn)
	fmt.Fprintln(w, "# HELP streamad_cluster_migrations_total Stream migrations by direction and result.")
	fmt.Fprintln(w, "# TYPE streamad_cluster_migrations_total counter")
	fmt.Fprintf(w, "streamad_cluster_migrations_total{direction=\"in\",result=\"ok\"} %d\n", st.MigrationsInOK)
	fmt.Fprintf(w, "streamad_cluster_migrations_total{direction=\"in\",result=\"error\"} %d\n", st.MigrationsInErr)
	fmt.Fprintf(w, "streamad_cluster_migrations_total{direction=\"out\",result=\"ok\"} %d\n", st.MigrationsOutOK)
	fmt.Fprintf(w, "streamad_cluster_migrations_total{direction=\"out\",result=\"error\"} %d\n", st.MigrationsOutErr)
	fmt.Fprintln(w, "# HELP streamad_cluster_standby_streams Warm standby replicas this node is holding.")
	fmt.Fprintln(w, "# TYPE streamad_cluster_standby_streams gauge")
	fmt.Fprintf(w, "streamad_cluster_standby_streams %d\n", st.StandbyStreams)
	fmt.Fprintln(w, "# HELP streamad_cluster_standby_replayed_total WAL records replayed into standby replicas.")
	fmt.Fprintln(w, "# TYPE streamad_cluster_standby_replayed_total counter")
	fmt.Fprintf(w, "streamad_cluster_standby_replayed_total %d\n", st.StandbyReplayed)
	fmt.Fprintln(w, "# HELP streamad_cluster_promotions_total Standby replicas promoted to live streams after owner failure.")
	fmt.Fprintln(w, "# TYPE streamad_cluster_promotions_total counter")
	fmt.Fprintf(w, "streamad_cluster_promotions_total %d\n", st.Promotions)
}
