package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"streamad"
	"streamad/internal/persist"
	"streamad/internal/score"
)

// testVectors builds a deterministic 3-channel stream.
func testVectors(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		t := float64(i)
		out[i] = []float64{
			math.Sin(t / 7),
			math.Cos(t/11) + 0.1*math.Sin(t/3),
			0.5 * math.Sin(t/5),
		}
	}
	return out
}

func persistentConfig(store *persist.Store) Config {
	return Config{
		NewDetector: func(string) (Stepper, error) {
			return streamad.New(streamad.Config{
				Model: streamad.ModelKNN, Task1: streamad.TaskSlidingWindow,
				Task2: streamad.TaskRegular, Score: streamad.ScoreAverage,
				Channels: 3, Window: 8, TrainSize: 30, WarmupVectors: 40, Seed: 3,
			})
		},
		NewThresholder: func(string) score.Thresholder {
			return score.NewQuantileThresholder(0.95)
		},
		Store: store,
	}
}

// observe POSTs one vector and decodes the scoring response.
func observeDirect(t *testing.T, s *Server, id string, vec []float64) ObserveResponse {
	t.Helper()
	body, _ := json.Marshal(map[string][]float64{"vector": vec})
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/"+id+"/observe", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("observe %s: status %d: %s", id, rec.Code, rec.Body.String())
	}
	var resp ObserveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("observe %s: bad response (code=%d body=%q): %v", id, rec.Code, rec.Body.String(), err)
	}
	return resp
}

// TestCrashRecovery kills a persistent server mid-stream (snapshot taken
// at step 60, sixty more vectors only in the WAL) and verifies the
// rebuilt server continues with responses identical to a server that
// never died — same scores, thresholds, alerts and step numbers, with no
// re-warmup.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	vecs := testVectors(200)

	// Reference: an uninterrupted, non-persistent server sees all 200.
	ref, err := New(persistentConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	refResp := make([]ObserveResponse, len(vecs))
	for i, v := range vecs {
		refResp[i] = observeDirect(t, ref, "s", v)
	}

	// First life: 120 observes, with a checkpoint after 60 — so recovery
	// exercises snapshot load AND WAL replay of the remaining 60.
	store1, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := New(persistentConfig(store1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		got := observeDirect(t, srv1, "s", vecs[i])
		if got != refResp[i] {
			t.Fatalf("persistent server diverged before crash at %d: %+v vs %+v", i, got, refResp[i])
		}
		if i == 59 {
			if err := srv1.SnapshotAll(); err != nil {
				t.Fatalf("SnapshotAll: %v", err)
			}
		}
	}
	// Crash: no srv1.Close(), no final snapshot — just drop the process
	// state and release file handles the way an exit would.
	store1.Close()
	if n, err := store1.WALEntries("s"); err != nil || n != 60 {
		t.Fatalf("expected 60 WAL entries pending, got %d (%v)", n, err)
	}

	// Second life.
	store2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2, err := New(persistentConfig(store2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	restored, warnings, err := srv2.RestoreStreams()
	if err != nil {
		t.Fatalf("RestoreStreams: %v", err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if restored != 1 {
		t.Fatalf("restored %d streams, want 1", restored)
	}

	// The restored stream must pick up at step 120 — warm, not restarting.
	for i := 120; i < 200; i++ {
		got := observeDirect(t, srv2, "s", vecs[i])
		if !got.Ready {
			t.Fatalf("restored server not ready at step %d: it re-warmed", i)
		}
		if got != refResp[i] {
			t.Fatalf("restored server diverged at %d:\n got %+v\nwant %+v", i, got, refResp[i])
		}
	}

	// Stats survived too.
	req := httptest.NewRequest(http.MethodGet, "/v1/streams/s", nil)
	rec := httptest.NewRecorder()
	srv2.ServeHTTP(rec, req)
	var stats StatsResponse
	json.Unmarshal(rec.Body.Bytes(), &stats)
	if stats.Steps != 200 {
		t.Fatalf("restored stats show %d steps, want 200", stats.Steps)
	}
}

// corruptFile flips a byte near the end of a file (inside the payload,
// past the header) so the CRC check must trip.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRejectsCorruptSnapshot verifies damaged state aborts recovery
// loudly instead of half-loading.
func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	store, _ := persist.Open(dir)
	srv, _ := New(persistentConfig(store))
	for _, v := range testVectors(50) {
		observeDirect(t, srv, "s", v)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Corrupt the snapshot payload.
	store2, _ := persist.Open(dir)
	defer store2.Close()
	snapPath := dir + "/s.snap"
	corruptFile(t, snapPath)
	srv2, _ := New(persistentConfig(store2))
	defer srv2.Close()
	if _, _, err := srv2.RestoreStreams(); err == nil {
		t.Fatal("RestoreStreams accepted a corrupt snapshot")
	}
}

// TestSnapshotEndpoint checks GET /v1/streams/{id}/snapshot returns a
// parseable checkpoint file and forces a WAL rotation.
func TestSnapshotEndpoint(t *testing.T) {
	store, _ := persist.Open(t.TempDir())
	defer store.Close()
	srv, _ := New(persistentConfig(store))
	defer srv.Close()
	for _, v := range testVectors(50) {
		observeDirect(t, srv, "s", v)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/streams/s/snapshot", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot endpoint: %d: %s", rec.Code, rec.Body.String())
	}
	if n, _ := store.WALEntries("s"); n != 0 {
		t.Fatalf("endpoint snapshot left %d WAL entries", n)
	}
	// The body is the on-disk format; the persisted copy must decode to
	// the same sequence number.
	snap, err := store.ReadSnapshot("s")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 50 {
		t.Fatalf("snapshot seq %d, want 50", snap.Seq)
	}
	if rec.Body.Len() == 0 {
		t.Fatal("empty snapshot body")
	}

	// Unknown stream → 404.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/nope/snapshot", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown stream snapshot: %d", rec.Code)
	}
}

// TestConcurrentObserveDuringSnapshots hammers several streams while the
// background snapshotter runs at an aggressive cadence; run under -race
// this exercises the locking between observes, WAL appends, checkpoint
// writes and rotation. Afterwards the state must still restore cleanly.
func TestConcurrentObserveDuringSnapshots(t *testing.T) {
	dir := t.TempDir()
	store, _ := persist.Open(dir)
	cfg := persistentConfig(store)
	cfg.SnapshotInterval = time.Millisecond
	cfg.SnapshotEvery = 3
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vecs := testVectors(80)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("stream-%d", g)
			for _, v := range vecs {
				// t.Fatalf is not goroutine-safe; report and bail instead.
				body, _ := json.Marshal(map[string][]float64{"vector": v})
				req := httptest.NewRequest(http.MethodPost, "/v1/streams/"+id+"/observe", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("observe %s: status %d: %s", id, rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	store.Close()

	store2, _ := persist.Open(dir)
	defer store2.Close()
	srv2, _ := New(persistentConfig(store2))
	defer srv2.Close()
	restored, warnings, err := srv2.RestoreStreams()
	if err != nil {
		t.Fatalf("RestoreStreams after concurrent run: %v", err)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings: %v", warnings)
	}
	if restored != 4 {
		t.Fatalf("restored %d streams, want 4", restored)
	}
	for g := 0; g < 4; g++ {
		rec := httptest.NewRecorder()
		srv2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/streams/stream-%d", g), nil))
		var stats StatsResponse
		json.Unmarshal(rec.Body.Bytes(), &stats)
		if stats.Steps != len(vecs) {
			t.Fatalf("stream-%d restored with %d steps, want %d", g, stats.Steps, len(vecs))
		}
	}
}

// TestRecoveryAfterRejectedVector reproduces a stream whose WAL contains
// a wrong-dimension vector (logged before the detector rejected it with a
// 400): recovery must skip it with a warning — matching the live server's
// state — not refuse to start.
func TestRecoveryAfterRejectedVector(t *testing.T) {
	dir := t.TempDir()
	store, _ := persist.Open(dir)
	srv, _ := New(persistentConfig(store))
	vecs := testVectors(60)
	for i, v := range vecs {
		observeDirect(t, srv, "s", v)
		if i == 20 {
			// A malformed producer sends a 2-dim vector into a 3-dim stream.
			body, _ := json.Marshal(map[string][]float64{"vector": {1, 2}})
			req := httptest.NewRequest(http.MethodPost, "/v1/streams/s/observe", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("wrong-dim observe: status %d", rec.Code)
			}
		}
	}
	// Crash without a final snapshot: the bad record is still in the WAL.
	store.Close()

	store2, _ := persist.Open(dir)
	defer store2.Close()
	srv2, _ := New(persistentConfig(store2))
	defer srv2.Close()
	restored, warnings, err := srv2.RestoreStreams()
	if err != nil {
		t.Fatalf("RestoreStreams: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d streams, want 1", restored)
	}
	if len(warnings) != 1 {
		t.Fatalf("want one skipped-record warning, got %v", warnings)
	}
	rec := httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/s", nil))
	var stats StatsResponse
	json.Unmarshal(rec.Body.Bytes(), &stats)
	if stats.Steps != 61 { // 60 good + 1 rejected, same as the live counter
		t.Fatalf("restored steps %d, want 61", stats.Steps)
	}
}

// ensembleConfig builds a server whose streams are 3-member ensembles
// with performance-weighted aggregation, matching persistentConfig's
// base parameters so drift-triggered fine-tunes happen in a 200-step run.
func ensembleConfig(store *persist.Store) Config {
	const spec = "ensemble(knn+sw+regular+avg, arima+sw+regular+avg, knn+ures+regular+avg; agg=perf, prune=-8)"
	return Config{
		NewDetector: func(string) (Stepper, error) {
			return streamad.NewFromSpec(spec, streamad.Config{
				Channels: 3, Window: 8, TrainSize: 30, WarmupVectors: 40, Seed: 3,
			})
		},
		NewThresholder: func(string) score.Thresholder {
			return score.NewQuantileThresholder(0.95)
		},
		Store: store,
	}
}

// TestEnsembleCrashRecovery is TestCrashRecovery for ensemble-backed
// streams: a 3-member ensemble is snapshotted at step 60, killed at 120
// (sixty vectors only in the WAL), restored, and must continue
// bit-identically with a reference ensemble that never died — across
// drift-triggered fine-tunes on both sides of the restore point.
func TestEnsembleCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	vecs := testVectors(200)

	ref, err := New(ensembleConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	refResp := make([]ObserveResponse, len(vecs))
	fineTunesBeforeKill := 0
	for i, v := range vecs {
		refResp[i] = observeDirect(t, ref, "s", v)
		if i < 120 && refResp[i].FineTuned {
			fineTunesBeforeKill++
		}
	}
	if fineTunesBeforeKill == 0 {
		t.Fatal("no fine-tune before the kill point; the recovery path would not cross one")
	}

	store1, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := New(ensembleConfig(store1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		got := observeDirect(t, srv1, "s", vecs[i])
		if got != refResp[i] {
			t.Fatalf("ensemble server diverged before crash at %d: %+v vs %+v", i, got, refResp[i])
		}
		if i == 59 {
			if err := srv1.SnapshotAll(); err != nil {
				t.Fatalf("SnapshotAll: %v", err)
			}
		}
	}
	// Crash without Close: member checkpoints live only in the snapshot,
	// steps 60–119 only in the WAL.
	store1.Close()

	store2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	srv2, err := New(ensembleConfig(store2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	restored, warnings, err := srv2.RestoreStreams()
	if err != nil {
		t.Fatalf("RestoreStreams: %v", err)
	}
	if len(warnings) != 0 || restored != 1 {
		t.Fatalf("restored=%d warnings=%v", restored, warnings)
	}

	sawFineTune := false
	for i := 120; i < 200; i++ {
		got := observeDirect(t, srv2, "s", vecs[i])
		if got != refResp[i] {
			t.Fatalf("restored ensemble diverged at %d:\n got %+v\nwant %+v", i, got, refResp[i])
		}
		if got.FineTuned {
			sawFineTune = true
		}
	}
	if !sawFineTune {
		t.Fatal("no fine-tune after the restore point; tighten the schedule")
	}

	// Per-member counters survived the crash: every member has been judged
	// for all 200 steps, not just the post-restore 80.
	rec := httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/s", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 200 {
		t.Fatalf("restored stats show %d steps, want 200", stats.Steps)
	}
	if len(stats.Members) != 3 {
		t.Fatalf("restored stats show %d members, want 3", len(stats.Members))
	}
	for _, m := range stats.Members {
		if m.Ready <= 80 {
			t.Fatalf("member %d ready_steps=%d: counters restarted instead of restoring", m.Index, m.Ready)
		}
	}
}
