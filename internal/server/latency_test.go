package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the raw exposition text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// sampleValue extracts the integer value of the first sample line with
// the given prefix.
func sampleValue(t *testing.T, raw, prefix string) int {
	t.Helper()
	for _, line := range strings.Split(raw, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.Atoi(fields[len(fields)-1])
		if err != nil {
			t.Fatalf("non-integer sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample with prefix %q in scrape:\n%s", prefix, grepLines(raw, "observe_seconds"))
	return 0
}

// TestObserveLatencyHistogram drives both observe endpoints and checks
// the streamad_ingest_observe_seconds family: HELP/TYPE exposition,
// cumulative bucket monotonicity, le="+Inf" == _count == request count,
// and a positive _sum.
func TestObserveLatencyHistogram(t *testing.T) {
	ts := newIngestServer(t, Config{})

	// Zero requests yet: family must still expose with count 0.
	raw := scrape(t, ts.URL)
	for _, want := range []string{
		"# HELP streamad_ingest_observe_seconds ",
		"# TYPE streamad_ingest_observe_seconds histogram",
		`streamad_ingest_observe_seconds_bucket{le="+Inf"} 0`,
		"streamad_ingest_observe_seconds_count 0",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("fresh scrape is missing %q:\n%s", want, grepLines(raw, "observe_seconds"))
		}
	}

	// 3 batch requests + 2 single-vector requests = 5 observations; a
	// batch counts once however many records it carries.
	for i := 0; i < 3; i++ {
		body := batchLine("lat-0", []float64{1, 2}) + batchLine("lat-1", []float64{2, 1})
		if _, resp := postBatch(t, ts, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/streams/lat-0/observe", "application/json",
			strings.NewReader(`{"vector": [1, 2]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe status %d", resp.StatusCode)
		}
	}

	raw = scrape(t, ts.URL)
	if got := sampleValue(t, raw, "streamad_ingest_observe_seconds_count"); got != 5 {
		t.Fatalf("observe_seconds_count = %d, want 5 (3 batches + 2 singles)", got)
	}
	if got := sampleValue(t, raw, `streamad_ingest_observe_seconds_bucket{le="+Inf"}`); got != 5 {
		t.Fatalf(`le="+Inf" bucket = %d, want _count = 5`, got)
	}
	// Buckets are cumulative: non-decreasing in bound order, each ≤ count.
	prev := 0
	for _, bound := range ObserveLatencyBounds {
		v := sampleValue(t, raw, fmt.Sprintf("streamad_ingest_observe_seconds_bucket{le=%q}", fmt.Sprintf("%g", bound)))
		if v < prev || v > 5 {
			t.Fatalf("bucket le=%g: %d not cumulative (prev %d, count 5):\n%s",
				bound, v, prev, grepLines(raw, "observe_seconds"))
		}
		prev = v
	}
	var sum float64
	if _, err := fmt.Sscanf(grepLines(raw, "streamad_ingest_observe_seconds_sum"), "streamad_ingest_observe_seconds_sum %g", &sum); err != nil {
		t.Fatal(err)
	}
	if sum <= 0 {
		t.Fatalf("observe_seconds_sum = %g, want > 0 after 5 requests", sum)
	}
}

// TestBatchCapStructuredError: a batch one record over MaxBatchRecords
// is rejected whole — 413, a JSON body naming the cap, and no partial
// side effects (no stream was created, nothing was scored).
func TestBatchCapStructuredError(t *testing.T) {
	ts := newIngestServer(t, Config{})
	line := batchLine("cap", []float64{1, 2})
	var body strings.Builder
	body.Grow((MaxBatchRecords + 1) * len(line))
	for i := 0; i <= MaxBatchRecords; i++ {
		body.WriteString(line)
	}
	resp, err := http.Post(ts.URL+"/v1/observe", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap batch = %d, want 413", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("413 Content-Type %q, want application/json", ct)
	}
	var ce BatchCapError
	if err := json.NewDecoder(resp.Body).Decode(&ce); err != nil {
		t.Fatalf("413 body is not the structured cap error: %v", err)
	}
	if ce.MaxBatchRecords != MaxBatchRecords {
		t.Fatalf("max_batch_records = %d, want %d", ce.MaxBatchRecords, MaxBatchRecords)
	}
	if !strings.Contains(ce.Error, fmt.Sprint(MaxBatchRecords)) {
		t.Fatalf("error %q does not name the cap", ce.Error)
	}

	// Rejected whole: the target stream must not exist.
	lresp, err := http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var streams []streamListEntry
	if err := json.NewDecoder(lresp.Body).Decode(&streams); err != nil {
		t.Fatal(err)
	}
	if len(streams) != 0 {
		t.Fatalf("rejected batch leaked streams: %+v", streams)
	}
}

// TestBatchAtCapAccepted pins the boundary: exactly MaxBatchRecords
// records is still one valid batch.
func TestBatchAtCapAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cap batch")
	}
	ts := newIngestServer(t, Config{QueueDepth: 256})
	line := batchLine("cap", []float64{1, 2})
	var body strings.Builder
	body.Grow(MaxBatchRecords * len(line))
	for i := 0; i < MaxBatchRecords; i++ {
		body.WriteString(line)
	}
	results, resp := postBatch(t, ts, body.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-cap batch = %d, want 200", resp.StatusCode)
	}
	if len(results) != MaxBatchRecords {
		t.Fatalf("%d results, want %d", len(results), MaxBatchRecords)
	}
	if last := results[MaxBatchRecords-1]; last.Seq != MaxBatchRecords-1 || last.Error != "" {
		t.Fatalf("last record: %+v", last)
	}
}
